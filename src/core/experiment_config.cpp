#include "core/experiment_config.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace composim::core {

SystemConfig configFromName(const std::string& name) {
  for (const auto c : allConfigs()) {
    if (name == toString(c)) return c;
  }
  if (name == toString(SystemConfig::AllGpus16)) return SystemConfig::AllGpus16;
  throw std::invalid_argument("unknown configuration '" + name + "'");
}

dl::ModelSpec benchmarkFromName(const std::string& name) {
  return dl::workload(name);
}

namespace {

dl::Strategy strategyFromName(const std::string& name) {
  if (name == "ddp" || name == "DDP") return dl::Strategy::DistributedDataParallel;
  if (name == "dp" || name == "DP") return dl::Strategy::DataParallel;
  throw std::invalid_argument("unknown strategy '" + name + "'");
}

devices::Precision precisionFromName(const std::string& name) {
  if (name == "fp16" || name == "FP16") return devices::Precision::FP16;
  if (name == "fp32" || name == "FP32") return devices::Precision::FP32;
  throw std::invalid_argument("unknown precision '" + name + "'");
}

}  // namespace

FaultsConfig parseFaultsConfig(const falcon::Json& doc) {
  FaultsConfig faults;
  faults.enabled = true;
  if (const auto* v = doc.find("seed")) {
    faults.seed = static_cast<std::uint64_t>(v->asInt());
  }
  if (const auto* v = doc.find("poll_interval")) {
    faults.health_poll_interval = v->asDouble();
  }
  if (const auto* v = doc.find("error_storm_threshold")) {
    faults.error_storm_threshold = static_cast<std::uint64_t>(v->asInt());
  }
  if (const auto* v = doc.find("spare_gpus")) {
    faults.spare_gpus = static_cast<int>(v->asInt());
  }
  if (const auto* v = doc.find("attach_failure_rate")) {
    faults.attach_failure_rate = v->asDouble();
  }
  if (const auto* v = doc.find("max_attach_retries")) {
    faults.policy.max_attach_retries = static_cast<int>(v->asInt());
  }
  if (const auto* v = doc.find("gpu_falloffs")) {
    for (const auto& f : v->asArray()) {
      faults.gpu_falloffs.push_back({static_cast<int>(f.at("gpu").asInt()),
                                     f.at("at").asDouble()});
    }
  }
  if (const auto* v = doc.find("ecc_storms")) {
    for (const auto& f : v->asArray()) {
      FaultsConfig::EccStorm storm;
      storm.gpu_index = static_cast<int>(f.at("gpu").asInt());
      storm.at = f.at("at").asDouble();
      if (const auto* e = f.find("errors")) {
        storm.errors = static_cast<std::uint64_t>(e->asInt());
      }
      faults.ecc_storms.push_back(storm);
    }
  }
  if (const auto* v = doc.find("host_port_flaps")) {
    for (const auto& f : v->asArray()) {
      faults.host_port_flaps.push_back({static_cast<int>(f.at("port").asInt()),
                                        f.at("at").asDouble(),
                                        f.at("downtime").asDouble()});
    }
  }
  return faults;
}

MetricsConfig parseMetricsConfig(const falcon::Json& doc) {
  MetricsConfig metrics;
  if (const auto* v = doc.find("scrape_interval")) {
    metrics.scrape_interval = v->asDouble();
  }
  if (const auto* v = doc.find("alerts")) {
    for (const auto& rule : v->asArray()) {
      // Validate at parse time so a bad suite fails before any run starts.
      telemetry::parseAlertRule(rule.asString());
      metrics.alerts.push_back(rule.asString());
    }
  }
  return metrics;
}

std::vector<ExperimentSpec> parseExperimentSuite(const falcon::Json& doc) {
  std::vector<ExperimentSpec> specs;
  for (const auto& e : doc.at("experiments").asArray()) {
    ExperimentSpec s;
    s.name = e.at("name").asString();
    if (const auto* v = e.find("workload")) {
      s.workload = v->asString();
    } else if (const auto* v2 = e.find("benchmark")) {
      s.workload = v2->asString();  // legacy key
    } else {
      throw std::invalid_argument("experiment '" + s.name +
                                  "' has no \"workload\" key");
    }
    s.options.workload = s.workload;
    dl::workload(s.workload);  // validate early (throws with known names)
    s.config = configFromName(e.at("config").asString());
    if (const auto* v = e.find("epochs")) {
      s.options.trainer.epochs = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("iterations_cap")) {
      s.options.trainer.max_iterations_per_epoch = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("batch_per_gpu")) {
      s.options.trainer.batch_per_gpu = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("strategy")) {
      s.options.trainer.strategy = strategyFromName(v->asString());
    }
    if (const auto* v = e.find("precision")) {
      s.options.trainer.precision = precisionFromName(v->asString());
    }
    if (const auto* v = e.find("sharded")) {
      s.options.trainer.sharded = v->asBool();
    }
    if (const auto* v = e.find("accumulation")) {
      s.options.trainer.gradient_accumulation_steps = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("sample_interval")) {
      s.options.sample_interval = v->asDouble();
    }
    if (const auto* v = e.find("trace")) {
      s.options.trace = v->asBool();
    }
    if (const auto* v = e.find("warm_prefix")) {
      s.options.warm_prefix = v->asInt();
    }
    if (const auto* v = e.find("faults")) {
      s.options.faults = parseFaultsConfig(*v);
    }
    if (const auto* v = e.find("metrics")) {
      s.options.metrics = parseMetricsConfig(*v);
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

namespace {

/// Iterations the trainer will simulate per epoch for this spec — the
/// same arithmetic as Trainer::iterationsPerEpochFull + the cap.
std::int64_t simulatedItersPerEpoch(const ExperimentSpec& spec) {
  const dl::ModelSpec model = dl::workload(spec.workload);
  const dl::DatasetSpec dataset = dl::datasetFor(model);
  const int gpu_count = spec.config == SystemConfig::AllGpus16 ? 16 : 8;
  const int batch_per_gpu = spec.options.trainer.batch_per_gpu > 0
                                ? spec.options.trainer.batch_per_gpu
                                : model.paper_batch_per_gpu;
  const std::int64_t global_batch =
      static_cast<std::int64_t>(batch_per_gpu) * gpu_count *
      std::max(1, spec.options.trainer.gradient_accumulation_steps);
  std::int64_t full =
      (dataset.train_samples + global_batch - 1) / global_batch;
  if (spec.options.trainer.max_iterations_per_epoch > 0) {
    full = std::min<std::int64_t>(
        full, spec.options.trainer.max_iterations_per_epoch);
  }
  return full;
}

}  // namespace

bool warmPrefixApplicable(const ExperimentSpec& spec) {
  const std::int64_t w = spec.options.warm_prefix;
  if (w <= 0) return false;
  if (spec.options.faults.enabled) return false;
  if (spec.options.trainer.checkpoint_every_iters > 0 &&
      w >= spec.options.trainer.checkpoint_every_iters) {
    return false;
  }
  return w < simulatedItersPerEpoch(spec);
}

std::string warmPrefixKey(const ExperimentSpec& spec) {
  const dl::TrainerOptions& t = spec.options.trainer;
  std::ostringstream key;
  key << spec.workload << '|' << toString(spec.config)               //
      << "|strategy=" << static_cast<int>(t.strategy)                //
      << "|precision=" << static_cast<int>(t.precision)              //
      << "|sharded=" << t.sharded                                    //
      << "|optimizer=" << static_cast<int>(t.optimizer.kind)         //
      << "|batch=" << t.batch_per_gpu                                //
      << "|accum=" << t.gradient_accumulation_steps                  //
      << "|groups=" << t.macro_groups                                //
      << "|buckets=" << t.gradient_buckets                           //
      << "|step_overhead=" << t.step_overhead                        //
      << "|ckpt_epoch=" << t.checkpoint_each_epoch                   //
      << "|ckpt_iters=" << t.checkpoint_every_iters                  //
      << "|allreduce=" << static_cast<int>(t.allreduce_algorithm)    //
      << "|prefetch=" << t.pipeline.prefetch_batches                 //
      << "|workers=" << t.pipeline.preprocess_workers                //
      << "|pattern=" << static_cast<int>(t.pipeline.pattern)         //
      << "|seed=" << t.seed                                          //
      << "|sample=" << spec.options.sample_interval                  //
      << "|scrape=" << spec.options.metrics.scrape_interval          //
      << "|trace=" << spec.options.trace                             //
      << "|warm=" << spec.options.warm_prefix << "|alerts=";
  for (const std::string& rule : spec.options.metrics.alerts) {
    key << rule << ';';
  }
  return key.str();
}

ExperimentResult runExperimentSpec(const ExperimentSpec& spec) {
  const dl::ModelSpec model = dl::workload(spec.workload);
  if (warmPrefixApplicable(spec)) {
    WarmedExperiment warmed(spec.config, model, spec.options);
    return warmed.finish();
  }
  return Experiment::run(spec.config, model, spec.options);
}

}  // namespace composim::core
