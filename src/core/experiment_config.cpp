#include "core/experiment_config.hpp"

#include <stdexcept>

namespace composim::core {

SystemConfig configFromName(const std::string& name) {
  for (const auto c : allConfigs()) {
    if (name == toString(c)) return c;
  }
  if (name == toString(SystemConfig::AllGpus16)) return SystemConfig::AllGpus16;
  throw std::invalid_argument("unknown configuration '" + name + "'");
}

dl::ModelSpec benchmarkFromName(const std::string& name) {
  for (const auto& m : dl::benchmarkZoo()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown benchmark '" + name + "'");
}

namespace {

dl::Strategy strategyFromName(const std::string& name) {
  if (name == "ddp" || name == "DDP") return dl::Strategy::DistributedDataParallel;
  if (name == "dp" || name == "DP") return dl::Strategy::DataParallel;
  throw std::invalid_argument("unknown strategy '" + name + "'");
}

devices::Precision precisionFromName(const std::string& name) {
  if (name == "fp16" || name == "FP16") return devices::Precision::FP16;
  if (name == "fp32" || name == "FP32") return devices::Precision::FP32;
  throw std::invalid_argument("unknown precision '" + name + "'");
}

}  // namespace

FaultsConfig parseFaultsConfig(const falcon::Json& doc) {
  FaultsConfig faults;
  faults.enabled = true;
  if (const auto* v = doc.find("seed")) {
    faults.seed = static_cast<std::uint64_t>(v->asInt());
  }
  if (const auto* v = doc.find("poll_interval")) {
    faults.health_poll_interval = v->asDouble();
  }
  if (const auto* v = doc.find("error_storm_threshold")) {
    faults.error_storm_threshold = static_cast<std::uint64_t>(v->asInt());
  }
  if (const auto* v = doc.find("spare_gpus")) {
    faults.spare_gpus = static_cast<int>(v->asInt());
  }
  if (const auto* v = doc.find("attach_failure_rate")) {
    faults.attach_failure_rate = v->asDouble();
  }
  if (const auto* v = doc.find("max_attach_retries")) {
    faults.policy.max_attach_retries = static_cast<int>(v->asInt());
  }
  if (const auto* v = doc.find("gpu_falloffs")) {
    for (const auto& f : v->asArray()) {
      faults.gpu_falloffs.push_back({static_cast<int>(f.at("gpu").asInt()),
                                     f.at("at").asDouble()});
    }
  }
  if (const auto* v = doc.find("ecc_storms")) {
    for (const auto& f : v->asArray()) {
      FaultsConfig::EccStorm storm;
      storm.gpu_index = static_cast<int>(f.at("gpu").asInt());
      storm.at = f.at("at").asDouble();
      if (const auto* e = f.find("errors")) {
        storm.errors = static_cast<std::uint64_t>(e->asInt());
      }
      faults.ecc_storms.push_back(storm);
    }
  }
  if (const auto* v = doc.find("host_port_flaps")) {
    for (const auto& f : v->asArray()) {
      faults.host_port_flaps.push_back({static_cast<int>(f.at("port").asInt()),
                                        f.at("at").asDouble(),
                                        f.at("downtime").asDouble()});
    }
  }
  return faults;
}

MetricsConfig parseMetricsConfig(const falcon::Json& doc) {
  MetricsConfig metrics;
  if (const auto* v = doc.find("scrape_interval")) {
    metrics.scrape_interval = v->asDouble();
  }
  if (const auto* v = doc.find("alerts")) {
    for (const auto& rule : v->asArray()) {
      // Validate at parse time so a bad suite fails before any run starts.
      telemetry::parseAlertRule(rule.asString());
      metrics.alerts.push_back(rule.asString());
    }
  }
  return metrics;
}

std::vector<ExperimentSpec> parseExperimentSuite(const falcon::Json& doc) {
  std::vector<ExperimentSpec> specs;
  for (const auto& e : doc.at("experiments").asArray()) {
    ExperimentSpec s;
    s.name = e.at("name").asString();
    s.benchmark = e.at("benchmark").asString();
    benchmarkFromName(s.benchmark);  // validate early
    s.config = configFromName(e.at("config").asString());
    if (const auto* v = e.find("epochs")) {
      s.options.trainer.epochs = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("iterations_cap")) {
      s.options.trainer.max_iterations_per_epoch = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("batch_per_gpu")) {
      s.options.trainer.batch_per_gpu = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("strategy")) {
      s.options.trainer.strategy = strategyFromName(v->asString());
    }
    if (const auto* v = e.find("precision")) {
      s.options.trainer.precision = precisionFromName(v->asString());
    }
    if (const auto* v = e.find("sharded")) {
      s.options.trainer.sharded = v->asBool();
    }
    if (const auto* v = e.find("accumulation")) {
      s.options.trainer.gradient_accumulation_steps = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("sample_interval")) {
      s.options.sample_interval = v->asDouble();
    }
    if (const auto* v = e.find("trace")) {
      s.options.trace = v->asBool();
    }
    if (const auto* v = e.find("faults")) {
      s.options.faults = parseFaultsConfig(*v);
    }
    if (const auto* v = e.find("metrics")) {
      s.options.metrics = parseMetricsConfig(*v);
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

ExperimentResult runExperimentSpec(const ExperimentSpec& spec) {
  return Experiment::run(spec.config, benchmarkFromName(spec.benchmark),
                         spec.options);
}

}  // namespace composim::core
