#include "core/experiment_config.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace composim::core {

SystemConfig configFromName(const std::string& name) {
  for (const auto c : allConfigs()) {
    if (name == toString(c)) return c;
  }
  if (name == toString(SystemConfig::AllGpus16)) return SystemConfig::AllGpus16;
  throw std::invalid_argument("unknown configuration '" + name + "'");
}

dl::ModelSpec benchmarkFromName(const std::string& name) {
  return dl::workload(name);
}

namespace {

dl::Strategy strategyFromName(const std::string& name) {
  if (name == "ddp" || name == "DDP") return dl::Strategy::DistributedDataParallel;
  if (name == "dp" || name == "DP") return dl::Strategy::DataParallel;
  throw std::invalid_argument("unknown strategy '" + name + "'");
}

devices::Precision precisionFromName(const std::string& name) {
  if (name == "fp16" || name == "FP16") return devices::Precision::FP16;
  if (name == "fp32" || name == "FP32") return devices::Precision::FP32;
  throw std::invalid_argument("unknown precision '" + name + "'");
}

}  // namespace

namespace {

constexpr const char* kFaultKinds =
    "valid fault kinds: gpu_falloffs [{gpu, at}], "
    "ecc_storms [{gpu, at, errors?}], host_port_flaps [{port, at, downtime}]";

constexpr const char* kFaultSettings =
    "valid settings: seed, poll_interval, error_storm_threshold, spare_gpus, "
    "attach_failure_rate, max_attach_retries, attach_backoff_initial, "
    "attach_backoff_multiplier, attach_backoff_max, attach_backoff_jitter, "
    "attach_retry_budget, proactive_on_error_storm";

Status faultsError(const std::string& what) {
  return Status::invalidArgument("faults: " + what + "; " + kFaultKinds +
                                 "; " + kFaultSettings);
}

/// Every fault-entry object must carry exactly the keys its kind defines
/// (a typo'd or misplaced key silently changing a schedule is how a
/// reproducer stops reproducing).
Status checkEntryKeys(const falcon::Json& entry, const char* kind,
                      std::initializer_list<const char*> required,
                      std::initializer_list<const char*> optional) {
  if (!entry.isObject()) {
    return faultsError(std::string(kind) + " entries must be objects");
  }
  for (const auto& [key, value] : entry.asObject()) {
    (void)value;
    bool known = false;
    for (const char* k : required) known = known || key == k;
    for (const char* k : optional) known = known || key == k;
    if (!known) {
      return faultsError("unknown key '" + key + "' in " + kind + " entry");
    }
  }
  for (const char* k : required) {
    if (entry.find(k) == nullptr) {
      return faultsError(std::string(kind) + " entry missing key '" + k + "'");
    }
  }
  return Status::success();
}

}  // namespace

Status parseFaultsConfig(const falcon::Json& doc, FaultsConfig* out) {
  if (!doc.isObject()) {
    return faultsError("document must be a JSON object");
  }
  static constexpr const char* kKnownKeys[] = {
      "seed",          "poll_interval",       "error_storm_threshold",
      "spare_gpus",    "attach_failure_rate", "max_attach_retries",
      "attach_backoff_initial",  "attach_backoff_multiplier",
      "attach_backoff_max",      "attach_backoff_jitter",
      "attach_retry_budget",     "proactive_on_error_storm",
      "gpu_falloffs",  "ecc_storms",          "host_port_flaps"};
  for (const auto& [key, value] : doc.asObject()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) return faultsError("unknown key '" + key + "'");
  }

  FaultsConfig faults;
  faults.enabled = true;
  try {
    if (const auto* v = doc.find("seed")) {
      faults.seed = static_cast<std::uint64_t>(v->asInt());
    }
    if (const auto* v = doc.find("poll_interval")) {
      faults.health_poll_interval = v->asDouble();
      if (faults.health_poll_interval <= 0.0) {
        return faultsError("poll_interval must be > 0");
      }
    }
    if (const auto* v = doc.find("error_storm_threshold")) {
      faults.error_storm_threshold = static_cast<std::uint64_t>(v->asInt());
    }
    if (const auto* v = doc.find("spare_gpus")) {
      faults.spare_gpus = static_cast<int>(v->asInt());
      if (faults.spare_gpus < 0) return faultsError("spare_gpus must be >= 0");
    }
    if (const auto* v = doc.find("attach_failure_rate")) {
      faults.attach_failure_rate = v->asDouble();
      if (faults.attach_failure_rate < 0.0 || faults.attach_failure_rate > 1.0) {
        return faultsError("attach_failure_rate must be in [0, 1]");
      }
    }
    if (const auto* v = doc.find("max_attach_retries")) {
      faults.policy.max_attach_retries = static_cast<int>(v->asInt());
    }
    if (const auto* v = doc.find("attach_backoff_initial")) {
      faults.policy.attach_backoff_initial = v->asDouble();
    }
    if (const auto* v = doc.find("attach_backoff_multiplier")) {
      faults.policy.attach_backoff_multiplier = v->asDouble();
    }
    if (const auto* v = doc.find("attach_backoff_max")) {
      faults.policy.attach_backoff_max = v->asDouble();
    }
    if (const auto* v = doc.find("attach_backoff_jitter")) {
      faults.policy.attach_backoff_jitter = v->asDouble();
      if (faults.policy.attach_backoff_jitter < 0.0 ||
          faults.policy.attach_backoff_jitter >= 1.0) {
        return faultsError("attach_backoff_jitter must be in [0, 1)");
      }
    }
    if (const auto* v = doc.find("attach_retry_budget")) {
      faults.policy.attach_retry_budget = v->asDouble();
      if (faults.policy.attach_retry_budget < 0.0) {
        return faultsError("attach_retry_budget must be >= 0");
      }
    }
    if (const auto* v = doc.find("proactive_on_error_storm")) {
      faults.policy.proactive_on_error_storm = v->asBool();
    }
    if (const auto* v = doc.find("gpu_falloffs")) {
      for (const auto& f : v->asArray()) {
        if (Status st = checkEntryKeys(f, "gpu_falloffs", {"gpu", "at"}, {});
            !st.ok) {
          return st;
        }
        faults.gpu_falloffs.push_back({static_cast<int>(f.at("gpu").asInt()),
                                       f.at("at").asDouble()});
      }
    }
    if (const auto* v = doc.find("ecc_storms")) {
      for (const auto& f : v->asArray()) {
        if (Status st =
                checkEntryKeys(f, "ecc_storms", {"gpu", "at"}, {"errors"});
            !st.ok) {
          return st;
        }
        FaultsConfig::EccStorm storm;
        storm.gpu_index = static_cast<int>(f.at("gpu").asInt());
        storm.at = f.at("at").asDouble();
        if (const auto* e = f.find("errors")) {
          storm.errors = static_cast<std::uint64_t>(e->asInt());
        }
        faults.ecc_storms.push_back(storm);
      }
    }
    if (const auto* v = doc.find("host_port_flaps")) {
      for (const auto& f : v->asArray()) {
        if (Status st = checkEntryKeys(f, "host_port_flaps",
                                       {"port", "at", "downtime"}, {});
            !st.ok) {
          return st;
        }
        faults.host_port_flaps.push_back(
            {static_cast<int>(f.at("port").asInt()), f.at("at").asDouble(),
             f.at("downtime").asDouble()});
      }
    }
  } catch (const std::exception& e) {
    // Shape errors from asInt/asDouble/at surface as JsonError.
    return faultsError(e.what());
  }
  *out = std::move(faults);
  return Status::success();
}

FaultsConfig parseFaultsConfig(const falcon::Json& doc) {
  FaultsConfig faults;
  const Status st = parseFaultsConfig(doc, &faults);
  if (!st.ok) throw std::invalid_argument(st.detail);
  return faults;
}

falcon::Json faultsConfigToJson(const FaultsConfig& faults) {
  // Fixed key order and defaults always emitted: shrunk chaos reproducers
  // must be byte-stable across runs, so the dump never depends on which
  // keys the source document happened to set.
  falcon::Json doc = falcon::Json::object();
  doc.set("seed", falcon::Json(static_cast<std::int64_t>(faults.seed)));
  doc.set("poll_interval", falcon::Json(faults.health_poll_interval));
  doc.set("error_storm_threshold",
          falcon::Json(static_cast<std::int64_t>(faults.error_storm_threshold)));
  doc.set("spare_gpus", falcon::Json(static_cast<std::int64_t>(faults.spare_gpus)));
  doc.set("attach_failure_rate", falcon::Json(faults.attach_failure_rate));
  doc.set("max_attach_retries",
          falcon::Json(static_cast<std::int64_t>(faults.policy.max_attach_retries)));
  doc.set("attach_backoff_initial",
          falcon::Json(faults.policy.attach_backoff_initial));
  doc.set("attach_backoff_multiplier",
          falcon::Json(faults.policy.attach_backoff_multiplier));
  doc.set("attach_backoff_max", falcon::Json(faults.policy.attach_backoff_max));
  doc.set("attach_backoff_jitter",
          falcon::Json(faults.policy.attach_backoff_jitter));
  doc.set("attach_retry_budget",
          falcon::Json(faults.policy.attach_retry_budget));
  doc.set("proactive_on_error_storm",
          falcon::Json(faults.policy.proactive_on_error_storm));
  falcon::Json falloffs = falcon::Json::array();
  for (const auto& f : faults.gpu_falloffs) {
    falcon::Json e = falcon::Json::object();
    e.set("gpu", falcon::Json(static_cast<std::int64_t>(f.gpu_index)));
    e.set("at", falcon::Json(f.at));
    falloffs.push(std::move(e));
  }
  doc.set("gpu_falloffs", std::move(falloffs));
  falcon::Json storms = falcon::Json::array();
  for (const auto& s : faults.ecc_storms) {
    falcon::Json e = falcon::Json::object();
    e.set("gpu", falcon::Json(static_cast<std::int64_t>(s.gpu_index)));
    e.set("at", falcon::Json(s.at));
    e.set("errors", falcon::Json(static_cast<std::int64_t>(s.errors)));
    storms.push(std::move(e));
  }
  doc.set("ecc_storms", std::move(storms));
  falcon::Json flaps = falcon::Json::array();
  for (const auto& h : faults.host_port_flaps) {
    falcon::Json e = falcon::Json::object();
    e.set("port", falcon::Json(static_cast<std::int64_t>(h.port)));
    e.set("at", falcon::Json(h.at));
    e.set("downtime", falcon::Json(h.downtime));
    flaps.push(std::move(e));
  }
  doc.set("host_port_flaps", std::move(flaps));
  return doc;
}

SimTime earliestFaultTime(const FaultsConfig& faults) {
  SimTime t = std::numeric_limits<SimTime>::infinity();
  for (const auto& f : faults.gpu_falloffs) t = std::min(t, f.at);
  for (const auto& s : faults.ecc_storms) t = std::min(t, s.at);
  for (const auto& h : faults.host_port_flaps) t = std::min(t, h.at);
  return t;
}

MetricsConfig parseMetricsConfig(const falcon::Json& doc) {
  MetricsConfig metrics;
  if (const auto* v = doc.find("scrape_interval")) {
    metrics.scrape_interval = v->asDouble();
  }
  if (const auto* v = doc.find("alerts")) {
    for (const auto& rule : v->asArray()) {
      // Validate at parse time so a bad suite fails before any run starts.
      telemetry::parseAlertRule(rule.asString());
      metrics.alerts.push_back(rule.asString());
    }
  }
  return metrics;
}

std::vector<ExperimentSpec> parseExperimentSuite(const falcon::Json& doc) {
  std::vector<ExperimentSpec> specs;
  for (const auto& e : doc.at("experiments").asArray()) {
    ExperimentSpec s;
    s.name = e.at("name").asString();
    if (const auto* v = e.find("workload")) {
      s.workload = v->asString();
    } else if (const auto* v2 = e.find("benchmark")) {
      s.workload = v2->asString();  // legacy key
    } else {
      throw std::invalid_argument("experiment '" + s.name +
                                  "' has no \"workload\" key");
    }
    s.options.workload = s.workload;
    dl::workload(s.workload);  // validate early (throws with known names)
    s.config = configFromName(e.at("config").asString());
    if (const auto* v = e.find("epochs")) {
      s.options.trainer.epochs = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("iterations_cap")) {
      s.options.trainer.max_iterations_per_epoch = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("batch_per_gpu")) {
      s.options.trainer.batch_per_gpu = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("strategy")) {
      s.options.trainer.strategy = strategyFromName(v->asString());
    }
    if (const auto* v = e.find("precision")) {
      s.options.trainer.precision = precisionFromName(v->asString());
    }
    if (const auto* v = e.find("sharded")) {
      s.options.trainer.sharded = v->asBool();
    }
    if (const auto* v = e.find("accumulation")) {
      s.options.trainer.gradient_accumulation_steps = static_cast<int>(v->asInt());
    }
    if (const auto* v = e.find("sample_interval")) {
      s.options.sample_interval = v->asDouble();
    }
    if (const auto* v = e.find("trace")) {
      s.options.trace = v->asBool();
    }
    if (const auto* v = e.find("analysis")) {
      s.options.analysis = v->asBool();
    }
    if (const auto* v = e.find("trace_max_records")) {
      s.options.trace_max_records = static_cast<std::size_t>(v->asInt());
    }
    if (const auto* v = e.find("warm_prefix")) {
      s.options.warm_prefix = v->asInt();
    }
    if (const auto* v = e.find("watchdog")) {
      s.options.watchdog = v->asDouble();
    }
    if (const auto* v = e.find("hierarchical_routing")) {
      s.options.hierarchical_routing = v->asBool();
    }
    if (const auto* v = e.find("faults")) {
      s.options.faults = parseFaultsConfig(*v);
    }
    if (const auto* v = e.find("metrics")) {
      s.options.metrics = parseMetricsConfig(*v);
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

namespace {

/// Iterations the trainer will simulate per epoch for this spec — the
/// same arithmetic as Trainer::iterationsPerEpochFull + the cap.
std::int64_t simulatedItersPerEpoch(const ExperimentSpec& spec) {
  const dl::ModelSpec model = dl::workload(spec.workload);
  const dl::DatasetSpec dataset = dl::datasetFor(model);
  const int gpu_count = spec.config == SystemConfig::AllGpus16 ? 16 : 8;
  const int batch_per_gpu = spec.options.trainer.batch_per_gpu > 0
                                ? spec.options.trainer.batch_per_gpu
                                : model.paper_batch_per_gpu;
  const std::int64_t global_batch =
      static_cast<std::int64_t>(batch_per_gpu) * gpu_count *
      std::max(1, spec.options.trainer.gradient_accumulation_steps);
  std::int64_t full =
      (dataset.train_samples + global_batch - 1) / global_batch;
  if (spec.options.trainer.max_iterations_per_epoch > 0) {
    full = std::min<std::int64_t>(
        full, spec.options.trainer.max_iterations_per_epoch);
  }
  return full;
}

}  // namespace

bool warmPrefixApplicable(const ExperimentSpec& spec) {
  const std::int64_t w = spec.options.warm_prefix;
  if (w <= 0) return false;
  // Fault schedules are fork-eligible: activation is deferred to the
  // resume step, so a prefix is fault-free whenever every injection time
  // lands inside the tail. That is a run-time property (it needs the
  // pause boundary's simulated time); WarmedExperiment validates it and
  // callers fall back to a cold run when it fails.
  if (spec.options.trainer.checkpoint_every_iters > 0 &&
      w >= spec.options.trainer.checkpoint_every_iters) {
    return false;
  }
  return w < simulatedItersPerEpoch(spec);
}

std::string warmPrefixKey(const ExperimentSpec& spec) {
  const dl::TrainerOptions& t = spec.options.trainer;
  std::ostringstream key;
  key << spec.workload << '|' << toString(spec.config)               //
      << "|strategy=" << static_cast<int>(t.strategy)                //
      << "|precision=" << static_cast<int>(t.precision)              //
      << "|sharded=" << t.sharded                                    //
      << "|optimizer=" << static_cast<int>(t.optimizer.kind)         //
      << "|batch=" << t.batch_per_gpu                                //
      << "|accum=" << t.gradient_accumulation_steps                  //
      << "|groups=" << t.macro_groups                                //
      << "|buckets=" << t.gradient_buckets                           //
      << "|step_overhead=" << t.step_overhead                        //
      << "|ckpt_epoch=" << t.checkpoint_each_epoch                   //
      << "|ckpt_iters=" << t.checkpoint_every_iters                  //
      << "|allreduce=" << static_cast<int>(t.allreduce_algorithm)    //
      << "|prefetch=" << t.pipeline.prefetch_batches                 //
      << "|workers=" << t.pipeline.preprocess_workers                //
      << "|pattern=" << static_cast<int>(t.pipeline.pattern)         //
      << "|seed=" << t.seed                                          //
      // Spares are installed at construction, so they are prefix
      // topology; every other faults field only shapes the tail.
      << "|spares="
      << (spec.options.faults.enabled ? spec.options.faults.spare_gpus : 0)  //
      << "|sample=" << spec.options.sample_interval                  //
      << "|scrape=" << spec.options.metrics.scrape_interval          //
      << "|trace=" << spec.options.trace                             //
      // Analysis implies trace and a record cap changes what the forked
      // profiler carries, so both are prefix-compatibility inputs.
      << "|analyze=" << spec.options.analysis                        //
      << "|trace_cap=" << spec.options.trace_max_records             //
      // Hierarchical routing may pick a different equal-cost path, so a
      // warmed prefix is only reusable under the same routing mode.
      << "|hier=" << spec.options.hierarchical_routing               //
      << "|warm=" << spec.options.warm_prefix << "|alerts=";
  for (const std::string& rule : spec.options.metrics.alerts) {
    key << rule << ';';
  }
  return key.str();
}

ExperimentResult runExperimentSpec(const ExperimentSpec& spec) {
  const dl::ModelSpec model = dl::workload(spec.workload);
  if (warmPrefixApplicable(spec)) {
    if (!spec.options.faults.enabled) {
      WarmedExperiment warmed(spec.config, model, spec.options);
      return warmed.finish();
    }
    // A faulted spec is only phased when its whole schedule lands inside
    // the tail — knowable only once the prefix's pause time exists. The
    // ctor validates and throws; fall back to a continuous run then.
    // (Only ctor errors are caught: a watchdog trip in finish() must
    // propagate as the run's failure, not trigger a doomed re-run.)
    std::optional<WarmedExperiment> warmed;
    try {
      warmed.emplace(spec.config, model, spec.options);
    } catch (const std::runtime_error&) {
      return Experiment::run(spec.config, model, spec.options);
    }
    return warmed->finish();
  }
  return Experiment::run(spec.config, model, spec.options);
}

}  // namespace composim::core
