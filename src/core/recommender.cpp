#include "core/recommender.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace composim::core {

void Recommender::addRun(const ExperimentResult& result,
                         const dl::ModelSpec& model) {
  RunRecord r;
  r.benchmark = result.benchmark;
  r.config = result.config;
  r.time_seconds = result.training.extrapolated_total_time;
  r.samples_per_second = result.training.samples_per_second;
  r.param_bytes =
      static_cast<double>(model.paramBytes(devices::Precision::FP16));
  r.flops_per_sample = model.forwardFlopsPerSample();
  addRun(std::move(r));
}

void Recommender::addRun(RunRecord record) { runs_.push_back(std::move(record)); }

std::optional<Recommendation> Recommender::recommendAmong(
    const std::vector<const RunRecord*>& candidates) const {
  if (candidates.empty()) return std::nullopt;
  const RunRecord* best = candidates.front();
  const RunRecord* best_falcon = nullptr;
  for (const RunRecord* r : candidates) {
    if (r->time_seconds < best->time_seconds) best = r;
    const bool involves_falcon = r->config == SystemConfig::FalconGpus ||
                                 r->config == SystemConfig::HybridGpus ||
                                 r->config == SystemConfig::FalconNvme;
    if (involves_falcon &&
        (best_falcon == nullptr || r->time_seconds < best_falcon->time_seconds)) {
      best_falcon = r;
    }
  }
  Recommendation rec;
  rec.config = best->config;
  rec.expected_time_seconds = best->time_seconds;
  if (best_falcon != nullptr && best->time_seconds > 0.0) {
    rec.composability_overhead_pct =
        100.0 * (best_falcon->time_seconds - best->time_seconds) /
        best->time_seconds;
  }
  rec.rationale = "fastest of " + std::to_string(candidates.size()) +
                  " measured configurations for '" + best->benchmark + "'";
  return rec;
}

std::optional<Recommendation> Recommender::recommendFor(
    const std::string& benchmark) const {
  std::vector<const RunRecord*> candidates;
  for (const auto& r : runs_) {
    if (r.benchmark == benchmark) candidates.push_back(&r);
  }
  return recommendAmong(candidates);
}

std::optional<Recommendation> Recommender::recommendFor(
    const dl::ModelSpec& model) const {
  if (runs_.empty()) return std::nullopt;
  // Find the most similar measured benchmark in log space.
  const double pb = std::log(
      std::max(1.0, static_cast<double>(model.paramBytes(devices::Precision::FP16))));
  const double fl = std::log(std::max(1.0, model.forwardFlopsPerSample()));
  double best_dist = std::numeric_limits<double>::infinity();
  std::string best_name;
  for (const auto& r : runs_) {
    const double d = std::hypot(std::log(std::max(1.0, r.param_bytes)) - pb,
                                std::log(std::max(1.0, r.flops_per_sample)) - fl);
    if (d < best_dist) {
      best_dist = d;
      best_name = r.benchmark;
    }
  }
  auto rec = recommendFor(best_name);
  if (rec) {
    rec->rationale += " (nearest measured workload to '" + model.name + "')";
  }
  return rec;
}

}  // namespace composim::core
