#include "core/chaos/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace composim::core::chaos {

void OracleRegistry::add(std::string name, Oracle oracle) {
  oracles_.emplace_back(std::move(name), std::move(oracle));
}

std::vector<OracleVerdict> OracleRegistry::evaluate(
    const OracleInput& input) const {
  std::vector<OracleVerdict> verdicts;
  verdicts.reserve(oracles_.size());
  for (const auto& [name, oracle] : oracles_) {
    OracleVerdict v;
    v.oracle = name;
    try {
      const Status st = oracle(input);
      v.passed = st.ok;
      v.detail = st.detail;
    } catch (const std::exception& e) {
      v.passed = false;
      v.detail = std::string("oracle threw: ") + e.what();
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

namespace {

bool isWatchdogFailure(const Status& st) {
  return !st.ok && st.detail.find("watchdog:") != std::string::npos;
}

Status livenessTerminalState(const OracleInput& in) {
  if (isWatchdogFailure(*in.run_status)) {
    return Status::failedPrecondition(
        "liveness: run hit the simulated-time watchdog (hung gang): " +
        in.run_status->detail);
  }
  if (in.result != nullptr && in.result->recovery.enabled &&
      in.result->recovery.terminal_state == RecoveryTerminalState::InFlight) {
    return Status::failedPrecondition(
        "liveness: an incident was still open when the run ended");
  }
  return Status::success();
}

Status honestyTypedStatus(const OracleInput& in) {
  if (!in.run_status->ok) {
    if (in.run_status->code == StatusCode::Ok) {
      return Status::failedPrecondition(
          "honesty: failed run carries StatusCode::Ok");
    }
    if (in.run_status->detail.empty()) {
      return Status::failedPrecondition(
          "honesty: failed run carries no detail");
    }
    return Status::success();
  }
  if (in.result == nullptr) {
    return Status::failedPrecondition("honesty: ok run without a result");
  }
  const auto& t = in.result->training;
  if (!t.completed && t.error.empty()) {
    return Status::failedPrecondition(
        "honesty: training failed with an empty error (silent failure)");
  }
  if (in.result->recovery.enabled &&
      in.result->recovery.terminal_state ==
          RecoveryTerminalState::Unrecoverable &&
      t.completed) {
    return Status::failedPrecondition(
        "honesty: unrecoverable run reported completed=true (silent success)");
  }
  return Status::success();
}

Status safetyIterationAccounting(const OracleInput& in) {
  if (in.result == nullptr) return Status::success();  // liveness/honesty own it
  const auto& t = in.result->training;
  const auto& opts = in.spec->options.trainer;
  if (t.lost_iterations < 0) {
    return Status::failedPrecondition(
        "safety: negative lost_iterations (" +
        std::to_string(t.lost_iterations) + ")");
  }
  if (t.restores == 0 && t.lost_iterations != 0) {
    return Status::failedPrecondition(
        "safety: " + std::to_string(t.lost_iterations) +
        " iterations lost without any restore");
  }
  // Each restore rewinds at most one replay window.
  const std::int64_t window = opts.checkpoint_every_iters > 0
                                  ? opts.checkpoint_every_iters
                                  : opts.max_iterations_per_epoch;
  if (window > 0 && t.lost_iterations > t.restores * window) {
    return Status::failedPrecondition(
        "safety: lost " + std::to_string(t.lost_iterations) +
        " iterations > restores(" + std::to_string(t.restores) +
        ") x replay window(" + std::to_string(window) + ")");
  }
  // A completed capped run commits exactly epochs x cap iterations (the
  // cap binds for every campaign workload at any surviving gang size).
  if (t.completed && opts.epochs > 0 && opts.max_iterations_per_epoch > 0) {
    const std::int64_t expected =
        static_cast<std::int64_t>(opts.epochs) * opts.max_iterations_per_epoch;
    if (t.iterations_run != expected) {
      return Status::failedPrecondition(
          "safety: completed run committed " +
          std::to_string(t.iterations_run) + " iterations, expected " +
          std::to_string(expected));
    }
  }
  return Status::success();
}

Status safetyFlowConservation(const OracleInput& in) {
  if (in.result == nullptr || !in.result->recovery.enabled) {
    return Status::success();
  }
  const auto& r = in.result->recovery;
  if (r.flows_started != r.flows_completed + r.flows_failed) {
    return Status::failedPrecondition(
        "safety: flow books don't balance: started " +
        std::to_string(r.flows_started) + " != completed " +
        std::to_string(r.flows_completed) + " + failed " +
        std::to_string(r.flows_failed));
  }
  if (r.flows_active_at_end != 0) {
    return Status::failedPrecondition(
        "safety: " + std::to_string(r.flows_active_at_end) +
        " flows still in flight at the end of the run");
  }
  return Status::success();
}

Status safetyQuarantineIsolation(const OracleInput& in) {
  if (in.result == nullptr || !in.result->recovery.enabled) {
    return Status::success();
  }
  const auto& r = in.result->recovery;
  for (std::size_t i = 0; i < r.quarantined_slots.size(); ++i) {
    for (std::size_t j = i + 1; j < r.quarantined_slots.size(); ++j) {
      if (r.quarantined_slots[i].drawer == r.quarantined_slots[j].drawer &&
          r.quarantined_slots[i].index == r.quarantined_slots[j].index) {
        return Status::failedPrecondition(
            "safety: slot {" + std::to_string(r.quarantined_slots[i].drawer) +
            "," + std::to_string(r.quarantined_slots[i].index) +
            "} quarantined twice");
      }
    }
  }
  for (const auto& inc : r.incidents) {
    if (inc.spare_slot.drawer < 0) continue;
    for (const auto& q : r.quarantined_slots) {
      if (q.drawer == inc.spare_slot.drawer &&
          q.index == inc.spare_slot.index) {
        return Status::failedPrecondition(
            "safety: spare attached to quarantined slot {" +
            std::to_string(q.drawer) + "," + std::to_string(q.index) + "}");
      }
    }
  }
  return Status::success();
}

Status safetyDetectionConsistency(const OracleInput& in) {
  if (in.result == nullptr || !in.result->recovery.enabled) {
    return Status::success();
  }
  const auto& r = in.result->recovery;
  const auto& faults = in.spec->options.faults;
  const std::size_t scheduled = faults.gpu_falloffs.size() +
                                faults.ecc_storms.size() +
                                faults.host_port_flaps.size();
  if (scheduled == 0) {
    if (!r.detections_log.empty()) {
      return Status::failedPrecondition(
          "safety: " + std::to_string(r.detections_log.size()) +
          " detections without any scheduled fault");
    }
    return Status::success();
  }
  // Every detection must join an injected fault record within one health
  // poll: detections the schedule can't explain mean the monitor or the
  // injector history is lying.
  const SimTime slack = faults.health_poll_interval + 1e-6;
  for (const auto& ev : r.detections_log) {
    const fabric::FaultRecord* latest = nullptr;
    for (const auto& f : r.fault_history) {
      if (f.time <= ev.time + 1e-9 && (!latest || f.time > latest->time)) {
        latest = &f;
      }
    }
    if (latest == nullptr) {
      return Status::failedPrecondition(
          "safety: detection at t=" + std::to_string(ev.time) +
          " precedes every injected fault");
    }
    if (ev.time - latest->time > slack) {
      return Status::failedPrecondition(
          "safety: detection at t=" + std::to_string(ev.time) +
          " lags the latest injected fault (t=" +
          std::to_string(latest->time) + ") by more than one poll");
    }
  }
  return Status::success();
}

}  // namespace

OracleRegistry OracleRegistry::standard() {
  OracleRegistry reg;
  reg.add("liveness.terminal-state", livenessTerminalState);
  reg.add("honesty.typed-status", honestyTypedStatus);
  reg.add("safety.iteration-accounting", safetyIterationAccounting);
  reg.add("safety.flow-conservation", safetyFlowConservation);
  reg.add("safety.quarantine-isolation", safetyQuarantineIsolation);
  reg.add("safety.detection-consistency", safetyDetectionConsistency);
  return reg;
}

}  // namespace composim::core::chaos
