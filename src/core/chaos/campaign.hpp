// composim: deterministic chaos-campaign engine.
//
// A campaign sweeps the recovery layer across the fault space instead of
// hand-picked storms: measure one healthy baseline, sample N seeded
// scenarios anchored to its timing (scenario.hpp), fan them across the
// SweepRunner (--jobs parallelism, submission-ordered results), and
// check every outcome against the invariant-oracle registry
// (oracles.hpp). Failing scenarios shrink to minimal replayable --faults
// reproducers (shrink.hpp).
//
// Everything downstream of the campaign seed is deterministic: scenario
// generation is a pure function of (seed, baseline), each run is the
// same single-threaded event loop it always was, and oracle evaluation
// is a pure function of outcomes — so twin campaigns are byte-identical
// digest-for-digest at any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chaos/oracles.hpp"
#include "core/chaos/scenario.hpp"
#include "core/chaos/shrink.hpp"
#include "core/sweep_runner.hpp"

namespace composim::core::chaos {

struct CampaignOptions {
  std::string workload = "MobileNetV2";
  SystemConfig config = SystemConfig::FalconGpus;
  /// Fault-space sampler (seed, scenario count, targets, capacities).
  ScenarioSpace space;
  /// Worker threads for the scenario sweep (<= 0: hardware concurrency).
  int jobs = 1;
  /// Warm-prefix boundary shared across scenarios (0 = every run cold).
  /// Scenarios whose earliest fault lands inside the prefix fall back to
  /// cold runs automatically (SweepRunner per-member check).
  std::int64_t warm_prefix = 0;
  int epochs = 1;
  int iterations_cap = 12;
  int checkpoint_every_iters = 4;
  SimTime sample_interval = 0.5;
  /// Liveness watchdog per scenario, as a multiple of the healthy
  /// baseline duration (degraded gangs legitimately run several times
  /// slower; a hung gang runs forever — the factor separates the two).
  double watchdog_factor = 25.0;
  /// Optional SLO alert rules installed into every scenario run.
  std::vector<std::string> alerts;
};

/// One scenario's judged outcome.
struct ScenarioOutcome {
  Scenario scenario;
  Status run_status;
  bool survived = false;  // run ok && training completed
  RecoveryTerminalState terminal = RecoveryTerminalState::Idle;
  std::vector<OracleVerdict> verdicts;
  bool oracles_passed = true;
  /// Resolved, non-abandoned incident MTTRs from this run.
  std::vector<double> incident_mttrs;
  /// Canonical fixed-precision one-liner; the campaign digest is the
  /// newline-join of these, and the --jobs byte-identity gate compares
  /// digests across worker counts.
  std::string digest;
};

struct CampaignReport {
  BaselineTiming baseline;
  std::vector<ScenarioOutcome> outcomes;
  int survived = 0;
  double survival_rate = 0.0;
  double mttr_p50 = 0.0;
  double mttr_p95 = 0.0;
  int oracle_failures = 0;        // scenarios with >= 1 failed verdict
  std::uint64_t verdicts_recorded = 0;
  std::string digest;
};

class ChaosCampaign {
 public:
  explicit ChaosCampaign(CampaignOptions options,
                         OracleRegistry oracles = OracleRegistry::standard());

  const CampaignOptions& options() const { return options_; }
  const OracleRegistry& oracles() const { return oracles_; }

  /// One healthy (fault-free) run of the campaign workload; its timing
  /// anchors every scenario's injection times and the watchdog.
  BaselineTiming measureBaseline() const;

  /// The ExperimentSpec a scenario replays as (also the base for
  /// shrinking and reproducer replay).
  ExperimentSpec specForScenario(const Scenario& scenario,
                                 const BaselineTiming& timing) const;

  /// Run the full campaign: baseline, generate, sweep, judge, aggregate.
  CampaignReport run();

 private:
  CampaignOptions options_;
  OracleRegistry oracles_;
};

/// Run one spec with SweepRun semantics (exceptions become a typed
/// internal Status instead of escaping) — the building block for shrink
/// predicates and reproducer replays.
SweepRun runSingleSpec(const ExperimentSpec& spec);

/// Shrink predicate: substitute the candidate schedule into `spec`,
/// replay, and report whether `oracle_name` still fails. `oracles` must
/// contain the named oracle (the predicate returns false otherwise, so
/// shrinking degenerates to a no-op rather than minimizing noise).
FaultPredicate failsOraclePredicate(ExperimentSpec spec,
                                    OracleRegistry oracles,
                                    std::string oracle_name);

}  // namespace composim::core::chaos
