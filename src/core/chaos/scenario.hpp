// composim: chaos-campaign scenario model + seeded fault-space generator.
//
// A scenario is one sampled point in fault space: a fault schedule
// (what fails, when) plus the recovery capacity the run has to absorb it
// (spares, attach noise, backoff policy). The generator stratifies
// injection times across the phase boundaries where recovery bugs hide —
// iteration boundaries, checkpoint boundaries, mid-collective windows —
// anchored to timing measured from one healthy run, and deliberately
// overlaps a fraction of faults inside one detection window so the
// single-incident-per-slot and multi-incident paths both get exercised.
//
// Generation is a pure function of (space, timing): scenario i is drawn
// from its own splitmix-derived RNG stream, so any subset of a campaign
// replays byte-identically in any order on any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace composim::core::chaos {

/// Timing anchors measured from one healthy (fault-free) run of the
/// campaign's workload. All scenario injection times derive from these.
struct BaselineTiming {
  SimTime horizon = 0.0;          // healthy training.simulated_time
  SimTime mean_iteration = 0.0;   // healthy mean iteration time
  std::int64_t iterations = 0;    // iterations the healthy run committed
  SimTime checkpoint_period = 0.0;  // mean_iteration * checkpoint window
};

/// One sampled point in fault space, replayable on its own: `faults` is a
/// complete --faults document (schedule + capacity + policy + seed).
struct Scenario {
  int index = 0;
  std::uint64_t seed = 0;  // campaign seed mixed with index
  FaultsConfig faults;
  /// Compact single-line summary ("3 faults: falloff g2@1.84 ...").
  std::string describe() const;
};

/// The sampled fault space: targets, per-scenario fault counts, and the
/// recovery-capacity choices each scenario draws from.
struct ScenarioSpace {
  std::uint64_t seed = 2026;
  int count = 200;
  int max_faults_per_scenario = 3;
  int gpu_count = 8;                    // falcon GPUs, install order
  std::vector<int> host_ports = {0, 2};
  std::vector<int> spare_choices = {0, 1, 2};
  std::vector<double> attach_failure_choices = {0.0, 0.3, 0.9};
  /// Health-poll cadence for every scenario (also the overlap window).
  SimTime poll_interval = 0.25;
  /// Fraction of non-first faults retimed into the previous fault's
  /// detection window (overlapping-incident coverage).
  double overlap_fraction = 0.25;
};

/// Deterministically sample `space.count` scenarios anchored to `timing`.
std::vector<Scenario> generateScenarios(const ScenarioSpace& space,
                                        const BaselineTiming& timing);

}  // namespace composim::core::chaos
