// composim: invariant oracles for chaos campaigns.
//
// An oracle is a named invariant checked against one scenario's outcome.
// The standard registry covers the three contract families the recovery
// layer must honor under ANY fault interleaving:
//
//   liveness — the run reaches a terminal state (no hung gang: a
//     watchdog trip or an incident still in flight at the end fails);
//   safety   — the books balance afterwards: lost-iteration accounting
//     stays inside the checkpoint replay window, fabric flows conserve
//     (started = completed + failed, none in flight), no spare was
//     attached to a quarantined slot, and every detection in the monitor
//     log joins an injected fault within one poll interval;
//   honesty  — every failure surfaces as a typed Status or a non-empty
//     training error, never a silent success.
//
// Oracles are pure functions of the outcome: evaluating them never
// re-runs anything, so campaign verdicts are deterministic and cheap.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "core/sweep_runner.hpp"

namespace composim::core::chaos {

/// Everything an oracle may look at for one scenario run.
struct OracleInput {
  const ExperimentSpec* spec = nullptr;     // the scenario's spec (faults!)
  const Status* run_status = nullptr;       // SweepRun status
  const ExperimentResult* result = nullptr; // null when !run_status->ok
};

/// One oracle's verdict on one scenario.
struct OracleVerdict {
  std::string oracle;
  bool passed = false;
  std::string detail;  // failure explanation (empty when passed)
};

/// Ordered, named collection of invariants. Evaluation order is the
/// registration order, so verdict vectors are positionally stable.
class OracleRegistry {
 public:
  using Oracle = std::function<Status(const OracleInput&)>;

  void add(std::string name, Oracle oracle);
  std::size_t size() const { return oracles_.size(); }
  const std::vector<std::pair<std::string, Oracle>>& oracles() const {
    return oracles_;
  }

  /// Run every oracle against one outcome; one verdict per oracle, in
  /// registration order. An oracle that throws is recorded as failed
  /// with the exception text (oracle bugs must not pass silently).
  std::vector<OracleVerdict> evaluate(const OracleInput& input) const;

  /// The built-in liveness/safety/honesty invariants described above.
  static OracleRegistry standard();

 private:
  std::vector<std::pair<std::string, Oracle>> oracles_;
};

}  // namespace composim::core::chaos
