#include "core/chaos/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace composim::core::chaos {

namespace {

/// Uniform handle over the three schedule kinds, so ddmin can treat the
/// schedule as one flat atom list while the rebuilt config keeps each
/// fault in its own typed vector (original relative order preserved).
struct FaultAtom {
  enum class Kind { GpuFalloff, EccStorm, HostPortFlap } kind;
  std::size_t src = 0;  // index into the input config's kind vector
  SimTime at = 0.0;     // mutable: the coarsening pass retimes atoms
};

std::vector<FaultAtom> atomize(const FaultsConfig& cfg) {
  std::vector<FaultAtom> atoms;
  for (std::size_t i = 0; i < cfg.gpu_falloffs.size(); ++i) {
    atoms.push_back({FaultAtom::Kind::GpuFalloff, i, cfg.gpu_falloffs[i].at});
  }
  for (std::size_t i = 0; i < cfg.ecc_storms.size(); ++i) {
    atoms.push_back({FaultAtom::Kind::EccStorm, i, cfg.ecc_storms[i].at});
  }
  for (std::size_t i = 0; i < cfg.host_port_flaps.size(); ++i) {
    atoms.push_back(
        {FaultAtom::Kind::HostPortFlap, i, cfg.host_port_flaps[i].at});
  }
  return atoms;
}

FaultsConfig rebuild(const FaultsConfig& input,
                     const std::vector<FaultAtom>& atoms) {
  FaultsConfig out = input;
  out.gpu_falloffs.clear();
  out.ecc_storms.clear();
  out.host_port_flaps.clear();
  for (const FaultAtom& a : atoms) {
    switch (a.kind) {
      case FaultAtom::Kind::GpuFalloff: {
        auto f = input.gpu_falloffs[a.src];
        f.at = a.at;
        out.gpu_falloffs.push_back(f);
        break;
      }
      case FaultAtom::Kind::EccStorm: {
        auto s = input.ecc_storms[a.src];
        s.at = a.at;
        out.ecc_storms.push_back(s);
        break;
      }
      case FaultAtom::Kind::HostPortFlap: {
        auto h = input.host_port_flaps[a.src];
        h.at = a.at;
        out.host_port_flaps.push_back(h);
        break;
      }
    }
  }
  return out;
}

/// Round `t` to `decimals` decimal places (>= 0).
SimTime roundTo(SimTime t, int decimals) {
  double scale = 1.0;
  for (int i = 0; i < decimals; ++i) scale *= 10.0;
  return std::round(t * scale) / scale;
}

}  // namespace

ShrinkOutcome shrinkFaultSchedule(const FaultsConfig& input,
                                  const FaultPredicate& still_fails,
                                  ShrinkOptions options) {
  ShrinkOutcome out;
  out.minimal = input;
  std::vector<FaultAtom> atoms = atomize(input);
  out.initial_faults = static_cast<int>(atoms.size());
  out.minimal_faults = out.initial_faults;

  const auto evaluate = [&](const std::vector<FaultAtom>& candidate) {
    ++out.evaluations;
    return still_fails(rebuild(input, candidate));
  };

  out.input_failed = evaluate(atoms);
  if (!out.input_failed || atoms.empty()) return out;

  // --- ddmin over fault atoms: try dropping whole chunks (complement
  // testing); on success restart with the smaller set, otherwise refine
  // the granularity until chunks are single atoms.
  std::size_t n = 2;
  while (atoms.size() >= 2 && out.evaluations < options.max_evaluations) {
    n = std::min(n, atoms.size());
    bool reduced = false;
    const std::size_t chunk =
        (atoms.size() + n - 1) / n;  // ceil division, >= 1
    for (std::size_t start = 0;
         start < atoms.size() && out.evaluations < options.max_evaluations;
         start += chunk) {
      std::vector<FaultAtom> candidate;
      candidate.reserve(atoms.size());
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(atoms[i]);
      }
      if (candidate.empty()) continue;
      if (evaluate(candidate)) {
        atoms = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= atoms.size()) break;  // single-atom granularity exhausted
      n = std::min(atoms.size(), n * 2);
    }
  }

  // --- Time coarsening: a reproducer with "at": 30.0 tells a human more
  // than "at": 29.847. Try each surviving atom at 1 then 0 decimals,
  // keeping the coarsest time that still fails.
  if (options.coarsen_times) {
    for (std::size_t i = 0;
         i < atoms.size() && out.evaluations < options.max_evaluations; ++i) {
      for (const int decimals : {0, 1}) {
        const SimTime coarse = std::max(0.001, roundTo(atoms[i].at, decimals));
        if (coarse == atoms[i].at) break;  // already this coarse
        std::vector<FaultAtom> candidate = atoms;
        candidate[i].at = coarse;
        if (out.evaluations >= options.max_evaluations) break;
        if (evaluate(candidate)) {
          atoms = std::move(candidate);
          break;  // coarsest first: 0 decimals beats 1
        }
      }
    }
  }

  out.minimal = rebuild(input, atoms);
  out.minimal_faults = static_cast<int>(atoms.size());
  return out;
}

}  // namespace composim::core::chaos
