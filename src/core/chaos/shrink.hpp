// composim: delta-debugging shrinker for failing fault schedules.
//
// Given a schedule that makes some oracle fail, find a smaller schedule
// that still fails it: classic ddmin over the schedule's fault atoms
// (complement testing with doubling granularity), followed by a time
// coarsening pass that rounds each surviving injection time to the
// coarsest decimal that preserves the failure. The result is a minimal
// replayable reproducer — emit it with faultsConfigToJson and feed it
// back through `run_suite --faults`.
//
// Determinism guarantee: the shrinker is a pure search driven by the
// predicate. When the predicate is a deterministic replay (any composim
// experiment with a fixed seed), the same input schedule always shrinks
// to the same minimal schedule in the same number of evaluations.
#pragma once

#include <functional>

#include "core/experiment.hpp"

namespace composim::core::chaos {

/// Returns true when the (complete, replayable) schedule still fails.
using FaultPredicate = std::function<bool(const FaultsConfig&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each one replays a run).
  int max_evaluations = 96;
  /// Round surviving injection times to the coarsest failing decimal.
  bool coarsen_times = true;
};

struct ShrinkOutcome {
  FaultsConfig minimal;     // smallest still-failing schedule found
  bool input_failed = false;  // predicate held on the input schedule
  int evaluations = 0;
  int initial_faults = 0;
  int minimal_faults = 0;
};

/// Shrink `input` against `still_fails`. When the input does not fail
/// the predicate there is nothing to shrink: the outcome carries the
/// input unchanged with input_failed = false.
ShrinkOutcome shrinkFaultSchedule(const FaultsConfig& input,
                                  const FaultPredicate& still_fails,
                                  ShrinkOptions options = {});

}  // namespace composim::core::chaos
