#include "core/chaos/campaign.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.hpp"

namespace composim::core::chaos {

ChaosCampaign::ChaosCampaign(CampaignOptions options, OracleRegistry oracles)
    : options_(std::move(options)), oracles_(std::move(oracles)) {}

BaselineTiming ChaosCampaign::measureBaseline() const {
  ExperimentSpec spec;
  spec.name = "chaos-baseline";
  spec.workload = options_.workload;
  spec.options.workload = options_.workload;
  spec.config = options_.config;
  spec.options.trainer.epochs = options_.epochs;
  spec.options.trainer.max_iterations_per_epoch = options_.iterations_cap;
  spec.options.trainer.checkpoint_every_iters = options_.checkpoint_every_iters;
  spec.options.sample_interval = options_.sample_interval;
  const ExperimentResult healthy = runExperimentSpec(spec);

  BaselineTiming timing;
  timing.horizon = healthy.training.simulated_time;
  timing.mean_iteration = healthy.training.mean_iteration_time;
  timing.iterations = healthy.training.iterations_run;
  timing.checkpoint_period =
      options_.checkpoint_every_iters > 0
          ? healthy.training.mean_iteration_time *
                static_cast<double>(options_.checkpoint_every_iters)
          : 0.0;
  return timing;
}

ExperimentSpec ChaosCampaign::specForScenario(
    const Scenario& scenario, const BaselineTiming& timing) const {
  ExperimentSpec spec;
  char name[32];
  std::snprintf(name, sizeof(name), "chaos-%04d", scenario.index);
  spec.name = name;
  spec.workload = options_.workload;
  spec.options.workload = options_.workload;
  spec.config = options_.config;
  spec.options.trainer.epochs = options_.epochs;
  spec.options.trainer.max_iterations_per_epoch = options_.iterations_cap;
  spec.options.trainer.checkpoint_every_iters = options_.checkpoint_every_iters;
  spec.options.sample_interval = options_.sample_interval;
  spec.options.metrics.alerts = options_.alerts;
  spec.options.warm_prefix = options_.warm_prefix;
  spec.options.faults = scenario.faults;
  spec.options.watchdog =
      options_.watchdog_factor * std::max(1e-3, timing.horizon);
  return spec;
}

namespace {

std::string outcomeDigest(const ScenarioOutcome& o) {
  char buf[256];
  long long iters = 0, lost = 0, restores = 0;
  unsigned long long detections = 0, retries = 0;
  std::size_t gang = 0;
  double mean_mttr = 0.0;
  // The digest only reads plain numbers, so failed runs (no result)
  // digest their zeros plus the status code — still byte-stable.
  std::string verdict_bits;
  for (const auto& v : o.verdicts) verdict_bits += v.passed ? '1' : '0';
  std::snprintf(buf, sizeof(buf),
                "s=%04d code=%d surv=%d term=%s it=%lld lost=%lld rst=%lld "
                "det=%llu ret=%llu gang=%zu mttr=%.6f v=%s",
                o.scenario.index, static_cast<int>(o.run_status.code),
                o.survived ? 1 : 0, toString(o.terminal), iters, lost,
                restores, detections, retries, gang, mean_mttr,
                verdict_bits.c_str());
  return buf;
}

std::string outcomeDigest(const ScenarioOutcome& o,
                          const ExperimentResult& r) {
  char buf[256];
  std::string verdict_bits;
  for (const auto& v : o.verdicts) verdict_bits += v.passed ? '1' : '0';
  std::snprintf(
      buf, sizeof(buf),
      "s=%04d code=%d surv=%d term=%s it=%lld lost=%lld rst=%lld "
      "det=%llu ret=%llu gang=%zu mttr=%.6f v=%s",
      o.scenario.index, static_cast<int>(o.run_status.code),
      o.survived ? 1 : 0, toString(o.terminal),
      static_cast<long long>(r.training.iterations_run),
      static_cast<long long>(r.training.lost_iterations),
      static_cast<long long>(r.training.restores),
      static_cast<unsigned long long>(r.recovery.detections),
      static_cast<unsigned long long>(r.recovery.reattach_retries),
      r.recovery.final_gang_size, r.recovery.mean_mttr, verdict_bits.c_str());
  return buf;
}

}  // namespace

CampaignReport ChaosCampaign::run() {
  CampaignReport report;
  report.baseline = measureBaseline();

  ScenarioSpace space = options_.space;
  const std::vector<Scenario> scenarios =
      generateScenarios(space, report.baseline);

  std::vector<ExperimentSpec> specs;
  specs.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    specs.push_back(specForScenario(s, report.baseline));
  }

  SweepOptions sweep;
  sweep.jobs = options_.jobs;
  SweepRunner runner(sweep);
  const std::vector<SweepRun> runs = runner.run(std::move(specs));

  // Judge on the calling thread, in submission order: oracle evaluation
  // is a pure function of each outcome, so this is where determinism
  // across --jobs values is decided (and why it holds).
  std::vector<double> mttrs;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    ScenarioOutcome outcome;
    outcome.scenario = scenarios[i];
    outcome.run_status = run.status;
    const ExperimentResult* result = run.status.ok ? &run.result : nullptr;
    outcome.survived = result != nullptr && result->training.completed;
    if (result != nullptr && result->recovery.enabled) {
      outcome.terminal = result->recovery.terminal_state;
      for (const auto& inc : result->recovery.incidents) {
        if (inc.resolved() && !inc.abandoned) {
          outcome.incident_mttrs.push_back(inc.mttr());
        }
      }
    }
    OracleInput input{&run.spec, &run.status, result};
    outcome.verdicts = oracles_.evaluate(input);
    for (const auto& v : outcome.verdicts) {
      outcome.oracles_passed = outcome.oracles_passed && v.passed;
    }
    outcome.digest = result != nullptr ? outcomeDigest(outcome, *result)
                                       : outcomeDigest(outcome);

    report.verdicts_recorded += outcome.verdicts.size();
    if (outcome.survived) ++report.survived;
    if (!outcome.oracles_passed) ++report.oracle_failures;
    mttrs.insert(mttrs.end(), outcome.incident_mttrs.begin(),
                 outcome.incident_mttrs.end());
    if (!report.digest.empty()) report.digest += '\n';
    report.digest += outcome.digest;
    report.outcomes.push_back(std::move(outcome));
  }

  report.survival_rate =
      report.outcomes.empty()
          ? 0.0
          : static_cast<double>(report.survived) /
                static_cast<double>(report.outcomes.size());
  std::sort(mttrs.begin(), mttrs.end());
  report.mttr_p50 = telemetry::percentile(mttrs, 50.0);
  report.mttr_p95 = telemetry::percentile(mttrs, 95.0);
  return report;
}

SweepRun runSingleSpec(const ExperimentSpec& spec) {
  SweepRun run;
  run.spec = spec;
  try {
    run.result = runExperimentSpec(run.spec);
    run.status = Status::success();
  } catch (const std::exception& e) {
    run.status = Status::internal(std::string("sweep run '") + run.spec.name +
                                  "' failed: " + e.what());
  } catch (...) {
    run.status = Status::internal(std::string("sweep run '") + run.spec.name +
                                  "' failed: unknown exception");
  }
  return run;
}

FaultPredicate failsOraclePredicate(ExperimentSpec spec,
                                    OracleRegistry oracles,
                                    std::string oracle_name) {
  return [spec = std::move(spec), oracles = std::move(oracles),
          oracle_name = std::move(oracle_name)](const FaultsConfig& faults) {
    ExperimentSpec candidate = spec;
    candidate.options.faults = faults;
    candidate.options.faults.enabled = true;
    const SweepRun run = runSingleSpec(candidate);
    const ExperimentResult* result = run.status.ok ? &run.result : nullptr;
    OracleInput input{&candidate, &run.status, result};
    for (const OracleVerdict& v : oracles.evaluate(input)) {
      if (v.oracle == oracle_name) return !v.passed;
    }
    return false;  // unknown oracle: nothing can "still fail"
  };
}

}  // namespace composim::core::chaos
