#include "core/chaos/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/random.hpp"

namespace composim::core::chaos {

namespace {

/// splitmix64 finalizer: decorrelates per-scenario streams so adjacent
/// indices share no low-bit structure (Rng reseeds via splitmix too, but
/// mixing here keeps scenario i independent of the campaign seed's form).
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Round to 3 decimals: keeps injection times human-readable in
/// reproducer JSON without collapsing distinct strata.
SimTime quantize(SimTime t) {
  return std::max(0.001, static_cast<double>(static_cast<std::int64_t>(
                             t * 1000.0 + 0.5)) /
                             1000.0);
}

/// Draw one injection time, stratified across the phase boundaries where
/// recovery interacts with training structure.
SimTime drawTime(Rng& rng, const BaselineTiming& timing) {
  const SimTime iter = std::max(1e-3, timing.mean_iteration);
  const std::int64_t iters = std::max<std::int64_t>(1, timing.iterations);
  const SimTime horizon = std::max(iter, timing.horizon);
  switch (rng.next() % 4) {
    case 0: {  // iteration boundary +/- 10%
      const auto k = 1 + static_cast<std::int64_t>(rng.next() %
                                                   static_cast<std::uint64_t>(iters));
      return static_cast<double>(k) * iter + rng.uniform(-0.1, 0.1) * iter;
    }
    case 1: {  // checkpoint boundary (fall back to uniform without one)
      if (timing.checkpoint_period > 0.0) {
        const auto windows = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(horizon / timing.checkpoint_period));
        const auto k = 1 + static_cast<std::int64_t>(
                               rng.next() % static_cast<std::uint64_t>(windows));
        return static_cast<double>(k) * timing.checkpoint_period +
               rng.uniform(-0.05, 0.05) * iter;
      }
      return rng.uniform(0.05, 0.95) * horizon;
    }
    case 2: {  // mid-collective window: late inside an iteration
      const auto k = static_cast<std::int64_t>(rng.next() %
                                               static_cast<std::uint64_t>(iters));
      return static_cast<double>(k) * iter + rng.uniform(0.5, 0.9) * iter;
    }
    default:
      return rng.uniform(0.05, 0.95) * horizon;
  }
}

template <typename T>
const T& pick(Rng& rng, const std::vector<T>& choices) {
  return choices[static_cast<std::size_t>(rng.next() % choices.size())];
}

}  // namespace

std::string Scenario::describe() const {
  char buf[64];
  std::string out;
  const auto n = faults.gpu_falloffs.size() + faults.ecc_storms.size() +
                 faults.host_port_flaps.size();
  std::snprintf(buf, sizeof(buf), "%zu fault%s (spares=%d):", n,
                n == 1 ? "" : "s", faults.spare_gpus);
  out += buf;
  for (const auto& f : faults.gpu_falloffs) {
    std::snprintf(buf, sizeof(buf), " falloff g%d@%.3f", f.gpu_index, f.at);
    out += buf;
  }
  for (const auto& s : faults.ecc_storms) {
    std::snprintf(buf, sizeof(buf), " ecc g%d@%.3f", s.gpu_index, s.at);
    out += buf;
  }
  for (const auto& h : faults.host_port_flaps) {
    std::snprintf(buf, sizeof(buf), " flap p%d@%.3f/%.3f", h.port, h.at,
                  h.downtime);
    out += buf;
  }
  return out;
}

std::vector<Scenario> generateScenarios(const ScenarioSpace& space,
                                        const BaselineTiming& timing) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(space.count));
  const SimTime horizon = std::max(1e-3, timing.horizon);

  for (int i = 0; i < space.count; ++i) {
    Scenario s;
    s.index = i;
    s.seed = mix(space.seed, static_cast<std::uint64_t>(i));
    Rng rng(s.seed);

    FaultsConfig& f = s.faults;
    f.enabled = true;
    f.seed = s.seed;
    f.health_poll_interval = space.poll_interval;
    f.spare_gpus = pick(rng, space.spare_choices);
    f.attach_failure_rate = pick(rng, space.attach_failure_choices);
    // Capacity knobs drawn coarse: each scenario either runs the plain
    // exponential backoff or the jittered/capped/budgeted variant, so
    // both policy paths see the whole fault space.
    if (rng.next() % 2 == 1) {
      f.policy.attach_backoff_jitter = 0.25;
      f.policy.attach_backoff_max = 1.0;
      f.policy.attach_retry_budget = 40.0 * space.poll_interval;
    }

    const int n_faults =
        1 + static_cast<int>(rng.next() %
                             static_cast<std::uint64_t>(std::max(
                                 1, space.max_faults_per_scenario)));
    SimTime prev_at = -1.0;
    for (int j = 0; j < n_faults; ++j) {
      SimTime at = drawTime(rng, timing);
      // Overlap a fraction of follow-up faults into the previous fault's
      // detection window: one poll then sees several signals at once.
      if (prev_at >= 0.0 && rng.uniform() < space.overlap_fraction) {
        at = prev_at + rng.uniform(0.0, space.poll_interval);
      }
      at = quantize(std::clamp(at, 0.01, 0.98 * horizon));
      prev_at = at;

      const int gpu =
          static_cast<int>(rng.next() %
                           static_cast<std::uint64_t>(std::max(1, space.gpu_count)));
      switch (rng.next() % 3) {
        case 0:
          f.gpu_falloffs.push_back({gpu, at});
          break;
        case 1:
          f.ecc_storms.push_back(
              {gpu, at, 200 + rng.next() % 800});
          break;
        default:
          f.host_port_flaps.push_back(
              {pick(rng, space.host_ports), at,
               quantize(rng.uniform(0.5, 2.0))});
          break;
      }
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace composim::core::chaos
