// composim: top-level system assembly (paper Fig 6 topology + Table III).
//
// Builds the full experimental test bed in one object: a Supermicro-class
// host (Xeon 6148 pair, 756 GB, 8 local V100-SXM2 in a hybrid cube mesh
// behind two PLX switches), a Falcon 4016 with 4 V100-PCIE GPUs per drawer
// and an NVMe drive in drawer 2, host adapters into both drawers, local
// NVMe, the boot SSD, BMC and MCS. The Table III labels then select which
// GPUs and which storage device a training run uses:
//
//   localGPUs   8 local GPUs, local (boot SSD) storage
//   hybridGPUs  4 local + 4 falcon GPUs, local storage
//   falconGPUs  8 falcon GPUs, local storage
//   localNVMe   8 local GPUs, host-attached NVMe
//   falconNVMe  8 local GPUs, falcon-attached NVMe
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "devices/gpu.hpp"
#include "devices/host_cpu.hpp"
#include "devices/storage.hpp"
#include "fabric/flow_network.hpp"
#include "falcon/bmc.hpp"
#include "falcon/chassis.hpp"
#include "falcon/mcs.hpp"

namespace composim::core {

enum class SystemConfig {
  LocalGpus,
  HybridGpus,
  FalconGpus,
  LocalNvme,
  FalconNvme,
  /// Beyond Table III: the full Fig 6 composition — all 16 GPUs (8 local
  /// + 8 Falcon-attached) plus the local NVMe. The capability a fixed
  /// 8-GPU server cannot offer; used by the scaling extension study.
  AllGpus16,
};

const char* toString(SystemConfig c);
/// All five Table III configurations in paper order.
std::vector<SystemConfig> allConfigs();
/// The three GPU-placement configurations (Fig 10-13 sweeps).
std::vector<SystemConfig> gpuConfigs();
/// The three storage-comparison configurations (Fig 15).
std::vector<SystemConfig> storageConfigs();

class ComposableSystem {
 public:
  /// Routing domains for hierarchical routing: host-board nodes (including
  /// any second tenant host) vs the Falcon chassis. Assigned at build time;
  /// inert until Topology::setHierarchicalRouting(true).
  static constexpr fabric::DomainId kHostDomain = 0;
  static constexpr fabric::DomainId kFalconDomain = 1;

  explicit ComposableSystem(SystemConfig config);

  ComposableSystem(const ComposableSystem&) = delete;
  ComposableSystem& operator=(const ComposableSystem&) = delete;

  SystemConfig config() const { return config_; }

  Simulator& sim() { return sim_; }
  fabric::Topology& topology() { return topo_; }
  fabric::FlowNetwork& network() { return *net_; }
  devices::HostCpu& cpu() { return *cpu_; }
  fabric::NodeId hostMemory() const { return host_memory_; }
  fabric::NodeId hostRoot() const { return host_root_; }

  /// The GPUs this configuration trains on (8, or 16 for AllGpus16),
  /// ring-friendly order (local first, then falcon).
  std::vector<devices::Gpu*> trainingGpus();

  /// Second tenant host (advanced-mode / co-tenancy studies): a second
  /// root complex + memory + CPU wired to ports H2 and H4. Idempotent.
  struct SecondHost {
    fabric::NodeId root = fabric::kInvalidNode;
    fabric::NodeId memory = fabric::kInvalidNode;
    devices::HostCpu* cpu = nullptr;
  };
  SecondHost attachSecondHost();
  /// The storage device this configuration loads data from.
  devices::StorageDevice& trainingStorage();

  const std::vector<std::unique_ptr<devices::Gpu>>& localGpus() const {
    return local_gpus_;
  }
  const std::vector<std::unique_ptr<devices::Gpu>>& falconGpus() const {
    return falcon_gpus_;
  }
  devices::StorageDevice& localNvme() { return *local_nvme_; }
  devices::StorageDevice& falconNvme() { return *falcon_nvme_; }
  devices::StorageDevice& bootSsd() { return *boot_ssd_; }

  falcon::FalconChassis& chassis() { return *chassis_; }
  falcon::Bmc& bmc() { return *bmc_; }
  falcon::Mcs& mcs() { return *mcs_; }

  /// Install a spare V100-PCIE in an empty Falcon slot, occupied but
  /// unassigned — exactly the inventory the AllocationPlanner draws on
  /// when the recovery orchestrator asks for a replacement. Returns the
  /// device (owned by the system); throws on an occupied slot.
  devices::Gpu* installSpareGpu(falcon::SlotId slot);

  /// Slot a Falcon GPU (training or spare) was installed in; nullopt for
  /// local GPUs. The mapping is fixed at install time and survives
  /// quarantine (removeDevice), so recovery code can name the slot of a
  /// device that already fell off the bus.
  std::optional<falcon::SlotId> slotOfGpu(const devices::Gpu* gpu) const;

  /// Falcon GPU (training or spare) installed in `slot`; nullptr if none.
  devices::Gpu* gpuInSlot(falcon::SlotId slot);

  /// Cumulative ingress+egress payload bytes over the PCIe links of the
  /// *Falcon GPU slots* (what the paper measured for Fig 12).
  Bytes falconGpuPortBytes() const;

  /// Mean busy fraction of the falcon GPUs in drawer `drawer` (thermal
  /// source registered with the BMC).
  double drawerActivity(int drawer) const;

 private:
  void buildHost();
  void buildFalcon();
  void applyConfig();

  SystemConfig config_;
  Simulator sim_;
  fabric::Topology topo_;
  std::unique_ptr<fabric::FlowNetwork> net_;
  std::unique_ptr<devices::HostCpu> cpu_;
  fabric::NodeId host_root_ = fabric::kInvalidNode;
  fabric::NodeId host_memory_ = fabric::kInvalidNode;
  std::array<fabric::NodeId, 2> plx_{};  // on-board PCIe switches
  std::vector<std::unique_ptr<devices::Gpu>> local_gpus_;
  std::vector<std::unique_ptr<devices::Gpu>> falcon_gpus_;
  std::vector<falcon::SlotId> falcon_gpu_slots_;
  std::vector<std::unique_ptr<devices::Gpu>> spare_gpus_;
  std::vector<falcon::SlotId> spare_gpu_slots_;
  std::unique_ptr<devices::StorageDevice> local_nvme_;
  std::unique_ptr<devices::StorageDevice> falcon_nvme_;
  std::unique_ptr<devices::StorageDevice> boot_ssd_;
  falcon::SlotId falcon_nvme_slot_{};
  std::unique_ptr<falcon::FalconChassis> chassis_;
  std::unique_ptr<falcon::Bmc> bmc_;
  std::unique_ptr<falcon::Mcs> mcs_;
  std::unique_ptr<devices::HostCpu> second_cpu_;
  SecondHost second_host_;
};

}  // namespace composim::core
