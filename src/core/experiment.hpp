// composim: one benchmark x configuration measurement run.
//
// Reproduces the paper's experiment harness: build the system for a
// Table III configuration, train the benchmark with the requested
// software options, sample the system-level metrics the paper plots
// (GPU util, GPU memory util, memory-access time, CPU util, host memory,
// Falcon PCIe traffic), and summarize.
#pragma once

#include <memory>
#include <string>

#include "core/composable_system.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sampler.hpp"

namespace composim::core {

struct ExperimentOptions {
  /// Default trainer.max_iterations_per_epoch: capping keeps runs fast;
  /// totals are extrapolated from steady-state iteration time (see
  /// DESIGN.md). Set trainer.max_iterations_per_epoch = 0 for a full run.
  static constexpr int kDefaultIterationsCap = 30;

  ExperimentOptions() { trainer.max_iterations_per_epoch = kDefaultIterationsCap; }

  dl::TrainerOptions trainer;
  SimTime sample_interval = 0.25;  // telemetry cadence (simulated seconds)
  /// Record a span/counter profile of the run (result.profiler holds the
  /// finalized trace, exportable as Chrome trace_event JSON).
  bool trace = false;
};

struct ExperimentResult {
  SystemConfig config = SystemConfig::LocalGpus;
  std::string benchmark;
  dl::TrainingResult training;

  // Means over the steady-state window, in the paper's units.
  double gpu_util_pct = 0.0;
  double gpu_mem_util_pct = 0.0;
  double gpu_mem_access_pct = 0.0;
  double cpu_util_pct = 0.0;
  double host_mem_util_pct = 0.0;
  double falcon_pcie_gbs = 0.0;  // aggregate over falcon GPU ports

  /// Full sampled series (kept alive for the Fig 9 strip charts / CSV).
  std::shared_ptr<telemetry::MetricsSampler> sampler;

  /// Finalized profiler when options.trace was set (null otherwise).
  std::shared_ptr<telemetry::Profiler> profiler;
};

class Experiment {
 public:
  /// Run `model` on `config`. Blocking: advances the simulation to
  /// completion.
  static ExperimentResult run(SystemConfig config, const dl::ModelSpec& model,
                              ExperimentOptions options = {});

  /// Convenience: percentage change of extrapolated training time versus a
  /// baseline result (positive = slower than baseline).
  static double trainingTimeChangePct(const ExperimentResult& result,
                                      const ExperimentResult& baseline);
};

}  // namespace composim::core
