// composim: one benchmark x configuration measurement run.
//
// Reproduces the paper's experiment harness: build the system for a
// Table III configuration, train the benchmark with the requested
// software options, sample the system-level metrics the paper plots
// (GPU util, GPU memory util, memory-access time, CPU util, host memory,
// Falcon PCIe traffic), and summarize.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/composable_system.hpp"
#include "core/recovery_orchestrator.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"
#include "fabric/failures.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/metrics_pipeline.hpp"
#include "telemetry/profiler.hpp"

namespace composim::core {

/// Fault schedule for an experiment: which components fail, when, and how
/// much recovery capacity (spares, health polling) the run has. Indices
/// refer to the system's Falcon GPUs in install order (drawer 0 slots
/// 0-3, then drawer 1 slots 0-3); ports are host-port indices (0 = H1).
struct FaultsConfig {
  bool enabled = false;
  std::uint64_t seed = 99;                 // fault injector + attach noise
  SimTime health_poll_interval = 0.5;      // BMC telemetry poll cadence
  std::uint64_t error_storm_threshold = 100;
  int spare_gpus = 0;                      // spares pre-installed, unassigned
  double attach_failure_rate = 0.0;        // transient attach failures
  RecoveryPolicy policy;

  struct GpuFalloff {
    int gpu_index = 0;  // falcon GPU install order
    SimTime at = 0.0;
  };
  std::vector<GpuFalloff> gpu_falloffs;

  struct EccStorm {
    int gpu_index = 0;
    SimTime at = 0.0;
    std::uint64_t errors = 500;
  };
  std::vector<EccStorm> ecc_storms;

  struct HostPortFlap {
    int port = 0;
    SimTime at = 0.0;
    SimTime downtime = 1.0;
  };
  std::vector<HostPortFlap> host_port_flaps;
};

/// What the recovery subsystem did during a faulted run.
struct RecoverySummary {
  bool enabled = false;
  std::uint64_t faults_injected = 0;
  std::uint64_t detections = 0;
  std::uint64_t reattach_retries = 0;
  int degradations = 0;
  std::size_t final_gang_size = 0;
  SimTime mean_mttr = 0.0;  // detection -> training resumed
  /// Where the recovery state machine ended up (chaos oracles key on this).
  RecoveryTerminalState terminal_state = RecoveryTerminalState::Idle;
  /// Slots quarantined during the run, in quarantine order.
  std::vector<falcon::SlotId> quarantined_slots;
  /// Fabric flow conservation over the whole run: every flow ever started
  /// must end completed or failed, with none left in flight at the end.
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_failed = 0;
  std::size_t flows_active_at_end = 0;
  std::vector<RecoveryIncident> incidents;
  std::vector<fabric::FaultRecord> fault_history;
  std::vector<falcon::FaultEvent> detections_log;
};

/// Metrics-pipeline knobs. The pipeline itself always runs (the summary
/// means come out of it); this controls its cadence and alerting.
struct MetricsConfig {
  /// Scrape cadence; 0 = follow ExperimentOptions::sample_interval.
  SimTime scrape_interval = 0.0;
  /// SLO alert rules in the compact telemetry::parseAlertRule syntax,
  /// e.g. "link_util_pct > 95 for 2s" or "ecc: ecc_errors_total rate > 0".
  /// Firing/resolved transitions also land in the BMC event log.
  std::vector<std::string> alerts;
};

struct ExperimentOptions {
  /// Default trainer.max_iterations_per_epoch: capping keeps runs fast;
  /// totals are extrapolated from steady-state iteration time (see
  /// DESIGN.md). Set trainer.max_iterations_per_epoch = 0 for a full run.
  static constexpr int kDefaultIterationsCap = 30;

  ExperimentOptions() { trainer.max_iterations_per_epoch = kDefaultIterationsCap; }

  /// Workload reference: a dl::WorkloadRegistry name ("ResNet-50") or an
  /// operator-graph file ("graph:examples/graphs/resnet50.graph.json").
  /// Resolved by Experiment::run(config, options) / runExperimentSpec;
  /// ignored by the overloads that take an explicit ModelSpec.
  std::string workload;
  dl::TrainerOptions trainer;
  SimTime sample_interval = 0.25;  // telemetry cadence (simulated seconds)
  /// Metrics pipeline: scrape cadence override + SLO alert rules.
  MetricsConfig metrics;
  /// Record a span/counter profile of the run (result.profiler holds the
  /// finalized trace, exportable as Chrome trace_event JSON).
  bool trace = false;
  /// Run the bottleneck analyzer over the trace after the run finishes
  /// (result.analysis: per-iteration attribution buckets, critical paths,
  /// link contention — DESIGN.md §17). Implies trace.
  bool analysis = false;
  /// Cap on profiler records (Profiler::setMaxRecords); 0 = unbounded.
  std::size_t trace_max_records = 0;
  /// Fault schedule + recovery capacity; faults.enabled = false runs the
  /// experiment exactly as before (no monitor, no orchestrator).
  FaultsConfig faults;
  /// Liveness watchdog: if > 0 and the simulation is still live past this
  /// simulated time without the trainer finishing, the run throws
  /// std::runtime_error with a "watchdog:" detail instead of spinning on
  /// periodic events forever. Chaos campaigns rely on this to turn a hung
  /// gang into a typed liveness failure. 0 = no watchdog (legacy).
  SimTime watchdog = 0.0;
  /// Warm-prefix boundary: pause after this many completed training
  /// iterations so the whole stack can be snapshotted and forked (0 =
  /// off, run continuously). Only meaningful when warmPrefixApplicable()
  /// holds for the spec; see DESIGN.md §14.
  std::int64_t warm_prefix = 0;
  /// Route via per-domain tables + the chassis border graph instead of
  /// flat Dijkstra (Topology::setHierarchicalRouting). Latency-equivalent
  /// but free to pick a different equal-cost path, so it is opt-in and
  /// part of the warm-prefix compatibility key.
  bool hierarchical_routing = false;
};

struct ExperimentResult {
  SystemConfig config = SystemConfig::LocalGpus;
  std::string benchmark;
  dl::TrainingResult training;

  // Means over the steady-state window, in the paper's units.
  double gpu_util_pct = 0.0;
  double gpu_mem_util_pct = 0.0;
  double gpu_mem_access_pct = 0.0;
  double cpu_util_pct = 0.0;
  double host_mem_util_pct = 0.0;
  double falcon_pcie_gbs = 0.0;  // aggregate over falcon GPU ports

  /// The run's metrics pipeline, finalized: labeled registry (Prometheus
  /// text exposition), scraped time series (JSONL dump, Fig 9 strip
  /// charts), and the alert log.
  std::shared_ptr<telemetry::MetricsPipeline> metrics;

  /// Finalized profiler when options.trace was set (null otherwise).
  std::shared_ptr<telemetry::Profiler> profiler;

  /// Bottleneck attribution when options.analysis was set (null
  /// otherwise): bucket decomposition, critical paths, link contention.
  std::shared_ptr<telemetry::analysis::RunAnalysis> analysis;

  /// Recovery accounting when options.faults.enabled was set.
  RecoverySummary recovery;
};

class Experiment {
 public:
  /// Run `model` on `config`. Blocking: advances the simulation to
  /// completion.
  static ExperimentResult run(SystemConfig config, const dl::ModelSpec& model,
                              ExperimentOptions options = {});

  /// Run options.workload (registry name or "graph:<path>") on `config`.
  /// Throws std::invalid_argument when the reference does not resolve —
  /// use dl::WorkloadRegistry::instance().resolve() first for a Status.
  static ExperimentResult run(SystemConfig config, ExperimentOptions options);

  /// Convenience: percentage change of extrapolated training time versus a
  /// baseline result (positive = slower than baseline).
  static double trainingTimeChangePct(const ExperimentResult& result,
                                      const ExperimentResult& baseline);
};

/// Full deterministic state of a warmed experiment stack at the
/// warm-prefix quiescent point: the event queue is drained, so every
/// subsystem's state is plain data (no closures). Copyable and cheap to
/// move between threads — the SweepRunner captures one per unique prefix
/// and hands it to every forked tail. DESIGN.md §14 documents the
/// copy-vs-serialize decision per subsystem.
struct SimSnapshot {
  Simulator::State sim;
  fabric::Topology::State topology;
  fabric::FlowNetwork::State network;
  std::vector<devices::Gpu::State> local_gpus;   // install order
  std::vector<devices::Gpu::State> falcon_gpus;  // install order
  devices::HostCpu::State cpu;
  devices::StorageDevice::State local_nvme;
  devices::StorageDevice::State falcon_nvme;
  devices::StorageDevice::State boot_ssd;
  falcon::Bmc::State bmc;
  collectives::Communicator::State communicator;
  dl::DataPipeline::State pipeline;
  dl::Trainer::State trainer;
  telemetry::MetricsRegistry::State registry;
  telemetry::MetricsScraper::State scraper;
  std::vector<telemetry::MetricsScraper::CollectorState> collectors;
  telemetry::AlertEngine::State alerts;
  bool traced = false;
  telemetry::Profiler::State profiler;  // meaningful only when traced
};

/// A warmed experiment: the full stack built and run through the first
/// options.warm_prefix iterations, then paused at the quiescent point.
/// From here the run either resumes in place (finish(), the "cold" phased
/// path) or is captured (snapshot()) and replayed into any number of
/// fresh stacks (resumeFromSnapshot(), the fork path). Cold and forked
/// tails execute the identical resume sequence, which is what makes them
/// byte-identical.
class WarmedExperiment {
 public:
  /// Build the stack and run the warm prefix. Fault schedules are
  /// supported as long as every injection time lies strictly after the
  /// pause boundary: fault activation is deferred to the resume step, so
  /// the prefix itself is fault-free and snapshot-safe. Throws
  /// std::runtime_error when the run finishes before reaching the pause
  /// boundary or when a fault time falls inside the prefix (callers fall
  /// back to a cold run), std::invalid_argument when
  /// options.warm_prefix <= 0.
  WarmedExperiment(SystemConfig config, const dl::ModelSpec& model,
                   ExperimentOptions options);
  ~WarmedExperiment();

  WarmedExperiment(const WarmedExperiment&) = delete;
  WarmedExperiment& operator=(const WarmedExperiment&) = delete;

  /// Capture the paused stack. May be called once or many times; the
  /// snapshot is independent of this object's lifetime.
  SimSnapshot snapshot() const;

  /// Resume this stack to completion (consumes the object's run).
  ExperimentResult finish();

  /// Build a fresh stack for (config, model, options), restore `snap`
  /// into it and resume to completion. `options` may differ from the
  /// donor's only in tail parameters (trainer.epochs,
  /// trainer.max_iterations_per_epoch) — everything else must match the
  /// donor or the restore throws.
  static ExperimentResult resumeFromSnapshot(SystemConfig config,
                                             const dl::ModelSpec& model,
                                             ExperimentOptions options,
                                             const SimSnapshot& snap);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace composim::core
