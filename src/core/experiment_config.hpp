// composim: JSON-driven experiment suites.
//
// The appliance's workflow is configuration files (import/export, §II-B);
// experiments get the same treatment: a JSON document describes a list of
// (benchmark, configuration, trainer options) runs, so a measurement
// campaign is a reviewable artifact instead of a shell history.
//
//   {
//     "suite": "pcie-overhead",
//     "experiments": [
//       {"name": "bertL-local",  "benchmark": "BERT-L", "config": "localGPUs"},
//       {"name": "bertL-falcon", "benchmark": "BERT-L", "config": "falconGPUs",
//        "epochs": 1, "iterations_cap": 20, "precision": "fp16",
//        "strategy": "ddp", "sharded": false, "batch_per_gpu": 6,
//        "accumulation": 1}
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "falcon/json.hpp"

namespace composim::core {

struct ExperimentSpec {
  std::string name;
  std::string benchmark;  // Table II model name
  SystemConfig config = SystemConfig::LocalGpus;
  ExperimentOptions options;
};

/// Parse a suite document; throws falcon::JsonError / std::invalid_argument
/// on unknown benchmarks, configurations or option values.
std::vector<ExperimentSpec> parseExperimentSuite(const falcon::Json& doc);

/// Resolve a Table III label ("localGPUs", ... , "allGPUs16").
SystemConfig configFromName(const std::string& name);

/// Resolve a Table II benchmark name to its model spec.
dl::ModelSpec benchmarkFromName(const std::string& name);

/// Parse a fault-schedule object (the "faults" key of an experiment, or a
/// standalone --faults document):
///
///   {"seed": 7, "poll_interval": 0.5, "spare_gpus": 2,
///    "attach_failure_rate": 0.3,
///    "gpu_falloffs":    [{"gpu": 5, "at": 30.0}],
///    "ecc_storms":      [{"gpu": 1, "at": 12.0, "errors": 500}],
///    "host_port_flaps": [{"port": 2, "at": 60.0, "downtime": 2.0}]}
///
/// Parsing a faults object always sets enabled = true.
FaultsConfig parseFaultsConfig(const falcon::Json& doc);

/// Parse a metrics object (the "metrics" key of an experiment, or a
/// standalone --metrics document):
///
///   {"scrape_interval": 0.25,
///    "alerts": ["link_util_pct > 95 for 2s",
///               "ecc: ecc_errors_total rate > 0"]}
///
/// Alert rules are validated (telemetry::parseAlertRule) at parse time.
MetricsConfig parseMetricsConfig(const falcon::Json& doc);

/// Run one parsed spec.
ExperimentResult runExperimentSpec(const ExperimentSpec& spec);

}  // namespace composim::core
