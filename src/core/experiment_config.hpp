// composim: JSON-driven experiment suites.
//
// The appliance's workflow is configuration files (import/export, §II-B);
// experiments get the same treatment: a JSON document describes a list of
// (workload, configuration, trainer options) runs, so a measurement
// campaign is a reviewable artifact instead of a shell history.
//
//   {
//     "suite": "pcie-overhead",
//     "experiments": [
//       {"name": "bertL-local",  "workload": "BERT-L", "config": "localGPUs"},
//       {"name": "bertL-falcon", "workload": "BERT-L", "config": "falconGPUs",
//        "epochs": 1, "iterations_cap": 20, "precision": "fp16",
//        "strategy": "ddp", "sharded": false, "batch_per_gpu": 6,
//        "accumulation": 1}
//     ]
//   }
//
// "workload" is a dl::WorkloadRegistry reference: a registered name
// ("BERT-L") or an operator-graph file ("graph:<path>", dl/graph_ir/).
// The key "benchmark" is accepted as a legacy alias.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "falcon/json.hpp"

namespace composim::core {

struct ExperimentSpec {
  std::string name;
  std::string workload;  // registry name or "graph:<path>"
  SystemConfig config = SystemConfig::LocalGpus;
  ExperimentOptions options;  // options.workload mirrors `workload`
};

/// Parse a suite document; throws falcon::JsonError / std::invalid_argument
/// on unknown workloads, configurations or option values.
std::vector<ExperimentSpec> parseExperimentSuite(const falcon::Json& doc);

/// Resolve a Table III label ("localGPUs", ... , "allGPUs16").
SystemConfig configFromName(const std::string& name);

/// Resolve a workload reference (registry name or "graph:<path>") to its
/// model spec; throws std::invalid_argument when it does not resolve.
/// Deprecated: thin wrapper over dl::workload(), kept for the old
/// Table II-only call sites.
dl::ModelSpec benchmarkFromName(const std::string& name);

/// Parse a fault-schedule object (the "faults" key of an experiment, or a
/// standalone --faults document):
///
///   {"seed": 7, "poll_interval": 0.5, "spare_gpus": 2,
///    "attach_failure_rate": 0.3, "max_attach_retries": 6,
///    "attach_backoff_initial": 0.25, "attach_backoff_multiplier": 2.0,
///    "attach_backoff_max": 4.0, "attach_backoff_jitter": 0.2,
///    "attach_retry_budget": 30.0, "proactive_on_error_storm": true,
///    "gpu_falloffs":    [{"gpu": 5, "at": 30.0}],
///    "ecc_storms":      [{"gpu": 1, "at": 12.0, "errors": 500}],
///    "host_port_flaps": [{"port": 2, "at": 60.0, "downtime": 2.0}]}
///
/// Parsing a faults object always sets enabled = true.
///
/// The Status overload validates strictly: unknown keys (top-level or per
/// fault entry), wrong shapes and out-of-range values return
/// InvalidArgument whose detail lists the valid fault kinds, mirroring
/// WorkloadRegistry's NotFound-lists-known-names pattern. On error *out
/// is untouched.
Status parseFaultsConfig(const falcon::Json& doc, FaultsConfig* out);

/// Legacy throwing wrapper over the Status overload.
FaultsConfig parseFaultsConfig(const falcon::Json& doc);

/// Serialize a fault schedule back to the --faults JSON document with a
/// fixed key order (defaults included), so shrunk chaos reproducers are
/// byte-stable across runs. Round-trips exactly through
/// parseFaultsConfig.
falcon::Json faultsConfigToJson(const FaultsConfig& faults);

/// Earliest injection time in the schedule (+infinity when it has none).
SimTime earliestFaultTime(const FaultsConfig& faults);

/// Parse a metrics object (the "metrics" key of an experiment, or a
/// standalone --metrics document):
///
///   {"scrape_interval": 0.25,
///    "alerts": ["link_util_pct > 95 for 2s",
///               "ecc: ecc_errors_total rate > 0"]}
///
/// Alert rules are validated (telemetry::parseAlertRule) at parse time.
MetricsConfig parseMetricsConfig(const falcon::Json& doc);

/// Whether `spec` can run as a warm-prefix phased experiment: warm_prefix
/// is set and the pause boundary lands strictly inside the first epoch
/// and before the first periodic checkpoint — pausing ON a
/// checkpoint/epoch boundary would suppress the checkpoint the continuous
/// run takes there. Fault schedules are fork-eligible because activation
/// is deferred to the resume step; whether every injection time actually
/// lands inside the tail is only knowable once the prefix's pause time
/// exists, so that check happens at run time (WarmedExperiment throws /
/// the SweepRunner falls back to a cold run). Inapplicable specs run
/// continuously.
bool warmPrefixApplicable(const ExperimentSpec& spec);

/// Canonical key of everything a spec's warm prefix depends on: all of
/// (benchmark, config, options) EXCEPT the tail parameters
/// trainer.epochs and trainer.max_iterations_per_epoch. Two specs with
/// equal keys share byte-identical warm prefixes, so the SweepRunner
/// executes the prefix once and forks each variant's tail from the
/// snapshot. The spec name is deliberately excluded.
std::string warmPrefixKey(const ExperimentSpec& spec);

/// Run one parsed spec. Specs with options.warm_prefix set (and
/// warmPrefixApplicable) run phased — warm prefix, pause, resume — which
/// is the cold twin of a snapshot/fork run.
ExperimentResult runExperimentSpec(const ExperimentSpec& spec);

}  // namespace composim::core
