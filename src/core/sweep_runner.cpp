#include "core/sweep_runner.hpp"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace composim::core {

namespace {

/// Per-worker deque with its own lock. Contention is negligible at
/// experiment granularity (milliseconds to minutes per task), so plain
/// mutexes keep the pool obviously correct under TSan instead of
/// cleverly lock-free.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> tasks;  // indices into the shared task vector
};

struct PoolState {
  explicit PoolState(std::size_t workers, std::size_t ntasks)
      : queues(workers), done(ntasks, 0) {}

  std::vector<WorkerQueue> queues;

  // Completion ledger, guarded by done_mu; the caller drains it in
  // submission order.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<char> done;
};

/// Pop from the worker's own deque (LIFO keeps its round-robin share
/// cache-warm); steal FIFO from siblings when empty so the oldest —
/// typically longest-waiting — work migrates first.
bool nextTask(PoolState& state, std::size_t self, std::size_t& out) {
  {
    WorkerQueue& mine = state.queues[self];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.tasks.empty()) {
      out = mine.tasks.back();
      mine.tasks.pop_back();
      return true;
    }
  }
  const std::size_t n = state.queues.size();
  for (std::size_t off = 1; off < n; ++off) {
    WorkerQueue& victim = state.queues[(self + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = victim.tasks.front();
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void workerLoop(PoolState& state, std::size_t self,
                std::vector<WorkStealingPool::Task>& tasks) {
  std::size_t idx = 0;
  // The batch is fixed up front — running tasks never enqueue more — so
  // an empty sweep over every queue means this worker is finished.
  while (nextTask(state, self, idx)) {
    tasks[idx]();
    {
      std::lock_guard<std::mutex> lock(state.done_mu);
      state.done[idx] = 1;
    }
    state.done_cv.notify_one();
  }
}

}  // namespace

int WorkStealingPool::resolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkStealingPool::runAll(std::vector<Task> tasks, int jobs,
                              const std::function<void(std::size_t)>& onTaskDone) {
  const std::size_t n = tasks.size();
  if (n == 0) return;
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolveJobs(jobs)), n);

  if (workers <= 1) {
    // The serial reference path: no threads, identical observable order.
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i]();
      if (onTaskDone) onTaskDone(i);
    }
    return;
  }

  PoolState state(workers, n);
  for (std::size_t i = 0; i < n; ++i) {
    state.queues[i % workers].tasks.push_back(i);
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&state, &tasks, w] { workerLoop(state, w, tasks); });
  }

  // Drain completions in submission order on the calling thread; the
  // callback therefore observes exactly the serial emission order.
  std::size_t next_emit = 0;
  {
    std::unique_lock<std::mutex> lock(state.done_mu);
    while (next_emit < n) {
      state.done_cv.wait(lock, [&] { return state.done[next_emit] != 0; });
      while (next_emit < n && state.done[next_emit]) {
        const std::size_t i = next_emit++;
        if (onTaskDone) {
          lock.unlock();
          onTaskDone(i);
          lock.lock();
        }
      }
    }
  }
  for (auto& t : threads) t.join();
}

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_(WorkStealingPool::resolveJobs(options.jobs)) {}

std::vector<SweepRun> SweepRunner::run(
    std::vector<ExperimentSpec> specs,
    const std::function<void(const SweepRun&)>& onReady) {
  const std::size_t n = specs.size();
  std::vector<SweepRun> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].spec = std::move(specs[i]);
  }

  std::vector<WorkStealingPool::Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&out, i] {
      SweepRun& run = out[i];
      try {
        run.result = runExperimentSpec(run.spec);
        run.status = Status::success();
      } catch (const std::exception& e) {
        run.status = Status::internal(std::string("sweep run '") +
                                      run.spec.name + "' failed: " + e.what());
      } catch (...) {
        run.status = Status::internal(std::string("sweep run '") +
                                      run.spec.name +
                                      "' failed: unknown exception");
      }
    });
  }

  if (onReady) {
    WorkStealingPool::runAll(std::move(tasks), jobs_,
                             [&out, &onReady](std::size_t i) { onReady(out[i]); });
  } else {
    WorkStealingPool::runAll(std::move(tasks), jobs_);
  }
  return out;
}

}  // namespace composim::core
