#include "core/sweep_runner.hpp"

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace composim::core {

namespace {

/// Per-worker deque with its own lock. Contention is negligible at
/// experiment granularity (milliseconds to minutes per task), so plain
/// mutexes keep the pool obviously correct under TSan instead of
/// cleverly lock-free.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> tasks;  // indices into the shared task vector
};

struct PoolState {
  explicit PoolState(std::size_t workers, std::size_t ntasks)
      : queues(workers), done(ntasks, 0) {}

  std::vector<WorkerQueue> queues;

  // Completion ledger, guarded by done_mu; the caller drains it in
  // submission order.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<char> done;
};

/// Pop from the worker's own deque (LIFO keeps its round-robin share
/// cache-warm); steal FIFO from siblings when empty so the oldest —
/// typically longest-waiting — work migrates first.
bool nextTask(PoolState& state, std::size_t self, std::size_t& out) {
  {
    WorkerQueue& mine = state.queues[self];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.tasks.empty()) {
      out = mine.tasks.back();
      mine.tasks.pop_back();
      return true;
    }
  }
  const std::size_t n = state.queues.size();
  for (std::size_t off = 1; off < n; ++off) {
    WorkerQueue& victim = state.queues[(self + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = victim.tasks.front();
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void workerLoop(PoolState& state, std::size_t self,
                std::vector<WorkStealingPool::Task>& tasks) {
  std::size_t idx = 0;
  // The batch is fixed up front — running tasks never enqueue more — so
  // an empty sweep over every queue means this worker is finished.
  while (nextTask(state, self, idx)) {
    tasks[idx]();
    {
      std::lock_guard<std::mutex> lock(state.done_mu);
      state.done[idx] = 1;
    }
    state.done_cv.notify_one();
  }
}

}  // namespace

int WorkStealingPool::resolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkStealingPool::runAll(std::vector<Task> tasks, int jobs,
                              const std::function<void(std::size_t)>& onTaskDone) {
  const std::size_t n = tasks.size();
  if (n == 0) return;
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolveJobs(jobs)), n);

  if (workers <= 1) {
    // The serial reference path: no threads, identical observable order.
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i]();
      if (onTaskDone) onTaskDone(i);
    }
    return;
  }

  PoolState state(workers, n);
  for (std::size_t i = 0; i < n; ++i) {
    state.queues[i % workers].tasks.push_back(i);
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&state, &tasks, w] { workerLoop(state, w, tasks); });
  }

  // Drain completions in submission order on the calling thread; the
  // callback therefore observes exactly the serial emission order.
  std::size_t next_emit = 0;
  {
    std::unique_lock<std::mutex> lock(state.done_mu);
    while (next_emit < n) {
      state.done_cv.wait(lock, [&] { return state.done[next_emit] != 0; });
      while (next_emit < n && state.done[next_emit]) {
        const std::size_t i = next_emit++;
        if (onTaskDone) {
          lock.unlock();
          onTaskDone(i);
          lock.lock();
        }
      }
    }
  }
  for (auto& t : threads) t.join();
}

namespace {

/// Specs sharing one warm prefix: the prefix runs once (phase A), every
/// member forks its tail from the snapshot (phase B).
struct PrefixGroup {
  std::vector<std::size_t> members;  // indices into the sweep, in order
  std::unique_ptr<SimSnapshot> snapshot;
  Status status = Status::success();  // prefix outcome; !ok => members run cold
};

}  // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_(WorkStealingPool::resolveJobs(options.jobs)),
      share_warm_prefixes_(options.share_warm_prefixes) {}

std::vector<SweepRun> SweepRunner::run(
    std::vector<ExperimentSpec> specs,
    const std::function<void(const SweepRun&)>& onReady) {
  const std::size_t n = specs.size();
  std::vector<SweepRun> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].spec = std::move(specs[i]);
  }

  // Group warm-prefix-applicable specs by prefix key (submission order
  // within each group). Only groups with two or more members fork —
  // warming a singleton's prefix separately would just run it twice.
  std::vector<PrefixGroup> groups;
  std::vector<PrefixGroup*> group_of(n, nullptr);
  if (share_warm_prefixes_) {
    std::map<std::string, std::size_t> by_key;
    for (std::size_t i = 0; i < n; ++i) {
      if (!warmPrefixApplicable(out[i].spec)) continue;
      const std::string key = warmPrefixKey(out[i].spec);
      auto it = by_key.find(key);
      if (it == by_key.end()) {
        it = by_key.emplace(key, groups.size()).first;
        groups.emplace_back();
      }
      groups[it->second].members.push_back(i);
    }
    // groups never reallocates after this point, so raw pointers are safe.
    for (PrefixGroup& g : groups) {
      if (g.members.size() < 2) {
        g.members.clear();
        continue;
      }
      for (const std::size_t i : g.members) group_of[i] = &g;
    }
  }

  // Phase A: one task per shared prefix. A barrier (not a pipeline) is
  // required here — a member's tail cannot start before its group's
  // snapshot exists, and members of one group may sit on many workers.
  std::vector<WorkStealingPool::Task> prefix_tasks;
  for (PrefixGroup& g : groups) {
    if (g.members.empty()) continue;
    PrefixGroup* group = &g;
    SweepRun* first = &out[g.members.front()];
    prefix_tasks.push_back([group, first] {
      try {
        // The donor only exists to be snapshotted, and fault activation
        // is deferred past the pause — so the donor's fault *schedule* is
        // irrelevant to the prefix (spares and attach noise shape
        // construction and stay). Strip it: one member's early fault
        // time must not fail the whole group's prefix; each member
        // checks its own schedule against the pause time in phase B.
        ExperimentOptions donor_options = first->spec.options;
        donor_options.faults.gpu_falloffs.clear();
        donor_options.faults.ecc_storms.clear();
        donor_options.faults.host_port_flaps.clear();
        WarmedExperiment warmed(first->spec.config,
                                dl::workload(first->spec.workload),
                                std::move(donor_options));
        group->snapshot = std::make_unique<SimSnapshot>(warmed.snapshot());
      } catch (const std::exception& e) {
        group->status = Status::internal(
            std::string("warm prefix for '") + first->spec.name +
            "' failed: " + e.what());
      } catch (...) {
        group->status =
            Status::internal(std::string("warm prefix for '") +
                             first->spec.name + "' failed: unknown exception");
      }
    });
  }
  if (!prefix_tasks.empty()) {
    WorkStealingPool::runAll(std::move(prefix_tasks), jobs_);
  }

  // Phase B: every spec runs — group members fork from their snapshot,
  // everyone else (and members of a failed prefix) runs whole.
  std::vector<WorkStealingPool::Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PrefixGroup* group = group_of[i];
    tasks.push_back([&out, group, i] {
      SweepRun& run = out[i];
      try {
        // A member may only fork when its own fault schedule (if any)
        // lands strictly inside the tail — the prefix was validated
        // against the group's FIRST member, and schedules differ across
        // a chaos sweep. The snapshot's clock is the pause boundary;
        // members injecting at or before it run cold instead.
        const bool faults_fit_tail =
            !run.spec.options.faults.enabled ||
            (group != nullptr && group->snapshot != nullptr &&
             earliestFaultTime(run.spec.options.faults) >
                 group->snapshot->sim.now);
        if (group != nullptr && group->status.ok && faults_fit_tail) {
          run.result = WarmedExperiment::resumeFromSnapshot(
              run.spec.config, dl::workload(run.spec.workload),
              run.spec.options, *group->snapshot);
        } else {
          run.result = runExperimentSpec(run.spec);
        }
        run.status = Status::success();
      } catch (const std::exception& e) {
        run.status = Status::internal(std::string("sweep run '") +
                                      run.spec.name + "' failed: " + e.what());
      } catch (...) {
        run.status = Status::internal(std::string("sweep run '") +
                                      run.spec.name +
                                      "' failed: unknown exception");
      }
    });
  }

  if (onReady) {
    WorkStealingPool::runAll(std::move(tasks), jobs_,
                             [&out, &onReady](std::size_t i) { onReady(out[i]); });
  } else {
    WorkStealingPool::runAll(std::move(tasks), jobs_);
  }
  return out;
}

}  // namespace composim::core
