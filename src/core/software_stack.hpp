// composim: the modelled software stack (paper Table I).
//
// The simulator's calibration corresponds to this exact stack; the table
// is reproduced verbatim so EXPERIMENTS.md and the Table I bench can print
// the provenance of every constant.
#pragma once

#include <string>
#include <vector>

namespace composim::core {

struct StackRow {
  std::string component;
  std::string version;
};

inline std::vector<StackRow> softwareStack() {
  return {
      {"Operating system", "Ubuntu 18.04"},
      {"DL Framework", "PyTorch 1.7.1"},
      {"CUDA", "10.2.89"},
      {"CUDA Driver", "450.102.04"},
      {"CUDNN", "cudnn7.6.5"},
      {"NCCL", "NCCL 2.8.4"},
      {"Profilers", "wandb 0.10.14"},
      {"", "NVIDIA Nsight Systems 2020.4.3.7"},
      {"", "NVIDIA Nsight Compute 2020.3.0.0"},
  };
}

}  // namespace composim::core
