// composim: parallel sweep engine.
//
// The paper's value is its *sweep* of configurations (per-benchmark x
// per-topology x per-GPU-count); replaying it one experiment at a time
// wastes every host core but one. Experiments are embarrassingly
// parallel — each run owns a private Simulator/Topology/FlowNetwork/
// Trainer stack and shares nothing — so a work-stealing pool fans them
// out across threads while keeping the *observable* output bit-identical
// to a serial replay:
//
//   * results land in a submission-ordered vector, never a
//     completion-ordered one;
//   * all aggregation (RunTracker rows, trace-file writes, stdout) runs
//     on the calling thread, in submission order, via the in-order
//     completion callback — workers compute, they never emit;
//   * each run's simulation is the same single-threaded deterministic
//     event loop it always was, so the numbers themselves cannot change.
//
// `jobs == 1` degenerates to the old serial loop (no threads spawned),
// which is what makes "serial vs parallel output is byte-identical" a
// testable property rather than a hope.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.hpp"
#include "core/experiment_config.hpp"

namespace composim::core {

/// Fixed-size work-stealing thread pool for a one-shot batch of
/// independent tasks. Tasks are dealt round-robin onto per-worker
/// deques; a worker drains its own deque LIFO and, when empty, steals
/// FIFO from its siblings, so long tasks parked on one worker get
/// redistributed instead of serializing the tail.
class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Resolve a --jobs value: <= 0 selects hardware_concurrency()
  /// (minimum 1 when the runtime reports 0 cores).
  static int resolveJobs(int jobs);

  /// Run every task to completion. `onTaskDone(i)`, when provided, is
  /// invoked on the *calling* thread in submission order: task i's
  /// callback fires only once tasks 0..i have all finished, as soon as
  /// that prefix is complete (streaming, not post-barrier). With
  /// jobs == 1 (or a single task) everything runs inline on the caller
  /// and no threads are spawned.
  ///
  /// Tasks must not throw — wrap fallible work and capture a Status in
  /// the task's own result slot (see SweepRunner::run). A task that
  /// escapes with an exception terminates the process, same as any
  /// unhandled exception on a std::thread.
  static void runAll(std::vector<Task> tasks, int jobs,
                     const std::function<void(std::size_t)>& onTaskDone = {});
};

/// Fan `count` independent jobs out across the pool and collect their
/// return values in submission order. `fn(i)` is called at most once per
/// index, possibly concurrently with other indices — it must not touch
/// mutable state shared across indices (build the full per-run stack
/// inside). The result type must be default-constructible and movable.
template <typename Fn>
auto sweepOrdered(int jobs, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using R = decltype(fn(std::size_t{}));
  std::vector<R> out(count);
  std::vector<WorkStealingPool::Task> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back([&out, &fn, i] { out[i] = fn(i); });
  }
  WorkStealingPool::runAll(std::move(tasks), jobs);
  return out;
}

struct SweepOptions {
  /// Worker threads; <= 0 selects hardware_concurrency().
  int jobs = 0;
  /// Execute each distinct warm prefix once and fork every variant's tail
  /// from the snapshot (DESIGN.md §14). Only groups of two or more specs
  /// with equal warmPrefixKey() fork; singletons and inapplicable specs
  /// run whole. Disable to force every spec to run its own prefix (the
  /// cold reference arm of the fork-vs-cold benchmark).
  bool share_warm_prefixes = true;
};

/// One sweep entry's outcome, in submission order.
struct SweepRun {
  ExperimentSpec spec;
  /// !ok() when the run threw; `result` is then default-constructed and
  /// status.detail carries the exception text. Sibling runs are
  /// unaffected by a failed spec.
  Status status;
  ExperimentResult result;
};

/// Runs a suite of independent experiment specs across worker threads.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  int jobs() const { return jobs_; }

  /// Run every spec; returns outcomes in submission order. `onReady`,
  /// when provided, is invoked on the calling thread in submission order
  /// as each run's prefix completes — the place for printing, trace-file
  /// writes, and RunTracker aggregation (never done concurrently).
  ///
  /// When share_warm_prefixes is on, execution is two-phase: phase A runs
  /// each distinct warm prefix once (across workers) and snapshots it at
  /// the pause boundary; phase B forks every variant's tail from its
  /// group's snapshot, again across workers, streaming onReady in
  /// submission order. A failed prefix fails no one: its members fall
  /// back to whole cold runs in phase B. Forked outputs are
  /// byte-identical to cold phased runs — same manifests, traces and
  /// exports — so sharing is purely a wall-clock optimization.
  std::vector<SweepRun> run(
      std::vector<ExperimentSpec> specs,
      const std::function<void(const SweepRun&)>& onReady = {});

 private:
  int jobs_;
  bool share_warm_prefixes_;
};

}  // namespace composim::core
