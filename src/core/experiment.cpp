#include "core/experiment.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "telemetry/collectors.hpp"

namespace composim::core {

namespace {

/// One experiment's full simulation stack. Shared by the continuous path
/// (Experiment::run) and the phased warm-prefix paths (WarmedExperiment):
/// construction wires every component and collector but starts nothing,
/// so a fork target can be restored into before any event is scheduled
/// (Simulator::setState requires an empty queue).
struct Stack {
  SystemConfig config;
  dl::ModelSpec model;
  ExperimentOptions options;

  ComposableSystem system;
  std::vector<devices::Gpu*> gpus;
  std::shared_ptr<telemetry::Profiler> profiler;
  std::unique_ptr<dl::Trainer> trainer;
  std::unique_ptr<fabric::FaultInjector> injector;
  std::unique_ptr<falcon::HealthMonitor> monitor;
  std::unique_ptr<RecoveryOrchestrator> orchestrator;
  std::shared_ptr<telemetry::MetricsPipeline> metrics;

  dl::TrainingResult training;
  bool finished = false;

  Stack(SystemConfig cfg, const dl::ModelSpec& m, ExperimentOptions opts)
      : config(cfg), model(m), options(std::move(opts)), system(cfg) {
    // Before the first route() call so every path — including any taken
    // during component construction — resolves through the domain tables.
    // The domains themselves are assigned by ComposableSystem's builder.
    if (options.hierarchical_routing) {
      system.topology().setHierarchicalRouting(true);
    }
    gpus = system.trainingGpus();

    // Install the profiler before any component is built so
    // construction-time flows (if any) and the first iteration are
    // captured. Analysis consumes the trace, so it implies tracing.
    if (options.analysis) options.trace = true;
    if (options.trace) {
      profiler = std::make_shared<telemetry::Profiler>(system.sim());
      profiler->setMaxRecords(options.trace_max_records);
      system.sim().setProfiler(profiler.get());
    }

    trainer = std::make_unique<dl::Trainer>(
        system.sim(), system.network(), system.topology(), gpus, system.cpu(),
        system.hostMemory(), system.trainingStorage(), model,
        dl::datasetFor(model), options.trainer);

    // Recovery stack (fault model -> health monitor -> orchestrator),
    // built only when a fault schedule is present.
    if (options.faults.enabled) {
      const FaultsConfig& faults = options.faults;
      // Pre-install spares in the free Falcon slots (the NVMe slot {1,4}
      // is taken); quarantined devices free their slots but are never
      // reused.
      static constexpr falcon::SlotId kSpareSlots[] = {
          {0, 4}, {0, 5}, {0, 6}, {0, 7}, {1, 5}, {1, 6}, {1, 7}};
      for (int i = 0; i < faults.spare_gpus &&
                      i < static_cast<int>(std::size(kSpareSlots));
           ++i) {
        system.installSpareGpu(kSpareSlots[static_cast<std::size_t>(i)]);
      }
      system.chassis().setTransientAttachFailureRate(
          faults.attach_failure_rate, faults.seed + 1);
      injector = std::make_unique<fabric::FaultInjector>(
          system.sim(), system.topology(), system.network(), faults.seed);
      monitor = std::make_unique<falcon::HealthMonitor>(
          system.sim(), system.chassis(), system.bmc());
      monitor->setErrorStormThreshold(faults.error_storm_threshold);
      orchestrator = std::make_unique<RecoveryOrchestrator>(
          system, *monitor, *trainer, faults.policy, faults.seed + 2);
    }

    // Metrics pipeline: shared subsystem collectors scraped on the sample
    // interval, with SLO alert evaluation after every scrape. Collector
    // registration order is load-bearing: a fork restores collector
    // closure state by index (MetricsScraper::restoreCollectorStates).
    const SimTime scrape_interval = options.metrics.scrape_interval > 0.0
                                        ? options.metrics.scrape_interval
                                        : options.sample_interval;
    metrics = std::make_shared<telemetry::MetricsPipeline>(system.sim(),
                                                           scrape_interval);
    telemetry::MetricsScraper& scraper = metrics->scraper();
    telemetry::MetricsRegistry& registry = metrics->registry();
    telemetry::collectGpus(scraper, registry, {gpus.begin(), gpus.end()});
    telemetry::collectHostCpu(scraper, registry, system.cpu());
    ComposableSystem* sys = &system;
    telemetry::collectFalconPcie(scraper, registry, [sys] {
      return static_cast<double>(sys->falconGpuPortBytes());
    });
    telemetry::collectFabricLinks(
        scraper, registry, system.topology(),
        telemetry::hostAdapterLinks(system.topology()));
    telemetry::collectBmc(scraper, registry, system.bmc());
    telemetry::observeTrainer(registry, *trainer);
    for (const std::string& rule : options.metrics.alerts) {
      metrics->alerts().addRule(rule);
    }
    // Alert transitions interleave with the fault/recovery history in the
    // BMC event log, the way a fleet pager would page the operator.
    falcon::Bmc* bmc = &system.bmc();
    metrics->alerts().subscribe([bmc](const telemetry::Alert& a) {
      bmc->logEvent(a.firing ? "alert" : "info",
                    std::string("slo ") + (a.firing ? "firing" : "resolved") +
                        ": " + a.rule + " on " + a.series);
    });
  }

  /// Schedule the fault timeline and start the health monitor. Separate
  /// from construction so the warm-prefix paths can run a fault-free
  /// prefix, drain to the quiescent point (scheduled faults are closures a
  /// snapshot cannot capture), and activate the schedule only on resume.
  /// Fault times are absolute simulated times; the injector API takes
  /// delays, so activation after a prefix rebases against sim.now().
  /// Faults whose time already passed are dropped (the warm-prefix paths
  /// reject such schedules up front).
  void activateFaults() {
    if (!options.faults.enabled) return;
    const FaultsConfig& faults = options.faults;
    const SimTime now = system.sim().now();
    for (const auto& f : faults.gpu_falloffs) {
      if (f.at < now) continue;
      const auto& g =
          system.falconGpus().at(static_cast<std::size_t>(f.gpu_index));
      const auto slot = system.slotOfGpu(g.get());
      const auto& info = system.chassis().slot(*slot);
      injector->scheduleDeviceFalloff(info.link_up, info.link_down,
                                      f.at - now);
    }
    for (const auto& s : faults.ecc_storms) {
      if (s.at < now) continue;
      const auto& g =
          system.falconGpus().at(static_cast<std::size_t>(s.gpu_index));
      const auto slot = system.slotOfGpu(g.get());
      injector->scheduleErrorBurst(system.chassis().slot(*slot).link_up,
                                   s.at - now, s.errors);
    }
    for (const auto& h : faults.host_port_flaps) {
      if (h.at < now) continue;
      const auto& port = system.chassis().hostPort(h.port);
      injector->scheduleHostPortFlap(port.link_in, port.link_out, h.at - now,
                                     h.downtime);
    }
    monitor->start(faults.health_poll_interval);
  }

  /// Earliest injection time in the fault schedule (+inf when none).
  SimTime earliestFaultTime() const {
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (const auto& f : options.faults.gpu_falloffs) t = std::min(t, f.at);
    for (const auto& s : options.faults.ecc_storms) t = std::min(t, s.at);
    for (const auto& h : options.faults.host_port_flaps) t = std::min(t, h.at);
    return t;
  }

  /// The periodic activity a run needs while training advances. Called at
  /// start AND again after a warm-prefix pause — cold and forked tails
  /// issue the identical call sequence, which keeps them byte-identical.
  void startTelemetry() {
    metrics->scraper().start();
    system.bmc().startPeriodicSampling(units::seconds(5.0));
  }

  /// Open the run-level profiler span. Explicit begin/end (not the RAII
  /// Span) because the phased paths close it in a different scope — a
  /// forked tail closes a span its donor's prefix opened.
  void beginRunSpan() {
    if (profiler) {
      profiler->beginSpan("experiment", "experiment", model.name,
                          {{"config", toString(config)}});
    }
  }

  std::function<void(const dl::TrainingResult&)> doneCallback() {
    return [this](const dl::TrainingResult& r) {
      training = r;
      finished = true;
      // Periodic activities would otherwise keep the event queue alive
      // forever; training completion ends the measurement.
      metrics->scraper().scrapeOnce();
      metrics->scraper().stop();
      system.bmc().stopPeriodicSampling();
      if (monitor) monitor->stop();
      // With the monitor stopped, an outage still in effect can never be
      // observed recovering — close those incidents honestly now.
      if (orchestrator) orchestrator->noteRunEnded();
    };
  }

  /// Drain the simulation to completion and summarize, exactly as the
  /// original single-shot Experiment::run did.
  ExperimentResult finishResult() {
    if (options.watchdog > 0.0) {
      // Liveness guard: a hung gang keeps periodic events (polls, scrapes)
      // alive forever, so an unbounded run() would never return. Advance
      // to the deadline and convert "still not finished" into a typed
      // liveness failure the chaos oracles can match on.
      system.sim().runUntil(options.watchdog);
      if (!finished) {
        throw std::runtime_error(
            "watchdog: simulation still live at t=" +
            std::to_string(options.watchdog) +
            "s without the trainer finishing (hung gang?)");
      }
      // Finished: drain the (now self-terminating) remainder of the queue.
      system.sim().run();
    } else {
      system.sim().run();
    }
    if (!finished) {
      throw std::runtime_error(
          "Experiment: simulation drained without finishing");
    }
    if (profiler) {
      profiler->endSpan("experiment");
      // Detach: the Profiler outlives `system` inside the result.
      profiler->finalize();
      system.sim().setProfiler(nullptr);
    }

    ExperimentResult result;
    result.config = config;
    result.benchmark = model.name;
    result.training = training;
    // Detach: the pipeline outlives `system` inside the result.
    metrics->finalize();
    result.metrics = metrics;
    result.profiler = profiler;
    if (options.analysis && profiler) {
      result.analysis = std::make_shared<telemetry::analysis::RunAnalysis>(
          telemetry::analysis::analyzeProfile(*profiler, model.name));
    }

    if (orchestrator) {
      result.recovery.enabled = true;
      result.recovery.faults_injected = injector->faultsInjected();
      result.recovery.detections = monitor->detections();
      result.recovery.reattach_retries = orchestrator->reattachRetries();
      result.recovery.degradations = orchestrator->degradations();
      result.recovery.final_gang_size = orchestrator->gangSize();
      result.recovery.mean_mttr = orchestrator->meanMttr();
      result.recovery.terminal_state = orchestrator->terminalState();
      result.recovery.quarantined_slots = orchestrator->quarantinedSlots();
      result.recovery.incidents = orchestrator->incidents();
      result.recovery.fault_history = injector->history();
      result.recovery.detections_log = monitor->log();
      result.recovery.flows_started = system.network().flowsStarted();
      result.recovery.flows_completed = system.network().flowsCompleted();
      result.recovery.flows_failed = system.network().flowsFailed();
      result.recovery.flows_active_at_end = system.network().activeFlows();
    }

    // Steady-state window: skip the priming phase and exclude checkpoint
    // time (the final checkpoint's idle tail would otherwise dominate the
    // means of short capped runs).
    const SimTime end =
        std::max(0.0, training.simulated_time - training.checkpoint_time);
    const SimTime from = end * 0.15;
    result.gpu_util_pct =
        metrics->series("gpu_util_pct").meanInWindow(from, end);
    result.gpu_mem_access_pct =
        metrics->series("gpu_mem_access_pct").meanInWindow(from, end);
    result.gpu_mem_util_pct =
        metrics->series("gpu_mem_util_pct").meanInWindow(from, end);
    result.cpu_util_pct =
        metrics->series("cpu_util_pct").meanInWindow(from, end);
    result.host_mem_util_pct =
        metrics->series("host_mem_util_pct").meanInWindow(from, end);
    result.falcon_pcie_gbs =
        metrics->series("falcon_pcie_gbs").meanInWindow(from, end);
    return result;
  }
};

}  // namespace

ExperimentResult Experiment::run(SystemConfig config, const dl::ModelSpec& model,
                                 ExperimentOptions options) {
  Stack stack(config, model, std::move(options));
  stack.activateFaults();
  stack.startTelemetry();
  stack.beginRunSpan();
  stack.trainer->start(stack.doneCallback());
  return stack.finishResult();
}

ExperimentResult Experiment::run(SystemConfig config,
                                 ExperimentOptions options) {
  const dl::ModelSpec model = dl::workload(options.workload);
  return run(config, model, std::move(options));
}

double Experiment::trainingTimeChangePct(const ExperimentResult& result,
                                         const ExperimentResult& baseline) {
  const double base = baseline.training.extrapolated_total_time;
  if (base <= 0.0) return 0.0;
  return 100.0 * (result.training.extrapolated_total_time - base) / base;
}

struct WarmedExperiment::Impl {
  Stack stack;

  Impl(SystemConfig config, const dl::ModelSpec& model,
       ExperimentOptions options)
      : stack(config, model, std::move(options)) {}
};

WarmedExperiment::WarmedExperiment(SystemConfig config,
                                   const dl::ModelSpec& model,
                                   ExperimentOptions options) {
  if (options.warm_prefix <= 0) {
    throw std::invalid_argument("WarmedExperiment: warm_prefix must be > 0");
  }
  impl_ = std::make_unique<Impl>(config, model, std::move(options));
  Stack& stack = impl_->stack;

  // At the pause boundary, stop every periodic activity AND cancel its
  // pending tick so the queue drains right at the boundary (a stale
  // 5-second BMC tick would otherwise run the clock seconds past it and
  // leave a visible idle hole in the resumed scrape grid). In-flight
  // prefetch and H2D flows complete during the drain, and the stack
  // reaches the quiescent point where all state is plain data.
  stack.trainer->pauseAfter(stack.options.warm_prefix, [&stack] {
    stack.metrics->scraper().stopAndCancelTick();
    stack.system.bmc().stopAndCancelSampling();
  });
  stack.startTelemetry();
  stack.beginRunSpan();
  stack.trainer->start(stack.doneCallback());
  stack.system.sim().run();
  if (!stack.trainer->paused()) {
    throw std::runtime_error(
        "WarmedExperiment: run ended before the warm-prefix boundary (check "
        "warmPrefixApplicable)");
  }
  // Fault activation is deferred to the resume step, so the schedule is
  // only warm-prefixable when every injection lands strictly inside the
  // tail. warmPrefixApplicable() can't know the boundary's simulated time
  // up front; validate here and let callers fall back to a cold run.
  if (stack.options.faults.enabled &&
      stack.earliestFaultTime() <= stack.system.sim().now()) {
    throw std::runtime_error(
        "WarmedExperiment: fault schedule injects at or before the "
        "warm-prefix boundary (t=" +
        std::to_string(stack.system.sim().now()) + "s); run cold instead");
  }
}

WarmedExperiment::~WarmedExperiment() = default;

SimSnapshot WarmedExperiment::snapshot() const {
  const Stack& stack = impl_->stack;
  ComposableSystem& system = const_cast<ComposableSystem&>(stack.system);

  SimSnapshot snap;
  snap.sim = system.sim().state();
  snap.topology = system.topology().state();
  snap.network = system.network().state();
  for (const auto& g : system.localGpus()) snap.local_gpus.push_back(g->state());
  for (const auto& g : system.falconGpus()) {
    snap.falcon_gpus.push_back(g->state());
  }
  snap.cpu = system.cpu().state();
  snap.local_nvme = system.localNvme().state();
  snap.falcon_nvme = system.falconNvme().state();
  snap.boot_ssd = system.bootSsd().state();
  snap.bmc = system.bmc().state();
  snap.communicator = stack.trainer->communicator().state();
  snap.pipeline = stack.trainer->pipeline().state();
  snap.trainer = stack.trainer->state();
  snap.registry = stack.metrics->registry().state();
  snap.scraper = stack.metrics->scraper().state();
  snap.collectors = stack.metrics->scraper().collectorStates();
  snap.alerts = stack.metrics->alerts().state();
  if (stack.profiler) {
    snap.traced = true;
    snap.profiler = stack.profiler->state();
  }
  return snap;
}

ExperimentResult WarmedExperiment::finish() {
  Stack& stack = impl_->stack;
  // The resume sequence — fault activation, telemetry restart, then the
  // next iteration — is the same call-for-call in the cold and fork paths.
  stack.activateFaults();
  stack.startTelemetry();
  stack.trainer->resumeTraining();
  return stack.finishResult();
}

ExperimentResult WarmedExperiment::resumeFromSnapshot(
    SystemConfig config, const dl::ModelSpec& model, ExperimentOptions options,
    const SimSnapshot& snap) {
  Stack stack(config, model, std::move(options));
  ComposableSystem& system = stack.system;

  // Restore order: clock and allocators first (so restored EventIds and
  // FlowIds continue the donor's sequences), then devices, then the
  // trainer bookkeeping that adopts — without re-allocating — the memory
  // the device restores already account.
  system.sim().setState(snap.sim);
  system.topology().restoreState(snap.topology);  // also rebinds route owner
  system.network().restoreState(snap.network);
  if (snap.local_gpus.size() != system.localGpus().size() ||
      snap.falcon_gpus.size() != system.falconGpus().size()) {
    throw std::logic_error(
        "WarmedExperiment::resumeFromSnapshot: GPU population mismatch "
        "(different SystemConfig than the donor?)");
  }
  for (std::size_t i = 0; i < snap.local_gpus.size(); ++i) {
    system.localGpus()[i]->restoreState(snap.local_gpus[i]);
  }
  for (std::size_t i = 0; i < snap.falcon_gpus.size(); ++i) {
    system.falconGpus()[i]->restoreState(snap.falcon_gpus[i]);
  }
  system.cpu().restoreState(snap.cpu);
  system.localNvme().restoreState(snap.local_nvme);
  system.falconNvme().restoreState(snap.falcon_nvme);
  system.bootSsd().restoreState(snap.boot_ssd);
  system.bmc().restoreState(snap.bmc);
  stack.trainer->communicator().restoreState(snap.communicator);
  stack.trainer->pipeline().restoreState(snap.pipeline);
  if (stack.profiler && snap.traced) stack.profiler->setState(snap.profiler);
  stack.metrics->registry().restoreState(snap.registry);
  stack.metrics->scraper().setState(snap.scraper);
  stack.metrics->scraper().restoreCollectorStates(snap.collectors);
  stack.metrics->alerts().setState(snap.alerts);
  stack.trainer->restoreRun(snap.trainer, stack.doneCallback());

  // Identical resume sequence to finish() above.
  stack.activateFaults();
  stack.startTelemetry();
  stack.trainer->resumeTraining();
  return stack.finishResult();
}

}  // namespace composim::core
