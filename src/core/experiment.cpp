#include "core/experiment.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "telemetry/collectors.hpp"

namespace composim::core {

ExperimentResult Experiment::run(SystemConfig config, const dl::ModelSpec& model,
                                 ExperimentOptions options) {
  ComposableSystem system(config);
  auto gpus = system.trainingGpus();

  // Install the profiler before any component is built so construction-time
  // flows (if any) and the first iteration are captured.
  std::shared_ptr<telemetry::Profiler> profiler;
  if (options.trace) {
    profiler = std::make_shared<telemetry::Profiler>(system.sim());
    system.sim().setProfiler(profiler.get());
  }

  dl::Trainer trainer(system.sim(), system.network(), system.topology(), gpus,
                      system.cpu(), system.hostMemory(),
                      system.trainingStorage(), model, dl::datasetFor(model),
                      options.trainer);

  // Recovery stack (fault model -> health monitor -> orchestrator), built
  // only when a fault schedule is present.
  std::unique_ptr<fabric::FaultInjector> injector;
  std::unique_ptr<falcon::HealthMonitor> monitor;
  std::unique_ptr<RecoveryOrchestrator> orchestrator;
  if (options.faults.enabled) {
    const FaultsConfig& faults = options.faults;
    // Pre-install spares in the free Falcon slots (the NVMe slot {1,4} is
    // taken); quarantined devices free their slots but are never reused.
    static constexpr falcon::SlotId kSpareSlots[] = {
        {0, 4}, {0, 5}, {0, 6}, {0, 7}, {1, 5}, {1, 6}, {1, 7}};
    for (int i = 0; i < faults.spare_gpus &&
                    i < static_cast<int>(std::size(kSpareSlots));
         ++i) {
      system.installSpareGpu(kSpareSlots[static_cast<std::size_t>(i)]);
    }
    system.chassis().setTransientAttachFailureRate(faults.attach_failure_rate,
                                                   faults.seed + 1);
    injector = std::make_unique<fabric::FaultInjector>(
        system.sim(), system.topology(), system.network(), faults.seed);
    monitor = std::make_unique<falcon::HealthMonitor>(
        system.sim(), system.chassis(), system.bmc());
    monitor->setErrorStormThreshold(faults.error_storm_threshold);
    orchestrator = std::make_unique<RecoveryOrchestrator>(
        system, *monitor, trainer, faults.policy);

    for (const auto& f : faults.gpu_falloffs) {
      const auto& g = system.falconGpus().at(static_cast<std::size_t>(f.gpu_index));
      const auto slot = system.slotOfGpu(g.get());
      const auto& info = system.chassis().slot(*slot);
      injector->scheduleDeviceFalloff(info.link_up, info.link_down, f.at);
    }
    for (const auto& s : faults.ecc_storms) {
      const auto& g = system.falconGpus().at(static_cast<std::size_t>(s.gpu_index));
      const auto slot = system.slotOfGpu(g.get());
      injector->scheduleErrorBurst(system.chassis().slot(*slot).link_up, s.at,
                                   s.errors);
    }
    for (const auto& h : faults.host_port_flaps) {
      const auto& port = system.chassis().hostPort(h.port);
      injector->scheduleHostPortFlap(port.link_in, port.link_out, h.at,
                                     h.downtime);
    }
    monitor->start(faults.health_poll_interval);
  }

  // Metrics pipeline: shared subsystem collectors scraped on the sample
  // interval, with SLO alert evaluation after every scrape.
  const SimTime scrape_interval = options.metrics.scrape_interval > 0.0
                                      ? options.metrics.scrape_interval
                                      : options.sample_interval;
  auto metrics = std::make_shared<telemetry::MetricsPipeline>(system.sim(),
                                                              scrape_interval);
  telemetry::MetricsScraper& scraper = metrics->scraper();
  telemetry::MetricsRegistry& registry = metrics->registry();
  telemetry::collectGpus(scraper, registry,
                         {gpus.begin(), gpus.end()});
  telemetry::collectHostCpu(scraper, registry, system.cpu());
  ComposableSystem* sys = &system;
  telemetry::collectFalconPcie(scraper, registry, [sys] {
    return static_cast<double>(sys->falconGpuPortBytes());
  });
  telemetry::collectFabricLinks(scraper, registry, system.topology(),
                                telemetry::hostAdapterLinks(system.topology()));
  telemetry::collectBmc(scraper, registry, system.bmc());
  telemetry::observeTrainer(registry, trainer);
  for (const std::string& rule : options.metrics.alerts) {
    metrics->alerts().addRule(rule);
  }
  // Alert transitions interleave with the fault/recovery history in the
  // BMC event log, the way a fleet pager would page the operator.
  falcon::Bmc* bmc = &system.bmc();
  metrics->alerts().subscribe([bmc](const telemetry::Alert& a) {
    bmc->logEvent(a.firing ? "alert" : "info",
                  std::string("slo ") + (a.firing ? "firing" : "resolved") +
                      ": " + a.rule + " on " + a.series);
  });

  scraper.start();
  system.bmc().startPeriodicSampling(units::seconds(5.0));

  dl::TrainingResult training;
  bool finished = false;
  telemetry::Profiler::Span run_span;
  if (profiler) {
    run_span = profiler->span("experiment", model.name,
                              {{"config", toString(config)}});
  }
  trainer.start([&](const dl::TrainingResult& r) {
    training = r;
    finished = true;
    // Periodic activities would otherwise keep the event queue alive
    // forever; training completion ends the measurement.
    scraper.scrapeOnce();
    scraper.stop();
    system.bmc().stopPeriodicSampling();
    if (monitor) monitor->stop();
  });
  system.sim().run();
  if (!finished) {
    throw std::runtime_error("Experiment: simulation drained without finishing");
  }
  if (profiler) {
    run_span.end();
    // Detach: the Profiler outlives `system` inside the result.
    profiler->finalize();
    system.sim().setProfiler(nullptr);
  }

  ExperimentResult result;
  result.config = config;
  result.benchmark = model.name;
  result.training = training;
  // Detach: the pipeline outlives `system` inside the result.
  metrics->finalize();
  result.metrics = metrics;
  result.profiler = profiler;

  if (orchestrator) {
    result.recovery.enabled = true;
    result.recovery.faults_injected = injector->faultsInjected();
    result.recovery.detections = monitor->detections();
    result.recovery.reattach_retries = orchestrator->reattachRetries();
    result.recovery.degradations = orchestrator->degradations();
    result.recovery.final_gang_size = orchestrator->gangSize();
    result.recovery.mean_mttr = orchestrator->meanMttr();
    result.recovery.incidents = orchestrator->incidents();
    result.recovery.fault_history = injector->history();
    result.recovery.detections_log = monitor->log();
  }

  // Steady-state window: skip the priming phase and exclude checkpoint
  // time (the final checkpoint's idle tail would otherwise dominate the
  // means of short capped runs).
  const SimTime end =
      std::max(0.0, training.simulated_time - training.checkpoint_time);
  const SimTime from = end * 0.15;
  result.gpu_util_pct = metrics->series("gpu_util_pct").meanInWindow(from, end);
  result.gpu_mem_access_pct =
      metrics->series("gpu_mem_access_pct").meanInWindow(from, end);
  result.gpu_mem_util_pct =
      metrics->series("gpu_mem_util_pct").meanInWindow(from, end);
  result.cpu_util_pct = metrics->series("cpu_util_pct").meanInWindow(from, end);
  result.host_mem_util_pct =
      metrics->series("host_mem_util_pct").meanInWindow(from, end);
  result.falcon_pcie_gbs =
      metrics->series("falcon_pcie_gbs").meanInWindow(from, end);
  return result;
}

double Experiment::trainingTimeChangePct(const ExperimentResult& result,
                                         const ExperimentResult& baseline) {
  const double base = baseline.training.extrapolated_total_time;
  if (base <= 0.0) return 0.0;
  return 100.0 * (result.training.extrapolated_total_time - base) / base;
}

}  // namespace composim::core
