// composim: MTTR-aware recovery orchestrator (paper §III-B.3 made live).
//
// The composable test bed's pitch is that a failed GPU, NVMe, or host link
// is a management-plane event, not a maintenance window: detach the dead
// slot, attach a spare, resume from checkpoint — no cabling, no reboot.
// RecoveryOrchestrator is the policy engine that drives that loop. It
// subscribes to falcon::HealthMonitor fault events and runs a per-incident
// state machine:
//
//   Detected ──► Quarantined ──► Attaching ──► Restoring ──► Recovered
//                    │              │(retries      ▲
//                    │              │ exhausted /  │
//                    │              ▼ no spare)    │
//                    └────────► Degrading ─────────┘ (shrunk gang)
//
//   HostPortLost ──► WaitingForLink ──► Restoring ──► Recovered
//
// Quarantine = Chassis::detach + removeDevice, so the AllocationPlanner
// can never hand the dead device back as a "spare". Attach retries use
// bounded exponential backoff because the management plane itself can fail
// transiently (Status code Retryable). When no spare exists the gang
// shrinks (graceful degradation) and the Trainer re-composes DDP over the
// survivors. Every path ends in Trainer::requestRestore: model state is
// re-read from storage over the fabric, so recovery cost is
// topology-dependent like everything else in the simulator.
//
// MTTR here is detection-to-resume: the health monitor's polling already
// models detection latency, and the bench reports injection-to-detection
// separately by joining the injector's history against the monitor log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/composable_system.hpp"
#include "dl/trainer.hpp"
#include "falcon/allocation_planner.hpp"
#include "falcon/health_monitor.hpp"

namespace composim::core {

struct RecoveryPolicy {
  int max_attach_retries = 6;
  SimTime attach_backoff_initial = 0.25;  // seconds; doubled per retry
  double attach_backoff_multiplier = 2.0;
  /// Treat an ECC error storm on a gang GPU as a failure prediction and
  /// swap the device out before it falls off the bus.
  bool proactive_on_error_storm = true;
};

struct RecoveryIncident {
  falcon::FaultEvent fault;     // the detection that opened the incident
  SimTime detected_at = 0.0;
  SimTime recovered_at = -1.0;  // < 0 while open
  enum class Path {
    None,            // resolved without action (e.g. training already done)
    SpareAttach,     // quarantined, spare attached, restored
    Degraded,        // no spare: gang shrank, restored
    WaitForLink,     // host port: waited out the outage, restored
    StorageRetarget, // NVMe: spare attached, storage re-pointed, restored
  } path = Path::None;
  int attach_retries = 0;
  bool resolved() const { return recovered_at >= 0.0; }
  SimTime mttr() const { return recovered_at - detected_at; }
};

const char* toString(RecoveryIncident::Path p);

class RecoveryOrchestrator {
 public:
  RecoveryOrchestrator(ComposableSystem& system, falcon::HealthMonitor& monitor,
                       dl::Trainer& trainer, RecoveryPolicy policy = {});

  RecoveryOrchestrator(const RecoveryOrchestrator&) = delete;
  RecoveryOrchestrator& operator=(const RecoveryOrchestrator&) = delete;

  const std::vector<RecoveryIncident>& incidents() const { return incidents_; }
  std::uint64_t reattachRetries() const { return reattach_retries_; }
  int degradations() const { return degradations_; }
  std::size_t gangSize() const { return gang_.size(); }
  /// Mean detection-to-resume time over resolved incidents (0 if none).
  SimTime meanMttr() const;

 private:
  void onFault(const falcon::FaultEvent& ev);
  bool inGang(const devices::Gpu* gpu) const;
  /// True while an unresolved incident already covers this slot (one
  /// physical fault may be detected via several signals in one poll).
  bool slotHasOpenIncident(falcon::SlotId slot) const;
  /// Quarantine the slot and either swap in a spare or degrade.
  void handleGpuLoss(std::size_t inc, devices::Gpu* failed,
                     falcon::SlotId slot);
  void handleNvmeLoss(std::size_t inc, falcon::SlotId slot);
  void quarantine(falcon::SlotId slot);
  /// Attach `slot` to `port` with bounded exponential backoff; `onDone`
  /// runs with true on success, false when retries are exhausted or the
  /// failure is not retryable.
  void attachWithRetry(std::size_t inc, falcon::SlotId slot, int port,
                       SimTime backoff, std::function<void(bool)> onDone);
  void degrade(std::size_t inc, devices::Gpu* failed);
  /// Restore training on the current gang; closes every open incident at
  /// the moment the first post-restore iteration begins.
  void resumeTraining();
  void closeOpenIncidents();
  void instant(const char* name, ProfileArgs args = {});

  ComposableSystem& system_;
  falcon::HealthMonitor& monitor_;
  dl::Trainer& trainer_;
  RecoveryPolicy policy_;
  std::vector<devices::Gpu*> gang_;
  std::vector<RecoveryIncident> incidents_;
  std::uint64_t reattach_retries_ = 0;
  int degradations_ = 0;
};

}  // namespace composim::core
