// composim: MTTR-aware recovery orchestrator (paper §III-B.3 made live).
//
// The composable test bed's pitch is that a failed GPU, NVMe, or host link
// is a management-plane event, not a maintenance window: detach the dead
// slot, attach a spare, resume from checkpoint — no cabling, no reboot.
// RecoveryOrchestrator is the policy engine that drives that loop. It
// subscribes to falcon::HealthMonitor fault events and runs a per-incident
// state machine:
//
//   Detected ──► Quarantined ──► Attaching ──► Restoring ──► Recovered
//                    │              │(retries      ▲
//                    │              │ exhausted /  │
//                    │              ▼ no spare)    │
//                    └────────► Degrading ─────────┘ (shrunk gang)
//
//   HostPortLost ──► WaitingForLink ──► Restoring ──► Recovered
//
// Quarantine = Chassis::detach + removeDevice, so the AllocationPlanner
// can never hand the dead device back as a "spare". Attach retries use
// bounded exponential backoff because the management plane itself can fail
// transiently (Status code Retryable). When no spare exists the gang
// shrinks (graceful degradation) and the Trainer re-composes DDP over the
// survivors. Every path ends in Trainer::requestRestore: model state is
// re-read from storage over the fabric, so recovery cost is
// topology-dependent like everything else in the simulator.
//
// MTTR here is detection-to-resume: the health monitor's polling already
// models detection latency, and the bench reports injection-to-detection
// separately by joining the injector's history against the monitor log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/composable_system.hpp"
#include "dl/trainer.hpp"
#include "falcon/allocation_planner.hpp"
#include "falcon/health_monitor.hpp"
#include "sim/random.hpp"

namespace composim::core {

struct RecoveryPolicy {
  int max_attach_retries = 6;
  SimTime attach_backoff_initial = 0.25;  // seconds; doubled per retry
  double attach_backoff_multiplier = 2.0;
  /// Ceiling on a single backoff interval; 0 disables the cap. Without a
  /// cap the doubling series can push MTTR past any SLO on a long retry
  /// chain even though each individual attach is cheap.
  SimTime attach_backoff_max = 0.0;
  /// Fractional jitter applied to each backoff interval: the wait is
  /// multiplied by a uniform draw from [1-j, 1+j]. Deterministic — drawn
  /// from the orchestrator's own seeded RNG stream, so replays are exact.
  double attach_backoff_jitter = 0.0;
  /// Total simulated time an incident may spend waiting in backoff before
  /// the attach is abandoned (0 = unlimited). A retry *budget* caps MTTR
  /// directly where max_attach_retries only caps the attempt count.
  SimTime attach_retry_budget = 0.0;
  /// Treat an ECC error storm on a gang GPU as a failure prediction and
  /// swap the device out before it falls off the bus.
  bool proactive_on_error_storm = true;
};

struct RecoveryIncident {
  falcon::FaultEvent fault;     // the detection that opened the incident
  SimTime detected_at = 0.0;
  SimTime recovered_at = -1.0;  // < 0 while open
  enum class Path {
    None,            // resolved without action (e.g. training already done)
    SpareAttach,     // quarantined, spare attached, restored
    Degraded,        // no spare: gang shrank, restored
    WaitForLink,     // host port: waited out the outage, restored
    StorageRetarget, // NVMe: spare attached, storage re-pointed, restored
  } path = Path::None;
  int attach_retries = 0;
  /// Cumulative simulated time spent waiting in attach backoff.
  SimTime backoff_waited = 0.0;
  /// Slot the replacement device was attached to (drawer < 0 if none):
  /// lets oracles assert the spare is never a quarantined slot.
  falcon::SlotId spare_slot{-1, -1};
  /// True when the incident ended without restoring service (retry budget
  /// exhausted, gang exhausted). Abandoned incidents are excluded from
  /// MTTR so the distribution only prices successful recoveries.
  bool abandoned = false;
  bool resolved() const { return recovered_at >= 0.0; }
  SimTime mttr() const { return recovered_at - detected_at; }
};

const char* toString(RecoveryIncident::Path p);

/// Where the recovery state machine ended up once the run is over.
enum class RecoveryTerminalState {
  Idle,           // no incidents ever opened
  Recovered,      // every incident resolved, full gang intact
  Degraded,       // resolved, but the gang shrank (or service was lost soft)
  Unrecoverable,  // recovery gave up and aborted the run
  InFlight,       // an incident was still open when the run ended
};

const char* toString(RecoveryTerminalState s);

class RecoveryOrchestrator {
 public:
  RecoveryOrchestrator(ComposableSystem& system, falcon::HealthMonitor& monitor,
                       dl::Trainer& trainer, RecoveryPolicy policy = {},
                       std::uint64_t jitter_seed = 0);

  RecoveryOrchestrator(const RecoveryOrchestrator&) = delete;
  RecoveryOrchestrator& operator=(const RecoveryOrchestrator&) = delete;

  const std::vector<RecoveryIncident>& incidents() const { return incidents_; }
  std::uint64_t reattachRetries() const { return reattach_retries_; }
  int degradations() const { return degradations_; }
  std::size_t gangSize() const { return gang_.size(); }
  /// Mean detection-to-resume time over resolved incidents (0 if none).
  SimTime meanMttr() const;
  /// Slots this orchestrator quarantined, in quarantine order.
  const std::vector<falcon::SlotId>& quarantinedSlots() const {
    return quarantined_;
  }
  bool slotQuarantined(falcon::SlotId slot) const;
  /// Classify where the state machine ended up; meaningful once the
  /// experiment has finished (during the run open incidents => InFlight).
  RecoveryTerminalState terminalState() const;
  /// The measurement is over (trainer finished, monitor stopping). An
  /// outage still in effect can never be observed recovering after this
  /// point, so WaitForLink incidents still waiting for their port are
  /// closed as abandoned: the outage outlived the run and no recovery was
  /// performed. Incidents mid-attach are left to their own (finite) event
  /// chains, which the simulation drains to a normal resolution.
  void noteRunEnded();

 private:
  void onFault(const falcon::FaultEvent& ev);
  bool inGang(const devices::Gpu* gpu) const;
  /// True while an unresolved incident already covers this slot (one
  /// physical fault may be detected via several signals in one poll).
  bool slotHasOpenIncident(falcon::SlotId slot) const;
  /// Quarantine the slot and either swap in a spare or degrade.
  void handleGpuLoss(std::size_t inc, devices::Gpu* failed,
                     falcon::SlotId slot);
  void handleNvmeLoss(std::size_t inc, falcon::SlotId slot);
  void quarantine(falcon::SlotId slot);
  /// Attach `slot` to `port` with bounded exponential backoff; `onDone`
  /// runs with true on success, false when retries are exhausted or the
  /// failure is not retryable.
  void attachWithRetry(std::size_t inc, falcon::SlotId slot, int port,
                       SimTime backoff, std::function<void(bool)> onDone);
  void degrade(std::size_t inc, devices::Gpu* failed);
  /// Restore training on the current gang; closes every open incident at
  /// the moment the first post-restore iteration begins.
  void resumeTraining();
  void closeOpenIncidents();
  /// Next backoff interval: capped, then jittered from the seeded stream.
  SimTime jitteredBackoff(SimTime backoff);
  void instant(const char* name, ProfileArgs args = {});

  ComposableSystem& system_;
  falcon::HealthMonitor& monitor_;
  dl::Trainer& trainer_;
  RecoveryPolicy policy_;
  Rng rng_;  // jitter stream; deterministic per (seed, draw order)
  std::vector<devices::Gpu*> gang_;
  std::vector<RecoveryIncident> incidents_;
  std::vector<falcon::SlotId> quarantined_;
  std::uint64_t reattach_retries_ = 0;
  int degradations_ = 0;
  bool aborted_run_ = false;
};

}  // namespace composim::core
