// composim: configuration recommender (the paper's §VI future work:
// "build a system framework that can take the input of various configured
// runs, and recommend the optimal system level topology").
//
// Measured runs are recorded per (benchmark, configuration); a query asks
// for the best configuration for a workload, either by direct lookup or —
// for an unseen workload — by nearest-neighbour matching on the model
// characteristics that drive the composability trade-off (parameter bytes
// to synchronize per step vs compute per step).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "dl/model.hpp"

namespace composim::core {

struct RunRecord {
  std::string benchmark;
  SystemConfig config = SystemConfig::LocalGpus;
  double time_seconds = 0.0;          // extrapolated full-run time
  double samples_per_second = 0.0;
  // Workload descriptor used for similarity on unseen models.
  double param_bytes = 0.0;
  double flops_per_sample = 0.0;
};

struct Recommendation {
  SystemConfig config = SystemConfig::LocalGpus;
  double expected_time_seconds = 0.0;
  /// Relative slowdown of the best Falcon-involving configuration vs the
  /// best overall — the price of full composability for this workload.
  double composability_overhead_pct = 0.0;
  std::string rationale;
};

class Recommender {
 public:
  void addRun(const ExperimentResult& result, const dl::ModelSpec& model);
  void addRun(RunRecord record);

  std::size_t runCount() const { return runs_.size(); }

  /// Best configuration among recorded runs of `benchmark`.
  std::optional<Recommendation> recommendFor(const std::string& benchmark) const;

  /// Best configuration for an unseen model, using the most similar
  /// recorded benchmark (log-space distance over the descriptor).
  std::optional<Recommendation> recommendFor(const dl::ModelSpec& model) const;

  const std::vector<RunRecord>& runs() const { return runs_; }

 private:
  std::optional<Recommendation> recommendAmong(
      const std::vector<const RunRecord*>& candidates) const;

  std::vector<RunRecord> runs_;
};

}  // namespace composim::core
