#include "core/composable_system.hpp"

#include <stdexcept>

#include "fabric/link_catalog.hpp"
#include "fabric/nvlink_mesh.hpp"

namespace composim::core {

const char* toString(SystemConfig c) {
  switch (c) {
    case SystemConfig::LocalGpus: return "localGPUs";
    case SystemConfig::HybridGpus: return "hybridGPUs";
    case SystemConfig::FalconGpus: return "falconGPUs";
    case SystemConfig::LocalNvme: return "localNVMe";
    case SystemConfig::FalconNvme: return "falconNVMe";
    case SystemConfig::AllGpus16: return "allGPUs16";
  }
  return "?";
}

std::vector<SystemConfig> allConfigs() {
  return {SystemConfig::LocalGpus, SystemConfig::HybridGpus,
          SystemConfig::FalconGpus, SystemConfig::LocalNvme,
          SystemConfig::FalconNvme};
}

std::vector<SystemConfig> gpuConfigs() {
  return {SystemConfig::LocalGpus, SystemConfig::HybridGpus,
          SystemConfig::FalconGpus};
}

std::vector<SystemConfig> storageConfigs() {
  return {SystemConfig::LocalGpus, SystemConfig::LocalNvme,
          SystemConfig::FalconNvme};
}

ComposableSystem::ComposableSystem(SystemConfig config) : config_(config) {
  net_ = std::make_unique<fabric::FlowNetwork>(sim_, topo_);
  buildHost();
  const std::size_t host_nodes = topo_.nodeCount();
  buildFalcon();
  // Routing domains mirror the physical partition: everything on the host
  // board stays in kHostDomain (the addNode default) and the whole Falcon
  // chassis — drawer chips plus installed devices — forms kFalconDomain.
  // Assignment is unconditional; it only changes routing behaviour once a
  // stack opts into Topology::setHierarchicalRouting.
  for (std::size_t n = host_nodes; n < topo_.nodeCount(); ++n) {
    topo_.setNodeDomain(static_cast<fabric::NodeId>(n), kFalconDomain);
  }
  applyConfig();
}

void ComposableSystem::buildHost() {
  cpu_ = std::make_unique<devices::HostCpu>(sim_, devices::specs::xeon_gold_6148());

  host_root_ = topo_.addNode("host.root", fabric::NodeKind::CpuRootComplex);
  host_memory_ = topo_.addNode("host.memory", fabric::NodeKind::HostMemory);
  {
    const auto bus = fabric::catalog::memoryBus();
    topo_.addDuplexLink(host_root_, host_memory_, bus.capacityPerDirection,
                        bus.latency, bus.kind);
  }

  // Two on-board PLX switches, four SXM2 sockets each (DGX-1-style board).
  const auto pcie3 = fabric::catalog::pcie3_x16();
  for (int p = 0; p < 2; ++p) {
    plx_[static_cast<std::size_t>(p)] =
        topo_.addNode("host.plx" + std::to_string(p), fabric::NodeKind::PcieSwitch);
    topo_.addDuplexLink(host_root_, plx_[static_cast<std::size_t>(p)],
                        pcie3.capacityPerDirection, pcie3.latency, pcie3.kind);
  }

  std::vector<fabric::NodeId> gpu_nodes;
  for (int i = 0; i < 8; ++i) {
    const std::string name = "gpu.local" + std::to_string(i);
    const fabric::NodeId node = topo_.addNode(name, fabric::NodeKind::Gpu);
    topo_.addDuplexLink(node, plx_[static_cast<std::size_t>(i / 4)],
                        pcie3.capacityPerDirection, pcie3.latency, pcie3.kind);
    gpu_nodes.push_back(node);
    local_gpus_.push_back(std::make_unique<devices::Gpu>(
        sim_, node, devices::specs::v100_sxm2(), name));
  }
  fabric::buildHybridCubeMesh(topo_, gpu_nodes);

  // Host-attached NVMe and the boot SSD, both behind the root complex.
  {
    const fabric::NodeId n = topo_.addNode("nvme.local", fabric::NodeKind::Storage);
    topo_.addDuplexLink(n, host_root_, pcie3.capacityPerDirection, pcie3.latency,
                        pcie3.kind);
    local_nvme_ = std::make_unique<devices::StorageDevice>(
        *net_, n, devices::specs::intel_nvme_4tb(), "nvme.local");
  }
  {
    const fabric::NodeId n = topo_.addNode("ssd.boot", fabric::NodeKind::Storage);
    topo_.addDuplexLink(n, host_root_, units::GBps(0.6), units::microseconds(2.0),
                        fabric::LinkKind::PCIe3);
    boot_ssd_ = std::make_unique<devices::StorageDevice>(
        *net_, n, devices::specs::sata_boot_ssd(), "ssd.boot");
  }
}

void ComposableSystem::buildFalcon() {
  chassis_ = std::make_unique<falcon::FalconChassis>(sim_, topo_, "falcon0");
  bmc_ = std::make_unique<falcon::Bmc>(sim_, *chassis_, "FAL-4016-0001");
  mcs_ = std::make_unique<falcon::Mcs>(*chassis_);
  mcs_->addUser("admin", falcon::Role::Administrator);

  // Fig 6: the host reaches both drawers (ports H1 and H3).
  if (auto r = chassis_->connectHost(0, host_root_, "host"); !r) {
    throw std::runtime_error("connectHost H1: " + r.detail);
  }
  if (auto r = chassis_->connectHost(2, host_root_, "host"); !r) {
    throw std::runtime_error("connectHost H3: " + r.detail);
  }

  // Four V100-PCIE GPUs per drawer (slots 0-3).
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 4; ++s) {
      const std::string name =
          "gpu.falcon.d" + std::to_string(d) + "s" + std::to_string(s);
      const fabric::NodeId node = topo_.addNode(name, fabric::NodeKind::Gpu);
      const falcon::SlotId slot{d, s};
      if (auto r = chassis_->installDevice(slot, falcon::DeviceType::Gpu, name, node);
          !r) {
        throw std::runtime_error("installDevice: " + r.detail);
      }
      falcon_gpus_.push_back(std::make_unique<devices::Gpu>(
          sim_, node, devices::specs::v100_pcie(), name));
      falcon_gpu_slots_.push_back(slot);
    }
  }

  // NVMe in drawer 2 (index 1), slot 4 — per the Fig 6 topology.
  {
    const fabric::NodeId n = topo_.addNode("nvme.falcon", fabric::NodeKind::Storage);
    falcon_nvme_slot_ = falcon::SlotId{1, 4};
    if (auto r = chassis_->installDevice(falcon_nvme_slot_, falcon::DeviceType::Nvme,
                                         "nvme.falcon", n);
        !r) {
      throw std::runtime_error("installDevice nvme: " + r.detail);
    }
    falcon_nvme_ = std::make_unique<devices::StorageDevice>(
        *net_, n, devices::specs::intel_nvme_4tb(), "nvme.falcon");
  }

  // Thermal model inputs for the BMC.
  for (std::size_t i = 0; i < falcon_gpus_.size(); ++i) {
    devices::Gpu* gpu = falcon_gpus_[i].get();
    const int drawer = falcon_gpu_slots_[i].drawer;
    Simulator* sim = &sim_;
    // Busy fraction over the trailing second, evaluated lazily.
    auto last = std::make_shared<std::pair<SimTime, SimTime>>(0.0, 0.0);
    bmc_->registerThermalSource(drawer, [gpu, sim, last]() {
      const SimTime now = sim->now();
      const SimTime busy = gpu->busyTime();
      double frac = 0.0;
      if (now > last->first) frac = (busy - last->second) / (now - last->first);
      *last = {now, busy};
      return frac;
    });
  }
}

void ComposableSystem::applyConfig() {
  // Attach falcon devices to the host according to the Table III label.
  auto attachGpu = [this](std::size_t idx) {
    const falcon::SlotId slot = falcon_gpu_slots_.at(idx);
    const int port = (slot.drawer == 0) ? 0 : 2;
    if (auto r = chassis_->attach(slot, port); !r) {
      throw std::runtime_error("attach gpu: " + r.detail);
    }
  };
  switch (config_) {
    case SystemConfig::HybridGpus:
      for (std::size_t i = 0; i < 4; ++i) attachGpu(i);  // drawer 0
      break;
    case SystemConfig::FalconGpus:
    case SystemConfig::AllGpus16:
      for (std::size_t i = 0; i < falcon_gpus_.size(); ++i) attachGpu(i);
      break;
    case SystemConfig::FalconNvme:
      if (auto r = chassis_->attach(falcon_nvme_slot_, 2); !r) {
        throw std::runtime_error("attach nvme: " + r.detail);
      }
      break;
    case SystemConfig::LocalGpus:
    case SystemConfig::LocalNvme:
      break;  // nothing composed from the Falcon for these
  }
}

std::vector<devices::Gpu*> ComposableSystem::trainingGpus() {
  std::vector<devices::Gpu*> out;
  switch (config_) {
    case SystemConfig::LocalGpus:
    case SystemConfig::LocalNvme:
    case SystemConfig::FalconNvme:
      for (auto& g : local_gpus_) out.push_back(g.get());
      break;
    case SystemConfig::HybridGpus:
      for (std::size_t i = 0; i < 4; ++i) out.push_back(local_gpus_[i].get());
      for (std::size_t i = 0; i < 4; ++i) out.push_back(falcon_gpus_[i].get());
      break;
    case SystemConfig::FalconGpus:
      for (auto& g : falcon_gpus_) out.push_back(g.get());
      break;
    case SystemConfig::AllGpus16:
      for (auto& g : local_gpus_) out.push_back(g.get());
      for (auto& g : falcon_gpus_) out.push_back(g.get());
      break;
  }
  return out;
}

devices::Gpu* ComposableSystem::installSpareGpu(falcon::SlotId slot) {
  const std::string name = "gpu.spare.d" + std::to_string(slot.drawer) + "s" +
                           std::to_string(slot.index);
  const fabric::NodeId node = topo_.addNode(name, fabric::NodeKind::Gpu);
  topo_.setNodeDomain(node, kFalconDomain);  // lives in the chassis
  if (auto r = chassis_->installDevice(slot, falcon::DeviceType::Gpu, name, node);
      !r) {
    throw std::runtime_error("installSpareGpu: " + r.detail);
  }
  spare_gpus_.push_back(
      std::make_unique<devices::Gpu>(sim_, node, devices::specs::v100_pcie(), name));
  spare_gpu_slots_.push_back(slot);
  return spare_gpus_.back().get();
}

std::optional<falcon::SlotId> ComposableSystem::slotOfGpu(
    const devices::Gpu* gpu) const {
  for (std::size_t i = 0; i < falcon_gpus_.size(); ++i) {
    if (falcon_gpus_[i].get() == gpu) return falcon_gpu_slots_[i];
  }
  for (std::size_t i = 0; i < spare_gpus_.size(); ++i) {
    if (spare_gpus_[i].get() == gpu) return spare_gpu_slots_[i];
  }
  return std::nullopt;
}

devices::Gpu* ComposableSystem::gpuInSlot(falcon::SlotId slot) {
  for (std::size_t i = 0; i < falcon_gpus_.size(); ++i) {
    if (falcon_gpu_slots_[i] == slot) return falcon_gpus_[i].get();
  }
  for (std::size_t i = 0; i < spare_gpus_.size(); ++i) {
    if (spare_gpu_slots_[i] == slot) return spare_gpus_[i].get();
  }
  return nullptr;
}

ComposableSystem::SecondHost ComposableSystem::attachSecondHost() {
  if (second_host_.root != fabric::kInvalidNode) return second_host_;
  second_host_.root = topo_.addNode("host2.root", fabric::NodeKind::CpuRootComplex);
  second_host_.memory = topo_.addNode("host2.memory", fabric::NodeKind::HostMemory);
  const auto bus = fabric::catalog::memoryBus();
  topo_.addDuplexLink(second_host_.root, second_host_.memory,
                      bus.capacityPerDirection, bus.latency, bus.kind);
  second_cpu_ = std::make_unique<devices::HostCpu>(sim_, devices::specs::xeon_gold_6148());
  second_host_.cpu = second_cpu_.get();
  // Ports H2 (drawer 0) and H4 (drawer 1) are free in every built-in
  // configuration; the second tenant takes both.
  if (auto r = chassis_->connectHost(1, second_host_.root, "host2"); !r) {
    throw std::runtime_error("attachSecondHost H2: " + r.detail);
  }
  if (auto r = chassis_->connectHost(3, second_host_.root, "host2"); !r) {
    throw std::runtime_error("attachSecondHost H4: " + r.detail);
  }
  return second_host_;
}

devices::StorageDevice& ComposableSystem::trainingStorage() {
  switch (config_) {
    case SystemConfig::LocalNvme:
    case SystemConfig::AllGpus16: return *local_nvme_;
    case SystemConfig::FalconNvme: return *falcon_nvme_;
    case SystemConfig::LocalGpus:
    case SystemConfig::HybridGpus:
    case SystemConfig::FalconGpus: return *boot_ssd_;
  }
  return *boot_ssd_;
}

Bytes ComposableSystem::falconGpuPortBytes() const {
  Bytes total = 0;
  for (const auto& slot : falcon_gpu_slots_) {
    const auto& info = chassis_->slot(slot);
    if (!info.occupied) continue;
    total += topo_.link(info.link_up).counters.bytes;
    total += topo_.link(info.link_down).counters.bytes;
  }
  return total;
}

double ComposableSystem::drawerActivity(int drawer) const {
  double sum = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < falcon_gpus_.size(); ++i) {
    if (falcon_gpu_slots_[i].drawer != drawer) continue;
    sum += falcon_gpus_[i]->busy() ? 1.0 : 0.0;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace composim::core
