#include "core/recovery_orchestrator.hpp"

#include <algorithm>

#include "sim/profile.hpp"

namespace composim::core {

const char* toString(RecoveryIncident::Path p) {
  switch (p) {
    case RecoveryIncident::Path::None: return "none";
    case RecoveryIncident::Path::SpareAttach: return "spare-attach";
    case RecoveryIncident::Path::Degraded: return "degraded";
    case RecoveryIncident::Path::WaitForLink: return "wait-for-link";
    case RecoveryIncident::Path::StorageRetarget: return "storage-retarget";
  }
  return "?";
}

const char* toString(RecoveryTerminalState s) {
  switch (s) {
    case RecoveryTerminalState::Idle: return "idle";
    case RecoveryTerminalState::Recovered: return "recovered";
    case RecoveryTerminalState::Degraded: return "degraded";
    case RecoveryTerminalState::Unrecoverable: return "unrecoverable";
    case RecoveryTerminalState::InFlight: return "in-flight";
  }
  return "?";
}

RecoveryOrchestrator::RecoveryOrchestrator(ComposableSystem& system,
                                           falcon::HealthMonitor& monitor,
                                           dl::Trainer& trainer,
                                           RecoveryPolicy policy,
                                           std::uint64_t jitter_seed)
    : system_(system), monitor_(monitor), trainer_(trainer), policy_(policy),
      rng_(jitter_seed), gang_(trainer.gpuGroup()) {
  monitor_.subscribe([this](const falcon::FaultEvent& ev) { onFault(ev); });
}

bool RecoveryOrchestrator::slotQuarantined(falcon::SlotId slot) const {
  for (const auto& q : quarantined_) {
    if (q.drawer == slot.drawer && q.index == slot.index) return true;
  }
  return false;
}

RecoveryTerminalState RecoveryOrchestrator::terminalState() const {
  if (aborted_run_) return RecoveryTerminalState::Unrecoverable;
  bool abandoned = false;
  for (const auto& inc : incidents_) {
    if (!inc.resolved()) return RecoveryTerminalState::InFlight;
    abandoned = abandoned || inc.abandoned;
  }
  if (incidents_.empty()) return RecoveryTerminalState::Idle;
  if (degradations_ > 0 || abandoned) return RecoveryTerminalState::Degraded;
  return RecoveryTerminalState::Recovered;
}

SimTime RecoveryOrchestrator::meanMttr() const {
  SimTime sum = 0.0;
  int n = 0;
  for (const auto& inc : incidents_) {
    if (inc.resolved() && !inc.abandoned) {
      sum += inc.mttr();
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

void RecoveryOrchestrator::instant(const char* name, ProfileArgs args) {
  if (ProfileSink* p = system_.sim().profiler()) {
    p->instant("recovery", name, std::move(args));
  }
}

bool RecoveryOrchestrator::inGang(const devices::Gpu* gpu) const {
  return std::find(gang_.begin(), gang_.end(), gpu) != gang_.end();
}

bool RecoveryOrchestrator::slotHasOpenIncident(falcon::SlotId slot) const {
  for (const auto& inc : incidents_) {
    if (!inc.resolved() && inc.fault.slot.drawer == slot.drawer &&
        inc.fault.slot.index == slot.index) {
      return true;
    }
  }
  return false;
}

void RecoveryOrchestrator::onFault(const falcon::FaultEvent& ev) {
  if (trainer_.finished()) return;
  switch (ev.type) {
    case falcon::FaultEventType::DeviceLost:
    case falcon::FaultEventType::ErrorStorm: {
      if (ev.type == falcon::FaultEventType::ErrorStorm &&
          !policy_.proactive_on_error_storm) {
        return;
      }
      // One physical fault can surface through several signals in the
      // same poll (a falloff is both a link-down and an error storm);
      // recovery for the slot must only be driven once.
      if (slotHasOpenIncident(ev.slot)) return;
      if (ev.device_type == falcon::DeviceType::Gpu) {
        devices::Gpu* gpu = system_.gpuInSlot(ev.slot);
        if (gpu == nullptr || !inGang(gpu)) return;  // not our problem
        incidents_.push_back({ev, ev.time});
        handleGpuLoss(incidents_.size() - 1, gpu, ev.slot);
      } else if (ev.device_type == falcon::DeviceType::Nvme &&
                 ev.type == falcon::FaultEventType::DeviceLost) {
        incidents_.push_back({ev, ev.time});
        handleNvmeLoss(incidents_.size() - 1, ev.slot);
      }
      return;
    }
    case falcon::FaultEventType::HostPortLost: {
      incidents_.push_back({ev, ev.time});
      incidents_.back().path = RecoveryIncident::Path::WaitForLink;
      instant("host-port-wait", {{"port", ev.port}});
      return;
    }
    case falcon::FaultEventType::HostPortRestored: {
      // The outage killed in-flight H2D and gradient flows; anything the
      // gang computed meanwhile is unsynchronized. Rewind to checkpoint.
      for (const auto& inc : incidents_) {
        if (!inc.resolved() &&
            inc.path == RecoveryIncident::Path::WaitForLink &&
            inc.fault.port == ev.port) {
          resumeTraining();
          return;
        }
      }
      return;
    }
    case falcon::FaultEventType::DeviceRestored:
      return;  // quarantined devices never come back; spares attach silently
  }
}

void RecoveryOrchestrator::quarantine(falcon::SlotId slot) {
  auto& chassis = system_.chassis();
  if (chassis.slot(slot).assigned_port >= 0) chassis.detach(slot);
  // removeDevice frees the slot, so the planner can never offer the dead
  // device back as a spare.
  chassis.removeDevice(slot);
  quarantined_.push_back(slot);
  instant("quarantine",
          {{"drawer", slot.drawer}, {"slot", slot.index}});
}

void RecoveryOrchestrator::handleGpuLoss(std::size_t inc, devices::Gpu* failed,
                                         falcon::SlotId slot) {
  auto& chassis = system_.chassis();
  int port = chassis.slot(slot).assigned_port;
  if (port < 0) port = (slot.drawer == 0) ? 0 : 2;  // drawer's default host port
  quarantine(slot);

  const auto plan =
      falcon::planAllocation(chassis, {falcon::ResourceRequest{port, 1, 0}});
  if (!plan.feasible) {
    degrade(inc, failed);
    resumeTraining();
    return;
  }
  for (int drawer : plan.mode_changes_to_advanced) {
    chassis.setDrawerMode(drawer, falcon::DrawerMode::Advanced);
  }
  const falcon::SlotId spare_slot = plan.attaches.front().slot;
  attachWithRetry(inc, spare_slot, port, policy_.attach_backoff_initial,
                  [this, inc, failed, spare_slot](bool ok) {
                    devices::Gpu* spare =
                        ok ? system_.gpuInSlot(spare_slot) : nullptr;
                    if (spare == nullptr) {
                      degrade(inc, failed);
                      resumeTraining();
                      return;
                    }
                    std::replace(gang_.begin(), gang_.end(), failed, spare);
                    incidents_[inc].path = RecoveryIncident::Path::SpareAttach;
                    incidents_[inc].spare_slot = spare_slot;
                    instant("spare-attached",
                            {{"drawer", spare_slot.drawer},
                             {"slot", spare_slot.index},
                             {"retries", incidents_[inc].attach_retries}});
                    resumeTraining();
                  });
}

void RecoveryOrchestrator::handleNvmeLoss(std::size_t inc,
                                          falcon::SlotId slot) {
  auto& chassis = system_.chassis();
  int port = chassis.slot(slot).assigned_port;
  if (port < 0) port = (slot.drawer == 0) ? 0 : 2;
  quarantine(slot);

  const auto plan =
      falcon::planAllocation(chassis, {falcon::ResourceRequest{port, 0, 1}});
  if (!plan.feasible) {
    // No spare drive: nothing to re-point storage at. Close the incident
    // as abandoned (service was not restored); reads against the dead
    // node fail soft and the run limps on.
    incidents_[inc].abandoned = true;
    incidents_[inc].recovered_at = system_.sim().now();
    instant("nvme-unrecoverable", {{"drawer", slot.drawer}});
    return;
  }
  for (int drawer : plan.mode_changes_to_advanced) {
    chassis.setDrawerMode(drawer, falcon::DrawerMode::Advanced);
  }
  const falcon::SlotId spare_slot = plan.attaches.front().slot;
  attachWithRetry(inc, spare_slot, port, policy_.attach_backoff_initial,
                  [this, inc, spare_slot](bool ok) {
                    if (!ok) {
                      incidents_[inc].abandoned = true;
                      incidents_[inc].recovered_at = system_.sim().now();
                      instant("nvme-unrecoverable", {});
                      return;
                    }
                    const auto& info = system_.chassis().slot(spare_slot);
                    system_.falconNvme().retarget(info.device_node);
                    incidents_[inc].path =
                        RecoveryIncident::Path::StorageRetarget;
                    incidents_[inc].spare_slot = spare_slot;
                    instant("storage-retargeted",
                            {{"drawer", spare_slot.drawer},
                             {"slot", spare_slot.index}});
                    resumeTraining();
                  });
}

SimTime RecoveryOrchestrator::jitteredBackoff(SimTime backoff) {
  if (policy_.attach_backoff_max > 0.0) {
    backoff = std::min(backoff, policy_.attach_backoff_max);
  }
  const double j = policy_.attach_backoff_jitter;
  if (j > 0.0) backoff *= rng_.uniform(1.0 - j, 1.0 + j);
  return backoff;
}

void RecoveryOrchestrator::attachWithRetry(std::size_t inc,
                                           falcon::SlotId slot, int port,
                                           SimTime backoff,
                                           std::function<void(bool)> onDone) {
  const Status st = system_.chassis().attach(slot, port);
  if (st.ok) {
    onDone(true);
    return;
  }
  if (st.code != StatusCode::Retryable ||
      incidents_[inc].attach_retries >= policy_.max_attach_retries) {
    onDone(false);
    return;
  }
  const SimTime wait = jitteredBackoff(backoff);
  if (policy_.attach_retry_budget > 0.0 &&
      incidents_[inc].backoff_waited + wait > policy_.attach_retry_budget) {
    // The *budget* caps time-to-decision where max_attach_retries only
    // caps attempts: give up now rather than blow the MTTR SLO waiting.
    instant("attach-budget-exhausted",
            {{"waited_s", incidents_[inc].backoff_waited},
             {"budget_s", policy_.attach_retry_budget}});
    onDone(false);
    return;
  }
  ++incidents_[inc].attach_retries;
  ++reattach_retries_;
  incidents_[inc].backoff_waited += wait;
  if (ProfileSink* p = system_.sim().profiler()) {
    p->setCounter("reattach_retries", "count",
                  static_cast<double>(reattach_retries_));
  }
  instant("attach-retry", {{"backoff_s", wait}});
  system_.sim().schedule(
      wait, [this, inc, slot, port, backoff, onDone = std::move(onDone)] {
        attachWithRetry(inc, slot, port,
                        backoff * policy_.attach_backoff_multiplier, onDone);
      });
}

void RecoveryOrchestrator::degrade(std::size_t inc, devices::Gpu* failed) {
  gang_.erase(std::remove(gang_.begin(), gang_.end(), failed), gang_.end());
  ++degradations_;
  incidents_[inc].path = RecoveryIncident::Path::Degraded;
  instant("degrade", {{"gang", gang_.size()}});
  if (ProfileSink* p = system_.sim().profiler()) {
    p->setCounter("degraded_gang_size", "gpus",
                  static_cast<double>(gang_.size()));
  }
}

void RecoveryOrchestrator::resumeTraining() {
  if (gang_.empty() && !trainer_.finished()) {
    // Every gang GPU is gone and no spare could replace any of them.
    // Without an abort the run would hang forever on periodic ticks (the
    // watchdog would trip) — end it with an honest typed failure instead.
    aborted_run_ = true;
    for (auto& inc : incidents_) {
      if (!inc.resolved()) inc.abandoned = true;
    }
    instant("gang-exhausted", {{"incidents", incidents_.size()}});
    trainer_.abortTraining("unrecoverable: gang exhausted (no survivors, no spares)");
    closeOpenIncidents();
    return;
  }
  if (gang_.empty() || trainer_.finished() ||
      !trainer_.requestRestore(gang_, [this] { closeOpenIncidents(); })) {
    // Nothing to restore (training over, or no survivors): account the
    // incidents as resolved now so MTTR stays meaningful.
    closeOpenIncidents();
  }
}

void RecoveryOrchestrator::noteRunEnded() {
  const SimTime now = system_.sim().now();
  for (auto& inc : incidents_) {
    if (inc.resolved() || inc.path != RecoveryIncident::Path::WaitForLink) {
      continue;
    }
    inc.abandoned = true;
    inc.recovered_at = now;
    instant("outage-outlived-run", {{"port", inc.fault.port}});
  }
}

void RecoveryOrchestrator::closeOpenIncidents() {
  const SimTime now = system_.sim().now();
  for (auto& inc : incidents_) {
    if (inc.resolved()) continue;
    inc.recovered_at = now;
    instant("recovered", {{"path", toString(inc.path)},
                          {"mttr_s", inc.mttr()},
                          {"device", inc.fault.device_name}});
  }
  if (ProfileSink* p = system_.sim().profiler()) {
    p->setCounter("lost_iterations", "count",
                  static_cast<double>(trainer_.lostIterations()));
    p->setCounter("degraded_gang_size", "gpus",
                  static_cast<double>(gang_.size()));
  }
}

}  // namespace composim::core
