#include "fabric/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace composim::fabric {

const char* toString(NodeKind k) {
  switch (k) {
    case NodeKind::Gpu: return "GPU";
    case NodeKind::CpuRootComplex: return "RootComplex";
    case NodeKind::PcieSwitch: return "PCIeSwitch";
    case NodeKind::HostMemory: return "HostMemory";
    case NodeKind::Storage: return "Storage";
    case NodeKind::Nic: return "NIC";
    case NodeKind::Other: return "Other";
  }
  return "?";
}

const char* toString(LinkKind k) {
  switch (k) {
    case LinkKind::NVLink: return "NVLink";
    case LinkKind::PCIe3: return "PCI-e 3.0";
    case LinkKind::PCIe4: return "PCI-e 4.0";
    case LinkKind::HostAdapter: return "HostAdapter";
    case LinkKind::RootComplex: return "RootComplex";
    case LinkKind::MemoryBus: return "MemoryBus";
    case LinkKind::Ethernet: return "Ethernet";
    case LinkKind::Internal: return "Internal";
  }
  return "?";
}

NodeId Topology::addNode(std::string name, NodeKind kind) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), kind});
  adjacency_.emplace_back();
  reverse_adjacency_.emplace_back();
  domain_of_.push_back(kDefaultDomain);
  ++generation_;
  return id;
}

LinkId Topology::addLink(NodeId src, NodeId dst, Bandwidth capacity,
                         SimTime latency, LinkKind kind) {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    throw std::out_of_range("Topology::addLink: bad node id");
  }
  if (src == dst) throw std::invalid_argument("Topology::addLink: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Topology::addLink: capacity must be > 0");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{src, dst, capacity, latency, kind, true, {}});
  adjacency_[static_cast<std::size_t>(src)].push_back(id);
  reverse_adjacency_[static_cast<std::size_t>(dst)].push_back(id);
  ++generation_;
  return id;
}

std::pair<LinkId, LinkId> Topology::addDuplexLink(NodeId a, NodeId b,
                                                  Bandwidth capacityPerDirection,
                                                  SimTime latency, LinkKind kind) {
  const LinkId fwd = addLink(a, b, capacityPerDirection, latency, kind);
  const LinkId rev = addLink(b, a, capacityPerDirection, latency, kind);
  return {fwd, rev};
}

void Topology::isolateNode(NodeId n) {
  for (LinkId l : adjacency_.at(static_cast<std::size_t>(n))) {
    links_[static_cast<std::size_t>(l)].up = false;
  }
  for (LinkId l : reverse_adjacency_.at(static_cast<std::size_t>(n))) {
    links_[static_cast<std::size_t>(l)].up = false;
  }
  ++generation_;
}

void Topology::setLinkUp(LinkId l, bool up) {
  links_.at(static_cast<std::size_t>(l)).up = up;
  ++generation_;
}

void Topology::setNodeDomain(NodeId n, DomainId d) {
  if (d < 0) throw std::invalid_argument("Topology::setNodeDomain: domain must be >= 0");
  domain_of_.at(static_cast<std::size_t>(n)) = d;
  ++generation_;
}

void Topology::setHierarchicalRouting(bool on) {
  if (hierarchical_ == on) return;
  hierarchical_ = on;
  ++generation_;
}

NodeId Topology::findNode(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

const std::vector<LinkId>& Topology::linksFrom(NodeId n) const {
  return adjacency_.at(static_cast<std::size_t>(n));
}

const std::vector<LinkId>& Topology::linksInto(NodeId n) const {
  return reverse_adjacency_.at(static_cast<std::size_t>(n));
}

Topology::State Topology::state() const {
  State st;
  st.links.reserve(links_.size());
  for (const Link& l : links_) st.links.push_back({l.up, l.counters});
  st.generation = generation_;
  st.domains = domain_of_;
  st.hierarchical = hierarchical_;
  return st;
}

void Topology::restoreState(const State& st) {
  if (st.links.size() != links_.size()) {
    throw std::logic_error(
        "Topology::restoreState: link count mismatch (snapshot taken from a "
        "differently built topology)");
  }
  if (st.domains != domain_of_ || st.hierarchical != hierarchical_) {
    // Domains and the hierarchical flag are build-time structure: the fork
    // rebuilds them from the same configuration, so a divergence means the
    // snapshot came from a differently configured topology.
    throw std::logic_error(
        "Topology::restoreState: routing-domain configuration mismatch "
        "(snapshot taken from a differently configured topology)");
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].up = st.links[i].up;
    links_[i].counters = st.links[i].counters;
  }
  generation_ = st.generation;
  // Cached routes, Dijkstra scratch, and the hierarchy tables may predate
  // the restored link states; all three are recomputed lazily.
  route_cache_.clear();
  cache_generation_ = ~0ULL;
  hier_generation_ = ~0ULL;
  scratch_epoch_ = 0;
  std::fill(scratch_stamp_.begin(), scratch_stamp_.end(), 0u);
  // The fork's worker thread is the new routing owner (see checkRouteOwner).
  rebindRouteOwner();
}

void Topology::rebindRouteOwner() const {
  route_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void Topology::checkRouteOwner() const {
  // The route cache and Dijkstra scratch are mutated from this const
  // method without locks; correctness rests on single-owner-thread use
  // (each parallel sweep run owns a private Topology). Pin the first
  // caller and fail loudly — instead of racing silently — on any other.
  const std::thread::id me = std::this_thread::get_id();
  std::thread::id owner = route_owner_.load(std::memory_order_relaxed);
  if (owner == std::thread::id()) {
    if (route_owner_.compare_exchange_strong(owner, me,
                                             std::memory_order_relaxed)) {
      return;
    }
    // Lost the pin race: `owner` now holds the winner's id.
  }
  if (owner != me) {
    throw std::logic_error(
        "Topology::route: called from a thread other than the routing "
        "owner; give each worker its own Topology or call "
        "rebindRouteOwner() after a handoff");
  }
}

void Topology::dijkstra(NodeId src, NodeId stop_at, DomainId domain,
                        bool reverse) const {
  // dist/via/heap are per-instance scratch reused across calls; a slot is
  // valid only when its stamp matches the current epoch, so "reset" is
  // one counter bump instead of an O(nodes) refill.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scratch_stamp_.size() < nodes_.size()) {
    scratch_dist_.resize(nodes_.size(), kInf);
    scratch_via_.resize(nodes_.size(), kInvalidLink);
    scratch_stamp_.resize(nodes_.size(), 0);
  }
  if (++scratch_epoch_ == 0) {  // epoch wrap: stale stamps could collide
    std::fill(scratch_stamp_.begin(), scratch_stamp_.end(), 0u);
    scratch_epoch_ = 1;
  }
  const auto distAt = [&](NodeId n) {
    const auto i = static_cast<std::size_t>(n);
    return scratch_stamp_[i] == scratch_epoch_ ? scratch_dist_[i] : kInf;
  };
  const auto touch = [&](NodeId n, double d, LinkId via) {
    const auto i = static_cast<std::size_t>(n);
    scratch_stamp_[i] = scratch_epoch_;
    scratch_dist_[i] = d;
    scratch_via_[i] = via;
  };

  using QE = std::pair<double, NodeId>;
  scratch_heap_.clear();
  scratch_heap_.reserve(heap_watermark_);
  const auto push = [&](QE e) {
    scratch_heap_.push_back(e);
    std::push_heap(scratch_heap_.begin(), scratch_heap_.end(), std::greater<>{});
    heap_watermark_ = std::max(heap_watermark_, scratch_heap_.size());
  };
  touch(src, 0.0, kInvalidLink);
  push({0.0, src});
  // Ties broken deterministically by node id: pop order over the same
  // subgraph is identical whether or not `domain` restricts it.
  while (!scratch_heap_.empty()) {
    std::pop_heap(scratch_heap_.begin(), scratch_heap_.end(), std::greater<>{});
    const auto [d, u] = scratch_heap_.back();
    scratch_heap_.pop_back();
    if (d > distAt(u)) continue;
    if (u == stop_at) break;
    const auto& edges = reverse ? reverse_adjacency_[static_cast<std::size_t>(u)]
                                : adjacency_[static_cast<std::size_t>(u)];
    for (LinkId lid : edges) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      if (!l.up) continue;
      const NodeId next = reverse ? l.src : l.dst;
      if (domain >= 0 && domain_of_[static_cast<std::size_t>(next)] != domain) continue;
      const double nd = d + l.latency;
      if (nd < distAt(next)) {
        touch(next, nd, lid);
        push({nd, next});
      }
    }
  }
}

Route Topology::reconstructFromScratch(NodeId src, NodeId dst) const {
  Route r;
  r.links.reserve(path_watermark_);
  for (NodeId cur = dst; cur != src;) {
    const LinkId lid = scratch_via_[static_cast<std::size_t>(cur)];
    r.links.push_back(lid);
    cur = links_[static_cast<std::size_t>(lid)].src;
  }
  std::reverse(r.links.begin(), r.links.end());
  finalizeRoute(r);
  return r;
}

void Topology::finalizeRoute(Route& r) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  r.latency = 0.0;
  r.bottleneck = kInf;
  for (LinkId lid : r.links) {
    const Link& l = links_[static_cast<std::size_t>(lid)];
    r.latency += l.latency;
    r.bottleneck = std::min(r.bottleneck, l.capacity);
  }
  path_watermark_ = std::max(path_watermark_, r.links.size());
}

std::optional<Route> Topology::computeFlat(NodeId src, NodeId dst) const {
  if (src == dst) return Route{};  // empty route: same endpoint
  dijkstra(src, dst, /*domain=*/-1, /*reverse=*/false);
  if (scratch_stamp_[static_cast<std::size_t>(dst)] == scratch_epoch_ &&
      scratch_via_[static_cast<std::size_t>(dst)] != kInvalidLink) {
    return reconstructFromScratch(src, dst);
  }
  return std::nullopt;
}

std::optional<Route> Topology::routeFlat(NodeId src, NodeId dst) const {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    return std::nullopt;
  }
  checkRouteOwner();
  return computeFlat(src, dst);
}

std::optional<Route> Topology::computeRoute(NodeId src, NodeId dst) const {
  if (hierarchical_) {
    ensureHierarchy();
    if (hier_active_) return computeHierarchical(src, dst);
  }
  return computeFlat(src, dst);
}

const std::optional<Route>& Topology::routeCached(NodeId src, NodeId dst) const {
  static const std::optional<Route> kNoRoute;
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    return kNoRoute;
  }
  checkRouteOwner();
  if (cache_generation_ != generation_) {
    route_cache_.clear();
    cache_generation_ = generation_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;
  const auto [it, inserted] = route_cache_.emplace(key, computeRoute(src, dst));
  (void)inserted;
  return it->second;
}

std::optional<Route> Topology::route(NodeId src, NodeId dst) const {
  return routeCached(src, dst);
}

void Topology::ensureHierarchy() const {
  if (hier_generation_ == generation_) return;
  hier_generation_ = generation_;
  ++hier_builds_;

  hier_active_ = false;
  DomainId max_dom = 0;
  for (std::size_t i = 0; i < domain_of_.size(); ++i) {
    max_dom = std::max(max_dom, domain_of_[i]);
    if (domain_of_[i] != domain_of_[0]) hier_active_ = true;
  }
  if (!hier_active_) return;  // a single domain degenerates to flat Dijkstra

  const auto ndom = static_cast<std::size_t>(max_dom) + 1;
  hier_members_.assign(ndom, {});
  hier_local_.assign(nodes_.size(), -1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& members = hier_members_[static_cast<std::size_t>(domain_of_[i])];
    hier_local_[i] = static_cast<std::int32_t>(members.size());
    members.push_back(static_cast<NodeId>(i));
  }

  // Border = endpoint of an *up* inter-domain link. A node whose only
  // cross-domain links are down is a plain member until a generation bump
  // brings one back, at which point the tables rebuild anyway.
  hier_border_of_.assign(nodes_.size(), -1);
  hier_borders_.clear();
  hier_domain_borders_.assign(ndom, {});
  const auto makeBorder = [&](NodeId n) {
    auto& idx = hier_border_of_[static_cast<std::size_t>(n)];
    if (idx >= 0) return;
    idx = static_cast<std::int32_t>(hier_borders_.size());
    const DomainId dom = domain_of_[static_cast<std::size_t>(n)];
    BorderTable t;
    t.border = n;
    t.domain = dom;
    hier_borders_.push_back(std::move(t));
    hier_domain_borders_[static_cast<std::size_t>(dom)].push_back(idx);
  };
  for (const Link& l : links_) {
    if (!l.up) continue;
    if (domain_of_[static_cast<std::size_t>(l.src)] !=
        domain_of_[static_cast<std::size_t>(l.dst)]) {
      makeBorder(l.src);
      makeBorder(l.dst);
    }
  }
  // Keep per-domain border order sorted by node id: the border-graph search
  // seeds and the terminal scan iterate these lists, and a fixed order
  // makes equal-cost tie-breaks deterministic.
  for (auto& list : hier_domain_borders_) {
    std::sort(list.begin(), list.end(), [&](std::int32_t a, std::int32_t b) {
      return hier_borders_[static_cast<std::size_t>(a)].border <
             hier_borders_[static_cast<std::size_t>(b)].border;
    });
  }

  // Intra-domain tables: one restricted Dijkstra per border per direction.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (BorderTable& t : hier_borders_) {
    const auto& members = hier_members_[static_cast<std::size_t>(t.domain)];
    t.to_dist.assign(members.size(), kInf);
    t.to_via.assign(members.size(), kInvalidLink);
    t.from_dist.assign(members.size(), kInf);
    t.from_via.assign(members.size(), kInvalidLink);
    dijkstra(t.border, kInvalidNode, t.domain, /*reverse=*/false);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const auto n = static_cast<std::size_t>(members[m]);
      if (scratch_stamp_[n] == scratch_epoch_) {
        t.to_dist[m] = scratch_dist_[n];
        t.to_via[m] = scratch_via_[n];
      }
    }
    dijkstra(t.border, kInvalidNode, t.domain, /*reverse=*/true);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const auto n = static_cast<std::size_t>(members[m]);
      if (scratch_stamp_[n] == scratch_epoch_) {
        t.from_dist[m] = scratch_dist_[n];
        t.from_via[m] = scratch_via_[n];
      }
    }
  }

  // Border graph: up inter-domain links (carrying their LinkId) plus
  // intra-domain transit edges derived from the forward tables.
  hier_border_adj_.assign(hier_borders_.size(), {});
  for (std::size_t lid = 0; lid < links_.size(); ++lid) {
    const Link& l = links_[lid];
    if (!l.up) continue;
    if (domain_of_[static_cast<std::size_t>(l.src)] ==
        domain_of_[static_cast<std::size_t>(l.dst)]) {
      continue;
    }
    const auto from = hier_border_of_[static_cast<std::size_t>(l.src)];
    const auto to = hier_border_of_[static_cast<std::size_t>(l.dst)];
    hier_border_adj_[static_cast<std::size_t>(from)].push_back(
        BorderEdge{to, l.latency, static_cast<LinkId>(lid)});
  }
  for (const auto& borders : hier_domain_borders_) {
    for (std::int32_t bi : borders) {
      const BorderTable& t = hier_borders_[static_cast<std::size_t>(bi)];
      for (std::int32_t bj : borders) {
        if (bj == bi) continue;
        const NodeId other = hier_borders_[static_cast<std::size_t>(bj)].border;
        const double w = t.to_dist[static_cast<std::size_t>(
            hier_local_[static_cast<std::size_t>(other)])];
        if (std::isfinite(w)) {
          hier_border_adj_[static_cast<std::size_t>(bi)].push_back(
              BorderEdge{bj, w, kInvalidLink});
        }
      }
    }
  }
}

void Topology::appendToPath(const BorderTable& t, NodeId target,
                            std::vector<LinkId>& out) const {
  // border -> target along the forward table; via = last link into each
  // node, so the walk runs backwards and the segment is reversed on append.
  hier_seg_.clear();
  for (NodeId cur = target; cur != t.border;) {
    const LinkId lid = t.to_via[static_cast<std::size_t>(
        hier_local_[static_cast<std::size_t>(cur)])];
    hier_seg_.push_back(lid);
    cur = links_[static_cast<std::size_t>(lid)].src;
  }
  out.insert(out.end(), hier_seg_.rbegin(), hier_seg_.rend());
}

void Topology::appendFromPath(NodeId from, const BorderTable& t,
                              std::vector<LinkId>& out) const {
  // from -> border along the reverse table; via = first link out of each
  // node, so the walk is already in forward order.
  for (NodeId cur = from; cur != t.border;) {
    const LinkId lid = t.from_via[static_cast<std::size_t>(
        hier_local_[static_cast<std::size_t>(cur)])];
    out.push_back(lid);
    cur = links_[static_cast<std::size_t>(lid)].dst;
  }
}

std::optional<Route> Topology::computeHierarchical(NodeId src, NodeId dst) const {
  if (src == dst) return Route{};
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const DomainId sd = domain_of_[static_cast<std::size_t>(src)];
  const DomainId dd = domain_of_[static_cast<std::size_t>(dst)];

  // Candidate A: the path stays inside one domain. Runs first so the node
  // scratch (needed for its reconstruction) survives the border search,
  // which only touches the border-graph scratch.
  double intra_dist = kInf;
  if (sd == dd) {
    dijkstra(src, dst, sd, /*reverse=*/false);
    const auto d = static_cast<std::size_t>(dst);
    if (scratch_stamp_[d] == scratch_epoch_ && scratch_via_[d] != kInvalidLink) {
      intra_dist = scratch_dist_[d];
    }
  }

  // Candidate B: src -> some border of sd -> border graph -> some border of
  // dd -> dst. Any path that leaves a domain decomposes into maximal
  // same-domain segments whose junctions are border nodes, so the minimum
  // over A and B equals the flat shortest distance.
  const auto B = hier_borders_.size();
  border_dist_.assign(B, kInf);
  border_prev_.assign(B, -1);
  border_prev_edge_.assign(B, -1);
  border_heap_.clear();
  const auto bpush = [&](double d, NodeId n) {
    border_heap_.emplace_back(d, n);
    std::push_heap(border_heap_.begin(), border_heap_.end(), std::greater<>{});
  };
  for (std::int32_t bi : hier_domain_borders_[static_cast<std::size_t>(sd)]) {
    const BorderTable& t = hier_borders_[static_cast<std::size_t>(bi)];
    const double d0 = t.from_dist[static_cast<std::size_t>(
        hier_local_[static_cast<std::size_t>(src)])];
    if (!std::isfinite(d0)) continue;
    border_dist_[static_cast<std::size_t>(bi)] = d0;
    bpush(d0, t.border);
  }
  while (!border_heap_.empty()) {
    std::pop_heap(border_heap_.begin(), border_heap_.end(), std::greater<>{});
    const auto [d, n] = border_heap_.back();
    border_heap_.pop_back();
    const auto bi = static_cast<std::size_t>(hier_border_of_[static_cast<std::size_t>(n)]);
    if (d > border_dist_[bi]) continue;
    const auto& edges = hier_border_adj_[bi];
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const BorderEdge& edge = edges[e];
      const auto to = static_cast<std::size_t>(edge.to);
      const double nd = d + edge.weight;
      if (nd < border_dist_[to]) {
        border_dist_[to] = nd;
        border_prev_[to] = static_cast<std::int32_t>(bi);
        border_prev_edge_[to] = static_cast<std::int32_t>(e);
        bpush(nd, hier_borders_[to].border);
      }
    }
  }
  double border_total = kInf;
  std::int32_t best_b = -1;
  for (std::int32_t bi : hier_domain_borders_[static_cast<std::size_t>(dd)]) {
    const auto i = static_cast<std::size_t>(bi);
    if (!std::isfinite(border_dist_[i])) continue;
    const BorderTable& t = hier_borders_[i];
    const double tail = t.to_dist[static_cast<std::size_t>(
        hier_local_[static_cast<std::size_t>(dst)])];
    if (!std::isfinite(tail)) continue;
    const double total = border_dist_[i] + tail;
    if (total < border_total) {
      border_total = total;
      best_b = bi;
    }
  }

  if (std::isfinite(intra_dist) && intra_dist <= border_total) {
    return reconstructFromScratch(src, dst);
  }
  if (best_b < 0) return std::nullopt;

  Route r;
  r.links.reserve(path_watermark_);
  hier_chain_.clear();
  for (std::int32_t b = best_b; b >= 0; b = border_prev_[static_cast<std::size_t>(b)]) {
    hier_chain_.push_back(b);
  }
  std::reverse(hier_chain_.begin(), hier_chain_.end());
  appendFromPath(src, hier_borders_[static_cast<std::size_t>(hier_chain_.front())],
                 r.links);
  for (std::size_t i = 1; i < hier_chain_.size(); ++i) {
    const auto prev = static_cast<std::size_t>(hier_chain_[i - 1]);
    const auto cur = static_cast<std::size_t>(hier_chain_[i]);
    const BorderEdge& edge =
        hier_border_adj_[prev][static_cast<std::size_t>(border_prev_edge_[cur])];
    if (edge.link != kInvalidLink) {
      r.links.push_back(edge.link);
    } else {
      appendToPath(hier_borders_[prev], hier_borders_[cur].border, r.links);
    }
  }
  appendToPath(hier_borders_[static_cast<std::size_t>(best_b)], dst, r.links);
  finalizeRoute(r);
  return r;
}

}  // namespace composim::fabric
