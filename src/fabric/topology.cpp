#include "fabric/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace composim::fabric {

const char* toString(NodeKind k) {
  switch (k) {
    case NodeKind::Gpu: return "GPU";
    case NodeKind::CpuRootComplex: return "RootComplex";
    case NodeKind::PcieSwitch: return "PCIeSwitch";
    case NodeKind::HostMemory: return "HostMemory";
    case NodeKind::Storage: return "Storage";
    case NodeKind::Nic: return "NIC";
    case NodeKind::Other: return "Other";
  }
  return "?";
}

const char* toString(LinkKind k) {
  switch (k) {
    case LinkKind::NVLink: return "NVLink";
    case LinkKind::PCIe3: return "PCI-e 3.0";
    case LinkKind::PCIe4: return "PCI-e 4.0";
    case LinkKind::HostAdapter: return "HostAdapter";
    case LinkKind::RootComplex: return "RootComplex";
    case LinkKind::MemoryBus: return "MemoryBus";
    case LinkKind::Ethernet: return "Ethernet";
    case LinkKind::Internal: return "Internal";
  }
  return "?";
}

NodeId Topology::addNode(std::string name, NodeKind kind) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), kind});
  adjacency_.emplace_back();
  ++generation_;
  return id;
}

LinkId Topology::addLink(NodeId src, NodeId dst, Bandwidth capacity,
                         SimTime latency, LinkKind kind) {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    throw std::out_of_range("Topology::addLink: bad node id");
  }
  if (src == dst) throw std::invalid_argument("Topology::addLink: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Topology::addLink: capacity must be > 0");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{src, dst, capacity, latency, kind, true, {}});
  adjacency_[static_cast<std::size_t>(src)].push_back(id);
  ++generation_;
  return id;
}

std::pair<LinkId, LinkId> Topology::addDuplexLink(NodeId a, NodeId b,
                                                  Bandwidth capacityPerDirection,
                                                  SimTime latency, LinkKind kind) {
  const LinkId fwd = addLink(a, b, capacityPerDirection, latency, kind);
  const LinkId rev = addLink(b, a, capacityPerDirection, latency, kind);
  return {fwd, rev};
}

void Topology::isolateNode(NodeId n) {
  for (auto& link : links_) {
    if (link.src == n || link.dst == n) link.up = false;
  }
  ++generation_;
}

void Topology::setLinkUp(LinkId l, bool up) {
  links_.at(static_cast<std::size_t>(l)).up = up;
  ++generation_;
}

NodeId Topology::findNode(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

const std::vector<LinkId>& Topology::linksFrom(NodeId n) const {
  return adjacency_.at(static_cast<std::size_t>(n));
}

std::vector<LinkId> Topology::linksInto(NodeId n) const {
  std::vector<LinkId> out;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].dst == n) out.push_back(static_cast<LinkId>(i));
  }
  return out;
}

std::optional<Route> Topology::route(NodeId src, NodeId dst) const {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    return std::nullopt;
  }
  if (cache_generation_ != generation_) {
    route_cache_.clear();
    cache_generation_ = generation_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;

  // Dijkstra weighted by latency; ties broken deterministically by node id.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<LinkId> via(nodes_.size(), kInvalidLink);
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (LinkId lid : adjacency_[static_cast<std::size_t>(u)]) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      if (!l.up) continue;
      const double nd = d + l.latency;
      if (nd < dist[static_cast<std::size_t>(l.dst)]) {
        dist[static_cast<std::size_t>(l.dst)] = nd;
        via[static_cast<std::size_t>(l.dst)] = lid;
        pq.push({nd, l.dst});
      }
    }
  }

  std::optional<Route> result;
  if (src == dst) {
    result = Route{};  // empty route: same endpoint
  } else if (via[static_cast<std::size_t>(dst)] != kInvalidLink) {
    Route r;
    for (NodeId cur = dst; cur != src;) {
      const LinkId lid = via[static_cast<std::size_t>(cur)];
      r.links.push_back(lid);
      cur = links_[static_cast<std::size_t>(lid)].src;
    }
    std::reverse(r.links.begin(), r.links.end());
    r.latency = 0.0;
    r.bottleneck = kInf;
    for (LinkId lid : r.links) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      r.latency += l.latency;
      r.bottleneck = std::min(r.bottleneck, l.capacity);
    }
    result = std::move(r);
  }
  route_cache_.emplace(key, result);
  return result;
}

}  // namespace composim::fabric
