#include "fabric/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace composim::fabric {

const char* toString(NodeKind k) {
  switch (k) {
    case NodeKind::Gpu: return "GPU";
    case NodeKind::CpuRootComplex: return "RootComplex";
    case NodeKind::PcieSwitch: return "PCIeSwitch";
    case NodeKind::HostMemory: return "HostMemory";
    case NodeKind::Storage: return "Storage";
    case NodeKind::Nic: return "NIC";
    case NodeKind::Other: return "Other";
  }
  return "?";
}

const char* toString(LinkKind k) {
  switch (k) {
    case LinkKind::NVLink: return "NVLink";
    case LinkKind::PCIe3: return "PCI-e 3.0";
    case LinkKind::PCIe4: return "PCI-e 4.0";
    case LinkKind::HostAdapter: return "HostAdapter";
    case LinkKind::RootComplex: return "RootComplex";
    case LinkKind::MemoryBus: return "MemoryBus";
    case LinkKind::Ethernet: return "Ethernet";
    case LinkKind::Internal: return "Internal";
  }
  return "?";
}

NodeId Topology::addNode(std::string name, NodeKind kind) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), kind});
  adjacency_.emplace_back();
  reverse_adjacency_.emplace_back();
  ++generation_;
  return id;
}

LinkId Topology::addLink(NodeId src, NodeId dst, Bandwidth capacity,
                         SimTime latency, LinkKind kind) {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    throw std::out_of_range("Topology::addLink: bad node id");
  }
  if (src == dst) throw std::invalid_argument("Topology::addLink: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Topology::addLink: capacity must be > 0");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{src, dst, capacity, latency, kind, true, {}});
  adjacency_[static_cast<std::size_t>(src)].push_back(id);
  reverse_adjacency_[static_cast<std::size_t>(dst)].push_back(id);
  ++generation_;
  return id;
}

std::pair<LinkId, LinkId> Topology::addDuplexLink(NodeId a, NodeId b,
                                                  Bandwidth capacityPerDirection,
                                                  SimTime latency, LinkKind kind) {
  const LinkId fwd = addLink(a, b, capacityPerDirection, latency, kind);
  const LinkId rev = addLink(b, a, capacityPerDirection, latency, kind);
  return {fwd, rev};
}

void Topology::isolateNode(NodeId n) {
  for (LinkId l : adjacency_.at(static_cast<std::size_t>(n))) {
    links_[static_cast<std::size_t>(l)].up = false;
  }
  for (LinkId l : reverse_adjacency_.at(static_cast<std::size_t>(n))) {
    links_[static_cast<std::size_t>(l)].up = false;
  }
  ++generation_;
}

void Topology::setLinkUp(LinkId l, bool up) {
  links_.at(static_cast<std::size_t>(l)).up = up;
  ++generation_;
}

NodeId Topology::findNode(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

const std::vector<LinkId>& Topology::linksFrom(NodeId n) const {
  return adjacency_.at(static_cast<std::size_t>(n));
}

const std::vector<LinkId>& Topology::linksInto(NodeId n) const {
  return reverse_adjacency_.at(static_cast<std::size_t>(n));
}

Topology::State Topology::state() const {
  State st;
  st.links.reserve(links_.size());
  for (const Link& l : links_) st.links.push_back({l.up, l.counters});
  st.generation = generation_;
  return st;
}

void Topology::restoreState(const State& st) {
  if (st.links.size() != links_.size()) {
    throw std::logic_error(
        "Topology::restoreState: link count mismatch (snapshot taken from a "
        "differently built topology)");
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].up = st.links[i].up;
    links_[i].counters = st.links[i].counters;
  }
  generation_ = st.generation;
  // Cached routes may predate the restored link states; recompute lazily.
  route_cache_.clear();
  cache_generation_ = ~0ULL;
  scratch_epoch_ = 0;
  std::fill(scratch_stamp_.begin(), scratch_stamp_.end(), 0u);
  // The fork's worker thread is the new routing owner (see checkRouteOwner).
  rebindRouteOwner();
}

void Topology::rebindRouteOwner() const {
  route_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void Topology::checkRouteOwner() const {
  // The route cache and Dijkstra scratch are mutated from this const
  // method without locks; correctness rests on single-owner-thread use
  // (each parallel sweep run owns a private Topology). Pin the first
  // caller and fail loudly — instead of racing silently — on any other.
  const std::thread::id me = std::this_thread::get_id();
  std::thread::id owner = route_owner_.load(std::memory_order_relaxed);
  if (owner == std::thread::id()) {
    if (route_owner_.compare_exchange_strong(owner, me,
                                             std::memory_order_relaxed)) {
      return;
    }
    // Lost the pin race: `owner` now holds the winner's id.
  }
  if (owner != me) {
    throw std::logic_error(
        "Topology::route: called from a thread other than the routing "
        "owner; give each worker its own Topology or call "
        "rebindRouteOwner() after a handoff");
  }
}

std::optional<Route> Topology::route(NodeId src, NodeId dst) const {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= nodes_.size() ||
      static_cast<std::size_t>(dst) >= nodes_.size()) {
    return std::nullopt;
  }
  checkRouteOwner();
  if (cache_generation_ != generation_) {
    route_cache_.clear();
    cache_generation_ = generation_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;

  // Dijkstra weighted by latency; ties broken deterministically by node id.
  // dist/via/heap are per-instance scratch reused across calls; a slot is
  // valid only when its stamp matches the current epoch, so "reset" is
  // one counter bump instead of an O(nodes) refill.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scratch_stamp_.size() < nodes_.size()) {
    scratch_dist_.resize(nodes_.size(), kInf);
    scratch_via_.resize(nodes_.size(), kInvalidLink);
    scratch_stamp_.resize(nodes_.size(), 0);
  }
  if (++scratch_epoch_ == 0) {  // epoch wrap: stale stamps could collide
    std::fill(scratch_stamp_.begin(), scratch_stamp_.end(), 0u);
    scratch_epoch_ = 1;
  }
  const auto distAt = [&](NodeId n) {
    const auto i = static_cast<std::size_t>(n);
    return scratch_stamp_[i] == scratch_epoch_ ? scratch_dist_[i] : kInf;
  };
  const auto touch = [&](NodeId n, double d, LinkId via) {
    const auto i = static_cast<std::size_t>(n);
    scratch_stamp_[i] = scratch_epoch_;
    scratch_dist_[i] = d;
    scratch_via_[i] = via;
  };

  using QE = std::pair<double, NodeId>;
  scratch_heap_.clear();
  const auto push = [&](QE e) {
    scratch_heap_.push_back(e);
    std::push_heap(scratch_heap_.begin(), scratch_heap_.end(), std::greater<>{});
  };
  touch(src, 0.0, kInvalidLink);
  push({0.0, src});
  while (!scratch_heap_.empty()) {
    std::pop_heap(scratch_heap_.begin(), scratch_heap_.end(), std::greater<>{});
    const auto [d, u] = scratch_heap_.back();
    scratch_heap_.pop_back();
    if (d > distAt(u)) continue;
    if (u == dst) break;
    for (LinkId lid : adjacency_[static_cast<std::size_t>(u)]) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      if (!l.up) continue;
      const double nd = d + l.latency;
      if (nd < distAt(l.dst)) {
        touch(l.dst, nd, lid);
        push({nd, l.dst});
      }
    }
  }

  std::optional<Route> result;
  if (src == dst) {
    result = Route{};  // empty route: same endpoint
  } else if (scratch_stamp_[static_cast<std::size_t>(dst)] == scratch_epoch_ &&
             scratch_via_[static_cast<std::size_t>(dst)] != kInvalidLink) {
    Route r;
    for (NodeId cur = dst; cur != src;) {
      const LinkId lid = scratch_via_[static_cast<std::size_t>(cur)];
      r.links.push_back(lid);
      cur = links_[static_cast<std::size_t>(lid)].src;
    }
    std::reverse(r.links.begin(), r.links.end());
    r.latency = 0.0;
    r.bottleneck = kInf;
    for (LinkId lid : r.links) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      r.latency += l.latency;
      r.bottleneck = std::min(r.bottleneck, l.capacity);
    }
    result = std::move(r);
  }
  route_cache_.emplace(key, result);
  return result;
}

}  // namespace composim::fabric
