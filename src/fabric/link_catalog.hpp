// composim: calibrated link parameters.
//
// Effective (achievable) per-direction data rates and per-link latencies,
// calibrated so the Table IV p2p microbenchmark of the paper is reproduced
// by construction:
//
//   L-L  (NVLink, 2-link edge)     bidir 72.4 GB/s   latency 1.85 us
//   F-F  (PCIe4 via drawer switch) bidir 24.5 GB/s   latency 2.08 us
//   F-L  (PCIe4 via host adapter)  bidir 19.6 GB/s   latency 2.66 us
//
// The latency model is: endpoint DMA overhead (doorbell + engine start)
// plus the sum of per-link latencies along the route. Switch forwarding
// time is folded into the GPU<->switch link latency; root-complex
// forwarding is folded into the host-adapter link latency.
#pragma once

#include "fabric/topology.hpp"
#include "sim/units.hpp"

namespace composim::fabric {

struct LinkSpec {
  Bandwidth capacityPerDirection;
  SimTime latency;
  LinkKind kind;
};

namespace catalog {

/// One NVLink 2.0 brick: 25 GB/s raw per direction, ~72% payload
/// efficiency under CUDA p2p copies.
inline LinkSpec nvlink(int bricks = 1) {
  return {bricks * units::GBps(18.1), units::microseconds(0.55),
          LinkKind::NVLink};
}

/// PCIe 4.0 x16 between a Falcon slot and its drawer switch. The 0.39 us
/// includes the switch ASIC forwarding time (so an F-F route of two such
/// links lands at 2.08 us with the endpoint overhead).
inline LinkSpec pcie4_x16_slot() {
  return {units::GBps(12.25), units::microseconds(0.39), LinkKind::PCIe4};
}

/// PCIe 3.0 x16 between a local device and the host root complex.
inline LinkSpec pcie3_x16() {
  return {units::GBps(12.0), units::microseconds(0.30), LinkKind::PCIe3};
}

/// Host adapter: CDFP 400 Gb/s cable + PCIe4 x16 adapter card. Latency
/// includes root-complex forwarding on the host side; bandwidth reflects
/// the measured F-L bottleneck (p2p through the host root port).
inline LinkSpec hostAdapter() {
  return {units::GBps(9.82), units::microseconds(0.37), LinkKind::HostAdapter};
}

/// CPU <-> DRAM.
inline LinkSpec memoryBus() {
  return {units::GBps(100.0), units::microseconds(0.08), LinkKind::MemoryBus};
}

/// 10 GbE NIC path (the hosts' X540-AT2), used for NAS-style baseline
/// storage in the Fig 15 study.
inline LinkSpec tenGbE() {
  return {units::Gbps(9.0), units::microseconds(12.0), LinkKind::Ethernet};
}

/// Fixed endpoint overhead applied by devices when they initiate a DMA
/// (p2p write doorbell + engine start). Calibrated against Table IV.
inline SimTime dmaEndpointOverhead() { return units::microseconds(1.30); }

}  // namespace catalog
}  // namespace composim::fabric
