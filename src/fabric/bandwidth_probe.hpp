// composim: p2pBandwidthLatencyTest-style measurement utility.
//
// Runs the same probes the CUDA sample (and Table IV of the paper) uses:
// a large unidirectional transfer, a pair of simultaneous opposite
// transfers for bidirectional bandwidth, and an empty transfer for the
// write latency. Library form so benches, tests and user tools share one
// methodology.
#pragma once

#include "fabric/flow_network.hpp"

namespace composim::fabric {

struct P2pMeasurement {
  Bandwidth unidirectional = 0.0;  // bytes/s
  Bandwidth bidirectional = 0.0;   // aggregate of both directions
  SimTime write_latency = 0.0;
};

/// Measure the pair (a, b). Runs the simulator to completion between
/// probes, so call it on an otherwise-idle system.
P2pMeasurement measureP2p(Simulator& sim, FlowNetwork& net, NodeId a, NodeId b,
                          Bytes payload = units::GiB(1));

/// All-pairs bandwidth matrix over `nodes` (unidirectional), in GB/s.
std::vector<std::vector<double>> bandwidthMatrix(Simulator& sim,
                                                 FlowNetwork& net,
                                                 const std::vector<NodeId>& nodes,
                                                 Bytes payload = units::MiB(256));

/// Human-readable description of the route a transfer would take:
///   "gpu.local0 -[NVLink 36.2 GB/s]-> gpu.local1 (1 hop, 0.55 us,
///    bottleneck 36.2 GB/s)"
/// Returns "(no route)" when the endpoints are disconnected.
std::string describeRoute(const Topology& topo, NodeId src, NodeId dst);

}  // namespace composim::fabric
