// composim: fault injection for the fabric (link health experiments).
//
// The Falcon management interface reports accumulated PCIe error counts
// and link health (paper §II-B); this module generates the faults those
// views exist for: scheduled link flaps (down for a duration, killing
// in-flight flows), transient error bursts that only bump the error
// counters, and permanent degradation (renegotiated width/speed).
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/flow_network.hpp"
#include "sim/random.hpp"

namespace composim::fabric {

struct FaultRecord {
  SimTime time = 0.0;
  LinkId link = kInvalidLink;
  enum class Kind { Flap, ErrorBurst, Degrade, Restore } kind = Kind::Flap;
};

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, Topology& topo, FlowNetwork& net,
                std::uint64_t seed = 1234)
      : sim_(sim), topo_(topo), net_(net), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Take `link` down at `at`, failing flows that cross it, and bring it
  /// back up `downtime` later.
  void scheduleLinkFlap(LinkId link, SimTime at, SimTime downtime);

  /// Add `errors` to the link's accumulated error counter at `at`
  /// (correctable errors: traffic keeps flowing, health view degrades).
  void scheduleErrorBurst(LinkId link, SimTime at, std::uint64_t errors);

  /// Permanently reduce the link's capacity by `factor` (0,1] at `at`,
  /// modelling a PCIe width/speed renegotiation after faults.
  void scheduleDegrade(LinkId link, SimTime at, double factor);

  /// Poisson-arrival error bursts on `link` with the given mean interval,
  /// until `until`.
  void scheduleRandomErrorNoise(LinkId link, SimTime meanInterval,
                                SimTime until);

  const std::vector<FaultRecord>& history() const { return history_; }

 private:
  Simulator& sim_;
  Topology& topo_;
  FlowNetwork& net_;
  Rng rng_;
  std::vector<FaultRecord> history_;
};

}  // namespace composim::fabric
