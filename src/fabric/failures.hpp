// composim: fault injection for the fabric (link health experiments).
//
// The Falcon management interface reports accumulated PCIe error counts
// and link health (paper §II-B); this module generates the faults those
// views exist for: scheduled link flaps (down for a duration, killing
// in-flight flows), transient error bursts that only bump the error
// counters, permanent degradation (renegotiated width/speed), and the
// device-level faults the composable test bed exists to survive — a GPU
// or NVMe falling off the bus (both slot-link directions down for good)
// and a host port losing its CDFP cable for a while.
//
// Every injected fault appends a FaultRecord carrying its parameters, and
// link restores append a Restore record, so history() is a complete,
// replayable log of everything the injector did to the fabric.
//
// Overlapping flaps on one link compose: the link stays down until the
// *last* outstanding flap's downtime elapses (a per-link down-depth
// counter), and a capacity degrade applied while the link is down
// survives the restore — restore only raises the link, it never touches
// capacity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fabric/flow_network.hpp"
#include "sim/random.hpp"

namespace composim::fabric {

struct FaultRecord {
  SimTime time = 0.0;
  LinkId link = kInvalidLink;
  /// Second affected direction (falloffs and host-port flaps take both
  /// directions of a duplex pair down); kInvalidLink otherwise.
  LinkId link2 = kInvalidLink;
  enum class Kind {
    Flap,          // link down for a bounded time
    ErrorBurst,    // correctable errors only
    Degrade,       // permanent capacity reduction
    Falloff,       // device fell off the bus: both directions down for good
    HostPortLoss,  // host adapter cable out: both directions down, bounded
    Restore,       // a flap / port loss ended and the link(s) came back up
  } kind = Kind::Flap;
  double factor = 1.0;         // Degrade: capacity multiplier applied
  std::uint64_t errors = 0;    // ErrorBurst: errors added to the counter
};

const char* toString(FaultRecord::Kind k);

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, Topology& topo, FlowNetwork& net,
                std::uint64_t seed = 1234)
      : sim_(sim), topo_(topo), net_(net), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Take `link` down at `at`, failing flows that cross it, and bring it
  /// back up `downtime` later. Overlapping flaps on the same link hold it
  /// down until the last one's downtime elapses.
  void scheduleLinkFlap(LinkId link, SimTime at, SimTime downtime);

  /// Add `errors` to the link's accumulated error counter at `at`
  /// (correctable errors: traffic keeps flowing, health view degrades).
  /// Also models a GPU ECC error storm when aimed at a slot link.
  void scheduleErrorBurst(LinkId link, SimTime at, std::uint64_t errors);

  /// Permanently reduce the link's capacity by `factor` (0,1] at `at`,
  /// modelling a PCIe width/speed renegotiation after faults.
  void scheduleDegrade(LinkId link, SimTime at, double factor);

  /// Device fall-off-the-bus at `at`: both directions of the device's
  /// slot link go down permanently, killing in-flight flows. Models a GPU
  /// dropping off PCIe after uncorrectable errors, or an NVMe dying.
  void scheduleDeviceFalloff(LinkId up, LinkId down, SimTime at);

  /// Host-port loss at `at`: both directions of a host-adapter link pair
  /// go down (CDFP cable pulled / adapter reset) and come back `downtime`
  /// later. Composes with other flaps via the down-depth counter.
  void scheduleHostPortFlap(LinkId in, LinkId out, SimTime at,
                            SimTime downtime);

  /// Poisson-arrival error bursts on `link` with the given mean interval,
  /// until `until`.
  void scheduleRandomErrorNoise(LinkId link, SimTime meanInterval,
                                SimTime until);

  const std::vector<FaultRecord>& history() const { return history_; }

  /// Faults injected so far (Restore records excluded).
  std::uint64_t faultsInjected() const { return faults_injected_; }

 private:
  void record(FaultRecord r);
  /// Take one link direction down (depth-counted) and fail its flows.
  void bringDown(LinkId link);
  /// Release one hold on the link; raises it when no flap still holds it.
  /// Returns true when the link actually came back up.
  bool release(LinkId link);

  Simulator& sim_;
  Topology& topo_;
  FlowNetwork& net_;
  Rng rng_;
  std::vector<FaultRecord> history_;
  std::unordered_map<LinkId, int> down_depth_;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace composim::fabric
