#include "fabric/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace composim::fabric {

namespace {
// Flows within half a byte of done are done: avoids infinite rescheduling
// on floating-point residue.
constexpr double kByteEpsilon = 0.5;
}  // namespace

FlowId FlowNetwork::startFlow(NodeId src, NodeId dst, Bytes bytes,
                              FlowCallback done, FlowOptions options) {
  auto route = topo_.route(src, dst);
  if (!route) {
    ++flows_started_;
    ++flows_failed_;
    FlowResult r{FlowStatus::Failed, 0, sim_.now(), sim_.now()};
    sim_.schedule(0.0, [cb = std::move(done), r] {
      if (cb) cb(r);
    });
    return kInvalidFlow;
  }
  const SimTime latency = route->latency + options.extraLatency;
  const FlowId id = next_id_++;
  ++flows_started_;

  if (bytes <= 0 || route->links.empty()) {
    // Control message or same-node transfer: latency only.
    FlowResult r{FlowStatus::Completed, bytes, sim_.now(), sim_.now() + latency};
    sim_.schedule(latency, [cb = std::move(done), r]() {
      if (cb) cb(r);
    });
    return id;
  }

  advanceProgress();

  ActiveFlow f;
  f.id = id;
  f.links = route->links;
  f.remaining = static_cast<double>(bytes);
  f.max_rate = options.maxRate;
  f.total = bytes;
  f.start = sim_.now();
  f.arrival_latency = latency;
  f.done = std::move(done);
  f.tag = std::move(options.tag);
  for (LinkId l : f.links) ++topo_.counters(l).flows;
  flows_.emplace(id, std::move(f));

  recomputeRates();
  scheduleNextCompletion();
  return id;
}

bool FlowNetwork::cancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advanceProgress();
  finishFlow(it, FlowStatus::Failed);
  recomputeRates();
  scheduleNextCompletion();
  return true;
}

void FlowNetwork::failLink(LinkId link) {
  advanceProgress();
  topo_.setLinkUp(link, false);
  ++topo_.counters(link).errors;
  std::vector<FlowId> victims;
  for (const auto& [id, f] : flows_) {
    if (std::find(f.links.begin(), f.links.end(), link) != f.links.end()) {
      victims.push_back(id);
    }
  }
  for (FlowId id : victims) {
    auto it = flows_.find(id);
    if (it != flows_.end()) finishFlow(it, FlowStatus::Failed);
  }
  recomputeRates();
  scheduleNextCompletion();
}

void FlowNetwork::notifyTopologyChanged() {
  advanceProgress();
  recomputeRates();
  scheduleNextCompletion();
}

Bandwidth FlowNetwork::flowRate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::advanceProgress() {
  const SimTime now = sim_.now();
  const SimTime elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0) return;
  for (auto& [id, f] : flows_) {
    if (f.rate <= 0.0) continue;
    const double delta = std::min(f.remaining, f.rate * elapsed);
    f.remaining -= delta;
    const Bytes b = static_cast<Bytes>(std::llround(delta));
    for (LinkId l : f.links) topo_.counters(l).bytes += b;
  }
}

void FlowNetwork::recomputeRates() {
  ++recomputations_;
  if (flows_.empty()) return;

  // Collect the participating links and the flows crossing each.
  std::unordered_map<LinkId, std::vector<ActiveFlow*>> by_link;
  std::vector<ActiveFlow*> order;
  order.reserve(flows_.size());
  for (auto& [id, f] : flows_) order.push_back(&f);
  // Deterministic iteration regardless of hash layout.
  std::sort(order.begin(), order.end(),
            [](const ActiveFlow* a, const ActiveFlow* b) { return a->id < b->id; });
  for (ActiveFlow* f : order) {
    f->rate = 0.0;
    for (LinkId l : f->links) by_link[l].push_back(f);
  }

  if (naive_sharing_) {
    // Ablation mode: every flow gets min over links of capacity/<flows on
    // link>, ignoring that other flows may be bottlenecked elsewhere.
    for (ActiveFlow* f : order) {
      double r = f->max_rate;
      for (LinkId l : f->links) {
        const auto& share_set = by_link[l];
        r = std::min(r, topo_.link(l).capacity /
                            static_cast<double>(share_set.size()));
      }
      f->rate = r;
    }
    return;
  }

  // Progressive filling (max-min fairness). Rate caps are modelled as a
  // per-flow pseudo-link of capacity max_rate carrying exactly that flow.
  struct LinkState {
    double residual;
    int unfixed;
  };
  std::unordered_map<LinkId, LinkState> state;
  for (const auto& [l, fs] : by_link) {
    state[l] = LinkState{topo_.link(l).capacity, static_cast<int>(fs.size())};
  }
  std::unordered_map<FlowId, bool> fixed;
  for (ActiveFlow* f : order) fixed[f->id] = false;

  int remaining = static_cast<int>(order.size());
  while (remaining > 0) {
    // Find the tightest constraint: a real link's fair share, or a flow cap.
    double best = std::numeric_limits<double>::infinity();
    LinkId best_link = kInvalidLink;
    ActiveFlow* best_capped = nullptr;
    for (const auto& [l, st] : state) {
      if (st.unfixed <= 0) continue;
      const double share = std::max(0.0, st.residual) / st.unfixed;
      if (share < best) {
        best = share;
        best_link = l;
        best_capped = nullptr;
      }
    }
    for (ActiveFlow* f : order) {
      if (fixed[f->id]) continue;
      if (f->max_rate < best) {
        best = f->max_rate;
        best_link = kInvalidLink;
        best_capped = f;
      }
    }

    // Fix the constrained flows at `best` and charge their links.
    std::vector<ActiveFlow*> to_fix;
    if (best_capped != nullptr) {
      to_fix.push_back(best_capped);
    } else if (best_link != kInvalidLink) {
      for (ActiveFlow* f : by_link[best_link]) {
        if (!fixed[f->id]) to_fix.push_back(f);
      }
    } else {
      break;  // defensive: no constraint found (should not happen)
    }
    for (ActiveFlow* f : to_fix) {
      f->rate = best;
      fixed[f->id] = true;
      --remaining;
      for (LinkId l : f->links) {
        auto& st = state[l];
        st.residual -= best;
        --st.unfixed;
      }
    }
  }
}

void FlowNetwork::scheduleNextCompletion() {
  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  if (flows_.empty()) return;
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.rate <= 0.0) continue;
    soonest = std::min(soonest, f.remaining / f.rate);
  }
  if (!std::isfinite(soonest)) return;  // all flows stalled (e.g. link down)
  completion_event_ = sim_.schedule(soonest, [this] {
    completion_event_ = kInvalidEvent;
    onCompletionEvent();
  });
}

void FlowNetwork::onCompletionEvent() {
  advanceProgress();
  // Finish every flow that has drained; callbacks run inside finishFlow and
  // may add flows, so collect ids first.
  std::vector<FlowId> done;
  for (const auto& [id, f] : flows_) {
    if (f.remaining <= kByteEpsilon) done.push_back(id);
  }
  std::sort(done.begin(), done.end());
  for (FlowId id : done) {
    auto it = flows_.find(id);
    if (it != flows_.end()) finishFlow(it, FlowStatus::Completed);
  }
  recomputeRates();
  scheduleNextCompletion();
}

void FlowNetwork::finishFlow(std::unordered_map<FlowId, ActiveFlow>::iterator it,
                             FlowStatus status) {
  ActiveFlow f = std::move(it->second);
  flows_.erase(it);
  if (status == FlowStatus::Completed) {
    ++flows_completed_;
  } else {
    ++flows_failed_;
  }
  const Bytes carried = (status == FlowStatus::Completed)
                            ? f.total
                            : f.total - static_cast<Bytes>(std::llround(f.remaining));
  FlowResult result{status, carried, f.start, sim_.now() + f.arrival_latency};
  if (f.done) {
    if (status == FlowStatus::Completed) {
      // Delivery completes one propagation latency after the last byte is
      // injected; the callback observes arrival time.
      sim_.schedule(f.arrival_latency, [cb = std::move(f.done), result] { cb(result); });
    } else {
      f.done(result);
    }
  }
}

}  // namespace composim::fabric
