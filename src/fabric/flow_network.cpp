#include "fabric/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace composim::fabric {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

AsyncSpanId FlowNetwork::beginFlowSpan(NodeId src, NodeId dst, Bytes bytes,
                                       const std::string& tag,
                                       std::uint64_t correlation) {
  ProfileSink* sink = sim_.profiler();
  if (sink == nullptr) return kInvalidAsyncSpan;
  ProfileArgs args{{"src", topo_.node(src).name},
                   {"dst", topo_.node(dst).name},
                   {"bytes", bytes}};
  if (correlation != 0) args.emplace_back("corr", correlation);
  return sink->beginAsyncSpan("fabric", tag.empty() ? "flow" : tag,
                              std::move(args));
}

FlowId FlowNetwork::admitUnroutable(NodeId src, NodeId dst, FlowCallback done) {
  ++flows_started_;
  ++flows_failed_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->instant("fabric", "flow-unroutable",
                  {{"src", topo_.node(src).name},
                   {"dst", topo_.node(dst).name}});
  }
  FlowResult r{FlowStatus::Failed, 0, sim_.now(), sim_.now()};
  sim_.schedule(0.0, [cb = std::move(done), r] {
    if (cb) cb(r);
  });
  return kInvalidFlow;
}

FlowId FlowNetwork::admitLatencyOnly(SimTime latency, NodeId src, NodeId dst,
                                     Bytes bytes, FlowCallback done,
                                     const std::string& tag,
                                     std::uint64_t correlation) {
  // Control message or same-node transfer: latency only. Tracked as a
  // cancellable scheduled event so the returned id stays live until the
  // callback fires (cancelFlow() revokes it and reports Failed).
  const FlowId id = next_id_++;
  ++flows_started_;
  LatencyFlow lf;
  lf.bytes = bytes;
  lf.start = sim_.now();
  lf.done = std::move(done);
  lf.span = beginFlowSpan(src, dst, bytes, tag, correlation);
  lf.event = sim_.schedule(latency, [this, id] { onLatencyFlowDone(id); });
  latency_flows_.emplace(id, std::move(lf));
  return id;
}

FlowId FlowNetwork::admitByteFlow(const Route& route, NodeId src, NodeId dst,
                                  Bytes bytes, FlowCallback done,
                                  FlowOptions options,
                                  std::vector<LinkId>& seeds) {
  const FlowId id = next_id_++;
  ++flows_started_;
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    flow_epoch_.push_back(0);
    flow_fixed_.push_back(0);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  ActiveFlow& f = slots_[slot];
  f.id = id;
  f.links = route.links;
  f.remaining = static_cast<double>(bytes);
  f.rate = 0.0;
  f.max_rate = options.maxRate;
  f.total = bytes;
  f.start = sim_.now();
  f.arrival_latency = route.latency + options.extraLatency;
  f.projected_finish = kInf;
  f.done = std::move(done);
  f.tag = std::move(options.tag);
  f.heap_pos = kNoPos;
  f.active_pos = kNoPos;
  f.span = beginFlowSpan(src, dst, bytes, f.tag, options.correlation);
  if (f.span != kInvalidAsyncSpan) {
    // Contention-free reference: the whole payload at the uncontended
    // route bottleneck (still respecting the flow's own rate cap).
    const Bandwidth ideal_rate = std::min(options.maxRate, route.bottleneck);
    if (ideal_rate > 0.0 && std::isfinite(ideal_rate)) {
      f.ideal_s = static_cast<double>(bytes) / ideal_rate;
    }
  }
  id_to_slot_.emplace(id, slot);
  for (LinkId l : f.links) {
    ++topo_.counters(l).flows;
    // Ids are monotonic, so appending keeps the list id-sorted.
    link_flows_[static_cast<std::size_t>(l)].push_back(slot);
  }
  seeds.insert(seeds.end(), f.links.begin(), f.links.end());
  return id;
}

FlowId FlowNetwork::startFlow(NodeId src, NodeId dst, Bytes bytes,
                              FlowCallback done, FlowOptions options) {
  const auto& route = topo_.routeCached(src, dst);
  if (!route) return admitUnroutable(src, dst, std::move(done));
  if (bytes <= 0 || route->links.empty()) {
    return admitLatencyOnly(route->latency + options.extraLatency, src, dst,
                            bytes, std::move(done), options.tag,
                            options.correlation);
  }
  advanceProgress();
  ensureLinkTables();
  arrival_seeds_.clear();
  const FlowId id = admitByteFlow(*route, src, dst, bytes, std::move(done),
                                  std::move(options), arrival_seeds_);
  resolveAfterChange(arrival_seeds_);
  scheduleNextCompletion();
  return id;
}

std::vector<FlowId> FlowNetwork::startFlows(std::vector<FlowRequest> requests) {
  std::vector<FlowId> ids;
  ids.reserve(requests.size());
  if (requests.empty()) return ids;
  // Route everything first (cache entries have stable addresses across
  // inserts), so the solver prep — advanceProgress in particular, whose
  // per-call byte-counter rounding must match the serial path — runs
  // exactly once and only when a byte flow is actually admitted.
  std::vector<const std::optional<Route>*> routes;
  routes.reserve(requests.size());
  bool any_bytes = false;
  for (const FlowRequest& rq : requests) {
    const auto& r = topo_.routeCached(rq.src, rq.dst);
    routes.push_back(&r);
    if (r && rq.bytes > 0 && !r->links.empty()) any_bytes = true;
  }
  if (any_bytes) {
    advanceProgress();
    ensureLinkTables();
  }
  // No inline callbacks fire during admission (unroutable and latency-only
  // completions are deferred events), so member seed scratch is safe here.
  arrival_seeds_.clear();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    FlowRequest& rq = requests[i];
    const auto& route = *routes[i];
    if (!route) {
      ids.push_back(admitUnroutable(rq.src, rq.dst, std::move(rq.done)));
    } else if (rq.bytes <= 0 || route->links.empty()) {
      ids.push_back(admitLatencyOnly(route->latency + rq.options.extraLatency,
                                     rq.src, rq.dst, rq.bytes,
                                     std::move(rq.done), rq.options.tag,
                                     rq.options.correlation));
    } else {
      ids.push_back(admitByteFlow(*route, rq.src, rq.dst, rq.bytes,
                                  std::move(rq.done), std::move(rq.options),
                                  arrival_seeds_));
    }
  }
  if (any_bytes) {
    resolveAfterChange(arrival_seeds_);
    scheduleNextCompletion();
  }
  return ids;
}

void FlowNetwork::onLatencyFlowDone(FlowId id) {
  auto it = latency_flows_.find(id);
  if (it == latency_flows_.end()) return;
  LatencyFlow lf = std::move(it->second);
  latency_flows_.erase(it);
  ++flows_completed_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->endAsyncSpan(lf.span, {{"status", "completed"}});
  }
  FlowResult r{FlowStatus::Completed, lf.bytes, lf.start, sim_.now()};
  if (lf.done) lf.done(r);
}

bool FlowNetwork::cancelLatencyFlow(FlowId id) {
  auto lit = latency_flows_.find(id);
  if (lit == latency_flows_.end()) return false;
  LatencyFlow lf = std::move(lit->second);
  latency_flows_.erase(lit);
  sim_.cancel(lf.event);
  ++flows_failed_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->endAsyncSpan(lf.span, {{"status", "failed"}});
  }
  FlowResult r{FlowStatus::Failed, 0, lf.start, sim_.now()};
  if (lf.done) lf.done(r);
  return true;
}

bool FlowNetwork::cancelFlow(FlowId id) {
  if (cancelLatencyFlow(id)) return true;
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  advanceProgress();
  const std::uint32_t slot = it->second;
  // Local copy: the Failed callback runs inline and may start new flows.
  std::vector<LinkId> seeds = slots_[slot].links;
  finishFlow(slot, FlowStatus::Failed);
  resolveAfterChange(seeds);
  scheduleNextCompletion();
  return true;
}

std::size_t FlowNetwork::cancelFlows(const std::vector<FlowId>& ids) {
  bool any_active = false;
  for (FlowId id : ids) {
    if (id_to_slot_.count(id) != 0) {
      any_active = true;
      break;
    }
  }
  if (any_active) advanceProgress();
  // Local seeds: Failed callbacks run inline and may re-enter
  // startFlow(s)/cancelFlow(s), which clobber the member scratch.
  std::vector<LinkId> seeds;
  std::size_t cancelled = 0;
  for (FlowId id : ids) {
    if (cancelLatencyFlow(id)) {
      ++cancelled;
      continue;
    }
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) continue;
    const std::uint32_t slot = it->second;
    seeds.insert(seeds.end(), slots_[slot].links.begin(),
                 slots_[slot].links.end());
    finishFlow(slot, FlowStatus::Failed);
    ++cancelled;
  }
  if (any_active) {
    resolveAfterChange(seeds);
    scheduleNextCompletion();
  }
  return cancelled;
}

void FlowNetwork::failLink(LinkId link) {
  advanceProgress();
  topo_.setLinkUp(link, false);
  ++topo_.counters(link).errors;
  ensureLinkTables();
  // Victims come straight from the link->flows index. Capture ids (not
  // slots) before finishing: Failed callbacks run inline, may start new
  // flows, and a new flow could reuse a just-freed slot.
  const auto& on_link = link_flows_[static_cast<std::size_t>(link)];
  std::vector<FlowId> victims;
  std::vector<LinkId> seeds{link};
  victims.reserve(on_link.size());
  for (std::uint32_t slot : on_link) {
    victims.push_back(slots_[slot].id);
    seeds.insert(seeds.end(), slots_[slot].links.begin(), slots_[slot].links.end());
  }
  std::sort(victims.begin(), victims.end());
  for (FlowId vid : victims) {
    auto it = id_to_slot_.find(vid);
    if (it != id_to_slot_.end()) finishFlow(it->second, FlowStatus::Failed);
  }
  resolveAfterChange(seeds);
  scheduleNextCompletion();
}

void FlowNetwork::notifyTopologyChanged() {
  advanceProgress();
  ensureLinkTables();
  ++recomputations_;
  resolveAllComponents();
  scheduleNextCompletion();
}

Bandwidth FlowNetwork::flowRate(FlowId id) const {
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? 0.0 : slots_[it->second].rate;
}

FlowNetwork::State FlowNetwork::state() const {
  if (!id_to_slot_.empty() || !latency_flows_.empty()) {
    throw std::logic_error(
        "FlowNetwork::state: flows still in flight (snapshot requires a "
        "quiescent point)");
  }
  State st;
  st.slot_count = static_cast<std::uint32_t>(slots_.size());
  st.free_slots = free_slots_;
  st.epoch = epoch_;
  st.solve_epoch = solve_epoch_;
  st.next_id = next_id_;
  st.last_update = last_update_;
  st.flows_started = flows_started_;
  st.flows_completed = flows_completed_;
  st.flows_failed = flows_failed_;
  st.recomputations = recomputations_;
  st.component_solves = component_solves_;
  return st;
}

void FlowNetwork::restoreState(const State& st) {
  if (!id_to_slot_.empty() || !latency_flows_.empty()) {
    throw std::logic_error(
        "FlowNetwork::restoreState: target network has flows in flight");
  }
  slots_.assign(st.slot_count, ActiveFlow{});
  free_slots_ = st.free_slots;
  id_to_slot_.clear();
  latency_flows_.clear();
  for (auto& v : link_flows_) v.clear();
  ensureLinkTables();
  // Zeroed scratch reads as "stale" under the epoch-equality tests, which
  // is exactly how untouched entries behave in the run being forked.
  flow_epoch_.assign(st.slot_count, 0);
  flow_fixed_.assign(st.slot_count, 0);
  std::fill(link_epoch_.begin(), link_epoch_.end(), 0);
  epoch_ = st.epoch;
  solve_epoch_ = st.solve_epoch;
  next_id_ = st.next_id;
  last_update_ = st.last_update;
  active_.clear();
  completion_heap_.clear();
  completion_event_ = kInvalidEvent;
  completion_time_ = kInf;
  flows_started_ = st.flows_started;
  flows_completed_ = st.flows_completed;
  flows_failed_ = st.flows_failed;
  recomputations_ = st.recomputations;
  component_solves_ = st.component_solves;
}

void FlowNetwork::advanceProgress() {
  const SimTime now = sim_.now();
  const SimTime elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0 || active_.empty()) return;
  for (std::uint32_t slot : active_) {
    ActiveFlow& f = slots_[slot];
    const double delta = std::min(f.remaining, f.rate * elapsed);
    f.remaining -= delta;
    const Bytes b = static_cast<Bytes>(std::llround(delta));
    for (LinkId l : f.links) topo_.counters(l).bytes += b;
  }
}

void FlowNetwork::ensureLinkTables() {
  const std::size_t n = topo_.linkCount();
  if (link_flows_.size() >= n) return;
  link_flows_.resize(n);
  link_residual_.resize(n, 0.0);
  link_unfixed_.resize(n, 0);
  link_epoch_.resize(n, 0);
}

void FlowNetwork::resolveAfterChange(const std::vector<LinkId>& seeds) {
  ++recomputations_;
  if (!incremental_) {
    resolveAllComponents();
    return;
  }
  ++epoch_;
  for (LinkId l : seeds) {
    if (link_epoch_[static_cast<std::size_t>(l)] == epoch_) continue;
    collectComponent(l);
    solveComponent();
  }
}

void FlowNetwork::resolveAllComponents() {
  ++epoch_;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const ActiveFlow& f = slots_[slot];
    if (f.id == kInvalidFlow || flow_epoch_[slot] == epoch_) continue;
    collectComponent(f.links.front());
    solveComponent();
  }
}

void FlowNetwork::collectComponent(LinkId seed) {
  comp_links_.clear();
  comp_flows_.clear();
  link_epoch_[static_cast<std::size_t>(seed)] = epoch_;
  comp_links_.push_back(seed);
  // comp_links_ doubles as the BFS worklist over the bipartite index.
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    const LinkId l = comp_links_[i];
    for (std::uint32_t slot : link_flows_[static_cast<std::size_t>(l)]) {
      if (flow_epoch_[slot] == epoch_) continue;
      flow_epoch_[slot] = epoch_;
      comp_flows_.push_back(slot);
      for (LinkId l2 : slots_[slot].links) {
        auto& mark = link_epoch_[static_cast<std::size_t>(l2)];
        if (mark == epoch_) continue;
        mark = epoch_;
        comp_links_.push_back(l2);
      }
    }
  }
  std::sort(comp_links_.begin(), comp_links_.end());
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [this](std::uint32_t a, std::uint32_t b) { return slots_[a].id < slots_[b].id; });
}

const std::string& FlowNetwork::linkCounterName(LinkId l) {
  const auto li = static_cast<std::size_t>(l);
  if (link_counter_names_.size() <= li) link_counter_names_.resize(li + 1);
  std::string& name = link_counter_names_[li];
  if (name.empty()) {
    const Link& link = topo_.link(l);
    name = "link:" + topo_.node(link.src).name + "->" + topo_.node(link.dst).name;
  }
  return name;
}

void FlowNetwork::profileLinkCounters(ProfileSink& sink) {
  for (LinkId l : comp_links_) {
    const auto li = static_cast<std::size_t>(l);
    double used = 0.0;
    for (std::uint32_t slot : link_flows_[li]) used += slots_[slot].rate;
    const Bandwidth cap = topo_.link(l).capacity;
    const std::string& name = linkCounterName(l);
    sink.setCounter(name, "util_pct", cap > 0.0 ? 100.0 * used / cap : 0.0);
    sink.setCounter(name, "flows",
                    static_cast<double>(link_flows_[li].size()));
  }
}

void FlowNetwork::solveComponent() {
  ProfileSink* sink = sim_.profiler();
  if (comp_flows_.empty()) {
    // All flows on the seed links departed; publish the drop to idle.
    if (sink != nullptr) profileLinkCounters(*sink);
    return;
  }
  ++component_solves_;

  if (naive_sharing_) {
    // Ablation mode: every flow gets min over links of capacity/<flows on
    // link>, ignoring that other flows may be bottlenecked elsewhere.
    for (std::uint32_t slot : comp_flows_) {
      double r = slots_[slot].max_rate;
      for (LinkId l : slots_[slot].links) {
        const auto li = static_cast<std::size_t>(l);
        r = std::min(r, topo_.link(l).capacity /
                            static_cast<double>(link_flows_[li].size()));
      }
      applyRate(slot, r);
    }
    if (sink != nullptr) profileLinkCounters(*sink);
    return;
  }

  // Progressive filling (max-min fairness). Rate caps are modelled as a
  // per-flow pseudo-link of capacity max_rate carrying exactly that flow.
  for (LinkId l : comp_links_) {
    const auto li = static_cast<std::size_t>(l);
    link_residual_[li] = topo_.link(l).capacity;
    link_unfixed_[li] = static_cast<std::uint32_t>(link_flows_[li].size());
  }
  comp_capped_.clear();
  for (std::uint32_t slot : comp_flows_) {
    if (std::isfinite(slots_[slot].max_rate)) comp_capped_.push_back(slot);
  }
  ++solve_epoch_;

  std::size_t remaining = comp_flows_.size();
  while (remaining > 0) {
    // Find the tightest constraint: a real link's fair share, or a flow
    // cap. Links scan in ascending LinkId, caps in ascending FlowId, so
    // the fill order is deterministic regardless of arrival history.
    double best = kInf;
    LinkId best_link = kInvalidLink;
    std::uint32_t best_capped = kNoPos;
    for (LinkId l : comp_links_) {
      const auto li = static_cast<std::size_t>(l);
      if (link_unfixed_[li] == 0) continue;
      const double share =
          std::max(0.0, link_residual_[li]) / static_cast<double>(link_unfixed_[li]);
      if (share < best) {
        best = share;
        best_link = l;
      }
    }
    for (std::uint32_t slot : comp_capped_) {
      if (flow_fixed_[slot] == solve_epoch_) continue;
      if (slots_[slot].max_rate < best) {
        best = slots_[slot].max_rate;
        best_link = kInvalidLink;
        best_capped = slot;
      }
    }

    // Fix the constrained flows at `best` and charge their links.
    const auto fix = [&](std::uint32_t slot) {
      flow_fixed_[slot] = solve_epoch_;
      applyRate(slot, best);
      for (LinkId l : slots_[slot].links) {
        const auto li = static_cast<std::size_t>(l);
        link_residual_[li] -= best;
        --link_unfixed_[li];
      }
      --remaining;
    };
    if (best_capped != kNoPos) {
      fix(best_capped);
    } else if (best_link != kInvalidLink) {
      for (std::uint32_t slot : link_flows_[static_cast<std::size_t>(best_link)]) {
        if (flow_fixed_[slot] != solve_epoch_) fix(slot);
      }
    } else {
      break;  // defensive: no constraint found (should not happen)
    }
  }
  if (sink != nullptr) profileLinkCounters(*sink);
}

void FlowNetwork::applyRate(std::uint32_t slot, Bandwidth rate) {
  ActiveFlow& f = slots_[slot];
  if (f.rate == rate) return;  // unchanged: projection stays pinned
  f.rate = rate;
  if (rate > 0.0) {
    if (f.active_pos == kNoPos) {
      f.active_pos = static_cast<std::uint32_t>(active_.size());
      active_.push_back(slot);
    }
    f.projected_finish = sim_.now() + f.remaining / rate;
    heapUpsert(slot);
  } else {
    if (f.active_pos != kNoPos) activeErase(slot);
    f.projected_finish = kInf;
    heapErase(slot);
  }
}

bool FlowNetwork::heapLess(std::uint32_t a, std::uint32_t b) const {
  const ActiveFlow& fa = slots_[a];
  const ActiveFlow& fb = slots_[b];
  if (fa.projected_finish != fb.projected_finish) {
    return fa.projected_finish < fb.projected_finish;
  }
  return fa.id < fb.id;
}

void FlowNetwork::heapSiftUp(std::size_t i) {
  const std::uint32_t slot = completion_heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heapLess(slot, completion_heap_[parent])) break;
    completion_heap_[i] = completion_heap_[parent];
    slots_[completion_heap_[i]].heap_pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  completion_heap_[i] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(i);
}

void FlowNetwork::heapSiftDown(std::size_t i) {
  const std::uint32_t slot = completion_heap_[i];
  const std::size_t n = completion_heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heapLess(completion_heap_[child + 1], completion_heap_[child])) {
      ++child;
    }
    if (!heapLess(completion_heap_[child], slot)) break;
    completion_heap_[i] = completion_heap_[child];
    slots_[completion_heap_[i]].heap_pos = static_cast<std::uint32_t>(i);
    i = child;
  }
  completion_heap_[i] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(i);
}

void FlowNetwork::heapUpsert(std::uint32_t slot) {
  std::uint32_t pos = slots_[slot].heap_pos;
  if (pos == kNoPos) {
    pos = static_cast<std::uint32_t>(completion_heap_.size());
    completion_heap_.push_back(slot);
    slots_[slot].heap_pos = pos;
    heapSiftUp(pos);
  } else {
    heapSiftUp(pos);
    heapSiftDown(slots_[slot].heap_pos);
  }
}

void FlowNetwork::heapErase(std::uint32_t slot) {
  const std::uint32_t pos = slots_[slot].heap_pos;
  if (pos == kNoPos) return;
  slots_[slot].heap_pos = kNoPos;
  const std::uint32_t last = completion_heap_.back();
  completion_heap_.pop_back();
  if (last == slot) return;
  completion_heap_[pos] = last;
  slots_[last].heap_pos = pos;
  heapSiftUp(pos);
  heapSiftDown(slots_[last].heap_pos);
}

void FlowNetwork::activeErase(std::uint32_t slot) {
  const std::uint32_t pos = slots_[slot].active_pos;
  slots_[slot].active_pos = kNoPos;
  const std::uint32_t last = active_.back();
  active_.pop_back();
  if (last == slot) return;
  active_[pos] = last;
  slots_[last].active_pos = pos;
}

void FlowNetwork::scheduleNextCompletion() {
  const SimTime next =
      completion_heap_.empty() ? kInf : slots_[completion_heap_.front()].projected_finish;
  if (next == completion_time_) return;  // already scheduled at this time
  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  completion_time_ = next;
  if (!std::isfinite(next)) return;  // all flows stalled (e.g. link down)
  completion_event_ = sim_.scheduleAt(next, [this] {
    completion_event_ = kInvalidEvent;
    completion_time_ = kInf;
    onCompletionEvent();
  });
}

void FlowNetwork::onCompletionEvent() {
  advanceProgress();
  const SimTime now = sim_.now();
  // Pop every flow whose projected completion has arrived; by
  // construction their remaining bytes are within float residue of zero.
  // Completed callbacks are deferred events, so member scratch is safe.
  done_scratch_.clear();
  seed_scratch_.clear();
  while (!completion_heap_.empty()) {
    const std::uint32_t top = completion_heap_.front();
    if (slots_[top].projected_finish > now) break;
    heapErase(top);
    done_scratch_.push_back(top);
  }
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [this](std::uint32_t a, std::uint32_t b) { return slots_[a].id < slots_[b].id; });
  for (std::uint32_t slot : done_scratch_) {
    const auto& links = slots_[slot].links;
    seed_scratch_.insert(seed_scratch_.end(), links.begin(), links.end());
  }
  for (std::uint32_t slot : done_scratch_) finishFlow(slot, FlowStatus::Completed);
  resolveAfterChange(seed_scratch_);
  scheduleNextCompletion();
}

void FlowNetwork::finishFlow(std::uint32_t slot, FlowStatus status) {
  heapErase(slot);
  if (slots_[slot].active_pos != kNoPos) activeErase(slot);
  for (LinkId l : slots_[slot].links) {
    auto& v = link_flows_[static_cast<std::size_t>(l)];
    v.erase(std::find(v.begin(), v.end(), slot));  // order-preserving
  }
  id_to_slot_.erase(slots_[slot].id);
  ActiveFlow f = std::move(slots_[slot]);
  slots_[slot] = ActiveFlow{};
  free_slots_.push_back(slot);
  if (status == FlowStatus::Completed) {
    ++flows_completed_;
  } else {
    ++flows_failed_;
  }
  const Bytes carried = (status == FlowStatus::Completed)
                            ? f.total
                            : f.total - static_cast<Bytes>(std::llround(f.remaining));
  if (ProfileSink* sink = sim_.profiler()) {
    // Per-flow contention accounting: time spent beyond the uncontended
    // reference duration is time lost to sharing links with other flows.
    const SimTime actual = sim_.now() - f.start;
    const SimTime contended = std::max(0.0, actual - f.ideal_s);
    sink->endAsyncSpan(f.span,
                       {{"status", status == FlowStatus::Completed
                                       ? "completed"
                                       : "failed"},
                        {"carried_bytes", carried},
                        {"ideal_s", f.ideal_s},
                        {"contended_s", contended}});
  }
  FlowResult result{status, carried, f.start, sim_.now() + f.arrival_latency};
  if (f.done) {
    if (status == FlowStatus::Completed) {
      // Delivery completes one propagation latency after the last byte is
      // injected; the callback observes arrival time.
      sim_.schedule(f.arrival_latency, [cb = std::move(f.done), result] { cb(result); });
    } else {
      f.done(result);
    }
  }
}

}  // namespace composim::fabric
