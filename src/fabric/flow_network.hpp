// composim: fluid flow model over the topology.
//
// Concurrent transfers share links under max-min fairness (progressive
// filling), the standard fluid approximation used by network simulators
// such as SimGrid. Rates are recomputed whenever a flow starts or finishes
// and the next completion event is rescheduled. Per-link byte counters are
// advanced continuously so telemetry can sample instantaneous PCIe traffic
// exactly the way the Falcon management interface reports port throughput.
//
// Recomputation is *incremental* (SimGrid-style lazy updates): a
// persistent flow<->link bipartite index lets each arrival/departure
// re-solve only the connected component of flows that transitively share
// a link with the change. Flows in untouched components keep their rates,
// their accrued progress, and their projected completion times. Projected
// completions live in an indexed min-heap that is updated only for flows
// whose rate actually changed, so the next-completion lookup is O(1) and
// progress advancement walks an active-set of flowing transfers only.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/topology.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"

namespace composim::fabric {

using FlowId = std::uint64_t;
constexpr FlowId kInvalidFlow = 0;

enum class FlowStatus { Completed, Failed };

struct FlowResult {
  FlowStatus status = FlowStatus::Completed;
  Bytes bytes = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  SimTime duration() const { return end - start; }
  /// Achieved goodput (bytes / duration); zero for instantaneous flows.
  Bandwidth throughput() const {
    const SimTime d = duration();
    return d > 0.0 ? static_cast<Bandwidth>(bytes) / d : 0.0;
  }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct FlowOptions {
  /// Cap on this flow's rate regardless of link shares (e.g. a DMA copy
  /// engine limit). Infinity = no cap.
  Bandwidth maxRate = std::numeric_limits<Bandwidth>::infinity();
  /// Extra fixed latency added before data starts moving (software stack,
  /// doorbell, DMA setup).
  SimTime extraLatency = 0.0;
  /// Label recorded in per-flow accounting (for tests/traces).
  std::string tag;
  /// Causal correlation id stamped on the flow's profile span as "corr":
  /// the issuer (e.g. a Communicator op) allocates one id from
  /// ProfileSink::newCorrelation(), records it on its own span, and
  /// threads it here so analysis can join every flow back to the
  /// operation that injected it. 0 (default) = uncorrelated.
  std::uint64_t correlation = 0;
};

/// One transfer in a batched arrival (see FlowNetwork::startFlows).
struct FlowRequest {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bytes bytes = 0;
  FlowCallback done;
  FlowOptions options;
};

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topo) : sim_(sim), topo_(topo) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Start a transfer of `bytes` from node `src` to node `dst`. The
  /// callback fires when the last byte arrives (or on failure). Transfers
  /// between the same node complete after latency only. When no route
  /// exists (device detached, link down), the transfer fails soft: the
  /// callback fires with Failed status — like a DMA engine reporting an
  /// unreachable endpoint — and kInvalidFlow is returned.
  FlowId startFlow(NodeId src, NodeId dst, Bytes bytes, FlowCallback done,
                   FlowOptions options = {});

  /// Same-timestamp arrival coalescer: admit every request, then run ONE
  /// rate recomputation over the union of touched components instead of
  /// one per flow — the hot path for collective setup, where a ring/fan
  /// step injects N flows at the same instant. Results are bit-identical
  /// to N serial startFlow() calls (the intermediate solves a serial
  /// arrival sequence performs at one timestamp are transient and fully
  /// overwritten by the last one); only the recomputation/solve counters
  /// differ. Returned ids are positionally aligned with `requests`
  /// (kInvalidFlow for unroutable entries, which still fail soft).
  std::vector<FlowId> startFlows(std::vector<FlowRequest> requests);

  /// Abort an in-flight flow; its callback fires with Failed status.
  /// Returns false if the flow is unknown (already finished). Latency-only
  /// flows (zero-byte or same-node) are cancellable too: their scheduled
  /// completion is revoked and the callback fires Failed instead.
  bool cancelFlow(FlowId id);

  /// Batched teardown: cancel every listed flow with a single rate
  /// recomputation (collective abort). Unknown ids are skipped; returns
  /// the number actually cancelled. Bit-identical to serial cancelFlow()
  /// calls at the same timestamp.
  std::size_t cancelFlows(const std::vector<FlowId>& ids);

  /// Fail every flow crossing `link` (used for link-down injection) and
  /// mark the link down in the topology. Victims come straight from the
  /// link->flows index (no scan of unrelated flows).
  void failLink(LinkId link);

  /// Re-derive flow rates after an external topology mutation (capacity
  /// change, link restored). Routes of in-flight flows are not changed —
  /// like real DMA transfers, they finish on the path they started on.
  void notifyTopologyChanged();

  std::size_t activeFlows() const { return id_to_slot_.size(); }

  /// Instantaneous rate of a flow (bytes/s); 0 if unknown.
  Bandwidth flowRate(FlowId id) const;

  /// Total payload bytes carried so far in the given link direction.
  Bytes linkBytes(LinkId l) const { return topo_.link(l).counters.bytes; }

  std::uint64_t flowsStarted() const { return flows_started_; }
  std::uint64_t flowsCompleted() const { return flows_completed_; }
  std::uint64_t flowsFailed() const { return flows_failed_; }

  /// Number of max-min rate recomputations (exposed for the ablation bench).
  std::uint64_t rateRecomputations() const { return recomputations_; }

  /// Individual connected-component solves performed (each recomputation
  /// solves one component incrementally, or all of them in full mode).
  std::uint64_t componentSolves() const { return component_solves_; }

  /// Use naive equal-split instead of max-min fairness (ablation only).
  void setNaiveSharing(bool naive) { naive_sharing_ = naive; }

  /// Incremental solving (default on) recomputes only the connected
  /// component touched by a change; full mode re-solves every component on
  /// every change. Both produce bit-identical rates and completion times —
  /// full mode exists as the reference for the equivalence test suite and
  /// as an ablation knob.
  void setIncrementalSolve(bool on) { incremental_ = on; }

  /// Quiescent-point snapshot: valid only with no flows in flight (active
  /// or latency-only). Captures the slot allocator (count + free-list
  /// order — future FlowIds and slot reuse must match a cold run exactly),
  /// the id/epoch counters and the cumulative statistics. Solver scratch
  /// restores to the never-touched encoding: all stale-entry tests compare
  /// stamps for equality against a pre-incremented epoch, so zeroed
  /// scratch in a fork is indistinguishable from stale entries in the
  /// original. state()/restoreState() throw std::logic_error when flows
  /// are still in flight.
  struct State {
    std::uint32_t slot_count = 0;
    std::vector<std::uint32_t> free_slots;
    std::uint64_t epoch = 0;
    std::uint64_t solve_epoch = 0;
    FlowId next_id = 1;
    SimTime last_update = 0.0;
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_failed = 0;
    std::uint64_t recomputations = 0;
    std::uint64_t component_solves = 0;
  };

  State state() const;
  void restoreState(const State& st);

 private:
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  struct ActiveFlow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> links;
    double remaining = 0.0;  // bytes still to transfer
    Bandwidth rate = 0.0;
    Bandwidth max_rate = std::numeric_limits<Bandwidth>::infinity();
    Bytes total = 0;
    SimTime start = 0.0;
    SimTime arrival_latency = 0.0;  // applied at completion
    // Absolute completion time at the current rate; infinity when stalled.
    // Invariant under constant rate, so it is recomputed only on rate
    // changes and never drifts with progress advancement.
    SimTime projected_finish = std::numeric_limits<SimTime>::infinity();
    FlowCallback done;
    std::string tag;
    std::uint32_t heap_pos = kNoPos;    // position in completion_heap_
    std::uint32_t active_pos = kNoPos;  // position in active_ (rate > 0)
    AsyncSpanId span = kInvalidAsyncSpan;
    // Contention-free reference duration (bytes at the route-bottleneck /
    // maxRate cap): the closing span reports actual - ideal as
    // "contended_s", the per-flow fabric-contention figure analysis
    // aggregates. Tracked only while profiling (0 otherwise).
    SimTime ideal_s = 0.0;
  };

  /// Latency-only transfer (zero bytes or same-node): a cancellable
  /// scheduled completion, tracked so the returned FlowId stays live.
  struct LatencyFlow {
    EventId event = kInvalidEvent;
    Bytes bytes = 0;
    SimTime start = 0.0;
    FlowCallback done;
    AsyncSpanId span = kInvalidAsyncSpan;
  };

  void advanceProgress();
  void ensureLinkTables();
  // Admission helpers shared by startFlow and startFlows. The caller runs
  // advanceProgress()/ensureLinkTables() before any byte-flow admission
  // and resolveAfterChange(seeds) after the batch.
  FlowId admitUnroutable(NodeId src, NodeId dst, FlowCallback done);
  FlowId admitLatencyOnly(SimTime latency, NodeId src, NodeId dst, Bytes bytes,
                          FlowCallback done, const std::string& tag,
                          std::uint64_t correlation);
  FlowId admitByteFlow(const Route& route, NodeId src, NodeId dst, Bytes bytes,
                       FlowCallback done, FlowOptions options,
                       std::vector<LinkId>& seeds);
  bool cancelLatencyFlow(FlowId id);
  /// Open a profiling span for a flow (no-op when profiling is off).
  /// `correlation` != 0 is recorded as the span's "corr" arg.
  AsyncSpanId beginFlowSpan(NodeId src, NodeId dst, Bytes bytes,
                            const std::string& tag, std::uint64_t correlation);
  /// Publish utilization/queue counters for the links in comp_links_.
  void profileLinkCounters(ProfileSink& sink);
  const std::string& linkCounterName(LinkId l);
  /// Re-solve the connected component(s) reachable from `seeds`
  /// (or everything, in full/reference mode). Counts one recomputation.
  void resolveAfterChange(const std::vector<LinkId>& seeds);
  void resolveAllComponents();
  void collectComponent(LinkId seed);
  void solveComponent();
  void applyRate(std::uint32_t slot, Bandwidth rate);
  void scheduleNextCompletion();
  void onCompletionEvent();
  void onLatencyFlowDone(FlowId id);
  void finishFlow(std::uint32_t slot, FlowStatus status);

  // Indexed min-heap over projected_finish (ties by FlowId).
  bool heapLess(std::uint32_t a, std::uint32_t b) const;
  void heapSiftUp(std::size_t i);
  void heapSiftDown(std::size_t i);
  void heapUpsert(std::uint32_t slot);
  void heapErase(std::uint32_t slot);
  void activeErase(std::uint32_t slot);

  Simulator& sim_;
  Topology& topo_;

  // Flow storage: dense reusable slots + id lookup for the public API.
  std::vector<ActiveFlow> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowId, std::uint32_t> id_to_slot_;
  std::unordered_map<FlowId, LatencyFlow> latency_flows_;

  // Persistent bipartite index, dense by LinkId. Each per-link list is
  // kept in ascending FlowId order (append monotonic ids, order-preserving
  // erase) so solver fix order is deterministic.
  std::vector<std::vector<std::uint32_t>> link_flows_;

  // Reused solver scratch, dense by LinkId / slot (no per-call hashing).
  std::vector<double> link_residual_;
  std::vector<std::uint32_t> link_unfixed_;
  std::vector<std::uint64_t> link_epoch_;
  std::vector<std::uint64_t> flow_epoch_;  // by slot: component membership
  std::vector<std::uint64_t> flow_fixed_;  // by slot: solve round fixed in
  std::vector<LinkId> comp_links_;         // BFS worklist + component links
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> comp_capped_;  // component flows with finite cap
  std::uint64_t epoch_ = 0;
  std::uint64_t solve_epoch_ = 0;

  std::vector<std::uint32_t> active_;           // slots with rate > 0
  std::vector<std::uint32_t> completion_heap_;  // slots by projected_finish
  std::vector<std::uint32_t> done_scratch_;     // completion-event reuse
  std::vector<LinkId> seed_scratch_;
  std::vector<LinkId> arrival_seeds_;           // startFlow(s) batch seeds
  std::vector<std::string> link_counter_names_;  // lazy, profiling only

  FlowId next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventId completion_event_ = kInvalidEvent;
  SimTime completion_time_ = std::numeric_limits<SimTime>::infinity();
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::uint64_t recomputations_ = 0;
  std::uint64_t component_solves_ = 0;
  bool naive_sharing_ = false;
  bool incremental_ = true;
};

}  // namespace composim::fabric
