// composim: fluid flow model over the topology.
//
// Concurrent transfers share links under max-min fairness (progressive
// filling), the standard fluid approximation used by network simulators
// such as SimGrid. Rates are recomputed whenever a flow starts or finishes
// and the next completion event is rescheduled. Per-link byte counters are
// advanced continuously so telemetry can sample instantaneous PCIe traffic
// exactly the way the Falcon management interface reports port throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/topology.hpp"
#include "sim/simulator.hpp"

namespace composim::fabric {

using FlowId = std::uint64_t;
constexpr FlowId kInvalidFlow = 0;

enum class FlowStatus { Completed, Failed };

struct FlowResult {
  FlowStatus status = FlowStatus::Completed;
  Bytes bytes = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  SimTime duration() const { return end - start; }
  /// Achieved goodput (bytes / duration); zero for instantaneous flows.
  Bandwidth throughput() const {
    const SimTime d = duration();
    return d > 0.0 ? static_cast<Bandwidth>(bytes) / d : 0.0;
  }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct FlowOptions {
  /// Cap on this flow's rate regardless of link shares (e.g. a DMA copy
  /// engine limit). Infinity = no cap.
  Bandwidth maxRate = std::numeric_limits<Bandwidth>::infinity();
  /// Extra fixed latency added before data starts moving (software stack,
  /// doorbell, DMA setup).
  SimTime extraLatency = 0.0;
  /// Label recorded in per-flow accounting (for tests/traces).
  std::string tag;
};

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topo) : sim_(sim), topo_(topo) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Start a transfer of `bytes` from node `src` to node `dst`. The
  /// callback fires when the last byte arrives (or on failure). Transfers
  /// between the same node complete after latency only. When no route
  /// exists (device detached, link down), the transfer fails soft: the
  /// callback fires with Failed status — like a DMA engine reporting an
  /// unreachable endpoint — and kInvalidFlow is returned.
  FlowId startFlow(NodeId src, NodeId dst, Bytes bytes, FlowCallback done,
                   FlowOptions options = {});

  /// Abort an in-flight flow; its callback fires with Failed status.
  /// Returns false if the flow is unknown (already finished).
  bool cancelFlow(FlowId id);

  /// Fail every flow crossing `link` (used for link-down injection) and
  /// mark the link down in the topology.
  void failLink(LinkId link);

  /// Re-derive flow rates after an external topology mutation (capacity
  /// change, link restored). Routes of in-flight flows are not changed —
  /// like real DMA transfers, they finish on the path they started on.
  void notifyTopologyChanged();

  std::size_t activeFlows() const { return flows_.size(); }

  /// Instantaneous rate of a flow (bytes/s); 0 if unknown.
  Bandwidth flowRate(FlowId id) const;

  /// Total payload bytes carried so far in the given link direction.
  Bytes linkBytes(LinkId l) const { return topo_.link(l).counters.bytes; }

  std::uint64_t flowsStarted() const { return flows_started_; }
  std::uint64_t flowsCompleted() const { return flows_completed_; }
  std::uint64_t flowsFailed() const { return flows_failed_; }

  /// Number of max-min rate recomputations (exposed for the ablation bench).
  std::uint64_t rateRecomputations() const { return recomputations_; }

  /// Use naive equal-split instead of max-min fairness (ablation only).
  void setNaiveSharing(bool naive) { naive_sharing_ = naive; }

 private:
  struct ActiveFlow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> links;
    double remaining = 0.0;  // bytes still to transfer
    Bandwidth rate = 0.0;
    Bandwidth max_rate = std::numeric_limits<Bandwidth>::infinity();
    Bytes total = 0;
    SimTime start = 0.0;
    SimTime arrival_latency = 0.0;  // applied at completion
    FlowCallback done;
    std::string tag;
  };

  void advanceProgress();
  void recomputeRates();
  void scheduleNextCompletion();
  void onCompletionEvent();
  void finishFlow(std::unordered_map<FlowId, ActiveFlow>::iterator it,
                  FlowStatus status);

  Simulator& sim_;
  Topology& topo_;
  std::unordered_map<FlowId, ActiveFlow> flows_;
  FlowId next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventId completion_event_ = kInvalidEvent;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::uint64_t recomputations_ = 0;
  bool naive_sharing_ = false;
};

}  // namespace composim::fabric
