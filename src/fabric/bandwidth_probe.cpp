#include "fabric/bandwidth_probe.hpp"

#include <algorithm>
#include <cstdio>

#include "fabric/link_catalog.hpp"

namespace composim::fabric {

P2pMeasurement measureP2p(Simulator& sim, FlowNetwork& net, NodeId a, NodeId b,
                          Bytes payload) {
  P2pMeasurement out;
  FlowOptions opt;
  opt.extraLatency = catalog::dmaEndpointOverhead();

  {
    FlowResult r;
    net.startFlow(a, b, payload, [&](const FlowResult& fr) { r = fr; }, opt);
    sim.run();
    out.unidirectional = r.throughput();
  }
  {
    const SimTime start = sim.now();
    SimTime end_ab = start;
    SimTime end_ba = start;
    net.startFlow(a, b, payload, [&](const FlowResult& fr) { end_ab = fr.end; }, opt);
    net.startFlow(b, a, payload, [&](const FlowResult& fr) { end_ba = fr.end; }, opt);
    sim.run();
    const SimTime elapsed = std::max(end_ab, end_ba) - start;
    if (elapsed > 0.0) {
      out.bidirectional = 2.0 * static_cast<double>(payload) / elapsed;
    }
  }
  {
    FlowResult r;
    net.startFlow(a, b, 0, [&](const FlowResult& fr) { r = fr; }, opt);
    sim.run();
    out.write_latency = r.duration();
  }
  return out;
}

std::vector<std::vector<double>> bandwidthMatrix(Simulator& sim,
                                                 FlowNetwork& net,
                                                 const std::vector<NodeId>& nodes,
                                                 Bytes payload) {
  const std::size_t n = nodes.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  FlowOptions opt;
  opt.extraLatency = catalog::dmaEndpointOverhead();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      FlowResult r;
      net.startFlow(nodes[i], nodes[j], payload,
                    [&](const FlowResult& fr) { r = fr; }, opt);
      sim.run();
      matrix[i][j] = units::to_GBps(r.throughput());
    }
  }
  return matrix;
}

std::string describeRoute(const Topology& topo, NodeId src, NodeId dst) {
  const auto route = topo.route(src, dst);
  if (!route) return "(no route)";
  std::string out = topo.node(src).name;
  for (LinkId lid : route->links) {
    const Link& l = topo.link(lid);
    char seg[128];
    std::snprintf(seg, sizeof(seg), " -[%s %.1f GB/s]-> %s", toString(l.kind),
                  units::to_GBps(l.capacity), topo.node(l.dst).name.c_str());
    out += seg;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail), " (%zu hop%s, %.2f us, bottleneck %.1f GB/s)",
                route->links.size(), route->links.size() == 1 ? "" : "s",
                units::to_us(route->latency), units::to_GBps(route->bottleneck));
  out += tail;
  return out;
}

}  // namespace composim::fabric
