// composim: NVLink hybrid cube-mesh builder (paper Fig 7).
//
// The 8 SXM2 sockets of the host form two quads {0..3} and {4..7}. Each
// GPU spends its six NVLink bricks as: three edges inside its quad (one of
// them double-width) and one double-width edge to its cube neighbour in
// the other quad. This mirrors the DGX-1V wiring closely enough that every
// GPU has exactly 6 bricks and quad-local traffic never crosses PCIe.
#pragma once

#include <vector>

#include "fabric/topology.hpp"

namespace composim::fabric {

struct NvlinkEdge {
  int a;       // GPU index 0..7
  int b;       // GPU index 0..7
  int bricks;  // number of NVLink bricks on this edge
};

/// Edge list of the hybrid cube mesh for `gpuCount` GPUs (4 or 8).
/// For 4 GPUs, returns a single fully-connected quad.
std::vector<NvlinkEdge> hybridCubeMesh(int gpuCount);

/// Wire the mesh into `topo` between the given GPU nodes (size 4 or 8).
/// Returns the created duplex link ids (forward direction only).
std::vector<LinkId> buildHybridCubeMesh(Topology& topo,
                                        const std::vector<NodeId>& gpus);

}  // namespace composim::fabric
