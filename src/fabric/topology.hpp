// composim: interconnect topology graph.
//
// Nodes are endpoints or forwarding elements (GPU, CPU root complex, PCIe
// switch, memory, storage, NIC). Links are *directed* with per-direction
// capacity; addDuplexLink creates the usual full-duplex pair. Routing is
// latency-weighted Dijkstra with a cache invalidated on any mutation, so
// dynamic attach/detach (the composable part) recomputes paths lazily.
//
// At multi-chassis scale a full-graph Dijkstra per (src, dst) pair is the
// hot path, so routing is optionally *hierarchical*: nodes are partitioned
// into routing domains (chassis / host groups, setNodeDomain), and a route
// becomes intra-domain table lookups plus a search over a small
// domain-border graph instead of a whole-graph shortest path. The flat
// Dijkstra remains as the oracle (routeFlat) for equivalence testing; see
// DESIGN.md §2.1.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/units.hpp"

namespace composim::fabric {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
/// Routing domain: a chassis or host group for hierarchical routing.
using DomainId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;
constexpr DomainId kDefaultDomain = 0;

enum class NodeKind {
  Gpu,
  CpuRootComplex,
  PcieSwitch,
  HostMemory,
  Storage,
  Nic,
  Other,
};

enum class LinkKind {
  NVLink,
  PCIe3,
  PCIe4,
  HostAdapter,     // CDFP cable between host adapter and Falcon drawer
  RootComplex,     // traversal across the CPU root complex (P2P via host)
  MemoryBus,       // CPU <-> DRAM
  Ethernet,
  Internal,        // switch-internal crossbar hop
};

const char* toString(NodeKind k);
const char* toString(LinkKind k);

struct Node {
  std::string name;
  NodeKind kind = NodeKind::Other;
};

struct LinkCounters {
  Bytes bytes = 0;          // cumulative payload carried in this direction
  std::uint64_t flows = 0;  // flows that used this link
  std::uint64_t errors = 0; // injected link errors (BMC health view)
};

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth capacity = 0.0;  // bytes/second in this direction
  SimTime latency = 0.0;     // propagation + serialization setup
  LinkKind kind = LinkKind::Internal;
  bool up = true;
  LinkCounters counters;
};

/// A resolved route: ordered directed links from src to dst.
struct Route {
  std::vector<LinkId> links;
  SimTime latency = 0.0;        // sum of link latencies
  Bandwidth bottleneck = 0.0;   // min capacity along the route
};

class Topology {
 public:
  NodeId addNode(std::string name, NodeKind kind);

  /// One directed link.
  LinkId addLink(NodeId src, NodeId dst, Bandwidth capacity, SimTime latency,
                 LinkKind kind);

  /// Full-duplex pair; returns {forward, reverse}.
  std::pair<LinkId, LinkId> addDuplexLink(NodeId a, NodeId b,
                                          Bandwidth capacityPerDirection,
                                          SimTime latency, LinkKind kind);

  /// Remove every link touching `n` in either direction (device detach).
  /// The node itself stays (ids remain stable); it simply becomes isolated.
  void isolateNode(NodeId n);

  void setLinkUp(LinkId l, bool up);

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t linkCount() const { return links_.size(); }

  const Node& node(NodeId n) const { return nodes_.at(static_cast<std::size_t>(n)); }
  const Link& link(LinkId l) const { return links_.at(static_cast<std::size_t>(l)); }
  Link& mutableLink(LinkId l) { ++generation_; return links_.at(static_cast<std::size_t>(l)); }

  /// Counter access that does NOT invalidate the route cache.
  LinkCounters& counters(LinkId l) { return links_.at(static_cast<std::size_t>(l)).counters; }

  NodeId findNode(const std::string& name) const;

  /// Assign `n` to a routing domain (chassis / host group). Nodes default
  /// to kDefaultDomain; domains only matter once hierarchical routing is
  /// enabled. Invalidates cached routes and tables.
  void setNodeDomain(NodeId n, DomainId d);
  DomainId nodeDomain(NodeId n) const {
    return domain_of_.at(static_cast<std::size_t>(n));
  }

  /// Route via domain tables + border graph instead of a full-graph
  /// Dijkstra. A no-op until at least two distinct domains are assigned.
  /// Hierarchical routes are latency-equivalent to the flat oracle (equal
  /// cost, possibly a different equal-cost path), so flipping this knob
  /// can legitimately change which of several tied paths a flow takes —
  /// it is therefore opt-in per stack, never flipped implicitly.
  void setHierarchicalRouting(bool on);
  bool hierarchicalRouting() const { return hierarchical_; }

  /// Drop cached routes and hierarchy tables without touching links (bench
  /// hook: re-measure route computation against a warm topology).
  void invalidateRoutes() { ++generation_; }

  /// Shortest path by cumulative latency over up-links. Returns nullopt if
  /// unreachable. Results are cached until the topology changes.
  ///
  /// Thread-ownership: route() mutates per-instance caches (the route
  /// cache and reused Dijkstra scratch) from a const method, so a
  /// Topology is single-owner-thread for routing: the first route() call
  /// pins the owning thread and calls from any other thread throw
  /// std::logic_error. Parallel sweeps give every run a private
  /// Topology; a deliberate handoff (build here, route there) must call
  /// rebindRouteOwner() from the new owner.
  std::optional<Route> route(NodeId src, NodeId dst) const;

  /// Same contract as route(), but returns a reference into the route
  /// cache instead of a copy — the hot-path form (steady-state routing is
  /// allocation-free on cache hits). The reference is invalidated by any
  /// topology mutation and by the next route()/routeCached() call after
  /// one.
  const std::optional<Route>& routeCached(NodeId src, NodeId dst) const;

  /// Flat-Dijkstra oracle: always computes over the whole graph, ignoring
  /// domains, and bypasses the route cache. Reference implementation for
  /// the hierarchical-equivalence suite and the scaling bench.
  std::optional<Route> routeFlat(NodeId src, NodeId dst) const;

  /// Times the hierarchy (domain tables + border graph) was rebuilt.
  std::uint64_t hierarchyBuilds() const { return hier_builds_; }

  /// Re-pin route() ownership to the calling thread. The caller is
  /// responsible for the cross-thread happens-before edge (e.g. the
  /// thread-start or join that handed the Topology over).
  void rebindRouteOwner() const;

  /// All directed links leaving `n` (includes down links). The reference
  /// is invalidated by addNode/addLink.
  const std::vector<LinkId>& linksFrom(NodeId n) const;
  /// All directed links arriving at `n` (includes down links), from the
  /// reverse-adjacency table maintained alongside `adjacency_`. The
  /// reference is invalidated by addNode/addLink.
  const std::vector<LinkId>& linksInto(NodeId n) const;

  std::uint64_t generation() const { return generation_; }

  /// Dynamic-state snapshot: per-link up flags and counters, the mutation
  /// generation, and the routing-domain assignment + hierarchical flag.
  /// The graph structure (nodes, links, adjacency) is NOT captured — a
  /// fork rebuilds it from the same configuration and restoreState()
  /// refuses a structure mismatch (link count or domain-assignment
  /// divergence). Route cache, Dijkstra scratch, and the hierarchical
  /// domain tables / border graph are deliberately dropped on restore
  /// (they are recomputed lazily and never observable in results), and
  /// routing ownership is rebound to the restoring thread so forked
  /// workers never trip the foreign-thread guard.
  struct State {
    struct LinkState {
      bool up = true;
      LinkCounters counters;
    };
    std::vector<LinkState> links;
    std::uint64_t generation = 0;
    std::vector<DomainId> domains;
    bool hierarchical = false;
  };

  State state() const;
  void restoreState(const State& st);

 private:
  void checkRouteOwner() const;

  /// Epoch-stamped Dijkstra from `src` into scratch_dist_/via_/stamp_.
  /// domain >= 0 restricts relaxation to nodes of that domain; reverse
  /// walks reverse_adjacency_ (producing distances *to* src, with via =
  /// first link out of each node). stop_at != kInvalidNode pops early.
  /// Pop order is (distance, node id) ascending — bit-identical between
  /// the flat oracle and a domain-restricted run over the same subgraph.
  void dijkstra(NodeId src, NodeId stop_at, DomainId domain, bool reverse) const;

  std::optional<Route> computeRoute(NodeId src, NodeId dst) const;
  std::optional<Route> computeFlat(NodeId src, NodeId dst) const;
  std::optional<Route> computeHierarchical(NodeId src, NodeId dst) const;
  /// Build a Route from scratch_via_ after dijkstra(src, dst, ...) that
  /// reached dst. Shared by the flat path and the intra-domain candidate.
  Route reconstructFromScratch(NodeId src, NodeId dst) const;
  void finalizeRoute(Route& r) const;
  void ensureHierarchy() const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  // per node: outgoing links
  std::vector<std::vector<LinkId>> reverse_adjacency_;  // per node: incoming
  std::vector<DomainId> domain_of_;  // per node: routing domain
  bool hierarchical_ = false;
  std::uint64_t generation_ = 0;

  mutable std::uint64_t cache_generation_ = ~0ULL;
  mutable std::unordered_map<std::uint64_t, std::optional<Route>> route_cache_;

  // route() owner-thread pin; default id = unowned.
  mutable std::atomic<std::thread::id> route_owner_{};

  // Dijkstra scratch, reused across route() calls so the hot path stops
  // allocating dist/via/heap per call. Entries are valid only when their
  // stamp matches scratch_epoch_ (O(1) reset instead of O(nodes) refill).
  mutable std::vector<double> scratch_dist_;
  mutable std::vector<LinkId> scratch_via_;
  mutable std::vector<std::uint32_t> scratch_stamp_;
  mutable std::vector<std::pair<double, NodeId>> scratch_heap_;
  mutable std::uint32_t scratch_epoch_ = 0;
  // Last-seen sizes: reserve the result path and heap up front so
  // steady-state routing performs no incidental reallocation.
  mutable std::size_t path_watermark_ = 0;
  mutable std::size_t heap_watermark_ = 0;

  // ---- hierarchical routing (lazy caches, rebuilt per generation) ----

  /// Precomputed intra-domain shortest paths from/to one border node,
  /// indexed by the member's position in hier_members_[domain].
  struct BorderTable {
    NodeId border = kInvalidNode;
    DomainId domain = kDefaultDomain;
    std::vector<double> to_dist;    // border -> member
    std::vector<LinkId> to_via;     // last link into member on that path
    std::vector<double> from_dist;  // member -> border
    std::vector<LinkId> from_via;   // first link out of member on that path
  };
  /// Border-graph edge: an up inter-domain link (link != kInvalidLink) or
  /// an intra-domain transit along the from-border's to-table.
  struct BorderEdge {
    std::int32_t to = -1;  // border index
    double weight = 0.0;
    LinkId link = kInvalidLink;
  };

  void appendToPath(const BorderTable& t, NodeId target,
                    std::vector<LinkId>& out) const;
  void appendFromPath(NodeId from, const BorderTable& t,
                      std::vector<LinkId>& out) const;

  mutable std::uint64_t hier_generation_ = ~0ULL;
  mutable bool hier_active_ = false;  // >= 2 distinct domains present
  mutable std::vector<std::vector<NodeId>> hier_members_;      // per domain
  mutable std::vector<std::int32_t> hier_local_;               // node -> member idx
  mutable std::vector<std::int32_t> hier_border_of_;           // node -> border idx
  mutable std::vector<BorderTable> hier_borders_;
  mutable std::vector<std::vector<std::int32_t>> hier_domain_borders_;
  mutable std::vector<std::vector<BorderEdge>> hier_border_adj_;
  mutable std::uint64_t hier_builds_ = 0;
  // Border-graph Dijkstra scratch (sized by border count per query).
  mutable std::vector<double> border_dist_;
  mutable std::vector<std::int32_t> border_prev_;
  mutable std::vector<std::int32_t> border_prev_edge_;
  mutable std::vector<std::pair<double, NodeId>> border_heap_;
  mutable std::vector<std::int32_t> hier_chain_;   // border-path unwind
  mutable std::vector<LinkId> hier_seg_;           // to-path segment reversal
};

}  // namespace composim::fabric
