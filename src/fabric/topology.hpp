// composim: interconnect topology graph.
//
// Nodes are endpoints or forwarding elements (GPU, CPU root complex, PCIe
// switch, memory, storage, NIC). Links are *directed* with per-direction
// capacity; addDuplexLink creates the usual full-duplex pair. Routing is
// latency-weighted Dijkstra with a cache invalidated on any mutation, so
// dynamic attach/detach (the composable part) recomputes paths lazily.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/units.hpp"

namespace composim::fabric {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

enum class NodeKind {
  Gpu,
  CpuRootComplex,
  PcieSwitch,
  HostMemory,
  Storage,
  Nic,
  Other,
};

enum class LinkKind {
  NVLink,
  PCIe3,
  PCIe4,
  HostAdapter,     // CDFP cable between host adapter and Falcon drawer
  RootComplex,     // traversal across the CPU root complex (P2P via host)
  MemoryBus,       // CPU <-> DRAM
  Ethernet,
  Internal,        // switch-internal crossbar hop
};

const char* toString(NodeKind k);
const char* toString(LinkKind k);

struct Node {
  std::string name;
  NodeKind kind = NodeKind::Other;
};

struct LinkCounters {
  Bytes bytes = 0;          // cumulative payload carried in this direction
  std::uint64_t flows = 0;  // flows that used this link
  std::uint64_t errors = 0; // injected link errors (BMC health view)
};

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth capacity = 0.0;  // bytes/second in this direction
  SimTime latency = 0.0;     // propagation + serialization setup
  LinkKind kind = LinkKind::Internal;
  bool up = true;
  LinkCounters counters;
};

/// A resolved route: ordered directed links from src to dst.
struct Route {
  std::vector<LinkId> links;
  SimTime latency = 0.0;        // sum of link latencies
  Bandwidth bottleneck = 0.0;   // min capacity along the route
};

class Topology {
 public:
  NodeId addNode(std::string name, NodeKind kind);

  /// One directed link.
  LinkId addLink(NodeId src, NodeId dst, Bandwidth capacity, SimTime latency,
                 LinkKind kind);

  /// Full-duplex pair; returns {forward, reverse}.
  std::pair<LinkId, LinkId> addDuplexLink(NodeId a, NodeId b,
                                          Bandwidth capacityPerDirection,
                                          SimTime latency, LinkKind kind);

  /// Remove every link touching `n` in either direction (device detach).
  /// The node itself stays (ids remain stable); it simply becomes isolated.
  void isolateNode(NodeId n);

  void setLinkUp(LinkId l, bool up);

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t linkCount() const { return links_.size(); }

  const Node& node(NodeId n) const { return nodes_.at(static_cast<std::size_t>(n)); }
  const Link& link(LinkId l) const { return links_.at(static_cast<std::size_t>(l)); }
  Link& mutableLink(LinkId l) { ++generation_; return links_.at(static_cast<std::size_t>(l)); }

  /// Counter access that does NOT invalidate the route cache.
  LinkCounters& counters(LinkId l) { return links_.at(static_cast<std::size_t>(l)).counters; }

  NodeId findNode(const std::string& name) const;

  /// Shortest path by cumulative latency over up-links. Returns nullopt if
  /// unreachable. Results are cached until the topology changes.
  ///
  /// Thread-ownership: route() mutates per-instance caches (the route
  /// cache and reused Dijkstra scratch) from a const method, so a
  /// Topology is single-owner-thread for routing: the first route() call
  /// pins the owning thread and calls from any other thread throw
  /// std::logic_error. Parallel sweeps give every run a private
  /// Topology; a deliberate handoff (build here, route there) must call
  /// rebindRouteOwner() from the new owner.
  std::optional<Route> route(NodeId src, NodeId dst) const;

  /// Re-pin route() ownership to the calling thread. The caller is
  /// responsible for the cross-thread happens-before edge (e.g. the
  /// thread-start or join that handed the Topology over).
  void rebindRouteOwner() const;

  /// All directed links leaving `n` (includes down links). The reference
  /// is invalidated by addNode/addLink.
  const std::vector<LinkId>& linksFrom(NodeId n) const;
  /// All directed links arriving at `n` (includes down links), from the
  /// reverse-adjacency table maintained alongside `adjacency_`. The
  /// reference is invalidated by addNode/addLink.
  const std::vector<LinkId>& linksInto(NodeId n) const;

  std::uint64_t generation() const { return generation_; }

  /// Dynamic-state snapshot: per-link up flags and counters plus the
  /// mutation generation. The graph structure (nodes, links, adjacency) is
  /// NOT captured — a fork rebuilds it from the same configuration and
  /// restoreState() refuses a structure mismatch. Route cache and Dijkstra
  /// scratch are deliberately dropped on restore (they are recomputed
  /// lazily and never observable in results), and routing ownership is
  /// rebound to the restoring thread so forked workers never trip the
  /// foreign-thread guard.
  struct State {
    struct LinkState {
      bool up = true;
      LinkCounters counters;
    };
    std::vector<LinkState> links;
    std::uint64_t generation = 0;
  };

  State state() const;
  void restoreState(const State& st);

 private:
  void checkRouteOwner() const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  // per node: outgoing links
  std::vector<std::vector<LinkId>> reverse_adjacency_;  // per node: incoming
  std::uint64_t generation_ = 0;

  mutable std::uint64_t cache_generation_ = ~0ULL;
  mutable std::unordered_map<std::uint64_t, std::optional<Route>> route_cache_;

  // route() owner-thread pin; default id = unowned.
  mutable std::atomic<std::thread::id> route_owner_{};

  // Dijkstra scratch, reused across route() calls so the hot path stops
  // allocating dist/via/heap per call. Entries are valid only when their
  // stamp matches scratch_epoch_ (O(1) reset instead of O(nodes) refill).
  mutable std::vector<double> scratch_dist_;
  mutable std::vector<LinkId> scratch_via_;
  mutable std::vector<std::uint32_t> scratch_stamp_;
  mutable std::vector<std::pair<double, NodeId>> scratch_heap_;
  mutable std::uint32_t scratch_epoch_ = 0;
};

}  // namespace composim::fabric
