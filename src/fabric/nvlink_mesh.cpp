#include "fabric/nvlink_mesh.hpp"

#include <stdexcept>

#include "fabric/link_catalog.hpp"

namespace composim::fabric {

std::vector<NvlinkEdge> hybridCubeMesh(int gpuCount) {
  if (gpuCount == 4) {
    // Fully-connected quad; the ring edges are double-width.
    return {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {3, 0, 2}, {0, 2, 1}, {1, 3, 1}};
  }
  if (gpuCount != 8) {
    throw std::invalid_argument("hybridCubeMesh: gpuCount must be 4 or 8");
  }
  std::vector<NvlinkEdge> edges;
  // Each quad {q, q+1, q+2, q+3}: full mesh with a doubled "partner" edge
  // chosen so the 8-GPU ring 0-1-2-3-7-6-5-4-0 runs on wide edges.
  for (int q = 0; q < 8; q += 4) {
    edges.push_back({q + 0, q + 1, 2});
    edges.push_back({q + 1, q + 2, 2});
    edges.push_back({q + 2, q + 3, 2});
    edges.push_back({q + 3, q + 0, 1});
    edges.push_back({q + 0, q + 2, 1});
    edges.push_back({q + 1, q + 3, 1});
  }
  // Cube edges between the quads: i <-> i+4, double width for 0/3 pairs so
  // the inter-quad ring hops (3-7 and 4-0) are wide.
  edges.push_back({0, 4, 2});
  edges.push_back({3, 7, 2});
  edges.push_back({1, 5, 1});
  edges.push_back({2, 6, 1});
  return edges;
}

std::vector<LinkId> buildHybridCubeMesh(Topology& topo,
                                        const std::vector<NodeId>& gpus) {
  const auto edges = hybridCubeMesh(static_cast<int>(gpus.size()));
  std::vector<LinkId> links;
  links.reserve(edges.size());
  for (const auto& e : edges) {
    const auto spec = catalog::nvlink(e.bricks);
    auto [fwd, rev] =
        topo.addDuplexLink(gpus[static_cast<std::size_t>(e.a)],
                           gpus[static_cast<std::size_t>(e.b)],
                           spec.capacityPerDirection, spec.latency, spec.kind);
    (void)rev;
    links.push_back(fwd);
  }
  return links;
}

}  // namespace composim::fabric
