#include "fabric/failures.hpp"

#include <algorithm>
#include <stdexcept>

namespace composim::fabric {

void FaultInjector::scheduleLinkFlap(LinkId link, SimTime at, SimTime downtime) {
  if (downtime <= 0.0) throw std::invalid_argument("flap downtime must be > 0");
  sim_.schedule(at, [this, link, downtime] {
    history_.push_back({sim_.now(), link, FaultRecord::Kind::Flap});
    net_.failLink(link);
    sim_.schedule(downtime, [this, link] {
      history_.push_back({sim_.now(), link, FaultRecord::Kind::Restore});
      topo_.setLinkUp(link, true);
    });
  });
}

void FaultInjector::scheduleErrorBurst(LinkId link, SimTime at,
                                       std::uint64_t errors) {
  sim_.schedule(at, [this, link, errors] {
    history_.push_back({sim_.now(), link, FaultRecord::Kind::ErrorBurst});
    topo_.counters(link).errors += errors;
  });
}

void FaultInjector::scheduleDegrade(LinkId link, SimTime at, double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument("degrade factor must be in (0, 1]");
  }
  sim_.schedule(at, [this, link, factor] {
    history_.push_back({sim_.now(), link, FaultRecord::Kind::Degrade});
    auto& l = topo_.mutableLink(link);
    l.capacity *= factor;
    ++l.counters.errors;
    net_.notifyTopologyChanged();
  });
}

void FaultInjector::scheduleRandomErrorNoise(LinkId link, SimTime meanInterval,
                                             SimTime until) {
  const SimTime next = rng_.exponential(1.0 / meanInterval);
  if (sim_.now() + next > until) return;
  sim_.schedule(next, [this, link, meanInterval, until] {
    history_.push_back({sim_.now(), link, FaultRecord::Kind::ErrorBurst});
    topo_.counters(link).errors += 1;
    scheduleRandomErrorNoise(link, meanInterval, until);
  });
}

}  // namespace composim::fabric
