#include "fabric/failures.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/profile.hpp"

namespace composim::fabric {

const char* toString(FaultRecord::Kind k) {
  switch (k) {
    case FaultRecord::Kind::Flap: return "flap";
    case FaultRecord::Kind::ErrorBurst: return "error-burst";
    case FaultRecord::Kind::Degrade: return "degrade";
    case FaultRecord::Kind::Falloff: return "falloff";
    case FaultRecord::Kind::HostPortLoss: return "host-port-loss";
    case FaultRecord::Kind::Restore: return "restore";
  }
  return "?";
}

void FaultInjector::record(FaultRecord r) {
  if (ProfileSink* p = sim_.profiler()) {
    ProfileArgs args{{"link", static_cast<double>(r.link)}};
    if (r.link2 != kInvalidLink) {
      args.emplace_back("link2", static_cast<double>(r.link2));
    }
    if (r.kind == FaultRecord::Kind::Degrade) {
      args.emplace_back("factor", r.factor);
    }
    if (r.kind == FaultRecord::Kind::ErrorBurst) {
      args.emplace_back("errors", static_cast<double>(r.errors));
    }
    p->instant("fault", std::string("fault:") + toString(r.kind),
               std::move(args));
    if (r.kind != FaultRecord::Kind::Restore) {
      ++faults_injected_;
      p->setCounter("faults_injected", "count",
                    static_cast<double>(faults_injected_));
    }
  } else if (r.kind != FaultRecord::Kind::Restore) {
    ++faults_injected_;
  }
  history_.push_back(std::move(r));
}

void FaultInjector::bringDown(LinkId link) {
  ++down_depth_[link];
  net_.failLink(link);
}

bool FaultInjector::release(LinkId link) {
  auto it = down_depth_.find(link);
  if (it == down_depth_.end() || it->second <= 0) return false;
  if (--it->second > 0) return false;  // another flap still holds it down
  down_depth_.erase(it);
  topo_.setLinkUp(link, true);
  return true;
}

void FaultInjector::scheduleLinkFlap(LinkId link, SimTime at, SimTime downtime) {
  if (downtime <= 0.0) throw std::invalid_argument("flap downtime must be > 0");
  sim_.schedule(at, [this, link, downtime] {
    record({sim_.now(), link, kInvalidLink, FaultRecord::Kind::Flap});
    bringDown(link);
    sim_.schedule(downtime, [this, link] {
      if (release(link)) {
        record({sim_.now(), link, kInvalidLink, FaultRecord::Kind::Restore});
        net_.notifyTopologyChanged();
      }
    });
  });
}

void FaultInjector::scheduleErrorBurst(LinkId link, SimTime at,
                                       std::uint64_t errors) {
  sim_.schedule(at, [this, link, errors] {
    record({sim_.now(), link, kInvalidLink, FaultRecord::Kind::ErrorBurst, 1.0,
            errors});
    topo_.counters(link).errors += errors;
  });
}

void FaultInjector::scheduleDegrade(LinkId link, SimTime at, double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument("degrade factor must be in (0, 1]");
  }
  sim_.schedule(at, [this, link, factor] {
    record({sim_.now(), link, kInvalidLink, FaultRecord::Kind::Degrade, factor});
    auto& l = topo_.mutableLink(link);
    l.capacity *= factor;
    ++l.counters.errors;
    net_.notifyTopologyChanged();
  });
}

void FaultInjector::scheduleDeviceFalloff(LinkId up, LinkId down, SimTime at) {
  sim_.schedule(at, [this, up, down] {
    record({sim_.now(), up, down, FaultRecord::Kind::Falloff});
    // Permanent: take both directions down and never release them. A large
    // error burst lands on the counters so the BMC health view shows the
    // uncorrectable-error signature a falling-off device produces.
    bringDown(up);
    bringDown(down);
    topo_.counters(up).errors += 1000;
    topo_.counters(down).errors += 1000;
  });
}

void FaultInjector::scheduleHostPortFlap(LinkId in, LinkId out, SimTime at,
                                         SimTime downtime) {
  if (downtime <= 0.0) {
    throw std::invalid_argument("host-port downtime must be > 0");
  }
  sim_.schedule(at, [this, in, out, downtime] {
    record({sim_.now(), in, out, FaultRecord::Kind::HostPortLoss});
    bringDown(in);
    bringDown(out);
    topo_.counters(in).errors += 10;
    topo_.counters(out).errors += 10;
    sim_.schedule(downtime, [this, in, out] {
      const bool in_up = release(in);
      const bool out_up = release(out);
      if (in_up || out_up) {
        record({sim_.now(), in_up ? in : kInvalidLink,
                out_up ? out : kInvalidLink, FaultRecord::Kind::Restore});
        net_.notifyTopologyChanged();
      }
    });
  });
}

void FaultInjector::scheduleRandomErrorNoise(LinkId link, SimTime meanInterval,
                                             SimTime until) {
  const SimTime next = rng_.exponential(1.0 / meanInterval);
  if (sim_.now() + next > until) return;
  sim_.schedule(next, [this, link, meanInterval, until] {
    record({sim_.now(), link, kInvalidLink, FaultRecord::Kind::ErrorBurst, 1.0,
            1});
    topo_.counters(link).errors += 1;
    scheduleRandomErrorNoise(link, meanInterval, until);
  });
}

}  // namespace composim::fabric
