// composim: lightweight structured trace log.
//
// Components append (time, category, message) records; tests and the
// management plane read them back. Disabled categories cost one branch.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "sim/units.hpp"

namespace composim {

struct TraceRecord {
  SimTime time;
  std::string category;
  std::string message;
};

class TraceLog {
 public:
  /// When not enabled-all, only categories added via enable() are recorded.
  void enableAll(bool on) { all_ = on; }
  void enable(const std::string& category) { enabled_.insert(category); }

  bool wants(const std::string& category) const {
    return all_ || enabled_.count(category) > 0;
  }

  void record(SimTime t, std::string category, std::string message);

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> byCategory(const std::string& category) const;
  void clear() { records_.clear(); }

 private:
  bool all_ = false;
  std::unordered_set<std::string> enabled_;
  std::vector<TraceRecord> records_;
};

}  // namespace composim
