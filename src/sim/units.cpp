#include "sim/units.hpp"

#include <cmath>
#include <cstdio>

namespace composim {

namespace {

std::string formatScaled(double value, const char* const* suffixes, int count,
                         double step) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= step && idx + 1 < count) {
    v /= step;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  return buf;
}

}  // namespace

std::string formatBytes(Bytes b) {
  static const char* kSuffix[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  return formatScaled(static_cast<double>(b), kSuffix, 6, 1000.0);
}

std::string formatBandwidth(Bandwidth bw) {
  static const char* kSuffix[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return formatScaled(bw, kSuffix, 5, 1000.0);
}

std::string formatTime(SimTime t) {
  char buf[64];
  const double a = std::fabs(t);
  if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", t * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", t * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", t * 1e3);
  } else if (a < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", t);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", t / 60.0);
  }
  return buf;
}

}  // namespace composim
