// composim: strong unit helpers shared by every subsystem.
//
// Simulated time is a double in seconds.  All conversions go through the
// named constructors below so magnitudes are never ambiguous at call sites.
// Data sizes are int64 bytes; bandwidths are double bytes/second.
#pragma once

#include <cstdint>
#include <string>

namespace composim {

/// Simulated time in seconds.
using SimTime = double;

/// Data size in bytes.
using Bytes = std::int64_t;

/// Transfer rate in bytes per second.
using Bandwidth = double;

/// Floating point operations (dimensionless count).
using Flops = double;

namespace units {

constexpr SimTime nanoseconds(double v) { return v * 1e-9; }
constexpr SimTime microseconds(double v) { return v * 1e-6; }
constexpr SimTime milliseconds(double v) { return v * 1e-3; }
constexpr SimTime seconds(double v) { return v; }
constexpr SimTime minutes(double v) { return v * 60.0; }
constexpr SimTime hours(double v) { return v * 3600.0; }

constexpr double to_us(SimTime t) { return t * 1e6; }
constexpr double to_ms(SimTime t) { return t * 1e3; }

constexpr Bytes KiB(double v) { return static_cast<Bytes>(v * 1024.0); }
constexpr Bytes MiB(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0); }
constexpr Bytes GiB(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0); }

constexpr Bandwidth MBps(double v) { return v * 1e6; }
constexpr Bandwidth GBps(double v) { return v * 1e9; }
/// Gigabits per second (network-style rate) to bytes/second.
constexpr Bandwidth Gbps(double v) { return v * 1e9 / 8.0; }

constexpr double to_GBps(Bandwidth bw) { return bw / 1e9; }

constexpr Flops GFLOP(double v) { return v * 1e9; }
constexpr Flops TFLOP(double v) { return v * 1e12; }
/// Compute rate: teraFLOP/s expressed as FLOP/s.
constexpr double TFLOPS(double v) { return v * 1e12; }

constexpr Bytes MB(double v) { return static_cast<Bytes>(v * 1e6); }
constexpr Bytes GB(double v) { return static_cast<Bytes>(v * 1e9); }
constexpr Bytes KB(double v) { return static_cast<Bytes>(v * 1e3); }

}  // namespace units

/// Human-readable "12.3 GB" style formatting (SI units).
std::string formatBytes(Bytes b);
/// Human-readable "12.34 GB/s" formatting.
std::string formatBandwidth(Bandwidth bw);
/// Human-readable duration: picks ns/us/ms/s/min as appropriate.
std::string formatTime(SimTime t);

}  // namespace composim
