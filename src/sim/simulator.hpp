// composim: discrete-event simulation kernel.
//
// Single-threaded, deterministic. Events are (time, sequence) ordered so
// ties resolve in scheduling order. Cancellation is O(1) via a
// slot/generation scheme: an EventId encodes a slot index plus the slot's
// generation, so cancel() and pop-time tombstone checks are plain array
// accesses instead of hash lookups. Cancelled entries stay in the heap as
// tombstones and are discarded at pop time; when tombstones dominate the
// heap they are compacted in one pass so mass cancellation (e.g. a flow
// network rescheduling its completion event) cannot bloat the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/units.hpp"

namespace composim {

class ProfileSink;

/// Handle to a scheduled event; usable with Simulator::cancel().
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now. Negative delays clamp
  /// to zero (run at the current time, after already-queued events).
  EventId schedule(SimTime delay, Action fn);

  /// Schedule at an absolute time (clamped to now()).
  EventId scheduleAt(SimTime when, Action fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `maxEvents` events execute.
  void run(std::uint64_t maxEvents = UINT64_MAX);

  /// Run until simulated time reaches `until` (events at exactly `until`
  /// are executed) or the queue drains.
  void runUntil(SimTime until);

  /// Number of events executed so far.
  std::uint64_t eventsExecuted() const { return executed_; }

  /// Number of events still pending, excluding cancelled tombstones.
  std::size_t pendingEvents() const { return heap_.size() - cancelled_; }

  /// Raw heap occupancy including tombstones awaiting compaction
  /// (diagnostic; pendingEvents() is the semantically meaningful count).
  std::size_t queuedEvents() const { return heap_.size(); }

  bool empty() const { return pendingEvents() == 0; }

  /// Optional profiling hook (see sim/profile.hpp). Not owned; nullptr
  /// means profiling is off and instrumented components skip all work.
  void setProfiler(ProfileSink* sink) { profiler_ = sink; }
  ProfileSink* profiler() const { return profiler_; }

  /// Deterministic snapshot of a *drained* simulator: clock, sequence
  /// counter and the slot/generation allocator. Capturing the allocator is
  /// what makes forked runs hand out the same EventIds as a cold run — the
  /// free-list order and per-slot generations decide every future id.
  /// Only valid at a quiescent point (empty event queue); state() and
  /// setState() throw std::logic_error otherwise.
  struct State {
    SimTime now = 0.0;
    std::uint64_t next_seq = 1;
    std::uint64_t executed = 0;
    std::vector<std::uint32_t> slot_generations;
    std::vector<std::uint32_t> free_slots;
  };

  State state() const;
  void setState(const State& st);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;   // global scheduling order; breaks time ties
    std::uint32_t slot;  // index into slots_
    Action fn;
  };
  struct Slot {
    std::uint32_t generation = 1;
    bool pending = false;
    bool cancelled = false;
  };
  // Min-heap ordering for std::*_heap (which build max-heaps).
  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::uint32_t allocSlot();
  void releaseSlot(std::uint32_t slot);
  /// Pop cancelled entries off the heap top so front() is a live event.
  void purgeCancelledTop();
  /// Drop all tombstones and rebuild the heap in O(n).
  void compactTombstones();
  bool popNext(Entry& out);

  ProfileSink* profiler_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;  // binary heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t cancelled_ = 0;  // tombstones currently in heap_
};

}  // namespace composim
