// composim: discrete-event simulation kernel.
//
// Single-threaded, deterministic. Events are (time, sequence) ordered so
// ties resolve in scheduling order. Cancellation is O(1) amortized via a
// tombstone set consulted at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/units.hpp"

namespace composim {

/// Handle to a scheduled event; usable with Simulator::cancel().
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now. Negative delays clamp
  /// to zero (run at the current time, after already-queued events).
  EventId schedule(SimTime delay, Action fn);

  /// Schedule at an absolute time (clamped to now()).
  EventId scheduleAt(SimTime when, Action fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `maxEvents` events execute.
  void run(std::uint64_t maxEvents = UINT64_MAX);

  /// Run until simulated time reaches `until` (events at exactly `until`
  /// are executed) or the queue drains.
  void runUntil(SimTime until);

  /// Number of events executed so far.
  std::uint64_t eventsExecuted() const { return executed_; }

  /// Number of events currently pending (including cancelled tombstones).
  std::size_t pendingEvents() const { return queue_.size(); }

  bool empty() const { return queue_.size() == cancelled_.size(); }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Action fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  bool popNext(Entry& out);

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> pending_;    // ids scheduled and not yet run
  std::unordered_set<EventId> cancelled_;  // subset of pending_
};

}  // namespace composim
