#include "sim/random.hpp"

#include <cmath>

namespace composim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

Rng Rng::split() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace composim
