// composim: deterministic random streams.
//
// Every stochastic component owns its own Rng seeded from a parent stream,
// so adding a component never perturbs the draws of an unrelated one.
// Implementation: xoshiro256** seeded via splitmix64 (public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>

namespace composim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Gaussian via Box-Muller (cached second draw).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (1/mean).
  double exponential(double rate);

  /// Derive an independent child stream (for per-component seeding).
  Rng split();

  /// Exact stream state: the xoshiro256** words plus the Box-Muller cache.
  /// Round-tripping through state()/setState() reproduces the draw
  /// sequence bit-for-bit, including a pending cached normal.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_cached_normal = has_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }

  void setState(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace composim
