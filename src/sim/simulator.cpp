#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace composim {

namespace {
// Compact once tombstones are both numerous and the majority of the heap;
// the floor keeps small queues on the cheap pop-time-discard path.
constexpr std::size_t kCompactFloor = 1024;
}  // namespace

std::uint32_t Simulator::allocSlot() {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.pending = true;
  s.cancelled = false;
  return slot;
}

void Simulator::releaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.pending = false;
  s.cancelled = false;
  ++s.generation;  // stale EventIds stop matching
  if (s.generation == 0) ++s.generation;  // keep ids nonzero on wrap
  free_slots_.push_back(slot);
}

EventId Simulator::schedule(SimTime delay, Action fn) {
  if (delay < 0.0) delay = 0.0;
  return scheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::scheduleAt(SimTime when, Action fn) {
  if (!fn) throw std::invalid_argument("Simulator::schedule: empty action");
  if (when < now_) when = now_;
  const std::uint32_t slot = allocSlot();
  heap_.push_back(Entry{when, next_seq_++, slot, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  return (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.pending || s.generation != gen || s.cancelled) return false;
  s.cancelled = true;
  ++cancelled_;
  if (cancelled_ > kCompactFloor && cancelled_ * 2 > heap_.size()) {
    compactTombstones();
  }
  return true;
}

void Simulator::compactTombstones() {
  auto live_end = std::remove_if(heap_.begin(), heap_.end(), [this](const Entry& e) {
    if (!slots_[e.slot].cancelled) return false;
    releaseSlot(e.slot);
    return true;
  });
  heap_.erase(live_end, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
  cancelled_ = 0;
}

void Simulator::purgeCancelledTop() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    releaseSlot(heap_.back().slot);
    heap_.pop_back();
    --cancelled_;
  }
}

bool Simulator::popNext(Entry& out) {
  purgeCancelledTop();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  out = std::move(heap_.back());
  heap_.pop_back();
  releaseSlot(out.slot);
  return true;
}

bool Simulator::step() {
  Entry e;
  if (!popNext(e)) return false;
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::run(std::uint64_t maxEvents) {
  for (std::uint64_t i = 0; i < maxEvents; ++i) {
    if (!step()) return;
  }
}

Simulator::State Simulator::state() const {
  if (!heap_.empty()) {
    throw std::logic_error(
        "Simulator::state: event queue not drained (closures in pending "
        "events cannot be captured)");
  }
  State st;
  st.now = now_;
  st.next_seq = next_seq_;
  st.executed = executed_;
  st.slot_generations.reserve(slots_.size());
  for (const Slot& s : slots_) st.slot_generations.push_back(s.generation);
  st.free_slots = free_slots_;
  return st;
}

void Simulator::setState(const State& st) {
  if (!heap_.empty()) {
    throw std::logic_error(
        "Simulator::setState: target simulator has pending events");
  }
  now_ = st.now;
  next_seq_ = st.next_seq;
  executed_ = st.executed;
  slots_.assign(st.slot_generations.size(), Slot{});
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].generation = st.slot_generations[i];
  }
  free_slots_ = st.free_slots;
  cancelled_ = 0;
}

void Simulator::runUntil(SimTime until) {
  Entry e;
  while (true) {
    purgeCancelledTop();
    if (heap_.empty()) return;
    if (heap_.front().time > until) {
      now_ = until;
      return;
    }
    if (!popNext(e)) return;
    now_ = e.time;
    ++executed_;
    e.fn();
  }
}

}  // namespace composim
