#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace composim {

EventId Simulator::schedule(SimTime delay, Action fn) {
  if (delay < 0.0) delay = 0.0;
  return scheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::scheduleAt(SimTime when, Action fn) {
  if (!fn) throw std::invalid_argument("Simulator::schedule: empty action");
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (pending_.count(id) == 0) return false;  // already ran or never existed
  return cancelled_.insert(id).second;
}

bool Simulator::popNext(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const ref; move is safe because we pop
    // immediately after and never touch the moved-from entry.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    pending_.erase(e.id);
    auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!popNext(e)) return false;
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::run(std::uint64_t maxEvents) {
  for (std::uint64_t i = 0; i < maxEvents; ++i) {
    if (!step()) return;
  }
}

void Simulator::runUntil(SimTime until) {
  Entry e;
  while (true) {
    if (queue_.empty()) return;
    if (queue_.top().time > until) {
      now_ = until;
      return;
    }
    if (!popNext(e)) return;
    now_ = e.time;
    ++executed_;
    e.fn();
  }
}

}  // namespace composim
