// composim: span-based profiling hook for the simulation kernel.
//
// ProfileSink is the abstract interface components emit spans and counters
// against; the Simulator owns an optional pointer to one (nullptr = off,
// every call site guards on that, so a disabled profiler costs one branch).
// The concrete implementation with Chrome-trace export lives in
// telemetry/profiler.hpp; this header stays dependency-free so the fabric,
// collectives and dl layers can instrument themselves without reaching
// above the sim layer.
//
// Two span families, matching how time is structured in a discrete-event
// simulation:
//
//  * Track spans (beginSpan/endSpan): strictly nested within a named
//    track. Use for phases that are sequential per logical actor — a
//    trainer's iteration phases, a communicator's in-order op queue. Each
//    track renders as one "thread" row in chrome://tracing / Perfetto.
//  * Async spans (beginAsyncSpan/endAsyncSpan): keyed by correlation id,
//    free to overlap arbitrarily. Use for concurrent work — fabric flows,
//    prefetch pipelines.
//
// Counters (setCounter) are time-weighted sampled values (link utilization,
// queue depth): each update is timestamped at Simulator::now() and the sink
// integrates value x time between updates.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace composim {

/// One key/value argument attached to a span, counter or instant event
/// (a number or a string; numbers are carried as double).
struct ProfileArg {
  std::string key;
  std::string str;
  double num = 0.0;
  bool is_string = false;

  template <typename T, std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  ProfileArg(std::string k, T v)
      : key(std::move(k)), num(static_cast<double>(v)) {}
  ProfileArg(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)), is_string(true) {}
  ProfileArg(std::string k, const char* v)
      : key(std::move(k)), str(v), is_string(true) {}
};

using ProfileArgs = std::vector<ProfileArg>;

/// Correlation id for async spans; 0 is never issued.
using AsyncSpanId = std::uint64_t;
constexpr AsyncSpanId kInvalidAsyncSpan = 0;

class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  /// Open a nested span on `track`. Spans on one track must close in LIFO
  /// order (endSpan closes the innermost open span of that track).
  virtual void beginSpan(const std::string& track, const char* category,
                         std::string name, ProfileArgs args = {}) = 0;
  virtual void endSpan(const std::string& track, ProfileArgs args = {}) = 0;

  /// Open an overlapping span; returns the id endAsyncSpan must be given.
  virtual AsyncSpanId beginAsyncSpan(const char* category, std::string name,
                                     ProfileArgs args = {}) = 0;
  virtual void endAsyncSpan(AsyncSpanId id, ProfileArgs args = {}) = 0;

  /// Set series `series` of counter `counter` to `value` as of now().
  virtual void setCounter(const std::string& counter, const std::string& series,
                          double value) = 0;

  /// Zero-duration marker event.
  virtual void instant(const char* category, std::string name,
                       ProfileArgs args = {}) = 0;

  /// Allocate a fresh correlation id for causal linking across spans: an
  /// emitter stamps the same id on a parent span (e.g. a collective op)
  /// and on every child it causes (e.g. the fabric flows the op injects,
  /// threaded through FlowOptions::correlation), so offline analysis can
  /// rebuild the causal chain without guessing from timestamps. Ids are
  /// drawn from the sink's own deterministic sequence; 0 means "no
  /// correlation" and is what the default implementation returns, so
  /// sinks that don't analyze causality can ignore the whole mechanism.
  virtual std::uint64_t newCorrelation() { return 0; }
};

}  // namespace composim
