#include "sim/trace.hpp"

#include <utility>

namespace composim {

void TraceLog::record(SimTime t, std::string category, std::string message) {
  if (!wants(category)) return;
  records_.push_back(TraceRecord{t, std::move(category), std::move(message)});
}

std::vector<TraceRecord> TraceLog::byCategory(const std::string& category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

}  // namespace composim
