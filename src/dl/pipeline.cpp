#include "dl/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace composim::dl {

DataPipeline::DataPipeline(Simulator& sim, devices::HostCpu& cpu,
                           devices::StorageDevice& storage,
                           fabric::NodeId hostMemory, DatasetSpec dataset,
                           int samplesPerBatch, PipelineOptions options)
    : sim_(sim), cpu_(cpu), storage_(storage), host_memory_(hostMemory),
      dataset_(std::move(dataset)), samples_per_batch_(samplesPerBatch),
      options_(options) {}

Bytes DataPipeline::storageBytesPerBatch() const {
  return dataset_.storageBytesPerSample() * samples_per_batch_;
}

void DataPipeline::start() {
  if (running_) return;
  running_ = true;
  maybeProduce();
}

void DataPipeline::stop() { running_ = false; }

void DataPipeline::maybeProduce() {
  while (running_ && in_flight_ + ready_ < options_.prefetch_batches) {
    ++in_flight_;
    const Bytes stage = storageBytesPerBatch() + deviceBytesPerBatch();
    staging_bytes_ += stage;
    cpu_.allocateMemory(stage);
    storage_.read(storageBytesPerBatch(), host_memory_, options_.pattern,
                  [this](const fabric::FlowResult& r) {
                    if (r.status != fabric::FlowStatus::Completed) {
                      // Storage path failed (e.g. injected link-down):
                      // drop the batch; the trainer will stall visibly.
                      --in_flight_;
                      return;
                    }
                    // Fan preprocessing across DataLoader workers.
                    const int chunks = std::max(1, options_.preprocess_workers);
                    const SimTime per_chunk =
                        dataset_.cpu_preprocess_per_sample *
                        samples_per_batch_ / chunks;
                    auto remaining = std::make_shared<int>(chunks);
                    for (int c = 0; c < chunks; ++c) {
                      cpu_.submit(per_chunk, [this, remaining] {
                        if (--*remaining == 0) onBatchReady();
                      });
                    }
                  });
  }
}

void DataPipeline::onBatchReady() {
  --in_flight_;
  ++ready_;
  ++produced_;
  deliverIfPossible();
  maybeProduce();
}

void DataPipeline::requestBatch(std::function<void()> ready) {
  waiters_.emplace_back(sim_.now(), std::move(ready));
  deliverIfPossible();
  maybeProduce();
}

void DataPipeline::deliverIfPossible() {
  while (ready_ > 0 && !waiters_.empty()) {
    auto [asked_at, cb] = std::move(waiters_.front());
    waiters_.pop_front();
    --ready_;
    ++delivered_;
    stall_time_ += sim_.now() - asked_at;
    const Bytes stage = storageBytesPerBatch() + deviceBytesPerBatch();
    staging_bytes_ -= stage;
    cpu_.freeMemory(stage);
    sim_.schedule(0.0, std::move(cb));
  }
}

}  // namespace composim::dl
