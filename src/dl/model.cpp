#include "dl/model.hpp"

#include <algorithm>

namespace composim::dl {

const char* toString(Domain d) {
  switch (d) {
    case Domain::ComputerVision: return "Computer Vision";
    case Domain::NLP: return "NLP";
  }
  return "?";
}

std::int64_t ModelSpec::totalParams() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.params;
  return total;
}

Flops ModelSpec::forwardFlopsPerSample() const {
  Flops total = 0.0;
  for (const auto& l : layers) total += l.forward_flops;
  return total;
}

Bytes ModelSpec::activationBytesPerSample() const {
  Bytes total = 0;
  for (const auto& l : layers) total += l.activation_bytes;
  return total;
}

Bytes ModelSpec::trainingActivationBytesPerSample() const {
  return static_cast<Bytes>(static_cast<double>(activationBytesPerSample()) *
                            activation_overhead_factor);
}

Bytes ModelSpec::paramBytes(devices::Precision p) const {
  const Bytes elem = (p == devices::Precision::FP16) ? 2 : 4;
  return totalParams() * elem;
}

Bytes ModelSpec::gradientBytes(devices::Precision p) const {
  return paramBytes(p);
}

std::vector<ModelSpec::MacroGroup> ModelSpec::partition(int groups) const {
  std::vector<MacroGroup> out;
  if (layers.empty() || groups <= 0) return out;
  groups = std::min(groups, static_cast<int>(layers.size()));
  const Flops total = forwardFlopsPerSample();
  const Flops per_group = total / groups;

  MacroGroup current;
  for (const auto& l : layers) {
    current.params += l.params;
    current.forward_flops += l.forward_flops;
    current.activation_bytes += l.activation_bytes;
    if (current.forward_flops >= per_group &&
        static_cast<int>(out.size()) < groups - 1) {
      out.push_back(current);
      current = MacroGroup{};
    }
  }
  if (current.params > 0 || current.forward_flops > 0.0 ||
      current.activation_bytes > 0) {
    out.push_back(current);
  }
  return out;
}

}  // namespace composim::dl
