#include "dl/zoo.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace composim::dl {

namespace {

constexpr Bytes kFp16 = 2;

/// Standard convolution layer: params = k*k*cin*cout (+bias via batchnorm),
/// flops = 2 * MACs, activation = output tensor in FP16.
LayerSpec conv(const std::string& name, int cin, int cout, int k, int out_hw,
               bool batchnorm = true) {
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::Conv;
  l.params = static_cast<std::int64_t>(k) * k * cin * cout +
             (batchnorm ? 2LL * cout : static_cast<std::int64_t>(cout));
  l.forward_flops = 2.0 * static_cast<double>(k) * k * cin * cout *
                    static_cast<double>(out_hw) * out_hw;
  l.activation_bytes = static_cast<Bytes>(cout) * out_hw * out_hw * kFp16;
  return l;
}

/// Depthwise convolution: one filter per channel.
LayerSpec dwConv(const std::string& name, int channels, int k, int out_hw) {
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::DepthwiseConv;
  l.params = static_cast<std::int64_t>(k) * k * channels + 2LL * channels;
  l.forward_flops = 2.0 * static_cast<double>(k) * k * channels *
                    static_cast<double>(out_hw) * out_hw;
  l.activation_bytes = static_cast<Bytes>(channels) * out_hw * out_hw * kFp16;
  return l;
}

LayerSpec linear(const std::string& name, std::int64_t in, std::int64_t out,
                 std::int64_t tokens = 1) {
  LayerSpec l;
  l.name = name;
  l.kind = LayerKind::Linear;
  l.params = in * out + out;
  l.forward_flops = 2.0 * static_cast<double>(in) * static_cast<double>(out) *
                    static_cast<double>(tokens);
  l.activation_bytes = out * tokens * kFp16;
  return l;
}

}  // namespace

ModelSpec resNet50() {
  ModelSpec m;
  m.name = "ResNet-50";
  m.domain = Domain::ComputerVision;
  m.dataset = "ImageNet";
  m.reported_depth = 50;
  m.fp16_efficiency = 0.205;
  m.fp32_efficiency = 0.33;
  m.input_bytes_per_sample = 3LL * 224 * 224 * kFp16;
  m.paper_batch_per_gpu = 128;
  m.paper_epochs = 20;

  m.layers.push_back(conv("stem.conv7x7", 3, 64, 7, 112));
  // Bottleneck stages: (blocks, mid, out, spatial after the stage stride).
  struct Stage { int blocks, mid, out, hw; };
  const Stage stages[] = {{3, 64, 256, 56}, {4, 128, 512, 28},
                          {6, 256, 1024, 14}, {3, 512, 2048, 7}};
  int cin = 64;
  for (int s = 0; s < 4; ++s) {
    const auto& st = stages[s];
    for (int b = 0; b < st.blocks; ++b) {
      const std::string base =
          "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      m.layers.push_back(conv(base + ".conv1", cin, st.mid, 1, st.hw));
      m.layers.push_back(conv(base + ".conv2", st.mid, st.mid, 3, st.hw));
      m.layers.push_back(conv(base + ".conv3", st.mid, st.out, 1, st.hw));
      if (b == 0) {
        m.layers.push_back(conv(base + ".downsample", cin, st.out, 1, st.hw));
      }
      cin = st.out;
    }
  }
  m.layers.push_back(linear("fc", 2048, 1000));
  return m;
}

ModelSpec mobileNetV2() {
  ModelSpec m;
  m.name = "MobileNetV2";
  m.domain = Domain::ComputerVision;
  m.dataset = "ImageNet";
  m.reported_depth = 53;
  m.fp16_efficiency = 0.019;  // depthwise convs barely touch tensor cores
  m.fp32_efficiency = 0.055;
  m.input_bytes_per_sample = 3LL * 224 * 224 * kFp16;
  m.paper_batch_per_gpu = 64;
  m.paper_epochs = 10;

  m.layers.push_back(conv("stem", 3, 32, 3, 112));
  // Inverted residual config: (expansion t, output c, repeats n, stride s).
  struct Block { int t, c, n, s; };
  const Block cfg[] = {{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2},
                       {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2},
                       {6, 320, 1, 1}};
  int cin = 32;
  int hw = 112;
  int idx = 0;
  for (const auto& blk : cfg) {
    for (int r = 0; r < blk.n; ++r) {
      const int stride = (r == 0) ? blk.s : 1;
      const int out_hw = (stride == 2) ? hw / 2 : hw;
      const int expanded = cin * blk.t;
      const std::string base = "ir" + std::to_string(idx++);
      if (blk.t != 1) {
        m.layers.push_back(conv(base + ".expand", cin, expanded, 1, hw));
      }
      m.layers.push_back(dwConv(base + ".dw", expanded, 3, out_hw));
      m.layers.push_back(conv(base + ".project", expanded, blk.c, 1, out_hw));
      cin = blk.c;
      hw = out_hw;
    }
  }
  m.layers.push_back(conv("head", cin, 1280, 1, hw));
  m.layers.push_back(linear("classifier", 1280, 1000));
  return m;
}

namespace {

/// YOLOv5 C3 module: split, n bottlenecks (1x1 then 3x3 at half width),
/// merge. Appends its layers to the model.
void appendC3(ModelSpec& m, const std::string& base, int channels, int n,
              int hw) {
  const int half = channels / 2;
  m.layers.push_back(conv(base + ".cv1", channels, half, 1, hw));
  m.layers.push_back(conv(base + ".cv2", channels, half, 1, hw));
  for (int i = 0; i < n; ++i) {
    const std::string b = base + ".m" + std::to_string(i);
    m.layers.push_back(conv(b + ".cv1", half, half, 1, hw));
    m.layers.push_back(conv(b + ".cv2", half, half, 3, hw));
  }
  m.layers.push_back(conv(base + ".cv3", channels, channels, 1, hw));
}

}  // namespace

ModelSpec yoloV5L() {
  ModelSpec m;
  m.name = "YOLOv5-L";
  m.domain = Domain::ComputerVision;
  m.dataset = "Coco";
  m.reported_depth = 392;  // torch module count reported by ultralytics
  m.fp16_efficiency = 0.131;
  m.fp32_efficiency = 0.25;
  m.input_bytes_per_sample = 3LL * 640 * 640 * kFp16;
  m.paper_batch_per_gpu = 11;  // paper batch 88 across 8 GPUs
  m.paper_epochs = 20;

  // Backbone (width_multiple=1.0, depth_multiple=1.0; input 640).
  m.layers.push_back(conv("stem", 3, 64, 6, 320));
  m.layers.push_back(conv("down1", 64, 128, 3, 160));
  appendC3(m, "c3_1", 128, 3, 160);
  m.layers.push_back(conv("down2", 128, 256, 3, 80));
  appendC3(m, "c3_2", 256, 6, 80);
  m.layers.push_back(conv("down3", 256, 512, 3, 40));
  appendC3(m, "c3_3", 512, 9, 40);
  m.layers.push_back(conv("down4", 512, 1024, 3, 20));
  appendC3(m, "c3_4", 1024, 3, 20);
  m.layers.push_back(conv("sppf.cv1", 1024, 512, 1, 20));
  m.layers.push_back(conv("sppf.cv2", 2048, 1024, 1, 20));

  // PANet head: top-down then bottom-up with C3 blocks (the top-down C3s
  // run at the reduced lateral width, as in the ultralytics config).
  m.layers.push_back(conv("head.lat1", 1024, 512, 1, 20));
  appendC3(m, "head.c3_td1", 512, 3, 40);
  m.layers.push_back(conv("head.lat2", 512, 256, 1, 40));
  appendC3(m, "head.c3_td2", 512, 3, 80);
  m.layers.push_back(conv("head.down1", 256, 256, 3, 40));
  appendC3(m, "head.c3_bu1", 512, 3, 40);
  m.layers.push_back(conv("head.down2", 512, 512, 3, 20));
  appendC3(m, "head.c3_bu2", 1024, 3, 20);

  // Detect heads at the three scales: 3 anchors x (5 + 80 classes).
  m.layers.push_back(conv("detect.p3", 256, 255, 1, 80, /*batchnorm=*/false));
  m.layers.push_back(conv("detect.p4", 512, 255, 1, 40, /*batchnorm=*/false));
  m.layers.push_back(conv("detect.p5", 1024, 255, 1, 20, /*batchnorm=*/false));
  return m;
}

namespace {

/// Generic transformer-encoder builder shared by BERT and the extension
/// models: embeddings + L x (attention, FFN) + pooler/head.
ModelSpec transformer(const std::string& name, int hidden, int layers, int ff,
                      int kSeq, int kVocab, int reportedDepth, double eff16,
                      double eff32, int batch) {
  ModelSpec m;
  m.name = name;
  m.domain = Domain::NLP;
  m.dataset = "SQuAD v1.1";
  m.reported_depth = reportedDepth;
  m.fp16_efficiency = eff16;
  m.fp32_efficiency = eff32;
  // Input: token ids + attention mask + segment ids (int32).
  m.input_bytes_per_sample = 3LL * kSeq * 4;
  m.activation_overhead_factor = 7.76;
  m.paper_batch_per_gpu = batch;
  m.paper_epochs = 2;

  // Embeddings: word + position + token-type + LayerNorm.
  LayerSpec emb;
  emb.name = "embeddings";
  emb.kind = LayerKind::Embedding;
  emb.params = static_cast<std::int64_t>(kVocab + 512 + 2) * hidden + 2LL * hidden;
  emb.forward_flops = 2.0 * kSeq * hidden;  // lookup + add, negligible
  emb.activation_bytes = static_cast<Bytes>(kSeq) * hidden * kFp16;
  m.layers.push_back(emb);

  for (int i = 0; i < layers; ++i) {
    const std::string base = "encoder." + std::to_string(i);
    // Self-attention: QKV + output projections, plus the score/context
    // batched GEMMs which carry FLOPs but no parameters.
    LayerSpec attn;
    attn.name = base + ".attention";
    attn.kind = LayerKind::Attention;
    attn.params = 4LL * (static_cast<std::int64_t>(hidden) * hidden + hidden) +
                  2LL * hidden;  // +LayerNorm
    attn.forward_flops = 4.0 * 2.0 * kSeq * static_cast<double>(hidden) * hidden +
                         2.0 * 2.0 * static_cast<double>(kSeq) * kSeq * hidden;
    attn.activation_bytes = static_cast<Bytes>(kSeq) * hidden * kFp16 * 5;
    m.layers.push_back(attn);

    LayerSpec ffn;
    ffn.name = base + ".ffn";
    ffn.kind = LayerKind::Linear;
    ffn.params = static_cast<std::int64_t>(hidden) * ff + ff +
                 static_cast<std::int64_t>(ff) * hidden + hidden + 2LL * hidden;
    ffn.forward_flops = 2.0 * 2.0 * kSeq * static_cast<double>(hidden) * ff;
    ffn.activation_bytes = static_cast<Bytes>(kSeq) * (ff + hidden) * kFp16;
    m.layers.push_back(ffn);
  }

  // Pooler + SQuAD span-prediction head.
  m.layers.push_back(linear("pooler", hidden, hidden));
  m.layers.push_back(linear("qa_head", hidden, 2, kSeq));
  return m;
}

ModelSpec bert(const std::string& name, int hidden, int layers, int ff,
               int reportedDepth, double eff16, double eff32, int batch) {
  // Paper settings: max sequence length 384, WordPiece vocab.
  return transformer(name, hidden, layers, ff, 384, 30522, reportedDepth,
                     eff16, eff32, batch);
}

}  // namespace

ModelSpec bertBase() {
  return bert("BERT", 768, 12, 3072, 12, 0.253, 0.42, /*batch=*/12);
}

ModelSpec bertLarge() {
  return bert("BERT-L", 1024, 24, 4096, 24, 0.284, 0.45, /*batch=*/6);
}

ModelSpec gpt2Medium() {
  // BPE vocab 50257, context 1024 in the original; trained here at the
  // SQuAD-style 384-token window so datasets are comparable.
  auto m = transformer("GPT-2-medium", 1024, 24, 4096, 384, 50257, 24, 0.30,
                       0.45, /*batch=*/4);
  return m;
}

ModelSpec vitBase16() {
  // 196 patch tokens + [CLS]; the "vocabulary" is the patch-embedding
  // projection (16*16*3 inputs), so pass it as a tiny vocab and add the
  // projection explicitly.
  auto m = transformer("ViT-B/16", 768, 12, 3072, 197, 2, 12, 0.30, 0.45,
                       /*batch=*/64);
  LayerSpec patch;
  patch.name = "patch_embed";
  patch.kind = LayerKind::Conv;
  patch.params = 16LL * 16 * 3 * 768 + 768;
  patch.forward_flops = 2.0 * 197 * 16 * 16 * 3 * 768;
  patch.activation_bytes = 197LL * 768 * 2;
  m.layers.insert(m.layers.begin(), patch);
  m.domain = Domain::ComputerVision;
  m.dataset = "ImageNet";
  m.input_bytes_per_sample = 3LL * 224 * 224 * 2;
  m.activation_overhead_factor = 5.0;
  return m;
}

std::vector<ModelSpec> benchmarkZoo() {
  return {mobileNetV2(), resNet50(), yoloV5L(), bertBase(), bertLarge()};
}

namespace datasets {

DatasetSpec imagenet() {
  DatasetSpec d;
  d.name = "ImageNet";
  d.train_samples = 1281167;
  d.disk_bytes_per_sample = units::KB(110);
  d.read_amplification = 1.0;
  d.uncached_read_fraction = 0.05;  // 756 GB hosts keep ImageNet warm
  d.cpu_preprocess_per_sample = units::milliseconds(2.5);  // decode + augment
  d.device_bytes_per_sample = 3LL * 224 * 224 * 2;
  return d;
}

DatasetSpec coco() {
  DatasetSpec d;
  d.name = "Coco";
  d.train_samples = 118287;
  d.disk_bytes_per_sample = units::KB(163);
  d.read_amplification = 4.0;  // YOLOv5 mosaic loads 4 images per sample
  d.uncached_read_fraction = 1.0;  // amplified random reads defeat caching
  // Mosaic + letterbox + HSV augmentation over four source images.
  d.cpu_preprocess_per_sample = units::milliseconds(20.0);
  d.device_bytes_per_sample = 3LL * 640 * 640 * 2;
  return d;
}

DatasetSpec squadV11() {
  DatasetSpec d;
  d.name = "SQuAD v1.1";
  d.train_samples = 88608;  // tokenized features from the 87.6k questions
  d.disk_bytes_per_sample = units::KB(2.5);
  d.read_amplification = 1.0;
  d.uncached_read_fraction = 0.02;  // tokenized features, fully cached
  d.cpu_preprocess_per_sample = units::milliseconds(0.05);
  d.device_bytes_per_sample = 3LL * 384 * 4;
  return d;
}

}  // namespace datasets

DatasetSpec datasetFor(const ModelSpec& model) {
  if (model.dataset == "ImageNet") return datasets::imagenet();
  if (model.dataset == "Coco") return datasets::coco();
  if (model.dataset == "SQuAD v1.1") return datasets::squadV11();
  throw std::invalid_argument("datasetFor: unknown dataset " + model.dataset);
}

}  // namespace composim::dl
