#include "dl/zoo.hpp"

#include <stdexcept>

namespace composim::dl {

// The architectures live in dl/graph_ir/builders.cpp and are registered
// by the WorkloadRegistry; this file only keeps the zoo-wide helpers.

std::vector<ModelSpec> benchmarkZoo() {
  return WorkloadRegistry::instance().paperZoo();
}

namespace datasets {

DatasetSpec imagenet() {
  DatasetSpec d;
  d.name = "ImageNet";
  d.train_samples = 1281167;
  d.disk_bytes_per_sample = units::KB(110);
  d.read_amplification = 1.0;
  d.uncached_read_fraction = 0.05;  // 756 GB hosts keep ImageNet warm
  d.cpu_preprocess_per_sample = units::milliseconds(2.5);  // decode + augment
  d.device_bytes_per_sample = 3LL * 224 * 224 * 2;
  return d;
}

DatasetSpec coco() {
  DatasetSpec d;
  d.name = "Coco";
  d.train_samples = 118287;
  d.disk_bytes_per_sample = units::KB(163);
  d.read_amplification = 4.0;  // YOLOv5 mosaic loads 4 images per sample
  d.uncached_read_fraction = 1.0;  // amplified random reads defeat caching
  // Mosaic + letterbox + HSV augmentation over four source images.
  d.cpu_preprocess_per_sample = units::milliseconds(20.0);
  d.device_bytes_per_sample = 3LL * 640 * 640 * 2;
  return d;
}

DatasetSpec squadV11() {
  DatasetSpec d;
  d.name = "SQuAD v1.1";
  d.train_samples = 88608;  // tokenized features from the 87.6k questions
  d.disk_bytes_per_sample = units::KB(2.5);
  d.read_amplification = 1.0;
  d.uncached_read_fraction = 0.02;  // tokenized features, fully cached
  d.cpu_preprocess_per_sample = units::milliseconds(0.05);
  d.device_bytes_per_sample = 3LL * 384 * 4;
  return d;
}

}  // namespace datasets

DatasetSpec datasetFor(const ModelSpec& model) {
  DatasetSpec d;
  if (const Status s = WorkloadRegistry::instance().dataset(model.dataset, &d);
      !s) {
    throw std::invalid_argument("datasetFor: " + s.detail);
  }
  return d;
}

}  // namespace composim::dl
