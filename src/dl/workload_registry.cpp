#include "dl/workload_registry.hpp"

#include <stdexcept>
#include <utility>

#include "dl/graph_ir/builders.hpp"
#include "dl/graph_ir/lowering.hpp"
#include "dl/graph_ir/loader.hpp"

namespace composim::dl {

namespace {

/// Factory adapter: lower a built-in graph, which cannot fail (the
/// builders are validated by construction and covered by tests).
template <graph_ir::Graph (*Builder)()>
ModelSpec lowered() {
  ModelSpec m;
  if (const Status s = graph_ir::lower(Builder(), &m); !s) {
    throw std::logic_error("built-in workload failed to lower: " +
                           s.toString());
  }
  return m;
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  datasets_.push_back(datasets::imagenet());
  datasets_.push_back(datasets::coco());
  datasets_.push_back(datasets::squadV11());

  const auto builtin = [this](std::string name, std::string dataset,
                              std::string description, bool paper,
                              std::function<ModelSpec()> factory) {
    entries_.push_back({std::move(name), std::move(dataset),
                        std::move(description), paper, std::move(factory)});
  };
  builtin("MobileNetV2", "ImageNet", "Table II: 3.4M-param CV benchmark",
          true, lowered<graph_ir::builders::mobilenetV2>);
  builtin("ResNet-50", "ImageNet", "Table II: 25.6M-param CV benchmark",
          true, lowered<graph_ir::builders::resnet50>);
  builtin("YOLOv5-L", "Coco", "Table II: 47M-param detection benchmark",
          true, lowered<graph_ir::builders::yolov5L>);
  builtin("BERT", "SQuAD v1.1", "Table II: 110M-param NLP benchmark", true,
          lowered<graph_ir::builders::bertBase>);
  builtin("BERT-L", "SQuAD v1.1", "Table II: 340M-param NLP benchmark", true,
          lowered<graph_ir::builders::bertLarge>);
  builtin("GPT-2-medium", "SQuAD v1.1",
          "extension: 355M-param decoder transformer", false,
          lowered<graph_ir::builders::gpt2Medium>);
  builtin("ViT-B/16", "ImageNet", "extension: 86M-param vision transformer",
          false, lowered<graph_ir::builders::vitBase16>);
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

Status WorkloadRegistry::add(Entry entry) {
  if (entry.name.empty() || !entry.factory) {
    return Status::invalidArgument(
        "workload entries need a name and a factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.name == entry.name) {
      return Status::alreadyExists("workload '" + entry.name +
                                   "' is already registered");
    }
  }
  entries_.push_back(std::move(entry));
  return Status::success();
}

Status WorkloadRegistry::model(const std::string& name, ModelSpec* out) const {
  std::function<ModelSpec()> factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.name == name) {
        factory = e.factory;
        break;
      }
    }
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::notFound("unknown workload '" + name + "' (known: " +
                           known + "; or use graph:<path>)");
  }
  *out = factory();  // outside the lock: factories may be arbitrary code
  return Status::success();
}

bool WorkloadRegistry::hasWorkload(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<ModelSpec> WorkloadRegistry::paperZoo() const {
  std::vector<std::function<ModelSpec()>> factories;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.paper_benchmark) factories.push_back(e.factory);
    }
  }
  std::vector<ModelSpec> zoo;
  zoo.reserve(factories.size());
  for (const auto& f : factories) zoo.push_back(f());
  return zoo;
}

Status WorkloadRegistry::addDataset(DatasetSpec spec) {
  if (spec.name.empty()) {
    return Status::invalidArgument("datasets need a name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const DatasetSpec& d : datasets_) {
    if (d.name == spec.name) {
      return Status::alreadyExists("dataset '" + spec.name +
                                   "' is already registered");
    }
  }
  datasets_.push_back(std::move(spec));
  return Status::success();
}

Status WorkloadRegistry::dataset(const std::string& name,
                                 DatasetSpec* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const DatasetSpec& d : datasets_) {
    if (d.name == name) {
      *out = d;
      return Status::success();
    }
  }
  return Status::notFound("unknown dataset '" + name +
                          "' (register it or define it inline in the graph)");
}

std::vector<std::string> WorkloadRegistry::datasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const DatasetSpec& d : datasets_) out.push_back(d.name);
  return out;
}

Status WorkloadRegistry::loadGraph(const std::string& path, ModelSpec* out) {
  graph_ir::Graph graph;
  if (Status s = graph_ir::loadGraphFile(path, &graph); !s) return s;
  ModelSpec m;
  if (Status s = graph_ir::lower(graph, &m); !s) return s;
  if (graph.inline_dataset) {
    // First registration wins; re-loading the same graph is a no-op.
    DatasetSpec existing;
    if (!dataset(graph.inline_dataset->name, &existing)) {
      if (Status s = addDataset(*graph.inline_dataset); !s) return s;
    }
  }
  DatasetSpec resolved;
  if (Status s = dataset(m.dataset, &resolved); !s) {
    s.detail = "graph '" + m.name + "': " + s.detail;
    return s;
  }
  *out = std::move(m);
  return Status::success();
}

Status WorkloadRegistry::resolve(const std::string& workload, ModelSpec* out) {
  constexpr const char* kGraphPrefix = "graph:";
  if (workload.rfind(kGraphPrefix, 0) == 0) {
    return loadGraph(workload.substr(6), out);
  }
  return model(workload, out);
}

ModelSpec workload(const std::string& ref) {
  ModelSpec m;
  if (const Status s = WorkloadRegistry::instance().resolve(ref, &m); !s) {
    throw std::invalid_argument(s.toString());
  }
  return m;
}

}  // namespace composim::dl
