#include "dl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fabric/link_catalog.hpp"

namespace composim::dl {

namespace {
constexpr Bytes kWorkspaceBytes = units::GiB(1.5);  // CUDA context + cuDNN
constexpr int kWarmupIterations = 3;                // excluded from means
}  // namespace

const char* toString(Strategy s) {
  switch (s) {
    case Strategy::DataParallel: return "DP";
    case Strategy::DistributedDataParallel: return "DDP";
  }
  return "?";
}

Trainer::Trainer(Simulator& sim, fabric::FlowNetwork& net,
                 fabric::Topology& topo, std::vector<devices::Gpu*> gpus,
                 devices::HostCpu& cpu, fabric::NodeId hostMemory,
                 devices::StorageDevice& storage, ModelSpec model,
                 DatasetSpec dataset, TrainerOptions options)
    : sim_(sim), net_(net), topo_(topo), gpus_(std::move(gpus)), cpu_(cpu),
      host_memory_(hostMemory), storage_(storage), model_(std::move(model)),
      dataset_(std::move(dataset)), options_(options), rng_(options.seed) {
  if (gpus_.empty()) throw std::invalid_argument("Trainer: no GPUs");
  batch_per_gpu_ = options_.batch_per_gpu > 0 ? options_.batch_per_gpu
                                              : model_.paper_batch_per_gpu;
  epochs_ = options_.epochs > 0 ? options_.epochs : model_.paper_epochs;

  std::vector<fabric::NodeId> ranks;
  ranks.reserve(gpus_.size());
  for (const auto* g : gpus_) ranks.push_back(g->node());
  comm_ = std::make_unique<collectives::Communicator>(sim_, net_, topo_, ranks);
  track_ = "trainer/" + topo_.node(gpus_.front()->node()).name;

  groups_ = model_.partition(options_.macro_groups);

  // Bucket plan: coalesce macro-group gradients into ~equal-size buckets,
  // each launched when its last backward group retires (groups run in
  // reverse order during backward).
  const int nbuckets = std::max(1, std::min<int>(options_.gradient_buckets,
                                                 static_cast<int>(groups_.size())));
  const Bytes elem = (options_.precision == devices::Precision::FP16) ? 2 : 4;
  const Bytes total = model_.totalParams() * elem;
  const Bytes per_bucket = std::max<Bytes>(1, total / nbuckets);
  BucketPlan current;
  for (int g = static_cast<int>(groups_.size()) - 1; g >= 0; --g) {
    current.bytes += groups_[static_cast<std::size_t>(g)].params * elem;
    current.last_group = g;
    if (current.bytes >= per_bucket &&
        static_cast<int>(buckets_.size()) < nbuckets - 1) {
      buckets_.push_back(current);
      current = BucketPlan{};
    }
  }
  if (current.bytes > 0) buckets_.push_back(current);

  const int global_batch = batch_per_gpu_ * static_cast<int>(gpus_.size());
  pipeline_ = std::make_unique<DataPipeline>(sim_, cpu_, storage_, host_memory_,
                                             dataset_, global_batch,
                                             options_.pipeline);
}

Trainer::~Trainer() {
  for (auto* g : gpus_) {
    if (allocated_per_gpu_ > 0) g->free(allocated_per_gpu_);
  }
}

Bytes Trainer::h2dBytesPerGpu() const {
  return dataset_.device_bytes_per_sample * batch_per_gpu_;
}

Bytes Trainer::perGpuMemoryNeeded(int batchPerGpu) const {
  const Bytes elem = (options_.precision == devices::Precision::FP16) ? 2 : 4;
  const std::int64_t params = model_.totalParams();
  const Bytes opt_per_param = options_.optimizer.statePerParam(options_.precision);
  Bytes states = params * (2 * elem + opt_per_param);  // params + grads + opt
  if (options_.sharded) states /= static_cast<Bytes>(gpus_.size());
  Bytes act = model_.trainingActivationBytesPerSample();
  if (options_.precision == devices::Precision::FP32) act *= 2;
  return states + act * batchPerGpu + kWorkspaceBytes +
         dataset_.device_bytes_per_sample * batchPerGpu;
}

int Trainer::maxFeasibleBatchPerGpu() const {
  const Bytes cap = gpus_.front()->capacity();
  int feasible = 0;
  for (int b = 1; b <= 4096; ++b) {
    if (perGpuMemoryNeeded(b) > cap) break;
    feasible = b;
  }
  return feasible;
}

std::int64_t Trainer::iterationsPerEpochFull() const {
  const std::int64_t global_batch =
      static_cast<std::int64_t>(batch_per_gpu_) *
      static_cast<std::int64_t>(gpus_.size()) *
      std::max(1, options_.gradient_accumulation_steps);
  return (dataset_.train_samples + global_batch - 1) / global_batch;
}

void Trainer::start(std::function<void(const TrainingResult&)> done) {
  done_ = std::move(done);
  started_ = true;
  run_start_ = sim_.now();

  const Bytes need = perGpuMemoryNeeded(batch_per_gpu_);
  try {
    for (auto* g : gpus_) g->allocate(need);
    allocated_per_gpu_ = need;
  } catch (const devices::GpuOutOfMemory& oom) {
    for (auto* g : gpus_) g->free(need);  // free() clamps, safe for partial
    allocated_per_gpu_ = 0;
    finish(false, oom.what());
    return;
  }

  // Framework footprint on the host: PyTorch + CUDA contexts + pinned
  // buffers per GPU (Fig 14's baseline system-memory usage).
  host_base_memory_ = units::GiB(10) + units::GiB(1.5) * static_cast<Bytes>(gpus_.size());
  cpu_.allocateMemory(host_base_memory_);

  iters_per_epoch_sim_ = iterationsPerEpochFull();
  if (options_.max_iterations_per_epoch > 0) {
    iters_per_epoch_sim_ =
        std::min<std::int64_t>(iters_per_epoch_sim_, options_.max_iterations_per_epoch);
  }

  pipeline_->start();
  prefetchNextInput();
  beginIteration();
}

// Phase spans carry a "bucket" arg classifying what the phase's wall time
// is ("compute", "sync", "stall", "io") so telemetry::analysis attributes
// iteration time without hardcoding span names (DESIGN.md §17).
void Trainer::beginTrackSpan(const char* name, ProfileArgs args) {
  ++track_depth_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->beginSpan(track_, "trainer", name, std::move(args));
  }
}

void Trainer::endTrackSpan(ProfileArgs args) {
  --track_depth_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->endSpan(track_, std::move(args));
  }
}

void Trainer::prefetchNextInput() {
  // Prefetch + H2D overlap compute, so they are async spans, not track
  // spans: they would not nest under the iteration that hides them.
  AsyncSpanId prefetch_span = kInvalidAsyncSpan;
  if (ProfileSink* sink = sim_.profiler()) {
    prefetch_span = sink->beginAsyncSpan("trainer", "prefetch");
  }
  pipeline_->requestBatch([this, prefetch_span, gen = gen_] {
    // Batch is staged in host memory: copy each rank's shard to its GPU.
    AsyncSpanId h2d_span = kInvalidAsyncSpan;
    if (ProfileSink* sink = sim_.profiler()) {
      sink->endAsyncSpan(prefetch_span);
      if (gen == gen_) {
        h2d_span = sink->beginAsyncSpan("trainer", "h2d",
                                        {{"bytes_per_gpu", h2dBytesPerGpu()}});
      }
    }
    if (gen != gen_) return;  // batch for a composition a restore replaced
    auto remaining = std::make_shared<int>(static_cast<int>(gpus_.size()));
    for (auto* g : gpus_) {
      fabric::FlowOptions fo;
      fo.tag = "h2d";
      fo.extraLatency = fabric::catalog::dmaEndpointOverhead();
      net_.startFlow(host_memory_, g->node(), h2dBytesPerGpu(),
                     [this, remaining, h2d_span, gen](const fabric::FlowResult&) {
                       if (--*remaining > 0) return;
                       if (ProfileSink* sink = sim_.profiler()) {
                         sink->endAsyncSpan(h2d_span);
                       }
                       if (gen != gen_) return;
                       input_ready_ = true;
                       if (input_waiter_) {
                         auto w = std::move(input_waiter_);
                         input_waiter_ = nullptr;
                         w();
                       }
                     },
                     std::move(fo));
    }
  });
}

void Trainer::beginIteration() {
  // The clock starts before any wait on the input pipeline: a data-bound
  // iteration is a long iteration.
  iteration_start_ = sim_.now();
  micro_step_ = 0;
  backward_done_ = false;
  pending_allreduce_ = 0;
  beginTrackSpan("iteration",
                 {{"iter", iterations_done_}, {"epoch", epoch_}});
  startMicroStep();
}

void Trainer::startMicroStep() {
  auto proceed = [this] {
    input_ready_ = false;
    // Double buffering: fetch + upload the next micro-batch under this
    // one's compute.
    prefetchNextInput();
    if (options_.strategy == Strategy::DataParallel) {
      beginTrackSpan("dp-step", {{"bucket", "compute"}});
      runDataParallelIteration();
    } else {
      beginTrackSpan("forward", {{"bucket", "compute"}});
      runForward(0);
    }
  };
  if (input_ready_) {
    proceed();
  } else {
    beginTrackSpan("input-wait", {{"bucket", "stall"}});
    input_waiter_ = [this, proceed] {
      endTrackSpan();  // input-wait
      proceed();
    };
  }
}

void Trainer::runForward(int group) {
  if (group == static_cast<int>(groups_.size())) {
    endTrackSpan();  // forward
    beginTrackSpan("backward", {{"bucket", "compute"}});
    runBackwardDdp(static_cast<int>(groups_.size()) - 1);
    return;
  }
  const auto& g = groups_[static_cast<std::size_t>(group)];
  devices::KernelDesc k;
  k.flops = g.forward_flops * batch_per_gpu_;
  k.mem_bytes = g.activation_bytes * batch_per_gpu_;
  k.precision = options_.precision;
  k.efficiency = (options_.precision == devices::Precision::FP16)
                     ? model_.fp16_efficiency
                     : model_.fp32_efficiency;
  auto remaining = std::make_shared<int>(static_cast<int>(gpus_.size()));
  for (auto* gpu : gpus_) {
    gpu->launchKernel(k, [this, remaining, group, gen = gen_] {
      if (--*remaining > 0 || gen != gen_) return;
      runForward(group + 1);
    });
  }
}

void Trainer::runBackwardDdp(int group) {
  if (group < 0) {
    endTrackSpan();  // backward
    const int accum = std::max(1, options_.gradient_accumulation_steps);
    if (micro_step_ < accum - 1) {
      ++micro_step_;
      startMicroStep();
      return;
    }
    backward_done_ = true;
    backward_done_time_ = sim_.now();
    // The span covers only the all-reduce tail not hidden under backward.
    beginTrackSpan("gradient-sync", {{"bucket", "sync"}, {"buckets_pending", pending_allreduce_}});
    if (pending_allreduce_ == 0) onComputeAndCommDone();
    return;
  }
  const auto& g = groups_[static_cast<std::size_t>(group)];
  devices::KernelDesc k;
  k.flops = 2.0 * g.forward_flops * batch_per_gpu_;
  k.mem_bytes = 2 * g.activation_bytes * batch_per_gpu_;
  k.precision = options_.precision;
  k.efficiency = (options_.precision == devices::Precision::FP16)
                     ? model_.fp16_efficiency
                     : model_.fp32_efficiency;
  // Gradient sync happens only on the final accumulation micro-step
  // (DDP's no_sync context for the earlier ones).
  const bool sync_step =
      micro_step_ >= std::max(1, options_.gradient_accumulation_steps) - 1;
  auto remaining = std::make_shared<int>(static_cast<int>(gpus_.size()));
  for (auto* gpu : gpus_) {
    gpu->launchKernel(k, [this, remaining, group, sync_step, gen = gen_] {
      if (--*remaining > 0 || gen != gen_) return;
      // DDP hook: buckets whose last group just finished its backward pass
      // start their all-reduce, overlapping the remaining backward work.
      if (sync_step) {
        for (const auto& bucket : buckets_) {
          if (bucket.last_group == group && bucket.bytes > 0) {
            ++pending_allreduce_;
            comm_->allReduce(bucket.bytes,
                             [this, gen](const collectives::CollectiveResult&) {
                               if (gen != gen_) return;
                               if (--pending_allreduce_ == 0 && backward_done_) {
                                 onComputeAndCommDone();
                               }
                             },
                             options_.allreduce_algorithm);
          }
        }
      }
      runBackwardDdp(group - 1);
    });
  }
}

void Trainer::runDataParallelIteration() {
  // DP: scatter the replica parameters from the master GPU, run the whole
  // forward+backward with no overlap, gather gradients to the master.
  const Bytes param_bytes = model_.paramBytes(options_.precision);
  comm_->broadcast(param_bytes, 0, [this, gen = gen_](const collectives::CollectiveResult&) {
    if (gen != gen_) return;
    // Forward+backward as one fused pass per GPU (no hooks in DP).
    devices::KernelDesc k;
    k.flops = 3.0 * model_.forwardFlopsPerSample() * batch_per_gpu_;
    k.mem_bytes = 3 * model_.activationBytesPerSample() * batch_per_gpu_;
    k.precision = options_.precision;
    k.efficiency = (options_.precision == devices::Precision::FP16)
                       ? model_.fp16_efficiency
                       : model_.fp32_efficiency;
    auto remaining = std::make_shared<int>(static_cast<int>(gpus_.size()));
    for (auto* gpu : gpus_) {
      gpu->launchKernel(k, [this, remaining, gen] {
        if (--*remaining > 0 || gen != gen_) return;
        comm_->reduce(gradBytes(), 0,
                      [this, gen](const collectives::CollectiveResult&) {
                        if (gen != gen_) return;
                        onComputeAndCommDone();
                      });
      });
    }
  });
}

void Trainer::onComputeAndCommDone() {
  if (options_.strategy == Strategy::DistributedDataParallel) {
    // Gradient all-reduce time not hidden under backward ran as NCCL
    // kernels: nvidia-smi counts it as GPU utilization.
    const SimTime exposed = sim_.now() - backward_done_time_;
    for (auto* gpu : gpus_) gpu->creditCommBusy(exposed);
    endTrackSpan({{"exposed_s", exposed}});  // gradient-sync
  } else {
    endTrackSpan();  // dp-step
  }
  optimizerStep([this] { endIteration(); });
}

void Trainer::optimizerStep(std::function<void()> then) {
  beginTrackSpan("optimizer", {{"bucket", "compute"}});
  then = [this, inner = std::move(then)] {
    endTrackSpan();  // optimizer
    inner();
  };
  // Element-wise optimizer update: memory bound over all state bytes.
  const std::int64_t params = model_.totalParams();
  devices::KernelDesc k;
  k.flops = static_cast<double>(params) * options_.optimizer.flopsPerParam();
  k.mem_bytes = params * options_.optimizer.memBytesPerParam(options_.precision);
  k.precision = devices::Precision::FP32;
  k.efficiency = 0.5;
  const bool master_only = options_.strategy == Strategy::DataParallel;
  if (options_.sharded) k.mem_bytes /= static_cast<Bytes>(gpus_.size());

  auto counter = std::make_shared<int>(master_only ? 1 : static_cast<int>(gpus_.size()));
  auto cont = std::make_shared<std::function<void()>>(std::move(then));
  auto step_done = [this, counter, cont, gen = gen_] {
    if (--*counter > 0 || gen != gen_) return;
    (*cont)();
  };
  if (master_only) {
    gpus_.front()->launchKernel(k, step_done);
  } else {
    for (auto* gpu : gpus_) gpu->launchKernel(k, step_done);
  }
}

void Trainer::endIteration() {
  // Host-side fixed cost between iterations (Python, launch latency,
  // LR-schedule bookkeeping): GPUs sit idle for it; the training process
  // threads show up in the Fig 13 CPU-utilization trace.
  cpu_.submit(options_.step_overhead, nullptr);
  cpu_.submit(options_.step_overhead, nullptr);
  beginTrackSpan("step-overhead", {{"bucket", "stall"}});
  sim_.schedule(options_.step_overhead, [this, gen = gen_] {
    if (gen != gen_) return;
    endTrackSpan();  // step-overhead
    const SimTime dt = sim_.now() - iteration_start_;
    endTrackSpan({{"dt_s", dt}});  // iteration
    iteration_times_.push_back(dt);
    if (iteration_observer_) iteration_observer_(dt);
    ++iterations_done_;
    ++iter_in_epoch_;

    // Synthetic but realistic loss trajectory for the tracker. The noise
    // draw is retained separately: the deterministic part depends on the
    // planned total (a tail parameter under warm-prefix forking), so a
    // fork re-derives the curve from the draws under its own total.
    const double total =
        static_cast<double>(iters_per_epoch_sim_) * std::max(1, epochs_);
    const double progress = static_cast<double>(iterations_done_) / total;
    const double base = (model_.domain == Domain::NLP) ? 3.2 : 6.2;
    const double floor = (model_.domain == Domain::NLP) ? 0.9 : 1.6;
    const double noise = rng_.normal(0.0, 0.02);
    loss_noise_.push_back(noise);
    result_.loss_curve.push_back(floor + (base - floor) * std::exp(-3.0 * progress) +
                                 noise);

    if (pause_at_ > 0 && iterations_done_ == pause_at_) {
      // Warm-prefix boundary: stop the loop here. The caller guaranteed
      // (warmPrefixApplicable) this point is strictly inside an epoch and
      // not an iteration-count checkpoint, so the suppressed continuation
      // is exactly the beginIteration() that resumeTraining() will issue.
      paused_ = true;
      if (on_paused_) {
        auto cb = std::move(on_paused_);
        on_paused_ = nullptr;
        cb();
      }
      return;
    }

    if (iter_in_epoch_ >= iters_per_epoch_sim_) {
      iter_in_epoch_ = 0;
      ++epoch_;
      auto resume = [this] {
        if (epoch_ >= epochs_) {
          finish(true, {});
          return;
        }
        if (resize_requested_) {
          applyPendingResize();
          if (finished_) return;  // resize hit GPU OOM
        }
        beginIteration();
      };
      if (options_.checkpoint_each_epoch) {
        checkpoint(std::move(resume));
      } else {
        sim_.schedule(0.0, std::move(resume));
      }
    } else if (options_.checkpoint_every_iters > 0 &&
               iterations_done_ % options_.checkpoint_every_iters == 0) {
      checkpoint([this] { beginIteration(); });
    } else {
      beginIteration();
    }
  });
}

void Trainer::checkpoint(std::function<void()> then) {
  checkpointing_ = true;
  const SimTime started = sim_.now();
  // FP32 model state_dict (what save_pretrained-style checkpoints write).
  const Bytes ckpt = model_.totalParams() * 4;
  beginTrackSpan("checkpoint", {{"bucket", "io"}, {"bytes", ckpt}});
  auto cont = std::make_shared<std::function<void()>>(std::move(then));
  // D2H from the master GPU, then the write to (possibly Falcon-attached)
  // storage. Training is paused: this is the Fig 9 utilization dip.
  fabric::FlowOptions fo;
  fo.tag = "checkpoint-d2h";
  net_.startFlow(gpus_.front()->node(), host_memory_, ckpt,
                 [this, ckpt, started, cont, gen = gen_](const fabric::FlowResult&) {
                   if (gen != gen_) return;
                   storage_.write(ckpt, host_memory_,
                                  [this, ckpt, started, cont, gen](const fabric::FlowResult&) {
                                    if (gen != gen_) return;
                                    checkpointing_ = false;
                                    result_.checkpoint_bytes += ckpt;
                                    result_.checkpoint_time += sim_.now() - started;
                                    if (checkpoint_observer_) {
                                      checkpoint_observer_(sim_.now() - started);
                                    }
                                    // The checkpoint is durable: this is
                                    // now the restore/replay point.
                                    ckpt_epoch_ = epoch_;
                                    ckpt_iter_in_epoch_ = iter_in_epoch_;
                                    ckpt_iters_done_ = iterations_done_;
                                    endTrackSpan();  // checkpoint
                                    (*cont)();
                                  });
                 },
                 std::move(fo));
}

bool Trainer::requestResize(std::vector<devices::Gpu*> gpus) {
  if (finished_ || gpus.empty()) return false;
  pending_resize_ = std::move(gpus);
  resize_requested_ = true;
  return true;
}

void Trainer::applyPendingResize() {
  resize_requested_ = false;
  ++resize_count_;

  // Release the outgoing composition.
  for (auto* g : gpus_) g->free(allocated_per_gpu_);
  allocated_per_gpu_ = 0;
  gpus_ = std::move(pending_resize_);
  pending_resize_.clear();

  // The model state was just checkpointed; the incoming GPUs load it and
  // training resumes at the same per-GPU batch.
  const Bytes need = perGpuMemoryNeeded(batch_per_gpu_);
  try {
    for (auto* g : gpus_) g->allocate(need);
    allocated_per_gpu_ = need;
  } catch (const devices::GpuOutOfMemory& oom) {
    for (auto* g : gpus_) g->free(need);
    allocated_per_gpu_ = 0;
    finish(false, std::string("resize failed: ") + oom.what());
    return;
  }

  recomposeGang();
  prefetchNextInput();
}

void Trainer::recomposeGang() {
  std::vector<fabric::NodeId> ranks;
  ranks.reserve(gpus_.size());
  for (const auto* g : gpus_) ranks.push_back(g->node());
  retired_comms_.push_back(std::move(comm_));
  comm_ = std::make_unique<collectives::Communicator>(sim_, net_, topo_, ranks);

  // New global batch -> new pipeline; the old one is retired (it may
  // still hold in-flight storage callbacks) and any batch it delivers
  // late simply tops up the input queue.
  pipeline_->stop();
  const int global_batch = batch_per_gpu_ * static_cast<int>(gpus_.size());
  retired_pipelines_.push_back(std::move(pipeline_));
  pipeline_ = std::make_unique<DataPipeline>(sim_, cpu_, storage_, host_memory_,
                                             dataset_, global_batch,
                                             options_.pipeline);
  pipeline_->start();

  input_ready_ = false;
  input_waiter_ = nullptr;
  iters_per_epoch_sim_ = iterationsPerEpochFull();
  if (options_.max_iterations_per_epoch > 0) {
    iters_per_epoch_sim_ = std::min<std::int64_t>(
        iters_per_epoch_sim_, options_.max_iterations_per_epoch);
  }
}

bool Trainer::requestRestore(std::vector<devices::Gpu*> gpus,
                             std::function<void()> onResumed) {
  if (!started_ || finished_ || gpus.empty()) return false;

  // Orphan every in-flight continuation: kernels, flows, collectives and
  // scheduled events captured the old generation and will no-op.
  ++gen_;
  // Keep the trace well-formed: whatever phase spans the abandoned
  // iteration had open must close before the restore span opens.
  while (track_depth_ > 0) endTrackSpan({{"aborted", 1}});
  checkpointing_ = false;
  input_ready_ = false;
  input_waiter_ = nullptr;
  backward_done_ = false;
  pending_allreduce_ = 0;
  micro_step_ = 0;

  // Rewind to the replay window. Iterations completed since the last
  // durable checkpoint are lost work: they will be re-run.
  const std::int64_t lost = iterations_done_ - ckpt_iters_done_;
  result_.lost_iterations += lost;
  ++result_.restores;
  iterations_done_ = ckpt_iters_done_;
  iter_in_epoch_ = ckpt_iter_in_epoch_;
  epoch_ = ckpt_epoch_;
  if (result_.loss_curve.size() > static_cast<std::size_t>(ckpt_iters_done_)) {
    result_.loss_curve.resize(static_cast<std::size_t>(ckpt_iters_done_));
    loss_noise_.resize(static_cast<std::size_t>(ckpt_iters_done_));
  }

  // Swap the gang. free() clamps, so GPUs that already fell off the bus
  // release cleanly too.
  for (auto* g : gpus_) g->free(allocated_per_gpu_);
  allocated_per_gpu_ = 0;
  gpus_ = std::move(gpus);
  const Bytes need = perGpuMemoryNeeded(batch_per_gpu_);
  try {
    for (auto* g : gpus_) g->allocate(need);
    allocated_per_gpu_ = need;
  } catch (const devices::GpuOutOfMemory& oom) {
    for (auto* g : gpus_) g->free(need);
    allocated_per_gpu_ = 0;
    finish(false, std::string("restore failed: ") + oom.what());
    return true;  // the request was accepted; it ended the run
  }
  recomposeGang();

  // Restore I/O over the fabric: read the FP32 state_dict from storage
  // into host memory, then broadcast it to every rank. Recovery cost is
  // topology-dependent like everything else.
  const SimTime restore_start = sim_.now();
  const Bytes ckpt = model_.totalParams() * 4;
  beginTrackSpan("restore", {{"bucket", "io"}, {"bytes", ckpt}, {"gang", gpus_.size()}});
  auto resumed = std::make_shared<std::function<void()>>(std::move(onResumed));
  storage_.read(ckpt, host_memory_, devices::AccessPattern::Sequential,
                [this, ckpt, restore_start, resumed,
                 gen = gen_](const fabric::FlowResult&) {
    if (gen != gen_) return;
    auto remaining = std::make_shared<int>(static_cast<int>(gpus_.size()));
    for (auto* g : gpus_) {
      fabric::FlowOptions fo;
      fo.tag = "restore-h2d";
      fo.extraLatency = fabric::catalog::dmaEndpointOverhead();
      net_.startFlow(host_memory_, g->node(), ckpt,
                     [this, remaining, restore_start, resumed,
                      gen](const fabric::FlowResult&) {
                       if (--*remaining > 0 || gen != gen_) return;
                       result_.restore_time += sim_.now() - restore_start;
                       endTrackSpan();  // restore
                       prefetchNextInput();
                       if (*resumed) (*resumed)();
                       beginIteration();
                     },
                     std::move(fo));
    }
  });
  return true;
}

void Trainer::pauseAfter(std::int64_t iterations,
                         std::function<void()> onPaused) {
  if (started_) {
    throw std::logic_error("Trainer::pauseAfter: must be armed before start()");
  }
  if (iterations <= 0) {
    throw std::invalid_argument("Trainer::pauseAfter: iterations must be > 0");
  }
  pause_at_ = iterations;
  on_paused_ = std::move(onPaused);
}

void Trainer::resumeTraining() {
  if (!paused_) {
    throw std::logic_error("Trainer::resumeTraining: trainer is not paused");
  }
  paused_ = false;
  beginIteration();
}

Trainer::State Trainer::state() const {
  if (!paused_) {
    throw std::logic_error(
        "Trainer::state: only a paused (warm-prefix) run can be captured");
  }
  State st;
  st.rng = rng_.state();
  st.micro_step = micro_step_;
  st.epoch = epoch_;
  st.iter_in_epoch = iter_in_epoch_;
  st.iterations_done = iterations_done_;
  st.ckpt_epoch = ckpt_epoch_;
  st.ckpt_iter_in_epoch = ckpt_iter_in_epoch_;
  st.ckpt_iters_done = ckpt_iters_done_;
  st.input_ready = input_ready_;
  st.backward_done_time = backward_done_time_;
  st.host_base_memory = host_base_memory_;
  st.iteration_start = iteration_start_;
  st.iteration_times = iteration_times_;
  st.allocated_per_gpu = allocated_per_gpu_;
  st.run_start = run_start_;
  st.checkpoint_time = result_.checkpoint_time;
  st.checkpoint_bytes = result_.checkpoint_bytes;
  st.restores = result_.restores;
  st.lost_iterations = result_.lost_iterations;
  st.restore_time = result_.restore_time;
  st.loss_noise = loss_noise_;
  return st;
}

void Trainer::restoreRun(const State& st,
                         std::function<void(const TrainingResult&)> done) {
  if (started_) {
    throw std::logic_error(
        "Trainer::restoreRun: target trainer already started");
  }
  done_ = std::move(done);
  started_ = true;
  paused_ = true;

  rng_.setState(st.rng);
  micro_step_ = st.micro_step;
  epoch_ = st.epoch;
  iter_in_epoch_ = st.iter_in_epoch;
  iterations_done_ = st.iterations_done;
  ckpt_epoch_ = st.ckpt_epoch;
  ckpt_iter_in_epoch_ = st.ckpt_iter_in_epoch;
  ckpt_iters_done_ = st.ckpt_iters_done;
  input_ready_ = st.input_ready;
  input_waiter_ = nullptr;
  backward_done_ = false;
  backward_done_time_ = st.backward_done_time;
  pending_allreduce_ = 0;
  iteration_start_ = st.iteration_start;
  iteration_times_ = st.iteration_times;
  run_start_ = st.run_start;
  // Memory the prefix allocated is already accounted in the restored
  // device states; adopt the bookkeeping so finish()/~Trainer release it.
  host_base_memory_ = st.host_base_memory;
  allocated_per_gpu_ = st.allocated_per_gpu;

  result_.checkpoint_time = st.checkpoint_time;
  result_.checkpoint_bytes = st.checkpoint_bytes;
  result_.restores = st.restores;
  result_.lost_iterations = st.lost_iterations;
  result_.restore_time = st.restore_time;

  // Re-derive the loss curve from the captured noise draws under THIS
  // trainer's planned total, which may differ from the prefix donor's.
  iters_per_epoch_sim_ = iterationsPerEpochFull();
  if (options_.max_iterations_per_epoch > 0) {
    iters_per_epoch_sim_ =
        std::min<std::int64_t>(iters_per_epoch_sim_, options_.max_iterations_per_epoch);
  }
  loss_noise_ = st.loss_noise;
  const double total =
      static_cast<double>(iters_per_epoch_sim_) * std::max(1, epochs_);
  const double base = (model_.domain == Domain::NLP) ? 3.2 : 6.2;
  const double floor = (model_.domain == Domain::NLP) ? 0.9 : 1.6;
  result_.loss_curve.clear();
  result_.loss_curve.reserve(loss_noise_.size());
  for (std::size_t i = 0; i < loss_noise_.size(); ++i) {
    const double progress = static_cast<double>(i + 1) / total;
    result_.loss_curve.push_back(
        floor + (base - floor) * std::exp(-3.0 * progress) + loss_noise_[i]);
  }
}

bool Trainer::abortTraining(const std::string& reason) {
  if (!started_ || finished_) return false;
  // Orphan in-flight continuations and close open trace spans, exactly as
  // a restore would — then finish with an honest error instead of resuming.
  ++gen_;
  while (track_depth_ > 0) endTrackSpan({{"aborted", 1}});
  finish(false, reason);
  return true;
}

void Trainer::finish(bool completed, const std::string& error) {
  finished_ = true;
  pipeline_->stop();
  if (host_base_memory_ > 0) {
    cpu_.freeMemory(host_base_memory_);
    host_base_memory_ = 0;
  }
  result_.completed = completed;
  result_.error = error;
  result_.epochs = epoch_;
  result_.iterations_run = iterations_done_;
  result_.iterations_full = iterationsPerEpochFull() * epochs_;
  result_.simulated_time = sim_.now() - run_start_;
  result_.data_stall_time = pipeline_->stallTime();

  // Steady-state statistics (skip warmup; pipeline priming distorts the
  // first iterations).
  if (!iteration_times_.empty()) {
    const std::size_t skip =
        iteration_times_.size() > kWarmupIterations * 2 ? kWarmupIterations : 0;
    double sum = 0.0;
    for (std::size_t i = skip; i < iteration_times_.size(); ++i) {
      sum += iteration_times_[i];
    }
    const auto n = static_cast<double>(iteration_times_.size() - skip);
    result_.mean_iteration_time = sum / n;
    const double global_batch =
        static_cast<double>(batch_per_gpu_) * static_cast<double>(gpus_.size()) *
        std::max(1, options_.gradient_accumulation_steps);
    result_.samples_per_second = global_batch / result_.mean_iteration_time;
  }
  // A full run checkpoints at every epoch boundary plus every
  // checkpoint_every_iters steps; capped simulations measured at least
  // the epoch-boundary ones, whose mean prices the rest.
  std::int64_t ckpts_simulated = epoch_;
  if (options_.checkpoint_every_iters > 0) {
    ckpts_simulated += iterations_done_ / options_.checkpoint_every_iters;
  }
  std::int64_t ckpts_full = options_.checkpoint_each_epoch ? epochs_ : 0;
  if (options_.checkpoint_every_iters > 0) {
    ckpts_full += result_.iterations_full / options_.checkpoint_every_iters;
  }
  const SimTime per_ckpt =
      result_.checkpoint_time / std::max<std::int64_t>(1, ckpts_simulated);
  result_.extrapolated_total_time =
      result_.mean_iteration_time * static_cast<double>(result_.iterations_full) +
      per_ckpt * static_cast<double>(ckpts_full);

  if (done_) {
    auto d = std::move(done_);
    done_ = nullptr;
    d(result_);
  }
}

}  // namespace composim::dl
