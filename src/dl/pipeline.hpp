// composim: training input pipeline (paper Fig 8).
//
// Models the PyTorch DataLoader path: batches are read from storage (as
// fabric flows, so a Falcon-attached NVMe pays the switch path and a NAS
// baseline pays the NIC), staged in host memory, preprocessed by CPU
// worker threads, and queued for the trainer. Prefetching keeps up to
// `prefetch_batches` batches in flight, which is what hides storage and
// CPU latency under GPU compute — until the storage device becomes the
// bottleneck (the Fig 15 effect).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "devices/host_cpu.hpp"
#include "devices/storage.hpp"
#include "dl/dataset.hpp"
#include "fabric/flow_network.hpp"

namespace composim::dl {

struct PipelineOptions {
  int prefetch_batches = 4;
  /// CPU preprocessing parallelism per batch (DataLoader workers).
  int preprocess_workers = 24;
  devices::AccessPattern pattern = devices::AccessPattern::Random;
};

class DataPipeline {
 public:
  DataPipeline(Simulator& sim, devices::HostCpu& cpu,
               devices::StorageDevice& storage, fabric::NodeId hostMemory,
               DatasetSpec dataset, int samplesPerBatch,
               PipelineOptions options = {});

  DataPipeline(const DataPipeline&) = delete;
  DataPipeline& operator=(const DataPipeline&) = delete;

  /// Begin prefetching. Idempotent.
  void start();
  /// Stop producing new batches (in-flight ones finish).
  void stop();

  /// Ask for the next ready batch; `ready` fires (possibly immediately on
  /// a later event) once a preprocessed batch is available and consumed.
  void requestBatch(std::function<void()> ready);

  std::int64_t batchesDelivered() const { return delivered_; }
  std::int64_t batchesProduced() const { return produced_; }
  /// Cumulative time consumers spent waiting on the pipeline.
  SimTime stallTime() const { return stall_time_; }
  Bytes hostStagingBytes() const { return staging_bytes_; }

  Bytes storageBytesPerBatch() const;
  Bytes deviceBytesPerBatch() const {
    return dataset_.device_bytes_per_sample * samples_per_batch_;
  }

  /// Quiescent-point snapshot: the prefetch queue must be full (no batch
  /// mid-read/preprocess) and no consumer waiting, so the state reduces to
  /// scalar counters. Staged host memory itself lives in HostCpu's
  /// accounting and is restored there.
  struct State {
    bool running = false;
    int ready = 0;
    std::int64_t delivered = 0;
    std::int64_t produced = 0;
    SimTime stall_time = 0.0;
    Bytes staging_bytes = 0;
  };

  State state() const {
    if (in_flight_ != 0 || !waiters_.empty()) {
      throw std::logic_error("DataPipeline::state: batches in flight");
    }
    return State{running_, ready_, delivered_, produced_, stall_time_,
                 staging_bytes_};
  }

  void restoreState(const State& st) {
    if (in_flight_ != 0 || !waiters_.empty()) {
      throw std::logic_error("DataPipeline::restoreState: batches in flight");
    }
    running_ = st.running;
    ready_ = st.ready;
    delivered_ = st.delivered;
    produced_ = st.produced;
    stall_time_ = st.stall_time;
    staging_bytes_ = st.staging_bytes;
  }

 private:
  void maybeProduce();
  void onBatchReady();
  void deliverIfPossible();

  Simulator& sim_;
  devices::HostCpu& cpu_;
  devices::StorageDevice& storage_;
  fabric::NodeId host_memory_;
  DatasetSpec dataset_;
  int samples_per_batch_;
  PipelineOptions options_;

  bool running_ = false;
  int in_flight_ = 0;      // batches being read/preprocessed
  int ready_ = 0;          // batches waiting for a consumer
  std::deque<std::pair<SimTime, std::function<void()>>> waiters_;
  std::int64_t delivered_ = 0;
  std::int64_t produced_ = 0;
  SimTime stall_time_ = 0.0;
  Bytes staging_bytes_ = 0;
};

}  // namespace composim::dl
