// composim: inference serving engine.
//
// The paper motivates YOLO by its real-time speed ("at least 45 frames/s")
// — this module lets the reproduction measure serving on a composed GPU:
// Poisson request arrivals, dynamic batching (take whatever is queued up
// to max_batch when the GPU frees), H2D input upload, a forward-only
// kernel, D2H result, and per-request latency percentiles.
#pragma once

#include <functional>
#include <vector>

#include "devices/gpu.hpp"
#include "dl/model.hpp"
#include "fabric/flow_network.hpp"
#include "sim/random.hpp"

namespace composim::dl {

struct InferenceOptions {
  int max_batch = 8;
  devices::Precision precision = devices::Precision::FP16;
  std::uint64_t seed = 7;
  /// Result payload per request (detections / logits), D2H.
  Bytes result_bytes = units::KB(16);
  /// Host-side cost per batch launch (request dispatch, tensor prep,
  /// Python serving stack) — the fixed cost dynamic batching amortizes.
  SimTime host_overhead_per_launch = units::milliseconds(2.0);
};

struct InferenceStats {
  int requests = 0;
  SimTime duration = 0.0;
  double throughput_rps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double mean_batch = 0.0;
};

class InferenceEngine {
 public:
  InferenceEngine(Simulator& sim, fabric::FlowNetwork& net, devices::Gpu& gpu,
                  fabric::NodeId hostMemory, ModelSpec model,
                  InferenceOptions options = {});

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Serve `numRequests` Poisson arrivals at `arrivalRps`; `done` fires
  /// with the aggregate statistics once the last response is delivered.
  void serve(double arrivalRps, int numRequests,
             std::function<void(const InferenceStats&)> done);

  /// Latency of one isolated request at batch size 1 (no queueing).
  SimTime unloadedLatency() const;

  /// Observer hook for external telemetry (the metrics collectors): fired
  /// with every request's latency in milliseconds as its response lands.
  /// The observer must outlive serving; pass nullptr to detach.
  void setLatencyObserver(std::function<void(double)> fn) {
    latency_observer_ = std::move(fn);
  }

 private:
  struct Request {
    SimTime arrival = 0.0;
  };

  void scheduleArrival();
  void maybeLaunchBatch();
  void finishIfDone();

  Simulator& sim_;
  fabric::FlowNetwork& net_;
  devices::Gpu& gpu_;
  fabric::NodeId host_memory_;
  ModelSpec model_;
  InferenceOptions options_;
  Rng rng_;

  double arrival_rps_ = 0.0;
  int to_arrive_ = 0;
  int completed_ = 0;
  int total_ = 0;
  bool gpu_busy_ = false;
  SimTime start_ = 0.0;
  std::vector<Request> queue_;
  std::vector<double> latencies_ms_;
  std::function<void(double)> latency_observer_;
  double batch_sum_ = 0.0;
  int batches_ = 0;
  std::function<void(const InferenceStats&)> done_;
};

}  // namespace composim::dl
