// composim: distributed training execution engine.
//
// Simulates the paper's training loop (Section V-B / Fig 8): prefetched
// input batches are copied host-to-device, each GPU executes forward and
// backward macro-kernels, gradients synchronize through the collectives
// library, and the optimizer steps. Supported software-level knobs match
// Section V-C.4:
//
//   * Strategy::DataParallel        - PyTorch DP: master GPU broadcasts
//     parameters every iteration, gradients reduce back to the master,
//     which also runs the optimizer. No compute/comm overlap.
//   * Strategy::DistributedDataParallel - PyTorch DDP: bucketed gradient
//     all-reduce overlapping backward, per-rank optimizer.
//   * Precision::FP16 / FP32        - mixed precision halves gradient and
//     activation bytes and uses the tensor-core rate.
//   * options.sharded               - ZeRO/FSDP-style state sharding:
//     optimizer+gradient+parameter state divided across ranks, enabling
//     larger batch sizes (BERT-large: 6 -> 10 in the paper).
//
// Checkpoints write the FP32 model through host memory to storage at every
// epoch boundary, producing the periodic GPU-utilization dips of Fig 9.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "collectives/communicator.hpp"
#include "devices/gpu.hpp"
#include "devices/host_cpu.hpp"
#include "devices/storage.hpp"
#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "dl/optimizer.hpp"
#include "dl/pipeline.hpp"
#include "sim/random.hpp"

namespace composim::dl {

enum class Strategy { DataParallel, DistributedDataParallel };

const char* toString(Strategy s);

struct TrainerOptions {
  Strategy strategy = Strategy::DistributedDataParallel;
  devices::Precision precision = devices::Precision::FP16;
  bool sharded = false;
  OptimizerModel optimizer{};  // Adam, as all the paper's benchmarks use
  int batch_per_gpu = 0;             // 0 = model.paper_batch_per_gpu
  int epochs = 0;                    // 0 = model.paper_epochs
  /// DDP gradient accumulation (no_sync micro-steps): each iteration runs
  /// this many forward+backward passes and synchronizes once, multiplying
  /// the effective batch without extra GPU memory.
  int gradient_accumulation_steps = 1;
  /// Cap simulated iterations per epoch (0 = full). Totals are
  /// extrapolated from the measured steady-state iteration time.
  int max_iterations_per_epoch = 0;
  int macro_groups = 12;             // execution granularity
  int gradient_buckets = 6;          // DDP all-reduce coalescing
  /// Fixed per-iteration host-side cost (Python, launches, optimizer
  /// bookkeeping). Shows up as the GPU idle gap between iterations.
  SimTime step_overhead = units::milliseconds(10.0);
  bool checkpoint_each_epoch = true;
  /// Also checkpoint every N iterations (HuggingFace-style save_steps);
  /// 0 disables. Counted in the full-run extrapolation even when the
  /// simulated epoch is capped below N iterations.
  std::int64_t checkpoint_every_iters = 500;
  collectives::Algorithm allreduce_algorithm = collectives::Algorithm::Auto;
  PipelineOptions pipeline;
  std::uint64_t seed = 42;
};

struct TrainingResult {
  bool completed = false;
  std::string error;                  // set when aborted (e.g. GPU OOM)
  int epochs = 0;
  std::int64_t iterations_run = 0;     // simulated iterations
  std::int64_t iterations_full = 0;    // a full training run's iterations
  SimTime simulated_time = 0.0;        // for the simulated iterations
  SimTime extrapolated_total_time = 0.0;  // scaled to the full run
  SimTime mean_iteration_time = 0.0;   // steady state (warmup skipped)
  double samples_per_second = 0.0;     // aggregate, steady state
  SimTime data_stall_time = 0.0;
  SimTime checkpoint_time = 0.0;
  Bytes checkpoint_bytes = 0;
  // Recovery accounting (requestRestore): checkpoint rollbacks performed,
  // completed iterations discarded to the replay window, and total time
  // spent in restore I/O (storage read + parameter broadcast).
  int restores = 0;
  std::int64_t lost_iterations = 0;
  SimTime restore_time = 0.0;
  std::vector<double> loss_curve;      // one entry per simulated iteration
};

class Trainer {
 public:
  Trainer(Simulator& sim, fabric::FlowNetwork& net, fabric::Topology& topo,
          std::vector<devices::Gpu*> gpus, devices::HostCpu& cpu,
          fabric::NodeId hostMemory, devices::StorageDevice& storage,
          ModelSpec model, DatasetSpec dataset, TrainerOptions options = {});
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Bytes of GPU memory one rank needs at the given per-GPU batch size.
  Bytes perGpuMemoryNeeded(int batchPerGpu) const;
  /// Largest per-GPU batch that fits in GPU memory (0 if even batch 1
  /// does not fit).
  int maxFeasibleBatchPerGpu() const;

  /// Start training; `done` fires with the result. GPU memory is
  /// allocated up front — infeasible batch sizes abort with an error
  /// result rather than throwing.
  void start(std::function<void(const TrainingResult&)> done);

  /// Arrange for training to pause after exactly `iterations` completed
  /// iterations (the warm-prefix boundary). Must be called before start().
  /// When the boundary is reached the trainer stops scheduling new work
  /// and `onPaused` fires; once every in-flight event drains the whole
  /// stack is at a quiescent point and can be snapshotted. Training
  /// continues only when resumeTraining() is called. The caller must pick
  /// a boundary that falls strictly inside an epoch and before any
  /// iteration-count checkpoint (see core::warmPrefixApplicable) so the
  /// paused continuation is exactly beginIteration().
  void pauseAfter(std::int64_t iterations, std::function<void()> onPaused);

  bool paused() const { return paused_; }

  /// Continue a paused run (cold path) or a restored one (fork path):
  /// identical call in both, so the tails stay byte-identical.
  void resumeTraining();

  /// Elastic re-composition (§III-B.3, devices re-allocated on the fly):
  /// request that training continue on `gpus` from the next epoch
  /// boundary. The swap happens after that epoch's checkpoint — model
  /// state travels through storage exactly as a real resize would. Keeps
  /// the per-GPU batch; the global batch (and iterations per epoch)
  /// change with the group size. Fails (returns false) if the new group
  /// is empty or training already finished.
  bool requestResize(std::vector<devices::Gpu*> gpus);

  /// Failure recovery (the composable test bed's raison d'être): abandon
  /// the current iteration immediately, rewind to the last checkpoint, and
  /// resume on `gpus` — the old gang with a spare swapped in, or a smaller
  /// gang for graceful degradation. Unlike requestResize this does NOT
  /// wait for an epoch boundary: in-flight kernels, flows and collectives
  /// are orphaned (their completions become no-ops), model state is
  /// re-read from storage over the fabric and broadcast to every new rank,
  /// and iterations completed since the checkpoint are replayed (counted
  /// in result.lost_iterations). `onResumed` fires when the first
  /// post-restore iteration begins. Fails (returns false) if training has
  /// not started, already finished, or `gpus` is empty.
  bool requestRestore(std::vector<devices::Gpu*> gpus,
                      std::function<void()> onResumed = nullptr);

  /// Abort a running training job with an honest error result: in-flight
  /// work is orphaned exactly as in requestRestore and the done callback
  /// fires with completed = false and `reason` as the error. The escape
  /// hatch for unrecoverable situations (e.g. every gang GPU lost with no
  /// spares) where hanging forever would be the alternative. Returns
  /// false if training has not started or already finished.
  bool abortTraining(const std::string& reason);

  /// Observer hooks for external telemetry (the metrics collectors): fired
  /// with the wall time of every completed iteration / durable checkpoint.
  /// The observer must outlive the run; pass nullptr to detach.
  void setIterationObserver(std::function<void(SimTime)> fn) {
    iteration_observer_ = std::move(fn);
  }
  void setCheckpointObserver(std::function<void(SimTime)> fn) {
    checkpoint_observer_ = std::move(fn);
  }

  /// Deterministic run state at a warm-prefix pause. Everything the tail
  /// depends on is plain data by construction (the pause point drains all
  /// in-flight events, so there are no closures to capture). The loss
  /// curve is stored as its raw noise draws: the curve itself mixes in the
  /// *total* planned iterations, which is a tail parameter, so a fork with
  /// different epochs recomputes the curve bit-identically from the same
  /// draws (see restoreRun).
  struct State {
    Rng::State rng;
    int micro_step = 0;
    int epoch = 0;
    std::int64_t iter_in_epoch = 0;
    std::int64_t iterations_done = 0;
    int ckpt_epoch = 0;
    std::int64_t ckpt_iter_in_epoch = 0;
    std::int64_t ckpt_iters_done = 0;
    bool input_ready = false;
    SimTime backward_done_time = 0.0;
    Bytes host_base_memory = 0;
    SimTime iteration_start = 0.0;
    std::vector<SimTime> iteration_times;
    Bytes allocated_per_gpu = 0;
    SimTime run_start = 0.0;
    SimTime checkpoint_time = 0.0;
    Bytes checkpoint_bytes = 0;
    int restores = 0;
    std::int64_t lost_iterations = 0;
    SimTime restore_time = 0.0;
    std::vector<double> loss_noise;
  };

  /// Capture the paused run state. Throws std::logic_error unless the
  /// trainer is paused at a warm-prefix boundary.
  State state() const;

  /// Adopt a captured prefix on a freshly constructed trainer (never
  /// started): the GPU/host memory the prefix allocated is already
  /// accounted by the device-level restores, so this re-binds the
  /// bookkeeping without re-allocating. Leaves the trainer paused;
  /// resumeTraining() continues the tail. `done` fires with the final
  /// result exactly as start()'s callback would.
  void restoreRun(const State& st, std::function<void(const TrainingResult&)> done);

  int batchPerGpu() const { return batch_per_gpu_; }
  int epochs() const { return epochs_; }
  std::int64_t iterationsPerEpochFull() const;
  std::int64_t iterationsCompleted() const { return iterations_done_; }
  int currentEpoch() const { return epoch_; }
  bool checkpointing() const { return checkpointing_; }
  int resizeCount() const { return resize_count_; }
  int restoreCount() const { return result_.restores; }
  std::int64_t lostIterations() const { return result_.lost_iterations; }
  bool finished() const { return finished_; }
  std::size_t groupSize() const { return gpus_.size(); }
  const std::vector<devices::Gpu*>& gpuGroup() const { return gpus_; }
  const ModelSpec& model() const { return model_; }
  collectives::Communicator& communicator() { return *comm_; }
  DataPipeline& pipeline() { return *pipeline_; }

 private:
  struct BucketPlan {
    Bytes bytes = 0;
    int last_group = 0;  // backward group index that completes the bucket
  };

  // Profiling: the trainer is a single sequential actor, so its phase
  // spans nest on one track named after the rank-0 GPU node.
  void beginTrackSpan(const char* name, ProfileArgs args = {});
  void endTrackSpan(ProfileArgs args = {});

  void beginIteration();
  void startMicroStep();
  void prefetchNextInput();
  void runForward(int group);
  void runBackwardDdp(int group);
  void runDataParallelIteration();
  void onComputeAndCommDone();
  void optimizerStep(std::function<void()> then);
  void endIteration();
  void checkpoint(std::function<void()> then);
  void applyPendingResize();
  /// Rebuild communicator + data pipeline for the current gpus_ (shared by
  /// resize and restore); the old ones are retired, not destroyed, because
  /// in-flight callbacks still reference them.
  void recomposeGang();
  void finish(bool completed, const std::string& error);

  Bytes gradBytes() const { return model_.gradientBytes(options_.precision); }
  Bytes h2dBytesPerGpu() const;

  Simulator& sim_;
  fabric::FlowNetwork& net_;
  fabric::Topology& topo_;
  std::vector<devices::Gpu*> gpus_;
  devices::HostCpu& cpu_;
  fabric::NodeId host_memory_;
  devices::StorageDevice& storage_;
  ModelSpec model_;
  DatasetSpec dataset_;
  TrainerOptions options_;

  std::string track_;  // profiler track, derived from the rank-0 GPU node
  std::unique_ptr<collectives::Communicator> comm_;
  std::unique_ptr<DataPipeline> pipeline_;
  std::vector<ModelSpec::MacroGroup> groups_;
  std::vector<BucketPlan> buckets_;
  Rng rng_;

  int batch_per_gpu_ = 0;
  int epochs_ = 0;
  std::int64_t iters_per_epoch_sim_ = 0;

  // run state
  std::function<void(const TrainingResult&)> done_;
  TrainingResult result_;
  int micro_step_ = 0;
  int epoch_ = 0;
  std::vector<devices::Gpu*> pending_resize_;
  bool resize_requested_ = false;
  int resize_count_ = 0;
  bool finished_ = false;
  /// Stopped pipelines from before a resize; kept alive until the trainer
  /// dies because their in-flight storage callbacks reference them.
  std::vector<std::unique_ptr<DataPipeline>> retired_pipelines_;
  /// Communicators from before a restore, kept alive for the same reason:
  /// orphaned collective flows still call back into them.
  std::vector<std::unique_ptr<collectives::Communicator>> retired_comms_;
  std::int64_t iter_in_epoch_ = 0;
  std::int64_t iterations_done_ = 0;
  bool checkpointing_ = false;
  bool started_ = false;
  // Warm-prefix pause: when armed, the end of iteration `pause_at_` stops
  // the training loop instead of beginning the next iteration.
  std::int64_t pause_at_ = 0;
  std::function<void()> on_paused_;
  bool paused_ = false;
  /// Per-iteration loss noise draws, kept alongside the loss curve so a
  /// fork can recompute the curve under a different planned total.
  std::vector<double> loss_noise_;
  /// Continuation generation: bumped by requestRestore so every callback
  /// captured before the restore (kernels, flows, collectives, scheduled
  /// events) returns without touching trainer state.
  std::uint64_t gen_ = 0;
  /// Open spans on track_ (so a mid-iteration restore can close them all
  /// and keep the trace B/E-balanced).
  int track_depth_ = 0;
  // Replay window: what the last durable checkpoint captured. Zero-state
  // (fresh initialization) counts as a checkpoint, so a restore before the
  // first write replays from iteration 0.
  int ckpt_epoch_ = 0;
  std::int64_t ckpt_iter_in_epoch_ = 0;
  std::int64_t ckpt_iters_done_ = 0;
  bool input_ready_ = false;               // H2D for current iteration done
  std::function<void()> input_waiter_;
  int pending_compute_ = 0;                // outstanding kernels/collectives
  bool backward_done_ = false;
  SimTime backward_done_time_ = 0.0;
  int pending_allreduce_ = 0;
  Bytes host_base_memory_ = 0;
  SimTime iteration_start_ = 0.0;
  std::vector<SimTime> iteration_times_;
  std::function<void(SimTime)> iteration_observer_;
  std::function<void(SimTime)> checkpoint_observer_;
  Bytes allocated_per_gpu_ = 0;
  SimTime run_start_ = 0.0;
};

}  // namespace composim::dl
