// composim: dataset descriptors for the input pipeline.
//
// Captures what the data loader does per sample: bytes fetched from
// storage (with read amplification for augmentations like YOLOv5's
// mosaic, which loads four images per training sample), CPU preprocessing
// cost (JPEG decode + augmentation for vision; tokenized features for
// SQuAD are nearly free), and the on-device tensor size.
#pragma once

#include <cstdint>
#include <string>

#include "sim/units.hpp"

namespace composim::dl {

struct DatasetSpec {
  std::string name;
  std::int64_t train_samples = 0;
  Bytes disk_bytes_per_sample = 0;
  double read_amplification = 1.0;   // storage bytes = disk_bytes * amp
  /// Fraction of reads that actually reach the storage device on a warm
  /// system (the rest hit the page cache). Sequentially-read, well-cached
  /// datasets approach 0; YOLOv5's 4x-amplified random mosaic pattern
  /// defeats readahead and stays near 1.
  double uncached_read_fraction = 1.0;
  SimTime cpu_preprocess_per_sample = 0.0;
  Bytes device_bytes_per_sample = 0;  // FP16 tensor shipped to the GPU

  Bytes storageBytesPerSample() const {
    return static_cast<Bytes>(static_cast<double>(disk_bytes_per_sample) *
                              read_amplification * uncached_read_fraction);
  }
  Bytes totalSizeOnDisk() const { return train_samples * disk_bytes_per_sample; }
};

namespace datasets {

DatasetSpec imagenet();
DatasetSpec coco();
DatasetSpec squadV11();

}  // namespace datasets
}  // namespace composim::dl
