// composim: layer-level deep-learning model description.
//
// Each benchmark is described layer by layer (parameters, forward FLOPs,
// activation bytes). The trainer aggregates layers into macro-groups for
// execution, so the zoo can be faithful to the architectures (ResNet-50's
// 25.6M parameters come out of the actual conv arithmetic, not a constant)
// without the simulator paying one event per layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "devices/gpu.hpp"
#include "sim/units.hpp"

namespace composim::dl {

enum class Domain { ComputerVision, NLP };

const char* toString(Domain d);

enum class LayerKind {
  Conv,
  DepthwiseConv,
  Linear,
  Attention,
  Norm,
  Pool,
  Embedding,
  Head,
};

struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::Conv;
  std::int64_t params = 0;
  Flops forward_flops = 0.0;       // per sample
  Bytes activation_bytes = 0;      // per sample, FP16 element size
};

struct ModelSpec {
  std::string name;
  Domain domain = Domain::ComputerVision;
  std::string dataset;             // Table II dataset column
  std::vector<LayerSpec> layers;
  int reported_depth = 0;          // the depth convention used in Table II

  /// Sustained fraction of peak FLOPs this model achieves end to end
  /// (operator mix: depthwise convs are terrible, big GEMMs are good).
  double fp16_efficiency = 0.25;
  double fp32_efficiency = 0.40;

  /// On-device input bytes per sample after preprocessing (FP16).
  Bytes input_bytes_per_sample = 0;

  /// Training-time activation memory is a multiple of the layer-output
  /// bytes (attention probabilities, dropout masks, autograd buffers);
  /// fitted so the paper's batch sizes are exactly the feasible ones.
  double activation_overhead_factor = 2.0;

  /// Paper batch size (Section V-C) and epochs used in the evaluation.
  int paper_batch_per_gpu = 1;
  int paper_epochs = 1;

  std::int64_t totalParams() const;
  Flops forwardFlopsPerSample() const;
  Bytes activationBytesPerSample() const;
  /// Layer-output bytes times the training-time overhead factor.
  Bytes trainingActivationBytesPerSample() const;
  int layerCount() const { return static_cast<int>(layers.size()); }

  /// Parameter bytes at the given element size (FP16=2, FP32=4).
  Bytes paramBytes(devices::Precision p) const;
  /// Gradient bytes exchanged per iteration (same sizing as params).
  Bytes gradientBytes(devices::Precision p) const;

  /// Partition layers into `groups` contiguous macro-groups of roughly
  /// equal forward FLOPs (execution granularity for the trainer).
  struct MacroGroup {
    std::int64_t params = 0;
    Flops forward_flops = 0.0;
    Bytes activation_bytes = 0;
  };
  std::vector<MacroGroup> partition(int groups) const;
};

}  // namespace composim::dl
