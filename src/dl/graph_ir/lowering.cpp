#include "dl/graph_ir/lowering.hpp"

namespace composim::dl::graph_ir {

namespace {

constexpr Bytes kFp16 = 2;

/// LayerKind for a custom op's "layer_kind" attr (zoo vocabulary).
bool layerKindFromString(const std::string& name, LayerKind* out) {
  if (name == "conv") *out = LayerKind::Conv;
  else if (name == "depthwise_conv") *out = LayerKind::DepthwiseConv;
  else if (name == "linear") *out = LayerKind::Linear;
  else if (name == "attention") *out = LayerKind::Attention;
  else if (name == "norm") *out = LayerKind::Norm;
  else if (name == "pool") *out = LayerKind::Pool;
  else if (name == "embedding") *out = LayerKind::Embedding;
  else if (name == "head") *out = LayerKind::Head;
  else return false;
  return true;
}

// The cost rules below are the zoo's layer helpers verbatim (same
// arithmetic, same evaluation order); keeping them in lockstep is what
// the golden equivalence tests in tests/graph_ir_test.cpp enforce.

LayerSpec lowerConv(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::Conv;
  l.params = a.kernel * a.kernel * a.in_channels * a.out_channels +
             (a.batchnorm ? 2 * a.out_channels : a.out_channels);
  l.forward_flops = 2.0 * static_cast<double>(a.kernel) * a.kernel *
                    a.in_channels * a.out_channels *
                    static_cast<double>(a.out_hw) * a.out_hw;
  l.activation_bytes =
      static_cast<Bytes>(a.out_channels) * a.out_hw * a.out_hw * kFp16;
  return l;
}

LayerSpec lowerDepthwiseConv(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::DepthwiseConv;
  l.params = a.kernel * a.kernel * a.channels + 2 * a.channels;
  l.forward_flops = 2.0 * static_cast<double>(a.kernel) * a.kernel *
                    a.channels * static_cast<double>(a.out_hw) * a.out_hw;
  l.activation_bytes =
      static_cast<Bytes>(a.channels) * a.out_hw * a.out_hw * kFp16;
  return l;
}

LayerSpec lowerLinear(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::Linear;
  l.params = a.in_features * a.out_features + a.out_features;
  l.forward_flops = 2.0 * static_cast<double>(a.in_features) *
                    static_cast<double>(a.out_features) *
                    static_cast<double>(a.tokens);
  l.activation_bytes = a.out_features * a.tokens * kFp16;
  return l;
}

LayerSpec lowerEmbedding(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::Embedding;
  l.params = (a.vocab + a.positions + a.types) * a.hidden + 2 * a.hidden;
  l.forward_flops = 2.0 * a.seq * a.hidden;  // lookup + add, negligible
  l.activation_bytes = static_cast<Bytes>(a.seq) * a.hidden * kFp16;
  return l;
}

LayerSpec lowerAttention(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::Attention;
  // QKV + output projections (with biases and LayerNorm), plus the
  // score/context batched GEMMs which carry FLOPs but no parameters.
  l.params = 4 * (a.hidden * a.hidden + a.hidden) + 2 * a.hidden;
  l.forward_flops =
      4.0 * 2.0 * a.seq * static_cast<double>(a.hidden) * a.hidden +
      2.0 * 2.0 * static_cast<double>(a.seq) * a.seq * a.hidden;
  l.activation_bytes = static_cast<Bytes>(a.seq) * a.hidden * kFp16 * 5;
  return l;
}

LayerSpec lowerTransformerFfn(const OpNode& op) {
  const auto& a = op.attrs;
  LayerSpec l;
  l.name = op.id;
  l.kind = LayerKind::Linear;
  l.params = a.hidden * a.ff + a.ff + a.ff * a.hidden + a.hidden + 2 * a.hidden;
  l.forward_flops = 2.0 * 2.0 * a.seq * static_cast<double>(a.hidden) * a.ff;
  l.activation_bytes = static_cast<Bytes>(a.seq) * (a.ff + a.hidden) * kFp16;
  return l;
}

}  // namespace

Status lower(const Graph& graph, ModelSpec* out) {
  if (Status s = graph.validate(); !s) return s;

  ModelSpec m;
  m.name = graph.meta.name;
  if (graph.meta.domain == "vision") {
    m.domain = Domain::ComputerVision;
  } else if (graph.meta.domain == "nlp") {
    m.domain = Domain::NLP;
  } else {
    return Status::invalidArgument("graph '" + graph.meta.name +
                                   "': unknown domain '" + graph.meta.domain +
                                   "' (want \"vision\" or \"nlp\")");
  }
  m.dataset = graph.meta.dataset;
  m.reported_depth = graph.meta.reported_depth;
  m.fp16_efficiency = graph.meta.fp16_efficiency;
  m.fp32_efficiency = graph.meta.fp32_efficiency;
  m.input_bytes_per_sample = graph.meta.input_bytes_per_sample;
  m.activation_overhead_factor = graph.meta.activation_overhead_factor;
  m.paper_batch_per_gpu = graph.meta.batch_per_gpu;
  m.paper_epochs = graph.meta.epochs;

  std::vector<std::size_t> order;
  if (Status s = graph.topologicalOrder(&order); !s) return s;

  for (const std::size_t i : order) {
    const OpNode& op = graph.ops[i];
    switch (op.kind) {
      case OpKind::Conv2d:
        m.layers.push_back(lowerConv(op));
        break;
      case OpKind::DepthwiseConv2d:
        m.layers.push_back(lowerDepthwiseConv(op));
        break;
      case OpKind::Linear:
        m.layers.push_back(lowerLinear(op));
        break;
      case OpKind::Embedding:
        m.layers.push_back(lowerEmbedding(op));
        break;
      case OpKind::Attention:
        m.layers.push_back(lowerAttention(op));
        break;
      case OpKind::TransformerFfn:
        m.layers.push_back(lowerTransformerFfn(op));
        break;
      case OpKind::Custom: {
        LayerSpec l;
        l.name = op.id;
        if (!layerKindFromString(op.attrs.layer_kind, &l.kind)) {
          return Status::invalidArgument(
              "op '" + op.id + "': unknown custom layer_kind '" +
              op.attrs.layer_kind + "'");
        }
        l.params = op.attrs.params;
        l.forward_flops = op.attrs.flops;
        l.activation_bytes = op.attrs.activation_bytes;
        m.layers.push_back(l);
        break;
      }
      default:
        break;  // structural / collective ops carry no cost
    }
  }

  *out = std::move(m);
  return Status::success();
}

}  // namespace composim::dl::graph_ir
