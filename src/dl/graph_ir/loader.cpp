#include "dl/graph_ir/loader.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "sim/units.hpp"

namespace composim::dl::graph_ir {

namespace {

Status parseShape(const falcon::Json& j, TensorShape* out) {
  out->dims.clear();
  for (const auto& d : j.asArray()) {
    out->dims.push_back(d.asInt());
  }
  return Status::success();
}

/// Per-op "attrs" object; every key must be known (typos in hand-written
/// graphs should fail loudly, not silently default).
Status parseAttrs(const std::string& op_id, const falcon::Json& j,
                  OpAttrs* a) {
  for (const auto& [key, value] : j.asObject()) {
    if (key == "in_channels") a->in_channels = value.asInt();
    else if (key == "out_channels") a->out_channels = value.asInt();
    else if (key == "channels") a->channels = value.asInt();
    else if (key == "kernel") a->kernel = value.asInt();
    else if (key == "out_hw") a->out_hw = value.asInt();
    else if (key == "batchnorm") a->batchnorm = value.asBool();
    else if (key == "in") a->in_features = value.asInt();
    else if (key == "out") a->out_features = value.asInt();
    else if (key == "tokens") a->tokens = value.asInt();
    else if (key == "vocab") a->vocab = value.asInt();
    else if (key == "positions") a->positions = value.asInt();
    else if (key == "types") a->types = value.asInt();
    else if (key == "hidden") a->hidden = value.asInt();
    else if (key == "seq") a->seq = value.asInt();
    else if (key == "ff") a->ff = value.asInt();
    else if (key == "params") a->params = value.asInt();
    else if (key == "flops") a->flops = value.asDouble();
    else if (key == "activation_bytes") a->activation_bytes = value.asInt();
    else if (key == "layer_kind") a->layer_kind = value.asString();
    else if (key == "tensor") a->tensor = value.asString();
    else {
      return Status::invalidArgument("op '" + op_id +
                                     "': unknown attr '" + key + "'");
    }
  }
  return Status::success();
}

Status parseInlineDataset(const falcon::Json& j, DatasetSpec* d) {
  *d = DatasetSpec{};
  d->name = j.at("name").asString();
  d->train_samples = j.at("train_samples").asInt();
  if (const auto* v = j.find("disk_bytes_per_sample")) {
    d->disk_bytes_per_sample = v->asInt();
  }
  if (const auto* v = j.find("read_amplification")) {
    d->read_amplification = v->asDouble();
  }
  if (const auto* v = j.find("uncached_read_fraction")) {
    d->uncached_read_fraction = v->asDouble();
  }
  if (const auto* v = j.find("cpu_preprocess_per_sample_s")) {
    d->cpu_preprocess_per_sample = v->asDouble();
  }
  if (const auto* v = j.find("device_bytes_per_sample")) {
    d->device_bytes_per_sample = v->asInt();
  }
  if (d->name.empty() || d->train_samples <= 0) {
    return Status::invalidArgument(
        "inline dataset needs a name and train_samples > 0");
  }
  return Status::success();
}

Status parseChecked(const falcon::Json& doc, Graph* out) {
  const auto* format = doc.find("format");
  if (!format || !format->isString() || format->asString() != kFormatName) {
    return Status::invalidArgument(
        std::string("not a graph-IR document (want format=\"") + kFormatName +
        "\")");
  }
  const std::int64_t version = doc.at("version").asInt();
  if (version != kFormatVersion) {
    return Status::invalidArgument(
        "unsupported graph-IR version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }

  Graph g;
  const falcon::Json& model = doc.at("model");
  g.meta.name = model.at("name").asString();
  if (const auto* v = model.find("domain")) g.meta.domain = v->asString();
  if (const auto* v = model.find("dataset")) {
    if (v->isObject()) {
      DatasetSpec d;
      if (Status s = parseInlineDataset(*v, &d); !s) return s;
      g.meta.dataset = d.name;
      g.inline_dataset = std::move(d);
    } else {
      g.meta.dataset = v->asString();
    }
  }
  if (const auto* v = model.find("reported_depth")) {
    g.meta.reported_depth = static_cast<int>(v->asInt());
  }
  if (const auto* v = model.find("fp16_efficiency")) {
    g.meta.fp16_efficiency = v->asDouble();
  }
  if (const auto* v = model.find("fp32_efficiency")) {
    g.meta.fp32_efficiency = v->asDouble();
  }
  if (const auto* v = model.find("input_bytes_per_sample")) {
    g.meta.input_bytes_per_sample = v->asInt();
  }
  if (const auto* v = model.find("activation_overhead_factor")) {
    g.meta.activation_overhead_factor = v->asDouble();
  }
  if (const auto* v = model.find("batch_per_gpu")) {
    g.meta.batch_per_gpu = static_cast<int>(v->asInt());
  }
  if (const auto* v = model.find("epochs")) {
    g.meta.epochs = static_cast<int>(v->asInt());
  }

  for (const auto& oj : doc.at("ops").asArray()) {
    OpNode op;
    op.id = oj.at("id").asString();
    const std::string& kind = oj.at("kind").asString();
    if (!opKindFromString(kind, &op.kind)) {
      return Status::invalidArgument("op '" + op.id + "': unknown op kind '" +
                                     kind + "'");
    }
    if (const auto* v = oj.find("inputs")) {
      for (const auto& in : v->asArray()) op.inputs.push_back(in.asString());
    }
    if (const auto* v = oj.find("shape")) {
      if (Status s = parseShape(*v, &op.shape); !s) return s;
    }
    if (const auto* v = oj.find("attrs")) {
      if (Status s = parseAttrs(op.id, *v, &op.attrs); !s) return s;
    }
    g.ops.push_back(std::move(op));
  }

  if (Status s = g.validate(); !s) return s;
  *out = std::move(g);
  return Status::success();
}

}  // namespace

Status parseGraph(const falcon::Json& doc, Graph* out) {
  try {
    return parseChecked(doc, out);
  } catch (const falcon::JsonError& e) {
    return Status::invalidArgument(std::string("graph-IR schema: ") +
                                   e.what());
  }
}

Status loadGraphFile(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::notFound("cannot open graph file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  falcon::Json doc;
  try {
    doc = falcon::Json::parse(buf.str());
  } catch (const falcon::JsonError& e) {
    return Status::invalidArgument("graph file '" + path + "': " + e.what());
  }
  if (Status s = parseGraph(doc, out); !s) {
    s.detail = "graph file '" + path + "': " + s.detail;
    return s;
  }
  return Status::success();
}

namespace {

void setIf(falcon::Json* attrs, const char* key, std::int64_t v) {
  if (v != 0) attrs->set(key, v);
}

falcon::Json attrsToJson(const OpNode& op) {
  const OpAttrs& a = op.attrs;
  auto j = falcon::Json::object();
  switch (op.kind) {
    case OpKind::Conv2d:
      j.set("in_channels", a.in_channels);
      j.set("out_channels", a.out_channels);
      j.set("kernel", a.kernel);
      j.set("out_hw", a.out_hw);
      if (!a.batchnorm) j.set("batchnorm", false);
      break;
    case OpKind::DepthwiseConv2d:
      j.set("channels", a.channels);
      j.set("kernel", a.kernel);
      j.set("out_hw", a.out_hw);
      break;
    case OpKind::Linear:
      j.set("in", a.in_features);
      j.set("out", a.out_features);
      if (a.tokens != 1) j.set("tokens", a.tokens);
      break;
    case OpKind::Embedding:
      j.set("vocab", a.vocab);
      j.set("positions", a.positions);
      j.set("types", a.types);
      j.set("hidden", a.hidden);
      j.set("seq", a.seq);
      break;
    case OpKind::Attention:
      j.set("hidden", a.hidden);
      j.set("seq", a.seq);
      break;
    case OpKind::TransformerFfn:
      j.set("hidden", a.hidden);
      j.set("ff", a.ff);
      j.set("seq", a.seq);
      break;
    case OpKind::Custom:
      j.set("params", a.params);
      j.set("flops", a.flops);
      j.set("activation_bytes", a.activation_bytes);
      j.set("layer_kind", a.layer_kind);
      break;
    case OpKind::MaxPool2d:
      setIf(&j, "kernel", a.kernel);
      break;
    case OpKind::AllReduce:
    case OpKind::AllGather:
    case OpKind::ReduceScatter:
    case OpKind::Broadcast:
      if (!a.tensor.empty()) j.set("tensor", a.tensor);
      break;
    default:
      break;
  }
  return j;
}

}  // namespace

// GCC 12 flags the inlined variant move inside Json::push as
// maybe-uninitialized (false positive, GCC PR 105562); the values pushed
// here are all freshly constructed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

falcon::Json toJson(const Graph& graph) {
  auto doc = falcon::Json::object();
  doc.set("format", kFormatName);
  doc.set("version", static_cast<std::int64_t>(kFormatVersion));

  auto model = falcon::Json::object();
  const GraphMeta& m = graph.meta;
  model.set("name", m.name);
  model.set("domain", m.domain);
  if (graph.inline_dataset) {
    const DatasetSpec& d = *graph.inline_dataset;
    auto dj = falcon::Json::object();
    dj.set("name", d.name);
    dj.set("train_samples", d.train_samples);
    dj.set("disk_bytes_per_sample", d.disk_bytes_per_sample);
    dj.set("read_amplification", d.read_amplification);
    dj.set("uncached_read_fraction", d.uncached_read_fraction);
    dj.set("cpu_preprocess_per_sample_s", d.cpu_preprocess_per_sample);
    dj.set("device_bytes_per_sample", d.device_bytes_per_sample);
    model.set("dataset", std::move(dj));
  } else {
    model.set("dataset", m.dataset);
  }
  model.set("reported_depth", static_cast<std::int64_t>(m.reported_depth));
  model.set("fp16_efficiency", m.fp16_efficiency);
  model.set("fp32_efficiency", m.fp32_efficiency);
  model.set("input_bytes_per_sample", m.input_bytes_per_sample);
  model.set("activation_overhead_factor", m.activation_overhead_factor);
  model.set("batch_per_gpu", static_cast<std::int64_t>(m.batch_per_gpu));
  model.set("epochs", static_cast<std::int64_t>(m.epochs));
  doc.set("model", std::move(model));

  auto ops = falcon::Json::array();
  for (const OpNode& op : graph.ops) {
    auto oj = falcon::Json::object();
    oj.set("id", op.id);
    oj.set("kind", toString(op.kind));
    if (!op.inputs.empty()) {
      auto inputs = falcon::Json::array();
      for (const std::string& in : op.inputs) inputs.push(in);
      oj.set("inputs", std::move(inputs));
    }
    if (op.shape.rank() > 0) {
      auto shape = falcon::Json::array();
      for (const std::int64_t d : op.shape.dims) shape.push(d);
      oj.set("shape", std::move(shape));
    }
    falcon::Json attrs = attrsToJson(op);
    if (!attrs.asObject().empty()) oj.set("attrs", std::move(attrs));
    ops.push(std::move(oj));
  }
  doc.set("ops", std::move(ops));
  return doc;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::string graphFileSlug(const std::string& model_name) {
  std::string slug;
  slug.reserve(model_name.size());
  bool pending_sep = false;
  for (const char c : model_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !slug.empty()) slug += '_';
      pending_sep = false;
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return slug;
}

}  // namespace composim::dl::graph_ir
