#include "dl/graph_ir/builders.hpp"

#include <string>

namespace composim::dl::graph_ir::builders {

namespace {

constexpr Bytes kFp16 = 2;

/// Append-an-op helpers; each returns the op id so callers can wire edges.

std::string inputOp(Graph& g, TensorShape shape) {
  OpNode op;
  op.id = "input";
  op.kind = OpKind::Input;
  op.shape = std::move(shape);
  g.ops.push_back(std::move(op));
  return g.ops.back().id;
}

std::string conv(Graph& g, const std::string& id, const std::string& in,
                 std::int64_t cin, std::int64_t cout, std::int64_t k,
                 std::int64_t out_hw, bool batchnorm = true) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::Conv2d;
  if (!in.empty()) op.inputs = {in};
  op.shape.dims = {cout, out_hw, out_hw};
  op.attrs.in_channels = cin;
  op.attrs.out_channels = cout;
  op.attrs.kernel = k;
  op.attrs.out_hw = out_hw;
  op.attrs.batchnorm = batchnorm;
  g.ops.push_back(std::move(op));
  return id;
}

std::string dwConv(Graph& g, const std::string& id, const std::string& in,
                   std::int64_t channels, std::int64_t k, std::int64_t out_hw) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::DepthwiseConv2d;
  op.inputs = {in};
  op.shape.dims = {channels, out_hw, out_hw};
  op.attrs.channels = channels;
  op.attrs.kernel = k;
  op.attrs.out_hw = out_hw;
  g.ops.push_back(std::move(op));
  return id;
}

std::string linear(Graph& g, const std::string& id, const std::string& in,
                   std::int64_t in_features, std::int64_t out_features,
                   std::int64_t tokens = 1) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::Linear;
  op.inputs = {in};
  op.shape.dims = tokens == 1 ? std::vector<std::int64_t>{out_features}
                              : std::vector<std::int64_t>{tokens, out_features};
  op.attrs.in_features = in_features;
  op.attrs.out_features = out_features;
  op.attrs.tokens = tokens;
  g.ops.push_back(std::move(op));
  return id;
}

std::string add(Graph& g, const std::string& id,
                std::vector<std::string> inputs, TensorShape shape) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::Add;
  op.inputs = std::move(inputs);
  op.shape = std::move(shape);
  g.ops.push_back(std::move(op));
  return id;
}

std::string concat(Graph& g, const std::string& id,
                   std::vector<std::string> inputs, TensorShape shape) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::Concat;
  op.inputs = std::move(inputs);
  op.shape = std::move(shape);
  g.ops.push_back(std::move(op));
  return id;
}

std::string maxpool(Graph& g, const std::string& id, const std::string& in,
                    std::int64_t channels, std::int64_t k, std::int64_t hw) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::MaxPool2d;
  op.inputs = {in};
  op.shape.dims = {channels, hw, hw};
  op.attrs.kernel = k;
  g.ops.push_back(std::move(op));
  return id;
}

std::string globalPool(Graph& g, const std::string& id, const std::string& in,
                       std::int64_t channels) {
  OpNode op;
  op.id = id;
  op.kind = OpKind::GlobalAvgPool;
  op.inputs = {in};
  op.shape.dims = {channels};
  g.ops.push_back(std::move(op));
  return id;
}

void gradAllReduce(Graph& g, std::vector<std::string> outputs) {
  OpNode op;
  op.id = "grad.allreduce";
  op.kind = OpKind::AllReduce;
  op.inputs = std::move(outputs);
  op.attrs.tensor = "gradients";
  g.ops.push_back(std::move(op));
}

}  // namespace

Graph resnet50() {
  Graph g;
  g.meta.name = "ResNet-50";
  g.meta.domain = "vision";
  g.meta.dataset = "ImageNet";
  g.meta.reported_depth = 50;
  g.meta.fp16_efficiency = 0.205;
  g.meta.fp32_efficiency = 0.33;
  g.meta.input_bytes_per_sample = 3LL * 224 * 224 * kFp16;
  g.meta.batch_per_gpu = 128;
  g.meta.epochs = 20;

  std::string prev = inputOp(g, {{3, 224, 224}});
  prev = conv(g, "stem.conv7x7", prev, 3, 64, 7, 112);
  prev = maxpool(g, "stem.maxpool", prev, 64, 3, 56);

  // Bottleneck stages: (blocks, mid, out, spatial after the stage stride).
  struct Stage { int blocks, mid, out, hw; };
  const Stage stages[] = {{3, 64, 256, 56}, {4, 128, 512, 28},
                          {6, 256, 1024, 14}, {3, 512, 2048, 7}};
  std::int64_t cin = 64;
  for (int s = 0; s < 4; ++s) {
    const auto& st = stages[s];
    for (int b = 0; b < st.blocks; ++b) {
      const std::string base =
          "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      const std::string c1 = conv(g, base + ".conv1", prev, cin, st.mid, 1, st.hw);
      const std::string c2 = conv(g, base + ".conv2", c1, st.mid, st.mid, 3, st.hw);
      const std::string c3 = conv(g, base + ".conv3", c2, st.mid, st.out, 1, st.hw);
      std::string residual = prev;
      if (b == 0) {
        residual = conv(g, base + ".downsample", prev, cin, st.out, 1, st.hw);
      }
      prev = add(g, base + ".add", {c3, residual}, {{st.out, st.hw, st.hw}});
      cin = st.out;
    }
  }
  prev = globalPool(g, "avgpool", prev, 2048);
  prev = linear(g, "fc", prev, 2048, 1000);
  gradAllReduce(g, {prev});
  return g;
}

Graph mobilenetV2() {
  Graph g;
  g.meta.name = "MobileNetV2";
  g.meta.domain = "vision";
  g.meta.dataset = "ImageNet";
  g.meta.reported_depth = 53;
  g.meta.fp16_efficiency = 0.019;  // depthwise convs barely touch tensor cores
  g.meta.fp32_efficiency = 0.055;
  g.meta.input_bytes_per_sample = 3LL * 224 * 224 * kFp16;
  g.meta.batch_per_gpu = 64;
  g.meta.epochs = 10;

  std::string prev = inputOp(g, {{3, 224, 224}});
  prev = conv(g, "stem", prev, 3, 32, 3, 112);

  // Inverted residual config: (expansion t, output c, repeats n, stride s).
  struct Block { int t, c, n, s; };
  const Block cfg[] = {{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2},
                       {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2},
                       {6, 320, 1, 1}};
  std::int64_t cin = 32;
  std::int64_t hw = 112;
  int idx = 0;
  for (const auto& blk : cfg) {
    for (int r = 0; r < blk.n; ++r) {
      const int stride = (r == 0) ? blk.s : 1;
      const std::int64_t out_hw = (stride == 2) ? hw / 2 : hw;
      const std::int64_t expanded = cin * blk.t;
      const std::string base = "ir" + std::to_string(idx++);
      std::string x = prev;
      if (blk.t != 1) {
        x = conv(g, base + ".expand", x, cin, expanded, 1, hw);
      }
      x = dwConv(g, base + ".dw", x, expanded, 3, out_hw);
      x = conv(g, base + ".project", x, expanded, blk.c, 1, out_hw);
      if (stride == 1 && cin == blk.c) {
        x = add(g, base + ".add", {x, prev}, {{blk.c, out_hw, out_hw}});
      }
      prev = x;
      cin = blk.c;
      hw = out_hw;
    }
  }
  prev = conv(g, "head", prev, cin, 1280, 1, hw);
  prev = globalPool(g, "avgpool", prev, 1280);
  prev = linear(g, "classifier", prev, 1280, 1000);
  gradAllReduce(g, {prev});
  return g;
}

namespace {

/// YOLOv5 C3 module: split (cv1/cv2), n bottlenecks at half width on the
/// cv1 branch, concat, merge (cv3). Returns the cv3 id; `tap` (when
/// non-null) receives the bottleneck-chain tail — the half-width feature
/// the detect head and downsample path consume.
std::string appendC3(Graph& g, const std::string& base, const std::string& in,
                     std::int64_t channels, int n, std::int64_t hw,
                     std::string* tap = nullptr) {
  const std::int64_t half = channels / 2;
  const std::string cv1 = conv(g, base + ".cv1", in, channels, half, 1, hw);
  const std::string cv2 = conv(g, base + ".cv2", in, channels, half, 1, hw);
  std::string chain = cv1;
  for (int i = 0; i < n; ++i) {
    const std::string b = base + ".m" + std::to_string(i);
    const std::string m1 = conv(g, b + ".cv1", chain, half, half, 1, hw);
    chain = conv(g, b + ".cv2", m1, half, half, 3, hw);
  }
  if (tap) *tap = chain;
  const std::string cat =
      concat(g, base + ".cat", {chain, cv2}, {{channels, hw, hw}});
  return conv(g, base + ".cv3", cat, channels, channels, 1, hw);
}

}  // namespace

Graph yolov5L() {
  Graph g;
  g.meta.name = "YOLOv5-L";
  g.meta.domain = "vision";
  g.meta.dataset = "Coco";
  g.meta.reported_depth = 392;  // torch module count reported by ultralytics
  g.meta.fp16_efficiency = 0.131;
  g.meta.fp32_efficiency = 0.25;
  g.meta.input_bytes_per_sample = 3LL * 640 * 640 * kFp16;
  g.meta.batch_per_gpu = 11;  // paper batch 88 across 8 GPUs
  g.meta.epochs = 20;

  // Backbone (width_multiple=1.0, depth_multiple=1.0; input 640).
  const std::string in = inputOp(g, {{3, 640, 640}});
  const std::string stem = conv(g, "stem", in, 3, 64, 6, 320);
  const std::string d1 = conv(g, "down1", stem, 64, 128, 3, 160);
  const std::string c3_1 = appendC3(g, "c3_1", d1, 128, 3, 160);
  const std::string d2 = conv(g, "down2", c3_1, 128, 256, 3, 80);
  const std::string c3_2 = appendC3(g, "c3_2", d2, 256, 6, 80);
  const std::string d3 = conv(g, "down3", c3_2, 256, 512, 3, 40);
  const std::string c3_3 = appendC3(g, "c3_3", d3, 512, 9, 40);
  const std::string d4 = conv(g, "down4", c3_3, 512, 1024, 3, 20);
  const std::string c3_4 = appendC3(g, "c3_4", d4, 1024, 3, 20);

  // SPPF: 1x1 reduce, three chained 5x5 max-pools, concat all four, merge.
  const std::string sp1 = conv(g, "sppf.cv1", c3_4, 1024, 512, 1, 20);
  const std::string m1 = maxpool(g, "sppf.m1", sp1, 512, 5, 20);
  const std::string m2 = maxpool(g, "sppf.m2", m1, 512, 5, 20);
  const std::string m3 = maxpool(g, "sppf.m3", m2, 512, 5, 20);
  const std::string spc =
      concat(g, "sppf.cat", {sp1, m1, m2, m3}, {{2048, 20, 20}});
  const std::string sp2 = conv(g, "sppf.cv2", spc, 2048, 1024, 1, 20);

  // PANet head: top-down then bottom-up with C3 blocks (the top-down C3s
  // run at the reduced lateral width, as in the ultralytics config; the
  // upsamples are implicit in the lateral convs).
  const std::string lat1 = conv(g, "head.lat1", sp2, 1024, 512, 1, 20);
  const std::string td1 = appendC3(g, "head.c3_td1", lat1, 512, 3, 40);
  const std::string lat2 = conv(g, "head.lat2", td1, 512, 256, 1, 40);
  const std::string cat_td2 =
      concat(g, "head.cat_td2", {lat2, c3_2}, {{512, 80, 80}});
  std::string p3;  // half-width P3 feature out of the td2 bottleneck chain
  appendC3(g, "head.c3_td2", cat_td2, 512, 3, 80, &p3);
  const std::string bd1 = conv(g, "head.down1", p3, 256, 256, 3, 40);
  const std::string cat_bu1 =
      concat(g, "head.cat_bu1", {bd1, lat2}, {{512, 40, 40}});
  const std::string bu1 = appendC3(g, "head.c3_bu1", cat_bu1, 512, 3, 40);
  const std::string bd2 = conv(g, "head.down2", bu1, 512, 512, 3, 20);
  const std::string cat_bu2 =
      concat(g, "head.cat_bu2", {bd2, lat1}, {{1024, 20, 20}});
  const std::string bu2 = appendC3(g, "head.c3_bu2", cat_bu2, 1024, 3, 20);

  // Detect heads at the three scales: 3 anchors x (5 + 80 classes).
  const std::string dp3 =
      conv(g, "detect.p3", p3, 256, 255, 1, 80, /*batchnorm=*/false);
  const std::string dp4 =
      conv(g, "detect.p4", bu1, 512, 255, 1, 40, /*batchnorm=*/false);
  const std::string dp5 =
      conv(g, "detect.p5", bu2, 1024, 255, 1, 20, /*batchnorm=*/false);
  gradAllReduce(g, {dp3, dp4, dp5});
  return g;
}

namespace {

/// Generic transformer-encoder graph shared by BERT and the extension
/// models: embeddings + L x (attention, FFN) + pooler/QA head.
Graph transformer(const std::string& name, std::int64_t hidden, int layers,
                  std::int64_t ff, std::int64_t seq, std::int64_t vocab,
                  int reportedDepth, double eff16, double eff32, int batch) {
  Graph g;
  g.meta.name = name;
  g.meta.domain = "nlp";
  g.meta.dataset = "SQuAD v1.1";
  g.meta.reported_depth = reportedDepth;
  g.meta.fp16_efficiency = eff16;
  g.meta.fp32_efficiency = eff32;
  // Input: token ids + attention mask + segment ids (int32).
  g.meta.input_bytes_per_sample = 3LL * seq * 4;
  g.meta.activation_overhead_factor = 7.76;
  g.meta.batch_per_gpu = batch;
  g.meta.epochs = 2;

  std::string prev = inputOp(g, {{seq}});
  {
    OpNode emb;
    emb.id = "embeddings";
    emb.kind = OpKind::Embedding;
    emb.inputs = {prev};
    emb.shape.dims = {seq, hidden};
    emb.attrs.vocab = vocab;
    emb.attrs.positions = 512;
    emb.attrs.types = 2;
    emb.attrs.hidden = hidden;
    emb.attrs.seq = seq;
    g.ops.push_back(std::move(emb));
    prev = "embeddings";
  }

  for (int i = 0; i < layers; ++i) {
    const std::string base = "encoder." + std::to_string(i);
    OpNode attn;
    attn.id = base + ".attention";
    attn.kind = OpKind::Attention;
    attn.inputs = {prev};
    attn.shape.dims = {seq, hidden};
    attn.attrs.hidden = hidden;
    attn.attrs.seq = seq;
    g.ops.push_back(std::move(attn));

    OpNode ffn;
    ffn.id = base + ".ffn";
    ffn.kind = OpKind::TransformerFfn;
    ffn.inputs = {base + ".attention"};
    ffn.shape.dims = {seq, hidden};
    ffn.attrs.hidden = hidden;
    ffn.attrs.ff = ff;
    ffn.attrs.seq = seq;
    g.ops.push_back(std::move(ffn));
    prev = base + ".ffn";
  }

  // Pooler + SQuAD span-prediction head.
  const std::string pooler = linear(g, "pooler", prev, hidden, hidden);
  const std::string qa = linear(g, "qa_head", prev, hidden, 2, seq);
  gradAllReduce(g, {pooler, qa});
  return g;
}

Graph bert(const std::string& name, std::int64_t hidden, int layers,
           std::int64_t ff, int reportedDepth, double eff16, double eff32,
           int batch) {
  // Paper settings: max sequence length 384, WordPiece vocab.
  return transformer(name, hidden, layers, ff, 384, 30522, reportedDepth,
                     eff16, eff32, batch);
}

}  // namespace

Graph bertBase() {
  return bert("BERT", 768, 12, 3072, 12, 0.253, 0.42, /*batch=*/12);
}

Graph bertLarge() {
  return bert("BERT-L", 1024, 24, 4096, 24, 0.284, 0.45, /*batch=*/6);
}

Graph gpt2Medium() {
  // BPE vocab 50257, context 1024 in the original; trained here at the
  // SQuAD-style 384-token window so datasets are comparable.
  return transformer("GPT-2-medium", 1024, 24, 4096, 384, 50257, 24, 0.30,
                     0.45, /*batch=*/4);
}

Graph vitBase16() {
  // 196 patch tokens + [CLS]; the "vocabulary" is the patch-embedding
  // projection (16*16*3 inputs), carried as a custom op with the explicit
  // projection arithmetic, ahead of a tiny-vocab embedding table.
  Graph g = transformer("ViT-B/16", 768, 12, 3072, 197, 2, 12, 0.30, 0.45,
                        /*batch=*/64);
  g.meta.domain = "vision";
  g.meta.dataset = "ImageNet";
  g.meta.input_bytes_per_sample = 3LL * 224 * 224 * kFp16;
  g.meta.activation_overhead_factor = 5.0;

  // Splice the patch projection between the image input and the
  // embeddings: input becomes an image, embeddings consume patch tokens.
  OpNode patch;
  patch.id = "patch_embed";
  patch.kind = OpKind::Custom;
  patch.inputs = {"input"};
  patch.shape.dims = {197, 768};
  patch.attrs.params = 16LL * 16 * 3 * 768 + 768;
  patch.attrs.flops = 2.0 * 197 * 16 * 16 * 3 * 768;
  patch.attrs.activation_bytes = 197LL * 768 * 2;
  patch.attrs.layer_kind = "conv";
  for (OpNode& op : g.ops) {
    if (op.id == "input") {
      op.shape.dims = {3, 224, 224};
    } else if (op.id == "embeddings") {
      op.inputs = {"patch_embed"};
    }
  }
  g.ops.insert(g.ops.begin() + 1, std::move(patch));
  return g;
}

std::vector<Graph> allBuiltinGraphs() {
  std::vector<Graph> all;
  all.push_back(mobilenetV2());
  all.push_back(resnet50());
  all.push_back(yolov5L());
  all.push_back(bertBase());
  all.push_back(bertLarge());
  all.push_back(gpt2Medium());
  all.push_back(vitBase16());
  return all;
}

}  // namespace composim::dl::graph_ir::builders
