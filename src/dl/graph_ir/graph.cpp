#include "dl/graph_ir/graph.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace composim::dl::graph_ir {

const char* toString(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return "input";
    case OpKind::Concat: return "concat";
    case OpKind::Add: return "add";
    case OpKind::MaxPool2d: return "maxpool2d";
    case OpKind::GlobalAvgPool: return "global_avgpool";
    case OpKind::Conv2d: return "conv2d";
    case OpKind::DepthwiseConv2d: return "depthwise_conv2d";
    case OpKind::Linear: return "linear";
    case OpKind::Embedding: return "embedding";
    case OpKind::Attention: return "attention";
    case OpKind::TransformerFfn: return "transformer_ffn";
    case OpKind::Custom: return "custom";
    case OpKind::AllReduce: return "allreduce";
    case OpKind::AllGather: return "allgather";
    case OpKind::ReduceScatter: return "reduce_scatter";
    case OpKind::Broadcast: return "broadcast";
  }
  return "?";
}

bool opKindFromString(const std::string& name, OpKind* out) {
  static constexpr OpKind kAll[] = {
      OpKind::Input,         OpKind::Concat,        OpKind::Add,
      OpKind::MaxPool2d,     OpKind::GlobalAvgPool, OpKind::Conv2d,
      OpKind::DepthwiseConv2d, OpKind::Linear,      OpKind::Embedding,
      OpKind::Attention,     OpKind::TransformerFfn, OpKind::Custom,
      OpKind::AllReduce,     OpKind::AllGather,     OpKind::ReduceScatter,
      OpKind::Broadcast,
  };
  for (const OpKind k : kAll) {
    if (name == toString(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool isCompute(OpKind kind) {
  switch (kind) {
    case OpKind::Conv2d:
    case OpKind::DepthwiseConv2d:
    case OpKind::Linear:
    case OpKind::Embedding:
    case OpKind::Attention:
    case OpKind::TransformerFfn:
    case OpKind::Custom:
      return true;
    default:
      return false;
  }
}

bool isCollective(OpKind kind) {
  switch (kind) {
    case OpKind::AllReduce:
    case OpKind::AllGather:
    case OpKind::ReduceScatter:
    case OpKind::Broadcast:
      return true;
    default:
      return false;
  }
}

bool isStructural(OpKind kind) {
  return !isCompute(kind) && !isCollective(kind);
}

std::string TensorShape::toString() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(dims[i]);
  }
  return s + "]";
}

const OpNode* Graph::findOp(const std::string& id) const {
  for (const OpNode& op : ops) {
    if (op.id == id) return &op;
  }
  return nullptr;
}

namespace {

Status opError(const OpNode& op, const std::string& why,
               StatusCode code = StatusCode::InvalidArgument) {
  return Status::failure("op '" + op.id + "' (" + toString(op.kind) + "): " +
                             why,
                         code);
}

/// Kind-specific attribute + shape rules. `producers` maps input ids to
/// the producing nodes (already resolved by the caller).
Status checkOp(const OpNode& op, const std::vector<const OpNode*>& producers) {
  const auto& a = op.attrs;
  const auto want_inputs = [&](std::size_t lo, std::size_t hi) -> Status {
    if (op.inputs.size() < lo || op.inputs.size() > hi) {
      return opError(op, "expects between " + std::to_string(lo) + " and " +
                             std::to_string(hi) + " inputs, has " +
                             std::to_string(op.inputs.size()));
    }
    return Status::success();
  };
  // Channel dimension of the (single) producer, when it exposes one.
  const auto input_channels = [&]() -> std::int64_t {
    return producers.empty() ? 0 : producers.front()->shape.channels();
  };

  switch (op.kind) {
    case OpKind::Input:
      if (!op.inputs.empty()) return opError(op, "input ops take no inputs");
      if (op.shape.rank() == 0) return opError(op, "input needs a shape");
      return Status::success();

    case OpKind::Concat: {
      if (Status s = want_inputs(2, 64); !s) return s;
      std::int64_t total = 0;
      for (const OpNode* p : producers) {
        if (p->shape.rank() != producers.front()->shape.rank()) {
          return opError(op, "concat inputs disagree on rank");
        }
        total += p->shape.channels();
      }
      if (op.shape.channels() != total) {
        return opError(op, "concat of " + std::to_string(total) +
                               " channels declared as shape " +
                               op.shape.toString());
      }
      return Status::success();
    }

    case OpKind::Add: {
      if (Status s = want_inputs(2, 64); !s) return s;
      for (const OpNode* p : producers) {
        if (!(p->shape == op.shape)) {
          return opError(op, "add input '" + p->id + "' has shape " +
                                 p->shape.toString() + ", expected " +
                                 op.shape.toString());
        }
      }
      return Status::success();
    }

    case OpKind::MaxPool2d:
      if (Status s = want_inputs(1, 1); !s) return s;
      if (op.shape.channels() != input_channels()) {
        return opError(op, "pooling cannot change the channel count");
      }
      return Status::success();

    case OpKind::GlobalAvgPool:
      if (Status s = want_inputs(1, 1); !s) return s;
      if (op.shape.rank() != 1 || op.shape.channels() != input_channels()) {
        return opError(op, "global pool of " +
                               std::to_string(input_channels()) +
                               " channels must have shape [" +
                               std::to_string(input_channels()) + "]");
      }
      return Status::success();

    case OpKind::Conv2d: {
      if (Status s = want_inputs(0, 1); !s) return s;
      if (a.in_channels <= 0 || a.out_channels <= 0 || a.kernel <= 0 ||
          a.out_hw <= 0) {
        return opError(op,
                       "needs in_channels, out_channels, kernel, out_hw > 0");
      }
      const TensorShape want{{a.out_channels, a.out_hw, a.out_hw}};
      if (!(op.shape == want)) {
        return opError(op, "shape " + op.shape.toString() + " != " +
                               want.toString() + " implied by attrs");
      }
      if (!producers.empty() && producers.front()->shape.rank() == 3 &&
          input_channels() != a.in_channels) {
        return opError(op, "consumes " + std::to_string(a.in_channels) +
                               " channels but input '" +
                               producers.front()->id + "' produces " +
                               std::to_string(input_channels()));
      }
      return Status::success();
    }

    case OpKind::DepthwiseConv2d: {
      if (Status s = want_inputs(1, 1); !s) return s;
      if (a.channels <= 0 || a.kernel <= 0 || a.out_hw <= 0) {
        return opError(op, "needs channels, kernel, out_hw > 0");
      }
      const TensorShape want{{a.channels, a.out_hw, a.out_hw}};
      if (!(op.shape == want)) {
        return opError(op, "shape " + op.shape.toString() + " != " +
                               want.toString() + " implied by attrs");
      }
      if (input_channels() != a.channels) {
        return opError(op, "depthwise over " + std::to_string(a.channels) +
                               " channels but input produces " +
                               std::to_string(input_channels()));
      }
      return Status::success();
    }

    case OpKind::Linear:
      if (Status s = want_inputs(0, 1); !s) return s;
      if (a.in_features <= 0 || a.out_features <= 0 || a.tokens <= 0) {
        return opError(op, "needs in, out, tokens > 0");
      }
      if (!producers.empty() &&
          producers.front()->shape.lastDim() != a.in_features) {
        return opError(op, "consumes " + std::to_string(a.in_features) +
                               " features but input '" +
                               producers.front()->id + "' produces " +
                               std::to_string(producers.front()->shape.lastDim()));
      }
      if (op.shape.lastDim() != a.out_features) {
        return opError(op, "shape " + op.shape.toString() +
                               " does not end in out=" +
                               std::to_string(a.out_features));
      }
      return Status::success();

    case OpKind::Embedding:
      if (Status s = want_inputs(0, 1); !s) return s;
      if (a.vocab <= 0 || a.hidden <= 0 || a.seq <= 0) {
        return opError(op, "needs vocab, hidden, seq > 0");
      }
      if (!(op.shape == TensorShape{{a.seq, a.hidden}})) {
        return opError(op, "shape must be [seq, hidden]");
      }
      return Status::success();

    case OpKind::Attention:
      if (Status s = want_inputs(1, 1); !s) return s;
      if (a.hidden <= 0 || a.seq <= 0) {
        return opError(op, "needs hidden, seq > 0");
      }
      if (!(op.shape == TensorShape{{a.seq, a.hidden}}) ||
          !(producers.front()->shape == op.shape)) {
        return opError(op, "attention preserves [seq, hidden]");
      }
      return Status::success();

    case OpKind::TransformerFfn:
      if (Status s = want_inputs(1, 1); !s) return s;
      if (a.hidden <= 0 || a.ff <= 0 || a.seq <= 0) {
        return opError(op, "needs hidden, ff, seq > 0");
      }
      if (!(op.shape == TensorShape{{a.seq, a.hidden}}) ||
          !(producers.front()->shape == op.shape)) {
        return opError(op, "transformer_ffn preserves [seq, hidden]");
      }
      return Status::success();

    case OpKind::Custom: {
      if (a.params < 0 || a.flops < 0.0 || a.activation_bytes < 0) {
        return opError(op, "custom costs must be non-negative");
      }
      return Status::success();
    }

    case OpKind::AllReduce:
    case OpKind::AllGather:
    case OpKind::ReduceScatter:
    case OpKind::Broadcast:
      if (op.inputs.empty()) {
        return opError(op, "collective annotations need at least one input");
      }
      return Status::success();
  }
  return opError(op, "unhandled kind", StatusCode::Internal);
}

}  // namespace

Status Graph::topologicalOrder(std::vector<std::size_t>* order) const {
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < ops.size(); ++i) index.emplace(ops[i].id, i);

  std::vector<int> pending(ops.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (const std::string& in : ops[i].inputs) {
      const auto it = index.find(in);
      if (it == index.end()) {
        return Status::notFound("op '" + ops[i].id +
                                "': input '" + in + "' is not defined");
      }
      if (it->second == i) {
        return Status::failedPrecondition("op '" + ops[i].id +
                                          "' consumes itself");
      }
      ++pending[i];
      consumers[it->second].push_back(i);
    }
  }

  order->clear();
  order->reserve(ops.size());
  // Earliest-declared ready op first: lowering order is deterministic and
  // equals declaration order whenever the declaration is already
  // topological (which the emitted graphs guarantee).
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (pending[i] == 0) ready.push_back(i);
  }
  std::make_heap(ready.begin(), ready.end(), std::greater<>());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>());
    const std::size_t i = ready.back();
    ready.pop_back();
    order->push_back(i);
    for (const std::size_t c : consumers[i]) {
      if (--pending[c] == 0) {
        ready.push_back(c);
        std::push_heap(ready.begin(), ready.end(), std::greater<>());
      }
    }
  }
  if (order->size() != ops.size()) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (pending[i] > 0) {
        return Status::failedPrecondition(
            "graph has a cycle involving op '" + ops[i].id + "'");
      }
    }
  }
  return Status::success();
}

Status Graph::validate() const {
  if (meta.name.empty()) {
    return Status::invalidArgument("graph has no model name");
  }
  if (ops.empty()) {
    return Status::invalidArgument("graph '" + meta.name + "' has no ops");
  }
  std::unordered_map<std::string, const OpNode*> by_id;
  for (const OpNode& op : ops) {
    if (op.id.empty()) {
      return Status::invalidArgument("graph '" + meta.name +
                                     "' contains an op without an id");
    }
    if (!by_id.emplace(op.id, &op).second) {
      return Status::alreadyExists("duplicate op id '" + op.id + "'");
    }
  }
  bool has_compute = false;
  for (const OpNode& op : ops) {
    std::vector<const OpNode*> producers;
    producers.reserve(op.inputs.size());
    for (const std::string& in : op.inputs) {
      const auto it = by_id.find(in);
      if (it == by_id.end()) {
        return Status::notFound("op '" + op.id + "': input '" + in +
                                "' is not defined");
      }
      producers.push_back(it->second);
    }
    if (Status s = checkOp(op, producers); !s) return s;
    has_compute = has_compute || isCompute(op.kind);
  }
  if (!has_compute) {
    return Status::invalidArgument("graph '" + meta.name +
                                   "' has no compute ops to lower");
  }
  std::vector<std::size_t> order;
  return topologicalOrder(&order);
}

}  // namespace composim::dl::graph_ir
