// composim graph-IR: built-in operator graphs.
//
// The paper's five Table II benchmarks plus the two extension workloads
// (GPT-2-medium, ViT-B/16), expressed as operator graphs instead of
// hand-written layer tables. These builders are the single source of
// truth for the built-in zoo: the WorkloadRegistry lowers them to
// ModelSpecs, and examples/graph_export.cpp serializes them to the
// checked-in examples/graphs/*.graph.json files, so JSON-loaded and
// registry-built models are byte-identical by construction (and a golden
// test keeps it that way).
//
// The graphs carry real dataflow: residual adds (ResNet bottlenecks,
// MobileNet inverted residuals), C3 split/concat and SPPF pooling chains
// (YOLOv5), and a gradient all-reduce annotation on each model's outputs.
// Known simplification, matching the zoo's layer accounting: YOLOv5's
// upsample ops are implicit in the lateral convs, and the P3 detect path
// taps the C3 bottleneck chain rather than a channel-reducing cv3.
#pragma once

#include <vector>

#include "dl/graph_ir/graph.hpp"

namespace composim::dl::graph_ir::builders {

Graph resnet50();
Graph mobilenetV2();
Graph yolov5L();
Graph bertBase();
Graph bertLarge();
Graph gpt2Medium();
Graph vitBase16();

/// All seven, registry-registration order (Table II order, then the
/// extension workloads).
std::vector<Graph> allBuiltinGraphs();

}  // namespace composim::dl::graph_ir::builders
