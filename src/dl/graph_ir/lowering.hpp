// composim graph-IR: lowering pass (Graph -> ModelSpec).
//
// Walks the validated operator graph in deterministic topological order
// and derives the per-layer performance table the trainer executes:
// parameters, forward FLOPs and activation bytes per compute op, plus the
// model-level metadata (efficiencies, dataset, paper batch). Structural
// and collective ops lower to nothing — gradient-sync volume is derived
// from the summed parameter bytes (ModelSpec::gradientBytes), exactly as
// for the hand-coded zoo, so a graph-loaded model is byte-identical to
// its hand-coded twin. The op -> cost rules are documented in DESIGN.md
// §15 and deliberately mirror the zoo's layer helpers.
#pragma once

#include "common/status.hpp"
#include "dl/graph_ir/graph.hpp"
#include "dl/model.hpp"

namespace composim::dl::graph_ir {

/// Validate `graph` and lower it to a ModelSpec. InvalidArgument /
/// NotFound / AlreadyExists / FailedPrecondition from validation pass
/// through; an unmapped custom layer_kind is InvalidArgument.
Status lower(const Graph& graph, ModelSpec* out);

}  // namespace composim::dl::graph_ir
