// composim graph-IR: operator-level workload graphs.
//
// A Graph is the portable description of a training workload: a DAG of
// typed operators (conv2d, linear, attention, ...) with output tensor
// shapes, dataflow edges, and collective annotations, plus the model-level
// metadata the simulator needs (efficiencies, dataset, paper batch size).
// Graphs arrive from JSON (loader.hpp), are validated here (unique ids,
// edges resolve, acyclic, shapes consistent), and are lowered to the
// layer-table ModelSpec the trainer executes (lowering.hpp). This is how
// new workloads enter the system without touching C++ — see DESIGN.md §15.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dl/dataset.hpp"
#include "sim/units.hpp"

namespace composim::dl::graph_ir {

/// Operator vocabulary. Three classes:
///  - compute ops lower to exactly one ModelSpec layer (in topological
///    order), carrying the FLOP/param/activation arithmetic;
///  - structural ops (input, concat, add, pools) carry dataflow and shape
///    information only and lower to nothing — the performance model does
///    not charge for elementwise glue;
///  - collective ops annotate communication (gradient all-reduce) and
///    lower to nothing; the trainer derives sync volume from the summed
///    parameter bytes (ModelSpec::gradientBytes).
enum class OpKind {
  // structural
  Input,
  Concat,
  Add,
  MaxPool2d,
  GlobalAvgPool,
  // compute
  Conv2d,
  DepthwiseConv2d,
  Linear,
  Embedding,
  Attention,
  TransformerFfn,
  Custom,
  // collective annotations
  AllReduce,
  AllGather,
  ReduceScatter,
  Broadcast,
};

const char* toString(OpKind kind);
/// Resolve a schema kind string ("conv2d", "allreduce", ...); false when
/// the kind is unknown.
bool opKindFromString(const std::string& name, OpKind* out);

bool isCompute(OpKind kind);
bool isStructural(OpKind kind);
bool isCollective(OpKind kind);

/// Output tensor shape; dims[0] is the channel dimension for rank-3
/// image tensors, the token dimension for rank-2 sequence tensors.
struct TensorShape {
  std::vector<std::int64_t> dims;

  int rank() const { return static_cast<int>(dims.size()); }
  std::int64_t channels() const { return dims.empty() ? 0 : dims.front(); }
  std::int64_t lastDim() const { return dims.empty() ? 0 : dims.back(); }
  std::string toString() const;

  bool operator==(const TensorShape& other) const = default;
};

/// Per-op attributes. A flat union of the fields the operator vocabulary
/// uses; each kind reads its own subset (validation enforces presence):
///   conv2d:          in_channels, out_channels, kernel, out_hw, batchnorm
///   depthwise_conv2d: channels, kernel, out_hw
///   linear:          in_features, out_features, tokens (default 1)
///   embedding:       vocab, positions, types, hidden, seq
///   attention:       hidden, seq
///   transformer_ffn: hidden, ff, seq
///   custom:          params, flops, activation_bytes, layer_kind
///   maxpool2d:       kernel (optional)
///   collectives:     tensor (optional, e.g. "gradients")
struct OpAttrs {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t channels = 0;
  std::int64_t kernel = 0;
  std::int64_t out_hw = 0;
  bool batchnorm = true;
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  std::int64_t tokens = 1;
  std::int64_t vocab = 0;
  std::int64_t positions = 0;
  std::int64_t types = 0;
  std::int64_t hidden = 0;
  std::int64_t seq = 0;
  std::int64_t ff = 0;
  std::int64_t params = 0;
  double flops = 0.0;
  std::int64_t activation_bytes = 0;
  std::string layer_kind;  // custom ops: ModelSpec LayerKind name
  std::string tensor;      // collectives: what is being synchronized

  bool operator==(const OpAttrs& other) const = default;
};

struct OpNode {
  std::string id;                   // unique; becomes the layer name
  OpKind kind = OpKind::Custom;
  std::vector<std::string> inputs;  // producer op ids (dataflow edges)
  TensorShape shape;                // output tensor shape
  OpAttrs attrs;

  bool operator==(const OpNode& other) const = default;
};

/// Model-level metadata carried alongside the operator list; maps 1:1
/// onto the non-layer fields of ModelSpec.
struct GraphMeta {
  std::string name;
  std::string domain = "vision";  // "vision" | "nlp"
  std::string dataset;            // dataset name (registry key)
  int reported_depth = 0;
  double fp16_efficiency = 0.25;
  double fp32_efficiency = 0.40;
  Bytes input_bytes_per_sample = 0;
  double activation_overhead_factor = 2.0;
  int batch_per_gpu = 1;
  int epochs = 1;

  bool operator==(const GraphMeta& other) const = default;
};

struct Graph {
  GraphMeta meta;
  std::vector<OpNode> ops;
  /// A graph may carry its dataset inline (train_samples, per-sample
  /// costs) so a JSON-only workload needs no pre-registered dataset.
  std::optional<DatasetSpec> inline_dataset;

  /// Full structural validation: non-empty name/ops, unique op ids
  /// (AlreadyExists), edges resolve (NotFound), acyclic
  /// (FailedPrecondition), per-kind attribute and shape consistency
  /// (InvalidArgument). Lowering refuses unvalidated graphs.
  Status validate() const;

  /// Deterministic topological order (Kahn's algorithm, earliest-declared
  /// ready op first); FailedPrecondition on a cycle, naming one op in it.
  Status topologicalOrder(std::vector<std::size_t>* order) const;

  const OpNode* findOp(const std::string& id) const;
};

}  // namespace composim::dl::graph_ir
