// composim graph-IR: JSON loader + writer.
//
// The on-disk format (".graph.json", DESIGN.md §15):
//
//   {
//     "format": "composim-graph-ir",
//     "version": 1,
//     "model": {
//       "name": "ResNet-50", "domain": "vision", "dataset": "ImageNet",
//       "reported_depth": 50,
//       "fp16_efficiency": 0.205, "fp32_efficiency": 0.33,
//       "input_bytes_per_sample": 301056,
//       "activation_overhead_factor": 2.0,
//       "batch_per_gpu": 128, "epochs": 20
//     },
//     "ops": [
//       {"id": "input", "kind": "input", "shape": [3, 224, 224]},
//       {"id": "stem.conv7x7", "kind": "conv2d", "inputs": ["input"],
//        "shape": [64, 112, 112],
//        "attrs": {"in_channels": 3, "out_channels": 64, "kernel": 7,
//                  "out_hw": 112}},
//       ...
//       {"id": "grad.allreduce", "kind": "allreduce", "inputs": ["fc"],
//        "attrs": {"tensor": "gradients"}}
//     ]
//   }
//
// "dataset" is either the name of a registered dataset or an inline
// object ({"name", "train_samples", "disk_bytes_per_sample", ...}) so a
// JSON-only workload ships its input-pipeline model too. Every error is a
// typed composim::Status: unreadable file -> NotFound, malformed JSON or
// schema violation or unknown op kind -> InvalidArgument, plus the graph
// validation taxonomy (see graph.hpp).
#pragma once

#include <string>

#include "common/status.hpp"
#include "dl/graph_ir/graph.hpp"
#include "falcon/json.hpp"

namespace composim::dl::graph_ir {

/// Current schema version.
inline constexpr int kFormatVersion = 1;
inline constexpr const char* kFormatName = "composim-graph-ir";

/// Parse a graph document and fully validate it.
Status parseGraph(const falcon::Json& doc, Graph* out);

/// Read, parse and validate a ".graph.json" file.
Status loadGraphFile(const std::string& path, Graph* out);

/// Serialize a graph back to its JSON document (round-trips through
/// parseGraph bit-exactly; examples/graph_export.cpp uses this to emit
/// the checked-in examples/graphs/*.graph.json).
falcon::Json toJson(const Graph& graph);

/// Canonical file stem for a model name: lowercased, runs of non-alnum
/// collapsed to '_' ("ViT-B/16" -> "vit_b_16"). The exporter, the golden
/// tests, and the ingest bench all agree on <slug>.graph.json this way.
std::string graphFileSlug(const std::string& model_name);

}  // namespace composim::dl::graph_ir
