// composim: the workload registry — name -> ModelSpec factory.
//
// The single front door for workload selection: the seven built-in models
// (Table II's five plus GPT-2-medium and ViT-B/16) are registered at
// startup as lowered graph-IR builders, experiments look models up by
// name (core::ExperimentOptions::workload), and new workloads arrive
// either programmatically (add) or as operator-graph JSON files
// ("graph:<path>", see dl/graph_ir/). Dataset association lives here too:
// each entry names its dataset, datasets are registered by name, and a
// graph file may carry its dataset inline — so a JSON-only workload
// trains end to end without touching C++.
//
// This replaces the seven free factory functions in dl/zoo.hpp, which
// remain as thin deprecated wrappers over registry lookup.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dl/dataset.hpp"
#include "dl/model.hpp"

namespace composim::dl {

class WorkloadRegistry {
 public:
  struct Entry {
    std::string name;         // unique lookup key (== factory's model name)
    std::string dataset;      // dataset registry key the workload trains on
    std::string description;  // one line for listings
    bool paper_benchmark = false;  // member of Table II (benchmarkZoo order)
    std::function<ModelSpec()> factory;
  };

  /// Process-wide registry with the built-ins pre-registered.
  static WorkloadRegistry& instance();

  /// Register a workload; AlreadyExists when the name is taken,
  /// InvalidArgument on a nameless entry or null factory.
  Status add(Entry entry);

  /// Build the named workload's ModelSpec; NotFound (listing the known
  /// names) when absent.
  Status model(const std::string& name, ModelSpec* out) const;

  bool hasWorkload(const std::string& name) const;

  /// Registered workload names, registration order.
  std::vector<std::string> names() const;

  /// The five Table II benchmarks, paper order.
  std::vector<ModelSpec> paperZoo() const;

  /// Register a dataset; AlreadyExists when the name is taken.
  Status addDataset(DatasetSpec spec);

  /// Look a dataset up by name (the ModelSpec::dataset key); NotFound
  /// when absent.
  Status dataset(const std::string& name, DatasetSpec* out) const;

  std::vector<std::string> datasetNames() const;

  /// Load a ".graph.json" operator-graph workload: read, validate, lower
  /// (see dl/graph_ir/loader.hpp for the error taxonomy). A dataset
  /// carried inline by the graph is registered on first sight; the
  /// model's dataset reference must resolve afterwards (NotFound
  /// otherwise). The workload itself is not registered by name — load it
  /// again (cheap) or add() an entry to pin it.
  Status loadGraph(const std::string& path, ModelSpec* out);

  /// Resolve a workload reference: a registry name, or "graph:<path>"
  /// for an operator-graph file.
  Status resolve(const std::string& workload, ModelSpec* out);

 private:
  WorkloadRegistry();

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::vector<DatasetSpec> datasets_;
};

/// Convenience: WorkloadRegistry::instance().resolve(ref) that throws
/// std::invalid_argument on failure — the pre-registry ergonomics for
/// examples, benches and tests.
ModelSpec workload(const std::string& ref);

}  // namespace composim::dl
