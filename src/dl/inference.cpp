#include "dl/inference.hpp"

#include <algorithm>
#include <cmath>

#include "fabric/link_catalog.hpp"
#include "telemetry/metrics.hpp"

namespace composim::dl {

InferenceEngine::InferenceEngine(Simulator& sim, fabric::FlowNetwork& net,
                                 devices::Gpu& gpu, fabric::NodeId hostMemory,
                                 ModelSpec model, InferenceOptions options)
    : sim_(sim), net_(net), gpu_(gpu), host_memory_(hostMemory),
      model_(std::move(model)), options_(options), rng_(options.seed) {}

SimTime InferenceEngine::unloadedLatency() const {
  devices::KernelDesc k;
  k.flops = model_.forwardFlopsPerSample();
  k.mem_bytes = model_.activationBytesPerSample();
  k.precision = options_.precision;
  k.efficiency = (options_.precision == devices::Precision::FP16)
                     ? model_.fp16_efficiency
                     : model_.fp32_efficiency;
  const auto upload = static_cast<double>(model_.input_bytes_per_sample);
  // Rough unloaded path: dispatch + PCIe3-class upload + kernel + result.
  return options_.host_overhead_per_launch + upload / units::GBps(12.0) +
         gpu_.kernelDuration(k) +
         static_cast<double>(options_.result_bytes) / units::GBps(12.0);
}

void InferenceEngine::serve(double arrivalRps, int numRequests,
                            std::function<void(const InferenceStats&)> done) {
  arrival_rps_ = arrivalRps;
  to_arrive_ = numRequests;
  total_ = numRequests;
  completed_ = 0;
  start_ = sim_.now();
  done_ = std::move(done);
  latencies_ms_.clear();
  if (numRequests <= 0) {
    sim_.schedule(0.0, [this] { finishIfDone(); });
    return;
  }
  latencies_ms_.reserve(static_cast<std::size_t>(numRequests));
  scheduleArrival();
}

void InferenceEngine::scheduleArrival() {
  if (to_arrive_ <= 0) return;
  sim_.schedule(rng_.exponential(arrival_rps_), [this] {
    --to_arrive_;
    queue_.push_back(Request{sim_.now()});
    maybeLaunchBatch();
    scheduleArrival();
  });
}

void InferenceEngine::maybeLaunchBatch() {
  if (gpu_busy_ || queue_.empty()) return;
  gpu_busy_ = true;
  const int batch = std::min<int>(options_.max_batch,
                                  static_cast<int>(queue_.size()));
  std::vector<Request> taken(queue_.begin(), queue_.begin() + batch);
  queue_.erase(queue_.begin(), queue_.begin() + batch);
  batch_sum_ += batch;
  ++batches_;

  // Serving-stack dispatch, H2D upload of the batch, one forward kernel,
  // then D2H results.
  fabric::FlowOptions fo;
  fo.tag = "infer-h2d";
  fo.extraLatency =
      fabric::catalog::dmaEndpointOverhead() + options_.host_overhead_per_launch;
  net_.startFlow(
      host_memory_, gpu_.node(), model_.input_bytes_per_sample * batch,
      [this, taken = std::move(taken), batch](const fabric::FlowResult&) mutable {
        devices::KernelDesc k;
        k.flops = model_.forwardFlopsPerSample() * batch;
        k.mem_bytes = model_.activationBytesPerSample() * batch;
        k.precision = options_.precision;
        k.efficiency = (options_.precision == devices::Precision::FP16)
                           ? model_.fp16_efficiency
                           : model_.fp32_efficiency;
        gpu_.launchKernel(k, [this, taken = std::move(taken), batch]() mutable {
          net_.startFlow(gpu_.node(), host_memory_,
                         options_.result_bytes * batch,
                         [this, taken = std::move(taken)](const fabric::FlowResult&) {
                           for (const auto& r : taken) {
                             const double ms = units::to_ms(sim_.now() - r.arrival);
                             latencies_ms_.push_back(ms);
                             if (latency_observer_) latency_observer_(ms);
                           }
                           completed_ += static_cast<int>(taken.size());
                           gpu_busy_ = false;
                           maybeLaunchBatch();
                           finishIfDone();
                         });
        });
      },
      std::move(fo));
}

void InferenceEngine::finishIfDone() {
  if (completed_ < total_ || done_ == nullptr) return;
  InferenceStats s;
  s.requests = total_;
  s.duration = sim_.now() - start_;
  s.throughput_rps = s.duration > 0.0 ? total_ / s.duration : 0.0;
  std::sort(latencies_ms_.begin(), latencies_ms_.end());
  s.latency_p50_ms = telemetry::percentile(latencies_ms_, 50.0);
  s.latency_p95_ms = telemetry::percentile(latencies_ms_, 95.0);
  s.latency_p99_ms = telemetry::percentile(latencies_ms_, 99.0);
  s.mean_batch = batches_ > 0 ? batch_sum_ / batches_ : 0.0;
  auto d = std::move(done_);
  done_ = nullptr;
  d(s);
}

}  // namespace composim::dl
