// composim: optimizer models.
//
// The optimizer choice decides (a) the per-parameter state bytes that the
// ZeRO/FSDP sharding trades against batch size (the Fig 16 "6 -> 10"
// effect) and (b) the element-wise update kernel cost. All constants are
// per parameter; `mixed` selects mixed-precision training (FP16 working
// copy + FP32 master weights).
#pragma once

#include <string>

#include "devices/gpu.hpp"
#include "sim/units.hpp"

namespace composim::dl {

enum class OptimizerKind { Sgd, SgdMomentum, Adam, Lamb };

const char* toString(OptimizerKind k);

struct OptimizerModel {
  OptimizerKind kind = OptimizerKind::Adam;

  /// Optimizer-state bytes per parameter, excluding the working copy and
  /// gradient (those are precision-dependent and counted by the trainer).
  Bytes statePerParam(devices::Precision precision) const;

  /// FLOPs per parameter for one update step.
  double flopsPerParam() const;

  /// HBM bytes touched per parameter per step (read states + write).
  Bytes memBytesPerParam(devices::Precision precision) const;
};

inline const char* toString(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::Sgd: return "SGD";
    case OptimizerKind::SgdMomentum: return "SGD+momentum";
    case OptimizerKind::Adam: return "Adam";
    case OptimizerKind::Lamb: return "LAMB";
  }
  return "?";
}

inline Bytes OptimizerModel::statePerParam(devices::Precision precision) const {
  // Mixed precision keeps an FP32 master copy on top of the moments.
  const Bytes master = (precision == devices::Precision::FP16) ? 4 : 0;
  switch (kind) {
    case OptimizerKind::Sgd: return master;
    case OptimizerKind::SgdMomentum: return master + 4;       // momentum
    case OptimizerKind::Adam: return master + 8;              // m + v
    case OptimizerKind::Lamb: return master + 8;              // m + v
  }
  return master + 8;
}

inline double OptimizerModel::flopsPerParam() const {
  switch (kind) {
    case OptimizerKind::Sgd: return 2.0;
    case OptimizerKind::SgdMomentum: return 4.0;
    case OptimizerKind::Adam: return 8.0;
    case OptimizerKind::Lamb: return 12.0;  // adds the trust-ratio norms
  }
  return 8.0;
}

inline Bytes OptimizerModel::memBytesPerParam(devices::Precision precision) const {
  const Bytes elem = (precision == devices::Precision::FP16) ? 2 : 4;
  // Read param + grad + states, write param + states.
  return 2 * elem + statePerParam(precision) * 2;
}

}  // namespace composim::dl
