// composim: the paper's benchmark model zoo (Table II).
//
//   MobileNetV2  Computer Vision  ImageNet    3.4M    depth  53
//   ResNet-50    Computer Vision  ImageNet   25.6M    depth  50
//   YOLOv5-L     Computer Vision  Coco         47M    depth 392
//   BERT-base    NLP (Q&A)        SQuAD v1.1  110M    depth  12
//   BERT-large   NLP (Q&A)        SQuAD v1.1  340M    depth  24
//
// Parameter counts come out of the real architecture arithmetic (conv
// shapes, transformer dims), not constants; the Table II "depth" column
// follows the paper's mixed convention (torch module count for vision,
// encoder blocks for BERT) and is carried as reported_depth.
//
// Per-model sustained-efficiency fractions are the calibration knob that
// maps FLOPs to V100 wall-clock; values are fitted to public V100 training
// throughputs (see DESIGN.md §4).
#pragma once

#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"

namespace composim::dl {

ModelSpec mobileNetV2();
ModelSpec resNet50();
ModelSpec yoloV5L();
ModelSpec bertBase();
ModelSpec bertLarge();

/// All five, in Table II order.
std::vector<ModelSpec> benchmarkZoo();

/// The dataset each benchmark trains on.
DatasetSpec datasetFor(const ModelSpec& model);

// --- extension workloads (not in the paper; §VI's "richer set of
// experiments"). They train on SQuAD-shaped token features so the input
// pipeline stays meaningful. ---

/// GPT-2-medium: 24-layer decoder, d=1024, 355M parameters — a close
/// cousin of BERT-large with a much larger embedding table, for testing
/// the recommender on unseen-but-similar workloads.
ModelSpec gpt2Medium();

/// ViT-Base/16 at 224 px: 12-layer encoder over 197 patch tokens, 86M
/// parameters — a vision transformer that behaves like NLP on the fabric
/// (big GEMMs, no CPU-side augmentation pressure).
ModelSpec vitBase16();

}  // namespace composim::dl
