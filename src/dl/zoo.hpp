// composim: the paper's benchmark model zoo (Table II).
//
//   MobileNetV2  Computer Vision  ImageNet    3.4M    depth  53
//   ResNet-50    Computer Vision  ImageNet   25.6M    depth  50
//   YOLOv5-L     Computer Vision  Coco         47M    depth 392
//   BERT-base    NLP (Q&A)        SQuAD v1.1  110M    depth  12
//   BERT-large   NLP (Q&A)        SQuAD v1.1  340M    depth  24
//
// The models themselves now live in the workload registry as operator
// graphs (dl/graph_ir/builders.hpp, lowered through dl/graph_ir/
// lowering.hpp); parameter counts still come out of the real architecture
// arithmetic, and per-model sustained-efficiency fractions remain the
// calibration knob mapping FLOPs to V100 wall-clock (DESIGN.md §4, §15).
//
// DEPRECATED: the free factory functions below are thin wrappers over
// WorkloadRegistry lookup, kept for source compatibility. New code should
// use dl::workload("ResNet-50") / WorkloadRegistry::instance(), which
// also resolve graph-IR-loaded workloads ("graph:<path>").
#pragma once

#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "dl/workload_registry.hpp"

namespace composim::dl {

/// Deprecated: use workload("MobileNetV2").
ModelSpec mobileNetV2();
/// Deprecated: use workload("ResNet-50").
ModelSpec resNet50();
/// Deprecated: use workload("YOLOv5-L").
ModelSpec yoloV5L();
/// Deprecated: use workload("BERT").
ModelSpec bertBase();
/// Deprecated: use workload("BERT-L").
ModelSpec bertLarge();

/// All five, in Table II order (registry-backed).
std::vector<ModelSpec> benchmarkZoo();

/// The dataset each benchmark trains on: registry lookup by the model's
/// dataset name; throws std::invalid_argument for unregistered datasets.
DatasetSpec datasetFor(const ModelSpec& model);

// --- extension workloads (not in the paper; §VI's "richer set of
// experiments"). They train on SQuAD-shaped token features so the input
// pipeline stays meaningful. ---

/// Deprecated: use workload("GPT-2-medium"). 24-layer decoder, d=1024,
/// 355M parameters — a close cousin of BERT-large with a much larger
/// embedding table, for testing the recommender on unseen-but-similar
/// workloads.
ModelSpec gpt2Medium();

/// Deprecated: use workload("ViT-B/16"). ViT-Base/16 at 224 px: 12-layer
/// encoder over 197 patch tokens, 86M parameters — a vision transformer
/// that behaves like NLP on the fabric (big GEMMs, no CPU-side
/// augmentation pressure).
ModelSpec vitBase16();

}  // namespace composim::dl
