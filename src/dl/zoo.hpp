// composim: the paper's benchmark model zoo (Table II).
//
//   MobileNetV2  Computer Vision  ImageNet    3.4M    depth  53
//   ResNet-50    Computer Vision  ImageNet   25.6M    depth  50
//   YOLOv5-L     Computer Vision  Coco         47M    depth 392
//   BERT-base    NLP (Q&A)        SQuAD v1.1  110M    depth  12
//   BERT-large   NLP (Q&A)        SQuAD v1.1  340M    depth  24
//
// The models themselves live in the workload registry as operator graphs
// (dl/graph_ir/builders.hpp, lowered through dl/graph_ir/lowering.hpp);
// parameter counts still come out of the real architecture arithmetic,
// and per-model sustained-efficiency fractions remain the calibration
// knob mapping FLOPs to V100 wall-clock (DESIGN.md §4, §15). Look
// individual models up with dl::workload("ResNet-50") /
// WorkloadRegistry::instance(), which also resolve graph-IR-loaded
// workloads ("graph:<path>").
#pragma once

#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "dl/workload_registry.hpp"

namespace composim::dl {

/// All five paper benchmarks, in Table II order (registry-backed).
std::vector<ModelSpec> benchmarkZoo();

/// The dataset each benchmark trains on: registry lookup by the model's
/// dataset name; throws std::invalid_argument for unregistered datasets.
DatasetSpec datasetFor(const ModelSpec& model);

}  // namespace composim::dl
