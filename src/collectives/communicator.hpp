// composim: NCCL-like collective communication over the simulated fabric.
//
// A communicator groups GPU endpoints (fabric nodes) and runs collectives
// as sequences of concurrent point-to-point flows, so contention and
// topology effects emerge from the flow model instead of a closed-form
// alpha-beta cost. Matching NCCL behaviour that matters for the paper:
//
//  * ring all-reduce = reduce-scatter + all-gather, 2(N-1) steps;
//  * multiple channels (parallel rings) on NVLink-rich topologies;
//  * hierarchical all-reduce when the group spans an NVLink island and
//    PCIe-attached devices (reduce inside the island first, cross the
//    slow fabric once) — this is why hybridGPUs beats falconGPUs;
//  * protocol efficiency below raw p2p bandwidth (NCCL's LL/LL128
//    protocols reach ~60% of link rate on PCIe, ~80% on NVLink).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/flow_network.hpp"

namespace composim::collectives {

enum class Algorithm { Auto, Ring, Tree, Hierarchical, Naive };

const char* toString(Algorithm a);

struct CollectiveResult {
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes payload = 0;        // per-rank payload size
  Bytes bytes_on_fabric = 0;  // total bytes injected into the fabric
  Algorithm algorithm = Algorithm::Ring;
  SimTime duration() const { return end - start; }
  /// NCCL-style "bus bandwidth" figure of merit: payload * 2(N-1)/N / t.
  Bandwidth busBandwidth(int ranks) const;
};

using CollectiveCallback = std::function<void(const CollectiveResult&)>;

struct CommunicatorOptions {
  double nvlink_protocol_efficiency = 0.80;
  double pcie_protocol_efficiency = 0.62;
  /// Parallel rings when every ring edge is NVLink (NCCL channels).
  int nvlink_channels = 2;
  /// Per-step software overhead (kernel launch + protocol handshake).
  SimTime step_overhead = units::microseconds(14.0);
};

class Communicator {
 public:
  Communicator(Simulator& sim, fabric::FlowNetwork& net, fabric::Topology& topo,
               std::vector<fabric::NodeId> ranks,
               CommunicatorOptions options = {});

  int size() const { return static_cast<int>(ranks_.size()); }
  const std::vector<fabric::NodeId>& ranks() const { return ranks_; }

  /// All-reduce `bytes` of gradient data resident on every rank.
  void allReduce(Bytes bytes, CollectiveCallback done,
                 Algorithm algorithm = Algorithm::Auto);

  /// Broadcast `bytes` from rank `root` to all others (tree over fast
  /// links, sequential fan-out otherwise).
  void broadcast(Bytes bytes, int root, CollectiveCallback done);

  /// Reduce all ranks' buffers to `root` (inverted broadcast tree).
  void reduce(Bytes bytes, int root, CollectiveCallback done);

  /// Ring all-gather: every rank ends with all N shards (bytes = shard size).
  void allGather(Bytes shardBytes, CollectiveCallback done);

  /// Ring reduce-scatter (bytes = full buffer size per rank).
  void reduceScatter(Bytes bytes, CollectiveCallback done);

  /// All-to-all personalized exchange: every rank sends a distinct
  /// `shardBytes` block to every other rank (N(N-1) concurrent flows —
  /// the expert-parallel / embedding-shuffle pattern).
  void allToAll(Bytes shardBytes, CollectiveCallback done);

  /// Barrier: a zero-payload ring pass; completes when every rank has
  /// heard from every other.
  void barrier(CollectiveCallback done);

  /// Islands of ranks mutually connected by pure-NVLink routes. Rank order
  /// is preserved inside each island.
  std::vector<std::vector<int>> nvlinkIslands() const;

  /// NCCL-style topology-aware ring order over `members` (rank indices):
  /// greedy nearest-neighbour by route bottleneck, so the ring follows
  /// wide NVLink edges where they exist and crosses slow fabric as few
  /// times as possible.
  std::vector<int> ringOrder(std::vector<int> members) const;

  /// The algorithm Auto would pick for this group.
  Algorithm chooseAlgorithm() const;

  /// Protocol-derated rate cap for a route between two ranks.
  Bandwidth protocolRate(fabric::NodeId a, fabric::NodeId b) const;

  std::uint64_t collectivesCompleted() const { return completed_; }

  /// Quiescent-point snapshot: with no collective in flight the only
  /// persistent state is the completion counter. Throws std::logic_error
  /// while an op is active or queued.
  struct State {
    std::uint64_t completed = 0;
  };

  State state() const {
    if (op_active_ || !op_queue_.empty()) {
      throw std::logic_error("Communicator::state: collective in flight");
    }
    return State{completed_};
  }

  void restoreState(const State& st) {
    if (op_active_ || !op_queue_.empty()) {
      throw std::logic_error("Communicator::restoreState: collective in flight");
    }
    completed_ = st.completed;
  }

 private:
  struct Op;  // shared state of one in-flight collective

  /// Collectives enqueue like NCCL kernels on one CUDA stream: strictly
  /// in-order, one at a time per communicator.
  void enqueue(std::function<void()> opBody);
  void opFinished();

  // Profiling: ops run one at a time, so begin/end pairs nest on the
  // communicator's track; hierarchical phases nest inside the op span.
  // beginOp also draws the op's correlation id (ProfileSink::
  // newCorrelation) and stamps it on the op span as "corr"; sendChunks
  // threads the same id through FlowOptions::correlation, so every fabric
  // flow of every phase links back to the collective that issued it.
  void beginOp(Op& op);
  void beginPhase(const char* name);
  void endPhase();

  void runAllReduce(std::shared_ptr<Op> op, Bytes bytes, CollectiveCallback done,
                    Algorithm algorithm);
  void runRing(std::shared_ptr<Op> op, const std::vector<int>& members,
               Bytes bytes, int steps_total, std::function<void()> done);
  void runFanSequential(std::shared_ptr<Op> op, int root, Bytes bytes,
                        bool toRoot, std::function<void()> done);
  void runHierarchical(std::shared_ptr<Op> op, Bytes bytes,
                       std::function<void()> done);
  /// Inject one wave of same-size chunks ((from, to) rank pairs) as a
  /// single batched arrival — one solve epoch for the whole wave instead
  /// of one per flow (FlowNetwork::startFlows). `eachDone` fires once per
  /// landed chunk.
  void sendChunks(std::shared_ptr<Op> op,
                  const std::vector<std::pair<int, int>>& pairs, Bytes bytes,
                  std::function<void()> eachDone);
  void finish(std::shared_ptr<Op> op, CollectiveCallback done);

  Simulator& sim_;
  fabric::FlowNetwork& net_;
  fabric::Topology& topo_;
  std::vector<fabric::NodeId> ranks_;
  CommunicatorOptions options_;
  std::string track_;  // profiler track, derived from the rank-0 node name
  std::uint64_t completed_ = 0;
  std::deque<std::function<void()>> op_queue_;
  bool op_active_ = false;
};

}  // namespace composim::collectives
