#include "collectives/communicator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fabric/link_catalog.hpp"

namespace composim::collectives {

const char* toString(Algorithm a) {
  switch (a) {
    case Algorithm::Auto: return "auto";
    case Algorithm::Ring: return "ring";
    case Algorithm::Tree: return "tree";
    case Algorithm::Hierarchical: return "hierarchical";
    case Algorithm::Naive: return "naive";
  }
  return "?";
}

Bandwidth CollectiveResult::busBandwidth(int ranks) const {
  const SimTime t = duration();
  if (t <= 0.0 || ranks <= 1) return 0.0;
  const double factor = 2.0 * (ranks - 1) / static_cast<double>(ranks);
  return factor * static_cast<double>(payload) / t;
}

struct Communicator::Op {
  SimTime start = 0.0;
  Bytes payload = 0;
  Bytes bytes_on_fabric = 0;
  Algorithm algorithm = Algorithm::Ring;
  const char* kind = "collective";
  /// Correlation id linking this op's span to the fabric flows it injects
  /// (0 while profiling is off). Assigned by beginOp.
  std::uint64_t corr = 0;
};

Communicator::Communicator(Simulator& sim, fabric::FlowNetwork& net,
                           fabric::Topology& topo,
                           std::vector<fabric::NodeId> ranks,
                           CommunicatorOptions options)
    : sim_(sim), net_(net), topo_(topo), ranks_(std::move(ranks)),
      options_(options) {
  if (ranks_.empty()) {
    throw std::invalid_argument("Communicator: empty rank set");
  }
  // Derived from topology names (no global counters) so identical runs in
  // one process produce identical traces.
  track_ = "collectives/" + topo_.node(ranks_.front()).name + " x" +
           std::to_string(size());
}

void Communicator::beginOp(Op& op) {
  if (ProfileSink* sink = sim_.profiler()) {
    op.corr = sink->newCorrelation();
    sink->beginSpan(track_, "collectives", op.kind,
                    {{"algorithm", toString(op.algorithm)},
                     {"payload_bytes", op.payload},
                     {"ranks", size()},
                     {"corr", op.corr}});
  }
}

void Communicator::beginPhase(const char* name) {
  if (ProfileSink* sink = sim_.profiler()) {
    sink->beginSpan(track_, "collectives", name);
  }
}

void Communicator::endPhase() {
  if (ProfileSink* sink = sim_.profiler()) sink->endSpan(track_);
}

Bandwidth Communicator::protocolRate(fabric::NodeId a, fabric::NodeId b) const {
  const auto& route = topo_.routeCached(a, b);
  if (!route || route->links.empty()) {
    return std::numeric_limits<Bandwidth>::infinity();
  }
  double eff = options_.nvlink_protocol_efficiency;
  for (fabric::LinkId l : route->links) {
    if (topo_.link(l).kind != fabric::LinkKind::NVLink) {
      eff = options_.pcie_protocol_efficiency;
      break;
    }
  }
  return eff * route->bottleneck;
}

std::vector<std::vector<int>> Communicator::nvlinkIslands() const {
  const int n = size();
  auto pureNvlink = [this](int i, int j) {
    const auto& route = topo_.routeCached(ranks_[static_cast<std::size_t>(i)],
                                          ranks_[static_cast<std::size_t>(j)]);
    if (!route || route->links.empty()) return false;
    for (fabric::LinkId l : route->links) {
      if (topo_.link(l).kind != fabric::LinkKind::NVLink) return false;
    }
    return true;
  };
  std::vector<int> island_of(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> islands;
  for (int i = 0; i < n; ++i) {
    if (island_of[static_cast<std::size_t>(i)] >= 0) continue;
    const int id = static_cast<int>(islands.size());
    islands.push_back({i});
    island_of[static_cast<std::size_t>(i)] = id;
    for (int j = i + 1; j < n; ++j) {
      if (island_of[static_cast<std::size_t>(j)] < 0 && pureNvlink(i, j)) {
        islands[static_cast<std::size_t>(id)].push_back(j);
        island_of[static_cast<std::size_t>(j)] = id;
      }
    }
  }
  return islands;
}

Algorithm Communicator::chooseAlgorithm() const {
  const auto islands = nvlinkIslands();
  if (islands.size() <= 1) return Algorithm::Ring;
  // Hierarchical pays off when the islands are substantial: aggregating
  // inside each island shrinks slow-fabric steps. With mostly-singleton
  // islands (e.g. 4 NVLink GPUs + 4 individually-attached Falcon GPUs) a
  // crossing-minimizing flat ring crosses the slow fabric just as often
  // but skips the extra phases, so NCCL stays with the ring.
  std::size_t multi = 0;
  for (const auto& island : islands) {
    if (island.size() > 1) ++multi;
  }
  if (multi >= 2) return Algorithm::Hierarchical;
  return Algorithm::Ring;
}

std::vector<int> Communicator::ringOrder(std::vector<int> members) const {
  if (members.size() <= 2) return members;
  std::vector<int> order;
  order.reserve(members.size());
  std::vector<bool> used(members.size(), false);
  order.push_back(members[0]);
  used[0] = true;
  for (std::size_t step = 1; step < members.size(); ++step) {
    const fabric::NodeId cur =
        ranks_[static_cast<std::size_t>(order.back())];
    double best = -1.0;
    std::size_t best_idx = 0;
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (used[j]) continue;
      const double rate = protocolRate(
          cur, ranks_[static_cast<std::size_t>(members[j])]);
      if (rate > best) {
        best = rate;
        best_idx = j;
      }
    }
    used[best_idx] = true;
    order.push_back(members[best_idx]);
  }
  return order;
}

void Communicator::enqueue(std::function<void()> opBody) {
  op_queue_.push_back(std::move(opBody));
  if (!op_active_) {
    op_active_ = true;
    auto body = std::move(op_queue_.front());
    op_queue_.pop_front();
    body();
  }
}

void Communicator::opFinished() {
  op_active_ = false;
  if (!op_queue_.empty()) {
    op_active_ = true;
    auto body = std::move(op_queue_.front());
    op_queue_.pop_front();
    // Defer to a fresh event so completion callbacks unwind first.
    sim_.schedule(0.0, std::move(body));
  }
}

void Communicator::sendChunks(std::shared_ptr<Op> op,
                              const std::vector<std::pair<int, int>>& pairs,
                              Bytes bytes, std::function<void()> eachDone) {
  std::vector<fabric::FlowRequest> requests;
  requests.reserve(pairs.size());
  for (const auto& [fromRank, toRank] : pairs) {
    const fabric::NodeId src = ranks_[static_cast<std::size_t>(fromRank)];
    const fabric::NodeId dst = ranks_[static_cast<std::size_t>(toRank)];
    op->bytes_on_fabric += bytes;
    fabric::FlowRequest rq;
    rq.src = src;
    rq.dst = dst;
    rq.bytes = bytes;
    rq.done = [cb = eachDone](const fabric::FlowResult&) { cb(); };
    rq.options.maxRate = protocolRate(src, dst);
    rq.options.extraLatency = fabric::catalog::dmaEndpointOverhead();
    rq.options.tag = "nccl";
    rq.options.correlation = op->corr;
    requests.push_back(std::move(rq));
  }
  net_.startFlows(std::move(requests));
}

void Communicator::runRing(std::shared_ptr<Op> op,
                           const std::vector<int>& unordered, Bytes chunkBytes,
                           int steps_total, std::function<void()> done) {
  const std::vector<int> members = ringOrder(unordered);
  const int n = static_cast<int>(members.size());
  if (n <= 1 || steps_total <= 0 || chunkBytes <= 0) {
    sim_.schedule(0.0, done);
    return;
  }
  // One step: every member forwards a chunk to its ring successor; the
  // step completes when the slowest transfer lands (NCCL's pipeline is
  // modelled at chunk granularity).
  // The step closure must not own itself (a shared_ptr cycle would leak
  // every op abandoned mid-flight, e.g. a communicator retired by fault
  // recovery): it holds a weak self-reference, and each in-flight
  // continuation keeps it alive by capturing the locked pointer.
  auto step = std::make_shared<std::function<void(int)>>();
  *step = [this, op, members, chunkBytes, steps_total, done, n,
           weak_step = std::weak_ptr<std::function<void(int)>>(step)](int s) {
    if (s == steps_total) {
      sim_.schedule(0.0, done);
      return;
    }
    auto self = weak_step.lock();
    auto remaining = std::make_shared<int>(n);
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pairs.emplace_back(members[static_cast<std::size_t>(i)],
                         members[static_cast<std::size_t>((i + 1) % n)]);
    }
    sendChunks(op, pairs, chunkBytes, [this, remaining, self, s] {
      if (--*remaining == 0) {
        sim_.schedule(options_.step_overhead, [self, s] { (*self)(s + 1); });
      }
    });
  };
  (*step)(0);
}

namespace {

/// Binomial-tree rounds for a broadcast from members[0]. Round r has
/// senders members[k] (k < 2^r) transmitting to members[k + 2^r].
int binomialRounds(int n) {
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  return rounds;
}

}  // namespace

void Communicator::runFanSequential(std::shared_ptr<Op> op, int root,
                                    Bytes bytes, bool toRoot,
                                    std::function<void()> done) {
  // Binomial tree with the root swapped into position 0.
  std::vector<int> members(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) members[static_cast<std::size_t>(i)] = i;
  std::swap(members[0], members[static_cast<std::size_t>(root)]);
  const int n = size();
  const int rounds = binomialRounds(n);
  if (n <= 1 || bytes <= 0) {
    sim_.schedule(0.0, done);
    return;
  }

  // Weak self-reference for the same reason as runRing: the closure must
  // not keep itself alive once every continuation is gone.
  auto round = std::make_shared<std::function<void(int)>>();
  *round = [this, op, members, bytes, toRoot, done, n, rounds,
            weak_round = std::weak_ptr<std::function<void(int)>>(round)](int r) {
    if (r == rounds) {
      sim_.schedule(0.0, done);
      return;
    }
    auto self = weak_round.lock();
    // For a broadcast rounds ascend (1, 2, 4 ... senders); for a reduce
    // the same schedule runs in reverse with flow direction flipped.
    const int level = toRoot ? (rounds - 1 - r) : r;
    const int span = 1 << level;
    std::vector<std::pair<int, int>> pairs;
    for (int k = 0; k < span && k + span < n; ++k) {
      const int a = members[static_cast<std::size_t>(k)];
      const int b = members[static_cast<std::size_t>(k + span)];
      pairs.emplace_back(toRoot ? b : a, toRoot ? a : b);
    }
    if (pairs.empty()) {
      (*self)(r + 1);
      return;
    }
    auto remaining = std::make_shared<int>(static_cast<int>(pairs.size()));
    sendChunks(op, pairs, bytes, [this, remaining, self, r] {
      if (--*remaining == 0) {
        sim_.schedule(options_.step_overhead, [self, r] { (*self)(r + 1); });
      }
    });
  };
  (*round)(0);
}

void Communicator::runHierarchical(std::shared_ptr<Op> op, Bytes bytes,
                                   std::function<void()> done) {
  const auto islands = nvlinkIslands();
  std::vector<int> leaders;
  leaders.reserve(islands.size());
  for (const auto& island : islands) leaders.push_back(island.front());

  // Phase 1: ring all-reduce inside every island concurrently.
  beginPhase("intra-reduce");
  auto phase1_remaining = std::make_shared<int>(static_cast<int>(islands.size()));
  auto phase3 = [this, op, islands, bytes, done] {
    endPhase();  // leader-ring
    beginPhase("intra-bcast");
    // Phase 3: broadcast the result from each leader inside its island.
    auto bcast_end = [this, done] {
      endPhase();  // intra-bcast
      done();
    };
    auto remaining = std::make_shared<int>(static_cast<int>(islands.size()));
    for (const auto& island : islands) {
      if (island.size() <= 1) {
        if (--*remaining == 0) sim_.schedule(0.0, bcast_end);
        continue;
      }
      auto broadcast_done = [this, remaining, bcast_end] {
        if (--*remaining == 0) sim_.schedule(0.0, bcast_end);
      };
      // Distribute the reduced buffer inside the island: one ring
      // all-gather pass over the fast fabric.
      const Bytes chunk = std::max<Bytes>(1, bytes / static_cast<Bytes>(island.size()));
      runRing(op, island, chunk, static_cast<int>(island.size()) - 1,
              broadcast_done);
    }
  };
  auto phase2 = [this, op, leaders, bytes, phase3] {
    endPhase();  // intra-reduce
    beginPhase("leader-ring");
    // Phase 2: ring all-reduce among island leaders over the slow fabric.
    if (leaders.size() <= 1) {
      sim_.schedule(0.0, phase3);
      return;
    }
    const Bytes chunk = std::max<Bytes>(1, bytes / static_cast<Bytes>(leaders.size()));
    runRing(op, leaders, chunk, 2 * (static_cast<int>(leaders.size()) - 1),
            phase3);
  };

  for (const auto& island : islands) {
    if (island.size() <= 1) {
      if (--*phase1_remaining == 0) sim_.schedule(0.0, phase2);
      continue;
    }
    const Bytes chunk = std::max<Bytes>(1, bytes / static_cast<Bytes>(island.size()));
    runRing(op, island, chunk, 2 * (static_cast<int>(island.size()) - 1),
            [phase1_remaining, phase2, this] {
              if (--*phase1_remaining == 0) sim_.schedule(0.0, phase2);
            });
  }
}

void Communicator::finish(std::shared_ptr<Op> op, CollectiveCallback done) {
  ++completed_;
  if (ProfileSink* sink = sim_.profiler()) {
    sink->endSpan(track_, {{"bytes_on_fabric", op->bytes_on_fabric}});
  }
  CollectiveResult r;
  r.start = op->start;
  r.end = sim_.now();
  r.payload = op->payload;
  r.bytes_on_fabric = op->bytes_on_fabric;
  r.algorithm = op->algorithm;
  if (done) done(r);
  opFinished();
}

void Communicator::allReduce(Bytes bytes, CollectiveCallback done,
                             Algorithm algorithm) {
  if (algorithm == Algorithm::Auto) algorithm = chooseAlgorithm();
  auto op = std::make_shared<Op>();
  op->payload = bytes;
  op->algorithm = algorithm;
  op->kind = "allReduce";
  enqueue([this, op, bytes, done, algorithm] {
    op->start = sim_.now();
    beginOp(*op);
    runAllReduce(op, bytes, done, algorithm);
  });
}

void Communicator::runAllReduce(std::shared_ptr<Op> op, Bytes bytes,
                                CollectiveCallback done, Algorithm algorithm) {
  const int n = size();

  if (n <= 1 || bytes <= 0) {
    sim_.schedule(0.0, [this, op, done] { finish(op, done); });
    return;
  }

  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;

  switch (algorithm) {
    case Algorithm::Ring: {
      // Parallel channels when every ring edge is pure NVLink.
      int channels = 1;
      const auto islands = nvlinkIslands();
      if (islands.size() == 1 && n > 1) channels = options_.nvlink_channels;
      auto remaining = std::make_shared<int>(channels);
      const Bytes perChannel = std::max<Bytes>(1, bytes / channels);
      for (int c = 0; c < channels; ++c) {
        const Bytes chunk = std::max<Bytes>(1, perChannel / static_cast<Bytes>(n));
        runRing(op, everyone, chunk, 2 * (n - 1), [this, remaining, op, done] {
          if (--*remaining == 0) finish(op, done);
        });
      }
      break;
    }
    case Algorithm::Tree: {
      runFanSequential(op, 0, bytes, /*toRoot=*/true, [this, op, bytes, done] {
        runFanSequential(op, 0, bytes, /*toRoot=*/false,
                         [this, op, done] { finish(op, done); });
      });
      break;
    }
    case Algorithm::Hierarchical: {
      runHierarchical(op, bytes, [this, op, done] { finish(op, done); });
      break;
    }
    case Algorithm::Naive: {
      // Everyone sends to rank 0, rank 0 replies to everyone (PyTorch DP's
      // master-centric pattern; also the ablation baseline).
      auto gathered = std::make_shared<int>(n - 1);
      std::vector<std::pair<int, int>> to_root;
      to_root.reserve(static_cast<std::size_t>(n - 1));
      for (int i = 1; i < n; ++i) to_root.emplace_back(i, 0);
      sendChunks(op, to_root, bytes, [this, op, gathered, bytes, done, n] {
        if (--*gathered != 0) return;
        auto scattered = std::make_shared<int>(n - 1);
        std::vector<std::pair<int, int>> from_root;
        from_root.reserve(static_cast<std::size_t>(n - 1));
        for (int j = 1; j < n; ++j) from_root.emplace_back(0, j);
        sendChunks(op, from_root, bytes, [this, op, scattered, done] {
          if (--*scattered == 0) finish(op, done);
        });
      });
      break;
    }
    case Algorithm::Auto:
      break;  // unreachable: resolved above
  }
}

void Communicator::broadcast(Bytes bytes, int root, CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = bytes;
  op->algorithm = Algorithm::Tree;
  op->kind = "broadcast";
  enqueue([this, op, bytes, root, done] {
    op->start = sim_.now();
    beginOp(*op);
    runFanSequential(op, root, bytes, /*toRoot=*/false,
                     [this, op, done] { finish(op, done); });
  });
}

void Communicator::reduce(Bytes bytes, int root, CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = bytes;
  op->algorithm = Algorithm::Tree;
  op->kind = "reduce";
  enqueue([this, op, bytes, root, done] {
    op->start = sim_.now();
    beginOp(*op);
    runFanSequential(op, root, bytes, /*toRoot=*/true,
                     [this, op, done] { finish(op, done); });
  });
}

void Communicator::allGather(Bytes shardBytes, CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = shardBytes * size();
  op->algorithm = Algorithm::Ring;
  op->kind = "allGather";
  enqueue([this, op, shardBytes, done] {
    op->start = sim_.now();
    beginOp(*op);
    std::vector<int> everyone(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) everyone[static_cast<std::size_t>(i)] = i;
    runRing(op, everyone, shardBytes, size() - 1,
            [this, op, done] { finish(op, done); });
  });
}

void Communicator::allToAll(Bytes shardBytes, CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = shardBytes * (size() - 1);
  op->algorithm = Algorithm::Ring;
  op->kind = "allToAll";
  enqueue([this, op, shardBytes, done] {
    op->start = sim_.now();
    beginOp(*op);
    const int n = size();
    if (n <= 1 || shardBytes <= 0) {
      sim_.schedule(0.0, [this, op, done] { finish(op, done); });
      return;
    }
    auto remaining = std::make_shared<int>(n * (n - 1));
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(static_cast<std::size_t>(n * (n - 1)));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
    sendChunks(op, pairs, shardBytes, [this, remaining, op, done] {
      if (--*remaining == 0) finish(op, done);
    });
  });
}

void Communicator::barrier(CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = 0;
  op->algorithm = Algorithm::Ring;
  op->kind = "barrier";
  enqueue([this, op, done] {
    op->start = sim_.now();
    beginOp(*op);
    std::vector<int> everyone(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) everyone[static_cast<std::size_t>(i)] = i;
    // Two latency-only ring passes propagate "everyone arrived".
    runRing(op, everyone, 1, 2 * (size() - 1),
            [this, op, done] { finish(op, done); });
  });
}

void Communicator::reduceScatter(Bytes bytes, CollectiveCallback done) {
  auto op = std::make_shared<Op>();
  op->payload = bytes;
  op->algorithm = Algorithm::Ring;
  op->kind = "reduceScatter";
  enqueue([this, op, bytes, done] {
    op->start = sim_.now();
    beginOp(*op);
    std::vector<int> everyone(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) everyone[static_cast<std::size_t>(i)] = i;
    const Bytes chunk = std::max<Bytes>(1, bytes / size());
    runRing(op, everyone, chunk, size() - 1,
            [this, op, done] { finish(op, done); });
  });
}

}  // namespace composim::collectives
