// composim: storage device model (NVMe, NAS baseline).
//
// Reads and writes are issued as fabric flows from/to the storage node, so
// a Falcon-attached NVMe naturally pays the drawer-switch + host-adapter
// path while a local NVMe rides PCIe3 to the root complex. The device's
// own media rate is applied as a flow rate cap; small random reads (the
// many-small-files pattern of vision datasets) are derated by the spec's
// random_read_efficiency. Operations on one device serialize — the media
// is the shared resource, so N concurrent readers share one media rate
// rather than each getting it.
#pragma once

#include <deque>
#include <functional>
#include <stdexcept>
#include <string>

#include "devices/specs.hpp"
#include "fabric/flow_network.hpp"

namespace composim::devices {

enum class AccessPattern { Sequential, Random };

class StorageDevice {
 public:
  StorageDevice(fabric::FlowNetwork& net, fabric::NodeId node, StorageSpec spec,
                std::string name)
      : net_(net), node_(node), spec_(std::move(spec)), name_(std::move(name)) {}

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  const std::string& name() const { return name_; }
  fabric::NodeId node() const { return node_; }
  const StorageSpec& spec() const { return spec_; }

  /// Re-point the device at a different fabric node — an NVMe spare
  /// mounted in a new slot after the original fell off the bus. In-flight
  /// ops finish (or fail) against the old node; queued ops dispatch
  /// against the new one.
  void retarget(fabric::NodeId node) { node_ = node; }

  /// Read `bytes` into the memory at `destination` (a fabric node).
  void read(Bytes bytes, fabric::NodeId destination, AccessPattern pattern,
            std::function<void(const fabric::FlowResult&)> done);

  /// Write `bytes` from `source` onto the device.
  void write(Bytes bytes, fabric::NodeId source,
             std::function<void(const fabric::FlowResult&)> done);

  Bytes bytesRead() const { return bytes_read_; }
  Bytes bytesWritten() const { return bytes_written_; }
  std::size_t queuedOps() const { return queue_.size(); }

  /// Quiescent-point snapshot (no op in flight or queued).
  struct State {
    Bytes bytes_read = 0;
    Bytes bytes_written = 0;
  };

  State state() const {
    if (busy_ || !queue_.empty()) {
      throw std::logic_error("StorageDevice::state: ops in flight on " + name_);
    }
    return State{bytes_read_, bytes_written_};
  }

  void restoreState(const State& st) {
    if (busy_ || !queue_.empty()) {
      throw std::logic_error("StorageDevice::restoreState: ops in flight on " +
                             name_);
    }
    bytes_read_ = st.bytes_read;
    bytes_written_ = st.bytes_written;
  }

 private:
  struct PendingOp {
    bool is_read = true;
    Bytes bytes = 0;
    fabric::NodeId peer = fabric::kInvalidNode;
    AccessPattern pattern = AccessPattern::Sequential;
    std::function<void(const fabric::FlowResult&)> done;
  };

  void submit(PendingOp op);
  void dispatch(PendingOp op);

  fabric::FlowNetwork& net_;
  fabric::NodeId node_;
  StorageSpec spec_;
  std::string name_;
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
  bool busy_ = false;
  std::deque<PendingOp> queue_;
};

}  // namespace composim::devices
