// composim: network interface card model.
//
// The hosts carry two Intel X540-AT2 10 GbE controllers (paper §II-A);
// in the reproduction they matter as the path to NAS-style shared storage
// and as a composable device class the Falcon can hold. A Nic wires the
// host root complex to an external network node through an Ethernet-class
// link; traffic accounting comes from the link counters.
#pragma once

#include <string>

#include "fabric/link_catalog.hpp"
#include "fabric/topology.hpp"

namespace composim::devices {

struct NicSpec {
  std::string name;
  Bandwidth rate;       // per direction
  SimTime latency;
};

namespace specs {

inline NicSpec x540_10gbe() {
  return {"Intel X540-AT2 10GbE", units::Gbps(9.4), units::microseconds(25.0)};
}

}  // namespace specs

class Nic {
 public:
  /// Creates the NIC's external port node and wires `attachPoint` (host
  /// root complex or Falcon slot endpoint) to it.
  Nic(fabric::Topology& topo, fabric::NodeId attachPoint, NicSpec spec,
      std::string name)
      : topo_(topo), spec_(std::move(spec)), name_(std::move(name)) {
    port_ = topo_.addNode(name_ + ".port", fabric::NodeKind::Nic);
    auto [tx, rx] = topo_.addDuplexLink(attachPoint, port_, spec_.rate,
                                        spec_.latency, fabric::LinkKind::Ethernet);
    tx_link_ = tx;
    rx_link_ = rx;
  }

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const std::string& name() const { return name_; }
  const NicSpec& spec() const { return spec_; }
  /// The far side of the wire: connect switches/NAS nodes here.
  fabric::NodeId externalPort() const { return port_; }

  Bytes bytesTransmitted() const { return topo_.link(tx_link_).counters.bytes; }
  Bytes bytesReceived() const { return topo_.link(rx_link_).counters.bytes; }

 private:
  fabric::Topology& topo_;
  NicSpec spec_;
  std::string name_;
  fabric::NodeId port_ = fabric::kInvalidNode;
  fabric::LinkId tx_link_ = fabric::kInvalidLink;
  fabric::LinkId rx_link_ = fabric::kInvalidLink;
};

}  // namespace composim::devices
