// composim: device specification catalog.
//
// Public-datasheet constants for the hardware in the paper's test bed
// (Section V-A): NVIDIA Tesla V100-SXM2 / V100-PCIE / P100, Intel Xeon
// Gold 6148 hosts, Intel 4 TB NVMe drives, X540 10 GbE NICs, and a NAS
// stand-in used as the slow-storage baseline of Fig 15.
#pragma once

#include <string>

#include "sim/units.hpp"

namespace composim::devices {

struct GpuSpec {
  std::string name;
  double fp32_flops;      // peak FLOP/s, FP32 CUDA cores
  double fp16_flops;      // peak FLOP/s, FP16 tensor cores
  Bandwidth mem_bandwidth;  // HBM2 bytes/s
  Bytes mem_capacity;
  int nvlink_bricks;      // 0 for PCIe-only parts
  SimTime kernel_launch_overhead;
};

struct CpuSpec {
  std::string name;
  int sockets;
  int cores_per_socket;
  int threads_per_core;
  double ghz;
  Bytes system_memory;
  int totalCores() const { return sockets * cores_per_socket; }
  int totalThreads() const { return totalCores() * threads_per_core; }
};

struct StorageSpec {
  std::string name;
  Bandwidth seq_read;
  Bandwidth seq_write;
  double random_read_efficiency;  // fraction of seq_read for small random IO
  SimTime access_latency;
  Bytes capacity;
};

namespace specs {

inline GpuSpec v100_sxm2() {
  return {"Tesla V100-SXM2-16GB", units::TFLOPS(15.7), units::TFLOPS(125.0),
          units::GBps(900.0), units::GiB(16), 6, units::microseconds(6.0)};
}

inline GpuSpec v100_pcie() {
  // The Falcon-attached parts: same silicon in PCIe form factor, no
  // NVLink. Compute rates are kept equal to the SXM2 part so the Fig 11
  // comparison isolates the fabric (the paper attributes the overhead to
  // PCIe switching, not to GPU binning).
  return {"Tesla V100-PCIE-16GB", units::TFLOPS(15.7), units::TFLOPS(125.0),
          units::GBps(900.0), units::GiB(16), 0, units::microseconds(6.0)};
}

inline GpuSpec p100_pcie() {
  return {"Tesla P100-PCIE-16GB", units::TFLOPS(9.3), units::TFLOPS(18.7),
          units::GBps(732.0), units::GiB(16), 0, units::microseconds(6.0)};
}

inline CpuSpec xeon_gold_6148() {
  return {"Intel Xeon Gold 6148", 2, 20, 2, 2.4, units::GiB(756)};
}

inline StorageSpec intel_nvme_4tb() {
  // Intel SSDPEDKX040T7 (DC P4500 4 TB): ~3.2 GB/s seq read.
  return {"Intel SSDPEDKX040T7 4TB NVMe", units::GBps(3.2), units::GBps(1.9),
          0.72, units::microseconds(85.0), units::GB(4000)};
}

inline StorageSpec sata_boot_ssd() {
  // The "local storage" of Table III's localGPUs/hybridGPUs/falconGPUs
  // rows: the hosts' boot SSD, not the NVMe drive. Scattered small-file
  // reads (the mosaic pattern) fall well below the sequential rate.
  return {"SATA boot SSD (local storage)", units::MBps(540.0), units::MBps(500.0),
          0.30, units::microseconds(180.0), units::GB(2000)};
}

inline StorageSpec nas_10gbe() {
  // Fig 15 baseline: dataset served over the X540 10 GbE NIC from shared
  // storage. Sequential rate is wire-limited; random small-file reads pay
  // a heavy protocol penalty.
  return {"10GbE NAS (baseline storage)", units::Gbps(8.2), units::Gbps(6.0),
          0.30, units::microseconds(450.0), units::GB(100000)};
}

}  // namespace specs
}  // namespace composim::devices
