#include "devices/host_cpu.hpp"

#include <algorithm>
#include <utility>

namespace composim::devices {

void HostCpu::touchAccounting() {
  const SimTime now = sim_.now();
  busy_accum_ += busy_threads_ * (now - last_change_);
  last_change_ = now;
}

void HostCpu::submit(SimTime duration, std::function<void()> done) {
  Task t{std::max(0.0, duration), std::move(done)};
  if (busy_threads_ < totalThreads()) {
    dispatch(std::move(t));
  } else {
    queue_.push_back(std::move(t));
  }
}

void HostCpu::dispatch(Task task) {
  touchAccounting();
  ++busy_threads_;
  sim_.schedule(task.duration, [this, cb = std::move(task.done)]() mutable {
    touchAccounting();
    --busy_threads_;
    if (cb) cb();
    if (!queue_.empty() && busy_threads_ < totalThreads()) {
      Task next = std::move(queue_.front());
      queue_.pop_front();
      dispatch(std::move(next));
    }
  });
}

SimTime HostCpu::busyThreadTime() const {
  return busy_accum_ + busy_threads_ * (sim_.now() - last_change_);
}

void HostCpu::freeMemory(Bytes bytes) {
  host_mem_used_ = std::max<Bytes>(0, host_mem_used_ - bytes);
}

}  // namespace composim::devices
