// composim: host CPU model.
//
// A pool of hardware threads executing submitted tasks FIFO across the
// earliest-available thread (how a PyTorch DataLoader worker pool behaves
// when workers outnumber cores is irrelevant here: we schedule onto
// hardware threads directly). Utilization accounting feeds Fig 13.
#pragma once

#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include "devices/specs.hpp"
#include "sim/simulator.hpp"

namespace composim::devices {

class HostCpu {
 public:
  HostCpu(Simulator& sim, CpuSpec spec) : sim_(sim), spec_(spec) {}

  HostCpu(const HostCpu&) = delete;
  HostCpu& operator=(const HostCpu&) = delete;

  const CpuSpec& spec() const { return spec_; }

  /// Submit a task consuming `duration` seconds of one hardware thread;
  /// `done` fires at completion. Tasks queue when all threads are busy.
  void submit(SimTime duration, std::function<void()> done);

  int busyThreads() const { return busy_threads_; }
  int totalThreads() const { return spec_.totalThreads(); }
  std::size_t queuedTasks() const { return queue_.size(); }

  /// Cumulative busy thread-seconds (telemetry diffs this for Fig 13).
  SimTime busyThreadTime() const;

  /// --- host memory accounting (Fig 14) ---
  void allocateMemory(Bytes bytes) { host_mem_used_ += bytes; }
  void freeMemory(Bytes bytes);
  Bytes memoryUsed() const { return host_mem_used_; }
  Bytes memoryCapacity() const { return spec_.system_memory; }
  double memoryUtilization() const {
    return static_cast<double>(host_mem_used_) /
           static_cast<double>(spec_.system_memory);
  }

  /// Quiescent-point snapshot (no task running or queued).
  struct State {
    SimTime busy_accum = 0.0;
    SimTime last_change = 0.0;
    Bytes host_mem_used = 0;
  };

  State state() const {
    if (busy_threads_ != 0 || !queue_.empty()) {
      throw std::logic_error("HostCpu::state: tasks in flight");
    }
    return State{busy_accum_, last_change_, host_mem_used_};
  }

  void restoreState(const State& st) {
    if (busy_threads_ != 0 || !queue_.empty()) {
      throw std::logic_error("HostCpu::restoreState: tasks in flight");
    }
    busy_accum_ = st.busy_accum;
    last_change_ = st.last_change;
    host_mem_used_ = st.host_mem_used;
  }

 private:
  struct Task {
    SimTime duration;
    std::function<void()> done;
  };

  void dispatch(Task task);

  void touchAccounting();

  Simulator& sim_;
  CpuSpec spec_;
  std::deque<Task> queue_;
  int busy_threads_ = 0;
  SimTime busy_accum_ = 0.0;      // integral of busy_threads_ over time
  SimTime last_change_ = 0.0;
  Bytes host_mem_used_ = 0;
};

}  // namespace composim::devices
