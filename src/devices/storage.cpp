#include "devices/storage.hpp"

#include <utility>

namespace composim::devices {

void StorageDevice::read(Bytes bytes, fabric::NodeId destination,
                         AccessPattern pattern,
                         std::function<void(const fabric::FlowResult&)> done) {
  bytes_read_ += bytes;
  submit(PendingOp{true, bytes, destination, pattern, std::move(done)});
}

void StorageDevice::write(Bytes bytes, fabric::NodeId source,
                          std::function<void(const fabric::FlowResult&)> done) {
  bytes_written_ += bytes;
  submit(PendingOp{false, bytes, source, AccessPattern::Sequential,
                   std::move(done)});
}

void StorageDevice::submit(PendingOp op) {
  if (busy_) {
    queue_.push_back(std::move(op));
    return;
  }
  busy_ = true;
  dispatch(std::move(op));
}

void StorageDevice::dispatch(PendingOp op) {
  fabric::FlowOptions fo;
  if (op.is_read) {
    fo.maxRate = (op.pattern == AccessPattern::Random)
                     ? spec_.seq_read * spec_.random_read_efficiency
                     : spec_.seq_read;
    fo.tag = name_ + ":read";
  } else {
    fo.maxRate = spec_.seq_write;
    fo.tag = name_ + ":write";
  }
  fo.extraLatency = spec_.access_latency;

  auto completion = [this, cb = std::move(op.done)](const fabric::FlowResult& r) {
    // Free the media before the caller reacts, then drain the queue.
    if (queue_.empty()) {
      busy_ = false;
    } else {
      PendingOp next = std::move(queue_.front());
      queue_.pop_front();
      dispatch(std::move(next));
    }
    if (cb) cb(r);
  };
  if (op.is_read) {
    net_.startFlow(node_, op.peer, op.bytes, std::move(completion), std::move(fo));
  } else {
    net_.startFlow(op.peer, node_, op.bytes, std::move(completion), std::move(fo));
  }
}

}  // namespace composim::devices
