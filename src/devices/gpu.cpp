#include "devices/gpu.hpp"

#include <algorithm>
#include <utility>

namespace composim::devices {

SimTime Gpu::kernelDuration(const KernelDesc& k) const {
  const double peak =
      (k.precision == Precision::FP16) ? spec_.fp16_flops : spec_.fp32_flops;
  const double rate = std::max(1.0, peak * std::clamp(k.efficiency, 1e-4, 1.0));
  const double t_compute = k.flops / rate;
  const double t_memory =
      static_cast<double>(k.mem_bytes) / spec_.mem_bandwidth;
  return spec_.kernel_launch_overhead + std::max(t_compute, t_memory);
}

void Gpu::launchKernel(const KernelDesc& k, std::function<void()> done) {
  ++kernels_launched_;
  queue_.push_back(Pending{k, std::move(done)});
  if (!busy_) startNext();
}

void Gpu::startNext() {
  if (queue_.empty()) return;
  Pending p = std::move(queue_.front());
  queue_.pop_front();

  const SimTime d = kernelDuration(p.desc);
  const SimTime t_memory =
      static_cast<double>(p.desc.mem_bytes) / spec_.mem_bandwidth;
  busy_ = true;
  busy_since_ = sim_.now();
  current_mem_busy_ = std::min(t_memory, d);

  sim_.schedule(d, [this, d, cb = std::move(p.done)]() mutable {
    busy_ = false;
    busy_accum_ += d;
    mem_busy_accum_ += current_mem_busy_;
    current_mem_busy_ = 0.0;
    ++kernels_retired_;
    if (cb) cb();
    startNext();
  });
}

void Gpu::allocate(Bytes bytes) {
  if (allocated_ + bytes > spec_.mem_capacity) {
    throw GpuOutOfMemory(name_ + ": allocation of " + formatBytes(bytes) +
                         " exceeds " + formatBytes(spec_.mem_capacity) +
                         " (in use: " + formatBytes(allocated_) + ")");
  }
  allocated_ += bytes;
}

void Gpu::free(Bytes bytes) {
  allocated_ = std::max<Bytes>(0, allocated_ - bytes);
}

SimTime Gpu::busyTime() const {
  return busy_accum_ + (busy_ ? sim_.now() - busy_since_ : 0.0);
}

SimTime Gpu::memBusyTime() const {
  if (!busy_) return mem_busy_accum_;
  // Attribute the in-flight kernel's memory time proportionally.
  const SimTime elapsed = sim_.now() - busy_since_;
  return mem_busy_accum_ + std::min(current_mem_busy_, elapsed);
}

}  // namespace composim::devices
