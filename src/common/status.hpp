// composim: shared operation-status type.
//
// One result shape for every management-plane and I/O operation that can
// fail for a reportable reason: the Falcon chassis/MCS/BMC surfaces
// (formerly ad-hoc OpResult / bool+detail-string pairs), profiler exports,
// and anything audit records or tests want to print uniformly. Success is
// the default-constructed value; failures carry a machine-checkable code
// plus a human-readable detail string.
#pragma once

#include <string>

namespace composim {

/// Failure taxonomy, gRPC-flavoured but trimmed to what the simulator's
/// management plane actually distinguishes.
enum class StatusCode {
  Ok,
  InvalidArgument,     // malformed input (bad slot id, bad interval)
  NotFound,            // named entity does not exist
  AlreadyExists,       // uniqueness violated (duplicate user, double claim)
  PermissionDenied,    // actor lacks the role / ownership required
  FailedPrecondition,  // state forbids the operation (mode, occupancy)
  Unavailable,         // resource present but not usable right now
  Internal,            // I/O or invariant failure inside the simulator
  Retryable,           // transient failure; the same call may succeed later
};

const char* toString(StatusCode code);

struct Status {
  bool ok = true;
  StatusCode code = StatusCode::Ok;
  std::string detail;

  static Status success() { return {}; }
  /// Generic failure; prefer the typed factories below where the cause is
  /// known so audit logs and tests can match on the code.
  static Status failure(std::string why,
                        StatusCode code = StatusCode::FailedPrecondition) {
    return {false, code, std::move(why)};
  }
  static Status invalidArgument(std::string why) {
    return failure(std::move(why), StatusCode::InvalidArgument);
  }
  static Status notFound(std::string why) {
    return failure(std::move(why), StatusCode::NotFound);
  }
  static Status alreadyExists(std::string why) {
    return failure(std::move(why), StatusCode::AlreadyExists);
  }
  static Status permissionDenied(std::string why) {
    return failure(std::move(why), StatusCode::PermissionDenied);
  }
  static Status failedPrecondition(std::string why) {
    return failure(std::move(why), StatusCode::FailedPrecondition);
  }
  static Status unavailable(std::string why) {
    return failure(std::move(why), StatusCode::Unavailable);
  }
  static Status internal(std::string why) {
    return failure(std::move(why), StatusCode::Internal);
  }
  static Status retryable(std::string why) {
    return failure(std::move(why), StatusCode::Retryable);
  }

  explicit operator bool() const { return ok; }

  /// "OK" or "PERMISSION_DENIED: only administrators may remove users".
  std::string toString() const;
};

}  // namespace composim
