#include "common/status.hpp"

namespace composim {

const char* toString(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "OK";
    case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::NotFound: return "NOT_FOUND";
    case StatusCode::AlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::PermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::Unavailable: return "UNAVAILABLE";
    case StatusCode::Internal: return "INTERNAL";
    case StatusCode::Retryable: return "RETRYABLE";
  }
  return "?";
}

std::string Status::toString() const {
  if (ok) return "OK";
  std::string out = composim::toString(code);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace composim
