// composim: Management Center Server (paper §II-D, "Enterprise Features").
//
// The MCS sits between users and the Falcon management plane so that
// self-service experimentation cannot disrupt other tenants: users operate
// only on resources they own (or claim unowned ones); administrators can do
// everything. Every decision is recorded in an audit log. Resource
// allocations can be exported to / imported from a JSON configuration file,
// mirroring the appliance's import/export feature.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "falcon/bmc.hpp"
#include "falcon/chassis.hpp"
#include "falcon/json.hpp"

namespace composim::falcon {

enum class Role { Administrator, User };

const char* toString(Role r);

struct AuditRecord {
  SimTime time = 0.0;
  std::string user;
  std::string operation;
  bool allowed = false;
  std::string detail;
};

class Mcs {
 public:
  explicit Mcs(FalconChassis& chassis) : chassis_(chassis) {}

  // --- accounts ---
  OpResult addUser(const std::string& name, Role role);
  OpResult removeUser(const std::string& actor, const std::string& name);
  std::optional<Role> roleOf(const std::string& name) const;

  // --- ownership ---
  /// Claim an unowned, occupied slot for `user`. Admins may also claim on
  /// behalf of others via `forUser`.
  OpResult claimResource(const std::string& user, SlotId slot,
                         const std::string& forUser = {});
  OpResult releaseResource(const std::string& user, SlotId slot);
  std::optional<std::string> ownerOf(SlotId slot) const;
  std::vector<SlotId> resourcesOwnedBy(const std::string& user) const;

  // --- authorized management operations (delegate to the chassis) ---
  OpResult attach(const std::string& user, SlotId slot, int port);
  OpResult detach(const std::string& user, SlotId slot);
  OpResult setDrawerMode(const std::string& user, int drawer, DrawerMode mode);

  /// Event-log export is an administrator feature on the appliance.
  OpResult exportEventLog(const std::string& user, const Bmc& bmc,
                          std::vector<BmcEvent>& out) const;

  // --- configuration import/export ---
  /// Serialize modes, assignments and ownership to a configuration file.
  Json exportConfig() const;
  /// Re-apply a configuration: drawer modes, then slot attachments and
  /// ownership. Fails (without partial rollback of prior successes) on the
  /// first mismatch between the file and the installed devices.
  OpResult importConfig(const std::string& user, const Json& config);

  const std::vector<AuditRecord>& auditLog() const { return audit_; }

 private:
  bool isAdmin(const std::string& user) const;
  OpResult authorizeSlotOp(const std::string& user, SlotId slot,
                           const std::string& op);
  void record(const std::string& user, const std::string& op, bool allowed,
              const std::string& detail) const;

  FalconChassis& chassis_;
  std::map<std::string, Role> users_;
  std::map<std::pair<int, int>, std::string> owners_;  // (drawer, index) -> user
  mutable std::vector<AuditRecord> audit_;
};

}  // namespace composim::falcon
