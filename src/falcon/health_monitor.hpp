// composim: health monitor polling BMC telemetry for fault detection.
//
// The Falcon BMC exposes link health and accumulated PCIe error counters
// (paper §II-B); an operator — or an orchestrator — watches those views to
// decide when a device has failed and the composable re-allocation story
// (§III-B.3) should kick in. HealthMonitor models that watcher: it polls
// the BMC's link-health table and the chassis host ports on a simulated
// interval, diffs against the previous snapshot, and emits typed
// FaultEvents to a subscriber.
//
// Detection is therefore *not* instantaneous: a fault injected between two
// polls is seen at the next poll, so detection latency is uniform in
// (0, interval] — exactly the telemetry-lag term a real MTTR breakdown has.
// Error storms use a rate threshold (errors accumulated since the last
// poll), so correctable-error noise below the threshold never alarms.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "falcon/bmc.hpp"
#include "falcon/chassis.hpp"

namespace composim::falcon {

enum class FaultEventType {
  DeviceLost,        // slot link down (fall-off-the-bus)
  DeviceRestored,    // slot link back up after a loss
  ErrorStorm,        // accumulated errors jumped >= threshold in one poll
  HostPortLost,      // host adapter link down
  HostPortRestored,  // host adapter link back up
};

const char* toString(FaultEventType t);

struct FaultEvent {
  SimTime time = 0.0;  // detection time (the poll that saw it)
  FaultEventType type = FaultEventType::DeviceLost;
  SlotId slot;              // device events; undefined for host-port events
  int port = -1;            // host-port events; -1 for device events
  std::string device_name;  // device or host name
  DeviceType device_type = DeviceType::Custom;
  std::uint64_t error_delta = 0;  // ErrorStorm: errors since last poll
};

class HealthMonitor {
 public:
  using Handler = std::function<void(const FaultEvent&)>;

  HealthMonitor(Simulator& sim, FalconChassis& chassis, Bmc& bmc)
      : sim_(sim), chassis_(chassis), bmc_(bmc) {}

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Subscribe to fault events. Handlers run after a full poll pass, so a
  /// handler may mutate the chassis (detach/attach) without corrupting the
  /// scan that detected the fault.
  void subscribe(Handler handler) { handlers_.push_back(std::move(handler)); }

  /// Errors accumulated within one poll interval at or above this count
  /// raise an ErrorStorm event (default 100 — well above random noise).
  void setErrorStormThreshold(std::uint64_t errors) { storm_threshold_ = errors; }

  /// Start polling every `interval` simulated seconds. InvalidArgument for
  /// a non-positive interval; FailedPrecondition when already running.
  Status start(SimTime interval);
  void stop() { running_ = false; }

  /// One poll pass (also what the periodic schedule runs). Snapshot link
  /// health, diff against the previous snapshot, dispatch events.
  void poll();

  std::uint64_t detections() const { return detections_; }
  const std::vector<FaultEvent>& log() const { return log_; }

 private:
  struct SlotHealth {
    bool up = true;
    std::uint64_t errors = 0;
  };

  void emit(FaultEvent ev);
  void periodicPoll(SimTime interval);

  Simulator& sim_;
  FalconChassis& chassis_;
  Bmc& bmc_;
  std::vector<Handler> handlers_;
  // Keyed by drawer * kSlotsPerDrawer + index.
  std::unordered_map<int, SlotHealth> slot_state_;
  std::unordered_map<int, bool> port_state_;
  std::vector<FaultEvent> log_;
  std::uint64_t storm_threshold_ = 100;
  std::uint64_t detections_ = 0;
  bool running_ = false;
};

}  // namespace composim::falcon
