// composim: the management GUI's two views (paper §II-B): a list view of
// resources and a topology view of hosts, ports, drawers and slots, plus
// the per-port traffic monitor. Rendered as text — the reproduction's
// equivalent of the web interface.
#pragma once

#include <string>

#include "falcon/chassis.hpp"

namespace composim::falcon {

/// Tabular resource list (device, type, link, owner host).
std::string renderListView(const FalconChassis& chassis);

/// ASCII topology diagram: hosts -> ports -> drawers -> slots.
std::string renderTopologyView(const FalconChassis& chassis);

/// Port traffic monitor: cumulative ingress/egress and error counts per
/// host port and per occupied slot.
std::string renderPortTraffic(const FalconChassis& chassis,
                              const fabric::Topology& topo);

}  // namespace composim::falcon
