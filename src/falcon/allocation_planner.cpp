#include "falcon/allocation_planner.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace composim::falcon {

namespace {

struct DrawerState {
  std::vector<SlotId> free_gpus;
  std::vector<SlotId> free_nvme;
  std::set<int> ports_in_use;  // ports with existing or planned assignments
};

/// Try to satisfy the drawer's requests under Standard-mode half rules.
/// Requests are (port -> wanted slots); Standard allows at most two ports,
/// the lower-numbered one restricted to slots 0-3, the higher to 4-7.
bool tryStandard(const DrawerState& st,
                 const std::vector<std::pair<int, std::pair<int, int>>>& wants,
                 std::vector<PlannedAttach>& out) {
  std::set<int> ports = st.ports_in_use;
  for (const auto& [port, counts] : wants) ports.insert(port);
  if (ports.size() > FalconChassis::kMaxHostsPerDrawerStandard) return false;

  const bool split = ports.size() == 2;
  const int lo = ports.empty() ? -1 : *ports.begin();
  auto allowed = [&](int port, const SlotId& slot) {
    if (!split) return true;
    const bool lowerHalf = slot.index < FalconChassis::kSlotsPerDrawer / 2;
    return lowerHalf == (port == lo);
  };

  std::vector<PlannedAttach> planned;
  std::set<std::pair<int, int>> taken;
  for (const auto& [port, counts] : wants) {
    auto pick = [&](const std::vector<SlotId>& pool, int n) {
      int found = 0;
      for (const auto& slot : pool) {
        if (found == n) break;
        if (taken.count({slot.drawer, slot.index})) continue;
        if (!allowed(port, slot)) continue;
        taken.insert({slot.drawer, slot.index});
        planned.push_back({slot, port});
        ++found;
      }
      return found == n;
    };
    if (!pick(st.free_gpus, counts.first)) return false;
    if (!pick(st.free_nvme, counts.second)) return false;
  }
  out.insert(out.end(), planned.begin(), planned.end());
  return true;
}

/// Advanced mode: up to three ports, any slots.
bool tryAdvanced(const DrawerState& st,
                 const std::vector<std::pair<int, std::pair<int, int>>>& wants,
                 std::vector<PlannedAttach>& out) {
  std::set<int> ports = st.ports_in_use;
  for (const auto& [port, counts] : wants) ports.insert(port);
  if (ports.size() > FalconChassis::kMaxHostsPerDrawerAdvanced) return false;

  std::vector<PlannedAttach> planned;
  std::set<std::pair<int, int>> taken;
  for (const auto& [port, counts] : wants) {
    auto pick = [&](const std::vector<SlotId>& pool, int n) {
      int found = 0;
      for (const auto& slot : pool) {
        if (found == n) break;
        if (taken.count({slot.drawer, slot.index})) continue;
        taken.insert({slot.drawer, slot.index});
        planned.push_back({slot, port});
        ++found;
      }
      return found == n;
    };
    if (!pick(st.free_gpus, counts.first)) return false;
    if (!pick(st.free_nvme, counts.second)) return false;
  }
  out.insert(out.end(), planned.begin(), planned.end());
  return true;
}

}  // namespace

AllocationPlan planAllocation(const FalconChassis& chassis,
                              const std::vector<ResourceRequest>& requests) {
  AllocationPlan plan;

  // Validate ports and group requests per drawer.
  std::map<int, std::vector<std::pair<int, std::pair<int, int>>>> perDrawer;
  for (const auto& req : requests) {
    if (req.port < 0 || req.port >= FalconChassis::kHostPorts) {
      plan.reason = "invalid port index " + std::to_string(req.port);
      return plan;
    }
    const auto& port = chassis.hostPort(req.port);
    if (!port.connected) {
      plan.reason = "port " + port.label + " has no host connected";
      return plan;
    }
    if (req.gpus < 0 || req.nvme < 0) {
      plan.reason = "negative resource count";
      return plan;
    }
    if (req.gpus + req.nvme > 0) {
      perDrawer[port.drawer].push_back({req.port, {req.gpus, req.nvme}});
    }
  }

  for (const auto& [drawer, wants] : perDrawer) {
    DrawerState st;
    for (int s = 0; s < FalconChassis::kSlotsPerDrawer; ++s) {
      const SlotId id{drawer, s};
      const auto& info = chassis.slot(id);
      if (!info.occupied) continue;
      if (info.assigned_port >= 0) {
        st.ports_in_use.insert(info.assigned_port);
        continue;
      }
      if (info.type == DeviceType::Gpu) st.free_gpus.push_back(id);
      if (info.type == DeviceType::Nvme) st.free_nvme.push_back(id);
    }

    if (chassis.drawerMode(drawer) == DrawerMode::Standard) {
      if (tryStandard(st, wants, plan.attaches)) continue;
      // Escalate: existing assignments stay legal in Advanced mode.
      if (tryAdvanced(st, wants, plan.attaches)) {
        plan.mode_changes_to_advanced.push_back(drawer);
        continue;
      }
    } else if (tryAdvanced(st, wants, plan.attaches)) {
      continue;
    }
    plan.reason = "drawer " + std::to_string(drawer) +
                  " cannot satisfy the requested resources";
    plan.attaches.clear();
    plan.mode_changes_to_advanced.clear();
    return plan;
  }

  plan.feasible = true;
  return plan;
}

OpResult applyAllocation(FalconChassis& chassis, const AllocationPlan& plan) {
  if (!plan.feasible) {
    return OpResult::failure("plan is not feasible: " + plan.reason);
  }
  for (const int drawer : plan.mode_changes_to_advanced) {
    if (auto r = chassis.setDrawerMode(drawer, DrawerMode::Advanced); !r) return r;
  }
  for (const auto& a : plan.attaches) {
    if (auto r = chassis.attach(a.slot, a.port); !r) return r;
  }
  return OpResult::success();
}

}  // namespace composim::falcon
