// composim: baseboard management controller (OpenBMC stand-in, paper §II-B).
//
// Provides what the Falcon web interface exposes: system information,
// drawer temperature and fan sensors, the resource list, per-slot and
// per-drawer throughput, PCIe link health with accumulated error counts,
// and an exportable event log with alert thresholds.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "falcon/chassis.hpp"
#include "sim/simulator.hpp"

namespace composim::falcon {

struct BmcEvent {
  SimTime time = 0.0;
  std::string severity;  // "info", "warning", "alert"
  std::string message;
};

struct TemperatureReading {
  double drawer_celsius[FalconChassis::kDrawers] = {0.0, 0.0};
  double chassis_celsius = 0.0;
  double fan_rpm = 0.0;
};

struct LinkHealthRow {
  SlotId slot;
  std::string device_name;
  bool up = false;
  Bytes bytes_ingress = 0;   // into the device
  Bytes bytes_egress = 0;    // out of the device
  std::uint64_t accumulated_errors = 0;
};

struct SystemInfo {
  std::string model = "Falcon 4016";
  std::string serial;
  std::string firmware = "OpenBMC 2.9 (composim)";
  SimTime uptime = 0.0;
};

class Bmc {
 public:
  Bmc(Simulator& sim, FalconChassis& chassis, std::string serial);

  // --- event log ---
  void logEvent(std::string severity, std::string message);
  const std::vector<BmcEvent>& eventLog() const { return events_; }
  /// Export events at or above a severity ("info" < "warning" < "alert").
  std::vector<BmcEvent> exportEvents(const std::string& minSeverity) const;
  void clearEventLog() { events_.clear(); }

  // --- sensors ---
  /// Register a 0..1 activity source for a drawer (e.g. a GPU's busy
  /// fraction); temperature follows aggregate activity. InvalidArgument
  /// for a drawer the chassis does not have.
  Status registerThermalSource(int drawer, std::function<double()> activity);
  TemperatureReading readTemperatures() const;
  /// Temperature above which an "alert" event is recorded by sampleSensors.
  void setAlertThreshold(double celsius) { alert_threshold_ = celsius; }
  /// Poll sensors once; records an alert event on threshold excursion.
  void sampleSensors();
  /// Schedule periodic sensor sampling every `interval` simulated seconds.
  /// InvalidArgument for a non-positive interval; FailedPrecondition when
  /// sampling is already running.
  Status startPeriodicSampling(SimTime interval);
  void stopPeriodicSampling() { sampling_ = false; }
  /// Stop AND cancel the pending sample event, so a draining simulation
  /// quiesces at the stop point instead of advancing the clock to the
  /// stale tick's no-op firing. Used at the warm-prefix pause boundary;
  /// plain stopPeriodicSampling() keeps the historical drain behavior for
  /// end-of-run teardown.
  void stopAndCancelSampling();

  // --- health / throughput ---
  std::vector<LinkHealthRow> linkHealth() const;
  Bytes drawerThroughputBytes(int drawer) const;
  SystemInfo systemInfo() const;

  // --- warm-prefix forking ---
  /// Event-log snapshot. Thermal sources and the alert threshold are
  /// reinstalled by the fork's own composition; only the accumulated
  /// events carry over. Both ends must have periodic sampling stopped
  /// (std::logic_error otherwise) — the fork restarts it on resume.
  struct State {
    std::vector<BmcEvent> events;
  };
  State state() const;
  void restoreState(const State& st);

 private:
  void periodicSample(SimTime interval);

  Simulator& sim_;
  FalconChassis& chassis_;
  std::string serial_;
  std::vector<BmcEvent> events_;
  std::vector<std::vector<std::function<double()>>> thermal_;
  double alert_threshold_ = 75.0;
  bool sampling_ = false;
  EventId pending_sample_ = kInvalidEvent;
};

}  // namespace composim::falcon
