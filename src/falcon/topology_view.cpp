#include "falcon/topology_view.hpp"

#include <cstdio>

#include "telemetry/report.hpp"

namespace composim::falcon {

std::string renderListView(const FalconChassis& chassis) {
  telemetry::Table t({"Slot", "Type", "Device", "Link speed", "Port", "Host"});
  for (const auto& row : chassis.resourceList()) {
    t.addRow({"drawer" + std::to_string(row.slot.drawer) + "/slot" +
                  std::to_string(row.slot.index),
              toString(row.type), row.device_name, row.link_speed,
              row.assigned_port >= 0
                  ? chassis.hostPort(row.assigned_port).label
                  : "-",
              row.host_name.empty() ? "(unassigned)" : row.host_name});
  }
  return t.render();
}

std::string renderTopologyView(const FalconChassis& chassis) {
  std::string out;
  out += chassis.name() + " (Falcon 4016)\n";
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    out += "+-- drawer " + std::to_string(d) + " [" +
           toString(chassis.drawerMode(d)) + " mode]\n";
    // Host ports wired to this drawer.
    for (int p = 0; p < FalconChassis::kHostPorts; ++p) {
      const auto& port = chassis.hostPort(p);
      if (port.drawer != d) continue;
      out += "|   port " + port.label + " <== ";
      out += port.connected ? ("host '" + port.host_name + "'") : "(no host)";
      out += '\n';
    }
    out += "|   PCIe switch\n";
    for (int s = 0; s < FalconChassis::kSlotsPerDrawer; ++s) {
      const auto& info = chassis.slot({d, s});
      out += "|   +-- slot " + std::to_string(s) + ": ";
      if (!info.occupied) {
        out += "(empty)\n";
        continue;
      }
      out += std::string(toString(info.type)) + " '" + info.device_name + "'";
      if (info.assigned_port >= 0) {
        out += " -> " + chassis.hostPort(info.assigned_port).label;
      } else {
        out += " (detached)";
      }
      out += '\n';
    }
  }
  return out;
}

std::string renderPortTraffic(const FalconChassis& chassis,
                              const fabric::Topology& topo) {
  telemetry::Table t({"Port / Slot", "Ingress", "Egress", "Errors", "Status"});
  for (int p = 0; p < FalconChassis::kHostPorts; ++p) {
    const auto& port = chassis.hostPort(p);
    if (!port.connected) continue;
    const auto& in = topo.link(port.link_in);    // host -> drawer
    const auto& out = topo.link(port.link_out);  // drawer -> host
    t.addRow({"port " + port.label, formatBytes(in.counters.bytes),
              formatBytes(out.counters.bytes),
              std::to_string(in.counters.errors + out.counters.errors),
              (in.up && out.up) ? "up" : "DOWN"});
  }
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    for (int s = 0; s < FalconChassis::kSlotsPerDrawer; ++s) {
      const auto& info = chassis.slot({d, s});
      if (!info.occupied) continue;
      const auto& up = topo.link(info.link_up);      // device -> switch
      const auto& down = topo.link(info.link_down);  // switch -> device
      t.addRow({"d" + std::to_string(d) + "/s" + std::to_string(s) + " " +
                    info.device_name,
                formatBytes(down.counters.bytes), formatBytes(up.counters.bytes),
                std::to_string(up.counters.errors + down.counters.errors),
                (up.up && down.up) ? "up" : "DOWN"});
    }
  }
  return t.render();
}

}  // namespace composim::falcon
