// composim: resource allocation planner for the management plane.
//
// Given per-host-port resource requests (N GPUs, M NVMe drives), compute a
// concrete attach plan against the chassis inventory that respects each
// drawer's mode-of-operation constraints (Fig 4): Standard allows at most
// two hosts per drawer in fixed halves; Advanced allows three hosts with
// arbitrary slot assignment. When Standard cannot satisfy a request the
// planner escalates the drawer to Advanced and records that a mode change
// is required — the decision an administrator would otherwise make by eye.
#pragma once

#include <string>
#include <vector>

#include "falcon/chassis.hpp"

namespace composim::falcon {

struct ResourceRequest {
  int port = 0;  // requesting host's port (must be connected)
  int gpus = 0;
  int nvme = 0;
};

struct PlannedAttach {
  SlotId slot;
  int port = 0;
};

struct AllocationPlan {
  bool feasible = false;
  std::string reason;  // set when infeasible
  std::vector<PlannedAttach> attaches;
  /// Drawers that must switch to Advanced mode before applying.
  std::vector<int> mode_changes_to_advanced;
};

/// Compute a plan. Only considers occupied, currently-unassigned slots.
AllocationPlan planAllocation(const FalconChassis& chassis,
                              const std::vector<ResourceRequest>& requests);

/// Execute a feasible plan (mode changes first, then attaches). Returns
/// the first failing operation's result, or success.
OpResult applyAllocation(FalconChassis& chassis, const AllocationPlan& plan);

}  // namespace composim::falcon
