#include "falcon/mcs.hpp"

#include "falcon/bmc.hpp"

namespace composim::falcon {

const char* toString(Role r) {
  switch (r) {
    case Role::Administrator: return "administrator";
    case Role::User: return "user";
  }
  return "?";
}

void Mcs::record(const std::string& user, const std::string& op, bool allowed,
                 const std::string& detail) const {
  audit_.push_back(
      AuditRecord{chassis_.simulator().now(), user, op, allowed, detail});
}

bool Mcs::isAdmin(const std::string& user) const {
  auto it = users_.find(user);
  return it != users_.end() && it->second == Role::Administrator;
}

OpResult Mcs::addUser(const std::string& name, Role role) {
  if (name.empty()) return OpResult::invalidArgument("empty user name");
  if (!users_.emplace(name, role).second) {
    return OpResult::alreadyExists("user '" + name + "' already exists");
  }
  return OpResult::success();
}

OpResult Mcs::removeUser(const std::string& actor, const std::string& name) {
  if (!isAdmin(actor)) {
    record(actor, "removeUser", false, "not an administrator");
    return OpResult::permissionDenied("only administrators may remove users");
  }
  if (users_.erase(name) == 0) return OpResult::notFound("no such user");
  for (auto it = owners_.begin(); it != owners_.end();) {
    it = (it->second == name) ? owners_.erase(it) : std::next(it);
  }
  record(actor, "removeUser", true, name);
  return OpResult::success();
}

std::optional<Role> Mcs::roleOf(const std::string& name) const {
  auto it = users_.find(name);
  if (it == users_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Mcs::ownerOf(SlotId slot) const {
  auto it = owners_.find({slot.drawer, slot.index});
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

std::vector<SlotId> Mcs::resourcesOwnedBy(const std::string& user) const {
  std::vector<SlotId> out;
  for (const auto& [key, owner] : owners_) {
    if (owner == user) out.push_back(SlotId{key.first, key.second});
  }
  return out;
}

OpResult Mcs::claimResource(const std::string& user, SlotId slot,
                            const std::string& forUser) {
  if (!users_.count(user)) return OpResult::notFound("unknown user '" + user + "'");
  std::string target = forUser.empty() ? user : forUser;
  if (target != user && !isAdmin(user)) {
    record(user, "claim", false, "claim-for-other requires administrator");
    return OpResult::permissionDenied("only administrators may claim for another user");
  }
  if (!users_.count(target)) return OpResult::notFound("unknown user '" + target + "'");
  const auto& info = chassis_.slot(slot);
  if (!info.occupied) {
    record(user, "claim", false, "slot empty");
    return OpResult::failure("slot is empty");
  }
  auto key = std::make_pair(slot.drawer, slot.index);
  if (auto it = owners_.find(key); it != owners_.end()) {
    record(user, "claim", false, "owned by " + it->second);
    return OpResult::alreadyExists("resource already owned by '" + it->second + "'");
  }
  owners_[key] = target;
  record(user, "claim", true,
         info.device_name + " -> " + target);
  return OpResult::success();
}

OpResult Mcs::releaseResource(const std::string& user, SlotId slot) {
  auto key = std::make_pair(slot.drawer, slot.index);
  auto it = owners_.find(key);
  if (it == owners_.end()) return OpResult::failure("resource is not owned");
  if (it->second != user && !isAdmin(user)) {
    record(user, "release", false, "not owner");
    return OpResult::permissionDenied("resource is owned by '" + it->second + "'");
  }
  record(user, "release", true, chassis_.slot(slot).device_name);
  owners_.erase(it);
  return OpResult::success();
}

OpResult Mcs::authorizeSlotOp(const std::string& user, SlotId slot,
                              const std::string& op) {
  if (!users_.count(user)) {
    record(user, op, false, "unknown user");
    return OpResult::notFound("unknown user '" + user + "'");
  }
  if (isAdmin(user)) return OpResult::success();
  auto owner = ownerOf(slot);
  if (!owner || *owner != user) {
    record(user, op, false, "not resource owner");
    return OpResult::permissionDenied(
        "operation requires ownership of the resource (enterprise isolation)");
  }
  return OpResult::success();
}

OpResult Mcs::attach(const std::string& user, SlotId slot, int port) {
  if (auto r = authorizeSlotOp(user, slot, "attach"); !r) return r;
  auto r = chassis_.attach(slot, port);
  record(user, "attach", r.ok, r.ok ? chassis_.slot(slot).device_name : r.detail);
  return r;
}

OpResult Mcs::detach(const std::string& user, SlotId slot) {
  if (auto r = authorizeSlotOp(user, slot, "detach"); !r) return r;
  auto r = chassis_.detach(slot);
  record(user, "detach", r.ok, r.ok ? chassis_.slot(slot).device_name : r.detail);
  return r;
}

OpResult Mcs::setDrawerMode(const std::string& user, int drawer, DrawerMode mode) {
  if (!isAdmin(user)) {
    record(user, "setDrawerMode", false, "not an administrator");
    return OpResult::permissionDenied("changing drawer modes requires administrator role");
  }
  auto r = chassis_.setDrawerMode(drawer, mode);
  record(user, "setDrawerMode", r.ok, toString(mode));
  return r;
}

OpResult Mcs::exportEventLog(const std::string& user, const Bmc& bmc,
                             std::vector<BmcEvent>& out) const {
  if (!isAdmin(user)) {
    record(user, "exportEventLog", false, "not an administrator");
    return OpResult::permissionDenied("event-log export is an administrator feature");
  }
  out = bmc.eventLog();
  record(user, "exportEventLog", true,
         std::to_string(out.size()) + " events");
  return OpResult::success();
}

Json Mcs::exportConfig() const {
  Json root = Json::object();
  root.set("chassis", chassis_.name());
  Json drawers = Json::array();
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    Json drawer = Json::object();
    drawer.set("index", d);
    drawer.set("mode", toString(chassis_.drawerMode(d)));
    Json slots = Json::array();
    for (int i = 0; i < FalconChassis::kSlotsPerDrawer; ++i) {
      const SlotId id{d, i};
      const auto& info = chassis_.slot(id);
      if (!info.occupied) continue;
      Json slot = Json::object();
      slot.set("index", i);
      slot.set("type", toString(info.type));
      slot.set("device", info.device_name);
      slot.set("port", info.assigned_port);
      if (auto owner = ownerOf(id)) slot.set("owner", *owner);
      slots.push(std::move(slot));
    }
    drawer.set("slots", std::move(slots));
    drawers.push(std::move(drawer));
  }
  root.set("drawers", std::move(drawers));
  return root;
}

OpResult Mcs::importConfig(const std::string& user, const Json& config) {
  if (!isAdmin(user)) {
    record(user, "importConfig", false, "not an administrator");
    return OpResult::permissionDenied("configuration import requires administrator role");
  }
  try {
    for (const auto& drawerJson : config.at("drawers").asArray()) {
      const int d = static_cast<int>(drawerJson.at("index").asInt());
      const std::string modeStr = drawerJson.at("mode").asString();
      const DrawerMode mode = (modeStr == "Advanced") ? DrawerMode::Advanced
                                                      : DrawerMode::Standard;
      // Detach everything in the drawer first so mode + halves re-apply
      // cleanly.
      for (int i = 0; i < FalconChassis::kSlotsPerDrawer; ++i) {
        const SlotId id{d, i};
        if (chassis_.slot(id).occupied && chassis_.slot(id).assigned_port >= 0) {
          chassis_.detach(id);
        }
      }
      if (auto r = chassis_.setDrawerMode(d, mode); !r) return r;
      for (const auto& slotJson : drawerJson.at("slots").asArray()) {
        const int i = static_cast<int>(slotJson.at("index").asInt());
        const SlotId id{d, i};
        const auto& info = chassis_.slot(id);
        if (!info.occupied) {
          return OpResult::failure("import: slot drawer " + std::to_string(d) +
                                   "/" + std::to_string(i) + " is empty");
        }
        if (info.device_name != slotJson.at("device").asString()) {
          return OpResult::failure("import: device mismatch in drawer " +
                                   std::to_string(d) + " slot " + std::to_string(i));
        }
        const int port = static_cast<int>(slotJson.at("port").asInt());
        if (port >= 0) {
          if (auto r = chassis_.attach(id, port); !r) return r;
        }
        if (const Json* owner = slotJson.find("owner")) {
          owners_[{d, i}] = owner->asString();
        }
      }
    }
  } catch (const JsonError& e) {
    record(user, "importConfig", false, e.what());
    return OpResult::invalidArgument(std::string("malformed configuration: ") + e.what());
  }
  record(user, "importConfig", true, "applied");
  return OpResult::success();
}

}  // namespace composim::falcon
