// composim: minimal JSON value type with writer and parser.
//
// Supports the subset needed for Falcon configuration import/export
// (objects, arrays, strings, doubles, integers, booleans, null). Object
// keys keep insertion order so exported configurations diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace composim::falcon {

class Json;
using JsonArray = std::vector<Json>;
/// Ordered key/value list (small configs; linear lookup is fine).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool isBool() const { return std::holds_alternative<bool>(value_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(value_); }
  bool isDouble() const { return std::holds_alternative<double>(value_); }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return std::holds_alternative<std::string>(value_); }
  bool isArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool isObject() const { return std::holds_alternative<JsonObject>(value_); }

  bool asBool() const { return get<bool>("bool"); }
  std::int64_t asInt() const;
  double asDouble() const;
  const std::string& asString() const { return get<std::string>("string"); }
  const JsonArray& asArray() const { return get<JsonArray>("array"); }
  JsonArray& asArray() { return get<JsonArray>("array"); }
  const JsonObject& asObject() const { return get<JsonObject>("object"); }
  JsonObject& asObject() { return get<JsonObject>("object"); }

  /// Object field access; throws JsonError if absent or not an object.
  const Json& at(const std::string& key) const;
  /// Object field lookup; nullptr when absent.
  const Json* find(const std::string& key) const;
  /// Insert or overwrite an object field.
  void set(const std::string& key, Json value);
  /// Append to an array.
  void push(Json value) { asArray().push_back(std::move(value)); }

  /// Serialize; indent < 0 means compact single-line output.
  std::string dump(int indent = 2) const;

  /// Parse a JSON document; throws JsonError with position info.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const = default;

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("Json: not a ") + what);
  }
  template <typename T>
  T& get(const char* what) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("Json: not a ") + what);
  }

  void dumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace composim::falcon
