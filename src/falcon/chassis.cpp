#include "falcon/chassis.hpp"

#include <algorithm>
#include <set>

#include "falcon/bmc.hpp"

namespace composim::falcon {

const char* toString(DeviceType t) {
  switch (t) {
    case DeviceType::Gpu: return "GPU";
    case DeviceType::Nvme: return "NVMe SSD";
    case DeviceType::Nic: return "NIC";
    case DeviceType::Custom: return "Custom";
  }
  return "?";
}

const char* toString(DrawerMode m) {
  switch (m) {
    case DrawerMode::Standard: return "Standard";
    case DrawerMode::Advanced: return "Advanced";
  }
  return "?";
}

FalconChassis::FalconChassis(Simulator& sim, fabric::Topology& topo,
                             std::string name)
    : sim_(sim), topo_(topo), name_(std::move(name)) {
  for (int d = 0; d < kDrawers; ++d) {
    for (int half = 0; half < 2; ++half) {
      drawer_chips_[static_cast<std::size_t>(d)][static_cast<std::size_t>(half)] =
          topo_.addNode(name_ + ".drawer" + std::to_string(d) + ".chip" +
                            std::to_string(half),
                        fabric::NodeKind::PcieSwitch);
    }
    // Inter-chip fabric link between the two halves of the drawer.
    topo_.addDuplexLink(drawer_chips_[static_cast<std::size_t>(d)][0],
                        drawer_chips_[static_cast<std::size_t>(d)][1],
                        units::GBps(12.25), units::microseconds(0.30),
                        fabric::LinkKind::Internal);
    mode_[static_cast<std::size_t>(d)] = DrawerMode::Standard;
  }
  for (int p = 0; p < kHostPorts; ++p) {
    auto& port = ports_[static_cast<std::size_t>(p)];
    port.label = "H" + std::to_string(p + 1);
    port.drawer = p / 2;  // H1,H2 -> drawer 0; H3,H4 -> drawer 1
  }
}

fabric::NodeId FalconChassis::drawerSwitch(int drawer, int half) const {
  return drawer_chips_.at(static_cast<std::size_t>(drawer))
      .at(static_cast<std::size_t>(half));
}

void FalconChassis::logEvent(const std::string& severity,
                             const std::string& message) {
  if (bmc_ != nullptr) bmc_->logEvent(severity, message);
}

OpResult FalconChassis::validateSlotId(SlotId s) const {
  if (s.drawer < 0 || s.drawer >= kDrawers || s.index < 0 ||
      s.index >= kSlotsPerDrawer) {
    return OpResult::invalidArgument("invalid slot id (drawer " +
                             std::to_string(s.drawer) + ", index " +
                             std::to_string(s.index) + ")");
  }
  return OpResult::success();
}

OpResult FalconChassis::connectHost(int portIdx, fabric::NodeId hostRoot,
                                    std::string hostName) {
  if (portIdx < 0 || portIdx >= kHostPorts) {
    return OpResult::invalidArgument("invalid host port");
  }
  auto& port = ports_[static_cast<std::size_t>(portIdx)];
  if (port.connected) {
    return OpResult::failure("port " + port.label + " already connected to " +
                             port.host_name);
  }
  const auto spec = fabric::catalog::hostAdapter();
  // H1/H3 land on chip 0 of their drawer, H2/H4 on chip 1.
  auto [in, out] = topo_.addDuplexLink(hostRoot,
                                       drawerSwitch(port.drawer, portIdx % 2),
                                       spec.capacityPerDirection, spec.latency,
                                       spec.kind);
  port.connected = true;
  port.host_name = std::move(hostName);
  port.host_node = hostRoot;
  port.link_in = in;
  port.link_out = out;
  logEvent("info", "host '" + port.host_name + "' connected to port " + port.label);
  return OpResult::success();
}

OpResult FalconChassis::disconnectHost(int portIdx) {
  if (portIdx < 0 || portIdx >= kHostPorts) {
    return OpResult::invalidArgument("invalid host port");
  }
  auto& port = ports_[static_cast<std::size_t>(portIdx)];
  if (!port.connected) return OpResult::failure("port not connected");
  if (!devicesAssignedTo(portIdx).empty()) {
    return OpResult::failure("port " + port.label +
                             " still has devices assigned; detach them first");
  }
  topo_.setLinkUp(port.link_in, false);
  topo_.setLinkUp(port.link_out, false);
  logEvent("info", "host '" + port.host_name + "' disconnected from port " + port.label);
  port.connected = false;
  port.host_name.clear();
  port.host_node = fabric::kInvalidNode;
  port.link_in = port.link_out = fabric::kInvalidLink;
  return OpResult::success();
}

const HostPortInfo& FalconChassis::hostPort(int port) const {
  return ports_.at(static_cast<std::size_t>(port));
}

OpResult FalconChassis::installDevice(SlotId s, DeviceType type,
                                      std::string deviceName,
                                      fabric::NodeId deviceNode) {
  if (auto r = validateSlotId(s); !r) return r;
  auto& info = slots_[static_cast<std::size_t>(s.drawer)][static_cast<std::size_t>(s.index)];
  if (info.occupied) {
    return OpResult::failure("slot already occupied by " + info.device_name);
  }
  const auto spec = fabric::catalog::pcie4_x16_slot();
  auto [up, down] = topo_.addDuplexLink(
      deviceNode, drawerSwitch(s.drawer, s.index / (kSlotsPerDrawer / 2)),
      spec.capacityPerDirection, spec.latency, spec.kind);
  info = SlotInfo{true, type, std::move(deviceName), deviceNode, up, down, -1};
  logEvent("info", std::string(toString(type)) + " '" + info.device_name +
                       "' installed in drawer " + std::to_string(s.drawer) +
                       " slot " + std::to_string(s.index));
  return OpResult::success();
}

OpResult FalconChassis::removeDevice(SlotId s) {
  if (auto r = validateSlotId(s); !r) return r;
  auto& info = slots_[static_cast<std::size_t>(s.drawer)][static_cast<std::size_t>(s.index)];
  if (!info.occupied) return OpResult::failure("slot is empty");
  if (info.assigned_port >= 0) {
    return OpResult::failure("device '" + info.device_name +
                             "' is attached to a host; detach it first");
  }
  topo_.setLinkUp(info.link_up, false);
  topo_.setLinkUp(info.link_down, false);
  logEvent("info", "device '" + info.device_name + "' removed from drawer " +
                       std::to_string(s.drawer) + " slot " + std::to_string(s.index));
  info = SlotInfo{};
  return OpResult::success();
}

const SlotInfo& FalconChassis::slot(SlotId s) const {
  return slots_.at(static_cast<std::size_t>(s.drawer)).at(static_cast<std::size_t>(s.index));
}

OpResult FalconChassis::setDrawerMode(int drawer, DrawerMode mode) {
  if (drawer < 0 || drawer >= kDrawers) return OpResult::invalidArgument("invalid drawer");
  // Downgrading to Standard requires the current assignment to satisfy the
  // Standard constraints; simplest safe rule: no assignments present.
  if (mode == DrawerMode::Standard &&
      mode_[static_cast<std::size_t>(drawer)] == DrawerMode::Advanced) {
    for (const auto& info : slots_[static_cast<std::size_t>(drawer)]) {
      if (info.occupied && info.assigned_port >= 0) {
        return OpResult::failure(
            "cannot switch drawer to Standard mode while devices are attached");
      }
    }
  }
  mode_[static_cast<std::size_t>(drawer)] = mode;
  logEvent("info", "drawer " + std::to_string(drawer) + " mode set to " +
                       toString(mode));
  return OpResult::success();
}

DrawerMode FalconChassis::drawerMode(int drawer) const {
  return mode_.at(static_cast<std::size_t>(drawer));
}

int FalconChassis::hostsUsingDrawer(int drawer) const {
  std::set<int> hosts;
  for (const auto& info : slots_.at(static_cast<std::size_t>(drawer))) {
    if (info.occupied && info.assigned_port >= 0) hosts.insert(info.assigned_port);
  }
  return static_cast<int>(hosts.size());
}

OpResult FalconChassis::checkAttachAllowed(SlotId s, int portIdx) const {
  const auto& port = ports_.at(static_cast<std::size_t>(portIdx));
  if (!port.connected) {
    return OpResult::failure("port " + port.label + " has no host connected");
  }
  if (port.drawer != s.drawer) {
    return OpResult::failure("port " + port.label + " is wired to drawer " +
                             std::to_string(port.drawer) + ", not drawer " +
                             std::to_string(s.drawer));
  }
  const DrawerMode mode = drawerMode(s.drawer);
  // Count distinct ports if this attach happened.
  std::set<int> hosts;
  for (const auto& info : slots_.at(static_cast<std::size_t>(s.drawer))) {
    if (info.occupied && info.assigned_port >= 0) hosts.insert(info.assigned_port);
  }
  hosts.insert(portIdx);
  const int limit = (mode == DrawerMode::Standard) ? kMaxHostsPerDrawerStandard
                                                   : kMaxHostsPerDrawerAdvanced;
  if (static_cast<int>(hosts.size()) > limit) {
    return OpResult::failure(std::string("drawer in ") + toString(mode) +
                             " mode supports at most " + std::to_string(limit) +
                             " hosts");
  }
  if (mode == DrawerMode::Standard && hosts.size() == 2) {
    // Two-host standard mode splits the drawer in fixed halves: the
    // lower-numbered port owns slots 0-3, the higher-numbered slots 4-7.
    const int lo = *hosts.begin();
    const int hi = *hosts.rbegin();
    const int expected = (s.index < kSlotsPerDrawer / 2) ? lo : hi;
    if (portIdx != expected) {
      return OpResult::failure(
          "Standard mode with two hosts assigns slots 0-3 to the lower port "
          "and slots 4-7 to the higher port");
    }
    // Existing assignments must also respect the halves.
    const auto& drawer = slots_.at(static_cast<std::size_t>(s.drawer));
    for (int i = 0; i < kSlotsPerDrawer; ++i) {
      const auto& info = drawer[static_cast<std::size_t>(i)];
      if (!info.occupied || info.assigned_port < 0) continue;
      const int exp = (i < kSlotsPerDrawer / 2) ? lo : hi;
      if (info.assigned_port != exp) {
        return OpResult::failure(
            "existing assignments violate Standard-mode half-split");
      }
    }
  }
  return OpResult::success();
}

void FalconChassis::setTransientAttachFailureRate(double rate,
                                                  std::uint64_t seed) {
  transient_attach_failure_rate_ = rate;
  attach_rng_.reseed(seed);
}

OpResult FalconChassis::attach(SlotId s, int portIdx) {
  if (auto r = validateSlotId(s); !r) return r;
  if (portIdx < 0 || portIdx >= kHostPorts) {
    return OpResult::invalidArgument("invalid host port");
  }
  auto& info = slots_[static_cast<std::size_t>(s.drawer)][static_cast<std::size_t>(s.index)];
  if (!info.occupied) return OpResult::failure("slot is empty");
  if (info.assigned_port == portIdx) return OpResult::success();
  if (info.assigned_port >= 0) {
    return OpResult::failure("device '" + info.device_name +
                             "' is already attached to port " +
                             ports_[static_cast<std::size_t>(info.assigned_port)].label);
  }
  if (auto r = checkAttachAllowed(s, portIdx); !r) return r;
  if (transient_attach_failure_rate_ > 0.0 &&
      attach_rng_.uniform() < transient_attach_failure_rate_) {
    logEvent("warning", "attach of '" + info.device_name +
                            "' timed out (transient); retry");
    return OpResult::retryable("management plane timed out; retry attach");
  }
  info.assigned_port = portIdx;
  logEvent("info", "device '" + info.device_name + "' attached to host '" +
                       ports_[static_cast<std::size_t>(portIdx)].host_name + "' (port " +
                       ports_[static_cast<std::size_t>(portIdx)].label + ")");
  return OpResult::success();
}

OpResult FalconChassis::detach(SlotId s) {
  if (auto r = validateSlotId(s); !r) return r;
  auto& info = slots_[static_cast<std::size_t>(s.drawer)][static_cast<std::size_t>(s.index)];
  if (!info.occupied) return OpResult::failure("slot is empty");
  if (info.assigned_port < 0) return OpResult::failure("device is not attached");
  const int old = info.assigned_port;
  info.assigned_port = -1;
  logEvent("info", "device '" + info.device_name + "' detached from port " +
                       ports_[static_cast<std::size_t>(old)].label);
  return OpResult::success();
}

std::vector<SlotId> FalconChassis::devicesAssignedTo(int port) const {
  std::vector<SlotId> out;
  for (int d = 0; d < kDrawers; ++d) {
    for (int i = 0; i < kSlotsPerDrawer; ++i) {
      const auto& info = slots_[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
      if (info.occupied && info.assigned_port == port) out.push_back({d, i});
    }
  }
  return out;
}

std::vector<FalconChassis::ResourceRow> FalconChassis::resourceList() const {
  std::vector<ResourceRow> rows;
  for (int d = 0; d < kDrawers; ++d) {
    for (int i = 0; i < kSlotsPerDrawer; ++i) {
      const auto& info = slots_[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
      if (!info.occupied) continue;
      ResourceRow row;
      row.slot = {d, i};
      row.type = info.type;
      row.device_name = info.device_name;
      row.link_speed = "PCI-e 4.0 x16";
      row.assigned_port = info.assigned_port;
      if (info.assigned_port >= 0) {
        row.host_name = ports_[static_cast<std::size_t>(info.assigned_port)].host_name;
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace composim::falcon
