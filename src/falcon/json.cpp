#include "falcon/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace composim::falcon {

std::int64_t Json::asInt() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw JsonError("Json: not a number");
}

double Json::asDouble() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw JsonError("Json: not a number");
}

const Json& Json::at(const std::string& key) const {
  if (const Json* p = find(key)) return *p;
  throw JsonError("Json: missing key '" + key + "'");
}

const Json* Json::find(const std::string& key) const {
  const auto& obj = asObject();
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  auto& obj = asObject();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(key, std::move(value));
}

namespace {

void escapeString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newlineIndent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isInt()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (isDouble()) {
    const double d = std::get<double>(value_);
    if (std::isfinite(d)) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (isString()) {
    escapeString(out, asString());
  } else if (isArray()) {
    const auto& arr = asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      newlineIndent(out, indent, depth + 1);
      arr[i].dumpTo(out, indent, depth + 1);
    }
    newlineIndent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out += ',';
      newlineIndent(out, indent, depth + 1);
      escapeString(out, obj[i].first);
      out += indent < 0 ? ":" : ": ";
      obj[i].second.dumpTo(out, indent, depth + 1);
    }
    newlineIndent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parseDocument() {
    Json v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't': parseLiteral("true"); return Json(true);
      case 'f': parseLiteral("false"); return Json(false);
      case 'n': parseLiteral("null"); return Json(nullptr);
      default: return parseNumber();
    }
  }

  void parseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogates not supported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool isInt = true;
    if (consume('.')) {
      isInt = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isInt = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (isInt) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(v);
    }
    try {
      return Json(std::stod(tok));
    } catch (const std::exception&) {
      fail("invalid number '" + tok + "'");
    }
  }

  Json parseObject() {
    expect('{');
    Json obj = Json::object();
    skipWs();
    if (consume('}')) return obj;
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj.set(key, parseValue());
      skipWs();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Json parseArray() {
    expect('[');
    Json arr = Json::array();
    skipWs();
    if (consume(']')) return arr;
    while (true) {
      arr.push(parseValue());
      skipWs();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace composim::falcon
