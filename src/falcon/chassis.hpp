// composim: Falcon 4016 composable chassis model (paper Sections II-III).
//
// A 4U chassis of 2 drawers x 8 PCIe-4.0 slots plus four host ports
// (H1-H4, CDFP cables to host adapter cards). Devices in a drawer hang off
// that drawer's PCIe switch; hosts connect to drawers through host ports.
// Slot-to-host *assignment* is the composable part: it can change at run
// time subject to the drawer's mode of operation (Fig 4):
//
//   Standard  - at most two hosts per drawer; with two hosts the drawer is
//               split in fixed halves (slots 0-3 / 4-7).
//   Advanced  - up to three hosts per drawer, arbitrary per-slot
//               assignment, devices re-assignable on the fly.
//
// All wiring exists physically in the fabric topology; assignment is a
// management-plane property enforced here and audited by the BMC event
// log. The MCS (mcs.hpp) layers per-user authorization on top.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fabric/link_catalog.hpp"
#include "fabric/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace composim::falcon {

class Bmc;

enum class DeviceType { Gpu, Nvme, Nic, Custom };
enum class DrawerMode { Standard, Advanced };

const char* toString(DeviceType t);
const char* toString(DrawerMode m);

struct SlotId {
  int drawer = 0;  // 0 or 1
  int index = 0;   // 0..7
  bool operator==(const SlotId&) const = default;
};

/// Outcome of a management operation; failures carry a code + reason.
/// Alias of the repo-wide Status type so the management plane (chassis,
/// MCS, BMC) reports errors the same way as the rest of the stack.
using OpResult = Status;

struct SlotInfo {
  bool occupied = false;
  DeviceType type = DeviceType::Custom;
  std::string device_name;
  fabric::NodeId device_node = fabric::kInvalidNode;
  fabric::LinkId link_up = fabric::kInvalidLink;    // device -> switch
  fabric::LinkId link_down = fabric::kInvalidLink;  // switch -> device
  int assigned_port = -1;                           // -1 = unassigned
};

struct HostPortInfo {
  std::string label;  // "H1".."H4"
  int drawer = 0;     // fixed wiring: H1,H2 -> drawer 0; H3,H4 -> drawer 1
  bool connected = false;
  std::string host_name;
  fabric::NodeId host_node = fabric::kInvalidNode;
  fabric::LinkId link_in = fabric::kInvalidLink;   // host -> drawer switch
  fabric::LinkId link_out = fabric::kInvalidLink;  // drawer switch -> host
};

class FalconChassis {
 public:
  static constexpr int kDrawers = 2;
  static constexpr int kSlotsPerDrawer = 8;
  static constexpr int kHostPorts = 4;
  static constexpr int kMaxHostsPerDrawerStandard = 2;
  static constexpr int kMaxHostsPerDrawerAdvanced = 3;

  FalconChassis(Simulator& sim, fabric::Topology& topo, std::string name);

  const std::string& name() const { return name_; }

  /// Each drawer is built from two PCIe switch chips (slots 0-3 on chip
  /// 0, slots 4-7 on chip 1) joined by an inter-chip link. Host ports H1/
  /// H3 land on chip 0 of their drawer, H2/H4 on chip 1 — which is what
  /// makes the paper's "one host, two connections to the same drawer"
  /// mode faster host-to-device but slower across the halves (§III-B.2).
  fabric::NodeId drawerSwitch(int drawer, int half = 0) const;

  /// Attach the BMC that receives chassis events (optional but typical).
  void setBmc(Bmc* bmc) { bmc_ = bmc; }

  // --- host ports ---
  OpResult connectHost(int port, fabric::NodeId hostRoot, std::string hostName);
  OpResult disconnectHost(int port);
  const HostPortInfo& hostPort(int port) const;

  // --- device installation (physical insertion into a slot) ---
  OpResult installDevice(SlotId slot, DeviceType type, std::string deviceName,
                         fabric::NodeId deviceNode);
  OpResult removeDevice(SlotId slot);
  const SlotInfo& slot(SlotId slot) const;

  // --- modes ---
  OpResult setDrawerMode(int drawer, DrawerMode mode);
  DrawerMode drawerMode(int drawer) const;

  // --- composability: assignment of devices to hosts ---
  /// Make `attach` fail transiently (Status code Retryable, no state
  /// change) with probability `rate` per call, from a seeded stream —
  /// models the management plane timing out on a busy switch firmware.
  /// Validation errors still take precedence; only an attach that would
  /// have succeeded can fail transiently. rate = 0 disables (default).
  void setTransientAttachFailureRate(double rate, std::uint64_t seed = 7);
  OpResult attach(SlotId slot, int port);
  OpResult detach(SlotId slot);
  int assignedPort(SlotId slot) const { return this->slot(slot).assigned_port; }
  std::vector<SlotId> devicesAssignedTo(int port) const;
  /// Distinct host ports with at least one assignment in `drawer`.
  int hostsUsingDrawer(int drawer) const;

  /// Resource list as the management GUI would show it.
  struct ResourceRow {
    SlotId slot;
    DeviceType type;
    std::string device_name;
    std::string link_speed;  // "PCI-e 4.0 x16"
    int assigned_port;
    std::string host_name;   // empty when unassigned
  };
  std::vector<ResourceRow> resourceList() const;

  Simulator& simulator() { return sim_; }
  fabric::Topology& topology() { return topo_; }

 private:
  OpResult validateSlotId(SlotId slot) const;
  OpResult checkAttachAllowed(SlotId slot, int port) const;
  void logEvent(const std::string& severity, const std::string& message);

  Simulator& sim_;
  fabric::Topology& topo_;
  std::string name_;
  Bmc* bmc_ = nullptr;
  std::array<std::array<fabric::NodeId, 2>, kDrawers> drawer_chips_{};
  std::array<DrawerMode, kDrawers> mode_{};
  std::array<std::array<SlotInfo, kSlotsPerDrawer>, kDrawers> slots_{};
  std::array<HostPortInfo, kHostPorts> ports_{};
  double transient_attach_failure_rate_ = 0.0;
  Rng attach_rng_{7};
};

}  // namespace composim::falcon
