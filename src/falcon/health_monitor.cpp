#include "falcon/health_monitor.hpp"

#include "sim/profile.hpp"

namespace composim::falcon {

const char* toString(FaultEventType t) {
  switch (t) {
    case FaultEventType::DeviceLost: return "device-lost";
    case FaultEventType::DeviceRestored: return "device-restored";
    case FaultEventType::ErrorStorm: return "error-storm";
    case FaultEventType::HostPortLost: return "host-port-lost";
    case FaultEventType::HostPortRestored: return "host-port-restored";
  }
  return "?";
}

Status HealthMonitor::start(SimTime interval) {
  if (interval <= 0.0) {
    return Status::invalidArgument("poll interval must be > 0");
  }
  if (running_) return Status::failedPrecondition("monitor already running");
  running_ = true;
  // Prime the baseline immediately so pre-existing error counts are not
  // reported as a storm at the first periodic poll.
  poll();
  sim_.schedule(interval, [this, interval] { periodicPoll(interval); });
  return Status::success();
}

void HealthMonitor::periodicPoll(SimTime interval) {
  if (!running_) return;
  poll();
  sim_.schedule(interval, [this, interval] { periodicPoll(interval); });
}

void HealthMonitor::emit(FaultEvent ev) {
  ev.time = sim_.now();
  ++detections_;
  if (ProfileSink* p = sim_.profiler()) {
    ProfileArgs args{{"name", ev.device_name}};
    if (ev.port >= 0) {
      args.emplace_back("port", static_cast<double>(ev.port));
    } else {
      args.emplace_back("drawer", static_cast<double>(ev.slot.drawer));
      args.emplace_back("slot", static_cast<double>(ev.slot.index));
    }
    if (ev.error_delta > 0) {
      args.emplace_back("error_delta", static_cast<double>(ev.error_delta));
    }
    p->instant("health", std::string("detect:") + toString(ev.type),
               std::move(args));
    p->setCounter("detections", "count", static_cast<double>(detections_));
  }
  log_.push_back(ev);
}

void HealthMonitor::poll() {
  // Collect first, dispatch after: handlers may detach/attach slots, which
  // would invalidate the table being scanned.
  std::vector<FaultEvent> found;

  for (const LinkHealthRow& row : bmc_.linkHealth()) {
    const int key = row.slot.drawer * FalconChassis::kSlotsPerDrawer +
                    row.slot.index;
    auto [it, fresh] = slot_state_.try_emplace(
        key, SlotHealth{row.up, row.accumulated_errors});
    SlotHealth& prev = it->second;
    const DeviceType type = chassis_.slot(row.slot).type;
    if (!fresh) {
      if (prev.up && !row.up) {
        found.push_back({0.0, FaultEventType::DeviceLost, row.slot, -1,
                         row.device_name, type});
      } else if (!prev.up && row.up) {
        found.push_back({0.0, FaultEventType::DeviceRestored, row.slot, -1,
                         row.device_name, type});
      }
      const std::uint64_t delta = row.accumulated_errors - prev.errors;
      if (delta >= storm_threshold_) {
        found.push_back({0.0, FaultEventType::ErrorStorm, row.slot, -1,
                         row.device_name, type, delta});
      }
    } else if (!row.up) {
      // First sighting of a slot that is already dead.
      found.push_back({0.0, FaultEventType::DeviceLost, row.slot, -1,
                       row.device_name, type});
    }
    prev = {row.up, row.accumulated_errors};
  }

  const auto& topo = chassis_.topology();
  for (int p = 0; p < FalconChassis::kHostPorts; ++p) {
    const HostPortInfo& port = chassis_.hostPort(p);
    if (!port.connected) {
      port_state_.erase(p);
      continue;
    }
    const bool up = topo.link(port.link_in).up && topo.link(port.link_out).up;
    auto [it, fresh] = port_state_.try_emplace(p, up);
    if (!fresh) {
      if (it->second && !up) {
        found.push_back({0.0, FaultEventType::HostPortLost, SlotId{}, p,
                         port.host_name});
      } else if (!it->second && up) {
        found.push_back({0.0, FaultEventType::HostPortRestored, SlotId{}, p,
                         port.host_name});
      }
    } else if (!up) {
      found.push_back({0.0, FaultEventType::HostPortLost, SlotId{}, p,
                       port.host_name});
    }
    it->second = up;
  }

  for (FaultEvent& ev : found) {
    emit(ev);
    for (const Handler& h : handlers_) h(log_.back());
  }
}

}  // namespace composim::falcon
