#include "falcon/bmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace composim::falcon {

namespace {

int severityRank(const std::string& s) {
  if (s == "alert") return 2;
  if (s == "warning") return 1;
  return 0;
}

}  // namespace

Bmc::Bmc(Simulator& sim, FalconChassis& chassis, std::string serial)
    : sim_(sim), chassis_(chassis), serial_(std::move(serial)),
      thermal_(FalconChassis::kDrawers) {
  chassis_.setBmc(this);
}

void Bmc::logEvent(std::string severity, std::string message) {
  events_.push_back(BmcEvent{sim_.now(), std::move(severity), std::move(message)});
}

std::vector<BmcEvent> Bmc::exportEvents(const std::string& minSeverity) const {
  const int min = severityRank(minSeverity);
  std::vector<BmcEvent> out;
  for (const auto& e : events_) {
    if (severityRank(e.severity) >= min) out.push_back(e);
  }
  return out;
}

Status Bmc::registerThermalSource(int drawer, std::function<double()> activity) {
  if (drawer < 0 || drawer >= FalconChassis::kDrawers) {
    return Status::invalidArgument("no drawer " + std::to_string(drawer));
  }
  thermal_[static_cast<std::size_t>(drawer)].push_back(std::move(activity));
  return Status::success();
}

TemperatureReading Bmc::readTemperatures() const {
  TemperatureReading r;
  constexpr double kAmbient = 24.0;
  constexpr double kPerDrawerSwing = 34.0;  // fully busy drawer runs hot
  double hottest = kAmbient;
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    const auto& sources = thermal_[static_cast<std::size_t>(d)];
    double activity = 0.0;
    for (const auto& fn : sources) activity += std::clamp(fn(), 0.0, 1.0);
    if (!sources.empty()) activity /= static_cast<double>(sources.size());
    r.drawer_celsius[d] = kAmbient + kPerDrawerSwing * activity;
    hottest = std::max(hottest, r.drawer_celsius[d]);
  }
  r.chassis_celsius = 0.5 * (r.drawer_celsius[0] + r.drawer_celsius[1]);
  // Fan curve: idle 3000 rpm, ramps linearly to 11000 at 80C.
  r.fan_rpm = 3000.0 + std::clamp((hottest - kAmbient) / (80.0 - kAmbient), 0.0, 1.0) * 8000.0;
  return r;
}

void Bmc::sampleSensors() {
  const TemperatureReading r = readTemperatures();
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    if (r.drawer_celsius[d] > alert_threshold_) {
      logEvent("alert", "drawer " + std::to_string(d) + " temperature " +
                            std::to_string(r.drawer_celsius[d]) +
                            "C exceeds threshold");
    }
  }
}

Status Bmc::startPeriodicSampling(SimTime interval) {
  if (interval <= 0.0) {
    return Status::invalidArgument("sampling interval must be positive");
  }
  if (sampling_) {
    return Status::failedPrecondition("periodic sampling already running");
  }
  sampling_ = true;
  periodicSample(interval);
  return Status::success();
}

void Bmc::periodicSample(SimTime interval) {
  if (!sampling_) return;
  pending_sample_ = sim_.schedule(interval, [this, interval] {
    pending_sample_ = kInvalidEvent;
    if (!sampling_) return;
    sampleSensors();
    periodicSample(interval);
  });
}

void Bmc::stopAndCancelSampling() {
  sampling_ = false;
  if (pending_sample_ != kInvalidEvent) {
    sim_.cancel(pending_sample_);
    pending_sample_ = kInvalidEvent;
  }
}

Bmc::State Bmc::state() const {
  if (sampling_) {
    throw std::logic_error("Bmc::state: stop periodic sampling first");
  }
  return State{events_};
}

void Bmc::restoreState(const State& st) {
  if (sampling_) {
    throw std::logic_error("Bmc::restoreState: stop periodic sampling first");
  }
  events_ = st.events;
}

std::vector<LinkHealthRow> Bmc::linkHealth() const {
  std::vector<LinkHealthRow> rows;
  const auto& topo = const_cast<FalconChassis&>(chassis_).topology();
  for (int d = 0; d < FalconChassis::kDrawers; ++d) {
    for (int i = 0; i < FalconChassis::kSlotsPerDrawer; ++i) {
      const SlotId id{d, i};
      const auto& info = chassis_.slot(id);
      if (!info.occupied) continue;
      LinkHealthRow row;
      row.slot = id;
      row.device_name = info.device_name;
      const auto& up = topo.link(info.link_up);      // device -> switch
      const auto& down = topo.link(info.link_down);  // switch -> device
      row.up = up.up && down.up;
      row.bytes_egress = up.counters.bytes;
      row.bytes_ingress = down.counters.bytes;
      row.accumulated_errors = up.counters.errors + down.counters.errors;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

Bytes Bmc::drawerThroughputBytes(int drawer) const {
  Bytes total = 0;
  for (const auto& row : linkHealth()) {
    if (row.slot.drawer == drawer) total += row.bytes_ingress + row.bytes_egress;
  }
  return total;
}

SystemInfo Bmc::systemInfo() const {
  SystemInfo info;
  info.serial = serial_;
  info.uptime = sim_.now();
  return info;
}

}  // namespace composim::falcon
