// composim: reusable per-subsystem metric collectors.
//
// Each collector registers its instruments in a MetricsRegistry and hooks
// a per-scrape update into a MetricsScraper, replacing the hand-rolled
// probe lambdas every bench used to wire by itself. The collectors cover
// what the paper's measurement stack reports: nvidia-smi style GPU
// utilization, host CPU/sysmem, the Falcon management interface's per-port
// throughput, per-link fabric health, and the BMC's link-health table with
// accumulated error counts.
//
// Observation-style sources (Trainer iteration/checkpoint phases,
// InferenceEngine request latencies) publish through std::function
// observer hooks on the dl classes — the dl layer stays free of telemetry
// includes; the collector owns the registry side of the hook.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/metrics_pipeline.hpp"

namespace composim::devices {
class Gpu;
class HostCpu;
}  // namespace composim::devices

namespace composim::fabric {
class Topology;
}  // namespace composim::fabric

namespace composim::falcon {
class Bmc;
}  // namespace composim::falcon

namespace composim::dl {
class Trainer;
class InferenceEngine;
}  // namespace composim::dl

namespace composim::telemetry {

/// Aggregate GPU telemetry across the training gang, nvidia-smi style:
///   gpu_util_pct        gauge, busy-time rate scaled to percent, clamped
///   gpu_mem_access_pct  gauge, memory-busy-time rate scaled to percent
///   gpu_mem_util_pct    gauge, mean allocated-memory fraction * 100
/// The `gpus` vector is captured by value; devices must outlive scraping.
void collectGpus(MetricsScraper& scraper, MetricsRegistry& registry,
                 std::vector<const devices::Gpu*> gpus);

/// Host telemetry:
///   cpu_util_pct        gauge, busy-thread-time rate over total threads
///   host_mem_util_pct   gauge, allocated host memory * 100
void collectHostCpu(MetricsScraper& scraper, MetricsRegistry& registry,
                    const devices::HostCpu& cpu);

/// Aggregate Falcon GPU-port traffic (the management interface's
/// throughput view): falcon_pcie_gbs gauge, rate of the cumulative
/// port-byte counter scaled to GB/s. `portBytes` keeps the telemetry layer
/// decoupled from core::ComposableSystem.
void collectFalconPcie(MetricsScraper& scraper, MetricsRegistry& registry,
                       std::function<double()> portBytes);

/// Per-link fabric health for the named links:
///   link_throughput_gbs{link=...}  gauge, byte-counter rate in GB/s
///   link_util_pct{link=...}        gauge, rate / capacity * 100
///   link_up{link=...}              gauge, 1 up / 0 down
struct LinkProbe {
  std::int32_t link = -1;  // fabric::LinkId
  std::string name;        // label value
};
void collectFabricLinks(MetricsScraper& scraper, MetricsRegistry& registry,
                        const fabric::Topology& topo,
                        std::vector<LinkProbe> links);

/// Every host-adapter (CDFP) link in the topology, named
/// "src->dst" from the node names — the links the Falcon web UI charts.
std::vector<LinkProbe> hostAdapterLinks(const fabric::Topology& topo);

/// BMC link-health table:
///   ecc_errors_total{slot=...,device=...}   counter, accumulated errors
///   falcon_link_up{slot=...,device=...}     gauge, 1 up / 0 down
///   falcon_slot_gbs{slot=...,device=...}    gauge, ingress+egress GB/s
/// Slots are labeled "drawer/slot" (e.g. "0/3").
void collectBmc(MetricsScraper& scraper, MetricsRegistry& registry,
                const falcon::Bmc& bmc);

/// Trainer phase latencies through the observer hooks:
///   train_iteration_ms   histogram (default latency buckets)
///   train_checkpoint_ms  histogram
/// Installs Trainer::setIterationObserver / setCheckpointObserver; the
/// registry must outlive the trainer's run.
void observeTrainer(MetricsRegistry& registry, dl::Trainer& trainer);

/// Per-request serving latency through the observer hook:
///   inference_latency_ms{model=...}  histogram (default latency buckets)
/// Installs InferenceEngine::setLatencyObserver.
void observeInference(MetricsRegistry& registry, dl::InferenceEngine& engine,
                      const std::string& model);

}  // namespace composim::telemetry
