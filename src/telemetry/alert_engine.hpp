// composim: SLO alert evaluation over the metrics registry.
//
// Rules are threshold-with-hold-duration predicates in the Prometheus
// alerting spirit: a rule names a metric family (optionally one labeled
// instrument), compares its current value — or its rate of change, for
// cumulative counters — against a threshold, and fires only after the
// condition has held continuously for the configured duration. Each
// breached series produces one typed *firing* alert and, once the
// condition clears, one *resolved* alert; both land in the engine log and
// every subscribed handler (the experiment wires firing alerts into the
// BMC event log so they interleave with the fault-injection history).
//
// The engine evaluates on the scrape cadence (MetricsScraper calls
// evaluate() after every snapshot), so detection latency is quantized to
// the scrape interval — the same telemetry-lag property the HealthMonitor
// has for BMC polling.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/units.hpp"
#include "telemetry/metrics.hpp"

namespace composim::telemetry {

struct AlertRule {
  enum class Cmp { GT, LT };

  std::string name;    // rule label ("" = derived from the expression)
  std::string metric;  // family name, or family{labels} for one instrument
  bool rate = false;   // compare d(value)/dt between scrapes, not the value
  Cmp cmp = Cmp::GT;
  double threshold = 0.0;
  SimTime hold = 0.0;  // condition must hold this long before firing

  /// The canonical "expr" string: `metric [rate] >|< threshold for Ns`.
  std::string expression() const;
};

/// Parse the compact rule syntax:
///
///   [name:] <metric> [rate] (>|<) <threshold> [for <duration>[s|ms]]
///
/// e.g. "link_util_pct > 95 for 2s", "hot: ecc_errors_total rate > 0",
/// "gpu_util_pct < 10 for 5s". Throws std::invalid_argument on malformed
/// input.
AlertRule parseAlertRule(const std::string& text);

struct Alert {
  std::string rule;    // AlertRule::name (or expression)
  std::string series;  // metric family + label set that breached
  bool firing = true;  // false = resolved
  SimTime time = 0.0;  // evaluation time of the transition
  double value = 0.0;  // observed value (or rate) at the transition
};

class AlertEngine {
 public:
  using Handler = std::function<void(const Alert&)>;

  explicit AlertEngine(const MetricsRegistry& registry)
      : registry_(registry) {}

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  void addRule(AlertRule rule);
  /// Parse-and-add sugar for config files.
  void addRule(const std::string& text) { addRule(parseAlertRule(text)); }
  std::size_t ruleCount() const { return rules_.size(); }

  void subscribe(Handler handler) { handlers_.push_back(std::move(handler)); }

  /// Evaluate every rule against the registry as of simulated time `now`.
  /// Called by the scraper after each snapshot; may be called directly.
  void evaluate(SimTime now);

  /// Every firing/resolved transition, in emission order.
  const std::vector<Alert>& log() const { return log_; }
  /// Series currently in the firing state, across all rules.
  std::size_t firingCount() const;

  /// Hold-duration / rate-baseline / firing state of every rule plus the
  /// alert log, for warm-prefix forking. The fork re-adds the same rules
  /// in the same order (rules come from the spec, so this holds by
  /// construction) and re-subscribes its own handlers; setState() restores
  /// only the evaluation state and throws std::logic_error on a rule-count
  /// mismatch.
  struct State;
  State state() const;
  void setState(const State& st);

 private:
  struct SeriesState {
    bool seen = false;        // rate baseline primed
    double last_value = 0.0;  // previous scrape's value (rate rules)
    SimTime last_time = 0.0;
    bool breaching = false;
    SimTime breach_since = 0.0;
    bool firing = false;
  };
  struct RuleState {
    AlertRule rule;
    // Keyed by the instrument's label string (deterministic iteration).
    std::map<std::string, SeriesState> series;
  };

  void emit(Alert alert);

  const MetricsRegistry& registry_;
  std::vector<RuleState> rules_;
  std::vector<Handler> handlers_;
  std::vector<Alert> log_;
};

struct AlertEngine::State {
  std::vector<std::map<std::string, SeriesState>> rule_series;  // rule order
  std::vector<Alert> log;
};

}  // namespace composim::telemetry
