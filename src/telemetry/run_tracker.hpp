// composim: experiment run tracker (the Weights & Biases stand-in of
// Table I).
//
// A RunTracker owns named runs; each run carries a config dictionary,
// per-step scalar logs and final summary values, and can be exported as a
// directory of CSV files plus a JSON manifest — the artifact a plotting
// notebook would consume.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "falcon/json.hpp"
#include "sim/units.hpp"
#include "telemetry/time_series.hpp"

namespace composim::telemetry {

class TrackedRun {
 public:
  explicit TrackedRun(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void setConfig(const std::string& key, std::string value) {
    config_[key] = std::move(value);
  }
  const std::map<std::string, std::string>& config() const { return config_; }

  /// Log a scalar at a step/time coordinate (monotone per metric).
  void log(const std::string& metric, SimTime t, double value);

  void setSummary(const std::string& key, double value) { summary_[key] = value; }
  const std::map<std::string, double>& summary() const { return summary_; }

  const TimeSeries* series(const std::string& metric) const;
  std::vector<std::string> metrics() const;

  /// Attach a pre-rendered artifact file (analysis report, trace JSON):
  /// exportTo writes it as <run>_<filename> and the manifest lists it.
  void addArtifact(std::string filename, std::string content) {
    artifacts_[std::move(filename)] = std::move(content);
  }
  const std::map<std::string, std::string>& artifacts() const {
    return artifacts_;
  }

  /// JSON manifest entry (config + summary + metric and artifact names).
  falcon::Json manifest() const;

 private:
  std::string name_;
  std::map<std::string, std::string> config_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, double> summary_;
  std::map<std::string, std::string> artifacts_;
};

class RunTracker {
 public:
  /// Creates (or returns the existing) run with this name.
  TrackedRun& run(const std::string& name);
  const TrackedRun* find(const std::string& name) const;
  std::size_t runCount() const { return runs_.size(); }

  /// Write <dir>/manifest.json and one <dir>/<run>_<metric>.csv per
  /// logged metric. The directory must exist.
  void exportTo(const std::string& dir) const;

  /// Full manifest for all runs.
  falcon::Json manifest() const;

 private:
  // Stable iteration order for deterministic manifests.
  std::map<std::string, TrackedRun> runs_;
};

}  // namespace composim::telemetry
