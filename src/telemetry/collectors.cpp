#include "telemetry/collectors.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "devices/gpu.hpp"
#include "devices/host_cpu.hpp"
#include "dl/inference.hpp"
#include "dl/trainer.hpp"
#include "fabric/topology.hpp"
#include "falcon/bmc.hpp"
#include "telemetry/sampler.hpp"

namespace composim::telemetry {

namespace {

Simulator& scraperSim(MetricsScraper& scraper, const char* who) {
  Simulator* sim = scraper.simulator();
  if (sim == nullptr) {
    throw std::logic_error(std::string(who) + ": scraper already finalized");
  }
  return *sim;
}

std::string slotLabel(const falcon::SlotId& slot) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d/%d", slot.drawer, slot.index);
  return buf;
}

// RateProbe state flattening for the scraper's collector save/load hooks:
// 4 doubles per probe (last_value, last_rate, last_time, primed), appended
// in a fixed order per collector so a fork built from the same config
// round-trips exactly.
void pushProbe(MetricsScraper::CollectorState& out, const RateProbe& probe) {
  const RateProbe::State st = probe.state();
  out.push_back(st.last_value);
  out.push_back(st.last_rate);
  out.push_back(st.last_time);
  out.push_back(st.primed ? 1.0 : 0.0);
}

std::size_t popProbe(const MetricsScraper::CollectorState& in, std::size_t i,
                     RateProbe& probe) {
  RateProbe::State st;
  st.last_value = in.at(i);
  st.last_rate = in.at(i + 1);
  st.last_time = in.at(i + 2);
  st.primed = in.at(i + 3) != 0.0;
  probe.setState(st);
  return i + 4;
}

}  // namespace

void collectGpus(MetricsScraper& scraper, MetricsRegistry& registry,
                 std::vector<const devices::Gpu*> gpus) {
  if (gpus.empty()) return;
  Simulator& sim = scraperSim(scraper, "collectGpus");
  const double per_gpu_pct = 100.0 / static_cast<double>(gpus.size());

  // Communication-kernel busy time is credited at collective completion,
  // which can land a whole window's worth of busy seconds in one sample;
  // clamp like nvidia-smi (utilization never reads above 100%).
  auto busy = std::make_shared<RateProbe>(
      sim,
      [gpus] {
        double total = 0.0;
        for (const auto* g : gpus) total += g->busyTime();
        return total;
      },
      per_gpu_pct);
  auto mem_busy = std::make_shared<RateProbe>(
      sim,
      [gpus] {
        double total = 0.0;
        for (const auto* g : gpus) total += g->memBusyTime();
        return total;
      },
      per_gpu_pct);

  Gauge& util = registry.gauge("gpu_util_pct", {},
                               "Mean GPU utilization over the gang, percent");
  Gauge& mem_access = registry.gauge(
      "gpu_mem_access_pct", {},
      "Mean GPU memory-access time over the gang, percent");
  Gauge& mem_util = registry.gauge("gpu_mem_util_pct", {},
                                   "Mean allocated GPU memory, percent");
  scraper.addCollector(
      [gpus, busy, mem_busy, &util, &mem_access, &mem_util] {
        util.set(std::min(100.0, (*busy)()));
        mem_access.set((*mem_busy)());
        double total = 0.0;
        for (const auto* g : gpus) total += g->memoryUtilization();
        mem_util.set(100.0 * total / static_cast<double>(gpus.size()));
      },
      [busy, mem_busy] {
        MetricsScraper::CollectorState st;
        pushProbe(st, *busy);
        pushProbe(st, *mem_busy);
        return st;
      },
      [busy, mem_busy](const MetricsScraper::CollectorState& st) {
        popProbe(st, popProbe(st, 0, *busy), *mem_busy);
      });
}

void collectHostCpu(MetricsScraper& scraper, MetricsRegistry& registry,
                    const devices::HostCpu& cpu) {
  Simulator& sim = scraperSim(scraper, "collectHostCpu");
  auto busy = std::make_shared<RateProbe>(
      sim, [&cpu] { return cpu.busyThreadTime(); },
      100.0 / cpu.totalThreads());
  Gauge& util =
      registry.gauge("cpu_util_pct", {}, "Host CPU utilization, percent");
  Gauge& mem = registry.gauge("host_mem_util_pct", {},
                              "Host memory utilization, percent");
  scraper.addCollector(
      [&cpu, busy, &util, &mem] {
        util.set((*busy)());
        mem.set(100.0 * cpu.memoryUtilization());
      },
      [busy] {
        MetricsScraper::CollectorState st;
        pushProbe(st, *busy);
        return st;
      },
      [busy](const MetricsScraper::CollectorState& st) {
        popProbe(st, 0, *busy);
      });
}

void collectFalconPcie(MetricsScraper& scraper, MetricsRegistry& registry,
                       std::function<double()> portBytes) {
  Simulator& sim = scraperSim(scraper, "collectFalconPcie");
  auto rate = std::make_shared<RateProbe>(sim, std::move(portBytes), 1e-9);
  Gauge& gbs = registry.gauge(
      "falcon_pcie_gbs", {},
      "Aggregate Falcon GPU-port PCIe traffic, gigabytes per second");
  scraper.addCollector(
      [rate, &gbs] { gbs.set((*rate)()); },
      [rate] {
        MetricsScraper::CollectorState st;
        pushProbe(st, *rate);
        return st;
      },
      [rate](const MetricsScraper::CollectorState& st) {
        popProbe(st, 0, *rate);
      });
}

void collectFabricLinks(MetricsScraper& scraper, MetricsRegistry& registry,
                        const fabric::Topology& topo,
                        std::vector<LinkProbe> links) {
  if (links.empty()) return;
  Simulator& sim = scraperSim(scraper, "collectFabricLinks");
  struct LinkState {
    fabric::LinkId link;
    std::shared_ptr<RateProbe> bytes_gbs;
    Gauge* throughput;
    Gauge* util;
    Gauge* up;
  };
  auto states = std::make_shared<std::vector<LinkState>>();
  states->reserve(links.size());
  for (const LinkProbe& lp : links) {
    const fabric::LinkId id = lp.link;
    LinkState st;
    st.link = id;
    st.bytes_gbs = std::make_shared<RateProbe>(
        sim,
        [&topo, id] {
          return static_cast<double>(topo.link(id).counters.bytes);
        },
        1e-9);
    const Labels labels{{"link", lp.name}};
    st.throughput =
        &registry.gauge("link_throughput_gbs", labels,
                        "Per-link carried traffic, gigabytes per second");
    st.util = &registry.gauge("link_util_pct", labels,
                              "Per-link utilization of capacity, percent");
    st.up = &registry.gauge("link_up", labels, "Link state: 1 up, 0 down");
    states->push_back(std::move(st));
  }
  scraper.addCollector(
      [&topo, states] {
        for (LinkState& st : *states) {
          const fabric::Link& link = topo.link(st.link);
          const double gbs = (*st.bytes_gbs)();
          st.throughput->set(gbs);
          st.util->set(link.capacity > 0.0 ? 100.0 * gbs * 1e9 / link.capacity
                                           : 0.0);
          st.up->set(link.up ? 1.0 : 0.0);
        }
      },
      [states] {
        MetricsScraper::CollectorState st;
        for (const LinkState& ls : *states) pushProbe(st, *ls.bytes_gbs);
        return st;
      },
      [states](const MetricsScraper::CollectorState& st) {
        std::size_t i = 0;
        for (LinkState& ls : *states) i = popProbe(st, i, *ls.bytes_gbs);
      });
}

std::vector<LinkProbe> hostAdapterLinks(const fabric::Topology& topo) {
  std::vector<LinkProbe> out;
  for (std::size_t l = 0; l < topo.linkCount(); ++l) {
    const auto id = static_cast<fabric::LinkId>(l);
    const fabric::Link& link = topo.link(id);
    if (link.kind != fabric::LinkKind::HostAdapter) continue;
    out.push_back(LinkProbe{
        id, topo.node(link.src).name + "->" + topo.node(link.dst).name});
  }
  return out;
}

void collectBmc(MetricsScraper& scraper, MetricsRegistry& registry,
                const falcon::Bmc& bmc) {
  Simulator& sim = scraperSim(scraper, "collectBmc");
  // Per-slot byte rate needs a probe per row; the slot population is fixed
  // after composition, so snapshot the rows once to build the probes.
  struct SlotState {
    std::string slot;
    std::shared_ptr<RateProbe> gbs;
    double last_errors = 0.0;
  };
  auto states = std::make_shared<std::vector<SlotState>>();
  for (const falcon::LinkHealthRow& row : bmc.linkHealth()) {
    SlotState st;
    st.slot = slotLabel(row.slot);
    const std::string slot = st.slot;
    st.gbs = std::make_shared<RateProbe>(
        sim,
        [&bmc, slot] {
          for (const auto& r : bmc.linkHealth()) {
            if (slotLabel(r.slot) == slot) {
              return static_cast<double>(r.bytes_ingress + r.bytes_egress);
            }
          }
          return 0.0;
        },
        1e-9);
    states->push_back(std::move(st));
  }
  scraper.addCollector(
      [&bmc, &registry, states] {
        for (const falcon::LinkHealthRow& row : bmc.linkHealth()) {
          const std::string slot = slotLabel(row.slot);
          const Labels labels{{"device", row.device_name}, {"slot", slot}};
          registry
              .gauge("falcon_link_up", labels,
                     "Falcon slot link state: 1 up, 0 down")
              .set(row.up ? 1.0 : 0.0);
          Counter& errors =
              registry.counter("ecc_errors_total", labels,
                               "Accumulated link/ECC errors from the BMC "
                               "link-health table");
          for (SlotState& st : *states) {
            if (st.slot != slot) continue;
            const auto observed = static_cast<double>(row.accumulated_errors);
            // Counter-reset handling (device replaced): re-accumulate from 0.
            errors.add(observed >= st.last_errors ? observed - st.last_errors
                                                  : observed);
            st.last_errors = observed;
            registry
                .gauge("falcon_slot_gbs", labels,
                       "Falcon slot ingress+egress traffic, gigabytes per "
                       "second")
                .set((*st.gbs)());
          }
        }
      },
      [states] {
        MetricsScraper::CollectorState st;
        for (const SlotState& ss : *states) {
          pushProbe(st, *ss.gbs);
          st.push_back(ss.last_errors);
        }
        return st;
      },
      [states](const MetricsScraper::CollectorState& st) {
        std::size_t i = 0;
        for (SlotState& ss : *states) {
          i = popProbe(st, i, *ss.gbs);
          ss.last_errors = st.at(i++);
        }
      });
}

void observeTrainer(MetricsRegistry& registry, dl::Trainer& trainer) {
  Histogram& iteration = registry.histogram(
      "train_iteration_ms", {}, defaultLatencyBucketsMs(),
      "Training iteration wall time, milliseconds");
  trainer.setIterationObserver(
      [&iteration](SimTime dt) { iteration.observe(dt * 1e3); });
  Histogram& checkpoint = registry.histogram(
      "train_checkpoint_ms", {}, defaultLatencyBucketsMs(),
      "Checkpoint write wall time, milliseconds");
  trainer.setCheckpointObserver(
      [&checkpoint](SimTime dt) { checkpoint.observe(dt * 1e3); });
}

void observeInference(MetricsRegistry& registry, dl::InferenceEngine& engine,
                      const std::string& model) {
  Histogram& latency = registry.histogram(
      "inference_latency_ms", {{"model", model}}, defaultLatencyBucketsMs(),
      "Per-request serving latency, milliseconds");
  engine.setLatencyObserver([&latency](double ms) { latency.observe(ms); });
}

}  // namespace composim::telemetry
