// composim: critical-path extraction + automated bottleneck attribution.
//
// Post-mortem analysis over a finalized Profiler trace. The analyzer
// replays the recorded spans/counters (no JSON round-trip) and produces,
// per training iteration:
//
//  * a time attribution that decomposes the iteration wall time into five
//    buckets — compute, overlapped comm, exposed comm, fabric contention
//    and stall — that sum back to the wall time within
//    kAttributionTolerancePct (the decomposition is a partition of the
//    iteration interval by "what was active", so it is exact up to
//    floating-point accumulation);
//  * the critical path: the chain of trainer phase spans that tiles the
//    iteration, with sync phases joined through the collective op that ran
//    under them (via the correlation id stamped by Communicator::beginOp)
//    down to the last-finishing fabric flow, naming the src->dst pair that
//    actually bounded the collective.
//
// Run-level outputs add per-link contention rankings (replayed from the
// "link:*" counter series: time integrals of utilization while >= 2 flows
// share the link) and per-span mean seconds/iteration, plus a run-diff
// mode that attributes the wall-time delta between two runs to bucket and
// span-level changes. Causal model, bucket definitions and tolerance
// semantics: DESIGN.md section 17.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "falcon/json.hpp"
#include "telemetry/profiler.hpp"

namespace composim::telemetry::analysis {

/// Max tolerated |sum(buckets) - wall| as a percentage of wall time. The
/// sweep partitions the iteration interval, so anything above pure
/// floating-point noise indicates an analyzer bug; bench_analysis gates
/// on this.
inline constexpr double kAttributionTolerancePct = 0.1;

/// Seconds of iteration wall time by cause. Definitions (DESIGN.md s17):
/// compute = compute-tagged trainer spans active (regardless of comm);
/// overlapped_comm = comm active AND compute active (hidden, costs
/// nothing extra); exposed_comm + fabric_contention = comm active with no
/// compute (the exposed part, split by the contended fraction of the
/// fabric flows finishing in the iteration); stall = neither active.
struct Buckets {
  double compute = 0.0;
  double overlapped_comm = 0.0;
  double exposed_comm = 0.0;
  double fabric_contention = 0.0;
  double stall = 0.0;
  double wall = 0.0;

  /// Sum of the wall-time partition (everything except overlapped_comm,
  /// which is informational: it re-counts time already billed to compute).
  double partitionSum() const {
    return compute + exposed_comm + fabric_contention + stall;
  }
};

/// One hop of an iteration's critical path: a trainer phase span, plus a
/// causal detail for sync phases (the collective op + bounding flow).
struct PathItem {
  std::string name;    // trainer phase span name (forward, gradient-sync...)
  std::string bucket;  // the span's "bucket" tag (compute/sync/stall/io)
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::string detail;  // e.g. "allReduce[hierarchical] -> last flow gpu0->gpu4"
  SimTime duration() const { return end - start; }
};

struct IterationAnalysis {
  std::int64_t iter = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  Buckets buckets;
  /// Share of wall time covered by critical-path items, percent.
  double coverage_pct = 0.0;
  /// |partitionSum - wall| as a percentage of wall.
  double attribution_error_pct = 0.0;
  std::vector<PathItem> critical_path;
};

/// Contention ranking entry for one fabric link, replayed from its
/// "link:<a>-><b>" counter series.
struct LinkContention {
  std::string link;
  double contention_s = 0.0;  // integral of util while >= 2 flows shared it
  double busy_s = 0.0;        // integral of util over the whole trace
  double util_mean_pct = 0.0;
};

struct RunAnalysis {
  std::string name;  // run label, settable by the caller (experiment name)
  std::size_t iterations = 0;
  Buckets total;  // summed over analyzed iterations
  Buckets mean;   // total / iterations
  double coverage_pct = 0.0;               // mean over iterations
  double max_attribution_error_pct = 0.0;  // worst iteration
  std::vector<IterationAnalysis> per_iteration;
  std::vector<LinkContention> links;  // ranked, most contended first
  /// Mean seconds per iteration by span name (trainer phases + collective
  /// ops + fabric flow tags), the inputs to span-level run diffing.
  std::map<std::string, double> span_mean_s;
};

/// Analyze a finalized trace. Deterministic: identical traces produce
/// identical (byte-identical once serialized) analyses regardless of
/// sweep parallelism. A trace with no iteration spans yields an empty
/// RunAnalysis (iterations == 0).
RunAnalysis analyzeProfile(const Profiler& prof, std::string name = {});

/// Deterministic JSON document (schema "composim.analysis/1").
falcon::Json toJson(const RunAnalysis& a);
/// Human-readable report (attribution table, critical path, top links).
std::string report(const RunAnalysis& a);

/// Wall-time delta between two runs attributed to buckets and spans.
/// All deltas are other - base, mean seconds per iteration.
struct RunDiff {
  std::string base;
  std::string other;
  double base_wall_s = 0.0;
  double other_wall_s = 0.0;
  double wall_delta_s = 0.0;
  /// (bucket name, delta seconds), ranked by |delta| descending.
  std::vector<std::pair<std::string, double>> bucket_deltas;
  /// (span name, delta seconds), ranked by |delta| descending.
  std::vector<std::pair<std::string, double>> span_deltas;
  /// The partition bucket absorbing the largest share of the delta
  /// ("none" when the runs are indistinguishable).
  std::string dominant_bucket;
};

RunDiff diffRuns(const RunAnalysis& base, const RunAnalysis& other);

/// Deterministic JSON document (schema "composim.analysis.diff/1").
falcon::Json toJson(const RunDiff& d);
std::string report(const RunDiff& d);

}  // namespace composim::telemetry::analysis
