// composim: scrape loop + export surface over the metrics registry.
//
// MetricsScraper polls a MetricsRegistry on a fixed simulated-time
// interval — the fleet-monitoring scrape — appending every instrument's
// current value to a named TimeSeries. Registered collector callbacks run
// first on each pass, pulling fresh values out of the subsystems
// (telemetry/collectors.hpp has the reusable ones), and the AlertEngine,
// when attached, is evaluated right after the snapshot, so alert detection
// latency is one scrape interval at most.
//
// Series naming: `family` for an unlabeled instrument,
// `family{k="v",...}` for labeled ones; histograms additionally scrape
// `_count`, `_sum`, `_p50`, `_p95` and `_p99` sub-series so latency
// percentiles are plottable over time.
//
// MetricsPipeline bundles registry + scraper + alert engine into the one
// shared object an ExperimentResult hands back; finalize() detaches it
// from the Simulator (like Profiler::finalize) so it may outlive the run
// that produced it.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/simulator.hpp"
#include "telemetry/alert_engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/time_series.hpp"

namespace composim::telemetry {

class MetricsScraper {
 public:
  MetricsScraper(Simulator& sim, MetricsRegistry& registry, SimTime interval);

  MetricsScraper(const MetricsScraper&) = delete;
  MetricsScraper& operator=(const MetricsScraper&) = delete;

  SimTime interval() const { return interval_; }
  /// The simulator scrapes run against (null after finalize()). Collectors
  /// use it to build rate probes over cumulative counters.
  Simulator* simulator() const { return sim_; }

  /// Register a pull callback run before every snapshot (subsystem state
  /// -> registry instruments).
  void addCollector(std::function<void()> update);

  /// Flattened closure state of one collector (RateProbe baselines and
  /// similar scalars), in a fixed per-collector order.
  using CollectorState = std::vector<double>;

  /// Register a collector together with save/load hooks for its closure
  /// state, so warm-prefix forks can resume rate differentiation exactly
  /// where the prefix left off. Collectors registered without hooks are
  /// treated as stateless (they save an empty vector).
  void addCollector(std::function<void()> update,
                    std::function<CollectorState()> save,
                    std::function<void(const CollectorState&)> load);

  /// Closure states of every collector, in registration order.
  std::vector<CollectorState> collectorStates() const;
  /// Restore closure states captured by collectorStates(); the target must
  /// have registered the same collectors in the same order.
  void restoreCollectorStates(const std::vector<CollectorState>& states);

  /// Evaluate `engine` after every scrape (not owned).
  void setAlertEngine(AlertEngine* engine) { alerts_ = engine; }

  void start();
  void stop() { running_ = false; }
  /// Stop AND cancel the pending tick event, so a draining simulation
  /// quiesces at the stop point instead of running the clock forward to
  /// the stale tick's no-op firing. Used at the warm-prefix pause
  /// boundary, where the drained clock value is observable (the resumed
  /// scrape grid restarts from it); plain stop() keeps the historical
  /// drain behavior for end-of-run teardown.
  void stopAndCancelTick();
  bool running() const { return running_; }
  /// One collector + snapshot + alert pass at the current simulated time.
  void scrapeOnce();

  const TimeSeries& series(const std::string& name) const;
  bool hasSeries(const std::string& name) const { return series_.count(name) > 0; }
  std::vector<std::string> seriesNames() const;
  std::size_t scrapeCount() const { return scrapes_; }

  /// JSONL time-series dump: one compact JSON object per sample,
  /// `{"metric": <series name>, "t": <sim seconds>, "value": <v>}`,
  /// series in name order, samples in time order. Deterministic.
  std::string jsonlDump() const;
  Status writeJsonl(const std::string& path) const;

  /// Detach from the Simulator; scraping stops and the object may outlive
  /// the system that produced the series.
  void finalize();

  /// Scrape-history snapshot: every TimeSeries plus the scrape counter.
  /// Collector closure state is captured separately (collectorStates())
  /// because the fork re-registers fresh collector closures against its
  /// own subsystems. Valid only while stopped.
  struct State {
    std::map<std::string, TimeSeries> series;
    std::size_t scrapes = 0;
  };

  State state() const;
  void setState(const State& st);

 private:
  struct Collector {
    std::function<void()> update;
    std::function<CollectorState()> save;
    std::function<void(const CollectorState&)> load;
  };

  void tick();
  TimeSeries& seriesFor(const std::string& name);

  Simulator* sim_;  // null after finalize()
  MetricsRegistry& registry_;
  SimTime interval_;
  bool running_ = false;
  EventId pending_tick_ = kInvalidEvent;
  std::size_t scrapes_ = 0;
  std::vector<Collector> collectors_;
  AlertEngine* alerts_ = nullptr;
  std::map<std::string, TimeSeries> series_;
};

/// Registry + scraper + alert engine, constructed together per experiment.
class MetricsPipeline {
 public:
  MetricsPipeline(Simulator& sim, SimTime scrapeInterval)
      : alerts_(registry_), scraper_(sim, registry_, scrapeInterval) {
    scraper_.setAlertEngine(&alerts_);
  }

  MetricsPipeline(const MetricsPipeline&) = delete;
  MetricsPipeline& operator=(const MetricsPipeline&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  MetricsScraper& scraper() { return scraper_; }
  const MetricsScraper& scraper() const { return scraper_; }
  AlertEngine& alerts() { return alerts_; }
  const AlertEngine& alerts() const { return alerts_; }

  // Convenience pass-throughs (what result consumers actually touch).
  const TimeSeries& series(const std::string& name) const {
    return scraper_.series(name);
  }
  bool hasSeries(const std::string& name) const {
    return scraper_.hasSeries(name);
  }
  std::string prometheusText() const { return registry_.prometheusText(); }
  std::string jsonlDump() const { return scraper_.jsonlDump(); }
  Status writePrometheus(const std::string& path) const;
  Status writeJsonl(const std::string& path) const {
    return scraper_.writeJsonl(path);
  }

  void finalize() { scraper_.finalize(); }

 private:
  MetricsRegistry registry_;
  AlertEngine alerts_;
  MetricsScraper scraper_;
};

}  // namespace composim::telemetry
