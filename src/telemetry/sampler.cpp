#include "telemetry/sampler.hpp"

#include <stdexcept>

namespace composim::telemetry {

double RateProbe::operator()() {
  const double value = cumulative_();
  const SimTime now = sim_.now();
  if (primed_ && now <= last_time_) {
    // Back-to-back polls at the same instant: no interval to differentiate
    // over, so hold the last computed rate (and leave the baseline alone —
    // the in-between counter delta still counts toward the next interval).
    return last_rate_;
  }
  if (primed_) {
    last_rate_ = (value - last_value_) / (now - last_time_) * scale_;
  }
  last_value_ = value;
  last_time_ = now;
  primed_ = true;
  return last_rate_;
}

void MetricsSampler::addProbe(const std::string& name, Probe probe) {
  if (series_.count(name) > 0) {
    throw std::invalid_argument("MetricsSampler: duplicate probe '" + name + "'");
  }
  series_.emplace(name, std::make_unique<TimeSeries>(name));
  probes_.emplace_back(name, std::move(probe));
}

void MetricsSampler::addRateProbe(const std::string& name,
                                  Probe cumulativeCounter, double scale) {
  auto rp = std::make_shared<RateProbe>(sim_, std::move(cumulativeCounter), scale);
  rate_probes_.push_back(rp);
  addProbe(name, [rp]() { return (*rp)(); });
}

void MetricsSampler::start() {
  if (running_) return;
  running_ = true;
  sampleOnce();  // prime rate probes at t0
  tick();
}

void MetricsSampler::tick() {
  sim_.schedule(interval_, [this] {
    if (!running_) return;
    sampleOnce();
    tick();
  });
}

void MetricsSampler::sampleOnce() {
  const SimTime now = sim_.now();
  for (auto& [name, probe] : probes_) {
    series_.at(name)->push(now, probe());
  }
}

const TimeSeries& MetricsSampler::series(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("MetricsSampler: no series '" + name + "'");
  }
  return *it->second;
}

std::vector<std::string> MetricsSampler::seriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

}  // namespace composim::telemetry
