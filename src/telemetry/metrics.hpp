// composim: labeled metrics registry (the Prometheus client stand-in).
//
// One MetricsRegistry per experiment holds every instrument the subsystem
// collectors publish: monotone Counters, last-value Gauges and fixed-bucket
// Histograms, each identified by a family name plus a sorted label set —
// exactly the data model a fleet monitoring stack scrapes. The registry is
// the single source the scraper (metrics_pipeline.hpp), the Prometheus
// text exposition and the alert engine all read from, replacing the
// per-bench probe lambdas and the one-off percentile math that used to
// live in dl/inference.cpp.
//
// Everything is simulated-time and allocation-deterministic: families and
// label sets iterate in lexicographic order, so two identical runs (or a
// serial and a parallel replay of the same sweep) export byte-identical
// text.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.hpp"

namespace composim::telemetry {

/// Label set: key/value pairs, canonicalized to ascending key order.
/// Duplicate keys are invalid_argument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Sort-and-check canonical form used as the registry key.
Labels canonicalLabels(Labels labels);

/// Render as {k1="v1",k2="v2"} ("" for an empty set). Values are escaped
/// per the Prometheus exposition rules (backslash, quote, newline).
std::string labelsToString(const Labels& labels);

/// Linear-interpolated order statistic over an ascending-sorted sample
/// vector — the exact computation dl/inference.cpp historically used for
/// its serving percentiles (numpy.percentile 'linear'). p in [0, 100].
double percentile(const std::vector<double>& sorted, double p);

enum class MetricType { Counter, Gauge, Histogram };

const char* toString(MetricType t);

/// Monotone cumulative metric (bytes moved, errors seen, requests served).
class Counter {
 public:
  /// Increase by `delta` >= 0; negative deltas are invalid_argument.
  void add(double delta);
  void inc() { add(1.0); }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous value metric (utilization %, queue depth, link up/down).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket latency/size distribution. Buckets are cumulative
/// upper-bound counts in the Prometheus style (le="bound", with +Inf
/// implicit); the exact observations are also retained so percentile
/// queries reproduce the order-statistic math bit-for-bit instead of the
/// bucket approximation (simulated runs observe thousands of samples, not
/// millions — exactness is worth the vector).
class Histogram {
 public:
  /// `bounds` are ascending upper bucket bounds; the +Inf bucket is
  /// implicit. Empty or non-ascending bounds are invalid_argument.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }
  /// Cumulative count of observations <= bounds()[i] (Prometheus "le").
  std::uint64_t cumulativeCount(std::size_t i) const;

  /// Exact p-th percentile of everything observed (0 when empty).
  double percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (+Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  mutable std::vector<double> samples_;  // sorted lazily on percentile()
  mutable std::size_t sorted_prefix_ = 0;
};

/// The standard serving-latency bucket ladder in milliseconds
/// (1ms .. 10s, roughly log-spaced).
std::vector<double> defaultLatencyBucketsMs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The first call for a family fixes its type (and help
  /// text, if non-empty); re-registering a name as a different type is
  /// invalid_argument. Same (name, labels) always returns the same
  /// instrument.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::vector<double> bounds = defaultLatencyBucketsMs(),
                       const std::string& help = "");

  bool has(const std::string& name) const { return families_.count(name) > 0; }
  /// Type of a family; throws std::out_of_range for unknown names.
  MetricType type(const std::string& name) const;

  /// One labeled instrument of a family.
  struct Instrument {
    Labels labels;
    const Counter* counter = nullptr;      // set when type == Counter
    const Gauge* gauge = nullptr;          // set when type == Gauge
    const Histogram* histogram = nullptr;  // set when type == Histogram
    /// Scalar view: counter/gauge value; histogram mean (sum/count).
    double value() const;
  };

  /// All instruments of `name` in label order (empty for unknown names).
  std::vector<Instrument> instruments(const std::string& name) const;

  /// Family names in lexicographic order.
  std::vector<std::string> familyNames() const;

  /// Prometheus text exposition (# HELP / # TYPE, families and label sets
  /// in sorted order, histograms as _bucket{le=...}/_sum/_count).
  std::string prometheusText() const;

  /// Help text of a family ("" for unknown names).
  std::string help(const std::string& name) const;

  /// Full-registry snapshot for warm-prefix forking: every family's type,
  /// help text and instruments with values copied bit-exactly (histograms
  /// keep their raw observation vectors, so percentile math reproduces).
  /// restoreState() get-or-creates each instrument then copy-assigns it,
  /// which also pre-creates instruments a collector would otherwise
  /// register lazily on its first post-fork scrape.
  struct State {
    struct CounterInst {
      Labels labels;
      Counter value;
    };
    struct GaugeInst {
      Labels labels;
      Gauge value;
    };
    struct HistogramInst {
      Labels labels;
      Histogram value;
    };
    struct FamilyState {
      std::string name;
      MetricType type = MetricType::Counter;
      std::string help;
      std::vector<CounterInst> counters;
      std::vector<GaugeInst> gauges;
      std::vector<HistogramInst> histograms;
    };
    std::vector<FamilyState> families;
  };

  State state() const;
  void restoreState(const State& st);

 private:
  struct Family {
    MetricType type = MetricType::Counter;
    std::string help;
    // Keyed by labelsToString(canonical labels) => deterministic order.
    std::map<std::string, std::pair<Labels, std::unique_ptr<Counter>>> counters;
    std::map<std::string, std::pair<Labels, std::unique_ptr<Gauge>>> gauges;
    std::map<std::string, std::pair<Labels, std::unique_ptr<Histogram>>> histograms;
  };

  Family& family(const std::string& name, MetricType type,
                 const std::string& help);

  std::map<std::string, Family> families_;
};

}  // namespace composim::telemetry
