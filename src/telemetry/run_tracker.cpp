#include "telemetry/run_tracker.hpp"

#include "telemetry/report.hpp"

namespace composim::telemetry {

void TrackedRun::log(const std::string& metric, SimTime t, double value) {
  auto it = series_.find(metric);
  if (it == series_.end()) {
    it = series_.emplace(metric, TimeSeries(metric)).first;
  }
  it->second.push(t, value);
}

const TimeSeries* TrackedRun::series(const std::string& metric) const {
  auto it = series_.find(metric);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> TrackedRun::metrics() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

falcon::Json TrackedRun::manifest() const {
  falcon::Json j = falcon::Json::object();
  j.set("name", name_);
  falcon::Json cfg = falcon::Json::object();
  for (const auto& [k, v] : config_) cfg.set(k, v);
  j.set("config", std::move(cfg));
  falcon::Json sum = falcon::Json::object();
  for (const auto& [k, v] : summary_) sum.set(k, v);
  j.set("summary", std::move(sum));
  falcon::Json metrics = falcon::Json::array();
  for (const auto& m : this->metrics()) metrics.push(m);
  j.set("metrics", std::move(metrics));
  falcon::Json artifacts = falcon::Json::array();
  for (const auto& [file, content] : artifacts_) artifacts.push(file);
  j.set("artifacts", std::move(artifacts));
  return j;
}

TrackedRun& RunTracker::run(const std::string& name) {
  auto it = runs_.find(name);
  if (it == runs_.end()) it = runs_.emplace(name, TrackedRun(name)).first;
  return it->second;
}

const TrackedRun* RunTracker::find(const std::string& name) const {
  auto it = runs_.find(name);
  return it == runs_.end() ? nullptr : &it->second;
}

falcon::Json RunTracker::manifest() const {
  falcon::Json j = falcon::Json::object();
  falcon::Json arr = falcon::Json::array();
  for (const auto& [name, run] : runs_) arr.push(run.manifest());
  j.set("runs", std::move(arr));
  return j;
}

void RunTracker::exportTo(const std::string& dir) const {
  writeFile(dir + "/manifest.json", manifest().dump(2) + "\n");
  for (const auto& [name, run] : runs_) {
    for (const auto& metric : run.metrics()) {
      const TimeSeries* s = run.series(metric);
      writeFile(dir + "/" + name + "_" + metric + ".csv", toCsv({s}));
    }
    for (const auto& [file, content] : run.artifacts()) {
      writeFile(dir + "/" + name + "_" + file, content);
    }
  }
}

}  // namespace composim::telemetry
