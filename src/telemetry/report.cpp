#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace composim::telemetry {

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::addRow: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(width[c] - cells[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(width[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + renderRow(headers_) + sep;
  for (const auto& row : rows_) out += renderRow(row);
  out += sep;
  return out;
}

std::string barChart(const std::vector<std::pair<std::string, double>>& entries,
                     const std::string& unit, int maxWidth) {
  if (entries.empty()) return "(no data)\n";
  std::size_t labelWidth = 0;
  double maxValue = 0.0;
  for (const auto& [label, value] : entries) {
    labelWidth = std::max(labelWidth, label.size());
    maxValue = std::max(maxValue, std::fabs(value));
  }
  if (maxValue <= 0.0) maxValue = 1.0;
  std::string out;
  for (const auto& [label, value] : entries) {
    out += "  " + label;
    out.append(labelWidth - label.size(), ' ');
    out += " |";
    const int bars = static_cast<int>(std::lround(
        std::fabs(value) / maxValue * static_cast<double>(maxWidth)));
    out.append(static_cast<std::size_t>(bars), value < 0.0 ? '<' : '#');
    out += " " + fmt(value) + (unit.empty() ? "" : " " + unit);
    out += '\n';
  }
  return out;
}

std::string stripChart(const TimeSeries& series, int width, int height,
                       double ymin, double ymax) {
  const auto samples = series.resample(static_cast<std::size_t>(width));
  if (samples.empty()) return "(no samples)\n";
  const double span = std::max(1e-9, ymax - ymin);
  std::string out;
  for (int row = height - 1; row >= 0; --row) {
    const double levelLo = ymin + span * row / height;
    char label[16];
    std::snprintf(label, sizeof(label), "%6.1f |", levelLo);
    out += label;
    for (double v : samples) {
      out += (v >= levelLo) ? '#' : ' ';
    }
    out += '\n';
  }
  out += "       +";
  out.append(samples.size(), '-');
  out += "> time\n";
  return out;
}

std::string toCsv(const std::vector<const TimeSeries*>& series) {
  std::string out = "time";
  for (const auto* s : series) out += "," + s->name();
  out += '\n';
  std::size_t rows = 0;
  for (const auto* s : series) rows = std::max(rows, s->size());
  for (std::size_t i = 0; i < rows; ++i) {
    bool haveTime = false;
    std::string line;
    for (const auto* s : series) {
      if (!haveTime && i < s->size()) {
        line = fmt(s->timeAt(i), 6);
        haveTime = true;
      }
    }
    for (const auto* s : series) {
      line += ',';
      if (i < s->size()) line += fmt(s->valueAt(i), 6);
    }
    out += line + '\n';
  }
  return out;
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeFile: cannot open " + path);
  f << content;
  if (!f) throw std::runtime_error("writeFile: write failed for " + path);
}

}  // namespace composim::telemetry
