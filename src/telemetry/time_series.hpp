// composim: sampled metric series.
//
// Equivalent of one wandb system-metric stream: (time, value) points with
// summary statistics. Values are whatever the probe reports (percent,
// bytes, GB/s, ...) — the series does not interpret units.
#pragma once

#include <string>
#include <vector>

#include "sim/units.hpp"

namespace composim::telemetry {

struct SeriesStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void push(SimTime t, double value);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  SimTime timeAt(std::size_t i) const { return times_.at(i); }
  double valueAt(std::size_t i) const { return values_.at(i); }
  const std::vector<SimTime>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  double last() const { return values_.empty() ? 0.0 : values_.back(); }

  SeriesStats stats() const;

  /// Mean over samples with t in [from, to].
  double meanInWindow(SimTime from, SimTime to) const;

  /// Downsample to at most `buckets` points by window-averaging (used for
  /// the ASCII figure renderers).
  std::vector<double> resample(std::size_t buckets) const;

 private:
  std::string name_;
  std::vector<SimTime> times_;
  std::vector<double> values_;
};

}  // namespace composim::telemetry
