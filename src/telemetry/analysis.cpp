#include "telemetry/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace composim::telemetry::analysis {
namespace {

// Timestamps of causally-ordered records are exact doubles (events fire at
// the same Simulator::now()), so containment checks only need a guard
// against accumulated float noise, not a real tolerance.
constexpr double kEps = 1e-12;

double argNum(const ProfileArgs& args, const char* key, double def = 0.0) {
  for (const ProfileArg& a : args) {
    if (!a.is_string && a.key == key) return a.num;
  }
  return def;
}

std::string argStr(const ProfileArgs& args, const char* key,
                   std::string def = {}) {
  for (const ProfileArg& a : args) {
    if (a.is_string && a.key == key) return a.str;
  }
  return def;
}

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// A completed B/E track span, reassembled from the record stream.
struct TrackSpan {
  std::uint32_t tid = 0;
  int depth = 0;  // 1-based nesting depth on its track
  std::string name;
  SimTime start = 0.0;
  SimTime end = 0.0;
  ProfileArgs begin_args;
};

/// A completed b/e async span (fabric flows, prefetch/h2d pipelines).
struct AsyncSpan {
  std::string category;
  std::string name;
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::uint64_t corr = 0;
  std::string src;
  std::string dst;
  double contended_s = 0.0;
  double actual_s = 0.0;  // end - start
};

/// One replayed change of a counter series.
struct CounterPoint {
  SimTime time = 0.0;
  int series = 0;  // 0 = util_pct, 1 = flows
  double value = 0.0;
};

struct Trace {
  std::vector<TrackSpan> spans;                    // in end-record order
  std::vector<AsyncSpan> async_spans;              // in end-record order
  std::map<std::string, std::vector<CounterPoint>> link_points;
  SimTime end_time = 0.0;
};

Trace parseTrace(const Profiler& prof) {
  Trace tr;
  struct OpenSpan {
    std::string name;
    SimTime start = 0.0;
    ProfileArgs args;
  };
  std::map<std::uint32_t, std::vector<OpenSpan>> open;  // per-track stacks
  struct OpenAsync {
    std::string category;
    std::string name;
    SimTime start = 0.0;
    ProfileArgs args;
  };
  std::map<AsyncSpanId, OpenAsync> open_async;
  SimTime last = 0.0;
  for (const Profiler::Record& r : prof.records()) {
    last = std::max(last, r.time);
    switch (r.phase) {
      case 'B':
        open[r.tid].push_back(OpenSpan{r.name, r.time, r.args});
        break;
      case 'E': {
        auto& stack = open[r.tid];
        if (stack.empty()) break;  // unbalanced prefix (forked trace tail)
        OpenSpan& top = stack.back();
        tr.spans.push_back(TrackSpan{r.tid, static_cast<int>(stack.size()),
                                     top.name, top.start, r.time,
                                     std::move(top.args)});
        stack.pop_back();
        break;
      }
      case 'b':
        open_async.emplace(r.id, OpenAsync{r.category, r.name, r.time, r.args});
        break;
      case 'e': {
        auto it = open_async.find(r.id);
        if (it == open_async.end()) break;
        const OpenAsync& b = it->second;
        AsyncSpan s;
        s.category = b.category;
        s.name = b.name;
        s.start = b.start;
        s.end = r.time;
        s.actual_s = std::max(0.0, r.time - b.start);
        s.corr = static_cast<std::uint64_t>(argNum(b.args, "corr", 0.0));
        s.src = argStr(b.args, "src");
        s.dst = argStr(b.args, "dst");
        s.contended_s = argNum(r.args, "contended_s", 0.0);
        tr.async_spans.push_back(std::move(s));
        open_async.erase(it);
        break;
      }
      case 'C':
        if (startsWith(r.name, "link:") && !r.args.empty()) {
          const ProfileArg& a = r.args.front();
          const int series = a.key == "util_pct" ? 0 : a.key == "flows" ? 1 : -1;
          if (series >= 0) {
            tr.link_points[r.name].push_back(CounterPoint{r.time, series, a.num});
          }
        }
        break;
      default:
        break;  // instants carry no duration
    }
  }
  tr.end_time = prof.endTime() > 0.0 ? prof.endTime() : last;
  return tr;
}

/// Closed intervals that are "active" for one side of the bucket sweep.
struct IntervalSet {
  std::vector<std::pair<SimTime, SimTime>> spans;
};

/// Sweep [t0, t1] against the compute/comm interval sets and fill the
/// partition buckets. comm-only time lands in `comm_only` for the caller
/// to split into exposed vs contention.
void sweepBuckets(SimTime t0, SimTime t1, const IntervalSet& compute,
                  const IntervalSet& comm, Buckets& out, double& comm_only) {
  struct Event {
    SimTime time;
    int d_compute;
    int d_comm;
  };
  std::vector<Event> events;
  auto add = [&](const IntervalSet& set, bool is_compute) {
    for (const auto& [a, b] : set.spans) {
      const SimTime lo = std::max(a, t0);
      const SimTime hi = std::min(b, t1);
      if (hi <= lo) continue;
      events.push_back(Event{lo, is_compute ? 1 : 0, is_compute ? 0 : 1});
      events.push_back(Event{hi, is_compute ? -1 : 0, is_compute ? 0 : -1});
    }
  };
  add(compute, true);
  add(comm, false);
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  int c_compute = 0;
  int c_comm = 0;
  SimTime t = t0;
  std::size_t i = 0;
  auto classify = [&](SimTime dt) {
    if (dt <= 0.0) return;
    if (c_compute > 0) {
      out.compute += dt;
      if (c_comm > 0) out.overlapped_comm += dt;
    } else if (c_comm > 0) {
      comm_only += dt;
    } else {
      out.stall += dt;
    }
  };
  while (i < events.size()) {
    const SimTime at = events[i].time;
    classify(at - t);
    t = at;
    for (; i < events.size() && events[i].time == at; ++i) {
      c_compute += events[i].d_compute;
      c_comm += events[i].d_comm;
    }
  }
  classify(t1 - t);
}

std::string fmtSecs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string fmtPct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.1f", v);
  return buf;
}

falcon::Json bucketsJson(const Buckets& b) {
  falcon::Json j = falcon::Json::object();
  j.set("wall_s", b.wall);
  j.set("compute_s", b.compute);
  j.set("overlapped_comm_s", b.overlapped_comm);
  j.set("exposed_comm_s", b.exposed_comm);
  j.set("fabric_contention_s", b.fabric_contention);
  j.set("stall_s", b.stall);
  return j;
}

const std::vector<std::pair<const char*, double Buckets::*>>& bucketFields() {
  static const std::vector<std::pair<const char*, double Buckets::*>> kFields =
      {{"compute", &Buckets::compute},
       {"exposed_comm", &Buckets::exposed_comm},
       {"fabric_contention", &Buckets::fabric_contention},
       {"stall", &Buckets::stall},
       {"overlapped_comm", &Buckets::overlapped_comm}};
  return kFields;
}

}  // namespace

RunAnalysis analyzeProfile(const Profiler& prof, std::string name) {
  RunAnalysis out;
  out.name = std::move(name);
  const Trace tr = parseTrace(prof);
  const std::vector<std::string>& tracks = prof.trackNames();
  auto trackName = [&](std::uint32_t tid) -> const std::string& {
    static const std::string kEmpty;
    return tid < tracks.size() ? tracks[tid] : kEmpty;
  };

  // Pick the trainer track with the most iteration spans (tie: lowest
  // tid) — experiments drive one trainer, but be deterministic if a
  // custom harness runs several.
  std::map<std::uint32_t, std::size_t> iter_count;
  for (const TrackSpan& s : tr.spans) {
    if (s.name == "iteration" && startsWith(trackName(s.tid), "trainer/")) {
      ++iter_count[s.tid];
    }
  }
  std::uint32_t iter_tid = 0;
  std::size_t best = 0;
  for (const auto& [tid, n] : iter_count) {
    if (n > best) {
      best = n;
      iter_tid = tid;
    }
  }
  if (best == 0) return out;

  std::vector<const TrackSpan*> iterations;
  for (const TrackSpan& s : tr.spans) {
    if (s.tid == iter_tid && s.name == "iteration") iterations.push_back(&s);
  }
  std::sort(iterations.begin(), iterations.end(),
            [](const TrackSpan* a, const TrackSpan* b) {
              return a->start < b->start;
            });

  // Activity sets for the bucket sweep: compute = compute-tagged trainer
  // phases (any trainer track); comm = top-level collective op spans plus
  // every fabric flow (the op span also covers per-step software
  // overheads between flow waves, so those bill as comm, not stall).
  IntervalSet compute_set;
  IntervalSet comm_set;
  std::vector<const TrackSpan*> op_spans;
  for (const TrackSpan& s : tr.spans) {
    const std::string& track = trackName(s.tid);
    if (startsWith(track, "trainer/") &&
        argStr(s.begin_args, "bucket") == "compute") {
      compute_set.spans.emplace_back(s.start, s.end);
    } else if (startsWith(track, "collectives/") && s.depth == 1) {
      comm_set.spans.emplace_back(s.start, s.end);
      op_spans.push_back(&s);
    }
  }
  for (const AsyncSpan& s : tr.async_spans) {
    if (s.category == "fabric") comm_set.spans.emplace_back(s.start, s.end);
  }

  std::map<std::string, double> span_total_s;
  const SimTime window_start = iterations.front()->start;
  const SimTime window_end = iterations.back()->end;

  for (const TrackSpan* it : iterations) {
    IterationAnalysis ia;
    ia.iter = static_cast<std::int64_t>(argNum(it->begin_args, "iter", 0.0));
    ia.start = it->start;
    ia.end = it->end;
    ia.buckets.wall = std::max(0.0, it->end - it->start);

    double comm_only = 0.0;
    sweepBuckets(it->start, it->end, compute_set, comm_set, ia.buckets,
                 comm_only);
    // Split comm-only time by the contended fraction of the fabric flows
    // that finished inside this iteration: contended_s / actual_s summed
    // over those flows, clamped to [0, 1].
    double contended = 0.0;
    double actual = 0.0;
    for (const AsyncSpan& s : tr.async_spans) {
      if (s.category != "fabric") continue;
      if (s.end <= it->start + kEps || s.end > it->end + kEps) continue;
      contended += s.contended_s;
      actual += s.actual_s;
    }
    const double frac =
        actual > 0.0 ? std::min(1.0, std::max(0.0, contended / actual)) : 0.0;
    ia.buckets.fabric_contention = comm_only * frac;
    ia.buckets.exposed_comm = comm_only - ia.buckets.fabric_contention;
    ia.attribution_error_pct =
        ia.buckets.wall > 0.0
            ? 100.0 * std::abs(ia.buckets.partitionSum() - ia.buckets.wall) /
                  ia.buckets.wall
            : 0.0;

    // Critical path: the direct children of the iteration span tile it.
    double covered = 0.0;
    for (const TrackSpan& s : tr.spans) {
      if (s.tid != iter_tid || s.depth != it->depth + 1) continue;
      if (s.start < it->start - kEps || s.end > it->end + kEps) continue;
      PathItem item;
      item.name = s.name;
      item.bucket = argStr(s.begin_args, "bucket", "other");
      item.start = s.start;
      item.end = s.end;
      if (item.bucket == "sync") {
        // Join to the last collective op finishing under this phase, then
        // through its correlation id to the flow that bounded it.
        const TrackSpan* op = nullptr;
        for (const TrackSpan* o : op_spans) {
          if (o->end <= s.start + kEps || o->end > s.end + kEps) continue;
          if (op == nullptr || o->end > op->end) op = o;
        }
        if (op != nullptr) {
          std::string algo = argStr(op->begin_args, "algorithm");
          item.detail = op->name + (algo.empty() ? "" : "[" + algo + "]");
          const auto corr =
              static_cast<std::uint64_t>(argNum(op->begin_args, "corr", 0.0));
          if (corr != 0) {
            const AsyncSpan* lastFlow = nullptr;
            for (const AsyncSpan& f : tr.async_spans) {
              if (f.corr != corr) continue;
              if (lastFlow == nullptr || f.end > lastFlow->end) lastFlow = &f;
            }
            if (lastFlow != nullptr) {
              item.detail +=
                  " -> last flow " + lastFlow->src + "->" + lastFlow->dst;
            }
          }
        }
      } else if (item.bucket == "stall") {
        // Name what the stall was waiting on: the last async span (h2d
        // flow, prefetch) resolving inside the phase.
        const AsyncSpan* lastAsync = nullptr;
        for (const AsyncSpan& f : tr.async_spans) {
          if (f.end <= s.start + kEps || f.end > s.end + kEps) continue;
          if (lastAsync == nullptr || f.end > lastAsync->end) lastAsync = &f;
        }
        if (lastAsync != nullptr) {
          item.detail = "waiting on " + lastAsync->name;
          if (!lastAsync->src.empty()) {
            item.detail += " " + lastAsync->src + "->" + lastAsync->dst;
          }
        }
      }
      covered += item.duration();
      span_total_s[item.name] += item.duration();
      ia.critical_path.push_back(std::move(item));
    }
    std::sort(ia.critical_path.begin(), ia.critical_path.end(),
              [](const PathItem& a, const PathItem& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });
    ia.coverage_pct =
        ia.buckets.wall > 0.0 ? 100.0 * covered / ia.buckets.wall : 100.0;

    out.total.wall += ia.buckets.wall;
    out.total.compute += ia.buckets.compute;
    out.total.overlapped_comm += ia.buckets.overlapped_comm;
    out.total.exposed_comm += ia.buckets.exposed_comm;
    out.total.fabric_contention += ia.buckets.fabric_contention;
    out.total.stall += ia.buckets.stall;
    out.coverage_pct += ia.coverage_pct;
    out.max_attribution_error_pct =
        std::max(out.max_attribution_error_pct, ia.attribution_error_pct);
    out.per_iteration.push_back(std::move(ia));
  }
  out.iterations = out.per_iteration.size();
  const auto n = static_cast<double>(out.iterations);
  out.coverage_pct /= n;
  out.mean.wall = out.total.wall / n;
  out.mean.compute = out.total.compute / n;
  out.mean.overlapped_comm = out.total.overlapped_comm / n;
  out.mean.exposed_comm = out.total.exposed_comm / n;
  out.mean.fabric_contention = out.total.fabric_contention / n;
  out.mean.stall = out.total.stall / n;

  // Span-level means also cover the collective ops and fabric flows that
  // ran during the analyzed window, so run-diff can localize a regression
  // below the trainer-phase level.
  for (const TrackSpan* o : op_spans) {
    if (o->end > window_start + kEps && o->end <= window_end + kEps) {
      span_total_s[o->name] += std::max(0.0, o->end - o->start);
    }
  }
  for (const AsyncSpan& s : tr.async_spans) {
    if (s.category == "fabric" && s.end > window_start + kEps &&
        s.end <= window_end + kEps) {
      span_total_s["flow:" + s.name] += s.actual_s;
    }
  }
  for (const auto& [span, total] : span_total_s) {
    out.span_mean_s[span] = total / n;
  }

  // Per-link contention: replay each link's util_pct/flows step series
  // and integrate utilization while >= 2 flows shared the link.
  for (const auto& [link, points] : tr.link_points) {
    LinkContention lc;
    lc.link = link;
    double util = 0.0;
    double flows = 0.0;
    SimTime t = points.empty() ? tr.end_time : points.front().time;
    auto integrate = [&](SimTime until) {
      const SimTime dt = until - t;
      if (dt <= 0.0) return;
      lc.busy_s += util / 100.0 * dt;
      if (flows >= 2.0) lc.contention_s += util / 100.0 * dt;
      t = until;
    };
    for (const CounterPoint& p : points) {
      integrate(p.time);
      (p.series == 0 ? util : flows) = p.value;
    }
    integrate(tr.end_time);
    lc.util_mean_pct = prof.counterMean(link, "util_pct");
    if (lc.busy_s > 0.0) out.links.push_back(std::move(lc));
  }
  std::sort(out.links.begin(), out.links.end(),
            [](const LinkContention& a, const LinkContention& b) {
              if (a.contention_s != b.contention_s) {
                return a.contention_s > b.contention_s;
              }
              if (a.busy_s != b.busy_s) return a.busy_s > b.busy_s;
              return a.link < b.link;
            });
  return out;
}

falcon::Json toJson(const RunAnalysis& a) {
  falcon::Json doc = falcon::Json::object();
  doc.set("schema", "composim.analysis/1");
  doc.set("name", a.name);
  doc.set("iterations", static_cast<std::int64_t>(a.iterations));
  doc.set("mean", bucketsJson(a.mean));
  doc.set("total", bucketsJson(a.total));
  doc.set("coverage_pct", a.coverage_pct);
  doc.set("max_attribution_error_pct", a.max_attribution_error_pct);
  falcon::Json links = falcon::Json::array();
  for (const LinkContention& lc : a.links) {
    falcon::Json j = falcon::Json::object();
    j.set("link", lc.link);
    j.set("contention_s", lc.contention_s);
    j.set("busy_s", lc.busy_s);
    j.set("util_mean_pct", lc.util_mean_pct);
    links.push(std::move(j));
  }
  doc.set("links", std::move(links));
  falcon::Json spans = falcon::Json::object();
  for (const auto& [span, mean] : a.span_mean_s) spans.set(span, mean);
  doc.set("span_mean_s", std::move(spans));
  falcon::Json iters = falcon::Json::array();
  for (const IterationAnalysis& ia : a.per_iteration) {
    falcon::Json j = falcon::Json::object();
    j.set("iter", ia.iter);
    j.set("start_s", ia.start);
    j.set("buckets", bucketsJson(ia.buckets));
    j.set("coverage_pct", ia.coverage_pct);
    j.set("attribution_error_pct", ia.attribution_error_pct);
    falcon::Json path = falcon::Json::array();
    for (const PathItem& p : ia.critical_path) {
      falcon::Json pj = falcon::Json::object();
      pj.set("name", p.name);
      pj.set("bucket", p.bucket);
      pj.set("start_s", p.start);
      pj.set("end_s", p.end);
      if (!p.detail.empty()) pj.set("detail", p.detail);
      path.push(std::move(pj));
    }
    j.set("critical_path", std::move(path));
    iters.push(std::move(j));
  }
  doc.set("per_iteration", std::move(iters));
  return doc;
}

std::string report(const RunAnalysis& a) {
  std::ostringstream os;
  os << "bottleneck analysis: " << (a.name.empty() ? "(unnamed)" : a.name)
     << "\n";
  if (a.iterations == 0) {
    os << "  no iteration spans in trace (was the run traced?)\n";
    return os.str();
  }
  os << "  iterations analyzed : " << a.iterations << "\n";
  os << "  mean iteration wall : " << fmtSecs(a.mean.wall) << " s\n";
  os << "  attribution (mean s/iter, % of wall):\n";
  auto row = [&](const char* label, double v, bool partition) {
    const double pct = a.mean.wall > 0.0 ? 100.0 * v / a.mean.wall : 0.0;
    os << "    " << label << ": " << fmtSecs(v) << "  (" << fmtPct(pct)
       << "%" << (partition ? "" : ", hidden under compute") << ")\n";
  };
  row("compute           ", a.mean.compute, true);
  row("exposed comm      ", a.mean.exposed_comm, true);
  row("fabric contention ", a.mean.fabric_contention, true);
  row("stall             ", a.mean.stall, true);
  row("overlapped comm   ", a.mean.overlapped_comm, false);
  os << "  attribution residual: max " << fmtSecs(a.max_attribution_error_pct)
     << "% of wall (tolerance " << kAttributionTolerancePct << "%)\n";
  os << "  critical-path coverage: " << fmtPct(a.coverage_pct) << "%\n";
  const IterationAnalysis& last = a.per_iteration.back();
  os << "  critical path (iteration " << last.iter << "):\n";
  for (const PathItem& p : last.critical_path) {
    os << "    " << p.name << "  " << fmtSecs(p.duration()) << " s  ["
       << p.bucket << "]";
    if (!p.detail.empty()) os << "  " << p.detail;
    os << "\n";
  }
  if (!a.links.empty()) {
    os << "  top contended links:\n";
    const std::size_t n = std::min<std::size_t>(5, a.links.size());
    for (std::size_t i = 0; i < n; ++i) {
      const LinkContention& lc = a.links[i];
      os << "    " << lc.link << "  contention " << fmtSecs(lc.contention_s)
         << " s  busy " << fmtSecs(lc.busy_s) << " s  util "
         << fmtPct(lc.util_mean_pct) << "%\n";
    }
  }
  return os.str();
}

RunDiff diffRuns(const RunAnalysis& base, const RunAnalysis& other) {
  RunDiff d;
  d.base = base.name;
  d.other = other.name;
  d.base_wall_s = base.mean.wall;
  d.other_wall_s = other.mean.wall;
  d.wall_delta_s = other.mean.wall - base.mean.wall;
  for (const auto& [label, field] : bucketFields()) {
    d.bucket_deltas.emplace_back(label, other.mean.*field - base.mean.*field);
  }
  std::stable_sort(d.bucket_deltas.begin(), d.bucket_deltas.end(),
                   [](const auto& a, const auto& b) {
                     return std::abs(a.second) > std::abs(b.second);
                   });
  d.dominant_bucket = "none";
  for (const auto& [bucket, delta] : d.bucket_deltas) {
    // overlapped_comm is informational (not part of the wall partition).
    if (bucket == std::string("overlapped_comm")) continue;
    if (std::abs(delta) > 1e-12) d.dominant_bucket = bucket;
    break;
  }
  std::map<std::string, double> deltas;
  for (const auto& [span, mean] : base.span_mean_s) deltas[span] -= mean;
  for (const auto& [span, mean] : other.span_mean_s) deltas[span] += mean;
  for (const auto& [span, delta] : deltas) {
    if (std::abs(delta) > 1e-15) d.span_deltas.emplace_back(span, delta);
  }
  std::stable_sort(d.span_deltas.begin(), d.span_deltas.end(),
                   [](const auto& a, const auto& b) {
                     if (std::abs(a.second) != std::abs(b.second)) {
                       return std::abs(a.second) > std::abs(b.second);
                     }
                     return a.first < b.first;
                   });
  return d;
}

falcon::Json toJson(const RunDiff& d) {
  falcon::Json doc = falcon::Json::object();
  doc.set("schema", "composim.analysis.diff/1");
  doc.set("base", d.base);
  doc.set("other", d.other);
  doc.set("base_wall_s", d.base_wall_s);
  doc.set("other_wall_s", d.other_wall_s);
  doc.set("wall_delta_s", d.wall_delta_s);
  doc.set("dominant_bucket", d.dominant_bucket);
  falcon::Json buckets = falcon::Json::array();
  for (const auto& [bucket, delta] : d.bucket_deltas) {
    falcon::Json j = falcon::Json::object();
    j.set("bucket", bucket);
    j.set("delta_s", delta);
    buckets.push(std::move(j));
  }
  doc.set("bucket_deltas", std::move(buckets));
  falcon::Json spans = falcon::Json::array();
  for (const auto& [span, delta] : d.span_deltas) {
    falcon::Json j = falcon::Json::object();
    j.set("span", span);
    j.set("delta_s", delta);
    spans.push(std::move(j));
  }
  doc.set("span_deltas", std::move(spans));
  return doc;
}

std::string report(const RunDiff& d) {
  std::ostringstream os;
  os << "run diff: " << d.other << " vs " << d.base << "\n";
  os << "  mean iteration wall: " << fmtSecs(d.base_wall_s) << " s -> "
     << fmtSecs(d.other_wall_s) << " s (delta "
     << (d.wall_delta_s >= 0 ? "+" : "") << fmtSecs(d.wall_delta_s) << " s";
  if (d.base_wall_s > 0.0) {
    os << ", " << fmtPct(100.0 * d.wall_delta_s / d.base_wall_s) << "%";
  }
  os << ")\n";
  os << "  dominant bucket: " << d.dominant_bucket << "\n";
  os << "  delta by bucket (mean s/iter):\n";
  for (const auto& [bucket, delta] : d.bucket_deltas) {
    os << "    " << bucket << ": " << (delta >= 0 ? "+" : "")
       << fmtSecs(delta) << "\n";
  }
  if (!d.span_deltas.empty()) {
    os << "  largest span-level changes:\n";
    const std::size_t n = std::min<std::size_t>(8, d.span_deltas.size());
    for (std::size_t i = 0; i < n; ++i) {
      os << "    " << d.span_deltas[i].first << ": "
         << (d.span_deltas[i].second >= 0 ? "+" : "")
         << fmtSecs(d.span_deltas[i].second) << "\n";
    }
  }
  return os.str();
}

}  // namespace composim::telemetry::analysis
