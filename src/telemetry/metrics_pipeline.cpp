#include "telemetry/metrics_pipeline.hpp"

#include <fstream>
#include <stdexcept>

#include "falcon/json.hpp"

namespace composim::telemetry {

MetricsScraper::MetricsScraper(Simulator& sim, MetricsRegistry& registry,
                               SimTime interval)
    : sim_(&sim), registry_(registry), interval_(interval) {
  if (interval_ <= 0.0) {
    throw std::invalid_argument("MetricsScraper: interval must be positive");
  }
}

void MetricsScraper::addCollector(std::function<void()> update) {
  collectors_.push_back(Collector{std::move(update), nullptr, nullptr});
}

void MetricsScraper::addCollector(std::function<void()> update,
                                  std::function<CollectorState()> save,
                                  std::function<void(const CollectorState&)> load) {
  collectors_.push_back(
      Collector{std::move(update), std::move(save), std::move(load)});
}

std::vector<MetricsScraper::CollectorState> MetricsScraper::collectorStates()
    const {
  std::vector<CollectorState> out;
  out.reserve(collectors_.size());
  for (const Collector& c : collectors_) {
    out.push_back(c.save ? c.save() : CollectorState{});
  }
  return out;
}

void MetricsScraper::restoreCollectorStates(
    const std::vector<CollectorState>& states) {
  if (states.size() != collectors_.size()) {
    throw std::logic_error(
        "MetricsScraper::restoreCollectorStates: collector count mismatch");
  }
  for (std::size_t i = 0; i < collectors_.size(); ++i) {
    if (collectors_[i].load) collectors_[i].load(states[i]);
  }
}

MetricsScraper::State MetricsScraper::state() const {
  if (running_) {
    throw std::logic_error("MetricsScraper::state: stop scraping first");
  }
  return State{series_, scrapes_};
}

void MetricsScraper::setState(const State& st) {
  if (running_) {
    throw std::logic_error("MetricsScraper::setState: stop scraping first");
  }
  series_ = st.series;
  scrapes_ = st.scrapes;
}

void MetricsScraper::start() {
  if (running_ || sim_ == nullptr) return;
  running_ = true;
  scrapeOnce();  // t0 snapshot primes alert-rate baselines
  tick();
}

void MetricsScraper::tick() {
  pending_tick_ = sim_->schedule(interval_, [this] {
    pending_tick_ = kInvalidEvent;
    if (!running_ || sim_ == nullptr) return;
    scrapeOnce();
    tick();
  });
}

void MetricsScraper::stopAndCancelTick() {
  running_ = false;
  if (sim_ != nullptr && pending_tick_ != kInvalidEvent) {
    sim_->cancel(pending_tick_);
  }
  pending_tick_ = kInvalidEvent;
}

void MetricsScraper::scrapeOnce() {
  if (sim_ == nullptr) return;
  const SimTime now = sim_->now();
  for (const auto& c : collectors_) c.update();
  for (const std::string& name : registry_.familyNames()) {
    const bool histo = registry_.type(name) == MetricType::Histogram;
    for (const auto& inst : registry_.instruments(name)) {
      const std::string key = labelsToString(inst.labels);
      if (!histo) {
        seriesFor(name + key).push(now, inst.value());
        continue;
      }
      const Histogram& h = *inst.histogram;
      seriesFor(name + "_count" + key)
          .push(now, static_cast<double>(h.count()));
      seriesFor(name + "_sum" + key).push(now, h.sum());
      seriesFor(name + "_p50" + key).push(now, h.percentile(50.0));
      seriesFor(name + "_p95" + key).push(now, h.percentile(95.0));
      seriesFor(name + "_p99" + key).push(now, h.percentile(99.0));
    }
  }
  ++scrapes_;
  if (alerts_ != nullptr) alerts_->evaluate(now);
}

const TimeSeries& MetricsScraper::series(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("MetricsScraper: no series '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> MetricsScraper::seriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

TimeSeries& MetricsScraper::seriesFor(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(name)).first;
  }
  return it->second;
}

std::string MetricsScraper::jsonlDump() const {
  std::string out;
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      falcon::Json line = falcon::Json::object();
      line.set("metric", name);
      line.set("t", s.timeAt(i));
      line.set("value", s.valueAt(i));
      out += line.dump(-1);
      out.push_back('\n');
    }
  }
  return out;
}

Status MetricsScraper::writeJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open '" + path + "' for writing");
  out << jsonlDump();
  if (!out) return Status::internal("short write to '" + path + "'");
  return Status::success();
}

void MetricsScraper::finalize() {
  running_ = false;
  sim_ = nullptr;
  collectors_.clear();  // collectors capture subsystem refs; drop them too
}

Status MetricsPipeline::writePrometheus(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open '" + path + "' for writing");
  out << registry_.prometheusText();
  if (!out) return Status::internal("short write to '" + path + "'");
  return Status::success();
}

}  // namespace composim::telemetry
