#include "telemetry/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace composim::telemetry {

void TimeSeries::push(SimTime t, double value) {
  if (!times_.empty() && t < times_.back()) {
    throw std::invalid_argument("TimeSeries: non-monotonic sample time");
  }
  times_.push_back(t);
  values_.push_back(value);
}

SeriesStats TimeSeries::stats() const {
  SeriesStats s;
  s.count = values_.size();
  if (values_.empty()) return s;
  s.min = *std::min_element(values_.begin(), values_.end());
  s.max = *std::max_element(values_.begin(), values_.end());
  double sum = 0.0;
  for (double v : values_) sum += v;
  s.mean = sum / static_cast<double>(values_.size());
  double var = 0.0;
  for (double v : values_) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values_.size()));
  return s;
}

double TimeSeries::meanInWindow(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= from && times_[i] <= to) {
      sum += values_[i];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<double> TimeSeries::resample(std::size_t buckets) const {
  std::vector<double> out;
  if (values_.empty() || buckets == 0) return out;
  if (values_.size() <= buckets) return values_;
  out.reserve(buckets);
  const double stride = static_cast<double>(values_.size()) / static_cast<double>(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b * stride);
    std::size_t hi = static_cast<std::size_t>((b + 1) * stride);
    hi = std::min(std::max(hi, lo + 1), values_.size());
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values_[i];
    out.push_back(sum / static_cast<double>(hi - lo));
  }
  return out;
}

}  // namespace composim::telemetry
