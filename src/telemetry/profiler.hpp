// composim: span/counter profiler with Chrome trace_event export.
//
// The concrete ProfileSink (sim/profile.hpp): records spans, async spans,
// instants and time-weighted counters against Simulator::now(), and dumps
// the standard Chrome trace_event JSON that chrome://tracing and Perfetto
// load directly. Tracks map to trace "threads" (one row each, named via
// thread_name metadata); async spans use the 'b'/'e' phases keyed by
// correlation id so overlapping fabric flows render as interval tracks;
// counters use the 'C' phase and also keep a time-weighted integral so
// tests and reports can ask for a mean utilization without replaying the
// trace.
//
// Everything is a no-op while disabled, and components only reach the
// profiler through Simulator::profiler() (nullptr when absent), so an
// untraced run pays one branch per potential record.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "falcon/json.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"

namespace composim::telemetry {

class Profiler final : public ProfileSink {
 public:
  /// Construction does NOT install the profiler; call
  /// sim.setProfiler(&profiler) to start receiving component spans.
  explicit Profiler(Simulator& sim) : sim_(&sim) {}

  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// RAII complete-span handle for synchronous scopes that drive the
  /// simulator (an experiment run, a measurement window). Records a span
  /// from construction to end()/destruction on `track`.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }
    /// Close early; extra args are merged into the closing record.
    void end(ProfileArgs args = {});

   private:
    friend class Profiler;
    Span(Profiler* prof, std::string track) : prof_(prof), track_(std::move(track)) {}
    Profiler* prof_ = nullptr;
    std::string track_;
  };

  /// Open a RAII span on `track` (defaults to the category name).
  Span span(const char* category, std::string name, ProfileArgs args = {},
            std::string track = {});

  // --- ProfileSink ---
  void beginSpan(const std::string& track, const char* category,
                 std::string name, ProfileArgs args = {}) override;
  void endSpan(const std::string& track, ProfileArgs args = {}) override;
  AsyncSpanId beginAsyncSpan(const char* category, std::string name,
                             ProfileArgs args = {}) override;
  void endAsyncSpan(AsyncSpanId id, ProfileArgs args = {}) override;
  void setCounter(const std::string& counter, const std::string& series,
                  double value) override;
  void instant(const char* category, std::string name,
               ProfileArgs args = {}) override;

  std::uint64_t newCorrelation() override {
    return recording() ? next_corr_++ : 0;
  }

  /// Number of records captured so far (spans count begin+end separately).
  std::size_t recordCount() const { return records_.size(); }

  /// Cap the record vector at `cap` entries (0 = unbounded, the default).
  /// Once the cap is reached, NEW spans/counters/instants are dropped
  /// whole — a begin that would exceed the cap is suppressed together
  /// with its matching end, so the recorded stream stays balanced — while
  /// ends of spans that were recorded before the cap still append (a
  /// bounded overshoot of at most the open-span depth). Counter integrals
  /// keep updating so counterMean() stays exact even when the 'C' records
  /// are dropped. Long serving-style runs use this to bound span memory.
  void setMaxRecords(std::size_t cap) { max_records_ = cap; }
  std::size_t maxRecords() const { return max_records_; }
  /// Records suppressed by the max-record policy so far.
  std::uint64_t droppedRecords() const { return dropped_records_; }

  /// Whether the counter series was ever set. counterValue/counterMean
  /// return 0.0 both for "never updated" and for a genuine 0.0; callers
  /// that need to tell the two apart check this first.
  bool hasCounter(const std::string& counter, const std::string& series) const;
  /// Latest value of a counter series (0 if never set).
  double counterValue(const std::string& counter,
                      const std::string& series) const;
  /// Time-weighted mean of a counter series from its first update to
  /// now() (or to the finalize() time once finalized). 0 if never set.
  double counterMean(const std::string& counter,
                     const std::string& series) const;

  /// Freeze the trace: closes the counter integrals at the current time
  /// and detaches from the Simulator, so the Profiler may safely outlive
  /// the system that produced the trace (Experiment hands it back to the
  /// caller this way). Recording stops.
  void finalize();

  /// The trace as a Chrome trace_event JSON document. Events are emitted
  /// in the documented deterministic export order (see exportOrder()), so
  /// identical runs produce byte-identical traces even when many tracks
  /// record at the same simulated timestamp.
  falcon::Json chromeTrace() const;
  /// Write chromeTrace() to `path`; Internal status on I/O failure.
  Status writeChromeTrace(const std::string& path, int indent = -1) const;

  /// Deterministic export order over the records, the tie-break contract
  /// for colliding timestamps: records sort by (start time, track id,
  /// record sequence). Within one track the recording sequence is already
  /// depth-correct (an end that shares its timestamp with a sibling begin
  /// was recorded first, inner spans close before outer ones), so
  /// preserving per-track sequence keeps every B/E and b/e pairing valid;
  /// ordering same-timestamp records of *different* tracks by track id
  /// removes the cross-track interleaving that used to depend on event
  /// execution order. Track ids are assigned in first-use order and names
  /// are fixed per track, so the full key is equivalent to the documented
  /// (start, depth, name, seq) ordering restricted to valid traces.
  std::vector<std::size_t> exportOrder() const;

  /// Opaque full-trace snapshot (records, track table, open async spans,
  /// counter integrals). A fork restores it into a fresh Profiler so the
  /// tail appends to the warmed prefix's trace exactly as a cold run
  /// would; open B records and async begins carry over and are closed by
  /// the tail. Copy-on-fork rather than serialize: the record vector is
  /// value-type all the way down and the tail mutates it in place.
  struct State;
  State state() const;
  void setState(const State& st);

  /// One captured event, exposed read-only so telemetry::analysis can
  /// replay the trace (span trees, causal joins, bucket sweeps) without a
  /// JSON round-trip. Records are stored in recording order; use
  /// exportOrder() for the canonical cross-track presentation order.
  struct Record {
    char phase = 'B';  // B/E nested, b/e async, C counter, i instant
    SimTime time = 0.0;
    std::uint32_t tid = 0;
    AsyncSpanId id = kInvalidAsyncSpan;
    std::string category;
    std::string name;
    ProfileArgs args;
  };
  const std::vector<Record>& records() const { return records_; }
  /// Track names indexed by Record::tid.
  const std::vector<std::string>& trackNames() const { return track_names_; }
  /// The trace's end time once finalized (== the Simulator clock at
  /// finalize()); 0 before that.
  SimTime endTime() const { return end_time_; }

 private:
  struct CounterState {
    double value = 0.0;
    SimTime since = 0.0;
    SimTime first = 0.0;
    double weighted_sum = 0.0;  // integral of value dt up to `since`
  };

  bool recording() const { return enabled_ && sim_ != nullptr; }
  bool atCapacity() const {
    return max_records_ > 0 && records_.size() >= max_records_;
  }
  SimTime now() const { return sim_ != nullptr ? sim_->now() : end_time_; }
  std::uint32_t trackId(const std::string& track);

  Simulator* sim_;  // null after finalize()
  bool enabled_ = true;
  SimTime end_time_ = 0.0;
  std::vector<Record> records_;
  std::vector<std::string> track_names_;  // index = tid
  std::unordered_map<std::string, std::uint32_t> track_ids_;
  std::unordered_map<AsyncSpanId, std::size_t> open_async_;  // id -> begin idx
  // Ordered so export and mean queries iterate deterministically.
  std::map<std::string, std::map<std::string, CounterState>> counters_;
  AsyncSpanId next_async_ = 1;
  std::uint64_t next_corr_ = 1;
  // Max-record drop policy (0 = unbounded). drop_depth_[tid] counts open
  // track spans whose begin was suppressed, so the matching ends are
  // suppressed too and the recorded stream stays balanced.
  std::size_t max_records_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> drop_depth_;
};

struct Profiler::State {
  bool enabled = true;
  std::vector<Record> records;
  std::vector<std::string> track_names;
  std::unordered_map<std::string, std::uint32_t> track_ids;
  std::unordered_map<AsyncSpanId, std::size_t> open_async;
  std::map<std::string, std::map<std::string, CounterState>> counters;
  AsyncSpanId next_async = 1;
  std::uint64_t next_corr = 1;
  std::size_t max_records = 0;
  std::uint64_t dropped_records = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> drop_depth;
};

}  // namespace composim::telemetry
