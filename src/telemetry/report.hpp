// composim: human-readable reporting helpers.
//
// The bench binaries print paper-style tables and ASCII figure panels
// (bar charts for the per-benchmark comparisons, strip charts for the
// utilization-over-time figures) plus CSV export for plotting elsewhere.
#pragma once

#include <string>
#include <vector>

#include "telemetry/time_series.hpp"

namespace composim::telemetry {

/// Fixed-column ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells);
  /// Render with column widths fitted to content.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar chart: one labelled bar per entry, scaled to maxWidth.
std::string barChart(const std::vector<std::pair<std::string, double>>& entries,
                     const std::string& unit, int maxWidth = 50);

/// Strip chart of a series resampled to `width` columns with `height` rows
/// (the Fig 9 GPU-utilization-pattern renderer).
std::string stripChart(const TimeSeries& series, int width = 78, int height = 8,
                       double ymin = 0.0, double ymax = 100.0);

/// CSV with a time column plus one column per series (outer-joined on the
/// sample index; series are expected to share sampling instants).
std::string toCsv(const std::vector<const TimeSeries*>& series);

/// Write text to a file; throws std::runtime_error on failure.
void writeFile(const std::string& path, const std::string& content);

/// printf-style float formatting helper for table cells.
std::string fmt(double v, int decimals = 2);

}  // namespace composim::telemetry
