// composim: periodic metric sampling (the wandb/Nsight stand-in).
//
// Probes are callables returning an instantaneous value; the sampler polls
// them on a fixed simulated-time interval into named TimeSeries. Rate-style
// metrics (GPU utilization %, PCIe GB/s) are best expressed as *cumulative*
// probes sampled through a RateProbe, which differentiates between polls —
// exactly how nvidia-smi computes utilization over its sample window.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/time_series.hpp"

namespace composim::telemetry {

using Probe = std::function<double()>;

/// Converts a cumulative counter probe into a per-interval rate:
/// sample_i = (counter_i - counter_{i-1}) / (t_i - t_{i-1}) * scale.
/// A zero-length interval (two polls at the same simulated instant, e.g. a
/// final sampleOnce() landing on a scheduled tick) cannot be differentiated;
/// the probe holds the previous rate instead of dividing by zero.
class RateProbe {
 public:
  RateProbe(Simulator& sim, Probe cumulative, double scale = 1.0)
      : sim_(sim), cumulative_(std::move(cumulative)), scale_(scale) {}

  double operator()();

  /// Differentiation state (baseline + held rate), exposed so a forked
  /// run's collectors resume rate computation exactly where the warmed
  /// prefix left off instead of re-priming at the fork point.
  struct State {
    double last_value = 0.0;
    double last_rate = 0.0;
    SimTime last_time = 0.0;
    bool primed = false;
  };

  State state() const { return State{last_value_, last_rate_, last_time_, primed_}; }

  void setState(const State& st) {
    last_value_ = st.last_value;
    last_rate_ = st.last_rate;
    last_time_ = st.last_time;
    primed_ = st.primed;
  }

 private:
  Simulator& sim_;
  Probe cumulative_;
  double scale_;
  double last_value_ = 0.0;
  double last_rate_ = 0.0;
  SimTime last_time_ = 0.0;
  bool primed_ = false;
};

class MetricsSampler {
 public:
  MetricsSampler(Simulator& sim, SimTime interval)
      : sim_(sim), interval_(interval) {}

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Register an instantaneous probe under `name`.
  void addProbe(const std::string& name, Probe probe);

  /// Register a cumulative-counter probe sampled as a rate.
  void addRateProbe(const std::string& name, Probe cumulativeCounter,
                    double scale = 1.0);

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }
  void sampleOnce();

  const TimeSeries& series(const std::string& name) const;
  bool hasSeries(const std::string& name) const { return series_.count(name) > 0; }
  std::vector<std::string> seriesNames() const;

 private:
  void tick();

  Simulator& sim_;
  SimTime interval_;
  bool running_ = false;
  std::vector<std::pair<std::string, Probe>> probes_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
  std::vector<std::shared_ptr<RateProbe>> rate_probes_;  // keep-alive
};

}  // namespace composim::telemetry
