#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace composim::telemetry {

namespace {

/// Deterministic value formatting shared by the exposition writers: exact
/// integers print without a fraction (the common case for counts), other
/// values round-trip via %.17g — the same convention falcon::Json::dump
/// uses, so the Prometheus and JSONL exports agree on every digit.
std::string formatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Labels canonicalLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    if (labels[i].first == labels[i - 1].first) {
      throw std::invalid_argument("metrics: duplicate label key '" +
                                  labels[i].first + "'");
    }
  }
  return labels;
}

std::string labelsToString(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += escapeLabelValue(labels[i].second);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

const char* toString(MetricType t) {
  switch (t) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "?";
}

void Counter::add(double delta) {
  if (delta < 0.0) {
    throw std::invalid_argument("Counter: negative increment");
  }
  value_ += delta;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no bucket bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must ascend");
    }
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  samples_.push_back(v);
}

std::uint64_t Histogram::cumulativeCount(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b];
  }
  return total;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (sorted_prefix_ != samples_.size()) {
    std::sort(samples_.begin(), samples_.end());
    sorted_prefix_ = samples_.size();
  }
  return telemetry::percentile(samples_, p);
}

std::vector<double> defaultLatencyBucketsMs() {
  return {1.0,   2.5,   5.0,   10.0,   25.0,   50.0,   100.0,
          250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 MetricType type,
                                                 const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family f;
    f.type = type;
    f.help = help;
    it = families_.emplace(name, std::move(f)).first;
  } else if (it->second.type != type) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as " +
                                toString(it->second.type));
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = help;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels,
                                  const std::string& help) {
  Family& f = family(name, MetricType::Counter, help);
  Labels canon = canonicalLabels(std::move(labels));
  const std::string key = labelsToString(canon);
  auto it = f.counters.find(key);
  if (it == f.counters.end()) {
    it = f.counters
             .emplace(key, std::make_pair(std::move(canon),
                                          std::make_unique<Counter>()))
             .first;
  }
  return *it->second.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels,
                              const std::string& help) {
  Family& f = family(name, MetricType::Gauge, help);
  Labels canon = canonicalLabels(std::move(labels));
  const std::string key = labelsToString(canon);
  auto it = f.gauges.find(key);
  if (it == f.gauges.end()) {
    it = f.gauges
             .emplace(key,
                      std::make_pair(std::move(canon), std::make_unique<Gauge>()))
             .first;
  }
  return *it->second.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  Family& f = family(name, MetricType::Histogram, help);
  Labels canon = canonicalLabels(std::move(labels));
  const std::string key = labelsToString(canon);
  auto it = f.histograms.find(key);
  if (it == f.histograms.end()) {
    it = f.histograms
             .emplace(key, std::make_pair(std::move(canon),
                                          std::make_unique<Histogram>(
                                              std::move(bounds))))
             .first;
  }
  return *it->second.second;
}

MetricType MetricsRegistry::type(const std::string& name) const {
  return families_.at(name).type;
}

double MetricsRegistry::Instrument::value() const {
  if (counter != nullptr) return counter->value();
  if (gauge != nullptr) return gauge->value();
  if (histogram != nullptr && histogram->count() > 0) {
    return histogram->sum() / static_cast<double>(histogram->count());
  }
  return 0.0;
}

std::vector<MetricsRegistry::Instrument> MetricsRegistry::instruments(
    const std::string& name) const {
  std::vector<Instrument> out;
  const auto it = families_.find(name);
  if (it == families_.end()) return out;
  const Family& f = it->second;
  for (const auto& [key, entry] : f.counters) {
    out.push_back(Instrument{entry.first, entry.second.get(), nullptr, nullptr});
  }
  for (const auto& [key, entry] : f.gauges) {
    out.push_back(Instrument{entry.first, nullptr, entry.second.get(), nullptr});
  }
  for (const auto& [key, entry] : f.histograms) {
    out.push_back(Instrument{entry.first, nullptr, nullptr, entry.second.get()});
  }
  return out;
}

std::vector<std::string> MetricsRegistry::familyNames() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, f] : families_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::help(const std::string& name) const {
  const auto it = families_.find(name);
  return it == families_.end() ? "" : it->second.help;
}

MetricsRegistry::State MetricsRegistry::state() const {
  State st;
  st.families.reserve(families_.size());
  for (const auto& [name, f] : families_) {
    State::FamilyState fs;
    fs.name = name;
    fs.type = f.type;
    fs.help = f.help;
    for (const auto& [key, entry] : f.counters) {
      fs.counters.push_back(State::CounterInst{entry.first, *entry.second});
    }
    for (const auto& [key, entry] : f.gauges) {
      fs.gauges.push_back(State::GaugeInst{entry.first, *entry.second});
    }
    for (const auto& [key, entry] : f.histograms) {
      fs.histograms.push_back(State::HistogramInst{entry.first, *entry.second});
    }
    st.families.push_back(std::move(fs));
  }
  return st;
}

void MetricsRegistry::restoreState(const State& st) {
  for (const State::FamilyState& fs : st.families) {
    for (const State::CounterInst& inst : fs.counters) {
      counter(fs.name, inst.labels, fs.help) = inst.value;
    }
    for (const State::GaugeInst& inst : fs.gauges) {
      gauge(fs.name, inst.labels, fs.help) = inst.value;
    }
    for (const State::HistogramInst& inst : fs.histograms) {
      histogram(fs.name, inst.labels, inst.value.bounds(), fs.help) =
          inst.value;
    }
    // A family captured before any instrument existed (type/help only)
    // still needs to exist so # TYPE lines match the donor's exposition.
    family(fs.name, fs.type, fs.help);
  }
}

std::string MetricsRegistry::prometheusText() const {
  std::string out;
  for (const auto& [name, f] : families_) {
    if (!f.help.empty()) {
      out += "# HELP " + name + " " + f.help + "\n";
    }
    out += "# TYPE " + name + " ";
    out += toString(f.type);
    out += "\n";
    for (const auto& [key, entry] : f.counters) {
      out += name + key + " " + formatValue(entry.second->value()) + "\n";
    }
    for (const auto& [key, entry] : f.gauges) {
      out += name + key + " " + formatValue(entry.second->value()) + "\n";
    }
    for (const auto& [key, entry] : f.histograms) {
      const Histogram& h = *entry.second;
      // Bucket lines carry the instrument labels plus the reserved `le`
      // label, which sorts after user labels by convention (appended).
      for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
        Labels with_le = entry.first;
        with_le.emplace_back(
            "le", b < h.bounds().size() ? formatValue(h.bounds()[b]) : "+Inf");
        const std::uint64_t cum = b < h.bounds().size()
                                      ? h.cumulativeCount(b)
                                      : h.count();
        out += name + "_bucket" + labelsToString(with_le) + " " +
               formatValue(static_cast<double>(cum)) + "\n";
      }
      out += name + "_sum" + key + " " + formatValue(h.sum()) + "\n";
      out += name + "_count" + key + " " +
             formatValue(static_cast<double>(h.count())) + "\n";
    }
  }
  return out;
}

}  // namespace composim::telemetry
