#include "telemetry/profiler.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

namespace composim::telemetry {

namespace {

constexpr int kTracePid = 1;

falcon::Json argsToJson(const ProfileArgs& args) {
  falcon::Json obj = falcon::Json::object();
  for (const ProfileArg& a : args) {
    if (a.is_string) {
      obj.set(a.key, a.str);
    } else {
      obj.set(a.key, a.num);
    }
  }
  return obj;
}

}  // namespace

Profiler::Span& Profiler::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    prof_ = other.prof_;
    track_ = std::move(other.track_);
    other.prof_ = nullptr;
  }
  return *this;
}

void Profiler::Span::end(ProfileArgs args) {
  if (prof_ == nullptr) return;
  Profiler* p = std::exchange(prof_, nullptr);
  p->endSpan(track_, std::move(args));
}

Profiler::Span Profiler::span(const char* category, std::string name,
                              ProfileArgs args, std::string track) {
  if (!recording()) return Span{};
  if (track.empty()) track = category;
  beginSpan(track, category, std::move(name), std::move(args));
  return Span(this, std::move(track));
}

std::uint32_t Profiler::trackId(const std::string& track) {
  auto it = track_ids_.find(track);
  if (it != track_ids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(track);
  track_ids_.emplace(track, tid);
  return tid;
}

void Profiler::beginSpan(const std::string& track, const char* category,
                         std::string name, ProfileArgs args) {
  if (!recording()) return;
  const std::uint32_t tid = trackId(track);
  if (atCapacity()) {
    // Drop the whole span: remember the suppressed depth so the matching
    // endSpan (LIFO on this track) is suppressed too.
    ++dropped_records_;
    ++drop_depth_[tid];
    return;
  }
  records_.push_back(Record{'B', now(), tid, kInvalidAsyncSpan,
                            category, std::move(name), std::move(args)});
}

void Profiler::endSpan(const std::string& track, ProfileArgs args) {
  if (!recording()) return;
  const std::uint32_t tid = trackId(track);
  if (auto it = drop_depth_.find(tid);
      it != drop_depth_.end() && it->second > 0) {
    // This end matches a begin the cap suppressed.
    --it->second;
    ++dropped_records_;
    return;
  }
  // Ends of spans recorded before the cap always append (bounded
  // overshoot), keeping the recorded stream balanced.
  records_.push_back(Record{'E', now(), tid, kInvalidAsyncSpan,
                            {}, {}, std::move(args)});
}

AsyncSpanId Profiler::beginAsyncSpan(const char* category, std::string name,
                                     ProfileArgs args) {
  if (!recording()) return kInvalidAsyncSpan;
  if (atCapacity()) {
    // Suppressed whole: the caller gets the invalid id, whose endAsyncSpan
    // is a no-op, so no unbalanced 'e' is ever recorded.
    ++dropped_records_;
    return kInvalidAsyncSpan;
  }
  const AsyncSpanId id = next_async_++;
  open_async_.emplace(id, records_.size());
  records_.push_back(Record{'b', now(), trackId(category), id, category,
                            std::move(name), std::move(args)});
  return id;
}

void Profiler::endAsyncSpan(AsyncSpanId id, ProfileArgs args) {
  if (!recording() || id == kInvalidAsyncSpan) return;
  auto it = open_async_.find(id);
  if (it == open_async_.end()) return;  // unknown or already closed
  // Chrome pairs async begin/end by (category, id); category/name are
  // repeated from the begin record for readability in raw JSON.
  const Record& open = records_[it->second];
  Record end{'e', now(), open.tid, id, open.category, open.name,
             std::move(args)};
  open_async_.erase(it);
  records_.push_back(std::move(end));
}

void Profiler::setCounter(const std::string& counter, const std::string& series,
                          double value) {
  if (!recording()) return;
  const SimTime t = now();
  auto& state_map = counters_[counter];
  auto it = state_map.find(series);
  if (it == state_map.end()) {
    state_map.emplace(series, CounterState{value, t, t, 0.0});
  } else {
    CounterState& s = it->second;
    if (s.value == value) return;  // no change: skip the duplicate record
    s.weighted_sum += s.value * (t - s.since);
    s.value = value;
    s.since = t;
  }
  // Past the cap the integral above still updates (counterMean stays
  // exact); only the trace record is suppressed.
  if (atCapacity()) {
    ++dropped_records_;
    return;
  }
  records_.push_back(Record{'C', t, trackId(counter), kInvalidAsyncSpan,
                            "counter", counter,
                            ProfileArgs{{series, value}}});
}

void Profiler::instant(const char* category, std::string name,
                       ProfileArgs args) {
  if (!recording()) return;
  if (atCapacity()) {
    ++dropped_records_;
    return;
  }
  records_.push_back(Record{'i', now(), trackId(category), kInvalidAsyncSpan,
                            category, std::move(name), std::move(args)});
}

bool Profiler::hasCounter(const std::string& counter,
                          const std::string& series) const {
  auto c = counters_.find(counter);
  return c != counters_.end() && c->second.count(series) > 0;
}

double Profiler::counterValue(const std::string& counter,
                              const std::string& series) const {
  auto c = counters_.find(counter);
  if (c == counters_.end()) return 0.0;
  auto s = c->second.find(series);
  return s == c->second.end() ? 0.0 : s->second.value;
}

double Profiler::counterMean(const std::string& counter,
                             const std::string& series) const {
  auto c = counters_.find(counter);
  if (c == counters_.end()) return 0.0;
  auto s = c->second.find(series);
  if (s == c->second.end()) return 0.0;
  const CounterState& st = s->second;
  const SimTime end = now();
  const SimTime span = end - st.first;
  if (span <= 0.0) return st.value;
  const double integral = st.weighted_sum + st.value * (end - st.since);
  return integral / span;
}

Profiler::State Profiler::state() const {
  State st;
  st.enabled = enabled_;
  st.records = records_;
  st.track_names = track_names_;
  st.track_ids = track_ids_;
  st.open_async = open_async_;
  st.counters = counters_;
  st.next_async = next_async_;
  st.next_corr = next_corr_;
  st.max_records = max_records_;
  st.dropped_records = dropped_records_;
  st.drop_depth = drop_depth_;
  return st;
}

void Profiler::setState(const State& st) {
  enabled_ = st.enabled;
  records_ = st.records;
  track_names_ = st.track_names;
  track_ids_ = st.track_ids;
  open_async_ = st.open_async;
  counters_ = st.counters;
  next_async_ = st.next_async;
  next_corr_ = st.next_corr;
  max_records_ = st.max_records;
  dropped_records_ = st.dropped_records;
  drop_depth_ = st.drop_depth;
}

void Profiler::finalize() {
  if (sim_ == nullptr) return;
  end_time_ = sim_->now();
  // Close every counter integral at the end time so means computed after
  // the Simulator is gone cover the full run.
  for (auto& [counter, series_map] : counters_) {
    for (auto& [series, st] : series_map) {
      st.weighted_sum += st.value * (end_time_ - st.since);
      st.since = end_time_;
    }
  }
  sim_ = nullptr;
}

std::vector<std::size_t> Profiler::exportOrder() const {
  std::vector<std::size_t> order(records_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // (time, tid, seq): recording order is already time-sorted (the sim
  // clock is monotone), so this only canonicalizes cross-track ties at
  // one timestamp. Per-track sequence is preserved (seq is the final
  // key), which is what keeps B/E nesting and b/e pairing valid.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     const Record& ra = records_[a];
                     const Record& rb = records_[b];
                     if (ra.time != rb.time) return ra.time < rb.time;
                     if (ra.tid != rb.tid) return ra.tid < rb.tid;
                     return a < b;
                   });
  return order;
}

falcon::Json Profiler::chromeTrace() const {
  falcon::Json events = falcon::Json::array();
  // Process + per-track thread names so Perfetto labels the rows.
  {
    falcon::Json meta = falcon::Json::object();
    meta.set("ph", "M");
    meta.set("pid", kTracePid);
    meta.set("tid", 0);
    meta.set("name", "process_name");
    falcon::Json args = falcon::Json::object();
    args.set("name", "composim");
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }
  for (std::size_t tid = 0; tid < track_names_.size(); ++tid) {
    falcon::Json meta = falcon::Json::object();
    meta.set("ph", "M");
    meta.set("pid", kTracePid);
    meta.set("tid", static_cast<std::int64_t>(tid));
    meta.set("name", "thread_name");
    falcon::Json args = falcon::Json::object();
    args.set("name", track_names_[tid]);
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }
  for (const std::size_t idx : exportOrder()) {
    const Record& r = records_[idx];
    falcon::Json ev = falcon::Json::object();
    ev.set("ph", std::string(1, r.phase));
    ev.set("ts", r.time * 1e6);  // trace_event timestamps are microseconds
    ev.set("pid", kTracePid);
    ev.set("tid", static_cast<std::int64_t>(r.tid));
    if (!r.name.empty()) ev.set("name", r.name);
    if (!r.category.empty()) ev.set("cat", r.category);
    if (r.id != kInvalidAsyncSpan) {
      ev.set("id", static_cast<std::int64_t>(r.id));
    }
    if (r.phase == 'i') ev.set("s", "t");  // instant scope: thread
    if (!r.args.empty()) ev.set("args", argsToJson(r.args));
    events.push(std::move(ev));
  }
  falcon::Json doc = falcon::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("otherData", [this] {
    falcon::Json d = falcon::Json::object();
    d.set("producer", "composim.telemetry.Profiler");
    if (max_records_ > 0) {
      d.set("max_records", static_cast<std::int64_t>(max_records_));
      d.set("dropped_records", static_cast<std::int64_t>(dropped_records_));
    }
    return d;
  }());
  return doc;
}

Status Profiler::writeChromeTrace(const std::string& path, int indent) const {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open '" + path + "' for writing");
  out << chromeTrace().dump(indent) << '\n';
  if (!out) return Status::internal("short write to '" + path + "'");
  return Status::success();
}

}  // namespace composim::telemetry
