#include "telemetry/alert_engine.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace composim::telemetry {

namespace {

std::string formatThreshold(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string AlertRule::expression() const {
  std::string out = metric;
  if (rate) out += " rate";
  out += cmp == Cmp::GT ? " > " : " < ";
  out += formatThreshold(threshold);
  if (hold > 0.0) out += " for " + formatThreshold(hold) + "s";
  return out;
}

AlertRule parseAlertRule(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(std::move(tok));
  if (tokens.empty()) {
    throw std::invalid_argument("alert rule: empty expression");
  }

  AlertRule rule;
  std::size_t i = 0;
  if (tokens[i].size() > 1 && tokens[i].back() == ':') {
    rule.name = tokens[i].substr(0, tokens[i].size() - 1);
    ++i;
  }
  if (i >= tokens.size()) {
    throw std::invalid_argument("alert rule '" + text + "': missing metric");
  }
  rule.metric = tokens[i++];
  if (i < tokens.size() && tokens[i] == "rate") {
    rule.rate = true;
    ++i;
  }
  if (i >= tokens.size() || (tokens[i] != ">" && tokens[i] != "<")) {
    throw std::invalid_argument("alert rule '" + text +
                                "': expected '>' or '<'");
  }
  rule.cmp = tokens[i] == ">" ? AlertRule::Cmp::GT : AlertRule::Cmp::LT;
  ++i;
  if (i >= tokens.size()) {
    throw std::invalid_argument("alert rule '" + text + "': missing threshold");
  }
  try {
    std::size_t used = 0;
    rule.threshold = std::stod(tokens[i], &used);
    if (used != tokens[i].size()) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::invalid_argument("alert rule '" + text + "': bad threshold '" +
                                tokens[i] + "'");
  }
  ++i;
  if (i < tokens.size()) {
    if (tokens[i] != "for" || i + 1 >= tokens.size()) {
      throw std::invalid_argument("alert rule '" + text +
                                  "': expected 'for <duration>'");
    }
    std::string dur = tokens[i + 1];
    double scale = 1.0;
    if (dur.size() > 2 && dur.compare(dur.size() - 2, 2, "ms") == 0) {
      scale = 1e-3;
      dur.resize(dur.size() - 2);
    } else if (dur.size() > 1 && dur.back() == 's') {
      dur.resize(dur.size() - 1);
    }
    try {
      std::size_t used = 0;
      rule.hold = std::stod(dur, &used) * scale;
      if (used != dur.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument("alert rule '" + text + "': bad duration '" +
                                  tokens[i + 1] + "'");
    }
    if (rule.hold < 0.0) {
      throw std::invalid_argument("alert rule '" + text +
                                  "': negative duration");
    }
    i += 2;
  }
  if (i != tokens.size()) {
    throw std::invalid_argument("alert rule '" + text +
                                "': trailing tokens after '" + tokens[i - 1] +
                                "'");
  }
  if (rule.name.empty()) rule.name = rule.expression();
  return rule;
}

void AlertEngine::addRule(AlertRule rule) {
  rules_.push_back(RuleState{std::move(rule), {}});
}

void AlertEngine::evaluate(SimTime now) {
  for (RuleState& rs : rules_) {
    const AlertRule& rule = rs.rule;
    // "family{labels}" selects one instrument; a bare family matches all.
    std::string family = rule.metric;
    std::string selector;
    if (const auto brace = family.find('{'); brace != std::string::npos) {
      selector = family.substr(brace);
      family.resize(brace);
    }
    for (const auto& inst : registry_.instruments(family)) {
      const std::string key = labelsToString(inst.labels);
      if (!selector.empty() && key != selector) continue;
      SeriesState& st = rs.series[key];

      double observed = inst.value();
      if (rule.rate) {
        if (!st.seen) {
          st.seen = true;
          st.last_value = observed;
          st.last_time = now;
          continue;  // no baseline yet
        }
        const double dv = observed - st.last_value;
        const SimTime dt = now - st.last_time;
        st.last_value = observed;
        if (dt <= 0.0) continue;  // same-instant re-evaluation: keep state
        st.last_time = now;
        observed = dv / dt;
      }

      const bool met = rule.cmp == AlertRule::Cmp::GT
                           ? observed > rule.threshold
                           : observed < rule.threshold;
      if (met) {
        if (!st.breaching) {
          st.breaching = true;
          st.breach_since = now;
        }
        if (!st.firing && now - st.breach_since >= rule.hold) {
          st.firing = true;
          emit(Alert{rule.name, family + key, true, now, observed});
        }
      } else {
        if (st.firing) {
          emit(Alert{rule.name, family + key, false, now, observed});
        }
        st.breaching = false;
        st.firing = false;
      }
    }
  }
}

std::size_t AlertEngine::firingCount() const {
  std::size_t n = 0;
  for (const RuleState& rs : rules_) {
    for (const auto& [key, st] : rs.series) {
      if (st.firing) ++n;
    }
  }
  return n;
}

AlertEngine::State AlertEngine::state() const {
  State st;
  st.rule_series.reserve(rules_.size());
  for (const RuleState& rs : rules_) st.rule_series.push_back(rs.series);
  st.log = log_;
  return st;
}

void AlertEngine::setState(const State& st) {
  if (st.rule_series.size() != rules_.size()) {
    throw std::logic_error("AlertEngine::setState: rule count mismatch");
  }
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    rules_[i].series = st.rule_series[i];
  }
  log_ = st.log;
}

void AlertEngine::emit(Alert alert) {
  log_.push_back(alert);
  for (const Handler& h : handlers_) h(alert);
}

}  // namespace composim::telemetry
