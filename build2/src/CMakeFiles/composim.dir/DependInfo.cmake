
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/communicator.cpp" "src/CMakeFiles/composim.dir/collectives/communicator.cpp.o" "gcc" "src/CMakeFiles/composim.dir/collectives/communicator.cpp.o.d"
  "/root/repo/src/core/composable_system.cpp" "src/CMakeFiles/composim.dir/core/composable_system.cpp.o" "gcc" "src/CMakeFiles/composim.dir/core/composable_system.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/composim.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/composim.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/experiment_config.cpp" "src/CMakeFiles/composim.dir/core/experiment_config.cpp.o" "gcc" "src/CMakeFiles/composim.dir/core/experiment_config.cpp.o.d"
  "/root/repo/src/core/recommender.cpp" "src/CMakeFiles/composim.dir/core/recommender.cpp.o" "gcc" "src/CMakeFiles/composim.dir/core/recommender.cpp.o.d"
  "/root/repo/src/devices/gpu.cpp" "src/CMakeFiles/composim.dir/devices/gpu.cpp.o" "gcc" "src/CMakeFiles/composim.dir/devices/gpu.cpp.o.d"
  "/root/repo/src/devices/host_cpu.cpp" "src/CMakeFiles/composim.dir/devices/host_cpu.cpp.o" "gcc" "src/CMakeFiles/composim.dir/devices/host_cpu.cpp.o.d"
  "/root/repo/src/devices/storage.cpp" "src/CMakeFiles/composim.dir/devices/storage.cpp.o" "gcc" "src/CMakeFiles/composim.dir/devices/storage.cpp.o.d"
  "/root/repo/src/dl/inference.cpp" "src/CMakeFiles/composim.dir/dl/inference.cpp.o" "gcc" "src/CMakeFiles/composim.dir/dl/inference.cpp.o.d"
  "/root/repo/src/dl/model.cpp" "src/CMakeFiles/composim.dir/dl/model.cpp.o" "gcc" "src/CMakeFiles/composim.dir/dl/model.cpp.o.d"
  "/root/repo/src/dl/pipeline.cpp" "src/CMakeFiles/composim.dir/dl/pipeline.cpp.o" "gcc" "src/CMakeFiles/composim.dir/dl/pipeline.cpp.o.d"
  "/root/repo/src/dl/trainer.cpp" "src/CMakeFiles/composim.dir/dl/trainer.cpp.o" "gcc" "src/CMakeFiles/composim.dir/dl/trainer.cpp.o.d"
  "/root/repo/src/dl/zoo.cpp" "src/CMakeFiles/composim.dir/dl/zoo.cpp.o" "gcc" "src/CMakeFiles/composim.dir/dl/zoo.cpp.o.d"
  "/root/repo/src/fabric/bandwidth_probe.cpp" "src/CMakeFiles/composim.dir/fabric/bandwidth_probe.cpp.o" "gcc" "src/CMakeFiles/composim.dir/fabric/bandwidth_probe.cpp.o.d"
  "/root/repo/src/fabric/failures.cpp" "src/CMakeFiles/composim.dir/fabric/failures.cpp.o" "gcc" "src/CMakeFiles/composim.dir/fabric/failures.cpp.o.d"
  "/root/repo/src/fabric/flow_network.cpp" "src/CMakeFiles/composim.dir/fabric/flow_network.cpp.o" "gcc" "src/CMakeFiles/composim.dir/fabric/flow_network.cpp.o.d"
  "/root/repo/src/fabric/nvlink_mesh.cpp" "src/CMakeFiles/composim.dir/fabric/nvlink_mesh.cpp.o" "gcc" "src/CMakeFiles/composim.dir/fabric/nvlink_mesh.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/CMakeFiles/composim.dir/fabric/topology.cpp.o" "gcc" "src/CMakeFiles/composim.dir/fabric/topology.cpp.o.d"
  "/root/repo/src/falcon/allocation_planner.cpp" "src/CMakeFiles/composim.dir/falcon/allocation_planner.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/allocation_planner.cpp.o.d"
  "/root/repo/src/falcon/bmc.cpp" "src/CMakeFiles/composim.dir/falcon/bmc.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/bmc.cpp.o.d"
  "/root/repo/src/falcon/chassis.cpp" "src/CMakeFiles/composim.dir/falcon/chassis.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/chassis.cpp.o.d"
  "/root/repo/src/falcon/json.cpp" "src/CMakeFiles/composim.dir/falcon/json.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/json.cpp.o.d"
  "/root/repo/src/falcon/mcs.cpp" "src/CMakeFiles/composim.dir/falcon/mcs.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/mcs.cpp.o.d"
  "/root/repo/src/falcon/topology_view.cpp" "src/CMakeFiles/composim.dir/falcon/topology_view.cpp.o" "gcc" "src/CMakeFiles/composim.dir/falcon/topology_view.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/composim.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/composim.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/composim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/composim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/composim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/composim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/units.cpp" "src/CMakeFiles/composim.dir/sim/units.cpp.o" "gcc" "src/CMakeFiles/composim.dir/sim/units.cpp.o.d"
  "/root/repo/src/telemetry/report.cpp" "src/CMakeFiles/composim.dir/telemetry/report.cpp.o" "gcc" "src/CMakeFiles/composim.dir/telemetry/report.cpp.o.d"
  "/root/repo/src/telemetry/run_tracker.cpp" "src/CMakeFiles/composim.dir/telemetry/run_tracker.cpp.o" "gcc" "src/CMakeFiles/composim.dir/telemetry/run_tracker.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/CMakeFiles/composim.dir/telemetry/sampler.cpp.o" "gcc" "src/CMakeFiles/composim.dir/telemetry/sampler.cpp.o.d"
  "/root/repo/src/telemetry/time_series.cpp" "src/CMakeFiles/composim.dir/telemetry/time_series.cpp.o" "gcc" "src/CMakeFiles/composim.dir/telemetry/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
