# Empty compiler generated dependencies file for composim.
# This may be replaced when dependencies are built.
