file(REMOVE_RECURSE
  "libcomposim.a"
)
