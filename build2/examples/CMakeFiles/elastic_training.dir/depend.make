# Empty dependencies file for elastic_training.
# This may be replaced when dependencies are built.
