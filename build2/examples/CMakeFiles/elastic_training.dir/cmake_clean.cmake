file(REMOVE_RECURSE
  "CMakeFiles/elastic_training.dir/elastic_training.cpp.o"
  "CMakeFiles/elastic_training.dir/elastic_training.cpp.o.d"
  "elastic_training"
  "elastic_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
