# Empty compiler generated dependencies file for management_console.
# This may be replaced when dependencies are built.
