file(REMOVE_RECURSE
  "CMakeFiles/management_console.dir/management_console.cpp.o"
  "CMakeFiles/management_console.dir/management_console.cpp.o.d"
  "management_console"
  "management_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/management_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
