file(REMOVE_RECURSE
  "CMakeFiles/dynamic_provisioning.dir/dynamic_provisioning.cpp.o"
  "CMakeFiles/dynamic_provisioning.dir/dynamic_provisioning.cpp.o.d"
  "dynamic_provisioning"
  "dynamic_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
