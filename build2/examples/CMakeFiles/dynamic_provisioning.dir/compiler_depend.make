# Empty compiler generated dependencies file for dynamic_provisioning.
# This may be replaced when dependencies are built.
