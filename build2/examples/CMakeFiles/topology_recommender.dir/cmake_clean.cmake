file(REMOVE_RECURSE
  "CMakeFiles/topology_recommender.dir/topology_recommender.cpp.o"
  "CMakeFiles/topology_recommender.dir/topology_recommender.cpp.o.d"
  "topology_recommender"
  "topology_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
