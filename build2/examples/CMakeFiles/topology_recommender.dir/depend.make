# Empty dependencies file for topology_recommender.
# This may be replaced when dependencies are built.
