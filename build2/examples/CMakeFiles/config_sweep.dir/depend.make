# Empty dependencies file for config_sweep.
# This may be replaced when dependencies are built.
