file(REMOVE_RECURSE
  "CMakeFiles/config_sweep.dir/config_sweep.cpp.o"
  "CMakeFiles/config_sweep.dir/config_sweep.cpp.o.d"
  "config_sweep"
  "config_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
