# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build2/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_config_sweep "/root/repo/build2/examples/config_sweep")
set_tests_properties(example_config_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_provisioning "/root/repo/build2/examples/dynamic_provisioning")
set_tests_properties(example_dynamic_provisioning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_management_console "/root/repo/build2/examples/management_console")
set_tests_properties(example_management_console PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_recommender "/root/repo/build2/examples/topology_recommender")
set_tests_properties(example_topology_recommender PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inference_serving "/root/repo/build2/examples/inference_serving")
set_tests_properties(example_inference_serving PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build2/examples/failure_drill")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_suite "/root/repo/build2/examples/run_suite")
set_tests_properties(example_run_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elastic_training "/root/repo/build2/examples/elastic_training")
set_tests_properties(example_elastic_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
