# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build2/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build2/bench/micro_simcore" "-DVALIDATE_BIN=/root/repo/build2/bench/bench_json_validate" "-DOUT_JSON=/root/repo/build2/bench/BENCH_simcore.json" "-P" "/root/repo/bench/run_bench_smoke.cmake")
set_tests_properties(bench_smoke PROPERTIES  LABELS "bench" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
