# Empty compiler generated dependencies file for fig10_gpu_metrics.
# This may be replaced when dependencies are built.
