file(REMOVE_RECURSE
  "CMakeFiles/fig10_gpu_metrics.dir/fig10_gpu_metrics.cpp.o"
  "CMakeFiles/fig10_gpu_metrics.dir/fig10_gpu_metrics.cpp.o.d"
  "fig10_gpu_metrics"
  "fig10_gpu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gpu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
