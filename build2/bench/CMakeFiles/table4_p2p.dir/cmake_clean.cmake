file(REMOVE_RECURSE
  "CMakeFiles/table4_p2p.dir/table4_p2p.cpp.o"
  "CMakeFiles/table4_p2p.dir/table4_p2p.cpp.o.d"
  "table4_p2p"
  "table4_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
