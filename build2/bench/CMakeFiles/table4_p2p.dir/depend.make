# Empty dependencies file for table4_p2p.
# This may be replaced when dependencies are built.
