file(REMOVE_RECURSE
  "CMakeFiles/fig14_sysmem_util.dir/fig14_sysmem_util.cpp.o"
  "CMakeFiles/fig14_sysmem_util.dir/fig14_sysmem_util.cpp.o.d"
  "fig14_sysmem_util"
  "fig14_sysmem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sysmem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
