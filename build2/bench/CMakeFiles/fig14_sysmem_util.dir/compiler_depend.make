# Empty compiler generated dependencies file for fig14_sysmem_util.
# This may be replaced when dependencies are built.
