# Empty dependencies file for fig13_cpu_util.
# This may be replaced when dependencies are built.
