file(REMOVE_RECURSE
  "CMakeFiles/fig13_cpu_util.dir/fig13_cpu_util.cpp.o"
  "CMakeFiles/fig13_cpu_util.dir/fig13_cpu_util.cpp.o.d"
  "fig13_cpu_util"
  "fig13_cpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
