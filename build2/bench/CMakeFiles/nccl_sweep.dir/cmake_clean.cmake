file(REMOVE_RECURSE
  "CMakeFiles/nccl_sweep.dir/nccl_sweep.cpp.o"
  "CMakeFiles/nccl_sweep.dir/nccl_sweep.cpp.o.d"
  "nccl_sweep"
  "nccl_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nccl_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
