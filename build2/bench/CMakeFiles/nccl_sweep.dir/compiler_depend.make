# Empty compiler generated dependencies file for nccl_sweep.
# This may be replaced when dependencies are built.
