file(REMOVE_RECURSE
  "CMakeFiles/fig05_comm_requirements.dir/fig05_comm_requirements.cpp.o"
  "CMakeFiles/fig05_comm_requirements.dir/fig05_comm_requirements.cpp.o.d"
  "fig05_comm_requirements"
  "fig05_comm_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_comm_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
