# Empty compiler generated dependencies file for fig05_comm_requirements.
# This may be replaced when dependencies are built.
