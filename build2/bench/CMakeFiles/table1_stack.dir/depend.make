# Empty dependencies file for table1_stack.
# This may be replaced when dependencies are built.
