file(REMOVE_RECURSE
  "CMakeFiles/table1_stack.dir/table1_stack.cpp.o"
  "CMakeFiles/table1_stack.dir/table1_stack.cpp.o.d"
  "table1_stack"
  "table1_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
