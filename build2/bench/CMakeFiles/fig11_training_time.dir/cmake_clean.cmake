file(REMOVE_RECURSE
  "CMakeFiles/fig11_training_time.dir/fig11_training_time.cpp.o"
  "CMakeFiles/fig11_training_time.dir/fig11_training_time.cpp.o.d"
  "fig11_training_time"
  "fig11_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
