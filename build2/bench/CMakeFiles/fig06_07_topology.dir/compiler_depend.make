# Empty compiler generated dependencies file for fig06_07_topology.
# This may be replaced when dependencies are built.
