file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_topology.dir/fig06_07_topology.cpp.o"
  "CMakeFiles/fig06_07_topology.dir/fig06_07_topology.cpp.o.d"
  "fig06_07_topology"
  "fig06_07_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
