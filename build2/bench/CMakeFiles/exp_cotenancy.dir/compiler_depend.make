# Empty compiler generated dependencies file for exp_cotenancy.
# This may be replaced when dependencies are built.
