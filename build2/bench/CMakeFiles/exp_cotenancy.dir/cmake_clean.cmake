file(REMOVE_RECURSE
  "CMakeFiles/exp_cotenancy.dir/exp_cotenancy.cpp.o"
  "CMakeFiles/exp_cotenancy.dir/exp_cotenancy.cpp.o.d"
  "exp_cotenancy"
  "exp_cotenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cotenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
