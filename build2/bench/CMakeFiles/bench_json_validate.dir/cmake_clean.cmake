file(REMOVE_RECURSE
  "CMakeFiles/bench_json_validate.dir/bench_json_validate.cpp.o"
  "CMakeFiles/bench_json_validate.dir/bench_json_validate.cpp.o.d"
  "bench_json_validate"
  "bench_json_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_json_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
