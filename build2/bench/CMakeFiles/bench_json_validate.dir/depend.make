# Empty dependencies file for bench_json_validate.
# This may be replaced when dependencies are built.
