file(REMOVE_RECURSE
  "CMakeFiles/fig16_sw_optimizations.dir/fig16_sw_optimizations.cpp.o"
  "CMakeFiles/fig16_sw_optimizations.dir/fig16_sw_optimizations.cpp.o.d"
  "fig16_sw_optimizations"
  "fig16_sw_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sw_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
