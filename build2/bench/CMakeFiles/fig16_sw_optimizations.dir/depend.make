# Empty dependencies file for fig16_sw_optimizations.
# This may be replaced when dependencies are built.
