# Empty compiler generated dependencies file for fig09_gpu_util_patterns.
# This may be replaced when dependencies are built.
