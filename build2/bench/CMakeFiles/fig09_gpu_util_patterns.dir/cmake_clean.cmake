file(REMOVE_RECURSE
  "CMakeFiles/fig09_gpu_util_patterns.dir/fig09_gpu_util_patterns.cpp.o"
  "CMakeFiles/fig09_gpu_util_patterns.dir/fig09_gpu_util_patterns.cpp.o.d"
  "fig09_gpu_util_patterns"
  "fig09_gpu_util_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gpu_util_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
