# Empty dependencies file for fig15_storage.
# This may be replaced when dependencies are built.
