file(REMOVE_RECURSE
  "CMakeFiles/fig15_storage.dir/fig15_storage.cpp.o"
  "CMakeFiles/fig15_storage.dir/fig15_storage.cpp.o.d"
  "fig15_storage"
  "fig15_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
