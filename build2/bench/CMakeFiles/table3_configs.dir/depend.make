# Empty dependencies file for table3_configs.
# This may be replaced when dependencies are built.
