file(REMOVE_RECURSE
  "CMakeFiles/table3_configs.dir/table3_configs.cpp.o"
  "CMakeFiles/table3_configs.dir/table3_configs.cpp.o.d"
  "table3_configs"
  "table3_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
