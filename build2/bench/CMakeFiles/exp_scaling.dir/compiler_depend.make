# Empty compiler generated dependencies file for exp_scaling.
# This may be replaced when dependencies are built.
