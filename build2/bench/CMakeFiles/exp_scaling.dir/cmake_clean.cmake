file(REMOVE_RECURSE
  "CMakeFiles/exp_scaling.dir/exp_scaling.cpp.o"
  "CMakeFiles/exp_scaling.dir/exp_scaling.cpp.o.d"
  "exp_scaling"
  "exp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
