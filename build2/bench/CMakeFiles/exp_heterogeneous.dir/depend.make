# Empty dependencies file for exp_heterogeneous.
# This may be replaced when dependencies are built.
