file(REMOVE_RECURSE
  "CMakeFiles/exp_heterogeneous.dir/exp_heterogeneous.cpp.o"
  "CMakeFiles/exp_heterogeneous.dir/exp_heterogeneous.cpp.o.d"
  "exp_heterogeneous"
  "exp_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
