file(REMOVE_RECURSE
  "CMakeFiles/fig12_pcie_traffic.dir/fig12_pcie_traffic.cpp.o"
  "CMakeFiles/fig12_pcie_traffic.dir/fig12_pcie_traffic.cpp.o.d"
  "fig12_pcie_traffic"
  "fig12_pcie_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pcie_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
