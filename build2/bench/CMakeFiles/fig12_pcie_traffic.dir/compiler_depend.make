# Empty compiler generated dependencies file for fig12_pcie_traffic.
# This may be replaced when dependencies are built.
