# Empty dependencies file for telemetry_tracker_test.
# This may be replaced when dependencies are built.
