file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tracker_test.dir/telemetry_tracker_test.cpp.o"
  "CMakeFiles/telemetry_tracker_test.dir/telemetry_tracker_test.cpp.o.d"
  "telemetry_tracker_test"
  "telemetry_tracker_test.pdb"
  "telemetry_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
