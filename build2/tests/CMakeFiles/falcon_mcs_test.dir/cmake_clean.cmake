file(REMOVE_RECURSE
  "CMakeFiles/falcon_mcs_test.dir/falcon_mcs_test.cpp.o"
  "CMakeFiles/falcon_mcs_test.dir/falcon_mcs_test.cpp.o.d"
  "falcon_mcs_test"
  "falcon_mcs_test.pdb"
  "falcon_mcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_mcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
