# Empty dependencies file for falcon_mcs_test.
# This may be replaced when dependencies are built.
