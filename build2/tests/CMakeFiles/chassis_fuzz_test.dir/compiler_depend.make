# Empty compiler generated dependencies file for chassis_fuzz_test.
# This may be replaced when dependencies are built.
