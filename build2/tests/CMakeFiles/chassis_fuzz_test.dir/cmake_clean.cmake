file(REMOVE_RECURSE
  "CMakeFiles/chassis_fuzz_test.dir/chassis_fuzz_test.cpp.o"
  "CMakeFiles/chassis_fuzz_test.dir/chassis_fuzz_test.cpp.o.d"
  "chassis_fuzz_test"
  "chassis_fuzz_test.pdb"
  "chassis_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chassis_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
