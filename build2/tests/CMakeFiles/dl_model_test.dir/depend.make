# Empty dependencies file for dl_model_test.
# This may be replaced when dependencies are built.
