file(REMOVE_RECURSE
  "CMakeFiles/dl_model_test.dir/dl_model_test.cpp.o"
  "CMakeFiles/dl_model_test.dir/dl_model_test.cpp.o.d"
  "dl_model_test"
  "dl_model_test.pdb"
  "dl_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
