file(REMOVE_RECURSE
  "CMakeFiles/fabric_failures_test.dir/fabric_failures_test.cpp.o"
  "CMakeFiles/fabric_failures_test.dir/fabric_failures_test.cpp.o.d"
  "fabric_failures_test"
  "fabric_failures_test.pdb"
  "fabric_failures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_failures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
