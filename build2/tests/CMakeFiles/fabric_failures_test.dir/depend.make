# Empty dependencies file for fabric_failures_test.
# This may be replaced when dependencies are built.
