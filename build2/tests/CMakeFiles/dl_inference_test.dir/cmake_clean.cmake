file(REMOVE_RECURSE
  "CMakeFiles/dl_inference_test.dir/dl_inference_test.cpp.o"
  "CMakeFiles/dl_inference_test.dir/dl_inference_test.cpp.o.d"
  "dl_inference_test"
  "dl_inference_test.pdb"
  "dl_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
