# Empty compiler generated dependencies file for dl_inference_test.
# This may be replaced when dependencies are built.
