file(REMOVE_RECURSE
  "CMakeFiles/falcon_twochip_test.dir/falcon_twochip_test.cpp.o"
  "CMakeFiles/falcon_twochip_test.dir/falcon_twochip_test.cpp.o.d"
  "falcon_twochip_test"
  "falcon_twochip_test.pdb"
  "falcon_twochip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_twochip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
