# Empty dependencies file for falcon_twochip_test.
# This may be replaced when dependencies are built.
