# Empty dependencies file for fabric_flow_test.
# This may be replaced when dependencies are built.
