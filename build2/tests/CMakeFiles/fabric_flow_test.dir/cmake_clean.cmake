file(REMOVE_RECURSE
  "CMakeFiles/fabric_flow_test.dir/fabric_flow_test.cpp.o"
  "CMakeFiles/fabric_flow_test.dir/fabric_flow_test.cpp.o.d"
  "fabric_flow_test"
  "fabric_flow_test.pdb"
  "fabric_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
