# Empty compiler generated dependencies file for dl_elastic_test.
# This may be replaced when dependencies are built.
