file(REMOVE_RECURSE
  "CMakeFiles/dl_elastic_test.dir/dl_elastic_test.cpp.o"
  "CMakeFiles/dl_elastic_test.dir/dl_elastic_test.cpp.o.d"
  "dl_elastic_test"
  "dl_elastic_test.pdb"
  "dl_elastic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_elastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
