file(REMOVE_RECURSE
  "CMakeFiles/falcon_bmc_test.dir/falcon_bmc_test.cpp.o"
  "CMakeFiles/falcon_bmc_test.dir/falcon_bmc_test.cpp.o.d"
  "falcon_bmc_test"
  "falcon_bmc_test.pdb"
  "falcon_bmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_bmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
