# Empty dependencies file for falcon_bmc_test.
# This may be replaced when dependencies are built.
