file(REMOVE_RECURSE
  "CMakeFiles/nvlink_mesh_test.dir/nvlink_mesh_test.cpp.o"
  "CMakeFiles/nvlink_mesh_test.dir/nvlink_mesh_test.cpp.o.d"
  "nvlink_mesh_test"
  "nvlink_mesh_test.pdb"
  "nvlink_mesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvlink_mesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
