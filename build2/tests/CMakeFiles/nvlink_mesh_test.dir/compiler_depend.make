# Empty compiler generated dependencies file for nvlink_mesh_test.
# This may be replaced when dependencies are built.
