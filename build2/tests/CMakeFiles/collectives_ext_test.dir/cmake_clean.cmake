file(REMOVE_RECURSE
  "CMakeFiles/collectives_ext_test.dir/collectives_ext_test.cpp.o"
  "CMakeFiles/collectives_ext_test.dir/collectives_ext_test.cpp.o.d"
  "collectives_ext_test"
  "collectives_ext_test.pdb"
  "collectives_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
