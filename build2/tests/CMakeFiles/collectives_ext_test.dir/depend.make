# Empty dependencies file for collectives_ext_test.
# This may be replaced when dependencies are built.
