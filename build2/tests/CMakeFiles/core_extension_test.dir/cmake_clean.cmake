file(REMOVE_RECURSE
  "CMakeFiles/core_extension_test.dir/core_extension_test.cpp.o"
  "CMakeFiles/core_extension_test.dir/core_extension_test.cpp.o.d"
  "core_extension_test"
  "core_extension_test.pdb"
  "core_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
