# Empty dependencies file for core_extension_test.
# This may be replaced when dependencies are built.
