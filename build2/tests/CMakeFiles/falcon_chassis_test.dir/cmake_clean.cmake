file(REMOVE_RECURSE
  "CMakeFiles/falcon_chassis_test.dir/falcon_chassis_test.cpp.o"
  "CMakeFiles/falcon_chassis_test.dir/falcon_chassis_test.cpp.o.d"
  "falcon_chassis_test"
  "falcon_chassis_test.pdb"
  "falcon_chassis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_chassis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
