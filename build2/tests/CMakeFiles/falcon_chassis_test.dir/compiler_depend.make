# Empty compiler generated dependencies file for falcon_chassis_test.
# This may be replaced when dependencies are built.
