# Empty dependencies file for dl_trainer_test.
# This may be replaced when dependencies are built.
