file(REMOVE_RECURSE
  "CMakeFiles/dl_trainer_test.dir/dl_trainer_test.cpp.o"
  "CMakeFiles/dl_trainer_test.dir/dl_trainer_test.cpp.o.d"
  "dl_trainer_test"
  "dl_trainer_test.pdb"
  "dl_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
