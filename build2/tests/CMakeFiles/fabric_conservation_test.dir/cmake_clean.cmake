file(REMOVE_RECURSE
  "CMakeFiles/fabric_conservation_test.dir/fabric_conservation_test.cpp.o"
  "CMakeFiles/fabric_conservation_test.dir/fabric_conservation_test.cpp.o.d"
  "fabric_conservation_test"
  "fabric_conservation_test.pdb"
  "fabric_conservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
