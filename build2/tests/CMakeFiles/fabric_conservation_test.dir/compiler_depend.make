# Empty compiler generated dependencies file for fabric_conservation_test.
# This may be replaced when dependencies are built.
