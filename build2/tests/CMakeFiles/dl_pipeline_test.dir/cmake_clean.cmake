file(REMOVE_RECURSE
  "CMakeFiles/dl_pipeline_test.dir/dl_pipeline_test.cpp.o"
  "CMakeFiles/dl_pipeline_test.dir/dl_pipeline_test.cpp.o.d"
  "dl_pipeline_test"
  "dl_pipeline_test.pdb"
  "dl_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
