# Empty dependencies file for dl_pipeline_test.
# This may be replaced when dependencies are built.
