file(REMOVE_RECURSE
  "CMakeFiles/fabric_solver_equivalence_test.dir/fabric_solver_equivalence_test.cpp.o"
  "CMakeFiles/fabric_solver_equivalence_test.dir/fabric_solver_equivalence_test.cpp.o.d"
  "fabric_solver_equivalence_test"
  "fabric_solver_equivalence_test.pdb"
  "fabric_solver_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_solver_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
