# Empty dependencies file for fabric_solver_equivalence_test.
# This may be replaced when dependencies are built.
