# Empty dependencies file for integration_ext_test.
# This may be replaced when dependencies are built.
