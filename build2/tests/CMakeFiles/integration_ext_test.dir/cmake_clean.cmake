file(REMOVE_RECURSE
  "CMakeFiles/integration_ext_test.dir/integration_ext_test.cpp.o"
  "CMakeFiles/integration_ext_test.dir/integration_ext_test.cpp.o.d"
  "integration_ext_test"
  "integration_ext_test.pdb"
  "integration_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
