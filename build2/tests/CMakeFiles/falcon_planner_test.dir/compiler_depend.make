# Empty compiler generated dependencies file for falcon_planner_test.
# This may be replaced when dependencies are built.
