file(REMOVE_RECURSE
  "CMakeFiles/falcon_planner_test.dir/falcon_planner_test.cpp.o"
  "CMakeFiles/falcon_planner_test.dir/falcon_planner_test.cpp.o.d"
  "falcon_planner_test"
  "falcon_planner_test.pdb"
  "falcon_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
