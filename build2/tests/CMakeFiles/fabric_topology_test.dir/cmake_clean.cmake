file(REMOVE_RECURSE
  "CMakeFiles/fabric_topology_test.dir/fabric_topology_test.cpp.o"
  "CMakeFiles/fabric_topology_test.dir/fabric_topology_test.cpp.o.d"
  "fabric_topology_test"
  "fabric_topology_test.pdb"
  "fabric_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
