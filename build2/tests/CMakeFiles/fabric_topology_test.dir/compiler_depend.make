# Empty compiler generated dependencies file for fabric_topology_test.
# This may be replaced when dependencies are built.
