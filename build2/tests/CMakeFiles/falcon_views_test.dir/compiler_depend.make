# Empty compiler generated dependencies file for falcon_views_test.
# This may be replaced when dependencies are built.
