file(REMOVE_RECURSE
  "CMakeFiles/falcon_views_test.dir/falcon_views_test.cpp.o"
  "CMakeFiles/falcon_views_test.dir/falcon_views_test.cpp.o.d"
  "falcon_views_test"
  "falcon_views_test.pdb"
  "falcon_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
