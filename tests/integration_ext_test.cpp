// Additional end-to-end scenarios: the 16-GPU composition through the
// Experiment API, DP on the Falcon fabric, BMC thermal coupling during
// training, and the advanced-mode re-balancing story under load.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "falcon/topology_view.hpp"

namespace composim::core {
namespace {

TEST(ExtendedIntegration, SixteenGpuExperimentRuns) {
  ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 5;
  const auto r = Experiment::run(SystemConfig::AllGpus16, dl::workload("ResNet-50"), opt);
  EXPECT_TRUE(r.training.completed);
  // 16 GPUs at ~1000 img/s each, minus pipeline-priming noise in a
  // 5-iteration run: still well clear of what 8 GPUs can do (~8000).
  EXPECT_GT(r.training.samples_per_second, 10500.0);
  EXPECT_GT(r.falcon_pcie_gbs, 1.0);  // half the ring is falcon-attached
}

TEST(ExtendedIntegration, DataParallelSuffersMoreOnFalcon) {
  // DP's master-centric traffic is hurt worse by the slow fabric than
  // DDP's overlapped ring: the Fig 16 gap widens on falconGPUs.
  auto ratio = [](dl::Strategy strategy) {
    ExperimentOptions opt;
    opt.trainer.epochs = 1;
    opt.trainer.max_iterations_per_epoch = 5;
    opt.trainer.strategy = strategy;
    opt.trainer.batch_per_gpu = 4;
    const auto local =
        Experiment::run(SystemConfig::LocalGpus, dl::workload("BERT-L"), opt);
    const auto falcon =
        Experiment::run(SystemConfig::FalconGpus, dl::workload("BERT-L"), opt);
    return falcon.training.mean_iteration_time /
           local.training.mean_iteration_time;
  };
  const double ddp = ratio(dl::Strategy::DistributedDataParallel);
  const double dp = ratio(dl::Strategy::DataParallel);
  EXPECT_GT(dp, ddp);
}

TEST(ExtendedIntegration, FalconGpuActivityHeatsTheDrawers) {
  ComposableSystem sys(SystemConfig::FalconGpus);
  const auto idle = sys.bmc().readTemperatures();
  auto gpus = sys.trainingGpus();
  devices::KernelDesc k;
  k.flops = 1e13;
  k.efficiency = 0.2;  // ~0.4 s per kernel
  for (auto* g : gpus) g->launchKernel(k, nullptr);
  // Let the kernels run before sampling: the thermal sources report the
  // busy fraction of the elapsed window.
  sys.sim().runUntil(0.2);
  const auto busy = sys.bmc().readTemperatures();
  EXPECT_GT(busy.drawer_celsius[0], idle.drawer_celsius[0] + 15.0);
  EXPECT_GT(busy.drawer_celsius[1], idle.drawer_celsius[1] + 15.0);
  sys.sim().run();
}

TEST(ExtendedIntegration, ViewsRenderForEveryBuiltConfiguration) {
  for (const auto config : allConfigs()) {
    ComposableSystem sys(config);
    const auto topoView = falcon::renderTopologyView(sys.chassis());
    EXPECT_NE(topoView.find("Falcon 4016"), std::string::npos) << toString(config);
    const auto traffic = falcon::renderPortTraffic(sys.chassis(), sys.topology());
    EXPECT_NE(traffic.find("port H1"), std::string::npos) << toString(config);
  }
}

TEST(ExtendedIntegration, HybridUsesFlatRingNotHierarchical) {
  // DESIGN.md §8: with one NVLink island plus singleton falcon GPUs, a
  // crossing-minimizing flat ring beats the hierarchical phases.
  ComposableSystem sys(SystemConfig::HybridGpus);
  std::vector<fabric::NodeId> ranks;
  for (auto* g : sys.trainingGpus()) ranks.push_back(g->node());
  collectives::Communicator comm(sys.sim(), sys.network(), sys.topology(), ranks);
  EXPECT_EQ(comm.chooseAlgorithm(), collectives::Algorithm::Ring);
  const auto islands = comm.nvlinkIslands();
  EXPECT_EQ(islands.size(), 5u);  // one quad + four singletons
}

TEST(ExtendedIntegration, CheckpointTraversesFalconForFalconNvme) {
  ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 3;
  const auto r = Experiment::run(SystemConfig::FalconNvme, dl::workload("ResNet-50"), opt);
  EXPECT_TRUE(r.training.completed);
  EXPECT_GT(r.training.checkpoint_bytes, 0);
  // The checkpoint write is the only Falcon traffic in this config: the
  // NVMe slot link must have carried it.
  EXPECT_GT(r.training.checkpoint_time, 0.0);
}

}  // namespace
}  // namespace composim::core
