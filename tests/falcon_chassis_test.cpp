// Tests for the Falcon 4016 chassis: wiring, modes of operation (Fig 4),
// attach/detach rules.
#include <gtest/gtest.h>

#include "falcon/bmc.hpp"
#include "falcon/chassis.hpp"

namespace composim::falcon {
namespace {

struct ChassisFixture : ::testing::Test {
  Simulator sim;
  fabric::Topology topo;
  FalconChassis chassis{sim, topo, "falcon0"};
  fabric::NodeId hostA = topo.addNode("hostA", fabric::NodeKind::CpuRootComplex);
  fabric::NodeId hostB = topo.addNode("hostB", fabric::NodeKind::CpuRootComplex);
  fabric::NodeId hostC = topo.addNode("hostC", fabric::NodeKind::CpuRootComplex);

  fabric::NodeId addGpu(SlotId slot) {
    const std::string name = "g" + std::to_string(slot.drawer) + "_" +
                             std::to_string(slot.index);
    const fabric::NodeId n = topo.addNode(name, fabric::NodeKind::Gpu);
    EXPECT_TRUE(chassis.installDevice(slot, DeviceType::Gpu, name, n));
    return n;
  }
};

TEST_F(ChassisFixture, PortWiringMatchesDrawers) {
  EXPECT_EQ(chassis.hostPort(0).drawer, 0);
  EXPECT_EQ(chassis.hostPort(1).drawer, 0);
  EXPECT_EQ(chassis.hostPort(2).drawer, 1);
  EXPECT_EQ(chassis.hostPort(3).drawer, 1);
  EXPECT_EQ(chassis.hostPort(0).label, "H1");
  EXPECT_EQ(chassis.hostPort(3).label, "H4");
}

TEST_F(ChassisFixture, ConnectHostCreatesFabricPath) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  const fabric::NodeId gpu = addGpu({0, 0});
  auto r = topo.route(hostA, gpu);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->links.size(), 2u);  // host adapter + slot link
}

TEST_F(ChassisFixture, DoubleConnectRejected) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  EXPECT_FALSE(chassis.connectHost(0, hostB, "hostB"));
  EXPECT_FALSE(chassis.connectHost(4, hostB, "hostB"));
  EXPECT_FALSE(chassis.connectHost(-1, hostB, "hostB"));
}

TEST_F(ChassisFixture, InstallRejectsOccupiedSlotAndBadIds) {
  addGpu({0, 0});
  const fabric::NodeId n = topo.addNode("dup", fabric::NodeKind::Gpu);
  EXPECT_FALSE(chassis.installDevice({0, 0}, DeviceType::Gpu, "dup", n));
  EXPECT_FALSE(chassis.installDevice({2, 0}, DeviceType::Gpu, "dup", n));
  EXPECT_FALSE(chassis.installDevice({0, 8}, DeviceType::Gpu, "dup", n));
}

TEST_F(ChassisFixture, StandardModeOneHostTakesAllEight) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  for (int s = 0; s < 8; ++s) {
    addGpu({0, s});
    EXPECT_TRUE(chassis.attach({0, s}, 0)) << "slot " << s;
  }
  EXPECT_EQ(chassis.devicesAssignedTo(0).size(), 8u);
  EXPECT_EQ(chassis.hostsUsingDrawer(0), 1);
}

TEST_F(ChassisFixture, StandardModeTwoHostsSplitInFixedHalves) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  ASSERT_TRUE(chassis.connectHost(1, hostB, "hostB"));
  for (int s = 0; s < 8; ++s) addGpu({0, s});
  // Lower port gets 0-3, higher port gets 4-7.
  EXPECT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_TRUE(chassis.attach({0, 4}, 1));
  // Violations of the halves are rejected.
  EXPECT_FALSE(chassis.attach({0, 1}, 1));
  EXPECT_FALSE(chassis.attach({0, 5}, 0));
  EXPECT_TRUE(chassis.attach({0, 1}, 0));
  EXPECT_TRUE(chassis.attach({0, 5}, 1));
}

TEST_F(ChassisFixture, StandardModeRejectsThirdHost) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  ASSERT_TRUE(chassis.connectHost(1, hostB, "hostB"));
  for (int s = 0; s < 8; ++s) addGpu({0, s});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  ASSERT_TRUE(chassis.attach({0, 4}, 1));
  // Reconnect a third tenant is impossible: both drawer-0 ports taken.
  EXPECT_FALSE(chassis.connectHost(0, hostC, "hostC"));
}

TEST_F(ChassisFixture, AdvancedModeAllowsArbitrarySplitsUpToThreeHosts) {
  ASSERT_TRUE(chassis.setDrawerMode(0, DrawerMode::Advanced));
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  ASSERT_TRUE(chassis.connectHost(1, hostB, "hostB"));
  for (int s = 0; s < 8; ++s) addGpu({0, s});
  // Interleaved assignment would violate Standard halves; Advanced is fine.
  EXPECT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_TRUE(chassis.attach({0, 1}, 1));
  EXPECT_TRUE(chassis.attach({0, 2}, 0));
  EXPECT_TRUE(chassis.attach({0, 3}, 1));
}

TEST_F(ChassisFixture, AttachValidation) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  ASSERT_TRUE(chassis.connectHost(2, hostB, "hostB"));
  addGpu({0, 0});
  EXPECT_FALSE(chassis.attach({0, 1}, 0));   // empty slot
  EXPECT_FALSE(chassis.attach({0, 0}, 1));   // port has no host
  EXPECT_FALSE(chassis.attach({0, 0}, 2));   // port wired to other drawer
  EXPECT_FALSE(chassis.attach({0, 0}, 9));   // bad port
  EXPECT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_TRUE(chassis.attach({0, 0}, 0));    // idempotent
  EXPECT_FALSE(chassis.attach({0, 0}, 1));   // already attached elsewhere
}

TEST_F(ChassisFixture, DetachAndReattachElsewhere) {
  ASSERT_TRUE(chassis.setDrawerMode(0, DrawerMode::Advanced));
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  ASSERT_TRUE(chassis.connectHost(1, hostB, "hostB"));
  addGpu({0, 0});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_TRUE(chassis.detach({0, 0}));
  EXPECT_FALSE(chassis.detach({0, 0}));  // already detached
  EXPECT_TRUE(chassis.attach({0, 0}, 1));
  EXPECT_EQ(chassis.assignedPort({0, 0}), 1);
}

TEST_F(ChassisFixture, RemoveDeviceRequiresDetach) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  addGpu({0, 0});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_FALSE(chassis.removeDevice({0, 0}));
  ASSERT_TRUE(chassis.detach({0, 0}));
  EXPECT_TRUE(chassis.removeDevice({0, 0}));
  EXPECT_FALSE(chassis.slot({0, 0}).occupied);
  EXPECT_FALSE(chassis.removeDevice({0, 0}));  // now empty
}

TEST_F(ChassisFixture, ModeDowngradeBlockedWhileAttached) {
  ASSERT_TRUE(chassis.setDrawerMode(0, DrawerMode::Advanced));
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  addGpu({0, 0});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_FALSE(chassis.setDrawerMode(0, DrawerMode::Standard));
  ASSERT_TRUE(chassis.detach({0, 0}));
  EXPECT_TRUE(chassis.setDrawerMode(0, DrawerMode::Standard));
}

TEST_F(ChassisFixture, DisconnectHostRequiresNoAssignments) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  addGpu({0, 0});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  EXPECT_FALSE(chassis.disconnectHost(0));
  ASSERT_TRUE(chassis.detach({0, 0}));
  EXPECT_TRUE(chassis.disconnectHost(0));
  EXPECT_FALSE(chassis.hostPort(0).connected);
  // The fabric path is gone.
  EXPECT_FALSE(topo.route(hostA, chassis.slot({0, 0}).device_node).has_value());
}

TEST_F(ChassisFixture, ResourceListReflectsAssignments) {
  ASSERT_TRUE(chassis.connectHost(0, hostA, "alice"));
  addGpu({0, 0});
  addGpu({0, 1});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  const auto rows = chassis.resourceList();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].host_name, "alice");
  EXPECT_EQ(rows[1].host_name, "");
  EXPECT_EQ(rows[0].link_speed, "PCI-e 4.0 x16");
}

TEST_F(ChassisFixture, EventsReachTheBmc) {
  Bmc bmc(sim, chassis, "SER-1");
  ASSERT_TRUE(chassis.connectHost(0, hostA, "hostA"));
  addGpu({0, 0});
  ASSERT_TRUE(chassis.attach({0, 0}, 0));
  ASSERT_TRUE(chassis.detach({0, 0}));
  EXPECT_GE(bmc.eventLog().size(), 4u);
}

}  // namespace
}  // namespace composim::falcon
