// WorkloadRegistry: the name -> ModelSpec front door that replaced the
// zoo's free factory functions — lookup, registration, dataset
// association, "graph:<path>" resolution, and the deprecated wrappers'
// equivalence contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "dl/workload_registry.hpp"
#include "dl/zoo.hpp"

namespace composim {
namespace {

TEST(WorkloadRegistry, BuiltinsRegisteredInOrder) {
  const auto names = dl::WorkloadRegistry::instance().names();
  const std::vector<std::string> want = {
      "MobileNetV2", "ResNet-50", "YOLOv5-L",     "BERT",
      "BERT-L",      "GPT-2-medium", "ViT-B/16"};
  ASSERT_GE(names.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(names[i], want[i]);
}

TEST(WorkloadRegistry, ModelLookupBuildsSpec) {
  dl::ModelSpec m;
  ASSERT_TRUE(dl::WorkloadRegistry::instance().model("ResNet-50", &m).ok);
  EXPECT_EQ(m.name, "ResNet-50");
  EXPECT_EQ(m.totalParams(), 25557032);
}

TEST(WorkloadRegistry, UnknownNameIsNotFoundAndListsKnown) {
  dl::ModelSpec m;
  const Status s = dl::WorkloadRegistry::instance().model("AlexNet", &m);
  EXPECT_EQ(s.code, StatusCode::NotFound);
  EXPECT_NE(s.detail.find("ResNet-50"), std::string::npos) << s.detail;
  EXPECT_NE(s.detail.find("graph:<path>"), std::string::npos) << s.detail;
}

TEST(WorkloadRegistry, BenchmarkZooMatchesPaperZoo) {
  const auto zoo = dl::benchmarkZoo();
  const auto paper = dl::WorkloadRegistry::instance().paperZoo();
  ASSERT_EQ(zoo.size(), 5u);
  ASSERT_EQ(paper.size(), 5u);
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(zoo[i].name, paper[i].name);
    EXPECT_EQ(zoo[i].totalParams(), paper[i].totalParams());
  }
}

TEST(WorkloadRegistry, LookupResolvesEveryZooModelByName) {
  EXPECT_EQ(dl::workload("ResNet-50").name, "ResNet-50");
  EXPECT_EQ(dl::workload("BERT-L").name, "BERT-L");
  EXPECT_EQ(dl::workload("GPT-2-medium").name, "GPT-2-medium");
  EXPECT_EQ(dl::workload("ViT-B/16").name, "ViT-B/16");
  EXPECT_EQ(dl::workload("MobileNetV2").name, "MobileNetV2");
  EXPECT_EQ(dl::workload("YOLOv5-L").name, "YOLOv5-L");
  EXPECT_EQ(dl::workload("BERT").name, "BERT");
}

TEST(WorkloadRegistry, AddRejectsDuplicatesAndNullFactories) {
  auto& reg = dl::WorkloadRegistry::instance();
  dl::WorkloadRegistry::Entry dup;
  dup.name = "ResNet-50";
  dup.factory = [] { return dl::ModelSpec{}; };
  EXPECT_EQ(reg.add(dup).code, StatusCode::AlreadyExists);

  dl::WorkloadRegistry::Entry hollow;
  hollow.name = "hollow";
  EXPECT_EQ(reg.add(hollow).code, StatusCode::InvalidArgument);
}

TEST(WorkloadRegistry, CustomWorkloadRegistersAndResolves) {
  auto& reg = dl::WorkloadRegistry::instance();
  dl::WorkloadRegistry::Entry e;
  e.name = "unit-test-model";
  e.dataset = "ImageNet";
  e.description = "registered by workload_registry_test";
  e.factory = [] {
    dl::ModelSpec m;
    m.name = "unit-test-model";
    m.dataset = "ImageNet";
    m.layers.push_back({"fc", dl::LayerKind::Linear, 1000, 2000.0, 64});
    return m;
  };
  ASSERT_TRUE(reg.add(e).ok);
  EXPECT_TRUE(reg.hasWorkload("unit-test-model"));
  EXPECT_EQ(dl::workload("unit-test-model").totalParams(), 1000);
  // Registered entries never join the paper zoo uninvited.
  for (const auto& m : reg.paperZoo()) EXPECT_NE(m.name, "unit-test-model");
}

TEST(WorkloadRegistry, DatasetAssociationCoversBuiltins) {
  auto& reg = dl::WorkloadRegistry::instance();
  const auto names = reg.datasetNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "ImageNet"), names.end());
  for (const std::string w :
       {"MobileNetV2", "ResNet-50", "YOLOv5-L", "BERT", "BERT-L",
        "GPT-2-medium", "ViT-B/16"}) {
    dl::ModelSpec m;
    ASSERT_TRUE(reg.model(w, &m).ok);
    dl::DatasetSpec d;
    EXPECT_TRUE(reg.dataset(m.dataset, &d).ok)
        << w << " -> " << m.dataset;
    EXPECT_GT(d.train_samples, 0);
  }
}

TEST(WorkloadRegistry, DatasetDuplicateAndMissing) {
  auto& reg = dl::WorkloadRegistry::instance();
  dl::DatasetSpec d;
  d.name = "ImageNet";
  d.train_samples = 1;
  EXPECT_EQ(reg.addDataset(d).code, StatusCode::AlreadyExists);
  dl::DatasetSpec out;
  EXPECT_EQ(reg.dataset("NoSuchData", &out).code, StatusCode::NotFound);
}

TEST(WorkloadRegistry, DatasetForUnregisteredThrows) {
  dl::ModelSpec orphan;
  orphan.name = "orphan";
  orphan.dataset = "NoSuchData";
  EXPECT_THROW(dl::datasetFor(orphan), std::invalid_argument);
}

TEST(WorkloadRegistry, ResolveRejectsBadGraphReference) {
  dl::ModelSpec m;
  const Status s = dl::WorkloadRegistry::instance().resolve(
      "graph:/no/such/file.graph.json", &m);
  EXPECT_EQ(s.code, StatusCode::NotFound);
  EXPECT_THROW(dl::workload("graph:/no/such/file.graph.json"),
               std::invalid_argument);
}

}  // namespace
}  // namespace composim
