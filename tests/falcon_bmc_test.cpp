// Tests for the BMC: sensors, event log, link health (paper §II-B).
#include <gtest/gtest.h>

#include "falcon/bmc.hpp"

namespace composim::falcon {
namespace {

struct BmcFixture : ::testing::Test {
  Simulator sim;
  fabric::Topology topo;
  FalconChassis chassis{sim, topo, "falcon0"};
  Bmc bmc{sim, chassis, "FAL-0001"};
  fabric::NodeId host = topo.addNode("host", fabric::NodeKind::CpuRootComplex);
};

TEST_F(BmcFixture, SystemInfoCarriesModelSerialUptime) {
  sim.schedule(12.5, [] {});
  sim.run();
  const auto info = bmc.systemInfo();
  EXPECT_EQ(info.model, "Falcon 4016");
  EXPECT_EQ(info.serial, "FAL-0001");
  EXPECT_DOUBLE_EQ(info.uptime, 12.5);
}

TEST_F(BmcFixture, EventSeverityFilter) {
  bmc.logEvent("info", "a");
  bmc.logEvent("warning", "b");
  bmc.logEvent("alert", "c");
  EXPECT_EQ(bmc.exportEvents("info").size(), 3u);
  EXPECT_EQ(bmc.exportEvents("warning").size(), 2u);
  EXPECT_EQ(bmc.exportEvents("alert").size(), 1u);
  bmc.clearEventLog();
  EXPECT_TRUE(bmc.eventLog().empty());
}

TEST_F(BmcFixture, TemperatureFollowsActivity) {
  double activity = 0.0;
  bmc.registerThermalSource(0, [&] { return activity; });
  const auto idle = bmc.readTemperatures();
  activity = 1.0;
  const auto busy = bmc.readTemperatures();
  EXPECT_GT(busy.drawer_celsius[0], idle.drawer_celsius[0] + 20.0);
  EXPECT_GT(busy.fan_rpm, idle.fan_rpm);
  EXPECT_NEAR(idle.drawer_celsius[1], idle.drawer_celsius[0], 1e-9);
}

TEST_F(BmcFixture, AlertOnThresholdExcursion) {
  double activity = 1.0;
  bmc.registerThermalSource(1, [&] { return activity; });
  bmc.setAlertThreshold(50.0);
  bmc.sampleSensors();
  const auto alerts = bmc.exportEvents("alert");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_NE(alerts[0].message.find("drawer 1"), std::string::npos);
}

TEST_F(BmcFixture, PeriodicSamplingRunsUntilStopped) {
  double activity = 1.0;
  bmc.registerThermalSource(0, [&] { return activity; });
  bmc.setAlertThreshold(30.0);
  bmc.startPeriodicSampling(1.0);
  sim.runUntil(5.5);
  bmc.stopPeriodicSampling();
  sim.run();
  EXPECT_EQ(bmc.exportEvents("alert").size(), 5u);  // t=1..5
}

TEST_F(BmcFixture, LinkHealthReportsPerSlotTraffic) {
  ASSERT_TRUE(chassis.connectHost(0, host, "host"));
  const fabric::NodeId g = topo.addNode("g", fabric::NodeKind::Gpu);
  ASSERT_TRUE(chassis.installDevice({0, 0}, DeviceType::Gpu, "g", g));
  const auto& info = chassis.slot({0, 0});
  topo.counters(info.link_up).bytes = 1000;     // device egress
  topo.counters(info.link_down).bytes = 500;    // device ingress
  topo.counters(info.link_up).errors = 2;
  const auto rows = bmc.linkHealth();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].up);
  EXPECT_EQ(rows[0].bytes_egress, 1000);
  EXPECT_EQ(rows[0].bytes_ingress, 500);
  EXPECT_EQ(rows[0].accumulated_errors, 2u);
  EXPECT_EQ(bmc.drawerThroughputBytes(0), 1500);
  EXPECT_EQ(bmc.drawerThroughputBytes(1), 0);
}

TEST_F(BmcFixture, LinkHealthFlagsDownLinks) {
  const fabric::NodeId g = topo.addNode("g", fabric::NodeKind::Gpu);
  ASSERT_TRUE(chassis.installDevice({1, 3}, DeviceType::Gpu, "g", g));
  topo.setLinkUp(chassis.slot({1, 3}).link_up, false);
  const auto rows = bmc.linkHealth();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].up);
}

}  // namespace
}  // namespace composim::falcon
