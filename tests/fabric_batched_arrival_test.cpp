// Batched-arrival equivalence: startFlows()/cancelFlows() must produce
// bit-identical rates, completion times, statuses, and link byte counters
// to one-at-a-time startFlow()/cancelFlow() calls at the same timestamp —
// the intermediate solves of a serial arrival sequence are transient and
// fully overwritten by the last one. Replays run the same scenario with
// job sizes 1 (serial), 4, and whole-wave, in both incremental and full
// solver modes. What batching is allowed to change: the recomputation
// counter (one solve epoch per wave instead of one per flow).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fabric/flow_network.hpp"
#include "sim/random.hpp"
#include "sim/units.hpp"

namespace composim::fabric {
namespace {

struct Arrival {
  std::size_t src = 0, dst = 0;
  Bytes bytes = 0;
  FlowOptions options;
};

struct Wave {
  SimTime time = 0.0;
  std::vector<Arrival> arrivals;
  std::vector<std::size_t> cancels;  // global arrival indices to cancel
};

struct Scenario {
  int pods = 2;
  int leaves_per_pod = 4;
  std::vector<double> capacities;
  std::vector<Wave> waves;
  std::size_t arrival_count = 0;
};

Scenario makeScenario(std::uint64_t seed) {
  Scenario sc;
  Rng rng(seed * 104729 + 7);
  const int total_leaves = sc.pods * sc.leaves_per_pod;
  for (int i = 0; i < total_leaves; ++i) {
    sc.capacities.push_back(units::GBps(rng.uniform(2.0, 12.0)));
  }
  const int wave_count = 6;
  for (int w = 0; w < wave_count; ++w) {
    Wave wave;
    wave.time = 0.02 * (w + 1) + rng.uniform(0.0, 0.015);
    const int arrivals = rng.uniformInt(3, 8);
    for (int i = 0; i < arrivals; ++i) {
      Arrival a;
      const int pod = rng.uniformInt(0, sc.pods - 1);
      const int s = rng.uniformInt(0, sc.leaves_per_pod - 1);
      int d = rng.uniformInt(0, sc.leaves_per_pod - 1);
      if (d == s) d = (d + 1) % sc.leaves_per_pod;
      a.src = static_cast<std::size_t>(pod * sc.leaves_per_pod + s);
      a.dst = static_cast<std::size_t>(pod * sc.leaves_per_pod + d);
      a.bytes = units::MiB(rng.uniformInt(1, 48));
      if (rng.uniform() < 0.25) a.options.maxRate = units::GBps(rng.uniform(0.5, 3.0));
      if (rng.uniform() < 0.25) {
        a.options.extraLatency = units::microseconds(rng.uniform(1.0, 20.0));
      }
      // Sprinkle latency-only (same-node) and zero-byte transfers into the
      // batch so mixed admission order is exercised.
      if (rng.uniform() < 0.15) a.dst = a.src;
      if (rng.uniform() < 0.1) a.bytes = 0;
      wave.arrivals.push_back(a);
      ++sc.arrival_count;
    }
    // Later waves cancel a few earlier arrivals as one batched teardown.
    if (w >= 2) {
      const int cancels = rng.uniformInt(0, 3);
      for (int c = 0; c < cancels; ++c) {
        wave.cancels.push_back(static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(sc.arrival_count) - 1)));
      }
    }
    sc.waves.push_back(std::move(wave));
  }
  return sc;
}

struct Outcome {
  std::vector<double> rate_samples;
  std::vector<int> statuses;
  std::vector<Bytes> bytes;
  std::vector<SimTime> end_times;
  std::vector<Bytes> link_bytes;
  std::uint64_t completed = 0, failed = 0;
  std::uint64_t recomputations = 0;
};

/// job == 0 means "whole wave in one startFlows/cancelFlows call";
/// job == 1 is the serial reference via startFlow/cancelFlow.
Outcome replay(const Scenario& sc, std::size_t job, bool incremental) {
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  net.setIncrementalSolve(incremental);

  std::vector<NodeId> leaves;
  std::vector<LinkId> links;
  for (int p = 0; p < sc.pods; ++p) {
    const NodeId hub = topo.addNode("hub" + std::to_string(p), NodeKind::PcieSwitch);
    for (int l = 0; l < sc.leaves_per_pod; ++l) {
      const NodeId leaf = topo.addNode(
          "leaf" + std::to_string(p) + "_" + std::to_string(l), NodeKind::Gpu);
      const auto idx = leaves.size();
      auto [fwd, rev] = topo.addDuplexLink(leaf, hub, sc.capacities[idx], 0.0,
                                           LinkKind::PCIe4);
      leaves.push_back(leaf);
      links.push_back(fwd);
      links.push_back(rev);
    }
  }

  Outcome out;
  out.statuses.assign(sc.arrival_count, -1);
  out.bytes.assign(sc.arrival_count, 0);
  out.end_times.assign(sc.arrival_count, 0.0);
  std::vector<FlowId> ids(sc.arrival_count, kInvalidFlow);

  std::size_t base = 0;
  for (const Wave& wave : sc.waves) {
    const std::size_t wave_base = base;
    base += wave.arrivals.size();
    sim.schedule(wave.time, [&, wave_base, &wave = wave] {
      const auto record = [&out](std::size_t idx) {
        return [&out, idx](const FlowResult& r) {
          out.statuses[idx] = static_cast<int>(r.status);
          out.bytes[idx] = r.bytes;
          out.end_times[idx] = r.end;
        };
      };
      const std::size_t group = job == 0 ? wave.arrivals.size() : job;
      for (std::size_t g = 0; g < wave.arrivals.size(); g += group) {
        const std::size_t end = std::min(wave.arrivals.size(), g + group);
        if (group == 1) {
          const Arrival& a = wave.arrivals[g];
          ids[wave_base + g] = net.startFlow(leaves[a.src], leaves[a.dst],
                                             a.bytes, record(wave_base + g),
                                             a.options);
        } else {
          std::vector<FlowRequest> batch;
          batch.reserve(end - g);
          for (std::size_t i = g; i < end; ++i) {
            const Arrival& a = wave.arrivals[i];
            FlowRequest rq;
            rq.src = leaves[a.src];
            rq.dst = leaves[a.dst];
            rq.bytes = a.bytes;
            rq.done = record(wave_base + i);
            rq.options = a.options;
            batch.push_back(std::move(rq));
          }
          const auto got = net.startFlows(std::move(batch));
          for (std::size_t i = g; i < end; ++i) ids[i - g + wave_base + g] = got[i - g];
        }
      }
      // Batched teardown of earlier arrivals (ids may already be done —
      // deterministic no-ops either way).
      if (!wave.cancels.empty()) {
        if (group == 1) {
          for (std::size_t idx : wave.cancels) net.cancelFlow(ids[idx]);
        } else {
          std::vector<FlowId> victims;
          victims.reserve(wave.cancels.size());
          for (std::size_t idx : wave.cancels) victims.push_back(ids[idx]);
          net.cancelFlows(victims);
        }
      }
      for (FlowId id : ids) out.rate_samples.push_back(net.flowRate(id));
    });
  }
  sim.run();
  for (LinkId l : links) out.link_bytes.push_back(net.linkBytes(l));
  out.completed = net.flowsCompleted();
  out.failed = net.flowsFailed();
  out.recomputations = net.rateRecomputations();
  return out;
}

void expectSameResults(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.rate_samples.size(), b.rate_samples.size());
  for (std::size_t i = 0; i < a.rate_samples.size(); ++i) {
    // EXPECT_EQ on doubles: exact equality, not a tolerance.
    EXPECT_EQ(a.rate_samples[i], b.rate_samples[i]) << "sample " << i;
  }
  ASSERT_EQ(a.statuses.size(), b.statuses.size());
  for (std::size_t i = 0; i < a.statuses.size(); ++i) {
    EXPECT_EQ(a.statuses[i], b.statuses[i]) << "flow " << i;
    EXPECT_EQ(a.bytes[i], b.bytes[i]) << "flow " << i;
    EXPECT_EQ(a.end_times[i], b.end_times[i]) << "flow " << i;
  }
  EXPECT_EQ(a.link_bytes, b.link_bytes);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
}

class BatchedArrival : public ::testing::TestWithParam<int> {};

TEST_P(BatchedArrival, JobsOneVsFourVsWaveBitIdentical) {
  const auto sc = makeScenario(static_cast<std::uint64_t>(GetParam()));
  const Outcome serial = replay(sc, 1, /*incremental=*/true);
  const Outcome four = replay(sc, 4, /*incremental=*/true);
  const Outcome wave = replay(sc, 0, /*incremental=*/true);
  expectSameResults(serial, four);
  expectSameResults(serial, wave);
  // Coalescing strictly reduces solve epochs (any wave has >1 arrival).
  EXPECT_LT(wave.recomputations, serial.recomputations);
}

TEST_P(BatchedArrival, BatchedFullModeMatchesBatchedIncremental) {
  const auto sc = makeScenario(static_cast<std::uint64_t>(GetParam()));
  const Outcome inc = replay(sc, 0, /*incremental=*/true);
  const Outcome full = replay(sc, 0, /*incremental=*/false);
  expectSameResults(inc, full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedArrival, ::testing::Range(1, 9));

TEST(BatchedArrivalApi, OneRecomputationPerBatchAndAlignedIds) {
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  const NodeId hub = topo.addNode("hub", NodeKind::PcieSwitch);
  std::vector<NodeId> gpus;
  for (int i = 0; i < 8; ++i) {
    gpus.push_back(topo.addNode("g" + std::to_string(i), NodeKind::Gpu));
    topo.addDuplexLink(gpus.back(), hub, units::GBps(10), 0.0, LinkKind::PCIe4);
  }
  const NodeId island = topo.addNode("island", NodeKind::Gpu);  // unroutable

  std::vector<FlowRequest> batch;
  for (int i = 0; i < 8; ++i) {
    FlowRequest rq;
    rq.src = gpus[static_cast<std::size_t>(i)];
    rq.dst = gpus[static_cast<std::size_t>((i + 1) % 8)];
    rq.bytes = units::MiB(4);
    batch.push_back(std::move(rq));
  }
  // Mixed entries: unroutable, same-node (latency-only), zero-byte.
  FlowRequest bad;
  bad.src = gpus[0];
  bad.dst = island;
  bad.bytes = units::MiB(1);
  batch.push_back(std::move(bad));
  FlowRequest same;
  same.src = gpus[1];
  same.dst = gpus[1];
  same.bytes = units::MiB(1);
  batch.push_back(std::move(same));
  FlowRequest zero;
  zero.src = gpus[2];
  zero.dst = gpus[3];
  zero.bytes = 0;
  batch.push_back(std::move(zero));

  const auto ids = net.startFlows(std::move(batch));
  ASSERT_EQ(ids.size(), 11u);
  for (int i = 0; i < 8; ++i) EXPECT_NE(ids[static_cast<std::size_t>(i)], kInvalidFlow);
  EXPECT_EQ(ids[8], kInvalidFlow);  // unroutable fails soft, keeps its slot
  EXPECT_NE(ids[9], kInvalidFlow);
  EXPECT_NE(ids[10], kInvalidFlow);
  // The whole 8-flow ring shares the hub: one union, ONE solve epoch.
  EXPECT_EQ(net.rateRecomputations(), 1u);
  EXPECT_EQ(net.activeFlows(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GT(net.flowRate(ids[static_cast<std::size_t>(i)]), 0.0);
  }

  // Batched teardown: one recomputation for the four cancels.
  const std::size_t before = net.rateRecomputations();
  EXPECT_EQ(net.cancelFlows({ids[0], ids[2], ids[4], kInvalidFlow}), 3u);
  EXPECT_EQ(net.rateRecomputations(), before + 1);
  EXPECT_EQ(net.activeFlows(), 5u);
  sim.run();
  EXPECT_EQ(net.flowsCompleted(), 7u);  // 5 byte flows + latency-only + zero-byte
  EXPECT_EQ(net.flowsFailed(), 4u);     // unroutable + 3 cancelled
}

TEST(BatchedArrivalApi, EmptyAndLatencyOnlyBatchesDoNotSolve) {
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  const NodeId a = topo.addNode("a", NodeKind::Gpu);
  EXPECT_TRUE(net.startFlows({}).empty());
  std::vector<FlowRequest> batch(2);
  batch[0].src = a;
  batch[0].dst = a;
  batch[0].bytes = units::KiB(1);
  batch[1].src = a;
  batch[1].dst = a;
  batch[1].bytes = 0;
  const auto ids = net.startFlows(std::move(batch));
  EXPECT_EQ(ids.size(), 2u);
  // Latency-only admissions never touch the solver.
  EXPECT_EQ(net.rateRecomputations(), 0u);
  sim.run();
  EXPECT_EQ(net.flowsCompleted(), 2u);
}

}  // namespace
}  // namespace composim::fabric
