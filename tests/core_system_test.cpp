// Tests for the Table III configuration builder.
#include <gtest/gtest.h>

#include "core/composable_system.hpp"

namespace composim::core {
namespace {

TEST(SystemConfigNames, MatchTableIII) {
  EXPECT_STREQ(toString(SystemConfig::LocalGpus), "localGPUs");
  EXPECT_STREQ(toString(SystemConfig::HybridGpus), "hybridGPUs");
  EXPECT_STREQ(toString(SystemConfig::FalconGpus), "falconGPUs");
  EXPECT_STREQ(toString(SystemConfig::LocalNvme), "localNVMe");
  EXPECT_STREQ(toString(SystemConfig::FalconNvme), "falconNVMe");
  EXPECT_EQ(allConfigs().size(), 5u);
  EXPECT_EQ(gpuConfigs().size(), 3u);
  EXPECT_EQ(storageConfigs().size(), 3u);
}

TEST(ComposableSystem, EveryConfigTrainsOnEightGpus) {
  for (const auto c : allConfigs()) {
    ComposableSystem sys(c);
    EXPECT_EQ(sys.trainingGpus().size(), 8u) << toString(c);
  }
}

TEST(ComposableSystem, LocalGpusAreNvlinkedSxm2) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  const auto gpus = sys.trainingGpus();
  for (const auto* g : gpus) {
    EXPECT_EQ(g->spec().name, "Tesla V100-SXM2-16GB");
  }
  // Adjacent ring GPUs reachable via one NVLink hop.
  auto r = sys.topology().route(gpus[0]->node(), gpus[1]->node());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(sys.topology().link(r->links[0]).kind, fabric::LinkKind::NVLink);
}

TEST(ComposableSystem, HybridMixesLocalAndFalcon) {
  ComposableSystem sys(SystemConfig::HybridGpus);
  const auto gpus = sys.trainingGpus();
  int local = 0, falcon = 0;
  for (const auto* g : gpus) {
    if (g->name().find("local") != std::string::npos) ++local;
    if (g->name().find("falcon") != std::string::npos) ++falcon;
  }
  EXPECT_EQ(local, 4);
  EXPECT_EQ(falcon, 4);
  // The falcon GPUs in hybrid come from drawer 0 and are attached to H1.
  EXPECT_EQ(sys.chassis().devicesAssignedTo(0).size(), 4u);
  EXPECT_EQ(sys.chassis().devicesAssignedTo(2).size(), 0u);
}

TEST(ComposableSystem, FalconGpusSpanBothDrawers) {
  ComposableSystem sys(SystemConfig::FalconGpus);
  EXPECT_EQ(sys.chassis().devicesAssignedTo(0).size(), 4u);
  EXPECT_EQ(sys.chassis().devicesAssignedTo(2).size(), 4u);
  for (const auto* g : sys.trainingGpus()) {
    EXPECT_EQ(g->spec().name, "Tesla V100-PCIE-16GB");
    EXPECT_EQ(g->spec().nvlink_bricks, 0);
  }
}

TEST(ComposableSystem, StorageSelectionFollowsTableIII) {
  EXPECT_EQ(ComposableSystem(SystemConfig::LocalGpus).trainingStorage().name(),
            "ssd.boot");
  EXPECT_EQ(ComposableSystem(SystemConfig::HybridGpus).trainingStorage().name(),
            "ssd.boot");
  EXPECT_EQ(ComposableSystem(SystemConfig::LocalNvme).trainingStorage().name(),
            "nvme.local");
  EXPECT_EQ(ComposableSystem(SystemConfig::FalconNvme).trainingStorage().name(),
            "nvme.falcon");
}

TEST(ComposableSystem, FalconNvmeIsReachedThroughTheChassis) {
  ComposableSystem sys(SystemConfig::FalconNvme);
  auto r = sys.topology().route(sys.falconNvme().node(), sys.hostMemory());
  ASSERT_TRUE(r.has_value());
  bool crossesHostAdapter = false;
  for (auto l : r->links) {
    if (sys.topology().link(l).kind == fabric::LinkKind::HostAdapter) {
      crossesHostAdapter = true;
    }
  }
  EXPECT_TRUE(crossesHostAdapter);
  // A local NVMe read does not touch the chassis.
  auto rl = sys.topology().route(sys.localNvme().node(), sys.hostMemory());
  ASSERT_TRUE(rl.has_value());
  for (auto l : rl->links) {
    EXPECT_NE(sys.topology().link(l).kind, fabric::LinkKind::HostAdapter);
  }
}

TEST(ComposableSystem, FalconPortCountersStartAtZero) {
  ComposableSystem sys(SystemConfig::FalconGpus);
  EXPECT_EQ(sys.falconGpuPortBytes(), 0);
}

TEST(ComposableSystem, FalconPortCountersSeeP2pTraffic) {
  ComposableSystem sys(SystemConfig::FalconGpus);
  const auto gpus = sys.trainingGpus();
  sys.network().startFlow(gpus[0]->node(), gpus[1]->node(), units::MiB(64),
                          [](const fabric::FlowResult&) {});
  sys.sim().run();
  EXPECT_NEAR(static_cast<double>(sys.falconGpuPortBytes()),
              2.0 * static_cast<double>(units::MiB(64)), 16.0);
}

TEST(ComposableSystem, McsHasAdminAccount) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  EXPECT_EQ(sys.mcs().roleOf("admin"), falcon::Role::Administrator);
}

TEST(ComposableSystem, DrawerActivityReflectsGpuBusyState) {
  ComposableSystem sys(SystemConfig::FalconGpus);
  EXPECT_DOUBLE_EQ(sys.drawerActivity(0), 0.0);
  devices::KernelDesc k;
  k.flops = 1e12;
  k.efficiency = 0.1;
  auto gpus = sys.trainingGpus();
  gpus[0]->launchKernel(k, nullptr);  // drawer 0 GPU
  EXPECT_DOUBLE_EQ(sys.drawerActivity(0), 0.25);  // 1 of 4 busy
  sys.sim().run();
  EXPECT_DOUBLE_EQ(sys.drawerActivity(0), 0.0);
}

}  // namespace
}  // namespace composim::core
