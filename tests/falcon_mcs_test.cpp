// Tests for the Management Center Server: multi-tenant authorization,
// ownership, audit, configuration import/export (paper §II-D).
#include <gtest/gtest.h>

#include "falcon/mcs.hpp"

namespace composim::falcon {
namespace {

struct McsFixture : ::testing::Test {
  Simulator sim;
  fabric::Topology topo;
  FalconChassis chassis{sim, topo, "falcon0"};
  Bmc bmc{sim, chassis, "FAL-0001"};
  Mcs mcs{chassis};
  fabric::NodeId host = topo.addNode("host", fabric::NodeKind::CpuRootComplex);

  void SetUp() override {
    ASSERT_TRUE(mcs.addUser("admin", Role::Administrator));
    ASSERT_TRUE(mcs.addUser("alice", Role::User));
    ASSERT_TRUE(mcs.addUser("bob", Role::User));
    ASSERT_TRUE(chassis.connectHost(0, host, "host"));
    for (int s = 0; s < 4; ++s) {
      const std::string name = "g" + std::to_string(s);
      const fabric::NodeId n = topo.addNode(name, fabric::NodeKind::Gpu);
      ASSERT_TRUE(chassis.installDevice({0, s}, DeviceType::Gpu, name, n));
    }
  }
};

TEST_F(McsFixture, UserLifecycle) {
  EXPECT_FALSE(mcs.addUser("alice", Role::User));  // duplicate
  EXPECT_FALSE(mcs.addUser("", Role::User));
  EXPECT_EQ(mcs.roleOf("alice"), Role::User);
  EXPECT_EQ(mcs.roleOf("admin"), Role::Administrator);
  EXPECT_FALSE(mcs.roleOf("nobody").has_value());
  EXPECT_FALSE(mcs.removeUser("alice", "bob"));    // non-admin
  EXPECT_TRUE(mcs.removeUser("admin", "bob"));
  EXPECT_FALSE(mcs.roleOf("bob").has_value());
}

TEST_F(McsFixture, ClaimAndReleaseOwnership) {
  EXPECT_TRUE(mcs.claimResource("alice", {0, 0}));
  EXPECT_EQ(mcs.ownerOf({0, 0}), "alice");
  EXPECT_FALSE(mcs.claimResource("bob", {0, 0}));        // already owned
  EXPECT_FALSE(mcs.claimResource("alice", {0, 7}));      // empty slot
  EXPECT_FALSE(mcs.claimResource("ghost", {0, 1}));      // unknown user
  EXPECT_FALSE(mcs.releaseResource("bob", {0, 0}));      // not the owner
  EXPECT_TRUE(mcs.releaseResource("alice", {0, 0}));
  EXPECT_TRUE(mcs.claimResource("bob", {0, 0}));
}

TEST_F(McsFixture, AdminMayClaimForOthersUsersMayNot) {
  EXPECT_TRUE(mcs.claimResource("admin", {0, 0}, "alice"));
  EXPECT_EQ(mcs.ownerOf({0, 0}), "alice");
  EXPECT_FALSE(mcs.claimResource("bob", {0, 1}, "alice"));
  EXPECT_TRUE(mcs.releaseResource("admin", {0, 0}));  // admin override
}

TEST_F(McsFixture, IsolationBlocksCrossTenantOperations) {
  ASSERT_TRUE(mcs.claimResource("alice", {0, 0}));
  // Bob cannot operate alice's resource; alice can.
  EXPECT_FALSE(mcs.attach("bob", {0, 0}, 0));
  EXPECT_TRUE(mcs.attach("alice", {0, 0}, 0));
  EXPECT_FALSE(mcs.detach("bob", {0, 0}));
  EXPECT_TRUE(mcs.detach("alice", {0, 0}));
  // Unowned resources also require ownership for plain users.
  EXPECT_FALSE(mcs.attach("bob", {0, 1}, 0));
  // Admin bypasses ownership.
  EXPECT_TRUE(mcs.attach("admin", {0, 1}, 0));
}

TEST_F(McsFixture, DrawerModeIsAdminOnly) {
  EXPECT_FALSE(mcs.setDrawerMode("alice", 0, DrawerMode::Advanced));
  EXPECT_TRUE(mcs.setDrawerMode("admin", 0, DrawerMode::Advanced));
  EXPECT_EQ(chassis.drawerMode(0), DrawerMode::Advanced);
}

TEST_F(McsFixture, EventLogExportIsAdminOnly) {
  std::vector<BmcEvent> events;
  EXPECT_FALSE(mcs.exportEventLog("alice", bmc, events));
  EXPECT_TRUE(mcs.exportEventLog("admin", bmc, events));
  EXPECT_GE(events.size(), 1u);  // install/connect events
}

TEST_F(McsFixture, AuditRecordsDenialsAndGrants) {
  ASSERT_TRUE(mcs.claimResource("alice", {0, 0}));
  mcs.attach("bob", {0, 0}, 0);   // denied
  mcs.attach("alice", {0, 0}, 0); // granted
  const auto& log = mcs.auditLog();
  int denied = 0, allowed = 0;
  for (const auto& rec : log) {
    if (rec.operation == "attach") (rec.allowed ? allowed : denied)++;
  }
  EXPECT_EQ(denied, 1);
  EXPECT_EQ(allowed, 1);
}

TEST_F(McsFixture, ConfigExportImportRoundTrip) {
  ASSERT_TRUE(mcs.claimResource("alice", {0, 0}));
  ASSERT_TRUE(mcs.attach("alice", {0, 0}, 0));
  ASSERT_TRUE(mcs.claimResource("bob", {0, 1}));
  const Json config = mcs.exportConfig();

  // Tear down, then restore.
  ASSERT_TRUE(mcs.detach("alice", {0, 0}));
  ASSERT_TRUE(mcs.releaseResource("alice", {0, 0}));
  ASSERT_TRUE(mcs.importConfig("admin", config));
  EXPECT_EQ(chassis.assignedPort({0, 0}), 0);
  EXPECT_EQ(mcs.ownerOf({0, 0}), "alice");
  EXPECT_EQ(mcs.ownerOf({0, 1}), "bob");
}

TEST_F(McsFixture, ImportRequiresAdminAndMatchingInventory) {
  const Json config = mcs.exportConfig();
  EXPECT_FALSE(mcs.importConfig("alice", config));

  Json tampered = Json::parse(config.dump());
  // drawers[0].slots[0].device <- a device that is not installed.
  Json& drawers = tampered.asObject()[1].second;
  Json& slots = drawers.asArray()[0].asObject()[2].second;
  Json& slot0 = slots.asArray()[0];
  slot0.set("device", "not-the-installed-device");
  slot0.set("port", 0);
  EXPECT_FALSE(mcs.importConfig("admin", tampered));
}

TEST_F(McsFixture, ImportRejectsMalformedDocument) {
  Json garbage = Json::object();
  garbage.set("drawers", "not-an-array");
  EXPECT_FALSE(mcs.importConfig("admin", garbage));
}

}  // namespace
}  // namespace composim::falcon
