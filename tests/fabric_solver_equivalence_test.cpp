// Property suite for the incremental max-min solver: replaying the same
// randomized scenario with incremental component solving on and off must
// produce bit-identical rates, completion times, statuses, and link byte
// counters. Full mode is the straightforward re-solve-everything reference,
// so any divergence means the incremental bookkeeping dropped or corrupted
// a component.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fabric/flow_network.hpp"
#include "sim/random.hpp"
#include "sim/units.hpp"

namespace composim::fabric {
namespace {

struct Op {
  enum class Kind { Arrive, Cancel, FailLink, Sample } kind;
  SimTime time = 0.0;
  // Arrive
  std::size_t src = 0, dst = 0;
  Bytes bytes = 0;
  FlowOptions options;
  // Cancel: index into the arrival list
  std::size_t target = 0;
  // FailLink
  LinkId link = kInvalidLink;
};

struct Scenario {
  int pods = 2;
  int leaves_per_pod = 3;
  std::vector<double> capacities;  // one per duplex leaf<->hub pair
  std::vector<Op> ops;             // sorted by time
};

// The scenario is generated once per seed, independent of solver mode, so
// both replays see the exact same event sequence.
Scenario makeScenario(std::uint64_t seed) {
  Scenario sc;
  Rng rng(seed * 7919 + 13);
  const int total_leaves = sc.pods * sc.leaves_per_pod;
  for (int i = 0; i < total_leaves; ++i) {
    sc.capacities.push_back(units::GBps(rng.uniform(2.0, 12.0)));
  }
  const int arrivals = 24;
  for (int i = 0; i < arrivals; ++i) {
    Op op;
    op.kind = Op::Kind::Arrive;
    op.time = rng.uniform(0.0, 0.5);
    // Keep src/dst inside one pod so each pod stays its own component
    // family and a route always exists.
    const int pod = rng.uniformInt(0, sc.pods - 1);
    const int s = rng.uniformInt(0, sc.leaves_per_pod - 1);
    int d = rng.uniformInt(0, sc.leaves_per_pod - 1);
    if (d == s) d = (d + 1) % sc.leaves_per_pod;
    op.src = static_cast<std::size_t>(pod * sc.leaves_per_pod + s);
    op.dst = static_cast<std::size_t>(pod * sc.leaves_per_pod + d);
    op.bytes = units::MiB(rng.uniformInt(1, 64));
    if (rng.uniform() < 0.3) op.options.maxRate = units::GBps(rng.uniform(0.5, 3.0));
    if (rng.uniform() < 0.3) {
      op.options.extraLatency = units::microseconds(rng.uniform(1.0, 20.0));
    }
    sc.ops.push_back(op);
  }
  for (int i = 0; i < 6; ++i) {
    Op op;
    op.kind = Op::Kind::Cancel;
    op.time = rng.uniform(0.0, 0.6);
    op.target = static_cast<std::size_t>(rng.uniformInt(0, arrivals - 1));
    sc.ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::Kind::FailLink;
    op.time = rng.uniform(0.1, 0.4);
    // Duplex links are added in pairs; pick the forward direction of a
    // random leaf uplink.
    op.link = static_cast<LinkId>(2 * rng.uniformInt(0, total_leaves - 1));
    sc.ops.push_back(op);
  }
  for (int i = 0; i < 10; ++i) {
    Op op;
    op.kind = Op::Kind::Sample;
    op.time = rng.uniform(0.0, 0.6);
    sc.ops.push_back(op);
  }
  std::stable_sort(sc.ops.begin(), sc.ops.end(),
                   [](const Op& a, const Op& b) { return a.time < b.time; });
  return sc;
}

struct Outcome {
  std::vector<double> rate_samples;
  std::vector<int> statuses;       // by arrival index; -1 = callback never fired
  std::vector<Bytes> bytes;        // by arrival index
  std::vector<SimTime> end_times;  // by arrival index
  std::vector<Bytes> link_bytes;
  std::uint64_t completed = 0, failed = 0;
  std::uint64_t recomputations = 0, component_solves = 0;
};

Outcome replay(const Scenario& sc, bool incremental) {
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  net.setIncrementalSolve(incremental);

  std::vector<NodeId> leaves;
  std::vector<LinkId> links;
  for (int p = 0; p < sc.pods; ++p) {
    const NodeId hub = topo.addNode("hub" + std::to_string(p), NodeKind::PcieSwitch);
    for (int l = 0; l < sc.leaves_per_pod; ++l) {
      const NodeId leaf = topo.addNode("leaf" + std::to_string(p) + "_" + std::to_string(l),
                                       NodeKind::Gpu);
      const auto idx = leaves.size();
      auto [fwd, rev] = topo.addDuplexLink(leaf, hub, sc.capacities[idx], 0.0,
                                           LinkKind::PCIe4);
      leaves.push_back(leaf);
      links.push_back(fwd);
      links.push_back(rev);
    }
  }

  Outcome out;
  std::size_t arrival_count = 0;
  for (const Op& op : sc.ops) arrival_count += op.kind == Op::Kind::Arrive;
  out.statuses.assign(arrival_count, -1);
  out.bytes.assign(arrival_count, 0);
  out.end_times.assign(arrival_count, 0.0);

  std::vector<FlowId> ids(arrival_count, kInvalidFlow);
  std::size_t next_arrival = 0;
  for (const Op& op : sc.ops) {
    switch (op.kind) {
      case Op::Kind::Arrive: {
        const std::size_t idx = next_arrival++;
        sim.schedule(op.time, [&, idx, op] {
          ids[idx] = net.startFlow(leaves[op.src], leaves[op.dst], op.bytes,
                                   [&out, idx](const FlowResult& r) {
                                     out.statuses[idx] = static_cast<int>(r.status);
                                     out.bytes[idx] = r.bytes;
                                     out.end_times[idx] = r.end;
                                   },
                                   op.options);
        });
        break;
      }
      case Op::Kind::Cancel:
        // The target may not have started yet or may already be done;
        // either way the (deterministic) no-op matches across modes.
        sim.schedule(op.time, [&, op] { net.cancelFlow(ids[op.target]); });
        break;
      case Op::Kind::FailLink:
        sim.schedule(op.time, [&, op] { net.failLink(op.link); });
        break;
      case Op::Kind::Sample:
        sim.schedule(op.time, [&] {
          for (FlowId id : ids) out.rate_samples.push_back(net.flowRate(id));
        });
        break;
    }
  }
  sim.run();
  for (LinkId l : links) out.link_bytes.push_back(net.linkBytes(l));
  out.completed = net.flowsCompleted();
  out.failed = net.flowsFailed();
  out.recomputations = net.rateRecomputations();
  out.component_solves = net.componentSolves();
  return out;
}

class SolverEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SolverEquivalence, IncrementalMatchesFullRecomputeBitwise) {
  const auto sc = makeScenario(static_cast<std::uint64_t>(GetParam()));
  const Outcome inc = replay(sc, /*incremental=*/true);
  const Outcome full = replay(sc, /*incremental=*/false);

  ASSERT_EQ(inc.rate_samples.size(), full.rate_samples.size());
  for (std::size_t i = 0; i < inc.rate_samples.size(); ++i) {
    // EXPECT_EQ on doubles: exact equality, not a tolerance.
    EXPECT_EQ(inc.rate_samples[i], full.rate_samples[i]) << "sample " << i;
  }
  ASSERT_EQ(inc.statuses.size(), full.statuses.size());
  for (std::size_t i = 0; i < inc.statuses.size(); ++i) {
    EXPECT_EQ(inc.statuses[i], full.statuses[i]) << "flow " << i;
    EXPECT_EQ(inc.bytes[i], full.bytes[i]) << "flow " << i;
    EXPECT_EQ(inc.end_times[i], full.end_times[i]) << "flow " << i;
  }
  EXPECT_EQ(inc.link_bytes, full.link_bytes);
  EXPECT_EQ(inc.completed, full.completed);
  EXPECT_EQ(inc.failed, full.failed);
  // Both modes resolve at the same call sites; incremental mode just
  // solves fewer components per resolve.
  EXPECT_EQ(inc.recomputations, full.recomputations);
  EXPECT_LE(inc.component_solves, full.component_solves);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalence, ::testing::Range(1, 11));

}  // namespace
}  // namespace composim::fabric
