// Tests for the NCCL-like collectives over the simulated fabric.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/communicator.hpp"
#include "fabric/link_catalog.hpp"
#include "fabric/nvlink_mesh.hpp"
#include "sim/units.hpp"

namespace composim::collectives {
namespace {

using fabric::LinkKind;
using fabric::NodeId;
using fabric::NodeKind;

/// A PCIe star: N GPUs behind one switch (a Falcon drawer in miniature).
struct PcieStar {
  Simulator sim;
  fabric::Topology topo;
  fabric::FlowNetwork net{sim, topo};
  std::vector<NodeId> gpus;

  explicit PcieStar(int n) {
    const NodeId sw = topo.addNode("sw", NodeKind::PcieSwitch);
    const auto spec = fabric::catalog::pcie4_x16_slot();
    for (int i = 0; i < n; ++i) {
      const NodeId g = topo.addNode("g" + std::to_string(i), NodeKind::Gpu);
      topo.addDuplexLink(g, sw, spec.capacityPerDirection, spec.latency, spec.kind);
      gpus.push_back(g);
    }
  }
};

/// An NVLink mesh of 8 GPUs (the local host in miniature).
struct NvlinkHost {
  Simulator sim;
  fabric::Topology topo;
  fabric::FlowNetwork net{sim, topo};
  std::vector<NodeId> gpus;

  NvlinkHost() {
    for (int i = 0; i < 8; ++i) {
      gpus.push_back(topo.addNode("g" + std::to_string(i), NodeKind::Gpu));
    }
    fabric::buildHybridCubeMesh(topo, gpus);
  }
};

CollectiveResult runAllReduce(Simulator& sim, Communicator& comm, Bytes bytes,
                              Algorithm algo = Algorithm::Auto) {
  CollectiveResult out;
  bool done = false;
  comm.allReduce(bytes, [&](const CollectiveResult& r) {
    out = r;
    done = true;
  }, algo);
  sim.run();
  EXPECT_TRUE(done);
  return out;
}

TEST(Communicator, RejectsEmptyGroup) {
  PcieStar s(2);
  EXPECT_THROW(Communicator(s.sim, s.net, s.topo, {}), std::invalid_argument);
}

TEST(Communicator, SingleRankAllReduceIsFree) {
  PcieStar s(1);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const auto r = runAllReduce(s.sim, comm, units::MiB(100));
  EXPECT_LT(r.duration(), units::microseconds(1));
  EXPECT_EQ(r.bytes_on_fabric, 0);
}

TEST(Communicator, RingAllReduceTimeMatchesAlphaBetaModel) {
  PcieStar s(4);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(256);
  const auto r = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  // 2(N-1) steps of V/N chunks at the protocol-derated slot rate.
  const double rate = 0.62 * fabric::catalog::pcie4_x16_slot().capacityPerDirection;
  const double expected = 6.0 * (static_cast<double>(v) / 4.0) / rate;
  EXPECT_NEAR(r.duration(), expected, expected * 0.05);
}

TEST(Communicator, RingMovesExpectedFabricBytes) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(64);
  const auto r = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  // Each of 8 ranks forwards 2(N-1) chunks of V/N.
  const double expected = 8.0 * 14.0 * (static_cast<double>(v) / 8.0);
  EXPECT_NEAR(static_cast<double>(r.bytes_on_fabric), expected, expected * 0.01);
}

TEST(Communicator, BusBandwidthApproachesProtocolRate) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const auto r = runAllReduce(s.sim, comm, units::GiB(1), Algorithm::Ring);
  const double busbw = r.busBandwidth(8);
  const double proto = 0.62 * fabric::catalog::pcie4_x16_slot().capacityPerDirection;
  EXPECT_GT(busbw, proto * 0.9);
  EXPECT_LE(busbw, proto * 1.01);
}

TEST(Communicator, NvlinkIslandDetection) {
  NvlinkHost h;
  Communicator comm(h.sim, h.net, h.topo, h.gpus);
  const auto islands = comm.nvlinkIslands();
  ASSERT_EQ(islands.size(), 1u);
  EXPECT_EQ(islands[0].size(), 8u);
}

TEST(Communicator, PcieGroupIsAllSingletonIslands) {
  PcieStar s(4);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  EXPECT_EQ(comm.nvlinkIslands().size(), 4u);
  EXPECT_EQ(comm.chooseAlgorithm(), Algorithm::Ring);
}

TEST(Communicator, RingOrderFollowsWideNvlinkEdges) {
  NvlinkHost h;
  Communicator comm(h.sim, h.net, h.topo, h.gpus);
  std::vector<int> members{0, 1, 2, 3, 4, 5, 6, 7};
  const auto order = comm.ringOrder(members);
  ASSERT_EQ(order.size(), 8u);
  // Every consecutive hop (and the closing hop) must be a direct NVLink
  // edge — no hop may detour through an intermediate GPU.
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId a = h.gpus[static_cast<std::size_t>(order[i])];
    const NodeId b = h.gpus[static_cast<std::size_t>(order[(i + 1) % 8])];
    auto r = h.topo.route(a, b);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->links.size(), 1u)
        << "hop " << order[i] << "->" << order[(i + 1) % 8] << " detours";
  }
}

TEST(Communicator, NvlinkRingFasterThanPcieRing) {
  NvlinkHost h;
  PcieStar s(8);
  Communicator nv(h.sim, h.net, h.topo, h.gpus);
  Communicator pc(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(512);
  const auto rn = runAllReduce(h.sim, nv, v, Algorithm::Ring);
  const auto rp = runAllReduce(s.sim, pc, v, Algorithm::Ring);
  EXPECT_LT(rn.duration() * 2.5, rp.duration());
}

TEST(Communicator, TreeCompletesAndIsSlowerThanRingForLargePayload) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(256);
  const auto ring = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  const auto tree = runAllReduce(s.sim, comm, v, Algorithm::Tree);
  EXPECT_GT(tree.duration(), ring.duration());
}

TEST(Communicator, NaiveMasterPatternIsWorst) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(256);
  const auto ring = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  const auto naive = runAllReduce(s.sim, comm, v, Algorithm::Naive);
  EXPECT_GT(naive.duration(), ring.duration() * 1.5);
}

TEST(Communicator, HierarchicalWinsOnTwoIslandTopology) {
  // Two 4-GPU NVLink quads joined by one narrow PCIe path — the case
  // where aggregating inside the islands first pays off.
  Simulator sim;
  fabric::Topology topo;
  fabric::FlowNetwork net(sim, topo);
  std::vector<NodeId> gpus;
  for (int q = 0; q < 2; ++q) {
    std::vector<NodeId> quad;
    for (int i = 0; i < 4; ++i) {
      quad.push_back(topo.addNode("q" + std::to_string(q) + "g" + std::to_string(i),
                                  NodeKind::Gpu));
    }
    fabric::buildHybridCubeMesh(topo, quad);
    for (NodeId g : quad) gpus.push_back(g);
  }
  const NodeId bridge = topo.addNode("bridge", NodeKind::PcieSwitch);
  const auto ha = fabric::catalog::hostAdapter();
  for (int q = 0; q < 2; ++q) {
    topo.addDuplexLink(gpus[static_cast<std::size_t>(4 * q)], bridge,
                       ha.capacityPerDirection, ha.latency, ha.kind);
  }
  Communicator comm(sim, net, topo, gpus);
  EXPECT_EQ(comm.nvlinkIslands().size(), 2u);
  EXPECT_EQ(comm.chooseAlgorithm(), Algorithm::Hierarchical);
  const Bytes v = units::MiB(256);
  const auto hier = runAllReduce(sim, comm, v, Algorithm::Hierarchical);
  const auto flat = runAllReduce(sim, comm, v, Algorithm::Ring);
  EXPECT_LT(hier.duration(), flat.duration());
}

TEST(Communicator, BroadcastReduceAllGatherReduceScatterComplete) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  int done = 0;
  comm.broadcast(units::MiB(32), 0, [&](const CollectiveResult&) { ++done; });
  comm.reduce(units::MiB(32), 0, [&](const CollectiveResult&) { ++done; });
  comm.allGather(units::MiB(4), [&](const CollectiveResult&) { ++done; });
  comm.reduceScatter(units::MiB(32), [&](const CollectiveResult&) { ++done; });
  s.sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(comm.collectivesCompleted(), 4u);
}

TEST(Communicator, OpsSerializeLikeOneCudaStream) {
  PcieStar s(4);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(64);
  // Two ops issued back-to-back must take ~2x one op, not overlap.
  CollectiveResult alone = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  SimTime both_end = 0.0;
  const SimTime start = s.sim.now();
  comm.allReduce(v, [](const CollectiveResult&) {}, Algorithm::Ring);
  comm.allReduce(v, [&](const CollectiveResult& r) { both_end = r.end; },
                 Algorithm::Ring);
  s.sim.run();
  EXPECT_NEAR(both_end - start, 2.0 * alone.duration(), alone.duration() * 0.1);
}

TEST(Communicator, ReduceScatterPlusAllGatherEqualsAllReduce) {
  PcieStar s(8);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const Bytes v = units::MiB(128);
  SimTime rs = 0.0, ag = 0.0;
  comm.reduceScatter(v, [&](const CollectiveResult& r) { rs = r.duration(); });
  s.sim.run();
  comm.allGather(v / 8, [&](const CollectiveResult& r) { ag = r.duration(); });
  s.sim.run();
  const auto ar = runAllReduce(s.sim, comm, v, Algorithm::Ring);
  EXPECT_NEAR(rs + ag, ar.duration(), ar.duration() * 0.05);
}

// Property: all-reduce duration is monotone nondecreasing in payload and
// bus bandwidth is bounded by the protocol-derated link rate.
class AllReducePayloadProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllReducePayloadProperty, MonotoneAndBounded) {
  const auto [ranks, mib] = GetParam();
  PcieStar s(ranks);
  Communicator comm(s.sim, s.net, s.topo, s.gpus);
  const auto small = runAllReduce(s.sim, comm, units::MiB(mib), Algorithm::Ring);
  const auto big = runAllReduce(s.sim, comm, units::MiB(mib * 2), Algorithm::Ring);
  EXPECT_LT(small.duration(), big.duration());
  const double proto = 0.62 * fabric::catalog::pcie4_x16_slot().capacityPerDirection;
  EXPECT_LE(big.busBandwidth(ranks), proto * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllReducePayloadProperty,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(8, 64, 256)));

}  // namespace
}  // namespace composim::collectives
