// Tests for the shared Status type used across the management plane and
// the profiler export path.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "falcon/chassis.hpp"

namespace composim {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.code, StatusCode::Ok);
  EXPECT_TRUE(s.detail.empty());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, SuccessFactoryMatchesDefault) {
  const Status s = Status::success();
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.code, StatusCode::Ok);
}

TEST(Status, TypedFactoriesSetCodes) {
  EXPECT_EQ(Status::invalidArgument("x").code, StatusCode::InvalidArgument);
  EXPECT_EQ(Status::notFound("x").code, StatusCode::NotFound);
  EXPECT_EQ(Status::alreadyExists("x").code, StatusCode::AlreadyExists);
  EXPECT_EQ(Status::permissionDenied("x").code, StatusCode::PermissionDenied);
  EXPECT_EQ(Status::failedPrecondition("x").code, StatusCode::FailedPrecondition);
  EXPECT_EQ(Status::unavailable("x").code, StatusCode::Unavailable);
  EXPECT_EQ(Status::internal("x").code, StatusCode::Internal);
  EXPECT_EQ(Status::retryable("x").code, StatusCode::Retryable);
  for (const Status& s : {Status::invalidArgument("x"), Status::internal("x")}) {
    EXPECT_FALSE(s.ok);
    EXPECT_FALSE(static_cast<bool>(s));
    EXPECT_EQ(s.detail, "x");
  }
}

TEST(Status, GenericFailureDefaultsToFailedPrecondition) {
  const Status s = Status::failure("nope");
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(s.code, StatusCode::FailedPrecondition);
  EXPECT_EQ(s.detail, "nope");
}

TEST(Status, ToStringIncludesCodeAndDetail) {
  EXPECT_EQ(Status::permissionDenied("admins only").toString(),
            "PERMISSION_DENIED: admins only");
  EXPECT_EQ(Status::notFound("no such user").toString(),
            "NOT_FOUND: no such user");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(toString(StatusCode::Ok), "OK");
  EXPECT_STREQ(toString(StatusCode::InvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(toString(StatusCode::NotFound), "NOT_FOUND");
  EXPECT_STREQ(toString(StatusCode::AlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(toString(StatusCode::PermissionDenied), "PERMISSION_DENIED");
  EXPECT_STREQ(toString(StatusCode::FailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(toString(StatusCode::Unavailable), "UNAVAILABLE");
  EXPECT_STREQ(toString(StatusCode::Internal), "INTERNAL");
  EXPECT_STREQ(toString(StatusCode::Retryable), "RETRYABLE");
}

// Retryable is the one failure a caller is invited to repeat verbatim
// (transient management-plane faults); it must still read as failure.
TEST(Status, RetryableIsAFailure) {
  const Status s = Status::retryable("management plane timed out");
  EXPECT_FALSE(s.ok);
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.toString(), "RETRYABLE: management plane timed out");
}

// The falcon management plane's OpResult is an alias of Status, so chassis
// failures now carry machine-checkable codes.
TEST(Status, ChassisOpResultCarriesCodes) {
  Simulator sim;
  fabric::Topology topo;
  falcon::FalconChassis chassis(sim, topo, "falcon0");
  const falcon::OpResult bad_slot =
      chassis.attach(falcon::SlotId{5, 99}, 0);
  EXPECT_FALSE(bad_slot.ok);
  EXPECT_EQ(bad_slot.code, StatusCode::InvalidArgument);
  const falcon::OpResult bad_port = chassis.disconnectHost(42);
  EXPECT_FALSE(bad_port.ok);
  EXPECT_EQ(bad_port.code, StatusCode::InvalidArgument);
}

}  // namespace
}  // namespace composim
