// Tests for fault injection: link flaps, error bursts, degradation.
#include <gtest/gtest.h>

#include "fabric/failures.hpp"
#include "sim/units.hpp"

namespace composim::fabric {
namespace {

struct FaultFixture : ::testing::Test {
  Simulator sim;
  Topology topo;
  FlowNetwork net{sim, topo};
  FaultInjector faults{sim, topo, net};
  NodeId a = topo.addNode("a", NodeKind::Gpu);
  NodeId b = topo.addNode("b", NodeKind::Gpu);
  LinkId ab = kInvalidLink;

  void SetUp() override {
    auto [fwd, rev] = topo.addDuplexLink(a, b, units::GBps(10), 0.0, LinkKind::PCIe4);
    ab = fwd;
    (void)rev;
  }
};

TEST_F(FaultFixture, FlapFailsInFlightFlowThenRestores) {
  FlowStatus first = FlowStatus::Completed;
  FlowStatus second = FlowStatus::Failed;
  net.startFlow(a, b, units::GB(10), [&](const FlowResult& r) { first = r.status; });
  faults.scheduleLinkFlap(ab, 0.1, 0.2);
  // A flow started after the restore succeeds.
  sim.schedule(0.5, [&] {
    net.startFlow(a, b, units::MiB(1), [&](const FlowResult& r) { second = r.status; });
  });
  sim.run();
  EXPECT_EQ(first, FlowStatus::Failed);
  EXPECT_EQ(second, FlowStatus::Completed);
  ASSERT_EQ(faults.history().size(), 2u);
  EXPECT_EQ(faults.history()[0].kind, FaultRecord::Kind::Flap);
  EXPECT_EQ(faults.history()[1].kind, FaultRecord::Kind::Restore);
  EXPECT_NEAR(faults.history()[1].time, 0.3, 1e-9);
}

TEST_F(FaultFixture, FlapRejectsNonPositiveDowntime) {
  EXPECT_THROW(faults.scheduleLinkFlap(ab, 0.0, 0.0), std::invalid_argument);
}

TEST_F(FaultFixture, ErrorBurstOnlyBumpsCounters) {
  FlowStatus status = FlowStatus::Failed;
  net.startFlow(a, b, units::MiB(100), [&](const FlowResult& r) { status = r.status; });
  faults.scheduleErrorBurst(ab, 0.001, 42);
  sim.run();
  EXPECT_EQ(status, FlowStatus::Completed);  // traffic unharmed
  EXPECT_EQ(topo.link(ab).counters.errors, 42u);
}

TEST_F(FaultFixture, DegradeSlowsActiveFlow) {
  FlowResult res;
  net.startFlow(a, b, units::GB(1), [&](const FlowResult& r) { res = r; });
  faults.scheduleDegrade(ab, 0.05, 0.5);  // 10 -> 5 GB/s at t=50ms
  sim.run();
  EXPECT_EQ(res.status, FlowStatus::Completed);
  // 0.5 GB at 10 GB/s, then 0.5 GB at 5 GB/s: 50 + 100 = 150 ms.
  EXPECT_NEAR(res.duration(), 0.15, 1e-3);
  EXPECT_THROW(faults.scheduleDegrade(ab, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(faults.scheduleDegrade(ab, 0.0, 1.5), std::invalid_argument);
}

TEST_F(FaultFixture, FailLinkWithManyActiveFlowsKillsOnlyCrossers) {
  // Regression for the link-failure path: victims must come from the
  // link->flows index, and only flows actually crossing the failed
  // direction may die — concurrent traffic elsewhere keeps its progress.
  const NodeId c = topo.addNode("c", NodeKind::Gpu);
  const NodeId d = topo.addNode("d", NodeKind::Gpu);
  topo.addDuplexLink(c, d, units::GBps(10), 0.0, LinkKind::PCIe4);
  int failed = 0, completed = 0;
  const int crossers = 16;
  for (int i = 0; i < crossers; ++i) {
    net.startFlow(a, b, units::GB(1), [&](const FlowResult& r) {
      (r.status == FlowStatus::Failed ? failed : completed)++;
    });
  }
  // Reverse direction of the same duplex pair and an unrelated link: both
  // must survive the forward-direction failure.
  int survivors = 0;
  net.startFlow(b, a, units::GB(1),
                [&](const FlowResult& r) { survivors += r.status == FlowStatus::Completed; });
  net.startFlow(c, d, units::GB(1),
                [&](const FlowResult& r) { survivors += r.status == FlowStatus::Completed; });
  sim.schedule(0.05, [&] { net.failLink(ab); });
  sim.run();
  EXPECT_EQ(failed, crossers);
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(survivors, 2);
  EXPECT_EQ(topo.link(ab).counters.errors, 1u);
  EXPECT_EQ(net.flowsFailed(), static_cast<std::uint64_t>(crossers));
  EXPECT_EQ(net.activeFlows(), 0u);
}

TEST_F(FaultFixture, RandomErrorNoiseStopsAtDeadline) {
  faults.scheduleRandomErrorNoise(ab, 0.01, 1.0);
  sim.run();
  EXPECT_GT(topo.link(ab).counters.errors, 20u);   // ~100 expected
  EXPECT_LT(topo.link(ab).counters.errors, 300u);
  for (const auto& f : faults.history()) EXPECT_LE(f.time, 1.0);
}

}  // namespace
}  // namespace composim::fabric
