// Tests for fault injection: link flaps, error bursts, degradation.
#include <gtest/gtest.h>

#include "fabric/failures.hpp"
#include "sim/units.hpp"

namespace composim::fabric {
namespace {

struct FaultFixture : ::testing::Test {
  Simulator sim;
  Topology topo;
  FlowNetwork net{sim, topo};
  FaultInjector faults{sim, topo, net};
  NodeId a = topo.addNode("a", NodeKind::Gpu);
  NodeId b = topo.addNode("b", NodeKind::Gpu);
  LinkId ab = kInvalidLink;
  LinkId ba = kInvalidLink;

  void SetUp() override {
    auto [fwd, rev] = topo.addDuplexLink(a, b, units::GBps(10), 0.0, LinkKind::PCIe4);
    ab = fwd;
    ba = rev;
  }
};

TEST_F(FaultFixture, FlapFailsInFlightFlowThenRestores) {
  FlowStatus first = FlowStatus::Completed;
  FlowStatus second = FlowStatus::Failed;
  net.startFlow(a, b, units::GB(10), [&](const FlowResult& r) { first = r.status; });
  faults.scheduleLinkFlap(ab, 0.1, 0.2);
  // A flow started after the restore succeeds.
  sim.schedule(0.5, [&] {
    net.startFlow(a, b, units::MiB(1), [&](const FlowResult& r) { second = r.status; });
  });
  sim.run();
  EXPECT_EQ(first, FlowStatus::Failed);
  EXPECT_EQ(second, FlowStatus::Completed);
  ASSERT_EQ(faults.history().size(), 2u);
  EXPECT_EQ(faults.history()[0].kind, FaultRecord::Kind::Flap);
  EXPECT_EQ(faults.history()[1].kind, FaultRecord::Kind::Restore);
  EXPECT_NEAR(faults.history()[1].time, 0.3, 1e-9);
}

TEST_F(FaultFixture, FlapRejectsNonPositiveDowntime) {
  EXPECT_THROW(faults.scheduleLinkFlap(ab, 0.0, 0.0), std::invalid_argument);
}

TEST_F(FaultFixture, ErrorBurstOnlyBumpsCounters) {
  FlowStatus status = FlowStatus::Failed;
  net.startFlow(a, b, units::MiB(100), [&](const FlowResult& r) { status = r.status; });
  faults.scheduleErrorBurst(ab, 0.001, 42);
  sim.run();
  EXPECT_EQ(status, FlowStatus::Completed);  // traffic unharmed
  EXPECT_EQ(topo.link(ab).counters.errors, 42u);
}

TEST_F(FaultFixture, DegradeSlowsActiveFlow) {
  FlowResult res;
  net.startFlow(a, b, units::GB(1), [&](const FlowResult& r) { res = r; });
  faults.scheduleDegrade(ab, 0.05, 0.5);  // 10 -> 5 GB/s at t=50ms
  sim.run();
  EXPECT_EQ(res.status, FlowStatus::Completed);
  // 0.5 GB at 10 GB/s, then 0.5 GB at 5 GB/s: 50 + 100 = 150 ms.
  EXPECT_NEAR(res.duration(), 0.15, 1e-3);
  EXPECT_THROW(faults.scheduleDegrade(ab, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(faults.scheduleDegrade(ab, 0.0, 1.5), std::invalid_argument);
}

TEST_F(FaultFixture, FailLinkWithManyActiveFlowsKillsOnlyCrossers) {
  // Regression for the link-failure path: victims must come from the
  // link->flows index, and only flows actually crossing the failed
  // direction may die — concurrent traffic elsewhere keeps its progress.
  const NodeId c = topo.addNode("c", NodeKind::Gpu);
  const NodeId d = topo.addNode("d", NodeKind::Gpu);
  topo.addDuplexLink(c, d, units::GBps(10), 0.0, LinkKind::PCIe4);
  int failed = 0, completed = 0;
  const int crossers = 16;
  for (int i = 0; i < crossers; ++i) {
    net.startFlow(a, b, units::GB(1), [&](const FlowResult& r) {
      (r.status == FlowStatus::Failed ? failed : completed)++;
    });
  }
  // Reverse direction of the same duplex pair and an unrelated link: both
  // must survive the forward-direction failure.
  int survivors = 0;
  net.startFlow(b, a, units::GB(1),
                [&](const FlowResult& r) { survivors += r.status == FlowStatus::Completed; });
  net.startFlow(c, d, units::GB(1),
                [&](const FlowResult& r) { survivors += r.status == FlowStatus::Completed; });
  sim.schedule(0.05, [&] { net.failLink(ab); });
  sim.run();
  EXPECT_EQ(failed, crossers);
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(survivors, 2);
  EXPECT_EQ(topo.link(ab).counters.errors, 1u);
  EXPECT_EQ(net.flowsFailed(), static_cast<std::uint64_t>(crossers));
  EXPECT_EQ(net.activeFlows(), 0u);
}

TEST_F(FaultFixture, RecordsCarryFaultParameters) {
  // Regression: FaultRecord used to drop the degrade factor and burst
  // error count, making history() unreplayable.
  faults.scheduleDegrade(ab, 0.1, 0.25);
  faults.scheduleErrorBurst(ab, 0.2, 77);
  sim.run();
  ASSERT_EQ(faults.history().size(), 2u);
  EXPECT_EQ(faults.history()[0].kind, FaultRecord::Kind::Degrade);
  EXPECT_DOUBLE_EQ(faults.history()[0].factor, 0.25);
  EXPECT_EQ(faults.history()[1].kind, FaultRecord::Kind::ErrorBurst);
  EXPECT_EQ(faults.history()[1].errors, 77u);
  EXPECT_EQ(faults.faultsInjected(), 2u);
}

TEST_F(FaultFixture, DegradeDuringFlapComposesAndSurvivesRestore) {
  // A width/speed renegotiation landing while the link is flapped must
  // stick: the restore only raises the link, never resets capacity.
  faults.scheduleLinkFlap(ab, 0.1, 0.3);
  faults.scheduleDegrade(ab, 0.2, 0.5);  // 10 -> 5 GB/s, mid-outage
  FlowResult res;
  sim.schedule(0.5, [&] {
    net.startFlow(a, b, units::GB(1), [&](const FlowResult& r) { res = r; });
  });
  sim.run();
  EXPECT_EQ(res.status, FlowStatus::Completed);
  EXPECT_NEAR(res.duration(), 0.2, 1e-3);  // 1 GB at the degraded 5 GB/s
  EXPECT_DOUBLE_EQ(topo.link(ab).capacity, units::GBps(5));
}

TEST_F(FaultFixture, OverlappingFlapsHoldLinkUntilLastRestore) {
  faults.scheduleLinkFlap(ab, 0.1, 0.3);  // would restore at 0.4
  faults.scheduleLinkFlap(ab, 0.2, 0.5);  // holds it down until 0.7
  bool down_mid = false, up_after = false;
  sim.schedule(0.45, [&] { down_mid = !topo.link(ab).up; });
  sim.schedule(0.75, [&] { up_after = topo.link(ab).up; });
  sim.run();
  EXPECT_TRUE(down_mid);  // first flap's restore must not raise the link
  EXPECT_TRUE(up_after);
  int restores = 0;
  SimTime restore_at = 0.0;
  for (const auto& f : faults.history()) {
    if (f.kind == FaultRecord::Kind::Restore) {
      ++restores;
      restore_at = f.time;
    }
  }
  EXPECT_EQ(restores, 1);  // exactly one, when the link actually came up
  EXPECT_NEAR(restore_at, 0.7, 1e-9);
}

TEST_F(FaultFixture, DeviceFalloffKillsBothDirectionsForGood) {
  FlowStatus fwd = FlowStatus::Completed, rev = FlowStatus::Completed;
  net.startFlow(a, b, units::GB(10), [&](const FlowResult& r) { fwd = r.status; });
  net.startFlow(b, a, units::GB(10), [&](const FlowResult& r) { rev = r.status; });
  faults.scheduleDeviceFalloff(ab, ba, 0.05);
  bool still_down = false;
  sim.schedule(5.0, [&] { still_down = !topo.link(ab).up && !topo.link(ba).up; });
  sim.run();
  EXPECT_EQ(fwd, FlowStatus::Failed);
  EXPECT_EQ(rev, FlowStatus::Failed);
  EXPECT_TRUE(still_down);  // permanent: no restore ever
  EXPECT_GE(topo.link(ab).counters.errors, 1000u);
  ASSERT_EQ(faults.history().size(), 1u);
  EXPECT_EQ(faults.history()[0].kind, FaultRecord::Kind::Falloff);
  EXPECT_EQ(faults.history()[0].link, ab);
  EXPECT_EQ(faults.history()[0].link2, ba);
  EXPECT_EQ(faults.faultsInjected(), 1u);
}

TEST_F(FaultFixture, HostPortFlapTakesBothDirectionsAndRestores) {
  faults.scheduleHostPortFlap(ab, ba, 0.1, 0.2);
  bool down_mid = false;
  sim.schedule(0.2, [&] { down_mid = !topo.link(ab).up && !topo.link(ba).up; });
  FlowResult res;
  sim.schedule(0.5, [&] {
    net.startFlow(a, b, units::MiB(1), [&](const FlowResult& r) { res = r; });
  });
  sim.run();
  EXPECT_TRUE(down_mid);
  EXPECT_EQ(res.status, FlowStatus::Completed);  // healthy after restore
  EXPECT_GE(topo.link(ab).counters.errors, 10u);  // +10 burst, +1 from failLink
  ASSERT_EQ(faults.history().size(), 2u);
  EXPECT_EQ(faults.history()[0].kind, FaultRecord::Kind::HostPortLoss);
  EXPECT_EQ(faults.history()[1].kind, FaultRecord::Kind::Restore);
  EXPECT_EQ(faults.history()[1].link, ab);
  EXPECT_EQ(faults.history()[1].link2, ba);
  EXPECT_THROW(faults.scheduleHostPortFlap(ab, ba, 0.0, 0.0),
               std::invalid_argument);
}

TEST_F(FaultFixture, RandomErrorNoiseStopsAtDeadline) {
  faults.scheduleRandomErrorNoise(ab, 0.01, 1.0);
  sim.run();
  EXPECT_GT(topo.link(ab).counters.errors, 20u);   // ~100 expected
  EXPECT_LT(topo.link(ab).counters.errors, 300u);
  for (const auto& f : faults.history()) EXPECT_LE(f.time, 1.0);
}

}  // namespace
}  // namespace composim::fabric
