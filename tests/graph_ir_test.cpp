// Graph-IR ingestion: golden equivalence against the registry builders,
// JSON round-trip fidelity, experiment-manifest byte-equality through the
// loader, and the loader/validator error taxonomy.
//
// The checked-in examples/graphs/*.graph.json files (COMPOSIM_GRAPHS_DIR)
// are the contract: loading each one must produce a ModelSpec
// byte-identical to the registry's in-process builder, and a capped
// experiment run from the loaded spec must produce a byte-identical
// manifest. Regenerate the files with examples/graph_export after editing
// a builder.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/experiment_config.hpp"
#include "dl/graph_ir/builders.hpp"
#include "dl/graph_ir/loader.hpp"
#include "dl/graph_ir/lowering.hpp"
#include "dl/workload_registry.hpp"
#include "telemetry/run_tracker.hpp"

namespace composim {
namespace {

std::string graphPath(const std::string& model_name) {
  return std::string(COMPOSIM_GRAPHS_DIR) + "/" +
         dl::graph_ir::graphFileSlug(model_name) + ".graph.json";
}

/// Field-by-field byte equality; exact (==) floating-point comparison is
/// deliberate — the lowering mirrors the builder arithmetic, all products
/// are integer-valued doubles below 2^53, and %.17g round-trips exactly.
void expectIdentical(const dl::ModelSpec& a, const dl::ModelSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.reported_depth, b.reported_depth);
  EXPECT_EQ(a.fp16_efficiency, b.fp16_efficiency);
  EXPECT_EQ(a.fp32_efficiency, b.fp32_efficiency);
  EXPECT_EQ(a.input_bytes_per_sample, b.input_bytes_per_sample);
  EXPECT_EQ(a.activation_overhead_factor, b.activation_overhead_factor);
  EXPECT_EQ(a.paper_batch_per_gpu, b.paper_batch_per_gpu);
  EXPECT_EQ(a.paper_epochs, b.paper_epochs);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    SCOPED_TRACE("layer " + std::to_string(i) + " (" + a.layers[i].name + ")");
    EXPECT_EQ(a.layers[i].name, b.layers[i].name);
    EXPECT_EQ(a.layers[i].kind, b.layers[i].kind);
    EXPECT_EQ(a.layers[i].params, b.layers[i].params);
    EXPECT_EQ(a.layers[i].forward_flops, b.layers[i].forward_flops);
    EXPECT_EQ(a.layers[i].activation_bytes, b.layers[i].activation_bytes);
  }
  EXPECT_EQ(a.totalParams(), b.totalParams());
  EXPECT_EQ(a.forwardFlopsPerSample(), b.forwardFlopsPerSample());
}

dl::ModelSpec loadFromFile(const std::string& model_name) {
  dl::ModelSpec m;
  const Status s = dl::WorkloadRegistry::instance().loadGraph(
      graphPath(model_name), &m);
  EXPECT_TRUE(s.ok) << s.toString();
  return m;
}

TEST(GraphIrGolden, CheckedInGraphsMatchRegistryByteForByte) {
  for (const std::string& name : dl::WorkloadRegistry::instance().names()) {
    SCOPED_TRACE(name);
    dl::ModelSpec registry;
    ASSERT_TRUE(dl::WorkloadRegistry::instance().model(name, &registry).ok);
    expectIdentical(loadFromFile(name), registry);
  }
}

TEST(GraphIrGolden, CheckedInFilesAreCurrentExporterOutput) {
  // The exporter's serialization of each builder must equal the checked-in
  // file byte for byte (catches builder edits without re-export).
  for (const auto& graph : dl::graph_ir::builders::allBuiltinGraphs()) {
    SCOPED_TRACE(graph.meta.name);
    std::ifstream in(graphPath(graph.meta.name));
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), dl::graph_ir::toJson(graph).dump(2) + "\n");
  }
}

TEST(GraphIrGolden, JsonRoundTripIsExact) {
  for (const auto& graph : dl::graph_ir::builders::allBuiltinGraphs()) {
    SCOPED_TRACE(graph.meta.name);
    const std::string once = dl::graph_ir::toJson(graph).dump(2);
    dl::graph_ir::Graph reparsed;
    ASSERT_TRUE(
        dl::graph_ir::parseGraph(falcon::Json::parse(once), &reparsed).ok);
    EXPECT_EQ(dl::graph_ir::toJson(reparsed).dump(2), once);
  }
}

/// The run_suite-style manifest, reduced to a comparable JSON string.
std::string manifestFor(const dl::ModelSpec& model) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 5;
  const auto r =
      core::Experiment::run(core::SystemConfig::FalconGpus, model, opt);
  telemetry::RunTracker tracker;
  auto& run = tracker.run("golden");
  run.setConfig("workload", model.name);
  run.setSummary("mean_iteration_s", r.training.mean_iteration_time);
  run.setSummary("samples_per_second", r.training.samples_per_second);
  run.setSummary("gpu_util_pct", r.gpu_util_pct);
  run.setSummary("falcon_pcie_gbs", r.falcon_pcie_gbs);
  const auto& util = r.metrics->series("gpu_util_pct");
  for (std::size_t i = 0; i < util.size(); ++i) {
    run.log("gpu_util_pct", util.timeAt(i), util.valueAt(i));
  }
  return tracker.manifest().dump(2);
}

TEST(GraphIrGolden, ExperimentManifestsByteIdenticalThroughLoader) {
  EXPECT_EQ(manifestFor(loadFromFile("MobileNetV2")),
            manifestFor(dl::workload("MobileNetV2")));
  EXPECT_EQ(manifestFor(loadFromFile("BERT")),
            manifestFor(dl::workload("BERT")));
}

TEST(GraphIrGolden, TransformerRunsEndToEndFromJsonOnly) {
  // No C++ builder in this path: resolve the file reference, run it.
  core::ExperimentOptions opt;
  opt.workload = "graph:" + graphPath("GPT-2-medium");
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 5;
  const auto r = core::Experiment::run(core::SystemConfig::LocalGpus, opt);
  EXPECT_EQ(r.benchmark, "GPT-2-medium");
  EXPECT_EQ(r.training.iterations_run, 5);
  EXPECT_GT(r.training.samples_per_second, 0.0);
}

// --- loader / validator error taxonomy ---

Status parseText(const std::string& text) {
  dl::graph_ir::Graph g;
  return dl::graph_ir::parseGraph(falcon::Json::parse(text), &g);
}

const char* kHeader = R"({"format": "composim-graph-ir", "version": 1,
  "model": {"name": "t", "domain": "nlp", "dataset": "SQuAD v1.1"},)";

TEST(GraphIrErrors, CycleIsFailedPrecondition) {
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [
      {"id": "a", "kind": "attention", "inputs": ["b"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}},
      {"id": "b", "kind": "transformer_ffn", "inputs": ["a"],
       "shape": [384, 768], "attrs": {"hidden": 768, "ff": 3072, "seq": 384}}
    ]})");
  EXPECT_EQ(s.code, StatusCode::FailedPrecondition);
  EXPECT_NE(s.detail.find("cycle"), std::string::npos) << s.detail;
}

TEST(GraphIrErrors, MissingEdgeIsNotFound) {
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [
      {"id": "a", "kind": "attention", "inputs": ["ghost"],
       "shape": [384, 768], "attrs": {"hidden": 768, "seq": 384}}
    ]})");
  EXPECT_EQ(s.code, StatusCode::NotFound);
  EXPECT_NE(s.detail.find("ghost"), std::string::npos) << s.detail;
}

TEST(GraphIrErrors, UnknownOpKindIsInvalidArgument) {
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [{"id": "a", "kind": "warp_drive", "shape": [1]}]})");
  EXPECT_EQ(s.code, StatusCode::InvalidArgument);
  EXPECT_NE(s.detail.find("warp_drive"), std::string::npos) << s.detail;
}

TEST(GraphIrErrors, ShapeMismatchIsInvalidArgument) {
  // conv2d's declared shape must equal [out_channels, out_hw, out_hw].
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [
      {"id": "in", "kind": "input", "shape": [3, 224, 224]},
      {"id": "c", "kind": "conv2d", "inputs": ["in"], "shape": [64, 56, 56],
       "attrs": {"in_channels": 3, "out_channels": 64, "kernel": 7,
                 "out_hw": 112}}
    ]})");
  EXPECT_EQ(s.code, StatusCode::InvalidArgument);
}

TEST(GraphIrErrors, DuplicateIdIsAlreadyExists) {
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [
      {"id": "a", "kind": "input", "shape": [384]},
      {"id": "a", "kind": "attention", "inputs": ["a"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}}
    ]})");
  EXPECT_EQ(s.code, StatusCode::AlreadyExists);
}

TEST(GraphIrErrors, WrongFormatOrVersionIsInvalidArgument) {
  dl::graph_ir::Graph g;
  EXPECT_EQ(dl::graph_ir::parseGraph(
                falcon::Json::parse(R"({"format": "onnx", "version": 1})"), &g)
                .code,
            StatusCode::InvalidArgument);
  EXPECT_EQ(dl::graph_ir::parseGraph(
                falcon::Json::parse(
                    R"({"format": "composim-graph-ir", "version": 99})"),
                &g)
                .code,
            StatusCode::InvalidArgument);
}

TEST(GraphIrErrors, UnknownAttrKeyIsInvalidArgument) {
  const Status s = parseText(std::string(kHeader) + R"(
    "ops": [
      {"id": "in", "kind": "input", "shape": [384, 768]},
      {"id": "a", "kind": "attention", "inputs": ["in"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384, "heads": 12}}
    ]})");
  EXPECT_EQ(s.code, StatusCode::InvalidArgument);
  EXPECT_NE(s.detail.find("heads"), std::string::npos) << s.detail;
}

TEST(GraphIrErrors, MissingFileIsNotFound) {
  dl::graph_ir::Graph g;
  const Status s = dl::graph_ir::loadGraphFile("/no/such/file.graph.json", &g);
  EXPECT_EQ(s.code, StatusCode::NotFound);
}

TEST(GraphIrErrors, UnregisteredDatasetIsNotFound) {
  // Valid graph, but its dataset name is not in the registry and not
  // inline: loadGraph must reject it so the workload cannot reach a
  // trainer with no input-pipeline model.
  const std::string text = R"({"format": "composim-graph-ir", "version": 1,
    "model": {"name": "t", "domain": "nlp", "dataset": "MysteryCorpus"},
    "ops": [
      {"id": "in", "kind": "input", "shape": [384, 768]},
      {"id": "a", "kind": "attention", "inputs": ["in"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}}
    ]})";
  const std::string path = testing::TempDir() + "graphir_nodataset.graph.json";
  std::ofstream(path) << text;
  dl::ModelSpec m;
  const Status s = dl::WorkloadRegistry::instance().loadGraph(path, &m);
  EXPECT_EQ(s.code, StatusCode::NotFound);
  EXPECT_NE(s.detail.find("MysteryCorpus"), std::string::npos) << s.detail;
}

TEST(GraphIrLoader, InlineDatasetRegistersAndResolves) {
  const std::string text = R"({"format": "composim-graph-ir", "version": 1,
    "model": {"name": "tiny-lm", "domain": "nlp",
      "dataset": {"name": "TinyCorpus", "train_samples": 1000,
                  "disk_bytes_per_sample": 2560,
                  "cpu_preprocess_per_sample_s": 0.00005,
                  "device_bytes_per_sample": 4608},
      "batch_per_gpu": 4},
    "ops": [
      {"id": "in", "kind": "input", "shape": [384, 768]},
      {"id": "a", "kind": "attention", "inputs": ["in"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}}
    ]})";
  const std::string path = testing::TempDir() + "graphir_inline.graph.json";
  std::ofstream(path) << text;
  const dl::ModelSpec m = dl::workload("graph:" + path);
  EXPECT_EQ(m.dataset, "TinyCorpus");
  const dl::DatasetSpec d = dl::datasetFor(m);
  EXPECT_EQ(d.train_samples, 1000);
  EXPECT_EQ(d.disk_bytes_per_sample, 2560);
  // Re-loading is a no-op, not an AlreadyExists failure.
  EXPECT_NO_THROW(dl::workload("graph:" + path));
}

TEST(GraphIrLowering, DeclarationOrderIsPreservedByStableTopoSort) {
  // Ops declared out of dataflow order still lower in declaration order
  // whenever dependencies allow (stable Kahn), so layer tables do not
  // depend on incidental edge ordering.
  const std::string text = R"({"format": "composim-graph-ir", "version": 1,
    "model": {"name": "t", "domain": "nlp", "dataset": "SQuAD v1.1"},
    "ops": [
      {"id": "in", "kind": "input", "shape": [384, 768]},
      {"id": "a", "kind": "attention", "inputs": ["in"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}},
      {"id": "c", "kind": "transformer_ffn", "inputs": ["b"],
       "shape": [384, 768], "attrs": {"hidden": 768, "ff": 3072, "seq": 384}},
      {"id": "b", "kind": "attention", "inputs": ["a"], "shape": [384, 768],
       "attrs": {"hidden": 768, "seq": 384}}
    ]})";
  dl::graph_ir::Graph g;
  ASSERT_TRUE(dl::graph_ir::parseGraph(falcon::Json::parse(text), &g).ok);
  dl::ModelSpec m;
  ASSERT_TRUE(dl::graph_ir::lower(g, &m).ok);
  ASSERT_EQ(m.layers.size(), 3u);
  EXPECT_EQ(m.layers[0].name, "a");
  EXPECT_EQ(m.layers[1].name, "b");  // ready before c despite later decl
  EXPECT_EQ(m.layers[2].name, "c");
}

}  // namespace
}  // namespace composim
