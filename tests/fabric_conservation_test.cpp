// Conservation properties: bytes requested == bytes delivered == bytes
// counted on links, across randomized concurrent workloads; collective
// bus bandwidth bounded by theory across ring sizes.
#include <gtest/gtest.h>

#include "collectives/communicator.hpp"
#include "fabric/flow_network.hpp"
#include "fabric/link_catalog.hpp"
#include "sim/random.hpp"

namespace composim::fabric {
namespace {

class FlowConservation : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservation, BytesDeliveredEqualBytesRequested) {
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);

  // Random small fabric: hub-and-spoke with a few cross links.
  const NodeId hub = topo.addNode("hub", NodeKind::PcieSwitch);
  std::vector<NodeId> nodes;
  std::vector<LinkId> uplinks;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(topo.addNode("n" + std::to_string(i), NodeKind::Gpu));
    auto [up, down] = topo.addDuplexLink(
        nodes.back(), hub, units::GBps(rng.uniform(1.0, 8.0)), 1e-6,
        LinkKind::PCIe4);
    uplinks.push_back(up);
    (void)down;
  }
  topo.addDuplexLink(nodes[0], nodes[1], units::GBps(4.0), 1e-6, LinkKind::NVLink);

  Bytes requested = 0;
  Bytes delivered = 0;
  for (int f = 0; f < 25; ++f) {
    const auto s = static_cast<std::size_t>(rng.uniformInt(0, 4));
    auto d = static_cast<std::size_t>(rng.uniformInt(0, 4));
    if (d == s) d = (d + 1) % 5;
    const Bytes bytes = units::MiB(rng.uniformInt(1, 64));
    requested += bytes;
    // Stagger starts so arrivals/departures interleave with recomputes.
    sim.schedule(rng.uniform(0.0, 0.05), [&net, &nodes, &delivered, s, d, bytes] {
      net.startFlow(nodes[s], nodes[d], bytes,
                    [&delivered](const FlowResult& r) {
                      EXPECT_EQ(r.status, FlowStatus::Completed);
                      delivered += r.bytes;
                    });
    });
  }
  sim.run();
  EXPECT_EQ(delivered, requested);
  EXPECT_EQ(net.activeFlows(), 0u);
  EXPECT_EQ(net.flowsCompleted(), 25u);
  // Link byte counters carry at most rounding error per flow traversal.
  Bytes counted = 0;
  for (std::size_t l = 0; l < topo.linkCount(); ++l) {
    counted += topo.link(static_cast<LinkId>(l)).counters.bytes;
  }
  EXPECT_GE(counted, requested);  // every flow crosses >= 1 link
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation, ::testing::Range(1, 9));

class RingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeSweep, BusBandwidthBoundedByProtocolRate) {
  const int n = GetParam();
  Simulator sim;
  Topology topo;
  FlowNetwork net(sim, topo);
  const auto spec = catalog::pcie4_x16_slot();
  const NodeId sw = topo.addNode("sw", NodeKind::PcieSwitch);
  std::vector<NodeId> gpus;
  for (int i = 0; i < n; ++i) {
    gpus.push_back(topo.addNode("g" + std::to_string(i), NodeKind::Gpu));
    topo.addDuplexLink(gpus.back(), sw, spec.capacityPerDirection, spec.latency,
                       spec.kind);
  }
  collectives::Communicator comm(sim, net, topo, gpus);
  collectives::CollectiveResult res;
  comm.allReduce(units::MiB(128),
                 [&](const collectives::CollectiveResult& r) { res = r; },
                 collectives::Algorithm::Ring);
  sim.run();
  const double proto = 0.62 * spec.capacityPerDirection;
  const double busbw = res.busBandwidth(n);
  EXPECT_GT(busbw, proto * 0.85);
  EXPECT_LE(busbw, proto * 1.01);
  // Fabric bytes follow the ring formula exactly.
  const double expected =
      n * 2.0 * (n - 1) * (static_cast<double>(units::MiB(128)) / n);
  EXPECT_NEAR(static_cast<double>(res.bytes_on_fabric), expected,
              expected * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeSweep, ::testing::Values(2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace composim::fabric
