// Tests for the end-to-end failure-recovery stack: fault injection ->
// BMC health polling -> recovery orchestrator -> checkpoint-restore.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace composim::core {
namespace {

ExperimentOptions baseOptions() {
  ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 12;
  opt.trainer.checkpoint_every_iters = 4;
  return opt;
}

dl::ModelSpec testModel() {
  for (const auto& m : dl::benchmarkZoo()) {
    if (m.name == "ResNet-50") return m;
  }
  throw std::runtime_error("ResNet-50 missing from the zoo");
}

/// Simulated duration of the fault-free reference run (computed once);
/// fault times are placed at fractions of it so they always land while
/// training is live.
SimTime healthyDuration() {
  static const SimTime t = [] {
    const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(),
                                   baseOptions());
    return r.training.simulated_time;
  }();
  return t;
}

TEST(RecoveryTest, SpareAttachKeepsGangWhole) {
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.spare_gpus = 1;
  opt.faults.health_poll_interval = 0.2;
  opt.faults.gpu_falloffs.push_back({1, 0.4 * healthyDuration()});
  const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  EXPECT_TRUE(r.training.completed);
  EXPECT_GE(r.training.restores, 1);
  ASSERT_TRUE(r.recovery.enabled);
  EXPECT_EQ(r.recovery.final_gang_size, 8u);
  EXPECT_EQ(r.recovery.degradations, 0);
  ASSERT_EQ(r.recovery.incidents.size(), 1u);
  const auto& inc = r.recovery.incidents[0];
  EXPECT_EQ(inc.path, RecoveryIncident::Path::SpareAttach);
  EXPECT_TRUE(inc.resolved());
  EXPECT_GT(inc.mttr(), 0.0);
  EXPECT_GT(r.recovery.mean_mttr, 0.0);
}

TEST(RecoveryTest, NoSpareDegradesInsteadOfAborting) {
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.spare_gpus = 0;
  opt.faults.health_poll_interval = 0.2;
  opt.faults.gpu_falloffs.push_back({2, 0.4 * healthyDuration()});
  const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  EXPECT_TRUE(r.training.completed);
  ASSERT_TRUE(r.recovery.enabled);
  EXPECT_EQ(r.recovery.final_gang_size, 7u);
  EXPECT_EQ(r.recovery.degradations, 1);
  ASSERT_EQ(r.recovery.incidents.size(), 1u);
  EXPECT_EQ(r.recovery.incidents[0].path, RecoveryIncident::Path::Degraded);
  EXPECT_TRUE(r.recovery.incidents[0].resolved());
  // The 12 capped iterations all ran, on the shrunken gang.
  EXPECT_EQ(r.training.iterations_run, 12);
}

TEST(RecoveryTest, SameSeedTwinRunsAreIdentical) {
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.seed = 42;
  opt.faults.spare_gpus = 2;
  opt.faults.health_poll_interval = 0.2;
  opt.faults.attach_failure_rate = 0.3;
  opt.faults.ecc_storms.push_back({0, 0.25 * healthyDuration(), 500});
  opt.faults.gpu_falloffs.push_back({3, 0.5 * healthyDuration()});
  const auto a = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);
  const auto b = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  EXPECT_TRUE(a.training.completed);
  EXPECT_EQ(a.training.iterations_run, b.training.iterations_run);
  EXPECT_EQ(a.training.simulated_time, b.training.simulated_time);
  EXPECT_EQ(a.training.lost_iterations, b.training.lost_iterations);
  EXPECT_EQ(a.training.restores, b.training.restores);
  EXPECT_EQ(a.recovery.faults_injected, b.recovery.faults_injected);
  EXPECT_EQ(a.recovery.detections, b.recovery.detections);
  EXPECT_EQ(a.recovery.reattach_retries, b.recovery.reattach_retries);
  EXPECT_EQ(a.recovery.mean_mttr, b.recovery.mean_mttr);
  ASSERT_EQ(a.recovery.fault_history.size(), b.recovery.fault_history.size());
  for (std::size_t i = 0; i < a.recovery.fault_history.size(); ++i) {
    EXPECT_EQ(a.recovery.fault_history[i].time,
              b.recovery.fault_history[i].time);
    EXPECT_EQ(a.recovery.fault_history[i].kind,
              b.recovery.fault_history[i].kind);
    EXPECT_EQ(a.recovery.fault_history[i].link,
              b.recovery.fault_history[i].link);
  }
  ASSERT_EQ(a.recovery.incidents.size(), b.recovery.incidents.size());
  for (std::size_t i = 0; i < a.recovery.incidents.size(); ++i) {
    EXPECT_EQ(a.recovery.incidents[i].mttr(), b.recovery.incidents[i].mttr());
    EXPECT_EQ(a.recovery.incidents[i].path, b.recovery.incidents[i].path);
  }
}

TEST(RecoveryTest, DetectionLatencyBoundedByPollInterval) {
  const SimTime poll = 0.2;
  const SimTime fault_at = 0.4 * healthyDuration();
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.spare_gpus = 1;
  opt.faults.health_poll_interval = poll;
  opt.faults.gpu_falloffs.push_back({1, fault_at});
  const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  ASSERT_FALSE(r.recovery.detections_log.empty());
  const falcon::FaultEvent* lost = nullptr;
  for (const auto& ev : r.recovery.detections_log) {
    if (ev.type == falcon::FaultEventType::DeviceLost) {
      lost = &ev;
      break;
    }
  }
  ASSERT_NE(lost, nullptr);
  // Detection is not instantaneous (the monitor polls), but never later
  // than one full poll interval after the fault.
  EXPECT_GT(lost->time, fault_at);
  EXPECT_LE(lost->time, fault_at + poll + 1e-9);
}

TEST(RecoveryTest, LostStateBoundedByCheckpointReplayWindow) {
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.spare_gpus = 1;
  opt.faults.health_poll_interval = 0.2;
  opt.faults.gpu_falloffs.push_back({0, 0.6 * healthyDuration()});
  const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  EXPECT_TRUE(r.training.completed);
  ASSERT_GE(r.training.restores, 1);
  EXPECT_LE(r.training.lost_iterations,
            r.training.restores * opt.trainer.checkpoint_every_iters);
  EXPECT_GT(r.training.restore_time, 0.0);
}

TEST(RecoveryTest, TransientAttachFailuresAreRetried) {
  ExperimentOptions opt = baseOptions();
  opt.faults.enabled = true;
  opt.faults.seed = 7;
  opt.faults.spare_gpus = 1;
  opt.faults.health_poll_interval = 0.2;
  opt.faults.attach_failure_rate = 0.9;
  opt.faults.gpu_falloffs.push_back({1, 0.4 * healthyDuration()});
  const auto r = Experiment::run(SystemConfig::FalconGpus, testModel(), opt);

  EXPECT_TRUE(r.training.completed);
  // At 90% transient-failure rate the first attempt essentially never
  // succeeds: retries must have happened, and the run must still finish —
  // via the spare if a retry landed, degraded if the budget ran out.
  EXPECT_GE(r.recovery.reattach_retries, 1u);
  ASSERT_EQ(r.recovery.incidents.size(), 1u);
  const auto& inc = r.recovery.incidents[0];
  EXPECT_TRUE(inc.resolved());
  EXPECT_TRUE(inc.path == RecoveryIncident::Path::SpareAttach ||
              inc.path == RecoveryIncident::Path::Degraded);
  EXPECT_EQ(r.recovery.final_gang_size,
            inc.path == RecoveryIncident::Path::SpareAttach ? 8u : 7u);
}

}  // namespace
}  // namespace composim::core
