// Tests for the bottleneck-attribution analyzer (telemetry::analysis):
// closed-form bucket decomposition and critical-path extraction over a
// hand-built trace, link-contention replay, run-diff semantics, the
// experiment/options wiring, and byte-identical analysis JSON across
// sweep parallelism (the PR 4/6 byte-identity contract extended to the
// analyzer).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "dl/zoo.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/profiler.hpp"

namespace composim::telemetry::analysis {
namespace {

// --- closed-form synthetic trace ---
//
// One iteration on [0, 10] with a fully known decomposition:
//
//   forward  [0,3] compute     backward [3,6] compute
//   gradient-sync [6,9] sync   optimizer [9,10] compute
//   allReduce op span [5,8] (corr 7) on the collectives track
//   one fabric flow [5,8] (corr 7), contended_s = 1.5 of actual 3.0
//
// compute = [0,6] u [9,10] = 7; comm active = [5,8]; overlap with
// compute = [5,6] = 1 (overlapped_comm); comm-only = [6,8] = 2, split
// 50/50 by the contended fraction (1.5/3.0) into exposed_comm = 1 and
// fabric_contention = 1; neither active = [8,9] = 1 (stall).
// Partition: 7 + 1 + 1 + 1 = 10 = wall, exactly.
void buildSyntheticTrace(Simulator& sim, Profiler& prof) {
  AsyncSpanId* flow = new AsyncSpanId(kInvalidAsyncSpan);
  const std::string trainer = "trainer/gpu0";
  const std::string coll = "collectives/gpu0 x2";
  sim.schedule(0.0, [&prof, trainer] {
    prof.beginSpan(trainer, "trainer", "iteration", {{"iter", 4}});
    prof.beginSpan(trainer, "trainer", "forward", {{"bucket", "compute"}});
  });
  sim.schedule(3.0, [&prof, trainer] {
    prof.endSpan(trainer);
    prof.beginSpan(trainer, "trainer", "backward", {{"bucket", "compute"}});
  });
  sim.schedule(5.0, [&prof, coll, flow] {
    prof.beginSpan(coll, "collective", "allReduce",
                   {{"algorithm", "ring"}, {"corr", 7}});
    *flow = prof.beginAsyncSpan(
        "fabric", "nccl",
        {{"src", "gpu0"}, {"dst", "gpu1"}, {"bytes", 100}, {"corr", 7}});
  });
  sim.schedule(6.0, [&prof, trainer] {
    prof.endSpan(trainer);
    prof.beginSpan(trainer, "trainer", "gradient-sync", {{"bucket", "sync"}});
  });
  sim.schedule(8.0, [&prof, coll, flow] {
    prof.endAsyncSpan(*flow, {{"contended_s", 1.5}});
    prof.endSpan(coll);
    delete flow;
  });
  sim.schedule(9.0, [&prof, trainer] {
    prof.endSpan(trainer);
    prof.beginSpan(trainer, "trainer", "optimizer", {{"bucket", "compute"}});
  });
  sim.schedule(10.0, [&prof, trainer] {
    prof.endSpan(trainer);
    prof.endSpan(trainer);  // iteration
  });
}

TEST(Analysis, ClosedFormBucketsAndCriticalPath) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  buildSyntheticTrace(sim, prof);
  sim.run();
  prof.finalize();

  const RunAnalysis a = analyzeProfile(prof, "synthetic");
  ASSERT_EQ(a.iterations, 1u);
  const IterationAnalysis& it = a.per_iteration.front();
  EXPECT_EQ(it.iter, 4);
  EXPECT_DOUBLE_EQ(it.buckets.wall, 10.0);
  EXPECT_DOUBLE_EQ(it.buckets.compute, 7.0);
  EXPECT_DOUBLE_EQ(it.buckets.overlapped_comm, 1.0);
  EXPECT_DOUBLE_EQ(it.buckets.exposed_comm, 1.0);
  EXPECT_DOUBLE_EQ(it.buckets.fabric_contention, 1.0);
  EXPECT_DOUBLE_EQ(it.buckets.stall, 1.0);
  EXPECT_DOUBLE_EQ(it.buckets.partitionSum(), it.buckets.wall);
  EXPECT_DOUBLE_EQ(it.attribution_error_pct, 0.0);
  EXPECT_DOUBLE_EQ(it.coverage_pct, 100.0);
  EXPECT_LE(a.max_attribution_error_pct, kAttributionTolerancePct);

  // Critical path: the four phases in order, with the sync phase joined
  // through the op's correlation id down to the bounding flow.
  ASSERT_EQ(it.critical_path.size(), 4u);
  EXPECT_EQ(it.critical_path[0].name, "forward");
  EXPECT_EQ(it.critical_path[1].name, "backward");
  EXPECT_EQ(it.critical_path[2].name, "gradient-sync");
  EXPECT_EQ(it.critical_path[3].name, "optimizer");
  EXPECT_EQ(it.critical_path[2].bucket, "sync");
  EXPECT_EQ(it.critical_path[2].detail,
            "allReduce[ring] -> last flow gpu0->gpu1");

  // Span means include trainer phases, collective ops and flow tags.
  EXPECT_DOUBLE_EQ(a.span_mean_s.at("forward"), 3.0);
  EXPECT_DOUBLE_EQ(a.span_mean_s.at("gradient-sync"), 3.0);
  EXPECT_DOUBLE_EQ(a.span_mean_s.at("allReduce"), 3.0);
  EXPECT_DOUBLE_EQ(a.span_mean_s.at("flow:nccl"), 3.0);

  // The JSON export carries the schema tag and the same numbers.
  const falcon::Json doc = toJson(a);
  EXPECT_EQ(doc.at("schema").asString(), "composim.analysis/1");
  EXPECT_DOUBLE_EQ(doc.at("mean").at("compute_s").asDouble(), 7.0);
  // report() renders without throwing and names the run.
  EXPECT_NE(report(a).find("synthetic"), std::string::npos);
}

TEST(Analysis, LinkContentionReplaysCounterSeries) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  const std::string link = "link:gpu0->gpu1";
  // Need one iteration so the analysis is non-empty.
  buildSyntheticTrace(sim, prof);
  sim.schedule(0.0, [&] {
    prof.setCounter(link, "util_pct", 80.0);
    prof.setCounter(link, "flows", 1.0);
  });
  sim.schedule(2.0, [&] {
    prof.setCounter(link, "util_pct", 100.0);
    prof.setCounter(link, "flows", 2.0);
  });
  sim.schedule(6.0, [&] {
    prof.setCounter(link, "util_pct", 0.0);
    prof.setCounter(link, "flows", 0.0);
  });
  sim.run();
  prof.finalize();  // trace ends at t = 10

  const RunAnalysis a = analyzeProfile(prof, "links");
  ASSERT_EQ(a.links.size(), 1u);
  const LinkContention& lc = a.links.front();
  EXPECT_EQ(lc.link, link);
  // busy = 0.8 * 2s + 1.0 * 4s = 5.6; contention counts only the [2, 6)
  // window where 2 flows shared the link = 1.0 * 4s.
  EXPECT_DOUBLE_EQ(lc.busy_s, 5.6);
  EXPECT_DOUBLE_EQ(lc.contention_s, 4.0);
  // Time-weighted mean over [0, 10]: (160 + 400) / 10.
  EXPECT_DOUBLE_EQ(lc.util_mean_pct, 56.0);
}

TEST(Analysis, EmptyTraceYieldsEmptyAnalysis) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  sim.run();
  prof.finalize();
  const RunAnalysis a = analyzeProfile(prof, "empty");
  EXPECT_EQ(a.iterations, 0u);
  EXPECT_NE(report(a).find("no iteration spans"), std::string::npos);
}

// --- run-diff semantics ---

TEST(Analysis, DiffAttributesDeltaToBucketsAndSpans) {
  RunAnalysis base;
  base.name = "local";
  base.mean.wall = 1.0;
  base.mean.compute = 0.6;
  base.mean.exposed_comm = 0.3;
  base.mean.stall = 0.1;
  base.span_mean_s = {{"forward", 0.4}, {"gradient-sync", 0.3}};

  RunAnalysis other;
  other.name = "falcon";
  other.mean.wall = 1.4;
  other.mean.compute = 0.6;
  other.mean.exposed_comm = 0.65;
  other.mean.fabric_contention = 0.05;
  other.mean.stall = 0.1;
  other.span_mean_s = {{"forward", 0.4}, {"gradient-sync", 0.7}};

  const RunDiff d = diffRuns(base, other);
  EXPECT_EQ(d.base, "local");
  EXPECT_EQ(d.other, "falcon");
  EXPECT_DOUBLE_EQ(d.wall_delta_s, 0.4);
  EXPECT_EQ(d.dominant_bucket, "exposed_comm");
  ASSERT_FALSE(d.bucket_deltas.empty());
  EXPECT_EQ(d.bucket_deltas.front().first, "exposed_comm");
  EXPECT_DOUBLE_EQ(d.bucket_deltas.front().second, 0.35);
  // forward was unchanged, so only gradient-sync survives the filter.
  ASSERT_EQ(d.span_deltas.size(), 1u);
  EXPECT_EQ(d.span_deltas.front().first, "gradient-sync");
  EXPECT_DOUBLE_EQ(d.span_deltas.front().second, 0.4);

  const falcon::Json doc = toJson(d);
  EXPECT_EQ(doc.at("schema").asString(), "composim.analysis.diff/1");
  EXPECT_EQ(doc.at("dominant_bucket").asString(), "exposed_comm");
  EXPECT_NE(report(d).find("falcon vs local"), std::string::npos);
}

TEST(Analysis, DiffOfIdenticalRunsIsNone) {
  RunAnalysis a;
  a.name = "x";
  a.mean.wall = 1.0;
  a.mean.compute = 1.0;
  const RunDiff d = diffRuns(a, a);
  EXPECT_DOUBLE_EQ(d.wall_delta_s, 0.0);
  EXPECT_EQ(d.dominant_bucket, "none");
  EXPECT_TRUE(d.span_deltas.empty());
}

// --- experiment wiring + sweep byte-identity ---

core::ExperimentSpec tinySpec(const std::string& name) {
  core::ExperimentSpec s;
  s.name = name;
  s.workload = "MobileNetV2";
  s.config = name == "tiny-falcon" ? core::SystemConfig::FalconGpus
                                   : core::SystemConfig::LocalGpus;
  s.options.workload = s.workload;
  s.options.trainer.epochs = 1;
  s.options.trainer.max_iterations_per_epoch = 3;
  s.options.analysis = true;
  return s;
}

TEST(Analysis, ExperimentOptionProducesAnalysis) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 3;
  opt.analysis = true;  // implies trace
  const auto r = core::Experiment::run(core::SystemConfig::LocalGpus,
                                       dl::workload("MobileNetV2"), opt);
  ASSERT_NE(r.profiler, nullptr);
  ASSERT_NE(r.analysis, nullptr);
  EXPECT_EQ(r.analysis->iterations, 3u);
  EXPECT_LE(r.analysis->max_attribution_error_pct, kAttributionTolerancePct);
  EXPECT_GE(r.analysis->coverage_pct, 95.0);
  EXPECT_GT(r.analysis->mean.compute, 0.0);
  // Every critical path is non-empty and tiles most of its iteration.
  for (const IterationAnalysis& it : r.analysis->per_iteration) {
    EXPECT_FALSE(it.critical_path.empty());
    EXPECT_GE(it.coverage_pct, 95.0);
  }
}

TEST(Analysis, NoAnalysisOptionMeansNullAnalysis) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 2;
  opt.trace = true;
  const auto r = core::Experiment::run(core::SystemConfig::LocalGpus,
                                       dl::workload("MobileNetV2"), opt);
  EXPECT_EQ(r.analysis, nullptr);
}

std::vector<std::string> analysisDumps(int jobs) {
  core::SweepRunner runner({jobs});
  const auto runs =
      runner.run({tinySpec("tiny-local"), tinySpec("tiny-falcon")}, {});
  std::vector<std::string> dumps;
  for (const auto& run : runs) {
    EXPECT_TRUE(run.status.ok) << run.status.toString();
    if (run.result.analysis) {
      dumps.push_back(toJson(*run.result.analysis).dump(2));
    }
  }
  return dumps;
}

TEST(Analysis, ByteIdenticalAcrossSweepParallelism) {
  const std::vector<std::string> serial = analysisDumps(1);
  const std::vector<std::string> parallel = analysisDumps(4);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace composim::telemetry::analysis
