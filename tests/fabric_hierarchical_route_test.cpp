// Hierarchical-vs-flat routing equivalence: route() with domain tables
// enabled must match the flat-Dijkstra oracle (routeFlat) in reachability
// and total latency on every pair, including after link failures and on
// paths that detour out of and back into a domain. Link latencies are
// exact binary fractions (k / 2^20 seconds) so equal-cost paths sum
// bitwise-identically and the comparisons below can demand exact equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fabric/topology.hpp"

namespace composim::fabric {
namespace {

double lat(int k) { return static_cast<double>(k) / 1048576.0; }

/// Deterministic xorshift so every run sees identical topologies.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// Check every (src, dst) pair: same reachability, bitwise-equal latency,
/// and a structurally valid hierarchical path (contiguous src->dst over up
/// links, latency/bottleneck consistent with the link sequence).
void expectEquivalent(const Topology& topo) {
  const int n = static_cast<int>(topo.nodeCount());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      const auto flat = topo.routeFlat(s, d);
      const auto hier = topo.route(s, d);
      ASSERT_EQ(flat.has_value(), hier.has_value())
          << "reachability mismatch " << s << "->" << d;
      if (!flat) continue;
      EXPECT_EQ(flat->latency, hier->latency)
          << "latency mismatch " << s << "->" << d;
      // Path validity.
      NodeId cur = s;
      double sum = 0.0;
      double bottleneck = std::numeric_limits<double>::infinity();
      for (LinkId lid : hier->links) {
        const Link& l = topo.link(lid);
        ASSERT_EQ(l.src, cur) << "discontiguous path " << s << "->" << d;
        ASSERT_TRUE(l.up) << "path uses a down link " << s << "->" << d;
        sum += l.latency;
        bottleneck = std::min(bottleneck, l.capacity);
        cur = l.dst;
      }
      ASSERT_EQ(cur, d) << "path does not end at dst " << s << "->" << d;
      EXPECT_EQ(hier->latency, sum);
      if (!hier->links.empty()) {
        EXPECT_EQ(hier->bottleneck, bottleneck);
      }
    }
  }
}

TEST(HierarchicalRoute, TwoDomainChassisPair) {
  Topology t;
  // Domain 0: hub + 3 leaves; domain 1: hub + 3 leaves; duplex inter link.
  const NodeId h0 = t.addNode("h0", NodeKind::PcieSwitch);
  const NodeId h1 = t.addNode("h1", NodeKind::PcieSwitch);
  std::vector<NodeId> leaves0, leaves1;
  for (int i = 0; i < 3; ++i) {
    const NodeId a = t.addNode("a" + std::to_string(i), NodeKind::Gpu);
    t.addDuplexLink(a, h0, 1e9, lat(2 + i), LinkKind::PCIe4);
    leaves0.push_back(a);
    const NodeId b = t.addNode("b" + std::to_string(i), NodeKind::Gpu);
    t.addDuplexLink(b, h1, 1e9, lat(2 + i), LinkKind::PCIe4);
    leaves1.push_back(b);
  }
  t.addDuplexLink(h0, h1, 2e9, lat(10), LinkKind::HostAdapter);
  t.setNodeDomain(h1, 1);
  for (NodeId b : leaves1) t.setNodeDomain(b, 1);
  t.setHierarchicalRouting(true);

  expectEquivalent(t);
  // Cross-domain path runs leaf -> hub -> hub -> leaf.
  const auto r = t.route(leaves0[0], leaves1[2]);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->links.size(), 3u);
  EXPECT_EQ(r->latency, lat(2) + lat(10) + lat(4));
}

TEST(HierarchicalRoute, SameDomainDetourThroughOtherDomain) {
  Topology t;
  // x and y share a domain but their only intra link is down, so the
  // shortest (and only) path exits via domain 1 and re-enters.
  const NodeId x = t.addNode("x", NodeKind::Gpu);
  const NodeId y = t.addNode("y", NodeKind::Gpu);
  const NodeId m = t.addNode("m", NodeKind::PcieSwitch);
  t.setNodeDomain(m, 1);
  const auto [xy, yx] = t.addDuplexLink(x, y, 1e9, lat(1), LinkKind::NVLink);
  t.addDuplexLink(x, m, 1e9, lat(5), LinkKind::PCIe4);
  t.addDuplexLink(m, y, 1e9, lat(7), LinkKind::PCIe4);
  t.setHierarchicalRouting(true);

  expectEquivalent(t);
  t.setLinkUp(xy, false);
  t.setLinkUp(yx, false);
  expectEquivalent(t);
  const auto r = t.route(x, y);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->latency, lat(5) + lat(7));
  EXPECT_EQ(r->links.size(), 2u);
}

TEST(HierarchicalRoute, SingleDomainFallsBackToFlatPaths) {
  Topology t;
  const NodeId a = t.addNode("a", NodeKind::Gpu);
  const NodeId b = t.addNode("b", NodeKind::Gpu);
  const NodeId c = t.addNode("c", NodeKind::Gpu);
  t.addDuplexLink(a, b, 1e9, lat(1), LinkKind::NVLink);
  t.addDuplexLink(b, c, 1e9, lat(1), LinkKind::NVLink);
  t.setHierarchicalRouting(true);  // no second domain: degenerates to flat
  const auto hier = t.route(a, c);
  const auto flat = t.routeFlat(a, c);
  ASSERT_TRUE(hier.has_value());
  EXPECT_EQ(hier->links, flat->links);  // identical path, not just latency
}

TEST(HierarchicalRoute, UnreachableCrossDomainMatchesOracle) {
  Topology t;
  const NodeId a = t.addNode("a", NodeKind::Gpu);
  const NodeId b = t.addNode("b", NodeKind::Gpu);
  t.setNodeDomain(b, 1);
  const auto [ab, ba] = t.addDuplexLink(a, b, 1e9, lat(1), LinkKind::PCIe4);
  t.setHierarchicalRouting(true);
  EXPECT_TRUE(t.route(a, b).has_value());
  t.setLinkUp(ab, false);
  t.setLinkUp(ba, false);
  EXPECT_FALSE(t.route(a, b).has_value());
  EXPECT_FALSE(t.routeFlat(a, b).has_value());
  expectEquivalent(t);
}

TEST(HierarchicalRoute, SnapshotRoundTripsDomainsAndDropsTables) {
  Topology t;
  const NodeId a = t.addNode("a", NodeKind::Gpu);
  const NodeId b = t.addNode("b", NodeKind::Gpu);
  t.setNodeDomain(b, 1);
  t.addDuplexLink(a, b, 1e9, lat(3), LinkKind::PCIe4);
  t.setHierarchicalRouting(true);
  ASSERT_TRUE(t.route(a, b).has_value());
  const auto before_builds = t.hierarchyBuilds();
  const auto st = t.state();
  EXPECT_EQ(st.domains.size(), t.nodeCount());
  EXPECT_EQ(st.domains[1], 1);
  EXPECT_TRUE(st.hierarchical);
  t.restoreState(st);
  // Tables were dropped; the next route rebuilds them lazily.
  ASSERT_TRUE(t.route(a, b).has_value());
  EXPECT_GT(t.hierarchyBuilds(), before_builds);
}

TEST(HierarchicalRoute, RestoreRejectsDomainMismatch) {
  Topology t;
  t.addNode("a", NodeKind::Gpu);
  const NodeId b = t.addNode("b", NodeKind::Gpu);
  t.setNodeDomain(b, 1);
  auto st = t.state();
  st.domains[1] = 2;  // snapshot from a differently configured topology
  EXPECT_THROW(t.restoreState(st), std::logic_error);
  st.domains[1] = 1;
  st.hierarchical = true;  // flag mismatch is structural too
  EXPECT_THROW(t.restoreState(st), std::logic_error);
}

TEST(HierarchicalRoute, HierarchyRebuildsOnlyOnTopologyChange) {
  Topology t;
  const NodeId a = t.addNode("a", NodeKind::Gpu);
  const NodeId b = t.addNode("b", NodeKind::Gpu);
  t.setNodeDomain(b, 1);
  t.addDuplexLink(a, b, 1e9, lat(3), LinkKind::PCIe4);
  t.setHierarchicalRouting(true);
  ASSERT_TRUE(t.route(a, b).has_value());
  const auto builds = t.hierarchyBuilds();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.route(a, b).has_value());
  EXPECT_EQ(t.hierarchyBuilds(), builds);  // cached queries don't rebuild
  t.invalidateRoutes();
  ASSERT_TRUE(t.route(b, a).has_value());
  EXPECT_EQ(t.hierarchyBuilds(), builds + 1);
}

class RandomizedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEquivalence, MatchesFlatOracleIncludingDownLinks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Topology t;
  const int domains = rng.range(2, 4);
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) {
    const int count = rng.range(3, 7);
    for (int i = 0; i < count; ++i) {
      const NodeId n = t.addNode("d" + std::to_string(d) + "n" + std::to_string(i),
                                 NodeKind::Gpu);
      if (d > 0) t.setNodeDomain(n, d);
      members[static_cast<std::size_t>(d)].push_back(n);
    }
  }
  // Intra-domain: a connecting chain plus random extra edges.
  std::vector<LinkId> links;
  const auto connect = [&](NodeId a, NodeId b) {
    const auto [f, r] =
        t.addDuplexLink(a, b, 1e8 * rng.range(1, 8), lat(rng.range(1, 64)),
                        LinkKind::PCIe4);
    links.push_back(f);
    links.push_back(r);
  };
  for (const auto& dom : members) {
    for (std::size_t i = 1; i < dom.size(); ++i) connect(dom[i - 1], dom[i]);
    const int extra = rng.range(0, 3);
    for (int e = 0; e < extra; ++e) {
      const NodeId a = dom[static_cast<std::size_t>(
          rng.range(0, static_cast<int>(dom.size()) - 1))];
      const NodeId b = dom[static_cast<std::size_t>(
          rng.range(0, static_cast<int>(dom.size()) - 1))];
      if (a != b) connect(a, b);
    }
  }
  // Inter-domain: each adjacent domain pair gets 1-2 random links, plus a
  // random extra pair so border graphs are not always chains.
  for (int d = 1; d < domains; ++d) {
    const auto& prev = members[static_cast<std::size_t>(d - 1)];
    const auto& cur = members[static_cast<std::size_t>(d)];
    const int count = rng.range(1, 2);
    for (int e = 0; e < count; ++e) {
      connect(prev[static_cast<std::size_t>(
                  rng.range(0, static_cast<int>(prev.size()) - 1))],
              cur[static_cast<std::size_t>(
                  rng.range(0, static_cast<int>(cur.size()) - 1))]);
    }
  }
  if (domains > 2) {
    const auto& a = members.front();
    const auto& b = members.back();
    connect(a[static_cast<std::size_t>(rng.range(0, static_cast<int>(a.size()) - 1))],
            b[static_cast<std::size_t>(rng.range(0, static_cast<int>(b.size()) - 1))]);
  }
  t.setHierarchicalRouting(true);

  expectEquivalent(t);
  // Knock out ~20% of links (possibly disconnecting domains) and re-check.
  for (LinkId l : links) {
    if (rng.range(0, 4) == 0) t.setLinkUp(l, false);
  }
  expectEquivalent(t);
  // Restore and check the rebuild path once more.
  for (LinkId l : links) t.setLinkUp(l, true);
  expectEquivalent(t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence, ::testing::Range(1, 13));

}  // namespace
}  // namespace composim::fabric
