// Tests for the span/counter profiler and its Chrome trace_event export:
// record mechanics, time-weighted counters, trace structure for a real
// 2-GPU DDP training run, and determinism across identical seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/composable_system.hpp"
#include "core/experiment.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"
#include "telemetry/profiler.hpp"

namespace composim::telemetry {
namespace {

using core::ComposableSystem;
using core::SystemConfig;

// --- unit mechanics on a bare simulator ---

TEST(Profiler, TrackSpansRecordBeginEndAtSimTime) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  sim.schedule(1.0, [&] {
    auto s = prof.span("test", "outer");
    prof.beginSpan("test", "test", "inner");
    s.end();  // E records close LIFO per track: this closes "inner"
    sim.schedule(0.5, [&prof] { prof.endSpan("test"); });
  });
  sim.run();
  // Records: B outer, B inner, E (s.end at t=1), E (scheduled at t=1.5)
  ASSERT_EQ(prof.recordCount(), 4u);
  const falcon::Json doc = prof.chromeTrace();
  const auto& events = doc.at("traceEvents").asArray();
  // 1 process_name + 1 thread_name metadata, then the 4 records.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[2].at("ph").asString(), "B");
  EXPECT_EQ(events[2].at("name").asString(), "outer");
  EXPECT_DOUBLE_EQ(events[2].at("ts").asDouble(), 1.0e6);
  EXPECT_EQ(events[3].at("ph").asString(), "B");
  EXPECT_EQ(events[4].at("ph").asString(), "E");
  EXPECT_DOUBLE_EQ(events[4].at("ts").asDouble(), 1.0e6);
  EXPECT_EQ(events[5].at("ph").asString(), "E");
  EXPECT_DOUBLE_EQ(events[5].at("ts").asDouble(), 1.5e6);
}

TEST(Profiler, AsyncSpansPairByCorrelationId) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  const AsyncSpanId a = prof.beginAsyncSpan("net", "flowA");
  const AsyncSpanId b = prof.beginAsyncSpan("net", "flowB");
  EXPECT_NE(a, kInvalidAsyncSpan);
  EXPECT_NE(a, b);
  sim.schedule(2.0, [&] {
    prof.endAsyncSpan(b);
    prof.endAsyncSpan(a);
  });
  sim.run();
  const falcon::Json doc = prof.chromeTrace();
  const auto& events = doc.at("traceEvents").asArray();
  // metadata (process + 1 track) + b,b,e,e
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[2].at("ph").asString(), "b");
  EXPECT_EQ(events[4].at("ph").asString(), "e");
  // End records repeat the name and carry the id of their begin.
  EXPECT_EQ(events[4].at("name").asString(), "flowB");
  EXPECT_EQ(events[4].at("id").asInt(), events[3].at("id").asInt());
  EXPECT_EQ(events[5].at("name").asString(), "flowA");
  EXPECT_EQ(events[5].at("id").asInt(), events[2].at("id").asInt());
  // Double-end is ignored.
  prof.endAsyncSpan(a);
  EXPECT_EQ(prof.recordCount(), 4u);
}

TEST(Profiler, CountersDedupAndIntegrate) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  prof.setCounter("link", "util", 50.0);
  sim.schedule(1.0, [&] {
    prof.setCounter("link", "util", 50.0);  // unchanged: no record
    prof.setCounter("link", "util", 100.0);
  });
  sim.schedule(2.0, [&] { prof.setCounter("link", "util", 0.0); });
  sim.run();
  EXPECT_EQ(prof.recordCount(), 3u);  // the duplicate was dropped
  EXPECT_DOUBLE_EQ(prof.counterValue("link", "util"), 0.0);
  // Time-weighted: 50 for 1s, 100 for 1s, 0 afterwards -> mean 75 at t=2.
  EXPECT_DOUBLE_EQ(prof.counterMean("link", "util"), 75.0);
  prof.finalize();
  EXPECT_DOUBLE_EQ(prof.counterMean("link", "util"), 75.0);
}

TEST(Profiler, HasCounterDistinguishesUnsetFromZero) {
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  prof.setCounter("link", "util", 0.0);
  // counterValue returns 0.0 either way; hasCounter tells them apart.
  EXPECT_DOUBLE_EQ(prof.counterValue("link", "util"), 0.0);
  EXPECT_DOUBLE_EQ(prof.counterValue("link", "flows"), 0.0);
  EXPECT_TRUE(prof.hasCounter("link", "util"));
  EXPECT_FALSE(prof.hasCounter("link", "flows"));
  EXPECT_FALSE(prof.hasCounter("nope", "util"));
  prof.finalize();
  EXPECT_TRUE(prof.hasCounter("link", "util"));
}

TEST(Profiler, FinalizeFreezesAndDetaches) {
  Simulator sim;
  auto prof = std::make_shared<Profiler>(sim);
  sim.setProfiler(prof.get());
  sim.schedule(1.0, [&] { prof->setCounter("c", "v", 10.0); });
  sim.run();
  prof->finalize();
  const std::size_t n = prof->recordCount();
  // Recording stops after finalize.
  prof->instant("x", "late");
  prof->setCounter("c", "v", 99.0);
  EXPECT_EQ(prof->recordCount(), n);
  EXPECT_DOUBLE_EQ(prof->counterValue("c", "v"), 10.0);
}

TEST(Profiler, DisabledProfilerAddsZeroRecords) {
  Simulator sim;
  Profiler prof(sim);
  prof.setEnabled(false);
  sim.setProfiler(&prof);
  auto s = prof.span("cat", "noop");
  prof.beginSpan("t", "cat", "x");
  prof.endSpan("t");
  EXPECT_EQ(prof.beginAsyncSpan("cat", "y"), kInvalidAsyncSpan);
  prof.endAsyncSpan(1);
  prof.setCounter("c", "v", 1.0);
  prof.instant("cat", "z");
  s.end();
  EXPECT_EQ(prof.recordCount(), 0u);
  const falcon::Json doc = prof.chromeTrace();
  EXPECT_EQ(doc.at("traceEvents").asArray().size(), 1u);  // process metadata
}

TEST(Profiler, MaxRecordsDropsNewSpansWhole) {
  Simulator sim;
  Profiler prof(sim);
  prof.setMaxRecords(4);
  sim.setProfiler(&prof);
  prof.beginSpan("t", "c", "a");
  prof.beginSpan("t", "c", "b");
  prof.setCounter("lnk", "util", 50.0);
  prof.instant("c", "mark");  // 4 records: at capacity from here on
  EXPECT_EQ(prof.recordCount(), 4u);

  // New work past the cap is dropped whole.
  prof.beginSpan("t", "c", "dropped");
  prof.instant("c", "late");
  EXPECT_EQ(prof.beginAsyncSpan("c", "flow"), kInvalidAsyncSpan);
  sim.schedule(1.0, [&] {
    prof.setCounter("lnk", "util", 100.0);  // record dropped, integral kept
    prof.endSpan("t");  // closes "dropped": suppressed with its begin
    prof.endSpan("t");  // closes "b": begin was recorded, so this appends
    prof.endSpan("t");  // closes "a": appends (bounded overshoot)
  });
  sim.run();
  EXPECT_EQ(prof.recordCount(), 6u);
  EXPECT_EQ(prof.droppedRecords(), 5u);
  prof.finalize();
  // Counter integral stayed exact across the dropped record: 50 held for
  // the full [0, 1] window (the 100 landed at the finalize instant).
  EXPECT_DOUBLE_EQ(prof.counterMean("lnk", "util"), 50.0);

  // The exported stream is still balanced.
  const falcon::Json trace = prof.chromeTrace();
  std::map<std::int64_t, int> depth;
  for (const auto& e : trace.at("traceEvents").asArray()) {
    const std::string ph = e.at("ph").asString();
    if (ph == "B") ++depth[e.at("tid").asInt()];
    if (ph == "E") {
      --depth[e.at("tid").asInt()];
      EXPECT_GE(depth[e.at("tid").asInt()], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(ProfilerTrace, CollidingTimestampsExportInDocumentedOrder) {
  // Two tracks interleave records at the same simulated instant; the
  // export must group them by track (time, track id, sequence) instead
  // of leaking the event-execution interleaving.
  auto record = [](Profiler& prof) {
    prof.beginSpan("beta", "c", "b1");
    prof.beginSpan("alpha", "c", "a1");
    prof.endSpan("beta");
    prof.endSpan("alpha");
    prof.beginSpan("beta", "c", "b2");
    prof.endSpan("beta");
  };
  Simulator sim;
  Profiler prof(sim);
  sim.setProfiler(&prof);
  sim.schedule(1.0, [&] { record(prof); });
  sim.run();
  ASSERT_EQ(prof.recordCount(), 6u);

  const auto order = prof.exportOrder();
  const auto& recs = prof.records();
  std::vector<std::pair<char, std::uint32_t>> got;
  for (const std::size_t idx : order) {
    got.emplace_back(recs[idx].phase, recs[idx].tid);
  }
  // beta = tid 0 (first use), alpha = tid 1: all beta records first, in
  // per-track recording order (depth-correct), then alpha's pair.
  const std::vector<std::pair<char, std::uint32_t>> want = {
      {'B', 0}, {'E', 0}, {'B', 0}, {'E', 0}, {'B', 1}, {'E', 1}};
  EXPECT_EQ(got, want);

  // Identical runs export byte-identically even with the collisions.
  Simulator sim2;
  Profiler prof2(sim2);
  sim2.setProfiler(&prof2);
  sim2.schedule(1.0, [&] { record(prof2); });
  sim2.run();
  EXPECT_EQ(prof.chromeTrace().dump(-1), prof2.chromeTrace().dump(-1));
}

// --- structural checks on a real 2-GPU DDP run ---

struct TraceRun {
  std::string dump;       // compact chromeTrace JSON
  std::size_t records = 0;
  std::shared_ptr<Profiler> profiler;
};

TraceRun runTinyDdp(bool trace) {
  ComposableSystem sys{SystemConfig::LocalGpus};
  auto gpus = sys.trainingGpus();
  gpus.resize(2);  // 2-rank DDP
  std::shared_ptr<Profiler> prof;
  if (trace) {
    prof = std::make_shared<Profiler>(sys.sim());
    sys.sim().setProfiler(prof.get());
  }
  dl::TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 3;
  opt.strategy = dl::Strategy::DistributedDataParallel;
  dl::Trainer trainer(sys.sim(), sys.network(), sys.topology(), gpus,
                      sys.cpu(), sys.hostMemory(), sys.trainingStorage(),
                      dl::workload("MobileNetV2"), dl::datasetFor(dl::workload("MobileNetV2")),
                      opt);
  bool completed = false;
  trainer.start([&](const dl::TrainingResult& r) { completed = r.completed; });
  sys.sim().run();
  EXPECT_TRUE(completed);
  TraceRun out;
  if (prof) {
    prof->finalize();
    sys.sim().setProfiler(nullptr);
    out.dump = prof->chromeTrace().dump(-1);
    out.records = prof->recordCount();
    out.profiler = prof;
  }
  return out;
}

TEST(ProfilerTrace, DeterministicAcrossIdenticalRuns) {
  const TraceRun a = runTinyDdp(true);
  const TraceRun b = runTinyDdp(true);
  EXPECT_GT(a.records, 0u);
  EXPECT_EQ(a.dump, b.dump);
}

TEST(ProfilerTrace, UninstrumentedRunStillCompletes) {
  const TraceRun r = runTinyDdp(false);
  EXPECT_EQ(r.records, 0u);
}

TEST(ProfilerTrace, SpansNestAndTimesAreMonotonic) {
  const TraceRun run = runTinyDdp(true);
  const falcon::Json doc = falcon::Json::parse(run.dump);
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_GT(events.size(), 10u);

  std::map<std::int64_t, int> depth;  // per-tid open B spans
  double last_ts = 0.0;
  bool first = true;
  std::set<std::string> names;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").asString();
    if (ph == "M") continue;
    const double ts = e.at("ts").asDouble();
    if (!first) {
      EXPECT_GE(ts, last_ts);  // records append in event order
    }
    last_ts = ts;
    first = false;
    const std::int64_t tid = e.at("tid").asInt();
    if (ph == "B") {
      ++depth[tid];
    } else if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "unbalanced E on tid " << tid;
    } else if (ph == "b" || ph == "e") {
      EXPECT_NE(e.find("id"), nullptr);
    }
    if (const auto* n = e.find("name")) names.insert(n->asString());
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "track " << tid << " ended with open spans";
  }

  // The trainer/collectives/fabric layers all contributed spans.
  for (const char* required :
       {"iteration", "forward", "backward", "gradient-sync", "optimizer",
        "step-overhead", "checkpoint", "prefetch", "h2d", "allReduce"}) {
    EXPECT_TRUE(names.count(required)) << "missing span '" << required << "'";
  }
  // Per-link counters were published.
  bool link_counter = false;
  for (const auto& n : names) {
    if (n.rfind("link:", 0) == 0) link_counter = true;
  }
  EXPECT_TRUE(link_counter) << "no link utilization counters in trace";
}

TEST(ProfilerTrace, LinkCountersStayInRange) {
  const TraceRun run = runTinyDdp(true);
  const falcon::Json doc = falcon::Json::parse(run.dump);
  int counter_records = 0;
  for (const auto& e : doc.at("traceEvents").asArray()) {
    if (e.at("ph").asString() != "C") continue;
    const std::string name = e.at("name").asString();
    if (name.rfind("link:", 0) != 0) continue;
    ++counter_records;
    const auto& args = e.at("args");
    if (const auto* u = args.find("util_pct")) {
      EXPECT_GE(u->asDouble(), 0.0);
      EXPECT_LE(u->asDouble(), 100.0 + 1e-6);
    }
    if (const auto* f = args.find("flows")) {
      EXPECT_GE(f->asDouble(), 0.0);
    }
  }
  EXPECT_GT(counter_records, 0);
}

// --- experiment wiring ---

TEST(ProfilerTrace, ExperimentTraceOptionProducesProfiler) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 2;
  opt.trace = true;
  const auto r =
      core::Experiment::run(SystemConfig::LocalGpus, dl::workload("MobileNetV2"), opt);
  ASSERT_NE(r.profiler, nullptr);
  EXPECT_GT(r.profiler->recordCount(), 0u);

  // Round-trip through the file writer.
  const std::string path = ::testing::TempDir() + "composim_trace_test.json";
  const Status w = r.profiler->writeChromeTrace(path);
  ASSERT_TRUE(w.ok) << w.toString();
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const falcon::Json doc = falcon::Json::parse(buf.str());
  EXPECT_GT(doc.at("traceEvents").asArray().size(), 0u);
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
  std::remove(path.c_str());

  // The run-level span is present.
  bool experiment_span = false;
  for (const auto& e : doc.at("traceEvents").asArray()) {
    const auto* n = e.find("name");
    if (n && n->asString() == "MobileNetV2") experiment_span = true;
  }
  EXPECT_TRUE(experiment_span);
}

TEST(ProfilerTrace, NoTraceOptionMeansNoProfiler) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 2;
  const auto r =
      core::Experiment::run(SystemConfig::LocalGpus, dl::workload("MobileNetV2"), opt);
  EXPECT_EQ(r.profiler, nullptr);
}

}  // namespace
}  // namespace composim::telemetry
