// Tests for the training engine: strategies, precision, sharding, memory
// planning, checkpointing.
#include <gtest/gtest.h>

#include "core/composable_system.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"

namespace composim::dl {
namespace {

using core::ComposableSystem;
using core::SystemConfig;

/// A small synthetic model that trains in a handful of simulated
/// milliseconds, for fast trainer unit tests.
ModelSpec tinyModel() {
  ModelSpec m;
  m.name = "tiny";
  m.domain = Domain::ComputerVision;
  m.dataset = "ImageNet";
  m.fp16_efficiency = 0.5;
  m.fp32_efficiency = 0.5;
  m.input_bytes_per_sample = units::KB(32);
  m.paper_batch_per_gpu = 8;
  m.paper_epochs = 1;
  for (int i = 0; i < 8; ++i) {
    LayerSpec l;
    l.name = "l" + std::to_string(i);
    l.kind = LayerKind::Conv;
    l.params = 1000000;
    l.forward_flops = 5e8;
    l.activation_bytes = units::MB(1);
    m.layers.push_back(l);
  }
  return m;
}

DatasetSpec tinyData() {
  DatasetSpec d;
  d.name = "ImageNet";  // reuse the imagenet label for datasetFor symmetry
  d.train_samples = 4096;
  d.disk_bytes_per_sample = units::KB(16);
  d.cpu_preprocess_per_sample = units::microseconds(50);
  d.device_bytes_per_sample = units::KB(32);
  return d;
}

struct TrainerFixture : ::testing::Test {
  ComposableSystem sys{SystemConfig::LocalGpus};

  TrainingResult train(TrainerOptions opt, ModelSpec model,
                       DatasetSpec data) {
    auto gpus = sys.trainingGpus();
    Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), std::move(model),
              std::move(data), opt);
    TrainingResult out;
    t.start([&](const TrainingResult& r) { out = r; });
    sys.sim().run();
    return out;
  }
};

TEST_F(TrainerFixture, CompletesRequestedIterations) {
  TrainerOptions opt;
  opt.epochs = 2;
  opt.max_iterations_per_epoch = 5;
  const auto r = train(opt, tinyModel(), tinyData());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.iterations_run, 10);
  EXPECT_EQ(r.epochs, 2);
  EXPECT_GT(r.mean_iteration_time, 0.0);
  EXPECT_GT(r.samples_per_second, 0.0);
}

TEST_F(TrainerFixture, FullRunExtrapolationUsesDatasetSize) {
  TrainerOptions opt;
  opt.epochs = 2;
  opt.max_iterations_per_epoch = 4;
  const auto r = train(opt, tinyModel(), tinyData());
  // 4096 samples / (8 x 8 GPUs) = 64 iterations per epoch.
  EXPECT_EQ(r.iterations_full, 128);
  EXPECT_GT(r.extrapolated_total_time, r.simulated_time);
}

TEST_F(TrainerFixture, LossCurveDecreases) {
  TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 30;
  const auto r = train(opt, tinyModel(), tinyData());
  ASSERT_EQ(r.loss_curve.size(), 30u);
  const double head = (r.loss_curve[0] + r.loss_curve[1] + r.loss_curve[2]) / 3;
  const auto n = r.loss_curve.size();
  const double tail =
      (r.loss_curve[n - 1] + r.loss_curve[n - 2] + r.loss_curve[n - 3]) / 3;
  EXPECT_LT(tail, head);
}

TEST_F(TrainerFixture, CheckpointsRecordedPerEpoch) {
  TrainerOptions opt;
  opt.epochs = 3;
  opt.max_iterations_per_epoch = 2;
  opt.checkpoint_every_iters = 0;
  const auto r = train(opt, tinyModel(), tinyData());
  // 8M params x 4 bytes per checkpoint, 3 checkpoints.
  EXPECT_EQ(r.checkpoint_bytes, 3LL * 8000000 * 4);
  EXPECT_GT(r.checkpoint_time, 0.0);
}

TEST_F(TrainerFixture, CheckpointEveryNIterations) {
  TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 10;
  opt.checkpoint_each_epoch = false;
  opt.checkpoint_every_iters = 4;
  const auto r = train(opt, tinyModel(), tinyData());
  EXPECT_EQ(r.checkpoint_bytes, 2LL * 8000000 * 4);  // after iters 4 and 8
}

TEST_F(TrainerFixture, DdpBeatsDpForCommHeavyModels) {
  ModelSpec heavy = tinyModel();
  for (auto& l : heavy.layers) l.params = 20000000;  // 160M params
  TrainerOptions ddp;
  ddp.epochs = 1;
  ddp.max_iterations_per_epoch = 6;
  ddp.strategy = Strategy::DistributedDataParallel;
  TrainerOptions dp = ddp;
  dp.strategy = Strategy::DataParallel;
  const auto rddp = train(ddp, heavy, tinyData());
  ComposableSystem sys2{SystemConfig::LocalGpus};
  auto gpus2 = sys2.trainingGpus();
  Trainer t2(sys2.sim(), sys2.network(), sys2.topology(), gpus2, sys2.cpu(),
             sys2.hostMemory(), sys2.trainingStorage(), heavy, tinyData(), dp);
  TrainingResult rdp;
  t2.start([&](const TrainingResult& r) { rdp = r; });
  sys2.sim().run();
  EXPECT_LT(rddp.mean_iteration_time, rdp.mean_iteration_time);
}

TEST_F(TrainerFixture, Fp16FasterThanFp32) {
  TrainerOptions f16;
  f16.epochs = 1;
  f16.max_iterations_per_epoch = 5;
  f16.precision = devices::Precision::FP16;
  const auto r16 = train(f16, tinyModel(), tinyData());
  ComposableSystem sys2{SystemConfig::LocalGpus};
  TrainerOptions f32 = f16;
  f32.precision = devices::Precision::FP32;
  auto gpus2 = sys2.trainingGpus();
  Trainer t2(sys2.sim(), sys2.network(), sys2.topology(), gpus2, sys2.cpu(),
             sys2.hostMemory(), sys2.trainingStorage(), tinyModel(), tinyData(),
             f32);
  TrainingResult r32;
  t2.start([&](const TrainingResult& r) { r32 = r; });
  sys2.sim().run();
  EXPECT_LT(r16.mean_iteration_time, r32.mean_iteration_time);
}

TEST_F(TrainerFixture, InfeasibleBatchAbortsWithOomError) {
  TrainerOptions opt;
  opt.batch_per_gpu = 100000;  // cannot fit
  const auto r = train(opt, tinyModel(), tinyData());
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("exceeds"), std::string::npos);
  EXPECT_EQ(r.iterations_run, 0);
}

TEST_F(TrainerFixture, MemoryPlannerMatchesPaperBertBatches) {
  auto gpus = sys.trainingGpus();
  const auto bl = workload("BERT-L");
  TrainerOptions plain;
  Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
            sys.hostMemory(), sys.trainingStorage(), bl, datasetFor(bl), plain);
  // Paper: BERT-large fits batch 6 per GPU without sharding...
  EXPECT_EQ(t.maxFeasibleBatchPerGpu(), 6);
  TrainerOptions sharded;
  sharded.sharded = true;
  Trainer ts(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
             sys.hostMemory(), sys.trainingStorage(), bl, datasetFor(bl), sharded);
  // ...and 10 with the sharded optimizer (Fig 16: "batch size from 6 to 10").
  EXPECT_EQ(ts.maxFeasibleBatchPerGpu(), 10);
}

TEST_F(TrainerFixture, PaperBatchesFitForAllBenchmarks) {
  auto gpus = sys.trainingGpus();
  for (const auto& m : benchmarkZoo()) {
    TrainerOptions opt;
    Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), m, datasetFor(m), opt);
    EXPECT_GE(t.maxFeasibleBatchPerGpu(), m.paper_batch_per_gpu) << m.name;
    EXPECT_LE(t.perGpuMemoryNeeded(m.paper_batch_per_gpu),
              gpus.front()->capacity())
        << m.name;
  }
}

TEST_F(TrainerFixture, ShardingReducesPerGpuMemory) {
  auto gpus = sys.trainingGpus();
  const auto bl = workload("BERT-L");
  TrainerOptions plain, sharded;
  sharded.sharded = true;
  Trainer tp(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
             sys.hostMemory(), sys.trainingStorage(), bl, datasetFor(bl), plain);
  Trainer tsh(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), bl, datasetFor(bl), sharded);
  EXPECT_LT(tsh.perGpuMemoryNeeded(6), tp.perGpuMemoryNeeded(6));
}

TEST_F(TrainerFixture, GpuMemoryReleasedAfterRun) {
  TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 2;
  {
    auto gpus = sys.trainingGpus();
    Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), tinyModel(), tinyData(),
              opt);
    TrainingResult r;
    t.start([&](const TrainingResult& rr) { r = rr; });
    sys.sim().run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(gpus.front()->allocatedBytes(), 0);
  }
  EXPECT_EQ(sys.trainingGpus().front()->allocatedBytes(), 0);
}

TEST_F(TrainerFixture, DataStallVisibleWithSlowStorage) {
  ComposableSystem slow{SystemConfig::LocalGpus};  // boot SSD storage
  DatasetSpec heavy = tinyData();
  heavy.disk_bytes_per_sample = units::MB(4);
  TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 6;
  auto gpus = slow.trainingGpus();
  Trainer t(slow.sim(), slow.network(), slow.topology(), gpus, slow.cpu(),
            slow.hostMemory(), slow.trainingStorage(), tinyModel(), heavy, opt);
  TrainingResult r;
  t.start([&](const TrainingResult& rr) { r = rr; });
  slow.sim().run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.data_stall_time, 0.05);
}

TEST(TrainerBasics, RequiresGpus) {
  ComposableSystem sys{SystemConfig::LocalGpus};
  TrainerOptions opt;
  EXPECT_THROW(Trainer(sys.sim(), sys.network(), sys.topology(), {}, sys.cpu(),
                       sys.hostMemory(), sys.trainingStorage(), tinyModel(),
                       tinyData(), opt),
               std::invalid_argument);
}

TEST(TrainerBasics, StrategyNames) {
  EXPECT_STREQ(toString(Strategy::DataParallel), "DP");
  EXPECT_STREQ(toString(Strategy::DistributedDataParallel), "DDP");
}

}  // namespace
}  // namespace composim::dl
