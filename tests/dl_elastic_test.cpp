// Tests for elastic mid-training re-composition (§III-B.3: devices
// re-allocated dynamically on the fly) and the extension models.
#include <gtest/gtest.h>

#include "core/composable_system.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"

namespace composim::dl {
namespace {

using core::ComposableSystem;
using core::SystemConfig;

struct ElasticFixture : ::testing::Test {
  ComposableSystem sys{SystemConfig::AllGpus16};

  TrainerOptions fastOpts(int epochs) {
    TrainerOptions opt;
    opt.epochs = epochs;
    opt.max_iterations_per_epoch = 4;
    return opt;
  }
};

TEST_F(ElasticFixture, GrowsFromEightToSixteenAtEpochBoundary) {
  auto all = sys.trainingGpus();
  std::vector<devices::Gpu*> eight(all.begin(), all.begin() + 8);
  const auto model = workload("ResNet-50");
  {
    Trainer t(sys.sim(), sys.network(), sys.topology(), eight, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), model, datasetFor(model),
              fastOpts(2));
    EXPECT_TRUE(t.requestResize(all));  // apply after epoch 1's checkpoint
    TrainingResult r;
    t.start([&](const TrainingResult& rr) { r = rr; });
    sys.sim().run();
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_EQ(t.resizeCount(), 1);
    EXPECT_EQ(t.groupSize(), 16u);
    // All sixteen replicas hold model state after the grow.
    for (auto* g : all) EXPECT_GT(g->allocatedBytes(), 0);
  }
  // The trainer releases every replica it ended with.
  for (auto* g : all) EXPECT_EQ(g->allocatedBytes(), 0);
}

TEST_F(ElasticFixture, ShrinkReleasesDetachedGpus) {
  auto all = sys.trainingGpus();
  std::vector<devices::Gpu*> eight(all.begin(), all.begin() + 8);
  std::vector<devices::Gpu*> four(all.begin(), all.begin() + 4);
  const auto model = workload("ResNet-50");
  Trainer t(sys.sim(), sys.network(), sys.topology(), eight, sys.cpu(),
            sys.hostMemory(), sys.trainingStorage(), model, datasetFor(model),
            fastOpts(3));
  TrainingResult r;
  bool shrunk = false;
  t.start([&](const TrainingResult& rr) { r = rr; });
  // Shrink once epoch 1 is underway.
  while (sys.sim().step()) {
    if (!shrunk && t.currentEpoch() == 1) {
      shrunk = true;
      EXPECT_TRUE(t.requestResize(four));
    }
  }
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(t.groupSize(), 4u);
  EXPECT_GT(r.iterations_run, 0);
  // GPUs 4..7 were handed back at the shrink, while the trainer lives.
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(all[i]->allocatedBytes(), 0) << "gpu " << i;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(all[i]->allocatedBytes(), 0) << "gpu " << i;
  }
}

TEST_F(ElasticFixture, ResizeRejectsEmptyGroupAndAfterFinish) {
  auto all = sys.trainingGpus();
  std::vector<devices::Gpu*> eight(all.begin(), all.begin() + 8);
  const auto model = workload("ResNet-50");
  Trainer t(sys.sim(), sys.network(), sys.topology(), eight, sys.cpu(),
            sys.hostMemory(), sys.trainingStorage(), model, datasetFor(model),
            fastOpts(1));
  EXPECT_FALSE(t.requestResize({}));
  TrainingResult r;
  t.start([&](const TrainingResult& rr) { r = rr; });
  sys.sim().run();
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(t.requestResize(all));  // already finished
}

TEST_F(ElasticFixture, ThroughputRisesAfterGrow) {
  // Train 2 epochs at 8 GPUs vs 1+1 epochs growing to 16: the grown run
  // finishes the same sample count faster.
  auto runSamplesPerSecond = [this](bool grow) {
    ComposableSystem local{SystemConfig::AllGpus16};
    auto all = local.trainingGpus();
    std::vector<devices::Gpu*> eight(all.begin(), all.begin() + 8);
    const auto model = workload("ResNet-50");
    Trainer t(local.sim(), local.network(), local.topology(), eight,
              local.cpu(), local.hostMemory(), local.trainingStorage(), model,
              datasetFor(model), fastOpts(2));
    if (grow) {
      EXPECT_TRUE(t.requestResize(all));
    }
    TrainingResult r;
    t.start([&](const TrainingResult& rr) { r = rr; });
    local.sim().run();
    EXPECT_TRUE(r.completed);
    return r.samples_per_second;  // steady-state of the final composition
  };
  // The grown run's mean mixes 8- and 16-GPU epochs; even so it clears
  // the static 8-GPU run by a wide margin.
  EXPECT_GT(runSamplesPerSecond(true), runSamplesPerSecond(false) * 1.3);
}

TEST(ExtensionModels, Gpt2MediumAndVitHavePublishedScale) {
  const auto gpt = workload("GPT-2-medium");
  EXPECT_GT(gpt.totalParams(), 340000000);  // ~355M
  EXPECT_LT(gpt.totalParams(), 370000000);
  EXPECT_EQ(gpt.reported_depth, 24);
  const auto vit = workload("ViT-B/16");
  EXPECT_GT(vit.totalParams(), 82000000);   // ~86M
  EXPECT_LT(vit.totalParams(), 92000000);
  EXPECT_EQ(vit.domain, Domain::ComputerVision);
  EXPECT_EQ(datasetFor(vit).name, "ImageNet");
}

TEST(ExtensionModels, TrainEndToEnd) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  auto gpus = sys.trainingGpus();
  for (const auto& model : {workload("GPT-2-medium"), workload("ViT-B/16")}) {
    TrainerOptions opt;
    opt.epochs = 1;
    opt.max_iterations_per_epoch = 3;
    Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
              sys.hostMemory(), sys.trainingStorage(), model, datasetFor(model),
              opt);
    ASSERT_GE(t.maxFeasibleBatchPerGpu(), model.paper_batch_per_gpu) << model.name;
    TrainingResult r;
    t.start([&](const TrainingResult& rr) { r = rr; });
    sys.sim().run();
    EXPECT_TRUE(r.completed) << model.name << ": " << r.error;
  }
}

}  // namespace
}  // namespace composim::dl
