// Tests for the management GUI views (list, topology, port traffic).
#include <gtest/gtest.h>

#include "falcon/topology_view.hpp"

namespace composim::falcon {
namespace {

struct ViewsFixture : ::testing::Test {
  Simulator sim;
  fabric::Topology topo;
  FalconChassis chassis{sim, topo, "falcon0"};
  fabric::NodeId host = topo.addNode("alice-host", fabric::NodeKind::CpuRootComplex);

  void SetUp() override {
    ASSERT_TRUE(chassis.connectHost(0, host, "alice-host"));
    const fabric::NodeId g = topo.addNode("gpu.a", fabric::NodeKind::Gpu);
    ASSERT_TRUE(chassis.installDevice({0, 0}, DeviceType::Gpu, "gpu.a", g));
    ASSERT_TRUE(chassis.attach({0, 0}, 0));
    const fabric::NodeId n = topo.addNode("nvme.b", fabric::NodeKind::Storage);
    ASSERT_TRUE(chassis.installDevice({1, 4}, DeviceType::Nvme, "nvme.b", n));
  }
};

TEST_F(ViewsFixture, ListViewShowsDevicesAndOwners) {
  const std::string view = renderListView(chassis);
  EXPECT_NE(view.find("gpu.a"), std::string::npos);
  EXPECT_NE(view.find("alice-host"), std::string::npos);
  EXPECT_NE(view.find("nvme.b"), std::string::npos);
  EXPECT_NE(view.find("(unassigned)"), std::string::npos);
  EXPECT_NE(view.find("PCI-e 4.0 x16"), std::string::npos);
}

TEST_F(ViewsFixture, TopologyViewShowsStructure) {
  const std::string view = renderTopologyView(chassis);
  EXPECT_NE(view.find("falcon0 (Falcon 4016)"), std::string::npos);
  EXPECT_NE(view.find("drawer 0 [Standard mode]"), std::string::npos);
  EXPECT_NE(view.find("port H1 <== host 'alice-host'"), std::string::npos);
  EXPECT_NE(view.find("port H2 <== (no host)"), std::string::npos);
  EXPECT_NE(view.find("slot 0: GPU 'gpu.a' -> H1"), std::string::npos);
  EXPECT_NE(view.find("NVMe SSD 'nvme.b' (detached)"), std::string::npos);
  EXPECT_NE(view.find("slot 7: (empty)"), std::string::npos);
}

TEST_F(ViewsFixture, TopologyViewTracksModeChanges) {
  ASSERT_TRUE(chassis.setDrawerMode(1, DrawerMode::Advanced));
  const std::string view = renderTopologyView(chassis);
  EXPECT_NE(view.find("drawer 1 [Advanced mode]"), std::string::npos);
}

TEST_F(ViewsFixture, PortTrafficReportsCountersAndStatus) {
  const auto& info = chassis.slot({0, 0});
  topo.counters(info.link_up).bytes = 2000000000;  // 2 GB egress
  topo.counters(info.link_down).errors = 3;
  const std::string view = renderPortTraffic(chassis, topo);
  EXPECT_NE(view.find("port H1"), std::string::npos);
  EXPECT_NE(view.find("2.00 GB"), std::string::npos);
  EXPECT_NE(view.find("3"), std::string::npos);
  EXPECT_NE(view.find("up"), std::string::npos);
  topo.setLinkUp(info.link_up, false);
  EXPECT_NE(renderPortTraffic(chassis, topo).find("DOWN"), std::string::npos);
}

}  // namespace
}  // namespace composim::falcon
