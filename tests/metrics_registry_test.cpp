// Tests for the labeled metrics registry, the shared percentile math, the
// scrape pipeline and its exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_pipeline.hpp"

namespace composim::telemetry {
namespace {

/// The order-statistic percentile dl/inference.cpp historically computed
/// inline — the registry's histograms must reproduce it bit-for-bit.
double adhocPercentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

std::vector<double> seededSamples(std::size_t n) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(0.1, 400.0);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist(rng));
  return out;
}

TEST(Labels, CanonicalFormSortsByKey) {
  const Labels canon =
      canonicalLabels({{"zone", "a"}, {"device", "gpu0"}, {"link", "x"}});
  ASSERT_EQ(canon.size(), 3u);
  EXPECT_EQ(canon[0].first, "device");
  EXPECT_EQ(canon[1].first, "link");
  EXPECT_EQ(canon[2].first, "zone");
  EXPECT_THROW(canonicalLabels({{"k", "a"}, {"k", "b"}}),
               std::invalid_argument);
}

TEST(Labels, ToStringEscapesPerExpositionRules) {
  EXPECT_EQ(labelsToString({}), "");
  EXPECT_EQ(labelsToString({{"a", "plain"}}), "{a=\"plain\"}");
  // Backslash, double quote and newline must be escaped.
  EXPECT_EQ(labelsToString({{"m", "say \"hi\"\\\n"}}),
            "{m=\"say \\\"hi\\\"\\\\\\n\"}");
}

TEST(Percentile, MatchesAdhocOrderStatistic) {
  const auto samples = seededSamples(257);
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(sorted, p), adhocPercentile(samples, p)) << p;
  }
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Counter, MonotoneAndRejectsNegative) {
  Counter c;
  c.add(2.5);
  c.inc();
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.add(-1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Histogram, ValidatesBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketsAreCumulativeUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 9.0}) h.observe(v);
  // le semantics: an observation equal to a bound lands in that bucket.
  EXPECT_EQ(h.bucketCount(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucketCount(1), 1u);  // 1.5
  EXPECT_EQ(h.bucketCount(2), 1u);  // 4.0
  EXPECT_EQ(h.bucketCount(3), 1u);  // 9.0 -> +Inf
  EXPECT_EQ(h.cumulativeCount(0), 2u);
  EXPECT_EQ(h.cumulativeCount(2), 4u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
}

TEST(Histogram, PercentilesMatchAdhocComputationExactly) {
  // The acceptance bar for replacing dl/inference.cpp's inline math: on
  // identical inputs the histogram's percentiles are the same doubles.
  Histogram h(defaultLatencyBucketsMs());
  const auto samples = seededSamples(1000);
  for (double v : samples) h.observe(v);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(h.percentile(p), adhocPercentile(samples, p)) << p;
  }
  // Percentile queries interleaved with observation (lazy re-sort).
  Histogram inc(defaultLatencyBucketsMs());
  std::vector<double> so_far;
  for (double v : samples) {
    inc.observe(v);
    so_far.push_back(v);
    if (so_far.size() % 250 == 0) {
      EXPECT_EQ(inc.percentile(95.0), adhocPercentile(so_far, 95.0));
    }
  }
  EXPECT_DOUBLE_EQ(Histogram({1.0}).percentile(50.0), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bytes_total", {{"link", "x"}, {"dir", "up"}});
  Counter& b = reg.counter("bytes_total", {{"dir", "up"}, {"link", "x"}});
  EXPECT_EQ(&a, &b);  // label order does not matter
  Counter& c = reg.counter("bytes_total", {{"dir", "down"}, {"link", "x"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.instruments("bytes_total").size(), 2u);
  EXPECT_TRUE(reg.has("bytes_total"));
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_EQ(reg.type("bytes_total"), MetricType::Counter);
  EXPECT_THROW(reg.type("nope"), std::out_of_range);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.gauge("util_pct");
  EXPECT_THROW(reg.counter("util_pct"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("util_pct"), std::invalid_argument);
}

TEST(MetricsRegistry, InstrumentScalarView) {
  MetricsRegistry reg;
  reg.counter("c").add(4.0);
  reg.gauge("g").set(-2.5);
  Histogram& h = reg.histogram("h");
  EXPECT_DOUBLE_EQ(reg.instruments("c")[0].value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.instruments("g")[0].value(), -2.5);
  EXPECT_DOUBLE_EQ(reg.instruments("h")[0].value(), 0.0);  // empty histogram
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(reg.instruments("h")[0].value(), 3.0);  // mean
}

TEST(MetricsRegistry, PrometheusTextExactExposition) {
  MetricsRegistry reg;
  reg.counter("requests_total", {}, "Requests served").add(3.0);
  reg.gauge("temp_c", {{"zone", "a"}}).set(1.5);
  Histogram& h = reg.histogram("lat_ms", {}, {1.0, 2.0}, "Latency");
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  EXPECT_EQ(reg.prometheusText(),
            "# HELP lat_ms Latency\n"
            "# TYPE lat_ms histogram\n"
            "lat_ms_bucket{le=\"1\"} 1\n"
            "lat_ms_bucket{le=\"2\"} 2\n"
            "lat_ms_bucket{le=\"+Inf\"} 3\n"
            "lat_ms_sum 5\n"
            "lat_ms_count 3\n"
            "# HELP requests_total Requests served\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE temp_c gauge\n"
            "temp_c{zone=\"a\"} 1.5\n");
}

TEST(MetricsRegistry, PrometheusTextIsInsertionOrderIndependent) {
  auto populate = [](MetricsRegistry& reg, bool reversed) {
    if (reversed) {
      reg.gauge("z_last", {{"b", "2"}}).set(2.0);
      reg.gauge("z_last", {{"a", "1"}}).set(1.0);
      reg.counter("a_first").add(7.0);
    } else {
      reg.counter("a_first").add(7.0);
      reg.gauge("z_last", {{"a", "1"}}).set(1.0);
      reg.gauge("z_last", {{"b", "2"}}).set(2.0);
    }
  };
  MetricsRegistry fwd, rev;
  populate(fwd, false);
  populate(rev, true);
  EXPECT_EQ(fwd.prometheusText(), rev.prometheusText());
  EXPECT_EQ(fwd.familyNames(), (std::vector<std::string>{"a_first", "z_last"}));
}

TEST(MetricsScraper, ScrapesOnTheSimulatedInterval) {
  Simulator sim;
  MetricsRegistry reg;
  MetricsScraper scraper(sim, reg, 1.0);
  Gauge& g = reg.gauge("v");
  int pulls = 0;
  scraper.addCollector([&] { g.set(static_cast<double>(++pulls)); });
  scraper.start();
  sim.schedule(3.5, [&scraper] { scraper.stop(); });
  sim.run();
  // Scrapes at t=0, 1, 2, 3; collector ran before each snapshot.
  const TimeSeries& s = scraper.series("v");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(scraper.scrapeCount(), 4u);
  EXPECT_DOUBLE_EQ(s.timeAt(3), 3.0);
  EXPECT_DOUBLE_EQ(s.valueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(s.valueAt(3), 4.0);
  EXPECT_THROW(scraper.series("nope"), std::out_of_range);
}

TEST(MetricsScraper, HistogramsScrapeSubSeries) {
  Simulator sim;
  MetricsRegistry reg;
  MetricsScraper scraper(sim, reg, 1.0);
  Histogram& h = reg.histogram("lat_ms");
  h.observe(10.0);
  h.observe(30.0);
  scraper.scrapeOnce();
  for (const char* name :
       {"lat_ms_count", "lat_ms_sum", "lat_ms_p50", "lat_ms_p95",
        "lat_ms_p99"}) {
    EXPECT_TRUE(scraper.hasSeries(name)) << name;
  }
  EXPECT_DOUBLE_EQ(scraper.series("lat_ms_count").last(), 2.0);
  EXPECT_DOUBLE_EQ(scraper.series("lat_ms_sum").last(), 40.0);
  EXPECT_DOUBLE_EQ(scraper.series("lat_ms_p50").last(), 20.0);
}

TEST(MetricsScraper, JsonlDumpIsExactAndOrdered) {
  Simulator sim;
  MetricsRegistry reg;
  MetricsScraper scraper(sim, reg, 1.0);
  Gauge& g = reg.gauge("b");
  reg.gauge("a").set(0.25);
  g.set(1.0);
  scraper.scrapeOnce();
  sim.schedule(1.0, [&] {
    g.set(2.0);
    scraper.scrapeOnce();
  });
  sim.run();
  EXPECT_EQ(scraper.jsonlDump(),
            "{\"metric\":\"a\",\"t\":0,\"value\":0.25}\n"
            "{\"metric\":\"a\",\"t\":1,\"value\":0.25}\n"
            "{\"metric\":\"b\",\"t\":0,\"value\":1}\n"
            "{\"metric\":\"b\",\"t\":1,\"value\":2}\n");
}

TEST(MetricsPipeline, ExperimentExportsAreRunToRunDeterministic) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 6;
  opt.metrics.alerts = {"gpu_util_pct < 10 for 1s"};
  const auto a =
      core::Experiment::run(core::SystemConfig::FalconGpus, dl::workload("ResNet-50"), opt);
  const auto b =
      core::Experiment::run(core::SystemConfig::FalconGpus, dl::workload("ResNet-50"), opt);
  ASSERT_NE(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
  EXPECT_GT(a.metrics->prometheusText().size(), 0u);
  EXPECT_EQ(a.metrics->prometheusText(), b.metrics->prometheusText());
  EXPECT_EQ(a.metrics->jsonlDump(), b.metrics->jsonlDump());
}

TEST(MetricsPipeline, SweepExportsIdenticalAtAnyJobCount) {
  // The --jobs 1 vs --jobs 4 contract: replaying the same sweep serially
  // and in parallel yields byte-identical Prometheus and JSONL exports.
  const std::vector<core::SystemConfig> configs = {
      core::SystemConfig::LocalGpus, core::SystemConfig::FalconGpus,
      core::SystemConfig::HybridGpus, core::SystemConfig::FalconGpus};
  auto exports = [&configs](int jobs) {
    std::vector<std::string> out;
    const auto results =
        core::sweepOrdered(jobs, configs.size(), [&configs](std::size_t i) {
          core::ExperimentOptions opt;
          opt.trainer.epochs = 1;
          opt.trainer.max_iterations_per_epoch = 5;
          opt.metrics.alerts = {"gpu_util_pct < 10 for 1s"};
          return core::Experiment::run(configs[i], dl::workload("ResNet-50"), opt);
        });
    for (const auto& r : results) {
      out.push_back(r.metrics->prometheusText());
      out.push_back(r.metrics->jsonlDump());
    }
    return out;
  };
  const auto serial = exports(1);
  const auto parallel = exports(4);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_GT(serial[0].size(), 0u);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace composim::telemetry
