// Tests for the core extensions: the 16-GPU composition, the second
// tenant host, gradient accumulation, the NIC, and JSON experiment suites.
#include <gtest/gtest.h>

#include "core/experiment_config.hpp"
#include "devices/nic.hpp"
#include "dl/trainer.hpp"
#include "dl/zoo.hpp"

namespace composim::core {
namespace {

TEST(AllGpus16, ComposesSixteenGpus) {
  ComposableSystem sys(SystemConfig::AllGpus16);
  const auto gpus = sys.trainingGpus();
  ASSERT_EQ(gpus.size(), 16u);
  EXPECT_EQ(sys.trainingStorage().name(), "nvme.local");
  // All 8 falcon GPUs attached across both drawers.
  EXPECT_EQ(sys.chassis().devicesAssignedTo(0).size(), 4u);
  EXPECT_EQ(sys.chassis().devicesAssignedTo(2).size(), 4u);
}

TEST(AllGpus16, SixteenGpuTrainingScalesThroughput) {
  // The capability argument: 16 composed GPUs beat the fixed 8-GPU server
  // on throughput for a compute-bound model, despite the PCIe fabric.
  auto run = [](SystemConfig cfg) {
    ComposableSystem sys(cfg);
    auto gpus = sys.trainingGpus();
    dl::TrainerOptions opt;
    opt.epochs = 1;
    opt.max_iterations_per_epoch = 6;
    const auto model = dl::workload("ResNet-50");
    dl::Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
                  sys.hostMemory(), sys.trainingStorage(), model,
                  dl::datasetFor(model), opt);
    dl::TrainingResult r;
    t.start([&](const dl::TrainingResult& rr) { r = rr; });
    sys.sim().run();
    EXPECT_TRUE(r.completed);
    return r.samples_per_second;
  };
  const double sps8 = run(SystemConfig::LocalNvme);
  const double sps16 = run(SystemConfig::AllGpus16);
  EXPECT_GT(sps16, sps8 * 1.5);
  EXPECT_LT(sps16, sps8 * 2.05);
}

TEST(SecondHost, AttachesOnceAndEnablesCoTenancy) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  const auto h2 = sys.attachSecondHost();
  ASSERT_NE(h2.root, fabric::kInvalidNode);
  ASSERT_NE(h2.cpu, nullptr);
  // Idempotent.
  const auto again = sys.attachSecondHost();
  EXPECT_EQ(again.root, h2.root);
  // The second tenant can reach falcon devices through its own ports.
  EXPECT_TRUE(sys.chassis().hostPort(1).connected);
  EXPECT_TRUE(sys.chassis().hostPort(3).connected);
  const auto gpuNode = sys.falconGpus()[0]->node();
  auto route = sys.topology().route(h2.root, gpuNode);
  ASSERT_TRUE(route.has_value());
}

TEST(SecondHost, TenantsGetDisjointFabricPaths) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  const auto h2 = sys.attachSecondHost();
  auto r1 = sys.topology().route(sys.hostRoot(), sys.chassis().drawerSwitch(0));
  auto r2 = sys.topology().route(h2.root, sys.chassis().drawerSwitch(0));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_NE(r1->links[0], r2->links[0]);  // separate host adapters
}

TEST(GradientAccumulation, MultipliesEffectiveBatch) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  auto gpus = sys.trainingGpus();
  const auto model = dl::workload("BERT-L");
  dl::TrainerOptions opt;
  opt.epochs = 1;
  opt.max_iterations_per_epoch = 4;
  opt.gradient_accumulation_steps = 4;
  dl::Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
                sys.hostMemory(), sys.trainingStorage(), model,
                dl::datasetFor(model), opt);
  // Accumulation shrinks the number of optimizer iterations per epoch
  // (up to ceil rounding at the epoch tail).
  dl::TrainerOptions plain = opt;
  plain.gradient_accumulation_steps = 1;
  dl::Trainer tp(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
                 sys.hostMemory(), sys.trainingStorage(), model,
                 dl::datasetFor(model), plain);
  const double ratio = static_cast<double>(tp.iterationsPerEpochFull()) /
                       static_cast<double>(t.iterationsPerEpochFull());
  EXPECT_NEAR(ratio, 4.0, 0.05);
}

TEST(GradientAccumulation, IterationCostsSubLinearInMicroSteps) {
  auto iterTime = [](int accum) {
    ComposableSystem sys(SystemConfig::LocalGpus);
    auto gpus = sys.trainingGpus();
    const auto model = dl::workload("ResNet-50");
    dl::TrainerOptions opt;
    opt.epochs = 1;
    opt.max_iterations_per_epoch = 4;
    opt.gradient_accumulation_steps = accum;
    dl::Trainer t(sys.sim(), sys.network(), sys.topology(), gpus, sys.cpu(),
                  sys.hostMemory(), sys.trainingStorage(), model,
                  dl::datasetFor(model), opt);
    dl::TrainingResult r;
    t.start([&](const dl::TrainingResult& rr) { r = rr; });
    sys.sim().run();
    EXPECT_TRUE(r.completed);
    return r.mean_iteration_time;
  };
  const double t1 = iterTime(1);
  const double t3 = iterTime(3);
  // Three micro-steps of compute, but optimizer/step-overhead/all-reduce
  // paid once: cost grows with K yet stays below K times one iteration —
  // the throughput argument for accumulation.
  EXPECT_GT(t3 / t1, 2.0);
  EXPECT_LT(t3 / t1, 3.05);
}

TEST(Nic, WiresExternalPortAndCountsTraffic) {
  ComposableSystem sys(SystemConfig::LocalGpus);
  devices::Nic nic(sys.topology(), sys.hostRoot(), devices::specs::x540_10gbe(),
                   "eth0");
  const auto nas = sys.topology().addNode("nas", fabric::NodeKind::Storage);
  sys.topology().addDuplexLink(nic.externalPort(), nas, units::Gbps(40),
                               units::microseconds(80), fabric::LinkKind::Ethernet);
  fabric::FlowResult res;
  sys.network().startFlow(nas, sys.hostMemory(), units::GB(1),
                          [&](const fabric::FlowResult& r) { res = r; });
  sys.sim().run();
  EXPECT_EQ(res.status, fabric::FlowStatus::Completed);
  // Wire-limited by the 10 GbE NIC: ~1.175 GB/s.
  EXPECT_NEAR(res.duration(), 1e9 / units::Gbps(9.4), 1e-3);
  EXPECT_NEAR(static_cast<double>(nic.bytesReceived()), 1e9, 1e6);
  EXPECT_EQ(nic.bytesTransmitted(), 0);
}

TEST(ExperimentConfig, ParsesFullSuite) {
  const auto doc = falcon::Json::parse(R"({
    "suite": "demo",
    "experiments": [
      {"name": "a", "benchmark": "ResNet-50", "config": "localGPUs"},
      {"name": "b", "benchmark": "BERT-L", "config": "falconGPUs",
       "epochs": 1, "iterations_cap": 5, "batch_per_gpu": 4,
       "strategy": "dp", "precision": "fp32", "sharded": true,
       "accumulation": 2, "sample_interval": 0.5}
    ]
  })");
  const auto specs = parseExperimentSuite(doc);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].workload, "ResNet-50");
  EXPECT_EQ(specs[0].config, SystemConfig::LocalGpus);
  EXPECT_EQ(specs[1].config, SystemConfig::FalconGpus);
  EXPECT_EQ(specs[1].options.trainer.epochs, 1);
  EXPECT_EQ(specs[1].options.trainer.max_iterations_per_epoch, 5);
  EXPECT_EQ(specs[1].options.trainer.batch_per_gpu, 4);
  EXPECT_EQ(specs[1].options.trainer.strategy, dl::Strategy::DataParallel);
  EXPECT_EQ(specs[1].options.trainer.precision, devices::Precision::FP32);
  EXPECT_TRUE(specs[1].options.trainer.sharded);
  EXPECT_EQ(specs[1].options.trainer.gradient_accumulation_steps, 2);
  EXPECT_DOUBLE_EQ(specs[1].options.sample_interval, 0.5);
}

TEST(ExperimentConfig, RejectsUnknownValues) {
  auto parse = [](const char* text) {
    return parseExperimentSuite(falcon::Json::parse(text));
  };
  EXPECT_THROW(parse(R"({"experiments":[{"name":"x","benchmark":"nope","config":"localGPUs"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"experiments":[{"name":"x","benchmark":"BERT","config":"nope"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"experiments":[{"name":"x","benchmark":"BERT","config":"localGPUs","strategy":"zz"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"nope": 1})"), falcon::JsonError);
}

TEST(ExperimentConfig, NameResolutionCoversAllConfigs) {
  for (const auto c : allConfigs()) {
    EXPECT_EQ(configFromName(toString(c)), c);
  }
  EXPECT_EQ(configFromName("allGPUs16"), SystemConfig::AllGpus16);
  for (const auto& m : dl::benchmarkZoo()) {
    EXPECT_EQ(benchmarkFromName(m.name).name, m.name);
  }
}

TEST(ExperimentConfig, RunsParsedSpecEndToEnd) {
  const auto doc = falcon::Json::parse(R"({
    "experiments": [
      {"name": "quick", "benchmark": "MobileNetV2", "config": "localGPUs",
       "epochs": 1, "iterations_cap": 4}
    ]
  })");
  const auto specs = parseExperimentSuite(doc);
  const auto r = runExperimentSpec(specs[0]);
  EXPECT_TRUE(r.training.completed);
  EXPECT_EQ(r.benchmark, "MobileNetV2");
}

}  // namespace
}  // namespace composim::core
