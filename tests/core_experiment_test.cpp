// Tests for the experiment runner and the topology recommender.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/recommender.hpp"

namespace composim::core {
namespace {

ExperimentOptions fastOptions() {
  ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 6;
  opt.sample_interval = 0.25;
  return opt;
}

TEST(Experiment, ProducesSummariesInPlausibleRanges) {
  const auto r = Experiment::run(SystemConfig::LocalGpus, dl::workload("MobileNetV2"),
                                 fastOptions());
  EXPECT_TRUE(r.training.completed);
  EXPECT_EQ(r.benchmark, "MobileNetV2");
  EXPECT_EQ(r.config, SystemConfig::LocalGpus);
  EXPECT_GT(r.gpu_util_pct, 30.0);
  EXPECT_LE(r.gpu_util_pct, 100.5);
  EXPECT_GT(r.gpu_mem_util_pct, 5.0);
  EXPECT_LE(r.gpu_mem_util_pct, 100.0);
  EXPECT_GE(r.gpu_mem_access_pct, 0.0);
  EXPECT_LE(r.gpu_mem_access_pct, r.gpu_util_pct + 1.0);
  EXPECT_GT(r.cpu_util_pct, 0.5);
  EXPECT_LT(r.cpu_util_pct, 80.0);
  EXPECT_GT(r.host_mem_util_pct, 1.0);
  EXPECT_LT(r.host_mem_util_pct, 30.0);
  // No Falcon devices involved: the ports carry nothing.
  EXPECT_NEAR(r.falcon_pcie_gbs, 0.0, 1e-9);
}

TEST(Experiment, FalconConfigShowsPcieTraffic) {
  const auto r = Experiment::run(SystemConfig::FalconGpus, dl::workload("MobileNetV2"),
                                 fastOptions());
  EXPECT_GT(r.falcon_pcie_gbs, 0.1);
}

TEST(Experiment, SamplerSeriesAreExposed) {
  const auto r = Experiment::run(SystemConfig::LocalGpus, dl::workload("MobileNetV2"),
                                 fastOptions());
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_TRUE(r.metrics->hasSeries("gpu_util_pct"));
  EXPECT_TRUE(r.metrics->hasSeries("falcon_pcie_gbs"));
  EXPECT_GE(r.metrics->series("gpu_util_pct").size(), 3u);
}

TEST(Experiment, TrainingTimeChangePct) {
  ExperimentResult base, other;
  base.training.extrapolated_total_time = 100.0;
  other.training.extrapolated_total_time = 150.0;
  EXPECT_DOUBLE_EQ(Experiment::trainingTimeChangePct(other, base), 50.0);
  EXPECT_DOUBLE_EQ(Experiment::trainingTimeChangePct(base, base), 0.0);
  base.training.extrapolated_total_time = 0.0;
  EXPECT_DOUBLE_EQ(Experiment::trainingTimeChangePct(other, base), 0.0);
}

TEST(Recommender, PicksFastestMeasuredConfig) {
  Recommender rec;
  RunRecord a{"m", SystemConfig::LocalGpus, 100.0, 10.0, 1e6, 1e9};
  RunRecord b{"m", SystemConfig::FalconGpus, 150.0, 7.0, 1e6, 1e9};
  RunRecord c{"m", SystemConfig::HybridGpus, 140.0, 8.0, 1e6, 1e9};
  rec.addRun(a);
  rec.addRun(b);
  rec.addRun(c);
  const auto best = rec.recommendFor("m");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->config, SystemConfig::LocalGpus);
  EXPECT_DOUBLE_EQ(best->expected_time_seconds, 100.0);
  EXPECT_NEAR(best->composability_overhead_pct, 40.0, 1e-9);  // 140 vs 100
}

TEST(Recommender, UnknownBenchmarkYieldsNothing) {
  Recommender rec;
  EXPECT_FALSE(rec.recommendFor("nope").has_value());
  EXPECT_FALSE(rec.recommendFor(dl::workload("MobileNetV2")).has_value());
}

TEST(Recommender, UnseenModelMatchesByCharacteristics) {
  Recommender rec;
  // A tiny vision model measured fastest on falcon; a huge NLP model
  // fastest on local.
  rec.addRun(RunRecord{"small-cnn", SystemConfig::FalconGpus, 50.0, 20.0,
                       7e6, 6e8});
  rec.addRun(RunRecord{"small-cnn", SystemConfig::LocalGpus, 55.0, 18.0,
                       7e6, 6e8});
  rec.addRun(RunRecord{"huge-lm", SystemConfig::LocalGpus, 200.0, 5.0,
                       6.7e8, 2.6e11});
  rec.addRun(RunRecord{"huge-lm", SystemConfig::FalconGpus, 390.0, 2.5,
                       6.7e8, 2.6e11});
  // BERT-large resembles huge-lm, MobileNet resembles small-cnn.
  const auto lm = rec.recommendFor(dl::workload("BERT-L"));
  ASSERT_TRUE(lm.has_value());
  EXPECT_EQ(lm->config, SystemConfig::LocalGpus);
  const auto cnn = rec.recommendFor(dl::workload("MobileNetV2"));
  ASSERT_TRUE(cnn.has_value());
  EXPECT_EQ(cnn->config, SystemConfig::FalconGpus);
}

TEST(Recommender, AddRunFromExperimentResult) {
  Recommender rec;
  ExperimentResult r;
  r.benchmark = "MobileNetV2";
  r.config = SystemConfig::LocalGpus;
  r.training.extrapolated_total_time = 42.0;
  r.training.samples_per_second = 1000.0;
  rec.addRun(r, dl::workload("MobileNetV2"));
  EXPECT_EQ(rec.runCount(), 1u);
  const auto best = rec.recommendFor("MobileNetV2");
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->expected_time_seconds, 42.0);
}

}  // namespace
}  // namespace composim::core
