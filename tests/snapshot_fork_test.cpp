// Snapshot/fork: a warmed experiment captured at the quiescent point and
// restored into a fresh stack must be indistinguishable — byte for byte,
// across every export surface — from the same run resumed in place. That
// equivalence is what lets SweepRunner execute a shared warm prefix once
// and fork each variant's tail without changing a single published number.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_config.hpp"
#include "core/sweep_runner.hpp"
#include "fabric/topology.hpp"
#include "sim/random.hpp"
#include "telemetry/run_tracker.hpp"

namespace composim {
namespace {

// --- Rng stream state (DESIGN.md §14: exact save/restore) ---

TEST(RngState, RoundTripReproducesDrawsBitForBit) {
  Rng rng(12345);
  for (int i = 0; i < 7; ++i) rng.next();  // advance into the stream
  const Rng::State st = rng.state();

  std::vector<double> first;
  for (int i = 0; i < 16; ++i) {
    first.push_back(rng.uniform());
    first.push_back(rng.normal(2.0, 0.5));
    first.push_back(static_cast<double>(rng.uniformInt(0, 1000)));
  }

  rng.setState(st);
  for (std::size_t i = 0; i < first.size(); i += 3) {
    EXPECT_EQ(first[i], rng.uniform());
    EXPECT_EQ(first[i + 1], rng.normal(2.0, 0.5));
    EXPECT_EQ(first[i + 2], static_cast<double>(rng.uniformInt(0, 1000)));
  }
}

TEST(RngState, PendingCachedNormalSurvivesRoundTrip) {
  Rng rng(7);
  rng.normal();  // Box-Muller leaves the second draw cached
  const Rng::State st = rng.state();
  EXPECT_TRUE(st.has_cached_normal);

  const double a = rng.normal();  // consumes the cache
  const double b = rng.normal();  // fresh pair
  rng.setState(st);
  EXPECT_EQ(a, rng.normal());
  EXPECT_EQ(b, rng.normal());
}

TEST(RngState, RestoreIntoDifferentInstanceMatches) {
  Rng donor(99);
  for (int i = 0; i < 5; ++i) donor.uniform();
  Rng fork(1);  // deliberately different seed
  fork.setState(donor.state());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(donor.next(), fork.next());
}

// --- Topology restore rebinds the routing owner (regression) ---

TEST(TopologyFork, RestoreStateRebindsRouteOwnerToRestoringThread) {
  auto build = [] {
    auto topo = std::make_unique<fabric::Topology>();
    const auto hub = topo->addNode("hub", fabric::NodeKind::PcieSwitch);
    for (int i = 0; i < 4; ++i) {
      const auto leaf =
          topo->addNode("l" + std::to_string(i), fabric::NodeKind::Gpu);
      topo->addDuplexLink(leaf, hub, units::GBps(16), 0.0,
                          fabric::LinkKind::PCIe4);
    }
    return topo;
  };

  auto donor = build();
  // Pin the donor's routing owner to this thread and warm its cache.
  ASSERT_TRUE(donor->route(fabric::NodeId{1}, fabric::NodeId{2}).has_value());
  const fabric::Topology::State st = donor->state();

  auto fork = build();
  // Pin the fork to this thread too — the worker below would be the
  // "wrong" thread if restoreState failed to rebind ownership.
  ASSERT_TRUE(fork->route(fabric::NodeId{1}, fabric::NodeId{2}).has_value());

  bool routed = false;
  std::thread worker([&] {
    fork->restoreState(st);  // must rebind the owner to this worker...
    const auto route = fork->route(fabric::NodeId{1}, fabric::NodeId{3});
    routed = route.has_value() && route->links.size() == 2;
  });
  worker.join();
  EXPECT_TRUE(routed);

  // ...and the handoff back is the caller's explicit responsibility.
  EXPECT_THROW(fork->route(fabric::NodeId{1}, fabric::NodeId{2}),
               std::logic_error);
  fork->rebindRouteOwner();
  EXPECT_TRUE(fork->route(fabric::NodeId{1}, fabric::NodeId{2}).has_value());
}

// --- Warm-prefix applicability and grouping key ---

core::ExperimentSpec specWith(int cap, int epochs, std::int64_t warm) {
  core::ExperimentSpec s;
  s.name = "spec-cap" + std::to_string(cap);
  s.workload = "ResNet-50";
  s.config = core::SystemConfig::FalconGpus;
  s.options.trainer.epochs = epochs;
  s.options.trainer.max_iterations_per_epoch = cap;
  s.options.warm_prefix = warm;
  return s;
}

TEST(WarmPrefix, ApplicabilityGuardsBoundaryCollisions) {
  EXPECT_TRUE(core::warmPrefixApplicable(specWith(12, 1, 4)));
  EXPECT_FALSE(core::warmPrefixApplicable(specWith(12, 1, 0)));   // off
  EXPECT_FALSE(core::warmPrefixApplicable(specWith(12, 1, 12)));  // epoch edge
  EXPECT_FALSE(core::warmPrefixApplicable(specWith(12, 1, 20)));  // past epoch

  // Fault schedules are fork-eligible; whether the schedule actually fits
  // the variant tail is a runtime check (WarmedExperiment ctor + the
  // SweepRunner's per-member faults_fit_tail test).
  auto faulted = specWith(12, 1, 4);
  faulted.options.faults.enabled = true;
  EXPECT_TRUE(core::warmPrefixApplicable(faulted));

  // ...but spares change the prefix topology, so they key the group.
  auto spared = specWith(12, 1, 4);
  spared.options.faults.enabled = true;
  spared.options.faults.spare_gpus = 1;
  EXPECT_NE(core::warmPrefixKey(faulted), core::warmPrefixKey(spared));

  auto ckpt = specWith(600, 1, 500);  // lands on checkpoint_every_iters
  EXPECT_FALSE(core::warmPrefixApplicable(ckpt));
}

TEST(WarmPrefix, KeyIgnoresTailParametersOnly) {
  const auto base = specWith(12, 1, 4);
  auto tail = specWith(9, 3, 4);
  tail.name = "other-name";
  EXPECT_EQ(core::warmPrefixKey(base), core::warmPrefixKey(tail));

  auto seeded = specWith(12, 1, 4);
  seeded.options.trainer.seed = 43;
  EXPECT_NE(core::warmPrefixKey(base), core::warmPrefixKey(seeded));

  auto traced = specWith(12, 1, 4);
  traced.options.trace = true;
  EXPECT_NE(core::warmPrefixKey(base), core::warmPrefixKey(traced));
}

// --- Fork vs cold: single experiment, every export surface ---

core::ExperimentOptions phasedOptions(int cap, int epochs) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = epochs;
  opt.trainer.max_iterations_per_epoch = cap;
  opt.warm_prefix = 4;
  opt.trace = true;
  opt.metrics.alerts = {"gpu_util_pct > 101"};  // exercise alert state too
  return opt;
}

void expectResultsIdentical(const core::ExperimentResult& a,
                            const core::ExperimentResult& b) {
  EXPECT_EQ(a.training.mean_iteration_time, b.training.mean_iteration_time);
  EXPECT_EQ(a.training.simulated_time, b.training.simulated_time);
  EXPECT_EQ(a.training.samples_per_second, b.training.samples_per_second);
  EXPECT_EQ(a.training.checkpoint_time, b.training.checkpoint_time);
  EXPECT_EQ(a.training.checkpoint_bytes, b.training.checkpoint_bytes);
  EXPECT_EQ(a.gpu_util_pct, b.gpu_util_pct);
  EXPECT_EQ(a.cpu_util_pct, b.cpu_util_pct);
  EXPECT_EQ(a.host_mem_util_pct, b.host_mem_util_pct);
  EXPECT_EQ(a.falcon_pcie_gbs, b.falcon_pcie_gbs);
  ASSERT_EQ(a.training.loss_curve.size(), b.training.loss_curve.size());
  for (std::size_t i = 0; i < a.training.loss_curve.size(); ++i) {
    EXPECT_EQ(a.training.loss_curve[i], b.training.loss_curve[i]);
  }
  // Export surfaces, byte for byte.
  EXPECT_EQ(a.metrics->prometheusText(), b.metrics->prometheusText());
  EXPECT_EQ(a.metrics->jsonlDump(), b.metrics->jsonlDump());
  ASSERT_EQ(a.profiler != nullptr, b.profiler != nullptr);
  if (a.profiler) {
    EXPECT_EQ(a.profiler->chromeTrace().dump(2),
              b.profiler->chromeTrace().dump(2));
  }
}

TEST(SnapshotFork, ForkedTailIsByteIdenticalToColdPhasedRun) {
  const auto model = dl::workload("ResNet-50");
  const auto opt = phasedOptions(10, 1);

  core::WarmedExperiment cold(core::SystemConfig::FalconGpus, model, opt);
  const core::ExperimentResult cold_result = cold.finish();

  core::WarmedExperiment donor(core::SystemConfig::FalconGpus, model, opt);
  const core::SimSnapshot snap = donor.snapshot();
  const core::ExperimentResult forked = core::WarmedExperiment::resumeFromSnapshot(
      core::SystemConfig::FalconGpus, model, opt, snap);

  expectResultsIdentical(cold_result, forked);
}

TEST(SnapshotFork, SnapshotIsReusableAndDeterministic) {
  const auto model = dl::workload("ResNet-50");
  const auto opt = phasedOptions(8, 1);
  core::WarmedExperiment donor(core::SystemConfig::FalconGpus, model, opt);
  const core::SimSnapshot snap = donor.snapshot();

  // Same snapshot, two forks: identical. Different tail: still restores.
  const auto a = core::WarmedExperiment::resumeFromSnapshot(
      core::SystemConfig::FalconGpus, model, opt, snap);
  const auto b = core::WarmedExperiment::resumeFromSnapshot(
      core::SystemConfig::FalconGpus, model, opt, snap);
  expectResultsIdentical(a, b);

  auto longer = opt;
  longer.trainer.max_iterations_per_epoch = 12;
  const auto c = core::WarmedExperiment::resumeFromSnapshot(
      core::SystemConfig::FalconGpus, model, longer, snap);
  EXPECT_GT(c.training.simulated_time, a.training.simulated_time);

  // The donor itself can still finish after snapshotting.
  const auto donor_result = donor.finish();
  expectResultsIdentical(a, donor_result);
}

TEST(SnapshotFork, ForkedVariantMatchesWholeColdVariant) {
  // A variant whose tail length differs from the donor's: forking from
  // the shared prefix must equal running that variant phased end-to-end.
  const auto model = dl::workload("ResNet-50");
  const auto donor_opt = phasedOptions(8, 1);
  auto variant_opt = donor_opt;
  variant_opt.trainer.max_iterations_per_epoch = 14;

  core::WarmedExperiment donor(core::SystemConfig::FalconGpus, model,
                               donor_opt);
  const auto forked = core::WarmedExperiment::resumeFromSnapshot(
      core::SystemConfig::FalconGpus, model, variant_opt, donor.snapshot());

  core::WarmedExperiment cold(core::SystemConfig::FalconGpus, model,
                              variant_opt);
  expectResultsIdentical(cold.finish(), forked);
}

// --- Twin-run sweeps: fork vs cold across the full artifact set ---

struct SweepArtifacts {
  std::string manifest;
  std::vector<std::string> traces;
  std::vector<std::string> prometheus;
  std::vector<std::string> jsonl;
  bool all_ok = true;
};

std::vector<core::ExperimentSpec> twinSuite() {
  // Eight variants of one warmed prefix: tail length is the only axis, so
  // with sharing on the prefix runs once and forks eight ways.
  std::vector<core::ExperimentSpec> specs;
  for (int i = 0; i < 8; ++i) {
    core::ExperimentSpec s;
    s.name = "twin-" + std::to_string(i);
    s.workload = "ResNet-50";
    s.config = core::SystemConfig::FalconGpus;
    s.options.trainer.epochs = 1;
    s.options.trainer.max_iterations_per_epoch = 8 + i;
    s.options.warm_prefix = 4;
    s.options.trace = true;
    specs.push_back(std::move(s));
  }
  return specs;
}

SweepArtifacts runTwin(int jobs, bool share) {
  SweepArtifacts art;
  core::SweepOptions opts;
  opts.jobs = jobs;
  opts.share_warm_prefixes = share;
  core::SweepRunner runner(opts);
  telemetry::RunTracker tracker;
  runner.run(twinSuite(), [&](const core::SweepRun& done) {
    if (!done.status) {
      art.all_ok = false;
      return;
    }
    auto& run = tracker.run(done.spec.name);
    run.setConfig("benchmark", done.spec.workload);
    run.setSummary("mean_iteration_s", done.result.training.mean_iteration_time);
    run.setSummary("gpu_util_pct", done.result.gpu_util_pct);
    art.traces.push_back(done.result.profiler->chromeTrace().dump(2));
    art.prometheus.push_back(done.result.metrics->prometheusText());
    art.jsonl.push_back(done.result.metrics->jsonlDump());
  });
  art.manifest = tracker.manifest().dump(2);
  return art;
}

void expectArtifactsIdentical(const SweepArtifacts& a, const SweepArtifacts& b) {
  EXPECT_TRUE(a.all_ok);
  EXPECT_TRUE(b.all_ok);
  EXPECT_EQ(a.manifest, b.manifest);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i], b.traces[i]) << "trace " << i;
  }
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.jsonl, b.jsonl);
}

TEST(SnapshotForkSweep, ForkedSweepMatchesColdSweepSerially) {
  const auto cold = runTwin(1, /*share=*/false);
  const auto fork = runTwin(1, /*share=*/true);
  ASSERT_EQ(cold.traces.size(), 8u);
  expectArtifactsIdentical(cold, fork);
}

TEST(SnapshotForkSweep, ForkedSweepMatchesColdSweepAtJobs4) {
  // Phase B restores snapshots on worker threads: the route-owner rebind,
  // ID-allocator restore and registry copy all run off the main thread.
  const auto cold = runTwin(1, /*share=*/false);
  const auto fork4 = runTwin(4, /*share=*/true);
  expectArtifactsIdentical(cold, fork4);
  const auto cold4 = runTwin(4, /*share=*/false);
  expectArtifactsIdentical(cold, cold4);
}

}  // namespace
}  // namespace composim
