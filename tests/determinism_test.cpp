// Determinism: identical inputs must give bit-identical simulations —
// the property that makes the reproduction's numbers citable.
#include <gtest/gtest.h>

#include "collectives/communicator.hpp"
#include "core/experiment.hpp"

namespace composim {
namespace {

core::ExperimentResult runOnce(core::SystemConfig cfg) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.trainer.max_iterations_per_epoch = 6;
  return core::Experiment::run(cfg, dl::workload("ResNet-50"), opt);
}

TEST(Determinism, ExperimentsAreBitIdentical) {
  const auto a = runOnce(core::SystemConfig::FalconGpus);
  const auto b = runOnce(core::SystemConfig::FalconGpus);
  EXPECT_EQ(a.training.mean_iteration_time, b.training.mean_iteration_time);
  EXPECT_EQ(a.training.simulated_time, b.training.simulated_time);
  EXPECT_EQ(a.training.samples_per_second, b.training.samples_per_second);
  EXPECT_EQ(a.gpu_util_pct, b.gpu_util_pct);
  EXPECT_EQ(a.falcon_pcie_gbs, b.falcon_pcie_gbs);
  ASSERT_EQ(a.training.loss_curve.size(), b.training.loss_curve.size());
  for (std::size_t i = 0; i < a.training.loss_curve.size(); ++i) {
    EXPECT_EQ(a.training.loss_curve[i], b.training.loss_curve[i]);
  }
}

TEST(Determinism, CollectivesAreBitIdentical) {
  auto measure = [] {
    core::ComposableSystem sys(core::SystemConfig::FalconGpus);
    std::vector<fabric::NodeId> ranks;
    for (auto* g : sys.trainingGpus()) ranks.push_back(g->node());
    collectives::Communicator comm(sys.sim(), sys.network(), sys.topology(), ranks);
    SimTime d = 0.0;
    comm.allReduce(units::MiB(333),
                   [&](const collectives::CollectiveResult& r) { d = r.duration(); });
    sys.sim().run();
    return d;
  };
  EXPECT_EQ(measure(), measure());
}

TEST(Determinism, FlowHeavySimulationIsBitIdentical) {
  // Stresses the incremental solver's completion heap and component
  // bookkeeping: hundreds of staggered flows on a shared star must finish
  // at bit-identical times run over run, so figure benches stay
  // byte-stable.
  auto measure = [] {
    Simulator sim;
    fabric::Topology topo;
    fabric::FlowNetwork net(sim, topo);
    const auto hub = topo.addNode("hub", fabric::NodeKind::PcieSwitch);
    std::vector<fabric::NodeId> leaves;
    for (int i = 0; i < 8; ++i) {
      leaves.push_back(
          topo.addNode("l" + std::to_string(i), fabric::NodeKind::Gpu));
      topo.addDuplexLink(leaves.back(), hub, units::GBps(10), 0.0,
                         fabric::LinkKind::PCIe4);
    }
    std::vector<SimTime> ends;
    for (int f = 0; f < 300; ++f) {
      const auto src = static_cast<std::size_t>(f % 8);
      const auto dst = static_cast<std::size_t>((f + 3) % 8);
      const Bytes payload = units::MiB(4 + f % 13);
      sim.schedule(1e-4 * f, [&, src, dst, payload] {
        net.startFlow(leaves[src], leaves[dst], payload,
                      [&](const fabric::FlowResult& r) { ends.push_back(r.end); });
      });
    }
    sim.run();
    return ends;
  };
  const auto a = measure();
  const auto b = measure();
  ASSERT_EQ(a.size(), 300u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Determinism, SeedChangesOnlyStochasticOutputs) {
  // Different trainer seed: timing identical (the performance model is
  // deterministic), only the synthetic loss noise differs.
  auto run = [](std::uint64_t seed) {
    core::ExperimentOptions opt;
    opt.trainer.epochs = 1;
    opt.trainer.max_iterations_per_epoch = 6;
    opt.trainer.seed = seed;
    return core::Experiment::run(core::SystemConfig::LocalGpus, dl::workload("ResNet-50"),
                                 opt);
  };
  const auto a = run(1);
  const auto b = run(2);
  EXPECT_EQ(a.training.mean_iteration_time, b.training.mean_iteration_time);
  EXPECT_NE(a.training.loss_curve.front(), b.training.loss_curve.front());
}

}  // namespace
}  // namespace composim
