// Determinism: identical inputs must give bit-identical simulations —
// the property that makes the reproduction's numbers citable.
#include <gtest/gtest.h>

#include "collectives/communicator.hpp"
#include "core/experiment.hpp"

namespace composim {
namespace {

core::ExperimentResult runOnce(core::SystemConfig cfg) {
  core::ExperimentOptions opt;
  opt.trainer.epochs = 1;
  opt.iterations_per_epoch_cap = 6;
  return core::Experiment::run(cfg, dl::resNet50(), opt);
}

TEST(Determinism, ExperimentsAreBitIdentical) {
  const auto a = runOnce(core::SystemConfig::FalconGpus);
  const auto b = runOnce(core::SystemConfig::FalconGpus);
  EXPECT_EQ(a.training.mean_iteration_time, b.training.mean_iteration_time);
  EXPECT_EQ(a.training.simulated_time, b.training.simulated_time);
  EXPECT_EQ(a.training.samples_per_second, b.training.samples_per_second);
  EXPECT_EQ(a.gpu_util_pct, b.gpu_util_pct);
  EXPECT_EQ(a.falcon_pcie_gbs, b.falcon_pcie_gbs);
  ASSERT_EQ(a.training.loss_curve.size(), b.training.loss_curve.size());
  for (std::size_t i = 0; i < a.training.loss_curve.size(); ++i) {
    EXPECT_EQ(a.training.loss_curve[i], b.training.loss_curve[i]);
  }
}

TEST(Determinism, CollectivesAreBitIdentical) {
  auto measure = [] {
    core::ComposableSystem sys(core::SystemConfig::FalconGpus);
    std::vector<fabric::NodeId> ranks;
    for (auto* g : sys.trainingGpus()) ranks.push_back(g->node());
    collectives::Communicator comm(sys.sim(), sys.network(), sys.topology(), ranks);
    SimTime d = 0.0;
    comm.allReduce(units::MiB(333),
                   [&](const collectives::CollectiveResult& r) { d = r.duration(); });
    sys.sim().run();
    return d;
  };
  EXPECT_EQ(measure(), measure());
}

TEST(Determinism, SeedChangesOnlyStochasticOutputs) {
  // Different trainer seed: timing identical (the performance model is
  // deterministic), only the synthetic loss noise differs.
  auto run = [](std::uint64_t seed) {
    core::ExperimentOptions opt;
    opt.trainer.epochs = 1;
    opt.iterations_per_epoch_cap = 6;
    opt.trainer.seed = seed;
    return core::Experiment::run(core::SystemConfig::LocalGpus, dl::resNet50(),
                                 opt);
  };
  const auto a = run(1);
  const auto b = run(2);
  EXPECT_EQ(a.training.mean_iteration_time, b.training.mean_iteration_time);
  EXPECT_NE(a.training.loss_curve.front(), b.training.loss_curve.front());
}

}  // namespace
}  // namespace composim
